//! `uncertain-arrangement`: planar arrangements of segments and lines.
//!
//! Two structures in the paper are arrangements:
//!
//! * the **discrete nonzero Voronoi diagram** (Theorem 2.14) is the planar
//!   subdivision induced by the polygonal curves `γ_i` — an arrangement of
//!   line segments;
//! * the **probabilistic Voronoi diagram** `V_Pr` (Theorem 4.2) is a
//!   refinement of the arrangement of the `O(N²)` bisector lines of all
//!   location pairs.
//!
//! Modules:
//!
//! * [`segment`] — segments and pairwise intersection (including collinear
//!   overlaps), with robust orientation tests;
//! * [`subdivision`] — splits a set of segments at all intersections and
//!   builds the planar subdivision: vertex/edge/face counts (via Euler's
//!   formula, cross-checked against half-edge face tracing), bounded-face
//!   enumeration with interior sample points;
//! * [`lines`] — arrangements of lines clipped to a box;
//! * [`slab`] — slab-based point location for line arrangements (`O(log n)`
//!   query), the lookup structure behind exact `V_Pr` queries.

pub mod lines;
pub mod segment;
pub mod segment_slab;
pub mod slab;
pub mod subdivision;

pub use segment::Segment;
pub use segment_slab::{CertifiedLocation, SegmentSlabLocator};
pub use slab::SlabLocator;
pub use subdivision::Subdivision;
