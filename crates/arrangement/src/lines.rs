//! Lines and arrangements of lines clipped to a box.

use crate::segment::Segment;
use crate::subdivision::{Subdivision, TaggedSegment};
use uncertain_geom::{Aabb, Point};

/// The line `a·x + b·y = c` (with `(a, b) ≠ 0`).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Line2 {
    pub a: f64,
    pub b: f64,
    pub c: f64,
}

impl Line2 {
    pub fn new(a: f64, b: f64, c: f64) -> Self {
        Line2 { a, b, c }
    }

    /// Perpendicular bisector of `p` and `q` (points closer to `p` satisfy
    /// `eval < 0`).
    pub fn bisector(p: Point, q: Point) -> Self {
        // ‖x−p‖² = ‖x−q‖² ⇔ 2(q−p)·x = ‖q‖² − ‖p‖²
        let a = 2.0 * (q.x - p.x);
        let b = 2.0 * (q.y - p.y);
        let c = q.to_vector().norm2() - p.to_vector().norm2();
        Line2 { a, b, c }
    }

    /// Signed value `a·x + b·y − c`.
    #[inline]
    pub fn eval(&self, p: Point) -> f64 {
        self.a * p.x + self.b * p.y - self.c
    }

    /// `true` when the line is (numerically) vertical.
    pub fn is_vertical(&self) -> bool {
        self.b.abs() <= 1e-14 * self.a.abs().max(1.0)
    }

    /// `y` at a given `x` (requires non-vertical).
    #[inline]
    pub fn y_at(&self, x: f64) -> f64 {
        (self.c - self.a * x) / self.b
    }

    /// Intersection with another line, `None` when *exactly* parallel (the
    /// determinant sign is decided by exact arithmetic). The returned point
    /// is within a few ulps of the true intersection even for near-parallel
    /// lines, where the naive quotient of rounded determinants is
    /// arbitrarily wrong — slab boundaries derived from it must land within
    /// the locator guard bands of the true crossing.
    pub fn intersect(&self, other: &Line2) -> Option<Point> {
        let (x, y) = uncertain_geom::predicates::line_intersection(
            (self.a, self.b, self.c),
            (other.a, other.b, other.c),
        )?;
        Some(Point::new(x, y))
    }

    /// Canonical form for deduplication: scaled so `‖(a,b)‖ = 1` and the
    /// first nonzero of `(a, b)` is positive.
    pub fn canonical(&self) -> (f64, f64, f64) {
        let n = self.a.hypot(self.b);
        if n <= f64::MIN_POSITIVE {
            return (0.0, 0.0, 0.0);
        }
        let (mut a, mut b, mut c) = (self.a / n, self.b / n, self.c / n);
        if a < 0.0 || (a == 0.0 && b < 0.0) {
            a = -a;
            b = -b;
            c = -c;
        }
        (a, b, c)
    }
}

/// Removes (near-)duplicate lines, keeping the first of each class.
/// Returns the kept indices too.
pub fn dedup_lines(lines: &[Line2], tol: f64) -> (Vec<Line2>, Vec<usize>) {
    let mut kept: Vec<Line2> = vec![];
    let mut idx = vec![];
    'outer: for (i, l) in lines.iter().enumerate() {
        let cl = l.canonical();
        if cl == (0.0, 0.0, 0.0) {
            continue;
        }
        for k in &kept {
            let ck = k.canonical();
            if (cl.0 - ck.0).abs() <= tol
                && (cl.1 - ck.1).abs() <= tol
                && (cl.2 - ck.2).abs() <= tol * (1.0 + cl.2.abs().max(ck.2.abs()))
            {
                continue 'outer;
            }
        }
        kept.push(*l);
        idx.push(i);
    }
    (kept, idx)
}

/// Clips a line to a box; `None` when it misses the box.
pub fn clip_line_to_box(line: &Line2, bbox: &Aabb) -> Option<Segment> {
    // Parametric point + direction.
    let n2 = line.a * line.a + line.b * line.b;
    if n2 <= f64::MIN_POSITIVE {
        return None;
    }
    let p0 = Point::new(line.a * line.c / n2, line.b * line.c / n2);
    let d = uncertain_geom::Vector::new(-line.b, line.a);
    // Liang–Barsky.
    let mut t0 = f64::NEG_INFINITY;
    let mut t1 = f64::INFINITY;
    for (num, den) in [
        (bbox.lo.x - p0.x, d.x),
        (p0.x - bbox.hi.x, -d.x),
        (bbox.lo.y - p0.y, d.y),
        (p0.y - bbox.hi.y, -d.y),
    ] {
        if den.abs() <= f64::MIN_POSITIVE {
            if num > 0.0 {
                return None;
            }
            continue;
        }
        let t = num / den;
        if den > 0.0 {
            t0 = t0.max(t);
        } else {
            t1 = t1.min(t);
        }
    }
    if t0 >= t1 {
        return None;
    }
    Some(Segment::new(p0 + d * t0, p0 + d * t1))
}

/// Builds the subdivision of `lines` clipped to `bbox`, with the box
/// boundary included (curve ids: `i` for line `i`, `lines.len()..+4` for the
/// box edges). All faces of the result are bounded except the outer one.
pub fn line_arrangement(lines: &[Line2], bbox: &Aabb) -> Subdivision {
    let mut segs: Vec<TaggedSegment> = vec![];
    for (i, l) in lines.iter().enumerate() {
        if let Some(seg) = clip_line_to_box(l, bbox) {
            segs.push(TaggedSegment {
                seg,
                curve: i as u32,
            });
        }
    }
    let corners = bbox.corners();
    for k in 0..4 {
        segs.push(TaggedSegment {
            seg: Segment::new(corners[k], corners[(k + 1) % 4]),
            curve: (lines.len() + k) as u32,
        });
    }
    Subdivision::build(&segs, 1e-9 * bbox.radius().max(1.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bbox() -> Aabb {
        Aabb::from_corners(Point::new(-10.0, -10.0), Point::new(10.0, 10.0))
    }

    #[test]
    fn bisector_signs() {
        let l = Line2::bisector(Point::new(0.0, 0.0), Point::new(4.0, 0.0));
        assert!(l.eval(Point::new(0.0, 3.0)) < 0.0); // closer to p
        assert!(l.eval(Point::new(4.0, 3.0)) > 0.0);
        assert!(l.eval(Point::new(2.0, -5.0)).abs() < 1e-12);
    }

    #[test]
    fn clipping() {
        let horizontal = Line2::new(0.0, 1.0, 0.0); // y = 0
        let seg = clip_line_to_box(&horizontal, &bbox()).unwrap();
        assert!((seg.length() - 20.0).abs() < 1e-9);
        let missing = Line2::new(0.0, 1.0, 100.0); // y = 100
        assert!(clip_line_to_box(&missing, &bbox()).is_none());
        let diagonal = Line2::new(1.0, -1.0, 0.0); // y = x
        let seg = clip_line_to_box(&diagonal, &bbox()).unwrap();
        assert!((seg.length() - 20.0 * 2f64.sqrt()).abs() < 1e-9);
    }

    #[test]
    fn generic_lines_face_count() {
        // n generic lines have 1 + n + C(n,2) faces; clipping to a box that
        // contains all intersections makes all of them bounded.
        let lines = vec![
            Line2::new(1.0, 1.0, 0.5),
            Line2::new(1.0, -1.0, 0.0),
            Line2::new(0.2, 1.0, 1.0),
            Line2::new(1.0, 0.1, -2.0),
        ];
        let n = lines.len();
        let sub = line_arrangement(&lines, &bbox());
        let expected = 1 + n + n * (n - 1) / 2;
        assert_eq!(sub.bounded_faces().len(), expected);
        // Euler consistency: num_faces counts the outer face too.
        assert_eq!(sub.num_faces(), expected + 1);
    }

    #[test]
    fn dedup() {
        let l1 = Line2::new(1.0, 1.0, 1.0);
        let l2 = Line2::new(2.0, 2.0, 2.0); // same line
        let l3 = Line2::new(-1.0, -1.0, -1.0); // same line, flipped
        let l4 = Line2::new(1.0, -1.0, 0.0);
        let (kept, idx) = dedup_lines(&[l1, l2, l3, l4], 1e-9);
        assert_eq!(kept.len(), 2);
        assert_eq!(idx, vec![0, 3]);
    }

    #[test]
    fn intersection() {
        let l1 = Line2::new(1.0, 0.0, 2.0); // x = 2
        let l2 = Line2::new(0.0, 1.0, 3.0); // y = 3
        let p = l1.intersect(&l2).unwrap();
        assert!(p.dist(Point::new(2.0, 3.0)) < 1e-12);
        assert!(l1.intersect(&Line2::new(2.0, 0.0, 0.0)).is_none());
    }
}
