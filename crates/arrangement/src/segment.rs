//! Line segments and pairwise intersections.

use uncertain_geom::predicates::{crossing_param, orient2d, side_of_segment, Side};
use uncertain_geom::{Aabb, Point};

/// A closed line segment.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Segment {
    pub a: Point,
    pub b: Point,
}

impl Segment {
    pub fn new(a: Point, b: Point) -> Self {
        Segment { a, b }
    }

    pub fn length(&self) -> f64 {
        self.a.dist(self.b)
    }

    pub fn bbox(&self) -> Aabb {
        Aabb::from_corners(self.a, self.b)
    }

    pub fn midpoint(&self) -> Point {
        self.a.midpoint(self.b)
    }

    /// Point at parameter `t ∈ [0, 1]`.
    pub fn at(&self, t: f64) -> Point {
        self.a.lerp(self.b, t)
    }

    /// Parameter of the orthogonal projection of `p` onto the supporting
    /// line (unclamped).
    pub fn project_param(&self, p: Point) -> f64 {
        let d = self.b - self.a;
        let n2 = d.norm2();
        if n2 <= f64::MIN_POSITIVE {
            return 0.0;
        }
        (p - self.a).dot(d) / n2
    }

    /// `true` if `p` lies on the segment (exact collinearity + box test).
    pub fn contains_point(&self, p: Point) -> bool {
        side_of_segment(self.a, self.b, p) == Side::On && self.bbox().contains(p)
    }
}

/// Intersection points of two segments, as parameters on `s1` paired with
/// the geometric point. Returns 0, 1, or 2 entries (2 only for collinear
/// overlap, where the overlap endpoints are reported so callers can split
/// both segments consistently).
pub fn segment_intersections(s1: &Segment, s2: &Segment) -> Vec<(f64, Point)> {
    // Quick bbox rejection with a hair of slack.
    let b1 = s1.bbox();
    let b2 = s2.bbox();
    let slack = 1e-12 * (b1.radius() + b2.radius() + b1.center().dist(b2.center())).max(1.0);
    if b1.lo.x > b2.hi.x + slack
        || b2.lo.x > b1.hi.x + slack
        || b1.lo.y > b2.hi.y + slack
        || b2.lo.y > b1.hi.y + slack
    {
        return vec![];
    }

    let o1 = orient2d(s2.a, s2.b, s1.a);
    let o2 = orient2d(s2.a, s2.b, s1.b);
    let o3 = orient2d(s1.a, s1.b, s2.a);
    let o4 = orient2d(s1.a, s1.b, s2.b);

    if o1 == 0.0 && o2 == 0.0 {
        // Collinear. Project s2's endpoints on s1 and keep those inside.
        let mut out = vec![];
        for p in [s2.a, s2.b] {
            let t = s1.project_param(p);
            if (-1e-12..=1.0 + 1e-12).contains(&t) && s1.contains_point(p) {
                out.push((t.clamp(0.0, 1.0), p));
            }
        }
        // Endpoints of s1 inside s2 are split points for s2, reported via
        // the symmetric call; for s1 they are params 0/1 (no split needed).
        out.sort_by(|x, y| x.0.partial_cmp(&y.0).unwrap());
        out.dedup_by(|x, y| (x.0 - y.0).abs() < 1e-12);
        return out;
    }

    // Endpoint-on-line cases: the only possible intersection is that
    // endpoint itself (collinear overlap was handled above).
    if o1 == 0.0 {
        return if s2.bbox().contains(s1.a) {
            vec![(0.0, s1.a)]
        } else {
            vec![]
        };
    }
    if o2 == 0.0 {
        return if s2.bbox().contains(s1.b) {
            vec![(1.0, s1.b)]
        } else {
            vec![]
        };
    }
    if o3 == 0.0 {
        return if s1.contains_point(s2.a) {
            vec![(s1.project_param(s2.a).clamp(0.0, 1.0), s2.a)]
        } else {
            vec![]
        };
    }
    if o4 == 0.0 {
        return if s1.contains_point(s2.b) {
            vec![(s1.project_param(s2.b).clamp(0.0, 1.0), s2.b)]
        } else {
            vec![]
        };
    }
    // All orientations strict: a proper crossing exists iff the endpoints of
    // each segment straddle the other's supporting line.
    if (o1 > 0.0) == (o2 > 0.0) || (o3 > 0.0) == (o4 > 0.0) {
        return vec![];
    }
    // Parameter on s1 from the signed distances to line(s2), computed with
    // exact expansions: the naive o1/(o1 − o2) quotient can be arbitrarily
    // wrong for near-parallel crossings (the adaptive o's carry absolute
    // error up to their filter bound, which the cancelled denominator
    // amplifies), and downstream guard bands assume split points land
    // within ulps of the true crossing.
    let t1 = crossing_param(s1.a, s1.b, s2.a, s2.b);
    vec![(t1, s1.at(t1))]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(ax: f64, ay: f64, bx: f64, by: f64) -> Segment {
        Segment::new(Point::new(ax, ay), Point::new(bx, by))
    }

    #[test]
    fn proper_crossing() {
        let s1 = s(0.0, 0.0, 2.0, 2.0);
        let s2 = s(0.0, 2.0, 2.0, 0.0);
        let xs = segment_intersections(&s1, &s2);
        assert_eq!(xs.len(), 1);
        assert!(xs[0].1.dist(Point::new(1.0, 1.0)) < 1e-12);
        assert!((xs[0].0 - 0.5).abs() < 1e-12);
    }

    #[test]
    fn no_intersection() {
        let s1 = s(0.0, 0.0, 1.0, 0.0);
        let s2 = s(0.0, 1.0, 1.0, 1.0);
        assert!(segment_intersections(&s1, &s2).is_empty());
        // Lines cross but segments don't.
        let s3 = s(0.0, 0.0, 1.0, 1.0);
        let s4 = s(3.0, 0.0, 2.0, 1.1);
        assert!(segment_intersections(&s3, &s4).is_empty());
    }

    #[test]
    fn endpoint_touch() {
        let s1 = s(0.0, 0.0, 2.0, 0.0);
        let s2 = s(1.0, 0.0, 1.0, 5.0); // T-junction at (1, 0)
        let xs = segment_intersections(&s1, &s2);
        assert_eq!(xs.len(), 1);
        assert!((xs[0].0 - 0.5).abs() < 1e-12);
        assert!(xs[0].1.dist(Point::new(1.0, 0.0)) < 1e-12);

        // Shared endpoint.
        let s3 = s(2.0, 0.0, 3.0, 1.0);
        let xs = segment_intersections(&s1, &s3);
        assert_eq!(xs.len(), 1);
        assert_eq!(xs[0].0, 1.0);
    }

    #[test]
    fn collinear_overlap() {
        let s1 = s(0.0, 0.0, 4.0, 0.0);
        let s2 = s(1.0, 0.0, 6.0, 0.0);
        let xs = segment_intersections(&s1, &s2);
        // s2's endpoint (1,0) splits s1; (6,0) is outside s1.
        assert_eq!(xs.len(), 1);
        assert!((xs[0].0 - 0.25).abs() < 1e-12);
        // Symmetric call: s1's endpoint 4,0 lies inside s2.
        let ys = segment_intersections(&s2, &s1);
        assert_eq!(ys.len(), 1);
        assert!(ys[0].1.dist(Point::new(4.0, 0.0)) < 1e-12);
    }

    #[test]
    fn near_parallel_robustness() {
        // Nearly-parallel segments that actually cross: the robust
        // orientation tests must agree with the computed point.
        let s1 = s(0.0, 0.0, 10.0, 1e-9);
        let s2 = s(0.0, 1e-10, 10.0, 0.0);
        let xs = segment_intersections(&s1, &s2);
        assert_eq!(xs.len(), 1);
        let p = xs[0].1;
        assert!(p.x > 0.0 && p.x < 10.0);
    }

    #[test]
    fn contains_point_robust() {
        let seg = s(0.0, 0.0, 10.0, 10.0);
        assert!(seg.contains_point(Point::new(5.0, 5.0)));
        assert!(!seg.contains_point(Point::new(5.0, 5.0 + 1e-9)));
        assert!(seg.contains_point(Point::new(0.0, 0.0)));
        assert!(!seg.contains_point(Point::new(11.0, 11.0)));
    }
}
