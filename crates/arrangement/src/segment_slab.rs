//! Slab-based point location for *segment* subdivisions.
//!
//! The classical slab method applied to a [`crate::Subdivision`]: cut the
//! plane at every vertex x-coordinate; within a slab the (non-vertical)
//! edges crossing it are totally ordered by height, so a query is two binary
//! searches: one for the slab, one for the edge directly below the query.
//! `O(V·E)` space in the worst case, `O(log)` query — the paper-faithful
//! point-location companion for the discrete nonzero Voronoi diagram
//! (Theorem 2.14: "preprocessed ... so that an NN≠0(q) query can be answered
//! in O(log µ + t)").
//!
//! # Exactness
//!
//! All query-time side tests use the adaptive exact [`orient2d`] predicate
//! and build-time slab ordering uses the exact [`cmp_segments_y_at`]
//! comparison, so location is exact with respect to the stored vertices.
//! [`SegmentSlabLocator::locate_certified`] additionally reports whether the
//! query has a caller-chosen clearance from every stored edge and slab
//! boundary — consumers whose subdivision was built with coordinate snapping
//! use the snap tolerance to decide when a located answer provably matches
//! the un-snapped geometry, and fall back to direct evaluation otherwise.

use uncertain_geom::predicates::{cmp_segments_y_at, orient2d};
use uncertain_geom::Point;

/// Outcome of a certified point location (see
/// [`SegmentSlabLocator::locate_certified`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CertifiedLocation {
    /// `q` lies strictly above `edge` (the edge directly below it) with
    /// clearance greater than the requested guard from every stored edge
    /// and slab boundary.
    Interior { edge: u32 },
    /// `q` lies *exactly* on the stored edge `edge`.
    OnEdge { edge: u32 },
    /// `q` is within the guard band of a stored edge, vertex, or slab
    /// boundary — too close to certify under construction snapping.
    NearBoundary,
    /// `q` is outside the x-range of the structure or below every edge of
    /// its slab.
    Unlocated,
}

/// Point-location structure over a set of straight edges.
#[derive(Clone, Debug)]
pub struct SegmentSlabLocator {
    /// Slab boundaries (sorted unique vertex x-coordinates).
    xs: Vec<f64>,
    /// Per slab: edge ids crossing the whole slab, sorted by height.
    slabs: Vec<Vec<u32>>,
    /// Edge geometry: (left endpoint, right endpoint) with `a.x < b.x`
    /// (vertical edges are excluded — they coincide with slab boundaries).
    edge_geom: Vec<(Point, Point)>,
    /// Original edge ids aligned with `edge_geom`.
    edge_ids: Vec<u32>,
    /// Per-slab **order certificate**, verified at build time with exact
    /// comparisons: every adjacent pair of the slab order is non-decreasing
    /// at *both* slab endpoints (edges are straight, so that bounds the
    /// whole slab) and not coincident across it. In a proper planar
    /// subdivision this always holds — a failure means two stored edges
    /// cross inside the slab (e.g. a degenerate construction), and such
    /// slabs are never served by [`SegmentSlabLocator::locate_certified`].
    slab_certified: Vec<bool>,
}

impl SegmentSlabLocator {
    /// Builds the locator for the given `edges` over `vertices`.
    pub fn build(vertices: &[Point], edges: &[(u32, u32)]) -> Self {
        let mut xs: Vec<f64> = vertices.iter().map(|p| p.x).collect();
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        xs.dedup();

        let mut edge_geom = vec![];
        let mut edge_ids = vec![];
        for (eid, &(a, b)) in edges.iter().enumerate() {
            let (pa, pb) = (vertices[a as usize], vertices[b as usize]);
            if pa.x == pb.x {
                continue; // vertical: lies on a slab boundary
            }
            let (l, r) = if pa.x < pb.x { (pa, pb) } else { (pb, pa) };
            edge_geom.push((l, r));
            edge_ids.push(eid as u32);
        }

        let mut slabs: Vec<Vec<u32>> = Vec::with_capacity(xs.len().saturating_sub(1));
        let mut slab_certified: Vec<bool> = Vec::with_capacity(xs.len().saturating_sub(1));
        for w in xs.windows(2) {
            let (x0, x1) = (w[0], w[1]);
            let xm = 0.5 * (x0 + x1);
            let mut in_slab: Vec<u32> = (0..edge_geom.len() as u32)
                .filter(|&k| {
                    let (l, r) = edge_geom[k as usize];
                    l.x <= x0 && r.x >= x1
                })
                .collect();
            // Exact y-order at the slab midpoint — edges meeting at a
            // shared vertex on the boundary sort correctly even when their
            // heights at xm agree to within an ulp.
            in_slab.sort_by(|&i, &j| {
                cmp_segments_y_at(edge_geom[i as usize], edge_geom[j as usize], xm)
            });
            // Order certificate at both endpoints (`Equal` at one endpoint
            // is fine — edges legitimately share boundary vertices).
            let certified = in_slab.windows(2).all(|pair| {
                let ei = edge_geom[pair[0] as usize];
                let ej = edge_geom[pair[1] as usize];
                let c0 = cmp_segments_y_at(ei, ej, x0);
                let c1 = cmp_segments_y_at(ei, ej, x1);
                c0 != std::cmp::Ordering::Greater
                    && c1 != std::cmp::Ordering::Greater
                    && !(c0 == std::cmp::Ordering::Equal && c1 == std::cmp::Ordering::Equal)
            });
            slab_certified.push(certified);
            slabs.push(in_slab);
        }
        SegmentSlabLocator {
            xs,
            slabs,
            edge_geom,
            edge_ids,
            slab_certified,
        }
    }

    /// Total number of (slab, edge) incidences — the structure size.
    pub fn size(&self) -> usize {
        self.slabs.iter().map(Vec::len).sum()
    }

    /// The slab index containing `q.x`, or `None` outside the x-range.
    fn slab_of(&self, x: f64) -> Option<usize> {
        if self.xs.len() < 2 || x < self.xs[0] || x > *self.xs.last().unwrap() {
            return None;
        }
        Some(
            match self.xs.binary_search_by(|v| v.partial_cmp(&x).unwrap()) {
                Ok(i) => i.min(self.xs.len() - 2),
                Err(i) => i.saturating_sub(1).min(self.xs.len() - 2),
            },
        )
    }

    /// Internal index (into `edge_geom`) of the edge directly at-or-below
    /// `q` in slab `s`, found with the exact orient predicate: an edge
    /// `l → r` (rightward) is at-or-below `q` iff `orient2d(l, r, q) ≥ 0`.
    fn below_index(&self, s: usize, q: Point) -> Option<usize> {
        let slab = &self.slabs[s];
        let idx = slab.partition_point(|&k| {
            let (l, r) = self.edge_geom[k as usize];
            orient2d(l, r, q) >= 0.0
        });
        if idx == 0 {
            None
        } else {
            Some(idx - 1)
        }
    }

    /// The original edge id of the edge directly *below* (or exactly
    /// through) `q` — the first edge hit going down — or `None` when `q` is
    /// below every edge of its slab or outside the x-range.
    ///
    /// Every per-edge side test is exact; the *located index* is guaranteed
    /// only on slabs whose order certificate holds (always the case for
    /// edges of a proper planar subdivision). Use
    /// [`locate_certified`](Self::locate_certified) when the input may be
    /// degenerate — it refuses uncertified slabs instead of guessing.
    pub fn edge_below(&self, q: Point) -> Option<u32> {
        let s = self.slab_of(q.x)?;
        let idx = self.below_index(s, q)?;
        Some(self.edge_ids[self.slabs[s][idx] as usize])
    }

    /// Certified point location: locates the edge directly below `q` and
    /// classifies the answer (see [`CertifiedLocation`]).
    ///
    /// `Interior` is reported only when `q` keeps a clearance greater than
    /// `guard` from every stored edge and slab boundary. The check is
    /// O(1): it suffices to test the two vertically adjacent edges with a
    /// `2·guard` threshold and the two slab walls — any further edge of the
    /// slab would have to cross one of the adjacent edges to come closer
    /// (impossible: edges of a planar subdivision meet only at vertices,
    /// which lie on slab boundaries), and anything beyond the walls is at
    /// least the wall margin away.
    pub fn locate_certified(&self, q: Point, guard: f64) -> CertifiedLocation {
        let Some(s) = self.slab_of(q.x) else {
            return CertifiedLocation::Unlocated;
        };
        if !self.slab_certified[s] {
            return CertifiedLocation::NearBoundary;
        }
        let margin = 2.0 * guard;
        if q.x - self.xs[s] < margin || self.xs[s + 1] - q.x < margin {
            return CertifiedLocation::NearBoundary;
        }
        let slab = &self.slabs[s];
        let Some(idx) = self.below_index(s, q) else {
            return CertifiedLocation::Unlocated;
        };
        let k = slab[idx] as usize;
        let (l, r) = self.edge_geom[k];
        if orient2d(l, r, q) == 0.0 {
            return CertifiedLocation::OnEdge {
                edge: self.edge_ids[k],
            };
        }
        if dist_point_segment(q, l, r) <= margin {
            return CertifiedLocation::NearBoundary;
        }
        if idx + 1 < slab.len() {
            let (l2, r2) = self.edge_geom[slab[idx + 1] as usize];
            if dist_point_segment(q, l2, r2) <= margin {
                return CertifiedLocation::NearBoundary;
            }
        }
        CertifiedLocation::Interior {
            edge: self.edge_ids[k],
        }
    }

    /// Whether the located edge runs left-to-right as stored in the original
    /// edge tuple `(a, b)` — callers use this to pick the half-edge whose
    /// face lies *above* the edge.
    pub fn edge_is_ab_rightward(&self, vertices: &[Point], edges: &[(u32, u32)], eid: u32) -> bool {
        let (a, b) = edges[eid as usize];
        vertices[a as usize].x < vertices[b as usize].x
    }
}

/// Euclidean distance from `q` to the segment `a → b` (plain f64 — used
/// only for guard-band checks where the guard dwarfs rounding error).
fn dist_point_segment(q: Point, a: Point, b: Point) -> f64 {
    let d = b - a;
    let n2 = d.norm2();
    if n2 <= f64::MIN_POSITIVE {
        return q.dist(a);
    }
    let t = ((q - a).dot(d) / n2).clamp(0.0, 1.0);
    q.dist(a.lerp(b, t))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(x: f64, y: f64) -> Point {
        Point::new(x, y)
    }

    #[test]
    fn single_horizontal_edge() {
        let vertices = vec![p(0.0, 0.0), p(10.0, 0.0)];
        let edges = vec![(0u32, 1u32)];
        let loc = SegmentSlabLocator::build(&vertices, &edges);
        assert_eq!(loc.edge_below(p(5.0, 1.0)), Some(0));
        assert_eq!(loc.edge_below(p(5.0, -1.0)), None);
        assert_eq!(loc.edge_below(p(20.0, 1.0)), None); // outside x-range
    }

    #[test]
    fn stacked_edges() {
        // Three horizontal edges at y = 0, 1, 2.
        let vertices = vec![
            p(0.0, 0.0),
            p(10.0, 0.0),
            p(0.0, 1.0),
            p(10.0, 1.0),
            p(0.0, 2.0),
            p(10.0, 2.0),
        ];
        let edges = vec![(0u32, 1u32), (2, 3), (4, 5)];
        let loc = SegmentSlabLocator::build(&vertices, &edges);
        assert_eq!(loc.edge_below(p(5.0, 0.5)), Some(0));
        assert_eq!(loc.edge_below(p(5.0, 1.5)), Some(1));
        assert_eq!(loc.edge_below(p(5.0, 5.0)), Some(2));
        assert_eq!(loc.edge_below(p(5.0, -0.5)), None);
    }

    #[test]
    fn crossing_free_triangle() {
        let vertices = vec![p(0.0, 0.0), p(4.0, 0.0), p(2.0, 3.0)];
        let edges = vec![(0u32, 1u32), (1, 2), (2, 0)];
        let loc = SegmentSlabLocator::build(&vertices, &edges);
        // Inside the triangle: the bottom edge is below.
        assert_eq!(loc.edge_below(p(2.0, 1.0)), Some(0));
        // Above the apex: the upper-left or upper-right edge is below.
        let above = loc.edge_below(p(2.0, 4.0)).unwrap();
        assert!(above == 1 || above == 2);
    }

    #[test]
    fn vertical_edges_are_skipped() {
        let vertices = vec![p(0.0, 0.0), p(0.0, 5.0), p(4.0, 0.0), p(4.0, 5.0)];
        // One vertical edge, one horizontal edge.
        let edges = vec![(0u32, 1u32), (0, 2)];
        let loc = SegmentSlabLocator::build(&vertices, &edges);
        assert_eq!(loc.edge_below(p(2.0, 1.0)), Some(1));
    }

    #[test]
    fn certified_location_classifies_boundaries() {
        // A triangle: (0,0)–(4,0)–(2,3).
        let vertices = vec![p(0.0, 0.0), p(4.0, 0.0), p(2.0, 3.0)];
        let edges = vec![(0u32, 1u32), (1, 2), (2, 0)];
        let loc = SegmentSlabLocator::build(&vertices, &edges);
        let guard = 1e-9;
        // Well inside: certified interior above the bottom edge.
        assert_eq!(
            loc.locate_certified(p(2.5, 1.0), guard),
            CertifiedLocation::Interior { edge: 0 }
        );
        // Exactly on the bottom edge.
        assert_eq!(
            loc.locate_certified(p(2.5, 0.0), guard),
            CertifiedLocation::OnEdge { edge: 0 }
        );
        // Exactly on the slanted edge (1,2): point (3, 1.5) — the edge runs
        // (4,0)→(2,3), and (3, 1.5) is its midpoint.
        assert_eq!(
            loc.locate_certified(p(3.0, 1.5), guard),
            CertifiedLocation::OnEdge { edge: 1 }
        );
        // Within the guard band of the bottom edge: refused.
        assert_eq!(
            loc.locate_certified(p(2.5, 1e-10), guard),
            CertifiedLocation::NearBoundary
        );
        // Within the guard band of a slab wall (x = 2 is a vertex x).
        assert_eq!(
            loc.locate_certified(p(2.0 + 1e-10, 1.0), guard),
            CertifiedLocation::NearBoundary
        );
        // Below everything / outside the x-range.
        assert_eq!(
            loc.locate_certified(p(2.5, -1.0), guard),
            CertifiedLocation::Unlocated
        );
        assert_eq!(
            loc.locate_certified(p(9.0, 1.0), guard),
            CertifiedLocation::Unlocated
        );
    }

    #[test]
    fn exact_edge_below_on_shared_offsets() {
        // Two stacked edges with a large shared offset: the exact orient
        // test separates a query one representable step above the lower
        // edge, where float interpolation loses the sign.
        let o = 1e9;
        let vertices = vec![
            p(o, o),
            p(o + 8.0, o + 8.0),
            p(o, o + 4.0),
            p(o + 8.0, o + 12.0),
        ];
        let edges = vec![(0u32, 1u32), (2, 3)];
        let loc = SegmentSlabLocator::build(&vertices, &edges);
        let x = o + 2.0;
        let on = p(x, o + 2.0); // exactly on edge 0
        assert_eq!(loc.edge_below(on), Some(0));
        let above = p(x, (o + 2.0) + (oteps() * o)); // one ulp-ish above
        assert_eq!(loc.edge_below(above), Some(0));
        let below = p(x, (o + 2.0) - (o * oteps()));
        assert_eq!(loc.edge_below(below), None);
    }

    fn oteps() -> f64 {
        f64::EPSILON
    }

    #[test]
    fn size_accounting() {
        let vertices = vec![p(0.0, 0.0), p(10.0, 0.0), p(5.0, 3.0), p(6.0, 4.0)];
        let edges = vec![(0u32, 1u32)];
        let loc = SegmentSlabLocator::build(&vertices, &edges);
        // Slab boundaries at x ∈ {0, 5, 6, 10} → 3 slabs, each crossed by
        // the long bottom edge.
        assert_eq!(loc.size(), 3);
    }
}
