//! Slab-based point location for *segment* subdivisions.
//!
//! The classical slab method applied to a [`crate::Subdivision`]: cut the
//! plane at every vertex x-coordinate; within a slab the (non-vertical)
//! edges crossing it are totally ordered by height, so a query is two binary
//! searches: one for the slab, one for the edge directly below the query.
//! `O(V·E)` space in the worst case, `O(log)` query — the paper-faithful
//! point-location companion for the discrete nonzero Voronoi diagram
//! (Theorem 2.14: "preprocessed ... so that an NN≠0(q) query can be answered
//! in O(log µ + t)").

use uncertain_geom::Point;

/// Point-location structure over a set of straight edges.
#[derive(Clone, Debug)]
pub struct SegmentSlabLocator {
    /// Slab boundaries (sorted unique vertex x-coordinates).
    xs: Vec<f64>,
    /// Per slab: edge ids crossing the whole slab, sorted by height.
    slabs: Vec<Vec<u32>>,
    /// Edge geometry: (left endpoint, right endpoint) with `a.x < b.x`
    /// (vertical edges are excluded — they coincide with slab boundaries).
    edge_geom: Vec<(Point, Point)>,
    /// Original edge ids aligned with `edge_geom`.
    edge_ids: Vec<u32>,
}

impl SegmentSlabLocator {
    /// Builds the locator for the given `edges` over `vertices`.
    pub fn build(vertices: &[Point], edges: &[(u32, u32)]) -> Self {
        let mut xs: Vec<f64> = vertices.iter().map(|p| p.x).collect();
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        xs.dedup();

        let mut edge_geom = vec![];
        let mut edge_ids = vec![];
        for (eid, &(a, b)) in edges.iter().enumerate() {
            let (pa, pb) = (vertices[a as usize], vertices[b as usize]);
            if pa.x == pb.x {
                continue; // vertical: lies on a slab boundary
            }
            let (l, r) = if pa.x < pb.x { (pa, pb) } else { (pb, pa) };
            edge_geom.push((l, r));
            edge_ids.push(eid as u32);
        }

        let mut slabs: Vec<Vec<u32>> = Vec::with_capacity(xs.len().saturating_sub(1));
        for w in xs.windows(2) {
            let (x0, x1) = (w[0], w[1]);
            let xm = 0.5 * (x0 + x1);
            let mut in_slab: Vec<u32> = (0..edge_geom.len() as u32)
                .filter(|&k| {
                    let (l, r) = edge_geom[k as usize];
                    l.x <= x0 && r.x >= x1
                })
                .collect();
            in_slab.sort_by(|&i, &j| {
                let yi = y_at(edge_geom[i as usize], xm);
                let yj = y_at(edge_geom[j as usize], xm);
                yi.partial_cmp(&yj).unwrap()
            });
            slabs.push(in_slab);
        }
        SegmentSlabLocator {
            xs,
            slabs,
            edge_geom,
            edge_ids,
        }
    }

    /// Total number of (slab, edge) incidences — the structure size.
    pub fn size(&self) -> usize {
        self.slabs.iter().map(Vec::len).sum()
    }

    /// The original edge id of the edge directly *below* `q` (the first edge
    /// hit going down), or `None` when `q` is below every edge of its slab
    /// or outside the x-range.
    pub fn edge_below(&self, q: Point) -> Option<u32> {
        if self.xs.len() < 2 || q.x < self.xs[0] || q.x > *self.xs.last().unwrap() {
            return None;
        }
        let s = match self.xs.binary_search_by(|x| x.partial_cmp(&q.x).unwrap()) {
            Ok(i) => i.min(self.xs.len() - 2),
            Err(i) => i.saturating_sub(1).min(self.xs.len() - 2),
        };
        let slab = &self.slabs[s];
        // Edges are sorted by height within the slab; find the last with
        // y(q.x) ≤ q.y.
        let idx = slab.partition_point(|&k| y_at(self.edge_geom[k as usize], q.x) <= q.y);
        if idx == 0 {
            return None;
        }
        let k = slab[idx - 1] as usize;
        Some(self.edge_ids[k])
    }

    /// Whether the located edge runs left-to-right as stored in the original
    /// edge tuple `(a, b)` — callers use this to pick the half-edge whose
    /// face lies *above* the edge.
    pub fn edge_is_ab_rightward(&self, vertices: &[Point], edges: &[(u32, u32)], eid: u32) -> bool {
        let (a, b) = edges[eid as usize];
        vertices[a as usize].x < vertices[b as usize].x
    }
}

#[inline]
fn y_at(seg: (Point, Point), x: f64) -> f64 {
    let (l, r) = seg;
    let t = ((x - l.x) / (r.x - l.x)).clamp(0.0, 1.0);
    l.y + t * (r.y - l.y)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(x: f64, y: f64) -> Point {
        Point::new(x, y)
    }

    #[test]
    fn single_horizontal_edge() {
        let vertices = vec![p(0.0, 0.0), p(10.0, 0.0)];
        let edges = vec![(0u32, 1u32)];
        let loc = SegmentSlabLocator::build(&vertices, &edges);
        assert_eq!(loc.edge_below(p(5.0, 1.0)), Some(0));
        assert_eq!(loc.edge_below(p(5.0, -1.0)), None);
        assert_eq!(loc.edge_below(p(20.0, 1.0)), None); // outside x-range
    }

    #[test]
    fn stacked_edges() {
        // Three horizontal edges at y = 0, 1, 2.
        let vertices = vec![
            p(0.0, 0.0),
            p(10.0, 0.0),
            p(0.0, 1.0),
            p(10.0, 1.0),
            p(0.0, 2.0),
            p(10.0, 2.0),
        ];
        let edges = vec![(0u32, 1u32), (2, 3), (4, 5)];
        let loc = SegmentSlabLocator::build(&vertices, &edges);
        assert_eq!(loc.edge_below(p(5.0, 0.5)), Some(0));
        assert_eq!(loc.edge_below(p(5.0, 1.5)), Some(1));
        assert_eq!(loc.edge_below(p(5.0, 5.0)), Some(2));
        assert_eq!(loc.edge_below(p(5.0, -0.5)), None);
    }

    #[test]
    fn crossing_free_triangle() {
        let vertices = vec![p(0.0, 0.0), p(4.0, 0.0), p(2.0, 3.0)];
        let edges = vec![(0u32, 1u32), (1, 2), (2, 0)];
        let loc = SegmentSlabLocator::build(&vertices, &edges);
        // Inside the triangle: the bottom edge is below.
        assert_eq!(loc.edge_below(p(2.0, 1.0)), Some(0));
        // Above the apex: the upper-left or upper-right edge is below.
        let above = loc.edge_below(p(2.0, 4.0)).unwrap();
        assert!(above == 1 || above == 2);
    }

    #[test]
    fn vertical_edges_are_skipped() {
        let vertices = vec![p(0.0, 0.0), p(0.0, 5.0), p(4.0, 0.0), p(4.0, 5.0)];
        // One vertical edge, one horizontal edge.
        let edges = vec![(0u32, 1u32), (0, 2)];
        let loc = SegmentSlabLocator::build(&vertices, &edges);
        assert_eq!(loc.edge_below(p(2.0, 1.0)), Some(1));
    }

    #[test]
    fn size_accounting() {
        let vertices = vec![p(0.0, 0.0), p(10.0, 0.0), p(5.0, 3.0), p(6.0, 4.0)];
        let edges = vec![(0u32, 1u32)];
        let loc = SegmentSlabLocator::build(&vertices, &edges);
        // Slab boundaries at x ∈ {0, 5, 6, 10} → 3 slabs, each crossed by
        // the long bottom edge.
        assert_eq!(loc.size(), 3);
    }
}
