//! Slab-based point location for line arrangements.
//!
//! The classical `O(n²)`-space, `O(log n)`-query slab method: sort all
//! pairwise intersection x-coordinates into vertical slabs; within a slab the
//! lines have a fixed top-to-bottom order, so a query is two binary searches.
//! This is the lookup structure behind the exact probabilistic-Voronoi-
//! diagram queries (Theorem 4.2) — `V_Pr` refines the arrangement of all
//! bisector lines, so every slab cell carries one probability vector.
//!
//! Vertical input lines are handled by turning their x-coordinates into slab
//! boundaries.
//!
//! # Exactness
//!
//! Queries use the adaptive exact predicates of [`uncertain_geom::predicates`]
//! (`line_point_sign` for the below/above test, `cmp_lines_y_at` for the
//! per-slab ordering), so a located answer is exact with respect to the
//! stored lines. The slab *boundaries* are rounded intersection
//! x-coordinates, so [`SlabLocator::locate`] refuses to answer (returns
//! `None`) when the query is within a small guard band of a slab boundary or
//! exactly on a line — callers fall back to their exact direct evaluation
//! there, which keeps every served answer exact.

use crate::lines::Line2;
use uncertain_geom::predicates::{cmp_lines_y_at, line_point_sign};
use uncertain_geom::{Aabb, Point};

/// Point-location structure; every *cell* (slab × vertical gap) maps to a
/// stable cell id, with a representative interior sample point.
#[derive(Clone, Debug)]
pub struct SlabLocator {
    /// Non-vertical lines, in input order.
    lines: Vec<Line2>,
    /// Slab boundaries (sorted x-coordinates, including the box walls).
    xs: Vec<f64>,
    /// For each slab, the crossing lines ordered by `y` (bottom to top).
    slab_order: Vec<Vec<u32>>,
    /// Prefix sums: cell id of the bottom gap of each slab.
    offsets: Vec<usize>,
    bbox: Aabb,
    /// Guard band around slab boundaries: recorded intersection abscissae
    /// carry a few ulps of rounding and are deduplicated within
    /// `1e-12·scale`, so queries closer than this to a boundary are
    /// ambiguous and refused.
    x_guard: f64,
    /// Per-slab **order certificate**, verified at build time with exact
    /// comparisons: the slab order is sorted (never `Greater`, never
    /// coincident throughout) at *both* slab endpoints. Lines are straight,
    /// so a certified order is valid at every x inside the slab — the
    /// below-test is then provably monotone along it for any interior
    /// query, independent of where crossings were recorded. Uncertified
    /// slabs are never served.
    slab_certified: Vec<bool>,
}

impl SlabLocator {
    /// Builds the locator for `lines` within `bbox`. Lines outside the box
    /// still participate (they are infinite); callers should pre-deduplicate
    /// with [`crate::lines::dedup_lines`].
    pub fn build(lines: &[Line2], bbox: &Aabb) -> Self {
        let mut verticals: Vec<f64> = vec![];
        let mut nonvert: Vec<Line2> = vec![];
        for l in lines {
            if l.is_vertical() {
                if l.a.abs() > f64::MIN_POSITIVE {
                    verticals.push(l.c / l.a);
                }
            } else {
                nonvert.push(*l);
            }
        }
        let mut xs: Vec<f64> = vec![bbox.lo.x, bbox.hi.x];
        xs.extend(
            verticals
                .iter()
                .filter(|&&x| x > bbox.lo.x && x < bbox.hi.x),
        );
        for i in 0..nonvert.len() {
            for j in (i + 1)..nonvert.len() {
                if let Some(p) = nonvert[i].intersect(&nonvert[j]) {
                    if p.x > bbox.lo.x && p.x < bbox.hi.x {
                        xs.push(p.x);
                    }
                }
            }
        }
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        xs.dedup_by(|a, b| (*a - *b).abs() <= 1e-12 * bbox.radius().max(1.0));

        let mut slab_order = Vec::with_capacity(xs.len().saturating_sub(1));
        let mut offsets = Vec::with_capacity(xs.len());
        let mut acc = 0usize;
        let mut slab_certified = Vec::with_capacity(xs.len().saturating_sub(1));
        let tuple = |l: &Line2| (l.a, l.b, l.c);
        let x_guard = 1e-9 * bbox.radius().max(1.0);
        for w in xs.windows(2) {
            let xm = 0.5 * (w[0] + w[1]);
            let mut order: Vec<u32> = (0..nonvert.len() as u32).collect();
            // Exact y-order at the slab midpoint: near-coincident lines sort
            // correctly (and NaN-free) even when their heights agree to
            // within an ulp.
            order.sort_by(|&i, &j| {
                cmp_lines_y_at(tuple(&nonvert[i as usize]), tuple(&nonvert[j as usize]), xm)
            });
            // Order certificate over the *served* interval
            // `[x0 + guard, x1 − guard]` (queries in the guard bands are
            // refused anyway): every adjacent pair must be non-decreasing
            // at both inset points — lines are straight, so that bounds the
            // whole interval — and not coincident across it. Crossings that
            // rounded a few ulps inside a boundary fall in the guard band
            // and cannot invalidate the certificate.
            let (xl, xr) = (w[0] + x_guard, w[1] - x_guard);
            let certified = xl < xr
                && order.windows(2).all(|pair| {
                    let li = tuple(&nonvert[pair[0] as usize]);
                    let lj = tuple(&nonvert[pair[1] as usize]);
                    let c0 = cmp_lines_y_at(li, lj, xl);
                    let c1 = cmp_lines_y_at(li, lj, xr);
                    c0 != std::cmp::Ordering::Greater
                        && c1 != std::cmp::Ordering::Greater
                        && !(c0 == std::cmp::Ordering::Equal && c1 == std::cmp::Ordering::Equal)
                });
            slab_certified.push(certified);
            offsets.push(acc);
            acc += order.len() + 1;
            slab_order.push(order);
        }
        offsets.push(acc);
        SlabLocator {
            lines: nonvert,
            xs,
            slab_order,
            offsets,
            bbox: *bbox,
            // The same value the certificate insets above were verified at —
            // the served interval must never widen past the certified one.
            x_guard,
            slab_certified,
        }
    }

    /// Total number of cells.
    pub fn num_cells(&self) -> usize {
        *self.offsets.last().unwrap_or(&0)
    }

    /// Number of slabs.
    pub fn num_slabs(&self) -> usize {
        self.slab_order.len()
    }

    /// `true` when line `li` is strictly below `q` at `q.x` — exact:
    /// `y(q.x) < q.y ⇔ sign(a·qₓ + b·q_y − c) · sign(b) > 0`.
    fn strictly_below(&self, li: u32, q: Point) -> bool {
        let l = &self.lines[li as usize];
        let s = line_point_sign(l.a, l.b, l.c, q);
        if l.b > 0.0 {
            s > 0.0
        } else {
            s < 0.0
        }
    }

    /// Locates `q`, returning its cell id.
    ///
    /// Returns `None` outside the box, **exactly on a line** (measure zero),
    /// within the guard band of a slab boundary, or in a slab whose order
    /// certificate failed — every case where the located cell could be
    /// ambiguous. Callers fall back to direct exact evaluation, so served
    /// answers are always exact: a certified slab's y-order is valid at
    /// every interior x (verified at both endpoints; lines are straight),
    /// hence the exact below-test is monotone along it.
    pub fn locate(&self, q: Point) -> Option<usize> {
        if !self.bbox.contains(q) {
            return None;
        }
        if self.slab_order.is_empty() {
            return None;
        }
        // Slab index: xs[s] <= q.x <= xs[s+1].
        let s = match self.xs.binary_search_by(|x| x.partial_cmp(&q.x).unwrap()) {
            Ok(i) => i.min(self.xs.len() - 2),
            Err(i) => i.saturating_sub(1).min(self.xs.len() - 2),
        };
        if !self.slab_certified[s] {
            return None;
        }
        if q.x - self.xs[s] < self.x_guard || self.xs[s + 1] - q.x < self.x_guard {
            return None;
        }
        let order = &self.slab_order[s];
        // Gap index: number of lines strictly below q (exact predicate).
        let gap = order.partition_point(|&li| self.strictly_below(li, q));
        // Certify: the first non-below line must be *strictly* above — a
        // zero sign means q lies exactly on it.
        if gap < order.len() {
            let l = &self.lines[order[gap] as usize];
            if line_point_sign(l.a, l.b, l.c, q) == 0.0 {
                return None;
            }
        }
        Some(self.offsets[s] + gap)
    }

    /// A representative interior point of cell `id`, or `None` when the cell
    /// has no interior inside the box (a gap entirely clipped away by the
    /// box's top/bottom walls — such cells are never returned by `locate`).
    pub fn cell_sample(&self, id: usize) -> Option<Point> {
        let s = match self.offsets.binary_search(&id) {
            Ok(i) if i < self.slab_order.len() => i,
            Ok(i) => i - 1,
            Err(i) => i - 1,
        };
        let gap = id - self.offsets[s];
        let (x0, x1) = (self.xs[s], self.xs[s + 1]);
        let w = x1 - x0;
        let order = &self.slab_order[s];
        // The gap may be clipped by the box top/bottom on part of the slab;
        // probe a few x positions before giving up.
        for xf in [0.5, 0.05, 0.95, 0.25, 0.75] {
            let x = x0 + w * xf;
            let y_lo = if gap == 0 {
                self.bbox.lo.y
            } else {
                self.lines[order[gap - 1] as usize].y_at(x)
            };
            let y_hi = if gap == order.len() {
                self.bbox.hi.y
            } else {
                self.lines[order[gap] as usize].y_at(x)
            };
            let (y_lo, y_hi) = (y_lo.max(self.bbox.lo.y), y_hi.min(self.bbox.hi.y));
            if y_hi - y_lo > 1e-12 * self.bbox.radius().max(1.0) {
                return Some(Point::new(x, 0.5 * (y_lo + y_hi)));
            }
        }
        None
    }

    /// Iterates over all cell ids.
    pub fn cell_ids(&self) -> impl Iterator<Item = usize> {
        0..self.num_cells()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bbox() -> Aabb {
        Aabb::from_corners(Point::new(-10.0, -10.0), Point::new(10.0, 10.0))
    }

    #[test]
    fn single_horizontal_line() {
        let loc = SlabLocator::build(&[Line2::new(0.0, 1.0, 0.0)], &bbox());
        assert_eq!(loc.num_slabs(), 1);
        assert_eq!(loc.num_cells(), 2);
        let below = loc.locate(Point::new(0.0, -5.0)).unwrap();
        let above = loc.locate(Point::new(0.0, 5.0)).unwrap();
        assert_ne!(below, above);
        assert!(loc.locate(Point::new(100.0, 0.0)).is_none());
    }

    #[test]
    fn crossing_lines_four_cells_per_side() {
        // Two crossing diagonals: 2 slabs × 3 cells = 6 cells.
        let lines = [Line2::new(1.0, -1.0, 0.0), Line2::new(1.0, 1.0, 0.0)];
        let loc = SlabLocator::build(&lines, &bbox());
        assert_eq!(loc.num_slabs(), 2);
        assert_eq!(loc.num_cells(), 6);
        // Points in the four quadrant-like regions get distinct cells — and
        // matching samples. (x = 0 is a slab boundary, so the top/bottom
        // probes sit slightly off it; exact-boundary queries return `None`.)
        for q in [
            Point::new(-5.0, 0.0),
            Point::new(5.0, 0.0),
            Point::new(0.5, 5.0),
            Point::new(0.5, -5.0),
        ] {
            let id = loc.locate(q).unwrap();
            let sample = loc.cell_sample(id).unwrap();
            // The sample must be in the same region: same side of each line.
            for l in &lines {
                assert_eq!(
                    l.eval(q) > 0.0,
                    l.eval(sample) > 0.0,
                    "sample strayed across a line for {q}"
                );
            }
        }
    }

    #[test]
    fn boundary_queries_are_refused() {
        // Two crossing diagonals: y = x and y = −x meet at the origin.
        let lines = [Line2::new(1.0, -1.0, 0.0), Line2::new(1.0, 1.0, 0.0)];
        let loc = SlabLocator::build(&lines, &bbox());
        // Exactly on a line: refused (exact sign test hits zero).
        assert_eq!(loc.locate(Point::new(3.0, 3.0)), None);
        assert_eq!(loc.locate(Point::new(4.0, -4.0)), None);
        // Exactly on the slab boundary through the crossing: refused.
        assert_eq!(loc.locate(Point::new(0.0, 5.0)), None);
        // On the crossing itself: refused.
        assert_eq!(loc.locate(Point::new(0.0, 0.0)), None);
        // A hair inside the guard band: refused; well inside: answered.
        assert_eq!(loc.locate(Point::new(1e-11, 5.0)), None);
        assert!(loc.locate(Point::new(1e-3, 5.0)).is_some());
        // Immediately off a line (but away from boundaries): answered, and
        // the two sides land in different cells.
        let above = loc.locate(Point::new(3.0, 3.0 + 1e-9)).unwrap();
        let below = loc.locate(Point::new(3.0, 3.0 - 1e-9)).unwrap();
        assert_ne!(above, below);
    }

    #[test]
    fn vertical_lines_become_slab_boundaries() {
        let lines = [Line2::new(1.0, 0.0, 0.0)]; // x = 0
        let loc = SlabLocator::build(&lines, &bbox());
        assert_eq!(loc.num_slabs(), 2);
        let l = loc.locate(Point::new(-5.0, 0.0)).unwrap();
        let r = loc.locate(Point::new(5.0, 0.0)).unwrap();
        assert_ne!(l, r);
    }

    #[test]
    fn sample_roundtrip_random_lines() {
        let mut state = 5u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0
        };
        let lines: Vec<Line2> = (0..8)
            .map(|_| Line2::new(next(), next() + 1.5, next() * 3.0))
            .collect();
        let loc = SlabLocator::build(&lines, &bbox());
        // Every non-clipped cell's sample must locate back to that cell.
        let mut live = 0;
        for id in loc.cell_ids() {
            if let Some(s) = loc.cell_sample(id) {
                assert_eq!(loc.locate(s), Some(id), "cell {id} sample {s}");
                live += 1;
            }
        }
        assert!(live > loc.num_slabs(), "most cells should be live");
        // And random queries agree with a brute-force sign-vector match.
        for _ in 0..200 {
            let q = Point::new(next() * 9.0, next() * 9.0);
            let id = loc.locate(q).unwrap();
            let s = loc.cell_sample(id).expect("located cells are live");
            for l in &lines {
                let on_line = l.eval(q).abs() < 1e-9;
                if !on_line {
                    assert_eq!(l.eval(q) > 0.0, l.eval(s) > 0.0);
                }
            }
        }
    }
}
