//! Planar subdivisions induced by sets of segments.
//!
//! [`Subdivision::build`] splits every input segment at every intersection
//! with every other segment, merges coincident endpoints (tolerance-based
//! snapping on a hash grid), and assembles the resulting planar graph. It
//! exposes:
//!
//! * exact combinatorial counts: vertices `V`, edges `E`, connected
//!   components `C`, and faces `F = E − V + C + 1` (Euler's formula,
//!   cross-checked in tests against half-edge face tracing);
//! * bounded-face enumeration with an interior sample point per face (used
//!   to label diagram cells with their `NN≠0` sets / probability vectors);
//! * provenance: each edge remembers which input *curve* it came from.

use crate::segment::{segment_intersections, Segment};
use std::collections::HashMap;
use uncertain_geom::{Point, Vector};

/// A planar subdivision (graph embedded in the plane with straight edges).
#[derive(Clone, Debug)]
pub struct Subdivision {
    pub vertices: Vec<Point>,
    /// Edges as vertex-index pairs `(a, b)` with `a < b`.
    pub edges: Vec<(u32, u32)>,
    /// For each edge, the ids of **all** input curves passing through it
    /// (several when curves geometrically coincide — e.g. two uncertain
    /// points sharing a bisector). The first entry is the discovering curve.
    pub edge_curves: Vec<Vec<u32>>,
    components: usize,
    /// The endpoint-merging tolerance the subdivision was built with —
    /// stored vertices are within this distance of the exact (un-snapped)
    /// intersection geometry. Point-location consumers derive their guard
    /// bands from it (see [`crate::SegmentSlabLocator::locate_certified`]).
    snap_tol: f64,
}

/// An input segment tagged with a curve id (provenance).
#[derive(Clone, Copy, Debug)]
pub struct TaggedSegment {
    pub seg: Segment,
    pub curve: u32,
}

/// A bounded face discovered by tracing.
#[derive(Clone, Debug)]
pub struct FaceInfo {
    /// A point strictly inside the face.
    pub sample: Point,
    /// Number of half-edges on the outer boundary cycle.
    pub boundary_len: usize,
    /// Area enclosed by the outer boundary cycle (holes not subtracted).
    pub area: f64,
}

/// An adjacency between two bounded faces across one subdivision edge.
#[derive(Clone, Debug)]
pub struct FaceAdjacency {
    pub a: u32,
    pub b: u32,
    /// Every input curve passing through the separating edge.
    pub curves: Vec<u32>,
}

/// Bounded faces plus their adjacency (see [`Subdivision::traced_faces`]).
#[derive(Clone, Debug)]
pub struct TracedFaces {
    pub faces: Vec<FaceInfo>,
    /// One entry per subdivision edge separating two distinct bounded
    /// faces; `curves` lists every input curve passing through that edge
    /// (toggling all of them transforms one face's label into the other's).
    pub adjacencies: Vec<FaceAdjacency>,
    /// Face id per half-edge (`2e`/`2e+1` = the two directions of edge `e`,
    /// the face lying on the *left* of the direction); `u32::MAX` for
    /// half-edges on outer/hole boundaries.
    pub face_of_halfedge: Vec<u32>,
}

impl Subdivision {
    /// Builds the subdivision. `snap_tol` is the absolute distance below
    /// which points are considered identical (pass ~1e-9 × your coordinate
    /// scale). Runs in `O(m² + K log K)` for `m` segments with `K`
    /// intersections — the sizes in this workspace (thousands of segments)
    /// don't justify a sweep-line.
    pub fn build(segments: &[TaggedSegment], snap_tol: f64) -> Self {
        // 1. collect split parameters per segment
        let m = segments.len();
        let mut params: Vec<Vec<f64>> = vec![vec![0.0, 1.0]; m];
        for i in 0..m {
            for j in 0..m {
                if i == j {
                    continue;
                }
                for (t, _) in segment_intersections(&segments[i].seg, &segments[j].seg) {
                    params[i].push(t);
                }
            }
        }

        // 2. snap endpoints of subsegments onto shared vertices
        let mut snapper = Snapper::new(snap_tol);
        let mut edge_set: HashMap<(u32, u32), u32> = HashMap::new();
        let mut edges: Vec<(u32, u32)> = vec![];
        let mut edge_curves: Vec<Vec<u32>> = vec![];
        for (i, ts) in params.iter_mut().enumerate() {
            ts.sort_by(|a, b| a.partial_cmp(b).unwrap());
            ts.dedup_by(|a, b| (*a - *b).abs() < 1e-12);
            let seg = segments[i].seg;
            for w in ts.windows(2) {
                let pa = seg.at(w[0]);
                let pb = seg.at(w[1]);
                let va = snapper.id_of(pa);
                let vb = snapper.id_of(pb);
                if va == vb {
                    continue; // degenerate sliver collapsed by snapping
                }
                let key = (va.min(vb), va.max(vb));
                match edge_set.entry(key) {
                    std::collections::hash_map::Entry::Vacant(e) => {
                        e.insert(edges.len() as u32);
                        edges.push(key);
                        edge_curves.push(vec![segments[i].curve]);
                    }
                    std::collections::hash_map::Entry::Occupied(e) => {
                        // Coinciding geometry from another curve: remember
                        // every curve passing through this edge.
                        let list = &mut edge_curves[*e.get() as usize];
                        if !list.contains(&segments[i].curve) {
                            list.push(segments[i].curve);
                        }
                    }
                }
            }
        }

        // 3. connected components via union-find
        let vertices = snapper.points;
        let mut uf: Vec<u32> = (0..vertices.len() as u32).collect();
        fn find(uf: &mut [u32], x: u32) -> u32 {
            let mut root = x;
            while uf[root as usize] != root {
                root = uf[root as usize];
            }
            let mut cur = x;
            while uf[cur as usize] != root {
                let next = uf[cur as usize];
                uf[cur as usize] = root;
                cur = next;
            }
            root
        }
        for &(a, b) in &edges {
            let ra = find(&mut uf, a);
            let rb = find(&mut uf, b);
            if ra != rb {
                uf[ra as usize] = rb;
            }
        }
        let mut roots: Vec<u32> = (0..vertices.len() as u32)
            .map(|v| find(&mut uf, v))
            .collect();
        roots.sort_unstable();
        roots.dedup();
        let components = roots.len();

        Subdivision {
            vertices,
            edges,
            edge_curves,
            components,
            snap_tol: snap_tol.max(f64::MIN_POSITIVE),
        }
    }

    /// The endpoint-merging tolerance this subdivision was built with.
    pub fn snap_tol(&self) -> f64 {
        self.snap_tol
    }

    pub fn num_vertices(&self) -> usize {
        self.vertices.len()
    }

    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    pub fn num_components(&self) -> usize {
        self.components
    }

    /// Number of faces including the unbounded one (Euler:
    /// `V − E + F = 1 + C`).
    pub fn num_faces(&self) -> usize {
        self.edges.len() + self.components + 1 - self.vertices.len()
    }

    /// Total combinatorial complexity: `V + E + F`.
    pub fn complexity(&self) -> usize {
        self.num_vertices() + self.num_edges() + self.num_faces()
    }

    /// Enumerates bounded faces by half-edge tracing. Each bounded face is
    /// reported once (its counter-clockwise outer cycle) with an interior
    /// sample point.
    pub fn bounded_faces(&self) -> Vec<FaceInfo> {
        self.traced_faces().faces
    }

    /// Like [`bounded_faces`](Self::bounded_faces) but also reports the
    /// adjacency between bounded faces: `(face_a, face_b, curve)` for every
    /// subdivision edge separating two *distinct bounded* faces, with the
    /// provenance curve of that edge. (Edges bordering the outer face or a
    /// hole boundary are omitted — consumers treat the adjacency graph as a
    /// forest-able graph, not necessarily connected.)
    pub fn traced_faces(&self) -> TracedFaces {
        // Half-edges: 2*e and 2*e+1 are the two directions of edge e.
        let he_count = 2 * self.edges.len();
        let origin = |h: usize| -> u32 {
            let (a, b) = self.edges[h / 2];
            if h.is_multiple_of(2) {
                a
            } else {
                b
            }
        };
        let target = |h: usize| -> u32 {
            let (a, b) = self.edges[h / 2];
            if h.is_multiple_of(2) {
                b
            } else {
                a
            }
        };
        // Outgoing half-edges per vertex, sorted counter-clockwise by angle.
        let mut out: Vec<Vec<u32>> = vec![vec![]; self.vertices.len()];
        for h in 0..he_count {
            out[origin(h) as usize].push(h as u32);
        }
        for (v, list) in out.iter_mut().enumerate() {
            let vp = self.vertices[v];
            list.sort_by(|&h1, &h2| {
                let a1 = (self.vertices[target(h1 as usize) as usize] - vp).angle();
                let a2 = (self.vertices[target(h2 as usize) as usize] - vp).angle();
                a1.partial_cmp(&a2).unwrap()
            });
        }
        // Position of each half-edge in its origin's rotation.
        let mut pos = vec![0u32; he_count];
        for list in &out {
            for (k, &h) in list.iter().enumerate() {
                pos[h as usize] = k as u32;
            }
        }
        // next(h): at v = target(h), the rotation predecessor of twin(h)
        // (clockwise-next from the reversed edge) — traces faces with the
        // interior on the left.
        let next = |h: usize| -> usize {
            let tw = h ^ 1;
            let v = origin(tw) as usize;
            let k = pos[tw] as usize;
            let list = &out[v];
            let k2 = (k + list.len() - 1) % list.len();
            list[k2] as usize
        };

        let mut visited = vec![false; he_count];
        // Face id of each half-edge's cycle; u32::MAX for non-face cycles.
        let mut face_of_he = vec![u32::MAX; he_count];
        let mut faces = vec![];
        for h0 in 0..he_count {
            if visited[h0] {
                continue;
            }
            // Trace the cycle.
            let mut cycle = vec![];
            let mut h = h0;
            loop {
                visited[h] = true;
                cycle.push(h);
                h = next(h);
                if h == h0 {
                    break;
                }
            }
            // Signed area of the cycle.
            let mut area = 0.0;
            for &h in &cycle {
                let p = self.vertices[origin(h) as usize];
                let q = self.vertices[target(h) as usize];
                area += p.x * q.y - q.x * p.y;
            }
            area *= 0.5;
            if area <= 1e-14 {
                continue; // outer face boundary or antenna-only cycle
            }
            if let Some(sample) = self.face_sample(&cycle, &origin, &target) {
                let id = faces.len() as u32;
                for &h in &cycle {
                    face_of_he[h] = id;
                }
                faces.push(FaceInfo {
                    sample,
                    boundary_len: cycle.len(),
                    area,
                });
            }
        }
        // Adjacencies: an edge whose two half-edges lie on distinct bounded
        // faces separates them; the provenance curve is the toggle.
        let mut adjacencies = vec![];
        for e in 0..self.edges.len() {
            let f1 = face_of_he[2 * e];
            let f2 = face_of_he[2 * e + 1];
            if f1 != u32::MAX && f2 != u32::MAX && f1 != f2 {
                adjacencies.push(FaceAdjacency {
                    a: f1,
                    b: f2,
                    curves: self.edge_curves[e].clone(),
                });
            }
        }
        TracedFaces {
            faces,
            adjacencies,
            face_of_halfedge: face_of_he,
        }
    }

    /// Picks a point strictly inside the face traced by `cycle` (interior on
    /// the left of each half-edge), verified by point-in-polygon.
    fn face_sample(
        &self,
        cycle: &[usize],
        origin: &dyn Fn(usize) -> u32,
        target: &dyn Fn(usize) -> u32,
    ) -> Option<Point> {
        let poly: Vec<Point> = cycle
            .iter()
            .map(|&h| self.vertices[origin(h) as usize])
            .collect();
        // Try offsetting inward from edge midpoints at decreasing scales.
        for &h in cycle.iter() {
            let a = self.vertices[origin(h) as usize];
            let b = self.vertices[target(h) as usize];
            let len = a.dist(b);
            if len <= 0.0 {
                continue;
            }
            let mid = a.midpoint(b);
            let inward: Vector = (b - a).perp() * (1.0 / len);
            for scale in [1e-3, 1e-6, 1e-9] {
                let cand = mid + inward * (len * scale);
                if point_in_polygon(&poly, cand) {
                    return Some(cand);
                }
            }
        }
        None
    }
}

/// Even-odd point-in-polygon test (polygon may be non-convex; boundary
/// points undefined — callers only use strict-interior candidates).
pub fn point_in_polygon(poly: &[Point], q: Point) -> bool {
    let mut inside = false;
    let n = poly.len();
    for i in 0..n {
        let a = poly[i];
        let b = poly[(i + 1) % n];
        if (a.y > q.y) != (b.y > q.y) {
            let t = (q.y - a.y) / (b.y - a.y);
            let x = a.x + t * (b.x - a.x);
            if q.x < x {
                inside = !inside;
            }
        }
    }
    inside
}

/// Snaps nearby points to shared ids using a uniform hash grid.
struct Snapper {
    tol: f64,
    grid: HashMap<(i64, i64), Vec<u32>>,
    points: Vec<Point>,
}

impl Snapper {
    fn new(tol: f64) -> Self {
        Snapper {
            tol: tol.max(f64::MIN_POSITIVE),
            grid: HashMap::new(),
            points: vec![],
        }
    }

    fn cell_of(&self, p: Point) -> (i64, i64) {
        (
            (p.x / self.tol).floor() as i64,
            (p.y / self.tol).floor() as i64,
        )
    }

    fn id_of(&mut self, p: Point) -> u32 {
        let (cx, cy) = self.cell_of(p);
        for dx in -1..=1 {
            for dy in -1..=1 {
                if let Some(list) = self.grid.get(&(cx + dx, cy + dy)) {
                    for &id in list {
                        if self.points[id as usize].dist(p) <= self.tol {
                            return id;
                        }
                    }
                }
            }
        }
        let id = self.points.len() as u32;
        self.points.push(p);
        self.grid.entry((cx, cy)).or_default().push(id);
        id
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seg(ax: f64, ay: f64, bx: f64, by: f64, curve: u32) -> TaggedSegment {
        TaggedSegment {
            seg: Segment::new(Point::new(ax, ay), Point::new(bx, by)),
            curve,
        }
    }

    #[test]
    fn single_square() {
        let segs = [
            seg(0.0, 0.0, 1.0, 0.0, 0),
            seg(1.0, 0.0, 1.0, 1.0, 0),
            seg(1.0, 1.0, 0.0, 1.0, 0),
            seg(0.0, 1.0, 0.0, 0.0, 0),
        ];
        let sub = Subdivision::build(&segs, 1e-9);
        assert_eq!(sub.num_vertices(), 4);
        assert_eq!(sub.num_edges(), 4);
        assert_eq!(sub.num_components(), 1);
        assert_eq!(sub.num_faces(), 2); // inside + outside
        let faces = sub.bounded_faces();
        assert_eq!(faces.len(), 1);
        assert!((faces[0].area - 1.0).abs() < 1e-12);
        let s = faces[0].sample;
        assert!(s.x > 0.0 && s.x < 1.0 && s.y > 0.0 && s.y < 1.0);
    }

    #[test]
    fn crossing_segments() {
        // A plus sign: two segments crossing in the middle.
        let segs = [seg(-1.0, 0.0, 1.0, 0.0, 0), seg(0.0, -1.0, 0.0, 1.0, 1)];
        let sub = Subdivision::build(&segs, 1e-9);
        assert_eq!(sub.num_vertices(), 5);
        assert_eq!(sub.num_edges(), 4);
        assert_eq!(sub.num_faces(), 1); // tree: only the outer face
        assert!(sub.bounded_faces().is_empty());
    }

    #[test]
    fn grid_of_lines_euler() {
        // 3 horizontal and 3 vertical long segments: a 2x2 grid of bounded
        // cells. V = 9 crossings + 12 dangling tips = 21; E = 3*4 + 3*4 = 24;
        // F = E − V + C + 1. The graph is connected: F = 24 − 21 + 2 = 5
        // (4 bounded + outer).
        let mut segs = vec![];
        for i in 0..3 {
            let y = i as f64;
            segs.push(seg(-1.0, y, 3.0, y, i as u32));
            segs.push(seg(i as f64, -1.0, i as f64, 3.0, (3 + i) as u32));
        }
        let sub = Subdivision::build(&segs, 1e-9);
        assert_eq!(sub.num_vertices(), 21);
        assert_eq!(sub.num_edges(), 24);
        assert_eq!(sub.num_components(), 1);
        assert_eq!(sub.num_faces(), 5);
        let faces = sub.bounded_faces();
        assert_eq!(faces.len(), 4);
        for f in &faces {
            assert!((f.area - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn two_disjoint_triangles() {
        let segs = [
            seg(0.0, 0.0, 1.0, 0.0, 0),
            seg(1.0, 0.0, 0.5, 1.0, 0),
            seg(0.5, 1.0, 0.0, 0.0, 0),
            seg(5.0, 0.0, 6.0, 0.0, 1),
            seg(6.0, 0.0, 5.5, 1.0, 1),
            seg(5.5, 1.0, 5.0, 0.0, 1),
        ];
        let sub = Subdivision::build(&segs, 1e-9);
        assert_eq!(sub.num_components(), 2);
        assert_eq!(sub.num_faces(), 3); // two interiors + outer
        assert_eq!(sub.bounded_faces().len(), 2);
    }

    #[test]
    fn overlapping_collinear_segments_dedup() {
        // Two overlapping collinear segments must merge into simple edges.
        let segs = [seg(0.0, 0.0, 2.0, 0.0, 0), seg(1.0, 0.0, 3.0, 0.0, 1)];
        let sub = Subdivision::build(&segs, 1e-9);
        assert_eq!(sub.num_vertices(), 4);
        assert_eq!(sub.num_edges(), 3);
        assert_eq!(sub.num_faces(), 1);
    }

    #[test]
    fn shared_edge_between_squares() {
        // Two unit squares sharing an edge: V=6, E=7, F=3.
        let segs = [
            seg(0.0, 0.0, 1.0, 0.0, 0),
            seg(1.0, 0.0, 1.0, 1.0, 0),
            seg(1.0, 1.0, 0.0, 1.0, 0),
            seg(0.0, 1.0, 0.0, 0.0, 0),
            seg(1.0, 0.0, 2.0, 0.0, 1),
            seg(2.0, 0.0, 2.0, 1.0, 1),
            seg(2.0, 1.0, 1.0, 1.0, 1),
            seg(1.0, 1.0, 1.0, 0.0, 1), // duplicate of square 1's right edge
        ];
        let sub = Subdivision::build(&segs, 1e-9);
        assert_eq!(sub.num_vertices(), 6);
        assert_eq!(sub.num_edges(), 7);
        assert_eq!(sub.num_faces(), 3);
        assert_eq!(sub.bounded_faces().len(), 2);
    }

    #[test]
    fn traced_adjacency_grid() {
        // 2x2 grid of unit cells: 4 bounded faces, adjacency forms the 2x2
        // rook graph (4 internal separating edges).
        let mut segs = vec![];
        for i in 0..3 {
            let y = i as f64;
            segs.push(seg(0.0, y, 2.0, y, i as u32));
            segs.push(seg(i as f64, 0.0, i as f64, 2.0, (3 + i) as u32));
        }
        let sub = Subdivision::build(&segs, 1e-9);
        let traced = sub.traced_faces();
        assert_eq!(traced.faces.len(), 4);
        // Internal edges: the middle horizontal (2 subedges) and middle
        // vertical (2 subedges) separate distinct bounded faces.
        assert_eq!(traced.adjacencies.len(), 4);
        for adj in &traced.adjacencies {
            assert_ne!(adj.a, adj.b);
            assert!((adj.a as usize) < 4 && (adj.b as usize) < 4);
            assert_eq!(adj.curves.len(), 1);
        }
        // The adjacency graph is connected.
        let mut reach = [false; 4];
        reach[0] = true;
        for _ in 0..4 {
            for adj in &traced.adjacencies {
                if reach[adj.a as usize] || reach[adj.b as usize] {
                    reach[adj.a as usize] = true;
                    reach[adj.b as usize] = true;
                }
            }
        }
        assert!(reach.iter().all(|&r| r));
    }

    #[test]
    fn point_in_polygon_basics() {
        let poly = vec![
            Point::new(0.0, 0.0),
            Point::new(2.0, 0.0),
            Point::new(2.0, 2.0),
            Point::new(0.0, 2.0),
        ];
        assert!(point_in_polygon(&poly, Point::new(1.0, 1.0)));
        assert!(!point_in_polygon(&poly, Point::new(3.0, 1.0)));
        // Non-convex.
        let lshape = vec![
            Point::new(0.0, 0.0),
            Point::new(2.0, 0.0),
            Point::new(2.0, 1.0),
            Point::new(1.0, 1.0),
            Point::new(1.0, 2.0),
            Point::new(0.0, 2.0),
        ];
        assert!(point_in_polygon(&lshape, Point::new(0.5, 1.5)));
        assert!(!point_in_polygon(&lshape, Point::new(1.5, 1.5)));
    }
}
