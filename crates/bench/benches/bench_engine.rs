//! Criterion benches for the serving engine (experiments E24, E25):
//! batch throughput vs worker count, planner paths, and cache effect.
//!
//! Reports queries/sec via the harness's `Throughput` hook. Honors
//! `UNC_ENGINE_THREADS` (pins every engine below to that worker count) and
//! `UNC_BENCH_SMOKE`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use uncertain_engine::{Engine, EngineConfig, QueryRequest};
use uncertain_nn::queries::Guarantee;
use uncertain_nn::workload;

fn nonzero_batch(m: usize, seed: u64) -> Vec<QueryRequest> {
    workload::random_queries(m, 60.0, seed)
        .into_iter()
        .map(|q| QueryRequest::Nonzero { q })
        .collect()
}

/// E24: batch throughput scaling vs thread count (cold cache per engine,
/// shared prebuilt structures via a warm-up batch).
fn bench_thread_scaling(c: &mut Criterion) {
    let n = if criterion::smoke_mode() { 200 } else { 5_000 };
    let set = workload::random_discrete_set(n, 3, 5.0, 1);
    let batch = nonzero_batch(512, 2);
    let mut g = c.benchmark_group("engine_threads");
    g.sample_size(10);
    g.throughput(Throughput::Elements(batch.len() as u64));
    for &threads in uncertain_bench::sweep(&[1usize, 2, 4, 8]) {
        let engine = Engine::new(
            set.clone(),
            EngineConfig {
                threads: Some(threads),
                cache_capacity: 0, // cache off: measure raw execution
                ..EngineConfig::default()
            },
        );
        engine.run_batch(&batch); // warm: builds the planned structure
        g.bench_with_input(BenchmarkId::new("batch512", threads), &batch, |b, batch| {
            b.iter(|| engine.run_batch(batch));
        });
    }
    g.finish();
}

/// E25 companion: the three planner paths on their home turf.
fn bench_planner_paths(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine_plans");
    g.sample_size(10);
    let sizes = [(30usize, "brute"), (4_000, "index")];
    for &(n, label) in uncertain_bench::sweep(&sizes) {
        let n = uncertain_bench::scaled(n).max(30);
        let set = workload::random_discrete_set(n, 3, 5.0, 3);
        let engine = Engine::new(set, EngineConfig::default());
        let batch = nonzero_batch(256, 4);
        engine.run_batch(&batch);
        g.throughput(Throughput::Elements(batch.len() as u64));
        g.bench_with_input(BenchmarkId::new(label, n), &batch, |b, batch| {
            b.iter(|| engine.run_batch(batch));
        });
    }
    g.finish();
}

/// Cache effect: repeated batch (all hits) vs rotating batches (all misses,
/// LRU-bounded).
fn bench_cache(c: &mut Criterion) {
    let n = if criterion::smoke_mode() { 100 } else { 2_000 };
    let set = workload::random_discrete_set(n, 3, 5.0, 5);
    let mut g = c.benchmark_group("engine_cache");
    g.sample_size(10);
    let batch: Vec<QueryRequest> = workload::random_queries(256, 60.0, 6)
        .into_iter()
        .map(|q| QueryRequest::Threshold { q, tau: 0.2 })
        .collect();
    g.throughput(Throughput::Elements(batch.len() as u64));

    let engine = Engine::new(set.clone(), EngineConfig::default());
    engine.run_batch(&batch); // populate
    g.bench_with_input(BenchmarkId::new("repeat", "hits"), &batch, |b, batch| {
        b.iter(|| engine.run_batch(batch));
    });

    let cold = Engine::new(
        set,
        EngineConfig {
            cache_capacity: 0, // cache off entirely
            ..EngineConfig::default()
        },
    );
    cold.run_batch(&batch);
    let mut round = 0u64;
    g.bench_with_input(BenchmarkId::new("rotate", "misses"), &(), |b, _| {
        b.iter(|| {
            round += 1;
            let fresh: Vec<QueryRequest> = workload::random_queries(256, 60.0, 1000 + round)
                .into_iter()
                .map(|q| QueryRequest::Threshold { q, tau: 0.2 })
                .collect();
            cold.run_batch(&fresh)
        });
    });
    g.finish();
}

/// Guarantee tiers end to end: exact vs spiral vs Monte Carlo serving.
fn bench_guarantees(c: &mut Criterion) {
    let n = if criterion::smoke_mode() { 150 } else { 1_500 };
    let set = workload::random_discrete_set(n, 3, 5.0, 7);
    let batch: Vec<QueryRequest> = workload::random_queries(128, 60.0, 8)
        .into_iter()
        .map(|q| QueryRequest::TopK { q, k: 3 })
        .collect();
    let tiers: [(&str, Guarantee); 3] = [
        ("exact", Guarantee::Exact),
        ("spiral", Guarantee::Additive(0.05)),
        (
            "mc",
            Guarantee::Probabilistic {
                eps: 0.1,
                delta: 0.05,
            },
        ),
    ];
    let mut g = c.benchmark_group("engine_guarantees");
    g.sample_size(10);
    g.throughput(Throughput::Elements(batch.len() as u64));
    for &(label, guarantee) in uncertain_bench::sweep(&tiers) {
        let engine = Engine::new(
            set.clone(),
            EngineConfig {
                guarantee,
                cache_capacity: 0, // measure the quantifier, not the cache
                ..EngineConfig::default()
            },
        );
        engine.run_batch(&batch);
        g.bench_with_input(BenchmarkId::new(label, n), &batch, |b, batch| {
            b.iter(|| engine.run_batch(batch));
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_thread_scaling,
    bench_planner_paths,
    bench_cache,
    bench_guarantees
);
criterion_main!(benches);
