//! Criterion benches for the extension features (experiments E15, E16, A4,
//! A5): guaranteed Voronoi diagram, kNN≠0 queries, expected-distance NN,
//! and the L∞ variant.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use uncertain_geom::Point;
use uncertain_nn::expected::ExpectedNnIndex;
use uncertain_nn::nonzero::linf::{LinfNonzeroIndex, SquareRegion};
use uncertain_nn::nonzero::DiskNonzeroIndex;
use uncertain_nn::vnz::GuaranteedVoronoi;
use uncertain_nn::workload;

/// E15: guaranteed Voronoi construction.
fn bench_guaranteed(c: &mut Criterion) {
    let mut g = c.benchmark_group("guaranteed_build");
    g.sample_size(10);
    for &n in uncertain_bench::sweep(&[32usize, 128, 512]) {
        let set = workload::random_disk_set(n, 0.2, 1.0, n as u64);
        let disks = set.regions();
        g.bench_with_input(BenchmarkId::from_parameter(n), &disks, |b, d| {
            b.iter(|| GuaranteedVoronoi::build(d));
        });
    }
    g.finish();
}

/// E16: kNN≠0 query latency vs k.
fn bench_knn(c: &mut Criterion) {
    let mut g = c.benchmark_group("knn_nonzero");
    let set = workload::random_disk_set(50_000, 0.05, 0.5, 99);
    let idx = DiskNonzeroIndex::build(&set);
    let queries = workload::random_queries(64, 60.0, 12);
    for &k in uncertain_bench::sweep(&[1usize, 4, 16]) {
        g.bench_with_input(BenchmarkId::from_parameter(k), &queries, |b, qs| {
            let mut j = 0;
            b.iter(|| {
                j = (j + 1) % qs.len();
                idx.query_k(qs[j], k)
            });
        });
    }
    g.finish();
}

/// A4: expected-distance NN queries.
fn bench_expected(c: &mut Criterion) {
    let mut g = c.benchmark_group("expected_nn");
    for &n in uncertain_bench::sweep(&[1_000usize, 10_000]) {
        let set = workload::random_discrete_set(n, 4, 1.0, n as u64);
        let idx = ExpectedNnIndex::build_discrete(&set);
        let queries = workload::random_queries(64, 60.0, 13);
        g.bench_with_input(BenchmarkId::new("index", n), &queries, |b, qs| {
            let mut j = 0;
            b.iter(|| {
                j = (j + 1) % qs.len();
                idx.query(qs[j])
            });
        });
        g.bench_with_input(BenchmarkId::new("brute", n), &queries, |b, qs| {
            let mut j = 0;
            b.iter(|| {
                j = (j + 1) % qs.len();
                let all = idx.all_expected(qs[j]);
                all.into_iter()
                    .enumerate()
                    .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
            });
        });
    }
    g.finish();
}

/// A5: L∞ queries.
fn bench_linf(c: &mut Criterion) {
    let mut g = c.benchmark_group("linf_nonzero");
    for &n in uncertain_bench::sweep(&[10_000usize, 100_000]) {
        let mut rng = StdRng::seed_from_u64(n as u64);
        let squares: Vec<SquareRegion> = (0..n)
            .map(|_| {
                SquareRegion::new(
                    Point::new(rng.gen_range(-25.0..25.0), rng.gen_range(-25.0..25.0)),
                    rng.gen_range(0.0..0.5),
                )
            })
            .collect();
        let idx = LinfNonzeroIndex::build(&squares);
        let queries = workload::random_queries(64, 60.0, 7);
        g.bench_with_input(BenchmarkId::from_parameter(n), &queries, |b, qs| {
            let mut j = 0;
            b.iter(|| {
                j = (j + 1) % qs.len();
                idx.query(qs[j])
            });
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_guaranteed,
    bench_knn,
    bench_expected,
    bench_linf
);
criterion_main!(benches);
