//! Criterion benches for `NN≠0` query structures (experiments E8, E9, A3).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use uncertain_nn::nonzero::{
    nonzero_nn_discrete, nonzero_nn_disks, DiscreteNonzeroIndex, DiskNonzeroIndex,
};
use uncertain_nn::workload;

/// E8: disk-support queries — Theorem 3.1 structure vs brute force.
fn bench_disk_queries(c: &mut Criterion) {
    let mut g = c.benchmark_group("nonzero_disks");
    for &n in uncertain_bench::sweep(&[1_000usize, 10_000, 100_000]) {
        let set = workload::random_disk_set(n, 0.05, 0.5, n as u64);
        let disks = set.regions();
        let idx = DiskNonzeroIndex::build(&set);
        let queries = workload::random_queries(64, 60.0, 3);
        g.bench_with_input(BenchmarkId::new("index", n), &queries, |b, qs| {
            let mut k = 0;
            b.iter(|| {
                k = (k + 1) % qs.len();
                idx.query(qs[k])
            });
        });
        g.bench_with_input(BenchmarkId::new("brute", n), &queries, |b, qs| {
            let mut k = 0;
            b.iter(|| {
                k = (k + 1) % qs.len();
                nonzero_nn_disks(&disks, qs[k])
            });
        });
    }
    g.finish();
}

/// E9: discrete queries — Theorem 3.2 structure vs brute force.
fn bench_discrete_queries(c: &mut Criterion) {
    let mut g = c.benchmark_group("nonzero_discrete");
    for &(n, k) in uncertain_bench::sweep(&[(1_000usize, 4usize), (10_000, 4), (10_000, 16)]) {
        let set = workload::random_discrete_set(n, k, 0.8, n as u64);
        let idx = DiscreteNonzeroIndex::build(&set);
        let queries = workload::random_queries(64, 60.0, 4);
        let id = format!("n{n}_k{k}");
        g.bench_with_input(BenchmarkId::new("index", &id), &queries, |b, qs| {
            let mut j = 0;
            b.iter(|| {
                j = (j + 1) % qs.len();
                idx.query(qs[j])
            });
        });
        g.bench_with_input(BenchmarkId::new("brute", &id), &queries, |b, qs| {
            let mut j = 0;
            b.iter(|| {
                j = (j + 1) % qs.len();
                nonzero_nn_discrete(&set, qs[j])
            });
        });
    }
    g.finish();
}

/// A3: stage 1 only — Δ(q) by branch-and-bound vs linear scan.
fn bench_delta(c: &mut Criterion) {
    let mut g = c.benchmark_group("delta_stage1");
    for &n in uncertain_bench::sweep(&[10_000usize, 100_000]) {
        let set = workload::random_disk_set(n, 0.05, 0.5, n as u64 + 1);
        let disks = set.regions();
        let idx = DiskNonzeroIndex::build(&set);
        let queries = workload::random_queries(64, 60.0, 9);
        g.bench_with_input(BenchmarkId::new("bb", n), &queries, |b, qs| {
            let mut j = 0;
            b.iter(|| {
                j = (j + 1) % qs.len();
                idx.delta(qs[j])
            });
        });
        g.bench_with_input(BenchmarkId::new("linear", n), &queries, |b, qs| {
            let mut j = 0;
            b.iter(|| {
                j = (j + 1) % qs.len();
                disks
                    .iter()
                    .map(|c| c.max_dist(qs[j]))
                    .fold(f64::INFINITY, f64::min)
            });
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_disk_queries,
    bench_discrete_queries,
    bench_delta
);
criterion_main!(benches);
