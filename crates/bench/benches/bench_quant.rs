//! Criterion benches for quantification probabilities
//! (experiments E10–E13, A2).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use uncertain_geom::{Aabb, Point};
use uncertain_nn::quantification::exact::quantification_discrete;
use uncertain_nn::quantification::monte_carlo::{MonteCarloPnn, SampleBackend};
use uncertain_nn::quantification::{ProbabilisticVoronoiDiagram, SpiralSearch};
use uncertain_nn::vnz::constructions;
use uncertain_nn::workload;

/// Exact Eq. (2) sweep cost vs N.
fn bench_exact_sweep(c: &mut Criterion) {
    let mut g = c.benchmark_group("quant_exact_sweep");
    for &(n, k) in uncertain_bench::sweep(&[(100usize, 4usize), (1_000, 4), (10_000, 4)]) {
        let set = workload::random_discrete_set(n, k, 2.0, 7);
        let queries = workload::random_queries(64, 60.0, 2);
        g.bench_with_input(BenchmarkId::from_parameter(n * k), &queries, |b, qs| {
            let mut j = 0;
            b.iter(|| {
                j = (j + 1) % qs.len();
                quantification_discrete(&set, qs[j])
            });
        });
    }
    g.finish();
}

/// E10: V_Pr build + query on the Lemma 4.1 family.
fn bench_vpr(c: &mut Criterion) {
    let mut g = c.benchmark_group("quant_vpr");
    g.sample_size(10);
    let bbox = Aabb::from_corners(Point::new(-3.0, -3.0), Point::new(3.0, 3.0));
    for &n in uncertain_bench::sweep(&[3usize, 5]) {
        let set = constructions::lemma_4_1(n, 11);
        g.bench_with_input(BenchmarkId::new("build", n), &set, |b, s| {
            b.iter(|| ProbabilisticVoronoiDiagram::build(s, &bbox));
        });
        let vpr = ProbabilisticVoronoiDiagram::build(&set, &bbox);
        let queries = workload::random_queries(64, 2.0, 5);
        g.bench_with_input(BenchmarkId::new("query", n), &queries, |b, qs| {
            let mut j = 0;
            b.iter(|| {
                j = (j + 1) % qs.len();
                vpr.query(qs[j])
            });
        });
    }
    g.finish();
}

/// E11/A2: Monte-Carlo estimation with both backends.
fn bench_monte_carlo(c: &mut Criterion) {
    let mut g = c.benchmark_group("quant_monte_carlo");
    g.sample_size(10);
    let set = workload::random_discrete_set(200, 4, 2.0, 77);
    let queries = workload::random_queries(64, 60.0, 8);
    for (name, backend) in [
        ("kdtree", SampleBackend::KdTree),
        ("delaunay", SampleBackend::Delaunay),
    ] {
        let mut rng = StdRng::seed_from_u64(4);
        let mc = MonteCarloPnn::build_discrete(&set, 500, backend, &mut rng);
        g.bench_with_input(BenchmarkId::new("query", name), &queries, |b, qs| {
            let mut j = 0;
            b.iter(|| {
                j = (j + 1) % qs.len();
                mc.estimate_all(qs[j])
            });
        });
    }
    g.finish();
}

/// E13: spiral-search queries across spreads and tolerances.
fn bench_spiral(c: &mut Criterion) {
    let mut g = c.benchmark_group("quant_spiral");
    for &rho in uncertain_bench::sweep(&[1.0f64, 16.0]) {
        let set = workload::spread_discrete_set(2000, 3, rho, 9);
        let ss = SpiralSearch::build(&set);
        let queries = workload::random_queries(64, 60.0, 6);
        for &eps in uncertain_bench::sweep(&[0.1f64, 0.01]) {
            g.bench_with_input(
                BenchmarkId::from_parameter(format!("rho{rho}_eps{eps}")),
                &queries,
                |b, qs| {
                    let mut j = 0;
                    b.iter(|| {
                        j = (j + 1) % qs.len();
                        ss.estimate_all(qs[j], eps)
                    });
                },
            );
        }
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_exact_sweep,
    bench_vpr,
    bench_monte_carlo,
    bench_spiral
);
criterion_main!(benches);
