//! Criterion benches for the nonzero Voronoi diagram (experiments E2–E7, A1).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use uncertain_geom::{Aabb, Point};
use uncertain_nn::vnz::{
    constructions, vertices_brute, DiscreteNonzeroDiagram, NonzeroVoronoiDiagram,
};
use uncertain_nn::workload;

/// E2/E7: diagram construction over random disk sets.
fn bench_build_random(c: &mut Criterion) {
    let mut g = c.benchmark_group("vnz_build_random");
    g.sample_size(10);
    for &n in uncertain_bench::sweep(&[8usize, 16, 32, 64]) {
        let set = workload::random_disk_set(n, 0.5, 3.0, 42 + n as u64);
        let disks = set.regions();
        g.bench_with_input(BenchmarkId::from_parameter(n), &disks, |b, d| {
            b.iter(|| NonzeroVoronoiDiagram::build(d.clone()));
        });
    }
    g.finish();
}

/// E3: the Θ(n³) lower-bound construction of Theorem 2.7.
fn bench_build_lower_bound(c: &mut Criterion) {
    let mut g = c.benchmark_group("vnz_build_theorem_2_7");
    g.sample_size(10);
    for &m in uncertain_bench::sweep(&[1usize, 2, 3]) {
        let (disks, _) = constructions::theorem_2_7(m);
        g.bench_with_input(BenchmarkId::from_parameter(4 * m), &disks, |b, d| {
            b.iter(|| NonzeroVoronoiDiagram::build(d.clone()));
        });
    }
    g.finish();
}

/// E5: disjoint disks (Theorem 2.10 regime).
fn bench_build_disjoint(c: &mut Criterion) {
    let mut g = c.benchmark_group("vnz_build_disjoint");
    g.sample_size(10);
    for &lambda in uncertain_bench::sweep(&[1.0f64, 4.0]) {
        let set = workload::disjoint_disk_set(48, lambda, 3);
        let disks = set.regions();
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("lambda{lambda}")),
            &disks,
            |b, d| {
                b.iter(|| NonzeroVoronoiDiagram::build(d.clone()));
            },
        );
    }
    g.finish();
}

/// E6: the discrete diagram of Theorem 2.14.
fn bench_build_discrete(c: &mut Criterion) {
    let mut g = c.benchmark_group("vnz_build_discrete");
    g.sample_size(10);
    let bbox = Aabb::from_corners(Point::new(-60.0, -60.0), Point::new(60.0, 60.0));
    for &(n, k) in uncertain_bench::sweep(&[(6usize, 2usize), (10, 2), (6, 4)]) {
        let set = workload::random_discrete_set(n, k, 8.0, 100);
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("n{n}_k{k}")),
            &set,
            |b, s| {
                b.iter(|| DiscreteNonzeroDiagram::build(s, &bbox));
            },
        );
    }
    g.finish();
}

/// A1: vertex enumeration, envelope-guided vs brute-force triples.
fn bench_vertex_enumeration(c: &mut Criterion) {
    let mut g = c.benchmark_group("vnz_vertices_ablation");
    g.sample_size(10);
    let set = workload::random_disk_set(16, 0.4, 2.0, 1250);
    let disks = set.regions();
    g.bench_function("envelope_guided", |b| {
        b.iter(|| NonzeroVoronoiDiagram::build(disks.clone()).num_vertices());
    });
    g.bench_function("brute_triples", |b| {
        b.iter(|| vertices_brute(&disks).len());
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_build_random,
    bench_build_lower_bound,
    bench_build_disjoint,
    bench_build_discrete,
    bench_vertex_enumeration
);
criterion_main!(benches);
