//! Experiment harness: regenerates every quantitative artifact of the paper.
//!
//! Usage: `cargo run --release -p uncertain_bench --bin experiments [-- ARGS]`
//! where ARGS is any subset of {E1..E17, E24..E33, A1..A6} (default: all)
//! plus:
//!
//! * `--list` — print every experiment id with a one-line description;
//! * `--smoke` / `-s` — shrink every workload to a token size (tiny n, same
//!   fixed seeds) so the full sweep finishes in seconds — used by CI to
//!   keep every experiment code path exercised.
//!
//! Output is the set of tables recorded in `EXPERIMENTS.md`.

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::BTreeSet;
use uncertain_bench::{
    fmt, fmt_time, loglog_slope, scaled, sweep, sweep_hi, time, time_avg, Table,
};
use uncertain_geom::{Aabb, Circle, Point};
use uncertain_nn::model::{distance, ContinuousUncertainPoint};
use uncertain_nn::nonzero::{
    nonzero_nn_discrete, nonzero_nn_disks, DiscreteNonzeroIndex, DiskNonzeroIndex,
};
use uncertain_nn::quantification::exact::{quantification_continuous, quantification_discrete};
use uncertain_nn::quantification::monte_carlo::{
    samples_for_queries, MonteCarloPnn, SampleBackend,
};
use uncertain_nn::quantification::spiral::{low_weight_counterexample, SpiralSearch};
use uncertain_nn::quantification::ProbabilisticVoronoiDiagram;
use uncertain_nn::vnz::{
    constructions, vertices_brute, DiscreteNonzeroDiagram, NonzeroVoronoiDiagram, WitnessKind,
};
use uncertain_nn::workload;
use uncertain_nn::{DiscreteSet, DiskSet};

// Heap accounting for the per-experiment `bench.exp.<id>` scopes (and any
// `measure::heap_counters` use) — without this every heap metric reads 0.
#[global_allocator]
static ALLOC: uncertain_bench::measure::CountingAlloc = uncertain_bench::measure::CountingAlloc;

/// Every experiment: `(id, one-line description, runner)`.
const EXPERIMENTS: &[(&str, &str, fn())] = &[
    (
        "E1",
        "distance pdf g_{q,i} vs Monte-Carlo histogram (Figure 1)",
        e1_figure1,
    ),
    (
        "E2",
        "V≠0 complexity µ(n): cubic upper-bound sweep (Theorem 2.5)",
        e2_cubic_upper,
    ),
    (
        "E3",
        "Ω(n²) lower-bound construction (Theorem 2.7)",
        e3_lower_2_7,
    ),
    (
        "E4",
        "Ω(n³) lower-bound construction (Theorem 2.8)",
        e4_lower_2_8,
    ),
    (
        "E5",
        "disjoint-disk diagrams: near-linear complexity (Theorem 2.10)",
        e5_disjoint,
    ),
    (
        "E6",
        "discrete V≠0 diagram complexity O(kn³) (Theorem 2.14)",
        e6_discrete_diagram,
    ),
    ("E7", "V≠0 construction time scaling", e7_construction_time),
    (
        "E8",
        "disk NN≠0 queries: Theorem 3.1 structure vs brute",
        e8_disk_queries,
    ),
    (
        "E9",
        "discrete NN≠0 queries: Theorem 3.2 structure vs brute",
        e9_discrete_queries,
    ),
    (
        "E10",
        "probabilistic Voronoi diagram V_Pr size/queries (Lemma 4.1)",
        e10_vpr,
    ),
    (
        "E11",
        "Monte-Carlo quantification error vs s (Theorem 4.3)",
        e11_monte_carlo,
    ),
    (
        "E12",
        "continuous Monte-Carlo quantification (Theorem 4.5)",
        e12_continuous_mc,
    ),
    (
        "E13",
        "spiral-search error vs retrieval budget (Theorem 4.7)",
        e13_spiral,
    ),
    (
        "E14",
        "low-weight counterexample to naive truncation (Remark i)",
        e14_counterexample,
    ),
    (
        "E15",
        "guaranteed-NN region G(P) constructions (Section 2.3)",
        e15_guaranteed,
    ),
    ("E16", "nonzero k-NN extension over both models", e16_knn),
    (
        "E17",
        "discrete query-path internals (stages, candidates)",
        e17_discrete_query_path,
    ),
    (
        "E24",
        "engine: batch throughput vs threads, plans, cache hits",
        e24_engine_serving,
    ),
    (
        "E25",
        "engine planner: plan-choice crossover vs n and batch",
        e25_planner_crossover,
    ),
    (
        "E26",
        "predicate filter: hit rate & exact fallbacks vs degeneracy",
        e26_predicate_filter,
    ),
    (
        "E27",
        "dynamic updates: serving under churn vs rebuild-from-scratch",
        e27_churn_serving,
    ),
    (
        "E28",
        "dynamic updates: amortized Bentley–Saxe update cost vs n",
        e28_amortized_updates,
    ),
    (
        "E29",
        "dynamic quantification: k-way merged summaries vs fresh sweep under churn",
        e29_merged_quantification,
    ),
    (
        "E30",
        "dynamic quantification: merged-vs-fresh crossover vs bucket count",
        e30_merge_crossover,
    ),
    (
        "E31",
        "sharded engine: apply throughput scaling at 1/2/4/8/16 shards",
        e31_shard_scaling,
    ),
    (
        "E32",
        "serving front-end: overload p99 with vs without shedding",
        e32_server_overload,
    ),
    (
        "E33",
        "spatial vs hash partitioning: shards touched & q/s under skew",
        e33_partitioner_locality,
    ),
    (
        "A1",
        "ablation: vertex enumeration strategies",
        a1_enumeration_ablation,
    ),
    (
        "A2",
        "ablation: Monte-Carlo sample backend (kd vs Delaunay)",
        a2_backend_ablation,
    ),
    (
        "A3",
        "ablation: Δ(q) branch-and-bound vs linear scan",
        a3_delta_ablation,
    ),
    (
        "A4",
        "ablation: expected-NN vs most-probable-NN disagreement",
        a4_expected_vs_probable,
    ),
    (
        "A5",
        "ablation: L∞ (square support) variant",
        a5_linf_variant,
    ),
    (
        "A6",
        "ablation: spiral retrieval-count sensitivity",
        a6_retrieval_ablation,
    ),
];

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--list" || a == "-l") {
        println!("available experiments ({} total):", EXPERIMENTS.len());
        for (id, desc, _) in EXPERIMENTS {
            println!("  {id:<5} {desc}");
        }
        println!("\nflags: --smoke/-s (token-size workloads), --obs-dump (print the");
        println!("obs/v1 metrics snapshot after the runs), --list/-l (this listing);");
        println!("UNC_OBS_FLUSH=<file> streams JSON-lines snapshots during the run");
        println!("(interval UNC_OBS_FLUSH_MS, default 1000).");
        return;
    }
    let smoke_requested = args.iter().any(|a| a == "--smoke" || a == "-s");
    args.retain(|a| a != "--smoke" && a != "-s");
    if smoke_requested {
        uncertain_bench::set_smoke(true);
        println!("[smoke mode: workloads shrunk, same fixed seeds]\n");
    }
    let obs_dump = args.iter().any(|a| a == "--obs-dump");
    args.retain(|a| a != "--obs-dump");
    // With UNC_OBS_FLUSH set, stream obs/v1 snapshots for the whole run
    // (the drop at the end of main writes the final line).
    let _flusher = uncertain_obs::Flusher::from_env();
    let unknown: Vec<&String> = args
        .iter()
        .filter(|a| {
            !EXPERIMENTS
                .iter()
                .any(|(id, _, _)| id.eq_ignore_ascii_case(a))
        })
        .collect();
    if !unknown.is_empty() {
        eprintln!("error: unknown argument(s): {unknown:?}");
        eprintln!("run with --list to see every experiment id and what it does");
        std::process::exit(2);
    }
    let selected: Vec<&(&str, &str, fn())> = if args.is_empty() {
        EXPERIMENTS.iter().collect()
    } else {
        EXPERIMENTS
            .iter()
            .filter(|(id, _, _)| args.iter().any(|a| a.eq_ignore_ascii_case(id)))
            .collect()
    };
    for (id, _, run) in selected {
        // Per-experiment wall span + heap scope: `bench.exp.<id>` in the
        // registry (span_dyn interns the dynamic id).
        let scope_name = format!("bench.exp.{id}");
        let _heap = uncertain_bench::measure::heap_scope(&scope_name);
        let _span = uncertain_obs::span_dyn(&scope_name);
        run();
        println!();
    }
    if obs_dump {
        print!("{}", uncertain_obs::MetricsSnapshot::capture().dump());
    }
}

fn header(id: &str, title: &str, claim: &str) {
    println!("== {id}: {title}");
    println!("   paper: {claim}");
}

// ---------------------------------------------------------------------------

fn e1_figure1() {
    header(
        "E1",
        "distance pdf g_{q,i} (Figure 1)",
        "uniform disk R=5 at O, q=(6,8): support [5,15], unimodal arc-length shape",
    );
    let p = ContinuousUncertainPoint::uniform(Circle::new(Point::new(0.0, 0.0), 5.0));
    let q = Point::new(6.0, 8.0);
    // Monte-Carlo histogram.
    let mut rng = StdRng::seed_from_u64(1);
    let samples = scaled(1_000_000);
    let bins = 20usize;
    let (lo, hi) = (5.0, 15.0);
    let mut hist = vec![0usize; bins];
    for _ in 0..samples {
        let d = q.dist(p.sample(&mut rng));
        let b = (((d - lo) / (hi - lo) * bins as f64) as usize).min(bins - 1);
        hist[b] += 1;
    }
    let mut t = Table::new(&["bin [r0,r1)", "analytic mass", "sampled mass", "pdf mid"]);
    let mut worst: f64 = 0.0;
    #[allow(clippy::needless_range_loop)] // `b` also drives the bin bounds
    for b in 0..bins {
        let r0 = lo + (hi - lo) * b as f64 / bins as f64;
        let r1 = lo + (hi - lo) * (b + 1) as f64 / bins as f64;
        let mass = distance::cdf(&p, q, r1) - distance::cdf(&p, q, r0);
        let emp = hist[b] as f64 / samples as f64;
        worst = worst.max((mass - emp).abs());
        t.row(&[
            format!("[{r0:.1},{r1:.1})"),
            fmt(mass),
            fmt(emp),
            fmt(distance::pdf(&p, q, 0.5 * (r0 + r1))),
        ]);
    }
    t.print();
    println!("   max |analytic − sampled| bin mass = {}", fmt(worst));
}

fn e2_cubic_upper() {
    header(
        "E2",
        "V≠0 complexity, random disks (Theorem 2.5)",
        "complexity O(n^3); random instances are far below the worst case",
    );
    let mut t = Table::new(&["n", "vertices", "edges", "faces", "µ=V+E+F", "build"]);
    let (mut xs, mut ys) = (vec![], vec![]);
    for &n in sweep(&[8usize, 12, 16, 24, 32, 48, 64]) {
        let set = workload::random_disk_set(n, 0.5, 3.0, 42 + n as u64);
        let (d, secs) = time(|| NonzeroVoronoiDiagram::build(set.regions()));
        let c = d.complexity();
        xs.push(n as f64);
        ys.push(c.total().max(1) as f64);
        t.row(&[
            n.to_string(),
            c.vertices.to_string(),
            c.edges.to_string(),
            c.faces.to_string(),
            c.total().to_string(),
            fmt_time(secs),
        ]);
    }
    t.print();
    println!(
        "   measured log-log slope of µ(n) = {:.2}  (paper upper bound: 3)",
        loglog_slope(&xs, &ys)
    );
}

fn e3_lower_2_7() {
    header(
        "E3",
        "Ω(n^3) lower-bound family, two radius classes (Theorem 2.7, Fig. 5)",
        "each (i,j,k) triple contributes 2 crossing vertices: ≥ 4m³ for n = 4m",
    );
    let mut t = Table::new(&[
        "m",
        "n",
        "predicted ≥",
        "crossings",
        "all vertices",
        "build",
    ]);
    let (mut xs, mut ys) = (vec![], vec![]);
    for m in 1..=sweep_hi(1, 5) {
        let (disks, predicted) = constructions::theorem_2_7(m);
        let (d, secs) = time(|| NonzeroVoronoiDiagram::build(disks));
        let crossings = d
            .vertices
            .iter()
            .filter(|v| matches!(v.kind, WitnessKind::Crossing { .. }))
            .count();
        xs.push((4 * m) as f64);
        ys.push(crossings.max(1) as f64);
        t.row(&[
            m.to_string(),
            (4 * m).to_string(),
            predicted.to_string(),
            crossings.to_string(),
            d.num_vertices().to_string(),
            fmt_time(secs),
        ]);
    }
    t.print();
    println!(
        "   measured log-log slope of crossings(n) = {:.2}  (paper: 3)",
        loglog_slope(&xs, &ys)
    );
}

fn e4_lower_2_8() {
    header(
        "E4",
        "Ω(n^3) lower-bound family, equal radii (Theorem 2.8, Fig. 6)",
        "each (i,j,k) triple contributes ≥ 1 crossing vertex: ≥ m³ for n = 3m",
    );
    let mut t = Table::new(&[
        "m",
        "n",
        "predicted ≥",
        "crossings",
        "all vertices",
        "build",
    ]);
    let (mut xs, mut ys) = (vec![], vec![]);
    for m in 2..=sweep_hi(2, 6) {
        let (disks, predicted) = constructions::theorem_2_8(m);
        let (d, secs) = time(|| NonzeroVoronoiDiagram::build(disks));
        let crossings = d
            .vertices
            .iter()
            .filter(|v| matches!(v.kind, WitnessKind::Crossing { .. }))
            .count();
        xs.push((3 * m) as f64);
        ys.push(crossings.max(1) as f64);
        t.row(&[
            m.to_string(),
            (3 * m).to_string(),
            predicted.to_string(),
            crossings.to_string(),
            d.num_vertices().to_string(),
            fmt_time(secs),
        ]);
    }
    t.print();
    println!(
        "   measured log-log slope of crossings(n) = {:.2}  (paper: 3)",
        loglog_slope(&xs, &ys)
    );
}

fn e5_disjoint() {
    header(
        "E5",
        "disjoint disks (Theorem 2.10, Fig. 8)",
        "complexity O(λn²) for disjoint disks with radius ratio λ; Ω(n²) lower bound",
    );
    println!("   upper-bound regime (random disjoint instances):");
    let mut t = Table::new(&["λ", "n", "vertices", "µ=V+E+F"]);
    for &lambda in sweep(&[1.0f64, 2.0, 4.0, 8.0]) {
        let (mut xs, mut ys) = (vec![], vec![]);
        for &n in sweep(&[16usize, 32, 64]) {
            let set = workload::disjoint_disk_set(n, lambda, 7 + n as u64);
            let d = NonzeroVoronoiDiagram::build(set.regions());
            let c = d.complexity();
            xs.push(n as f64);
            ys.push(c.total().max(1) as f64);
            t.row(&[
                format!("{lambda}"),
                n.to_string(),
                c.vertices.to_string(),
                c.total().to_string(),
            ]);
        }
        t.row(&[
            format!("{lambda}"),
            "slope".into(),
            format!("{:.2}", loglog_slope(&xs, &ys)),
            "(≤ 2 expected)".into(),
        ]);
    }
    t.print();
    println!("   lower-bound construction (collinear equal disks):");
    let mut t = Table::new(&["m", "n", "predicted ≥ (n−1)(n−2)", "vertices"]);
    for m in 2..=sweep_hi(2, 6) {
        let (disks, predicted) = constructions::theorem_2_10_lower(m);
        let d = NonzeroVoronoiDiagram::build(disks);
        t.row(&[
            m.to_string(),
            (2 * m).to_string(),
            predicted.to_string(),
            d.num_vertices().to_string(),
        ]);
    }
    t.print();
}

fn e6_discrete_diagram() {
    header(
        "E6",
        "discrete V≠0 complexity (Theorem 2.14)",
        "complexity O(k·n³) for n points with k locations each",
    );
    let bbox = Aabb::from_corners(Point::new(-60.0, -60.0), Point::new(60.0, 60.0));
    let mut t = Table::new(&["n", "k", "γ segments", "V", "E", "F", "µ", "build"]);
    let (mut xs, mut ys) = (vec![], vec![]);
    for &(n, k) in sweep(&[
        (4usize, 2usize),
        (6, 2),
        (8, 2),
        (12, 2),
        (16, 2),
        (6, 3),
        (6, 4),
        (6, 6),
        (6, 8),
    ]) {
        let set = workload::random_discrete_set(n, k, 8.0, 100 + (n * k) as u64);
        let (d, secs) = time(|| DiscreteNonzeroDiagram::build(&set, &bbox));
        if k == 2 {
            xs.push(n as f64);
            ys.push(d.complexity().max(1) as f64);
        }
        t.row(&[
            n.to_string(),
            k.to_string(),
            d.gamma_segment_count().to_string(),
            d.subdivision.num_vertices().to_string(),
            d.subdivision.num_edges().to_string(),
            d.subdivision.num_faces().to_string(),
            d.complexity().to_string(),
            fmt_time(secs),
        ]);
    }
    t.print();
    println!(
        "   measured log-log slope of µ(n) at k=2: {:.2}  (paper upper bound: 3)",
        loglog_slope(&xs, &ys)
    );
}

fn e7_construction_time() {
    header(
        "E7",
        "diagram construction and query (Theorems 2.5/2.11)",
        "construction O(n² log n + µ) expected; queries O(log n + t)",
    );
    let mut t = Table::new(&["n", "µ", "build", "query (diagram)", "query (brute)"]);
    for &n in sweep(&[16usize, 32, 64, 128]) {
        let set = workload::random_disk_set(n, 0.5, 3.0, 5 + n as u64);
        let (d, secs) = time(|| NonzeroVoronoiDiagram::build(set.regions()));
        let queries = workload::random_queries(scaled(200), 70.0, 99);
        let tq = time_avg(1, || {
            for &q in &queries {
                std::hint::black_box(d.query(q));
            }
        }) / queries.len() as f64;
        let disks = set.regions();
        let tb = time_avg(1, || {
            for &q in &queries {
                std::hint::black_box(nonzero_nn_disks(&disks, q));
            }
        }) / queries.len() as f64;
        t.row(&[
            n.to_string(),
            d.complexity().total().to_string(),
            fmt_time(secs),
            fmt_time(tq),
            fmt_time(tb),
        ]);
    }
    t.print();
}

fn e8_disk_queries() {
    header(
        "E8",
        "NN≠0 queries, disks (Theorem 3.1)",
        "near-linear space, O(log n + t)-type queries vs O(n) brute force",
    );
    let mut t = Table::new(&[
        "n",
        "build",
        "query (index)",
        "query (brute)",
        "speedup",
        "avg |out|",
    ]);
    for &n in sweep(&[1_000usize, 10_000, 100_000]) {
        let n = scaled(n);
        let set = workload::random_disk_set(n, 0.05, 0.5, n as u64);
        let disks = set.regions();
        let (idx, build) = time(|| DiskNonzeroIndex::build(&set));
        let queries = workload::random_queries(scaled(500), 60.0, 3);
        let mut out_total = 0usize;
        let tq = time_avg(1, || {
            for &q in &queries {
                out_total += std::hint::black_box(idx.query(q)).len();
            }
        }) / queries.len() as f64;
        let tb = time_avg(1, || {
            for &q in &queries {
                std::hint::black_box(nonzero_nn_disks(&disks, q));
            }
        }) / queries.len() as f64;
        t.row(&[
            n.to_string(),
            fmt_time(build),
            fmt_time(tq),
            fmt_time(tb),
            format!("{:.0}x", tb / tq),
            format!("{:.1}", out_total as f64 / (2 * queries.len()) as f64),
        ]);
    }
    t.print();
}

fn e9_discrete_queries() {
    header(
        "E9",
        "NN≠0 queries, discrete (Theorem 3.2)",
        "O(√N polylog + t)-type queries at N = nk locations vs O(N) brute force",
    );
    let mut t = Table::new(&[
        "n",
        "k",
        "N",
        "build",
        "query (index)",
        "query (brute)",
        "speedup",
    ]);
    for &(n, k) in sweep(&[(1_000usize, 4usize), (10_000, 4), (50_000, 4), (10_000, 16)]) {
        let n = scaled(n);
        let set = workload::random_discrete_set(n, k, 0.8, n as u64);
        let (idx, build) = time(|| DiscreteNonzeroIndex::build(&set));
        let queries = workload::random_queries(scaled(300), 60.0, 4);
        let tq = time_avg(1, || {
            for &q in &queries {
                std::hint::black_box(idx.query(q));
            }
        }) / queries.len() as f64;
        let tb = time_avg(1, || {
            for &q in &queries {
                std::hint::black_box(nonzero_nn_discrete(&set, q));
            }
        }) / queries.len() as f64;
        t.row(&[
            n.to_string(),
            k.to_string(),
            (n * k).to_string(),
            fmt_time(build),
            fmt_time(tq),
            fmt_time(tb),
            format!("{:.0}x", tb / tq),
        ]);
    }
    t.print();
}

fn e10_vpr() {
    header(
        "E10",
        "probabilistic Voronoi diagram V_Pr (Lemma 4.1 + Theorem 4.2)",
        "size Θ(N⁴) with N = nk; exact O(log N + t) queries; Ω(n⁴) via the k=2 family",
    );
    let bbox = Aabb::from_corners(Point::new(-3.0, -3.0), Point::new(3.0, 3.0));
    let mut t = Table::new(&[
        "n",
        "N",
        "bisectors",
        "cells",
        "distinct π-vectors",
        "build",
        "query",
    ]);
    let (mut xs, mut ys) = (vec![], vec![]);
    for &n in sweep(&[3usize, 4, 5, 6, 7]) {
        let set = constructions::lemma_4_1(n, 11);
        let (vpr, secs) = time(|| ProbabilisticVoronoiDiagram::build(&set, &bbox));
        let queries = workload::random_queries(scaled(200), 2.0, 5);
        let tq = time_avg(1, || {
            for &q in &queries {
                std::hint::black_box(vpr.query(q));
            }
        }) / queries.len() as f64;
        xs.push(n as f64);
        ys.push(vpr.num_distinct_vectors().max(1) as f64);
        t.row(&[
            n.to_string(),
            (2 * n).to_string(),
            vpr.num_bisectors().to_string(),
            vpr.num_cells().to_string(),
            vpr.num_distinct_vectors().to_string(),
            fmt_time(secs),
            fmt_time(tq),
        ]);
    }
    t.print();
    println!(
        "   measured log-log slope of distinct vectors(n) = {:.2}  (paper: 4)",
        loglog_slope(&xs, &ys)
    );
}

fn e11_monte_carlo() {
    header(
        "E11",
        "Monte-Carlo quantification (Theorem 4.3)",
        "s = ⌈ln(2n|Q|/δ)/(2ε²)⌉ instantiations give additive error ≤ ε w.p. 1−δ",
    );
    let set = workload::random_discrete_set(15, 3, 6.0, 21);
    let queries = workload::random_queries(scaled(100), 60.0, 5);
    let mut t = Table::new(&["ε", "δ", "s", "max error", "build", "query"]);
    for &eps in sweep(&[0.2f64, 0.1, 0.05, 0.02]) {
        let delta = 0.05;
        let s = samples_for_queries(eps, delta, set.len(), queries.len());
        let mut rng = StdRng::seed_from_u64(2);
        let (mc, build) =
            time(|| MonteCarloPnn::build_discrete(&set, s, SampleBackend::KdTree, &mut rng));
        let mut max_err: f64 = 0.0;
        let tq = time_avg(1, || {
            for &q in &queries {
                let est = mc.estimate_all(q);
                let exact = quantification_discrete(&set, q);
                for i in 0..set.len() {
                    max_err = max_err.max((est[i] - exact[i]).abs());
                }
            }
        }) / queries.len() as f64;
        t.row(&[
            format!("{eps}"),
            format!("{delta}"),
            s.to_string(),
            fmt(max_err),
            fmt_time(build),
            fmt_time(tq),
        ]);
    }
    t.print();
}

fn e12_continuous_mc() {
    header(
        "E12",
        "continuous Monte Carlo (Lemma 4.4 / Theorem 4.5)",
        "sampling the continuous pdfs inherits the additive-ε guarantee",
    );
    // All-uniform disks: the Eq. (1) reference uses the *analytic* cdf, so
    // the quadrature error stays well below the Monte-Carlo error.
    let set: DiskSet = workload::random_disk_set(8, 0.5, 2.5, 55);
    let queries = workload::random_queries(10, 40.0, 4);
    let exact: Vec<Vec<f64>> = queries
        .iter()
        .map(|&q| quantification_continuous(&set, q, 8192))
        .collect();
    let mut t = Table::new(&["s", "max error vs Eq.(1) quadrature"]);
    for &s in sweep(&[100usize, 400, 1600, 6400]) {
        let mut rng = StdRng::seed_from_u64(3);
        let mc = MonteCarloPnn::build_continuous(&set, s, SampleBackend::KdTree, &mut rng);
        let mut max_err: f64 = 0.0;
        for (qi, &q) in queries.iter().enumerate() {
            let est = mc.estimate_all(q);
            for i in 0..set.len() {
                max_err = max_err.max((est[i] - exact[qi][i]).abs());
            }
        }
        t.row(&[s.to_string(), fmt(max_err)]);
    }
    t.print();
    println!("   expected error decay ~ 1/√s");
}

fn e13_spiral() {
    header(
        "E13",
        "spiral search (Lemma 4.6 / Theorem 4.7)",
        "m(ρ,ε) = ⌈ρk ln(1/ε)⌉ + k − 1 nearest locations give one-sided error ≤ ε",
    );
    let mut t = Table::new(&[
        "ρ",
        "ε",
        "m(ρ,ε)",
        "N",
        "max error",
        "query (spiral)",
        "query (exact)",
    ]);
    for &rho in sweep(&[1.0f64, 4.0, 16.0, 64.0]) {
        let set = workload::spread_discrete_set(scaled(2000), 3, rho, 9);
        let ss = SpiralSearch::build(&set);
        let queries = workload::random_queries(scaled(50), 60.0, 6);
        for &eps in &[0.1f64, 0.01] {
            let m = ss.retrieval_budget(eps);
            let mut max_err: f64 = 0.0;
            let tq = time_avg(1, || {
                for &q in &queries {
                    let est = ss.estimate_all(q, eps);
                    std::hint::black_box(&est);
                }
            }) / queries.len() as f64;
            for &q in &queries {
                let est = ss.estimate_all(q, eps);
                let exact = quantification_discrete(&set, q);
                for i in 0..set.len() {
                    max_err = max_err.max(exact[i] - est[i]); // one-sided
                }
            }
            let te = time_avg(1, || {
                for &q in &queries {
                    std::hint::black_box(quantification_discrete(&set, q));
                }
            }) / queries.len() as f64;
            t.row(&[
                format!("{rho}"),
                format!("{eps}"),
                m.to_string(),
                set.total_locations().to_string(),
                fmt(max_err),
                fmt_time(tq),
                fmt_time(te),
            ]);
        }
    }
    t.print();
}

fn e14_counterexample() {
    header(
        "E14",
        "low-weight truncation counterexample (Section 4.3, Remark (i))",
        "dropping locations with w < ε/k flips the NN ranking by > 2ε; spiral search does not",
    );
    let eps = 0.01;
    // The construction needs n > 4/ε so the swarm's weight falls below the
    // naive truncation threshold; keep that floor even in smoke mode.
    let n = scaled(2000).max((4.0 / eps) as usize + 2);
    let (set, q) = low_weight_counterexample(n, eps);
    let exact = quantification_discrete(&set, q);
    // Naive truncation.
    let k = set.max_k();
    let naive_set = DiscreteSet::new(
        set.points
            .iter()
            .map(|p| {
                let kept: Vec<(Point, f64)> = p
                    .locations()
                    .iter()
                    .zip(p.weights())
                    .filter(|&(_, &w)| w >= eps / k as f64)
                    .map(|(&l, &w)| (l, w))
                    .collect();
                let (locs, ws): (Vec<Point>, Vec<f64>) = kept.into_iter().unzip();
                uncertain_nn::DiscreteUncertainPoint::new(locs, ws)
            })
            .collect(),
    );
    let naive = quantification_discrete(&naive_set, q);
    let ss = SpiralSearch::build(&set);
    let spiral = ss.estimate_all(q, eps);
    let mut t = Table::new(&["method", "π_0 (true winner)", "π_1", "ranking"]);
    for (name, v) in [
        ("exact", &exact),
        ("naive truncation", &naive),
        ("spiral search", &spiral),
    ] {
        t.row(&[
            name.into(),
            fmt(v[0]),
            fmt(v[1]),
            if v[0] > v[1] {
                "π_0 > π_1 ✓".into()
            } else {
                "π_1 > π_0 ✗ (flipped)".to_string()
            },
        ]);
    }
    t.print();
}

fn e17_discrete_query_path() {
    header(
        "E17",
        "Theorem 2.14 query path: point location + delta-encoded labels",
        "the diagram answers NN≠0 in O(log µ + t) after O(µ) label storage ([DSST89])",
    );
    let bbox = Aabb::from_corners(Point::new(-60.0, -60.0), Point::new(60.0, 60.0));
    let mut t = Table::new(&[
        "n",
        "k",
        "faces",
        "locator size",
        "labels: delta/explicit",
        "query (located)",
        "query (brute)",
    ]);
    for &(n, k) in sweep(&[(6usize, 2usize), (10, 2), (14, 2), (8, 4)]) {
        let set = workload::random_discrete_set(n, k, 8.0, 300 + (n * k) as u64);
        let d = DiscreteNonzeroDiagram::build(&set, &bbox);
        let explicit: usize = d.faces.iter().map(|f| f.label.len()).sum();
        let queries = workload::random_queries(scaled(500), 100.0, 17);
        let tq = time_avg(1, || {
            for &q in &queries {
                std::hint::black_box(d.query_located(q));
            }
        }) / queries.len() as f64;
        let tb = time_avg(1, || {
            for &q in &queries {
                std::hint::black_box(d.query(q));
            }
        }) / queries.len() as f64;
        t.row(&[
            n.to_string(),
            k.to_string(),
            d.faces.len().to_string(),
            d.locator_size().to_string(),
            format!("{}/{}", d.label_store.storage_cost(), explicit),
            fmt_time(tq),
            fmt_time(tb),
        ]);
    }
    t.print();
}

fn a1_enumeration_ablation() {
    header(
        "A1",
        "ablation: envelope-guided vs brute-force vertex enumeration",
        "both are exact; envelope grouping does the work the Theorem 2.5 charging argument predicts",
    );
    let mut t = Table::new(&[
        "n",
        "vertices (env)",
        "vertices (brute)",
        "time env",
        "time brute",
    ]);
    for &n in sweep(&[8usize, 12, 16, 24, 32]) {
        let set = workload::random_disk_set(n, 0.4, 2.0, 1234 + n as u64);
        let disks = set.regions();
        let (d, te) = time(|| NonzeroVoronoiDiagram::build(disks.clone()));
        let (vb, tb) = time(|| vertices_brute(&disks));
        t.row(&[
            n.to_string(),
            d.num_vertices().to_string(),
            vb.len().to_string(),
            fmt_time(te),
            fmt_time(tb),
        ]);
    }
    t.print();
}

fn a2_backend_ablation() {
    header(
        "A2",
        "ablation: Monte-Carlo per-sample backend (kd-tree vs Delaunay point location)",
        "the paper describes Vor(R_j) + point location; a kd-tree answers the same query",
    );
    let set = workload::random_discrete_set(scaled(200), 4, 2.0, 77);
    let s = scaled(500);
    let queries = workload::random_queries(scaled(200), 60.0, 8);
    let mut t = Table::new(&["backend", "build", "query", "agreement"]);
    let mut rng1 = StdRng::seed_from_u64(4);
    let (kd, b1) =
        time(|| MonteCarloPnn::build_discrete(&set, s, SampleBackend::KdTree, &mut rng1));
    let mut rng2 = StdRng::seed_from_u64(4);
    let (del, b2) =
        time(|| MonteCarloPnn::build_discrete(&set, s, SampleBackend::Delaunay, &mut rng2));
    let q1 = time_avg(1, || {
        for &q in &queries {
            std::hint::black_box(kd.estimate_all(q));
        }
    }) / queries.len() as f64;
    let q2 = time_avg(1, || {
        for &q in &queries {
            std::hint::black_box(del.estimate_all(q));
        }
    }) / queries.len() as f64;
    let mut agree = true;
    for &q in &queries {
        let a = kd.estimate_all(q);
        let b = del.estimate_all(q);
        if a.iter().zip(&b).any(|(x, y)| (x - y).abs() > 1e-12) {
            agree = false;
        }
    }
    t.row(&["kd-tree".into(), fmt_time(b1), fmt_time(q1), "-".into()]);
    t.row(&[
        "Delaunay".into(),
        fmt_time(b2),
        fmt_time(q2),
        if agree {
            "identical votes".into()
        } else {
            "DIVERGED".to_string()
        },
    ]);
    t.print();
}

fn a3_delta_ablation() {
    header(
        "A3",
        "ablation: Δ(q) branch-and-bound vs linear scan",
        "stage 1 of the Theorem 3.1 query",
    );
    let mut t = Table::new(&["n", "Δ(q) b&b", "Δ(q) linear", "speedup"]);
    for &n in sweep(&[1_000usize, 10_000, 100_000]) {
        let n = scaled(n);
        let set = workload::random_disk_set(n, 0.05, 0.5, n as u64 + 1);
        let disks = set.regions();
        let idx = DiskNonzeroIndex::build(&set);
        let queries = workload::random_queries(scaled(500), 60.0, 9);
        let tq = time_avg(1, || {
            for &q in &queries {
                std::hint::black_box(idx.delta(q));
            }
        }) / queries.len() as f64;
        let tl = time_avg(1, || {
            for &q in &queries {
                let d = disks
                    .iter()
                    .map(|c| c.max_dist(q))
                    .fold(f64::INFINITY, f64::min);
                std::hint::black_box(d);
            }
        }) / queries.len() as f64;
        t.row(&[
            n.to_string(),
            fmt_time(tq),
            fmt_time(tl),
            format!("{:.0}x", tl / tq),
        ]);
    }
    t.print();
}

fn e15_guaranteed() {
    header(
        "E15",
        "guaranteed Voronoi diagram ([SE08], Section 1.2)",
        "cells with |NN≠0| = 1 have O(n) total complexity (vs Θ(n³) for the full diagram)",
    );
    use uncertain_nn::vnz::GuaranteedVoronoi;
    let mut t = Table::new(&["n", "guaranteed complexity", "V≠0 vertices", "ratio"]);
    let (mut xs, mut ys) = (vec![], vec![]);
    for &n in sweep(&[16usize, 32, 64, 128, 256]) {
        let set = workload::random_disk_set(n, 0.2, 1.0, 3 + n as u64);
        let disks = set.regions();
        let gv = GuaranteedVoronoi::build(&disks);
        let gc = gv.total_complexity();
        let vz = if n <= 64 {
            NonzeroVoronoiDiagram::build(disks)
                .num_vertices()
                .to_string()
        } else {
            "-".into()
        };
        xs.push(n as f64);
        ys.push(gc.max(1) as f64);
        t.row(&[
            n.to_string(),
            gc.to_string(),
            vz,
            format!("{:.2}", gc as f64 / n as f64),
        ]);
    }
    t.print();
    println!(
        "   measured log-log slope of guaranteed complexity(n) = {:.2}  ([SE08]: 1)",
        loglog_slope(&xs, &ys)
    );
}

fn e16_knn() {
    header(
        "E16",
        "kNN≠0 queries (Section 1.2 kNN variant)",
        "P_i ∈ kNN≠0(q) ⟺ #{j≠i : Δ_j ≤ δ_i} ≤ k−1 (generalizes Lemma 2.1); index vs brute",
    );
    use uncertain_nn::nonzero::knn::nonzero_knn_disks;
    let mut t = Table::new(&["n", "k", "avg |out|", "query (index)", "query (brute)"]);
    for &n in sweep(&[10_000usize, 100_000]) {
        let n = scaled(n);
        let set = workload::random_disk_set(n, 0.05, 0.5, n as u64);
        let disks = set.regions();
        let idx = DiskNonzeroIndex::build(&set);
        let queries = workload::random_queries(scaled(200), 60.0, 12);
        for &k in &[1usize, 2, 4, 8] {
            let mut total = 0usize;
            let tq = time_avg(1, || {
                for &q in &queries {
                    total += std::hint::black_box(idx.query_k(q, k)).len();
                }
            }) / queries.len() as f64;
            let tb = time_avg(1, || {
                for &q in &queries {
                    std::hint::black_box(nonzero_knn_disks(&disks, q, k));
                }
            }) / queries.len() as f64;
            t.row(&[
                n.to_string(),
                k.to_string(),
                format!("{:.1}", total as f64 / (2 * queries.len()) as f64),
                fmt_time(tq),
                fmt_time(tb),
            ]);
        }
    }
    t.print();
}

fn a4_expected_vs_probable() {
    header(
        "A4",
        "expected-distance NN ([AESZ12]) vs most-probable NN",
        "Section 1.2: the expected NN \"is not a good indicator under large uncertainty\"",
    );
    use uncertain_nn::expected::{expected_vs_probable_divergence, ExpectedNnIndex};
    let (set, q) = expected_vs_probable_divergence();
    let idx = ExpectedNnIndex::build_discrete(&set);
    let (winner_e, dist_e) = idx.query(q).unwrap();
    let pi = quantification_discrete(&set, q);
    let winner_p = pi
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
        .unwrap()
        .0;
    let mut t = Table::new(&["criterion", "winner", "value"]);
    t.row(&[
        "expected distance".into(),
        format!("P_{winner_e}"),
        fmt(dist_e),
    ]);
    t.row(&[
        "max probability".into(),
        format!("P_{winner_p}"),
        fmt(pi[winner_p]),
    ]);
    t.print();
    println!(
        "   divergence instance: E picks P_{winner_e}, π picks P_{winner_p} (π = {:?})",
        pi
    );

    // Agreement rate on random instances — how often the two criteria
    // coincide when uncertainty is small vs large.
    let n_queries = scaled(200);
    let header = format!("agreement over {n_queries} queries");
    let mut t = Table::new(&["cluster diameter", &header]);
    for &diam in &[1.0f64, 8.0, 20.0] {
        let set = workload::random_discrete_set(20, 4, diam, 5);
        let idx = ExpectedNnIndex::build_discrete(&set);
        let mut agree = 0usize;
        let queries = workload::random_queries(n_queries, 60.0, 6);
        for &q in &queries {
            let (we, _) = idx.query(q).unwrap();
            let pi = quantification_discrete(&set, q);
            let wp = pi
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                .unwrap()
                .0;
            if we == wp {
                agree += 1;
            }
        }
        t.row(&[
            format!("{diam}"),
            format!("{:.1}%", 100.0 * agree as f64 / queries.len() as f64),
        ]);
    }
    t.print();
}

fn a5_linf_variant() {
    header(
        "A5",
        "L∞ metric with square regions (remark after Theorem 3.1)",
        "the same two-stage query works verbatim under L∞",
    );
    use rand::Rng;
    use uncertain_nn::nonzero::linf::{nonzero_nn_linf, LinfNonzeroIndex, SquareRegion};
    let mut t = Table::new(&["n", "query (index)", "query (brute)", "speedup"]);
    for &n in sweep(&[10_000usize, 100_000]) {
        let n = scaled(n);
        let mut rng = StdRng::seed_from_u64(n as u64);
        let squares: Vec<SquareRegion> = (0..n)
            .map(|_| {
                SquareRegion::new(
                    Point::new(rng.gen_range(-25.0..25.0), rng.gen_range(-25.0..25.0)),
                    rng.gen_range(0.0..0.5),
                )
            })
            .collect();
        let idx = LinfNonzeroIndex::build(&squares);
        let queries = workload::random_queries(scaled(300), 60.0, 7);
        let tq = time_avg(1, || {
            for &q in &queries {
                std::hint::black_box(idx.query(q));
            }
        }) / queries.len() as f64;
        let tb = time_avg(1, || {
            for &q in &queries {
                std::hint::black_box(nonzero_nn_linf(&squares, q));
            }
        }) / queries.len() as f64;
        t.row(&[
            n.to_string(),
            fmt_time(tq),
            fmt_time(tb),
            format!("{:.0}x", tb / tq),
        ]);
    }
    t.print();
}

fn a6_retrieval_ablation() {
    header(
        "A6",
        "ablation: spiral-search retrieval backend (kd-tree vs quad-tree)",
        "§4.3 Remark (ii): \"one may use quad-trees and a branch-and-bound algorithm to retrieve m points\"",
    );
    use uncertain_spatial::{KdTree, QuadTree};
    let set = workload::random_discrete_set(scaled(20_000), 3, 1.0, 77);
    let items: Vec<(Point, u32)> = set
        .all_locations()
        .enumerate()
        .map(|(flat, (_, _, loc, _))| (loc, flat as u32))
        .collect();
    let kd = KdTree::build(items.clone());
    let qt = QuadTree::build(items);
    let queries = workload::random_queries(scaled(200), 60.0, 31);
    let mut t = Table::new(&["m (retrieval budget)", "kd-tree", "quad-tree"]);
    for &m in sweep(&[16usize, 128, 1024]) {
        let tk = time_avg(1, || {
            for &q in &queries {
                std::hint::black_box(kd.k_nearest(q, m));
            }
        }) / queries.len() as f64;
        let tq = time_avg(1, || {
            for &q in &queries {
                std::hint::black_box(qt.k_nearest(q, m));
            }
        }) / queries.len() as f64;
        t.row(&[m.to_string(), fmt_time(tk), fmt_time(tq)]);
    }
    t.print();
    // Retrieval sets must be identical (up to distance ties).
    for &q in queries.iter().take(20) {
        let a: Vec<f64> = kd.k_nearest(q, 64).iter().map(|&(_, _, d)| d).collect();
        let b: Vec<f64> = qt.k_nearest(q, 64).iter().map(|&(_, _, d)| d).collect();
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-12, "retrieval mismatch");
        }
    }
    println!("   retrieved sets identical on all sampled queries");
}

// Keep BTreeSet import alive for potential future experiment variants.
#[allow(dead_code)]
fn distinct_sets_of(d: &NonzeroVoronoiDiagram, queries: &[Point]) -> usize {
    let mut seen: BTreeSet<Vec<usize>> = BTreeSet::new();
    for &q in queries {
        let mut s = d.query(q);
        s.sort_unstable();
        seen.insert(s);
    }
    seen.len()
}

// ---------------------------------------------------------------------------

/// E24: the serving engine end to end — batch throughput scaling vs worker
/// count, the planner switching plans across set sizes, and the result
/// cache on a repeated-query batch.
fn e24_engine_serving() {
    use uncertain_engine::{Engine, EngineConfig, QueryRequest};
    header(
        "E24",
        "engine: batch serving (threads, plans, cache)",
        "serving layer over Theorems 3.2 / 2.14 / 4.2–4.7 structures; amortized plan choice",
    );

    // (a) Planner choice across set sizes, fixed batch of 256 NN≠0 queries.
    let batch: Vec<QueryRequest> = workload::random_queries(256, 60.0, 24)
        .into_iter()
        .map(|q| QueryRequest::Nonzero { q })
        .collect();
    let mut t = Table::new(&["n", "plan", "built", "wall", "q/s"]);
    let mut plans_seen: BTreeSet<String> = BTreeSet::new();
    for &n in sweep(&[24usize, 2_048, 16_384]) {
        let set = workload::random_discrete_set(n, 3, 5.0, n as u64);
        let engine = Engine::new(set, EngineConfig::default());
        let resp = engine.run_batch(&batch);
        let plan = resp.stats.plan.summary();
        plans_seen.insert(plan.clone());
        t.row(&[
            n.to_string(),
            plan,
            format!("{:?}", resp.stats.built),
            fmt_time(resp.stats.wall.as_secs_f64()),
            format!("{:.0}", resp.stats.throughput_qps()),
        ]);
    }
    t.print();
    println!(
        "   distinct plans across the sweep: {} {:?}",
        plans_seen.len(),
        plans_seen
    );
    assert!(
        plans_seen.len() >= 2,
        "the planner should switch plans across this sweep"
    );

    // (b) Throughput scaling vs thread count (one mid-size set, warm
    // structures, cold cache per engine).
    let n = scaled(5_000).max(64);
    let set = workload::random_discrete_set(n, 3, 5.0, 5);
    let big_batch: Vec<QueryRequest> = workload::random_queries(scaled(2_048).max(64), 60.0, 25)
        .into_iter()
        .map(|q| QueryRequest::Nonzero { q })
        .collect();
    let mut t = Table::new(&["threads", "wall", "q/s", "worker util"]);
    for &threads in sweep(&[1usize, 2, 4, 8]) {
        let engine = Engine::new(
            set.clone(),
            EngineConfig {
                threads: Some(threads),
                cache_capacity: 0, // cache off: measure execution, not memoization
                ..EngineConfig::default()
            },
        );
        engine.run_batch(&big_batch); // warm the planned structures
        let resp = engine.run_batch(&big_batch);
        t.row(&[
            format!("{} (got {})", threads, engine.threads()),
            fmt_time(resp.stats.wall.as_secs_f64()),
            format!("{:.0}", resp.stats.throughput_qps()),
            format!("{:.0}%", 100.0 * resp.stats.worker_utilization()),
        ]);
    }
    t.print();
    println!("   (UNC_ENGINE_THREADS overrides the requested counts)");

    // (c) Result cache on a repeated-query batch.
    let engine = Engine::new(set, EngineConfig::default());
    let repeated: Vec<QueryRequest> = workload::random_queries(32, 60.0, 26)
        .iter()
        .cycle()
        .take(512)
        .map(|&q| QueryRequest::Threshold { q, tau: 0.25 })
        .collect();
    let resp = engine.run_batch(&repeated);
    println!(
        "   repeated-query batch: {} hits / {} misses (hit rate {:.0}%), wall {}",
        resp.stats.cache_hits,
        resp.stats.cache_misses,
        100.0 * resp.stats.cache_hit_rate(),
        fmt_time(resp.stats.wall.as_secs_f64()),
    );
    assert!(
        resp.stats.cache_hits > 0,
        "repeated queries must produce cache hits"
    );
    let again = engine.run_batch(&repeated);
    println!(
        "   same batch again:     {} hits / {} misses (hit rate {:.0}%), wall {}",
        again.stats.cache_hits,
        again.stats.cache_misses,
        100.0 * again.stats.cache_hit_rate(),
        fmt_time(again.stats.wall.as_secs_f64()),
    );

    // (d) The ExecStats one-liner plus the per-layer span timings the
    // observability layer attributed to the last batch.
    println!("   last batch: {}", again.stats);
    for s in &again.stats.spans {
        println!(
            "   span {:<28} count {:>6}  total {:>9}",
            s.name,
            s.count,
            uncertain_obs::fmt_ns(s.total_ns)
        );
    }
    assert!(
        again
            .stats
            .spans
            .iter()
            .any(|s| s.name.starts_with("engine.")),
        "a served batch must record engine-layer spans"
    );
}

/// E25: the planner's cost model — which plan wins as n and the batch size
/// vary, with the planner's own cost table at the crossover points.
fn e25_planner_crossover() {
    use uncertain_engine::{planner, PlannerInputs};
    use uncertain_nn::queries::Guarantee;
    header(
        "E25",
        "planner crossover: chosen plan vs n and batch size",
        "build + batch·per_query amortization over Theorems 3.1/3.2/2.14/4.2–4.7 engines",
    );
    let k = 3usize;
    let mut t = Table::new(&["n", "batch=4", "batch=256", "batch=16k", "batch=1M"]);
    for &n in sweep(&[8usize, 64, 1_024, 32_768]) {
        let mut cells = vec![n.to_string()];
        for &batch in &[4usize, 256, 16_384, 1_048_576] {
            let plan = planner::plan(&PlannerInputs {
                n,
                total_locations: n * k,
                max_k: k,
                spread: 4.0,
                nonzero_count: batch,
                quant_count: 0,
                guarantee: Guarantee::Exact,
                diagram_cap: 40,
                index_built: false,
                diagram_built: false,
                spiral_built: false,
                mc_built_samples: None,
                dynamic_ready: false,
                dynamic_buckets: 0,
                dynamic_quant_cold_locations: 0,
                quant_snapped: false,
                shards: 0,
                expected_shards_touched: 0.0,
            });
            cells.push(plan.summary().replace("nonzero:", ""));
        }
        t.row(&cells);
    }
    t.print();

    // Quantification side: guarantee tier × n, batch = 256.
    let tiers: [(&str, Guarantee); 3] = [
        ("exact", Guarantee::Exact),
        ("±0.05", Guarantee::Additive(0.05)),
        (
            "p(0.05,.05)",
            Guarantee::Probabilistic {
                eps: 0.05,
                delta: 0.05,
            },
        ),
    ];
    let mut t = Table::new(&["n", "exact", "±0.05", "p(0.05,.05)"]);
    for &n in sweep(&[64usize, 1_024, 32_768]) {
        let mut cells = vec![n.to_string()];
        for &(_, g) in &tiers {
            let plan = planner::plan(&PlannerInputs {
                n,
                total_locations: n * k,
                max_k: k,
                spread: 4.0,
                nonzero_count: 0,
                quant_count: 256,
                guarantee: g,
                diagram_cap: 40,
                index_built: false,
                diagram_built: false,
                spiral_built: false,
                mc_built_samples: None,
                dynamic_ready: false,
                dynamic_buckets: 0,
                dynamic_quant_cold_locations: 0,
                quant_snapped: false,
                shards: 0,
                expected_shards_touched: 0.0,
            });
            cells.push(plan.summary().replace("quant:", ""));
        }
        t.row(&cells);
    }
    t.print();

    // The full cost table at one crossover point, as the engine records it.
    let plan = planner::plan(&PlannerInputs {
        n: 1_024,
        total_locations: 1_024 * k,
        max_k: k,
        spread: 4.0,
        nonzero_count: 256,
        quant_count: 256,
        guarantee: Guarantee::Additive(0.05),
        diagram_cap: 40,
        index_built: false,
        diagram_built: false,
        spiral_built: false,
        mc_built_samples: None,
        dynamic_ready: false,
        dynamic_buckets: 0,
        dynamic_quant_cold_locations: 0,
        quant_snapped: false,
        shards: 0,
        expected_shards_touched: 0.0,
    });
    let mut t = Table::new(&["candidate", "build", "per-query", "total", "chosen"]);
    for e in &plan.estimates {
        t.row(&[
            e.name.clone(),
            format!("{:.0}", e.build),
            format!("{:.0}", e.per_query),
            format!("{:.0}", e.total),
            if e.chosen { "*".into() } else { "".into() },
        ]);
    }
    t.print();
}

/// E26: the adaptive predicate kernel — how often the f64 filter certifies
/// a sign vs falls back to exact expansion arithmetic, per input-degeneracy
/// family, together with the share of queries the certified `V≠0` point
/// location serves without the Lemma 2.1 fallback.
fn e26_predicate_filter() {
    use uncertain_geom::predicates::{predicate_stats, reset_predicate_stats};
    use uncertain_nn::model::DiscreteUncertainPoint;
    header(
        "E26",
        "predicate filter hit rate vs input degeneracy",
        "filtered exact predicates: fast path dominates except within ulp-shells of degeneracies",
    );
    let certain = |locs: Vec<Point>| -> DiscreteSet {
        DiscreteSet::new(
            locs.into_iter()
                .map(DiscreteUncertainPoint::certain)
                .collect(),
        )
    };
    let m = scaled(20_000);

    // Degeneracy families, most benign first. Each provides a site set and
    // a query stream aimed at its own degeneracies.
    let random_set = workload::random_discrete_set(8, 2, 6.0, 3);
    let random_queries = workload::random_queries(m, 80.0, 5);

    let grid_sites: Vec<Point> = (0..4)
        .flat_map(|i| (0..4).map(move |j| Point::new(4.0 * i as f64, 4.0 * j as f64)))
        .collect();
    let mut grid_queries = vec![];
    for i in 0..4 {
        for j in 0..3 {
            grid_queries.push(Point::new(4.0 * i as f64, 4.0 * j as f64 + 2.0));
            grid_queries.push(Point::new(4.0 * j as f64 + 2.0, 4.0 * i as f64));
            grid_queries.push(Point::new(4.0 * j as f64 + 2.0, 4.0 * j as f64 + 2.0));
        }
    }
    let grid_queries: Vec<Point> = grid_queries.iter().copied().cycle().take(m).collect();

    let ring_sites: Vec<Point> = [
        (7.0, 24.0),
        (24.0, 7.0),
        (24.0, -7.0),
        (7.0, -24.0),
        (-7.0, -24.0),
        (-24.0, -7.0),
        (-24.0, 7.0),
        (-7.0, 24.0),
        (15.0, 20.0),
        (20.0, -15.0),
        (-15.0, -20.0),
        (-20.0, 15.0),
    ]
    .iter()
    .map(|&(x, y)| Point::new(x, y))
    .collect();
    let mut ring_queries = vec![Point::new(0.0, 0.0)];
    for w in ring_sites.windows(2) {
        ring_queries.push(Point::new((w[0].x + w[1].x) / 2.0, (w[0].y + w[1].y) / 2.0));
    }
    let ring_queries: Vec<Point> = ring_queries.iter().copied().cycle().take(m).collect();

    let line_sites: Vec<Point> = (0..7).map(|i| Point::new(4.0 * i as f64, 0.0)).collect();
    let line_queries: Vec<Point> = (0..m)
        .map(|i| Point::new((i % 28) as f64, 0.0)) // on the line, many on bisectors
        .collect();

    let families: Vec<(&str, DiscreteSet, Vec<Point>)> = vec![
        ("random", random_set, random_queries),
        ("integer grid", certain(grid_sites), grid_queries),
        ("cocircular ring", certain(ring_sites), ring_queries),
        ("collinear line", certain(line_sites), line_queries),
    ];

    let mut t = Table::new(&[
        "family",
        "predicates",
        "filter hits",
        "exact fb",
        "hit rate",
        "certified loc",
    ]);
    for (name, set, queries) in &families {
        let bbox = {
            let locs = Aabb::from_points(set.all_locations().map(|(_, _, l, _)| l));
            locs.inflated(0.3 * locs.lo.dist(locs.hi) + 8.0)
        };
        reset_predicate_stats();
        let d = DiscreteNonzeroDiagram::build(set, &bbox);
        let mut located = 0usize;
        for &q in queries {
            if d.locate_face(q).is_some() {
                located += 1;
            } else {
                let _ = d.query(q); // the exact fallback the engine takes
            }
        }
        let stats = predicate_stats();
        t.row(&[
            name.to_string(),
            stats.total().to_string(),
            stats.filter_hits.to_string(),
            stats.exact_fallbacks.to_string(),
            format!("{:.4}", stats.filter_hit_rate()),
            format!("{:.4}", located as f64 / queries.len().max(1) as f64),
        ]);
    }
    t.print();
    println!(
        "   random inputs stay ≥ 0.99 filter hits; degenerate families trade\n   \
         fast-path locations for exact fallbacks instead of wrong answers"
    );
}

/// E27: serving under churn — a dynamic engine absorbing update batches via
/// `apply()` (Bentley–Saxe carries, epoch snapshots) against the baseline
/// that rebuilds a fresh engine (and therefore fresh indexes) from scratch
/// after every change. Both serve the identical query batch on the
/// identical surviving site set each round; answers are cross-checked.
fn e27_churn_serving() {
    use uncertain_bench::churn::{ChurnConfig, ChurnStream};
    use uncertain_engine::{Engine, EngineConfig, QueryRequest};
    header(
        "E27",
        "query serving under churn: dynamic apply() vs rebuild-from-scratch",
        "amortized O(log n) updates beat per-change O(N log N) rebuilds once churn is sustained",
    );
    let n = scaled(4_096).max(32);
    let rounds = if uncertain_bench::smoke() { 2 } else { 5 };
    // Moderate per-round batches: the regime where a per-change index
    // rebuild cannot amortize (with huge batches the planner correctly
    // flips back to rebuilding the static index — that crossover is E25's
    // subject, not this experiment's).
    let batch: Vec<QueryRequest> = workload::random_queries(scaled(128).max(32), 60.0, 27)
        .into_iter()
        .map(|q| QueryRequest::Nonzero { q })
        .collect();
    let mut t = Table::new(&[
        "churn/round",
        "dyn ms/round",
        "rebuild ms/round",
        "speedup",
        "dyn plan",
        "rebuilt sites/upd",
    ]);
    for &rate in sweep(&[0.01f64, 0.10, 0.25]) {
        let set = workload::random_discrete_set(n, 3, 5.0, 2700 + (rate * 100.0) as u64);
        let engine = Engine::new(set, EngineConfig::default());
        // Warm-up: the first apply bulk-loads the Bentley–Saxe structure
        // (a one-time cost equal to one rebuild), and one batch warms the
        // serving path. The baseline gets the same warm-up treatment.
        let mut stream = ChurnStream::new(271, ChurnConfig::default(), (0..n).collect());
        let warm = engine.apply(&stream.tick(rate));
        stream.observe(&warm);
        engine.run_batch(&batch);

        let mut dyn_secs = 0.0;
        let mut rebuild_secs = 0.0;
        let mut plan = String::new();
        let mut updates_applied = 0u64;
        let mut rebuilt_sites = 0u64;
        for _ in 0..rounds {
            let updates = stream.tick(rate);
            updates_applied += updates.len() as u64;
            // Dynamic path: absorb the updates, serve the batch.
            let (resp, secs) = time(|| {
                let report = engine.apply(&updates);
                stream.observe(&report);
                rebuilt_sites += report.sites_rebuilt;
                engine.run_batch(&batch)
            });
            dyn_secs += secs;
            plan = resp.stats.plan.summary();
            // Baseline: a brand-new engine over the identical live set pays
            // its index builds from zero inside the serving batch.
            let live = engine.live_set();
            let batch_ref = &batch;
            let (baseline, secs) = time(move || {
                let fresh = Engine::new(live, EngineConfig::default());
                fresh.run_batch(batch_ref)
            });
            rebuild_secs += secs;
            assert_eq!(
                resp.results.len(),
                baseline.results.len(),
                "dynamic and rebuilt engines must answer the same batch"
            );
            // Dynamic results are in stable ids; map the baseline's dense
            // indices through the id table before comparing.
            let ids = engine.site_ids();
            for (a, b) in resp.results.iter().zip(&baseline.results) {
                let (
                    uncertain_engine::QueryResult::Nonzero(got),
                    uncertain_engine::QueryResult::Nonzero(dense),
                ) = (a, b)
                else {
                    panic!("shape");
                };
                let mut want: Vec<usize> = dense.iter().map(|&d| ids[d]).collect();
                want.sort_unstable();
                assert_eq!(got, &want, "dynamic ≠ rebuild-from-scratch");
            }
        }
        let r = rounds as f64;
        t.row(&[
            format!("{:.0}%", rate * 100.0),
            format!("{:.2}", dyn_secs / r * 1e3),
            format!("{:.2}", rebuild_secs / r * 1e3),
            format!("{:.2}x", rebuild_secs / dyn_secs),
            plan,
            format!(
                "{:.1}",
                rebuilt_sites as f64 / updates_applied.max(1) as f64
            ),
        ]);
    }
    t.print();
    println!(
        "   n = {n}, {} queries/round, {rounds} rounds; answers cross-checked per round",
        batch.len()
    );
}

/// E28: the amortized Bentley–Saxe update cost — mean sites rebuilt per
/// update (the logarithmic-method currency) and wall time per update, as n
/// grows. Theory: O(log n) rebuilt sites per insert, O(1) per remove.
fn e28_amortized_updates() {
    use rand::Rng;
    use uncertain_nn::dynamic::{DynamicConfig, DynamicSet};
    use uncertain_nn::model::DiscreteUncertainPoint;
    header(
        "E28",
        "amortized update cost of the Bentley–Saxe layer vs n",
        "sites rebuilt per update grows like log2(n); removes amortize to O(1) via compaction",
    );
    let mut rng = StdRng::seed_from_u64(28);
    let mut t = Table::new(&[
        "n",
        "updates",
        "rebuilt/update",
        "log2(n)",
        "µs/update",
        "global rebuilds",
        "buckets",
    ]);
    let mut ratios = vec![];
    for &n in sweep(&[1_024usize, 4_096, 16_384]) {
        let n = scaled(n).max(64);
        let base = workload::random_discrete_set(n, 3, 5.0, n as u64);
        let mut d = DynamicSet::from_set(&base, DynamicConfig::default());
        let before = d.stats().rebuild;
        let updates = 2 * n;
        // Victim pool maintained outside the timed loop (mirrors
        // ChurnStream), so µs/update times the structure, not the harness.
        let mut pool: Vec<usize> = (0..n).collect();
        let ops: Vec<(u32, Point, usize)> = (0..updates)
            .map(|_| {
                (
                    rng.gen_range(0..3u32),
                    Point::new(rng.gen_range(-25.0..25.0), rng.gen_range(-25.0..25.0)),
                    rng.gen_range(0..usize::MAX),
                )
            })
            .collect();
        let (_, secs) = time(|| {
            for &(kind, p, pick) in &ops {
                match kind {
                    0 => pool.push(d.insert(DiscreteUncertainPoint::certain(p))),
                    1 if pool.len() > 1 => {
                        let id = pool.swap_remove(pick % pool.len());
                        d.remove(id);
                    }
                    _ => {
                        let id = pool[pick % pool.len()];
                        d.update_location(id, DiscreteUncertainPoint::certain(p));
                    }
                }
            }
        });
        let delta = d.stats().rebuild.since(&before);
        let per_update = delta.sites_rebuilt as f64 / updates as f64;
        ratios.push(per_update / (n as f64).log2());
        let s = d.stats();
        t.row(&[
            n.to_string(),
            updates.to_string(),
            format!("{per_update:.2}"),
            format!("{:.1}", (n as f64).log2()),
            format!("{:.1}", secs / updates as f64 * 1e6),
            delta.global_rebuilds.to_string(),
            s.buckets.to_string(),
        ]);
    }
    t.print();
    println!(
        "   rebuilt/update ÷ log2(n) stays bounded across the sweep: {:?}",
        ratios.iter().map(|r| format!("{r:.2}")).collect::<Vec<_>>()
    );
    assert!(
        ratios.iter().all(|&r| r < 6.0),
        "amortized update cost is not logarithmic: {ratios:?}"
    );
}

/// E29: merged quantification vs the fresh sweep under churn — the same
/// dynamic structure absorbing update waves, then serving the identical
/// quantification batch through both exact plan variants. Fresh pays the
/// full `O(N log N)` assemble+sort per query; merged draws warm per-bucket
/// distance-ordered streams through the k-way merge and stops at the
/// sweep's early exit. Answers are cross-checked bitwise every round.
fn e29_merged_quantification() {
    use rand::Rng;
    use uncertain_nn::dynamic::{DynamicConfig, DynamicSet, Update};
    use uncertain_nn::model::DiscreteUncertainPoint;
    header(
        "E29",
        "merged quantification vs fresh sweep under churn",
        "per-bucket sorted summaries + k-way merge make quantification churn-native (sublinear once warm)",
    );
    let n = scaled(4_096).max(64);
    let rounds = if uncertain_bench::smoke() { 2 } else { 5 };
    let queries = workload::random_queries(scaled(64).max(8), 60.0, 29);
    let mut t = Table::new(&[
        "churn/round",
        "merged µs/q",
        "fresh µs/q",
        "speedup",
        "bucket reuse",
        "entries/N",
    ]);
    let mut low_churn_speedups = vec![];
    for &rate in sweep(&[0.01f64, 0.10, 0.25]) {
        let base = workload::random_discrete_set(n, 3, 5.0, 2900 + (rate * 100.0) as u64);
        let mut d = DynamicSet::from_set(&base, DynamicConfig::default());
        let mut rng = StdRng::seed_from_u64(291);
        let mut pool: Vec<usize> = (0..n).collect();
        // Warm-up: the first quantification pass builds every bucket's
        // summary once (the lazy one-time cost, like any index build).
        for &q in &queries {
            let _ = d.quantification_merged(q);
        }
        let (mut merged_secs, mut fresh_secs) = (0.0, 0.0);
        let (mut touches, mut warm, mut entries, mut live_locs) = (0u64, 0u64, 0u64, 0u64);
        let mut checksum = 0.0f64;
        for round in 0..rounds {
            let count = ((n as f64 * rate).ceil() as usize).max(1);
            let mut updates = Vec::with_capacity(count);
            for _ in 0..count {
                match rng.gen_range(0..3u32) {
                    1 if pool.len() > 1 => {
                        let i = rng.gen_range(0..pool.len());
                        updates.push(Update::Remove(pool.swap_remove(i)));
                    }
                    sel => {
                        let c = Point::new(rng.gen_range(-25.0..25.0), rng.gen_range(-25.0..25.0));
                        let locs = (0..3)
                            .map(|_| {
                                Point::new(
                                    c.x + rng.gen_range(-2.5..2.5),
                                    c.y + rng.gen_range(-2.5..2.5),
                                )
                            })
                            .collect();
                        let site = DiscreteUncertainPoint::uniform(locs);
                        if sel == 0 || pool.is_empty() {
                            updates.push(Update::Insert(site));
                        } else {
                            let i = rng.gen_range(0..pool.len());
                            updates.push(Update::Move {
                                id: pool[i],
                                to: site,
                            });
                        }
                    }
                }
            }
            let outcome = d.apply(&updates);
            pool.extend(outcome.inserted);
            // Merged pass (collecting the reuse metrics as the engine does).
            let (_, secs) = time(|| {
                for &q in &queries {
                    let (pi, st) = d.quantification_merged_with_stats(q);
                    touches += st.buckets as u64;
                    warm += st.warm_buckets as u64;
                    entries += st.entries_merged as u64;
                    live_locs += st.live_locations as u64;
                    checksum += pi.first().map_or(0.0, |&(_, p)| p);
                }
            });
            merged_secs += secs;
            // Fresh pass over the identical structure and queries.
            let (_, secs) = time(|| {
                for &q in &queries {
                    let pi = d.quantification(q);
                    checksum -= pi.first().map_or(0.0, |&(_, p)| p);
                }
            });
            fresh_secs += secs;
            // Cross-check bitwise on a sub-sample each round.
            for &q in queries.iter().take(4) {
                let merged = d.quantification_merged(q);
                let fresh = d.quantification(q);
                assert_eq!(merged.len(), fresh.len());
                for ((mi, mp), (fi, fp)) in merged.iter().zip(&fresh) {
                    assert_eq!(mi, fi);
                    assert_eq!(
                        mp.to_bits(),
                        fp.to_bits(),
                        "merged ≠ fresh at {q} (round {round})"
                    );
                }
            }
        }
        assert!(checksum.abs() < 1e-9, "plan variants diverged: {checksum}");
        let per_q = (rounds * queries.len()) as f64;
        let speedup = fresh_secs / merged_secs;
        if rate <= 0.10 {
            low_churn_speedups.push(speedup);
        }
        t.row(&[
            format!("{:.0}%", rate * 100.0),
            format!("{:.1}", merged_secs / per_q * 1e6),
            format!("{:.1}", fresh_secs / per_q * 1e6),
            format!("{speedup:.1}x"),
            format!("{:.0}%", 100.0 * warm as f64 / touches.max(1) as f64),
            format!("{:.3}", entries as f64 / live_locs.max(1) as f64),
        ]);
    }
    t.print();
    println!(
        "   n = {n}, {} queries/round, {rounds} rounds; merged ≡ fresh bitwise each round",
        queries.len()
    );
    if !uncertain_bench::smoke() {
        assert!(
            low_churn_speedups.iter().all(|&s| s > 1.0),
            "merged path must beat the fresh sweep at ≤10% churn: {low_churn_speedups:?}"
        );
    }
}

/// E30: where the merged path starts winning as the structure's shape
/// varies — the per-query cost of the k-way merge scales with the bucket
/// fan-out and the live-set size (answer assembly), while the fresh sweep
/// scales with `N log N`. Each n is measured in both extreme layouts: one
/// compact bucket (a bulk load) and the maximally fragmented
/// popcount-of-n layout an insert-only history produces.
fn e30_merge_crossover() {
    use uncertain_nn::dynamic::{DynamicConfig, DynamicSet};
    header(
        "E30",
        "merged-vs-fresh crossover vs bucket count",
        "merge overhead grows with bucket fan-out; the fresh sweep with N log N — they cross at small n",
    );
    let mut t = Table::new(&[
        "n",
        "buckets=1 µs/q",
        "buckets",
        "fragmented µs/q",
        "fresh µs/q",
        "best speedup",
    ]);
    // Non-powers of two: an insert-only history leaves one bucket per set
    // bit of n, so these sizes produce genuinely fragmented layouts.
    for &n in sweep(&[250usize, 1_000, 4_000, 16_000]) {
        let n = scaled(n).max(22);
        let base = workload::random_discrete_set(n, 3, 5.0, 3000 + n as u64);
        let queries = workload::random_queries(scaled(48).max(8), 60.0, 30);
        // Layout A: one compact bucket (bulk load).
        let compact = DynamicSet::from_set(&base, DynamicConfig::default());
        // Layout B: insert-built — popcount(n) buckets.
        let mut fragmented = DynamicSet::new(DynamicConfig::default());
        for p in &base.points {
            fragmented.insert(p.clone());
        }
        let mut checksum = 0.0f64;
        let mut measure = |d: &DynamicSet, merged: bool| {
            // Warm pass, then timed passes.
            for &q in &queries {
                checksum += if merged {
                    d.quantification_merged(q).first().map_or(0.0, |&(_, p)| p)
                } else {
                    d.quantification(q).first().map_or(0.0, |&(_, p)| p)
                };
            }
            let reps = if uncertain_bench::smoke() { 1 } else { 3 };
            let (_, secs) = time(|| {
                for _ in 0..reps {
                    for &q in &queries {
                        if merged {
                            checksum += d.quantification_merged(q).len() as f64;
                        } else {
                            checksum += d.quantification(q).len() as f64;
                        }
                    }
                }
            });
            secs / (reps * queries.len()) as f64
        };
        let merged_compact = measure(&compact, true);
        let merged_frag = measure(&fragmented, true);
        let fresh = measure(&compact, false);
        assert!(checksum > 0.0);
        // Both layouts answer identically (ids 0..n in both).
        for &q in queries.iter().take(3) {
            assert_eq!(
                compact.quantification_merged(q),
                fragmented.quantification_merged(q)
            );
        }
        let buckets = fragmented.stats().buckets;
        t.row(&[
            n.to_string(),
            format!("{:.1}", merged_compact * 1e6),
            buckets.to_string(),
            format!("{:.1}", merged_frag * 1e6),
            format!("{:.1}", fresh * 1e6),
            format!("{:.1}x", fresh / merged_compact.min(merged_frag)),
        ]);
    }
    t.print();
    println!("   merged measured on 1-bucket and popcount(n)-bucket layouts of the same sites");
}

/// E31: apply-throughput scaling of the sharded engine. The monolithic
/// engine snapshots the **whole** set per apply (an `O(n)` clone); the
/// sharded engine clones only the shards a batch touches, so a batch
/// confined to one shard pays `O(n/S)` — the speedup is algorithmic
/// (clone-volume reduction), not thread-count, and shows up even on one
/// core. The workload is the ISSUE's "disjoint-shard batches": Move
/// batches each confined to a single shard, round-robin over shards.
fn e31_shard_scaling() {
    use uncertain_engine::shard::{shard_of, ShardedEngine};
    use uncertain_engine::{EngineConfig, Update};
    use uncertain_nn::model::DiscreteUncertainPoint;
    header(
        "E31",
        "sharded apply throughput vs shard count",
        "disjoint-shard batches touch O(n/S) state per apply, so throughput scales ~S× over the monolithic clone",
    );
    let n = if uncertain_bench::smoke() {
        100_000
    } else {
        1_000_000
    };
    let applies = if uncertain_bench::smoke() { 24 } else { 48 };
    let batch = 16; // Move updates per apply, all in one shard.
    let base = workload::random_discrete_set(n, 3, 5.0, 31);
    let mut t = Table::new(&[
        "S",
        "applies",
        "updates",
        "wall",
        "updates/s",
        "speedup vs S=1",
    ]);
    let mut rng = StdRng::seed_from_u64(0xE31);
    let mut base_rate = 0.0f64;
    let mut speedups = vec![];
    // Not `sweep(..)`: higher S is *cheaper* per apply, and the S=4 point
    // is the acceptance bar, so the full shard ladder runs even in smoke.
    for s in [1usize, 2, 4, 8, 16] {
        let engine = ShardedEngine::new(
            base.clone(),
            EngineConfig {
                shards: Some(s),
                ..EngineConfig::default()
            },
        );
        // Per-shard victim pools, built outside the timed loop so the
        // apply loop times the engine, not the partitioner.
        let mut by_shard: Vec<Vec<usize>> = vec![vec![]; s];
        for id in 0..n {
            by_shard[shard_of(id, s)].push(id);
        }
        let batches: Vec<Vec<Update>> = (0..applies)
            .map(|i| {
                use rand::Rng;
                let pool = &by_shard[i % s];
                (0..batch)
                    .map(|j| Update::Move {
                        id: pool[(i * 7919 + j * 104_729) % pool.len()],
                        to: DiscreteUncertainPoint::uniform(vec![
                            Point::new(rng.gen_range(-25.0..25.0), rng.gen_range(-25.0..25.0)),
                            Point::new(rng.gen_range(-25.0..25.0), rng.gen_range(-25.0..25.0)),
                        ]),
                    })
                    .collect()
            })
            .collect();
        let (moved, secs) = time(|| {
            let mut moved = 0usize;
            for b in &batches {
                let r = engine.apply(b);
                assert_eq!(r.missed, 0, "victim pool produced a dead id");
                moved += r.moved;
            }
            moved
        });
        assert_eq!(moved, applies * batch);
        let rate = moved as f64 / secs;
        if s == 1 {
            base_rate = rate;
        }
        let speedup = rate / base_rate;
        speedups.push((s, speedup));
        t.row(&[
            s.to_string(),
            applies.to_string(),
            moved.to_string(),
            fmt_time(secs),
            format!("{:.0}", rate),
            format!("{speedup:.2}x"),
        ]);
    }
    t.print();
    println!(
        "   n={n} live sites; every batch = {batch} moves confined to one shard (round-robin)"
    );
    println!("   speedup is clone-volume, not parallelism: valid on a single core");
    // Smoke stays assert-free on the scaling claim (CI boxes are noisy);
    // the full run enforces the ISSUE's >2x-at-4-shards acceptance bar.
    if !uncertain_bench::smoke() {
        let at4 = speedups
            .iter()
            .find(|&&(s, _)| s == 4)
            .map(|&(_, x)| x)
            .unwrap_or(0.0);
        assert!(
            at4 > 2.0,
            "expected >2x apply throughput at 4 shards, got {at4:.2}x"
        );
    }
}

// ---------------------------------------------------------------------------

/// E32: the network serving front-end under 2× overload — admission
/// control (shed at the queue bound) keeps the p99 of *admitted* requests
/// bounded by roughly `bound / capacity`, while the same overload against
/// an unbounded queue grows the backlog (and with it the tail) without
/// limit for as long as the overload lasts.
fn e32_server_overload() {
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::{Arc, Mutex};
    use std::time::{Duration, Instant};
    use uncertain_bench::measure::percentile;
    use uncertain_engine::server::protocol::{Client, ErrorCode, Reply, Request, WireError};
    use uncertain_engine::server::{Server, ServerConfig, ServerHandle};
    use uncertain_engine::{Engine, EngineConfig, QueryRequest};

    header(
        "E32",
        "serving front-end: overload with vs without shedding",
        "bounded queues trade availability for tail latency: shed keeps p99 ≈ bound/capacity under 2× overload; unbounded queues let it grow with the backlog",
    );

    let n = scaled(5_000).max(200);
    let set = workload::random_discrete_set(n, 3, 5.0, 32);
    let engine = Arc::new(Engine::new(set, EngineConfig::default()));
    // Every request gets a *unique* query point (a splitmix hash of its
    // index) — cache hits would otherwise quietly raise capacity during
    // the run and soften the very overload being measured.
    let uq = |i: u64| -> Point {
        let mix = |x: u64| -> u64 {
            let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        Point::new(
            (mix(i) % 60_000) as f64 / 1000.0 - 30.0,
            (mix(i ^ 0xE32) % 60_000) as f64 / 1000.0 - 30.0,
        )
    };
    let (probe_burst, phase_secs) = if uncertain_bench::smoke() {
        (1_000u64, 0.8)
    } else {
        (20_000u64, 4.0)
    };
    let bound = 64usize;
    let start = |queue_bound: usize| -> ServerHandle {
        Server::start(
            Arc::clone(&engine),
            ServerConfig {
                queue_bound,
                batch_window: Duration::from_micros(500),
                ..ServerConfig::default()
            },
        )
        .expect("bind loopback")
    };

    // Phase 1: saturated-capacity probe — pipeline a burst against an
    // unbounded queue and time first-send → last-reply. Pipelining (not a
    // closed loop) is what saturates the batching window, so this is the
    // true batched capacity; offering 2× of it genuinely overloads.
    let capacity = {
        let burst = probe_burst;
        let h = start(0);
        let addr = h.local_addr().to_string();
        let client = Client::connect_retry(&addr, Duration::from_secs(5)).unwrap();
        let (mut tx, mut rx) = client.split().unwrap();
        let t0 = Instant::now();
        for i in 0..burst {
            let q = uq(i | (1 << 40)); // probe's own query namespace
            tx.send(&Request::Query(QueryRequest::TopK { q, k: 3 }))
                .unwrap();
        }
        tx.finish();
        let mut replies = 0u64;
        while rx.recv().is_ok() {
            replies += 1;
        }
        let secs = t0.elapsed().as_secs_f64();
        h.shutdown();
        assert_eq!(replies, burst, "probe burst must be fully served");
        (replies as f64 / secs).max(50.0)
    };
    let offered = 2.0 * capacity;
    println!(
        "   capacity ≈ {capacity:.0} q/s (pipelined burst, saturated batching) → offering {offered:.0} q/s"
    );

    // Phases 2–3: identical 2×-overload open-loop runs against a bounded
    // and an unbounded queue. Arrivals are paced on an absolute schedule
    // (no coordinated omission) and latency is charged from the scheduled
    // arrival time, so server-side queueing shows up in the client's tail.
    struct PhaseResult {
        sent: u64,
        served: u64,
        shed: u64,
        p50: f64,
        p99: f64,
        max_depth: usize,
    }
    let overload = |queue_bound: usize| -> PhaseResult {
        let h = start(queue_bound);
        let addr = h.local_addr().to_string();
        let stop_sampler = AtomicBool::new(false);
        let lats: Mutex<Vec<f64>> = Mutex::new(Vec::new());
        let (mut sent, mut served, mut shed) = (0u64, 0u64, 0u64);
        let mut max_depth = 0usize;
        std::thread::scope(|scope| {
            let sampler = scope.spawn(|| {
                let mut max_depth = 0usize;
                while !stop_sampler.load(Ordering::Relaxed) {
                    max_depth = max_depth.max(h.queue_depth());
                    std::thread::sleep(Duration::from_millis(2));
                }
                max_depth
            });
            let client = Client::connect_retry(&addr, Duration::from_secs(5)).unwrap();
            let (mut tx, mut rx) = client.split().unwrap();
            let in_flight: Mutex<std::collections::HashMap<u64, Instant>> =
                Mutex::new(std::collections::HashMap::new());
            std::thread::scope(|inner| {
                let receiver = inner.spawn(|| {
                    let (mut served, mut shed) = (0u64, 0u64);
                    loop {
                        match rx.recv() {
                            Ok((id, reply)) => {
                                let sched = in_flight.lock().unwrap().remove(&id);
                                match reply {
                                    Reply::Error {
                                        code: ErrorCode::Shed,
                                        ..
                                    } => shed += 1,
                                    Reply::Error { .. } => {}
                                    _ => {
                                        served += 1;
                                        if let Some(s) = sched {
                                            lats.lock()
                                                .unwrap()
                                                .push(s.elapsed().as_nanos() as f64);
                                        }
                                    }
                                }
                            }
                            Err(WireError::Eof) | Err(_) => return (served, shed),
                        }
                    }
                });
                let interval = Duration::from_secs_f64(1.0 / offered);
                let start_t = Instant::now();
                let mut i = 0u64;
                loop {
                    let sched = start_t + interval.mul_f64(i as f64);
                    if sched.duration_since(start_t).as_secs_f64() >= phase_secs {
                        break;
                    }
                    let now = Instant::now();
                    if sched > now {
                        std::thread::sleep(sched - now);
                    }
                    let q = uq(i ^ (u64::from(queue_bound == 0) << 41));
                    let req = Request::Query(QueryRequest::TopK { q, k: 3 });
                    sent += 1;
                    match tx.send(&req) {
                        Ok(id) => {
                            in_flight.lock().unwrap().insert(id, sched.max(start_t));
                        }
                        Err(_) => break,
                    }
                    i += 1;
                }
                // Half-close; the receiver drains the (possibly large)
                // backlog of replies, then sees the server's clean EOF.
                tx.finish();
                (served, shed) = receiver.join().unwrap();
            });
            stop_sampler.store(true, Ordering::Relaxed);
            max_depth = sampler.join().unwrap();
        });
        h.shutdown();
        let lats = lats.into_inner().unwrap();
        let (p50, p99) = if lats.is_empty() {
            (0.0, 0.0)
        } else {
            (percentile(&lats, 0.50), percentile(&lats, 0.99))
        };
        PhaseResult {
            sent,
            served,
            shed,
            p50,
            p99,
            max_depth,
        }
    };

    let with_shed = overload(bound);
    let unbounded = overload(0);

    let mut t = Table::new(&["queue", "sent", "served", "shed", "p50", "p99", "max depth"]);
    for (label, r) in [
        (format!("bound {bound}"), &with_shed),
        ("unbounded".to_string(), &unbounded),
    ] {
        t.row(&[
            label,
            r.sent.to_string(),
            r.served.to_string(),
            r.shed.to_string(),
            uncertain_obs::fmt_ns(r.p50 as u64),
            uncertain_obs::fmt_ns(r.p99 as u64),
            r.max_depth.to_string(),
        ]);
    }
    t.print();
    println!(
        "   2× overload for {phase_secs}s: shedding holds the queue at ≤{bound} and p99 near bound/capacity;"
    );
    println!(
        "   the unbounded queue absorbs the same excess as backlog, so p99 grows with the run"
    );

    // Smoke boxes are too noisy (and the runs too short) for latency
    // assertions; the full run enforces the ISSUE's acceptance bar.
    if !uncertain_bench::smoke() {
        assert!(with_shed.shed > 0, "2× overload against a bound must shed");
        assert_eq!(unbounded.shed, 0, "no admission control, no sheds");
        assert!(
            with_shed.max_depth <= bound,
            "admission control must hold the queue at the bound (saw {})",
            with_shed.max_depth
        );
        assert!(
            unbounded.max_depth > 2 * bound,
            "2× overload must grow the unbounded queue past the bound (saw {})",
            unbounded.max_depth
        );
        // The tail-latency comparison only means something when the
        // backlog genuinely ran away (cache warm-up can quietly raise
        // capacity past the offered rate on fast boxes).
        if unbounded.max_depth > 10 * bound {
            assert!(
                with_shed.p99 < unbounded.p99 / 2.0,
                "shedding must bound p99 under overload ({} vs {})",
                uncertain_obs::fmt_ns(with_shed.p99 as u64),
                uncertain_obs::fmt_ns(unbounded.p99 as u64),
            );
        }
    }
}

// ---------------------------------------------------------------------------

/// E33: the partitioning experiment. Hash partitioning scatters every read
/// to all `S` shards (every shard's support box covers the whole cloud);
/// region-disjoint spatial partitioning lets the reader's box pruning skip
/// shards strictly outside the query's certified disk, so clustered
/// queries touch `≪ S` shards. A hot-cluster arrival wave (then drain) runs
/// before measurement so the spatial legs also cross the rebalance path —
/// the steady state being measured is post-migration, not the pristine
/// initial split.
fn e33_partitioner_locality() {
    use uncertain_bench::cluster::{ClusterConfig, ClusterWorkload};
    use uncertain_engine::shard::{PartitionerKind, ShardedEngine};
    use uncertain_engine::{EngineConfig, QueryRequest, Update};

    header(
        "E33",
        "spatial vs hash partitioning: scatter-gather fan-out under skew",
        "region-disjoint shards + box pruning: clustered queries touch ≪ S shards (hash always touches S), cutting per-query gather work",
    );

    let n = scaled(20_000).max(600);
    let nq = if uncertain_bench::smoke() { 60 } else { 400 };
    let mut t = Table::new(&[
        "workload",
        "S",
        "partitioner",
        "rebalances",
        "shards touched (mean)",
        "q/s",
    ]);
    let mut spatial_clustered_s8 = f64::NAN;
    let mut hash_clustered_s8 = f64::NAN;
    let mut hash_clustered_s8_qps = f64::NAN;
    let mut spatial_clustered_s8_qps = f64::NAN;

    for &clustered in &[false, true] {
        let cfg = ClusterConfig::default();
        let (set, queries) = if clustered {
            let mut w = ClusterWorkload::new(0xE33, cfg);
            (DiscreteSet::new(w.sites(n)), w.queries(nq))
        } else {
            (
                workload::random_discrete_set(n, 3, 5.0, 0xE33),
                workload::random_queries(nq, cfg.span * 0.4, 0xE33 ^ 1),
            )
        };
        // All-quantification batch: merged quantification is the scatter-
        // gather read whose fan-out the box pruning cuts (and the planner
        // always picks it at this scale).
        let batch: Vec<QueryRequest> = queries
            .iter()
            .map(|&q| QueryRequest::TopK { q, k: 4 })
            .collect();

        for &s in &[4usize, 8, 16] {
            for &part in &[PartitionerKind::Hash, PartitionerKind::Spatial] {
                let engine = ShardedEngine::new(
                    set.clone(),
                    EngineConfig {
                        shards: Some(s),
                        partitioner: part,
                        rebalance_ratio: 2.0,
                        // Cache off: every read executes and is counted.
                        cache_capacity: 0,
                        ..EngineConfig::default()
                    },
                );
                // Pre-measurement skew: pile a wave into the hottest
                // cluster, then drain it — identical live set afterwards,
                // but the spatial legs have crossed a rebalance (the same
                // wave is applied to hash for fairness; it never triggers
                // there).
                if clustered {
                    let mut w = ClusterWorkload::new(0xE33 ^ 7, cfg);
                    let report = engine.apply(&w.arrivals(n / 4, 0));
                    let drain: Vec<Update> = report
                        .inserted
                        .iter()
                        .map(|&id| Update::Remove(id))
                        .collect();
                    engine.apply(&drain);
                }
                // One warm-up batch: builds the lazy quant summaries and
                // feeds the first fan-out observation back to the planner,
                // so the timed batch is steady state.
                engine.run_batch(&batch);
                let (stats, secs) = time(|| engine.run_batch(&batch).stats);
                let mean = stats.avg_shards_touched();
                let qps = batch.len() as f64 / secs;
                let workload_name = if clustered { "clustered" } else { "uniform" };
                let part_name = match part {
                    PartitionerKind::Hash => "hash",
                    PartitionerKind::Spatial => "spatial",
                };
                t.row(&[
                    workload_name.into(),
                    s.to_string(),
                    part_name.into(),
                    engine.rebalances().to_string(),
                    format!("{mean:.2}"),
                    format!("{qps:.0}"),
                ]);

                assert_eq!(
                    stats.shard_reads,
                    batch.len(),
                    "cache-off quant reads must all be counted"
                );
                if !uncertain_bench::smoke() {
                    if part == PartitionerKind::Hash {
                        // Hash shards all (nearly) cover the whole cloud, so
                        // box pruning has essentially nothing to cut — the
                        // fan-out stays ≈ S. (Not exactly S: each shard's box
                        // is the hull of its own random site subset, so a
                        // peripheral query with a tiny certified disk can
                        // occasionally skip a shard whose hull falls just
                        // short of it.)
                        assert!(
                            mean > 0.9 * s as f64,
                            "hash fan-out must stay ≈ S={s}, got {mean}"
                        );
                    } else if clustered {
                        assert!(
                            engine.rebalances() >= 1,
                            "the hot-cluster wave must trigger a rebalance at S={s}"
                        );
                    }
                }
                if clustered && s == 8 {
                    match part {
                        PartitionerKind::Spatial => {
                            spatial_clustered_s8 = mean;
                            spatial_clustered_s8_qps = qps;
                        }
                        PartitionerKind::Hash => {
                            hash_clustered_s8 = mean;
                            hash_clustered_s8_qps = qps;
                        }
                    }
                }
            }
        }
    }
    t.print();
    println!("   n={n} sites, {nq} TopK queries/batch, cache off, rebalance ratio 2.0;");
    println!(
        "   clustered legs run a hot-cluster wave+drain before measurement (spatial rebalances ≥1)"
    );
    println!(
        "   clustered S=8: spatial touches {spatial_clustered_s8:.2} shards/query \
         (hash: {hash_clustered_s8:.2}), q/s {spatial_clustered_s8_qps:.0} vs {hash_clustered_s8_qps:.0}"
    );
    // The ISSUE's acceptance bar: under clustered load at S=8 the spatial
    // fan-out must stay below S/2. (Smoke boxes run the same path without
    // the assertion.)
    if !uncertain_bench::smoke() {
        assert!(
            spatial_clustered_s8 < 4.0,
            "spatial clustered S=8 fan-out must be < S/2 = 4, got {spatial_clustered_s8:.2}"
        );
    }
}
