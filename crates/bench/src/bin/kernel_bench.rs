//! Kernel micro-benchmarks backing `BENCH_kernels.json`, the repo's
//! committed perf baseline: the SoA chunked-lane distance kernels
//! (`uncertain_spatial::soa`) against their scalar reference forms, under
//! wall/cycle/heap counters (see `uncertain_bench::measure`).
//!
//! Two hot kernels from the serving path are measured at several sizes:
//!
//! * `disk_filter_masked` — the tombstone-masked in-disk filter behind the
//!   Theorem 3.2 stage-2 scan of the dynamic layer (bitmask-AND lanes vs a
//!   per-entry liveness branch).
//! * `dist_all` — the bulk distance evaluation behind the Eq. (2) sweep's
//!   entry assembly (chunked lanes vs one `Point::dist` per location).
//!
//! Usage: `kernel_bench [--smoke] [--out PATH] [--check BASELINE]
//! [--overhead-check]`
//!
//! `--smoke` (or `UNC_BENCH_SMOKE=1`) drops to a few reps per cell — enough
//! for CI to exercise every kernel and emit a schema-valid artifact, too
//! noisy for real ratios. `--out` writes the JSON document. `--check`
//! compares this run's scalar-over-SoA speedups against a baseline document
//! with a generous tolerance (ratios, not absolute times, so it holds
//! across machines) and exits nonzero on a gross regression.
//! `--overhead-check` measures the per-invocation cost of the kernels'
//! registry instrumentation against the fastest measured kernel and fails
//! above 5%.

use std::process::ExitCode;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use uncertain_bench::measure::{
    measure_reps, parse_speedups, BenchDoc, CountingAlloc, KernelReport,
};
use uncertain_geom::Point;
use uncertain_spatial::PointSlab;

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// A run's speedup may sit this factor below the baseline's before the
/// check fails — generous on purpose: CI machines are noisy and smoke runs
/// take few samples. The check catches "the SoA path silently became 10×
/// slower", not percent-level drift.
const CHECK_TOLERANCE: f64 = 4.0;

const SIZES: [usize; 3] = [1024, 4096, 16384];

fn main() -> ExitCode {
    let mut out_path: Option<String> = None;
    let mut check_path: Option<String> = None;
    let mut overhead_check = false;
    let mut smoke = uncertain_bench::smoke();
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--out" => out_path = argv.next(),
            "--check" => check_path = argv.next(),
            "--overhead-check" => overhead_check = true,
            other => {
                eprintln!("unknown argument: {other}");
                return ExitCode::FAILURE;
            }
        }
    }
    let reps = if smoke { 5 } else { 400 };

    let mut doc = BenchDoc {
        created_unix: std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map_or(0, |d| d.as_secs()),
        smoke,
        kernels: vec![],
        speedups: vec![],
    };

    for &n in &SIZES {
        let (slab, alive, q, r) = workload(n);
        bench_pair(&mut doc, "disk_filter_masked", n, reps, {
            let (slab, alive) = (&slab, &alive);
            move |soa| {
                let mut acc = 0.0f64;
                if soa {
                    slab.for_each_in_disk_masked(q, r, alive, |_, d| acc += d);
                } else {
                    slab.for_each_in_disk_masked_scalar(q, r, alive, |_, d| acc += d);
                }
                std::hint::black_box(acc);
            }
        });
        let mut dists = Vec::with_capacity(n);
        bench_pair(&mut doc, "dist_all", n, reps, {
            let (slab, dists) = (&slab, &mut dists);
            move |soa| {
                if soa {
                    slab.dist_all_into(q, dists);
                } else {
                    slab.dist_all_into_scalar(q, dists);
                }
                std::hint::black_box(dists.last().copied());
            }
        });
    }
    doc.compute_speedups();

    for k in &doc.kernels {
        println!(
            "{:<20} {:<7} n={:<6} median {:>10.1} ns  ({:.2} Melem/s)",
            k.name,
            k.variant,
            k.n,
            k.wall_ns.median,
            k.elements_per_sec() / 1e6
        );
    }
    for s in &doc.speedups {
        println!(
            "speedup {:<20} n={:<6} scalar/soa = {:.2}x",
            s.kernel, s.n, s.scalar_over_soa
        );
    }

    let json = doc.to_json();
    if let Some(path) = out_path {
        if let Err(e) = std::fs::write(&path, &json) {
            eprintln!("failed to write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("wrote {path}");
    }

    if let Some(path) = check_path {
        let baseline = match std::fs::read_to_string(&path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("failed to read baseline {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        if !check_against(&doc, &parse_speedups(&baseline)) {
            return ExitCode::FAILURE;
        }
        println!("baseline check passed (tolerance {CHECK_TOLERANCE}x)");
    }

    if overhead_check && !overhead_check_passes(&doc) {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

/// Acceptance gate for the observability layer: the SoA kernels record
/// into the process-global registry **once per invocation** (two relaxed
/// counter adds; see `uncertain_spatial::soa::KernelStats`), so the
/// relative overhead is the measured cost of one such record against the
/// fastest measured SoA kernel cell — the worst case. Fails above 5%.
fn overhead_check_passes(doc: &BenchDoc) -> bool {
    let probe = uncertain_obs::registry().counter("bench.overhead.probe");
    let reps: u64 = 1_000_000;
    let t0 = std::time::Instant::now();
    for i in 0..reps {
        // The same shape as KernelStats::record(lane, scalar).
        probe.add(i & 1);
        probe.add(1);
    }
    let per_record_ns = t0.elapsed().as_nanos() as f64 / reps as f64;
    let fastest = doc
        .kernels
        .iter()
        .filter(|k| k.variant == "soa")
        .map(|k| k.wall_ns.median)
        .fold(f64::INFINITY, f64::min);
    if !fastest.is_finite() || fastest <= 0.0 {
        eprintln!("overhead check: no SoA kernel cells measured");
        return false;
    }
    let frac = per_record_ns / fastest;
    println!(
        "instrumentation overhead: {per_record_ns:.2} ns/record vs fastest SoA cell \
         {fastest:.1} ns = {:.3}% (limit 5%)",
        100.0 * frac
    );
    if frac > 0.05 {
        eprintln!("OVERHEAD: instrumentation costs {:.3}% > 5%", 100.0 * frac);
        return false;
    }
    true
}

/// Random workload for size `n`: points uniform in a square, query at the
/// center, radius catching roughly half the points, ~3/4 of entries live.
fn workload(n: usize) -> (PointSlab, Vec<u64>, Point, f64) {
    let mut rng = StdRng::seed_from_u64(0x5eed ^ n as u64);
    let mut slab = PointSlab::with_capacity(n);
    for _ in 0..n {
        slab.push(Point::new(
            rng.gen_range(-50.0..50.0),
            rng.gen_range(-50.0..50.0),
        ));
    }
    let words = n.div_ceil(64);
    let mut alive = vec![0u64; words];
    for (i, w) in alive.iter_mut().enumerate() {
        *w = rng.gen::<u64>() | rng.gen::<u64>(); // ~75% bits set
        let base = i * 64;
        if n - base < 64 {
            *w &= (1u64 << (n - base)) - 1;
        }
    }
    (slab, alive, Point::new(0.0, 0.0), 40.0)
}

/// Benches the scalar and SoA variants of one kernel at one size.
fn bench_pair(doc: &mut BenchDoc, name: &str, n: usize, reps: usize, mut body: impl FnMut(bool)) {
    for (variant, soa) in [("scalar", false), ("soa", true)] {
        let runs = measure_reps(reps, || body(soa));
        doc.kernels
            .push(KernelReport::from_runs(name, variant, n, &runs));
    }
}

/// Every (kernel, n) present in both documents must not have regressed by
/// more than [`CHECK_TOLERANCE`]; entries missing on either side are
/// reported but don't fail (sizes may evolve).
fn check_against(doc: &BenchDoc, baseline: &[uncertain_bench::measure::Speedup]) -> bool {
    let mut ok = true;
    for b in baseline {
        match doc
            .speedups
            .iter()
            .find(|s| s.kernel == b.kernel && s.n == b.n)
        {
            Some(cur) if cur.scalar_over_soa * CHECK_TOLERANCE < b.scalar_over_soa => {
                eprintln!(
                    "REGRESSION {} n={}: speedup {:.2}x vs baseline {:.2}x (tolerance {}x)",
                    b.kernel, b.n, cur.scalar_over_soa, b.scalar_over_soa, CHECK_TOLERANCE
                );
                ok = false;
            }
            Some(_) => {}
            None => eprintln!("note: baseline entry {} n={} not measured", b.kernel, b.n),
        }
    }
    ok
}
