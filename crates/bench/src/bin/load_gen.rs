//! `load_gen`: the load generator for the network front-end.
//!
//! ```text
//! load_gen --addr HOST:PORT [--mode closed|open] [--conns C]
//!          [--duration SECS] [--requests N] [--rate QPS]
//!          [--topk K] [--seed S] [--obs FILE.jsonl]
//!          [--assert-shed] [--assert-no-shed]
//! ```
//!
//! **Closed loop** (`--mode closed`, the default): `C` connections each
//! keep exactly one request outstanding — the classic saturation probe.
//! **Open loop** (`--mode open --rate QPS`): arrivals are paced on an
//! absolute schedule split across `C` pipelined connections, independent
//! of completions, so server slowdown cannot throttle offered load (no
//! coordinated omission) — the mode that demonstrates overload.
//!
//! Latency is measured client-side per request (for open loop: from the
//! *scheduled* arrival, so queueing delay the server causes is charged to
//! it) and reported as p50/p95/p99 plus achieved qps. Shed replies count
//! separately and are excluded from the latency distribution. With
//! `--obs FILE` the newest `obs/v1` line of the server's flusher stream
//! (`UNC_OBS_FLUSH` on the server side) is scraped and the server-side
//! view — `server.request.wall` percentiles, `server.shed`,
//! `server.queue.depth`/`peak` — is printed next to the client's.
//!
//! `--assert-no-shed` / `--assert-shed` turn the shed count into an exit
//! code for CI: the smoke job proves "zero sheds at low load" and
//! "sheds under deliberate overload" with the same binary.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use uncertain_bench::measure::{percentile, summarize};
use uncertain_engine::server::protocol::{Client, ErrorCode, Reply, Request, WireError};
use uncertain_engine::QueryRequest;
use uncertain_geom::Point;
use uncertain_nn::workload;

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Closed,
    Open,
}

struct Totals {
    sent: AtomicU64,
    served: AtomicU64,
    shed: AtomicU64,
    errors: AtomicU64,
}

fn main() {
    let mut addr = String::new();
    let mut mode = Mode::Closed;
    let mut conns = 4usize;
    let mut duration = Duration::from_secs(5);
    let mut requests: Option<u64> = None;
    let mut rate = 0f64;
    let mut topk = 8usize;
    let mut seed = 7u64;
    let mut obs: Option<String> = None;
    let mut assert_shed = false;
    let mut assert_no_shed = false;

    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut val = |what: &str| {
            args.next()
                .unwrap_or_else(|| die(&format!("{what} needs a value")))
        };
        match a.as_str() {
            "--addr" => addr = val("--addr"),
            "--mode" => {
                mode = match val("--mode").as_str() {
                    "closed" => Mode::Closed,
                    "open" => Mode::Open,
                    other => die(&format!("unknown mode {other:?}")),
                }
            }
            "--conns" => conns = parse::<usize>(&val("--conns")).max(1),
            "--duration" => duration = Duration::from_secs_f64(parse(&val("--duration"))),
            "--requests" => requests = Some(parse(&val("--requests"))),
            "--rate" => rate = parse(&val("--rate")),
            "--topk" => topk = parse(&val("--topk")),
            "--seed" => seed = parse(&val("--seed")),
            "--obs" => obs = Some(val("--obs")),
            "--assert-shed" => assert_shed = true,
            "--assert-no-shed" => assert_no_shed = true,
            other => die(&format!("unknown argument {other:?}")),
        }
    }
    if addr.is_empty() {
        die("--addr is required");
    }
    if mode == Mode::Open && rate <= 0.0 {
        die("--mode open needs --rate QPS");
    }

    let totals = Arc::new(Totals {
        sent: AtomicU64::new(0),
        served: AtomicU64::new(0),
        shed: AtomicU64::new(0),
        errors: AtomicU64::new(0),
    });
    let latencies: Arc<Mutex<Vec<f64>>> = Arc::new(Mutex::new(Vec::new()));

    let t0 = Instant::now();
    let workers: Vec<_> = (0..conns)
        .map(|w| {
            let addr = addr.clone();
            let totals = Arc::clone(&totals);
            let latencies = Arc::clone(&latencies);
            let queries = workload::random_queries(4096, 60.0, seed.wrapping_add(w as u64));
            let per_conn_requests = requests.map(|r| r.div_ceil(conns as u64));
            let per_conn_interval = if mode == Mode::Open {
                Duration::from_secs_f64(conns as f64 / rate)
            } else {
                Duration::ZERO
            };
            std::thread::spawn(move || match mode {
                Mode::Closed => closed_loop(
                    &addr,
                    &queries,
                    topk,
                    duration,
                    per_conn_requests,
                    &totals,
                    &latencies,
                ),
                Mode::Open => open_loop(
                    &addr,
                    &queries,
                    topk,
                    duration,
                    per_conn_interval,
                    &totals,
                    &latencies,
                ),
            })
        })
        .collect();
    for w in workers {
        let _ = w.join();
    }
    let elapsed = t0.elapsed().as_secs_f64();

    let sent = totals.sent.load(Ordering::Relaxed);
    let served = totals.served.load(Ordering::Relaxed);
    let shed = totals.shed.load(Ordering::Relaxed);
    let errors = totals.errors.load(Ordering::Relaxed);
    let lats = latencies.lock().unwrap();
    println!(
        "load_gen: mode={} conns={conns} elapsed={elapsed:.2}s",
        if mode == Mode::Closed {
            "closed"
        } else {
            "open"
        },
    );
    println!("   sent {sent}  served {served}  shed {shed}  errors {errors}");
    if !lats.is_empty() {
        let s = summarize(&lats);
        println!(
            "   client latency: p50 {}  p95 {}  p99 {}  (mean {})",
            fmt_ms(s.median),
            fmt_ms(s.p95),
            fmt_ms(percentile(&lats, 0.99)),
            fmt_ms(s.mean),
        );
    }
    println!("   throughput: {:.0} q/s served", served as f64 / elapsed);
    if let Some(path) = obs {
        scrape_obs(&path);
    }

    if served == 0 {
        eprintln!("load_gen: no requests served");
        std::process::exit(1);
    }
    if assert_no_shed && shed > 0 {
        eprintln!("load_gen: --assert-no-shed failed ({shed} sheds)");
        std::process::exit(1);
    }
    if assert_shed && shed == 0 {
        eprintln!("load_gen: --assert-shed failed (no sheds under offered overload)");
        std::process::exit(1);
    }
}

fn request(queries: &[Point], i: usize, topk: usize) -> Request {
    let q = queries[i % queries.len()];
    Request::Query(if topk == 0 {
        QueryRequest::Nonzero { q }
    } else {
        QueryRequest::TopK { q, k: topk }
    })
}

fn record(totals: &Totals, latencies: &Mutex<Vec<f64>>, reply: &Reply, lat_ns: f64) {
    match reply {
        Reply::Error {
            code: ErrorCode::Shed,
            ..
        } => {
            totals.shed.fetch_add(1, Ordering::Relaxed);
        }
        Reply::Error { .. } => {
            totals.errors.fetch_add(1, Ordering::Relaxed);
        }
        _ => {
            totals.served.fetch_add(1, Ordering::Relaxed);
            latencies.lock().unwrap().push(lat_ns);
        }
    }
}

/// One request outstanding per connection; latency from send to reply.
fn closed_loop(
    addr: &str,
    queries: &[Point],
    topk: usize,
    duration: Duration,
    max_requests: Option<u64>,
    totals: &Totals,
    latencies: &Mutex<Vec<f64>>,
) {
    let Ok(mut client) = Client::connect_retry(addr, Duration::from_secs(5)) else {
        eprintln!("load_gen: cannot connect to {addr}");
        return;
    };
    let end = Instant::now() + duration;
    let mut i = 0u64;
    while Instant::now() < end && max_requests.is_none_or(|m| i < m) {
        let req = request(queries, i as usize, topk);
        let sent_at = Instant::now();
        totals.sent.fetch_add(1, Ordering::Relaxed);
        match client.call(&req) {
            Ok(reply) => record(
                totals,
                latencies,
                &reply,
                sent_at.elapsed().as_nanos() as f64,
            ),
            Err(_) => {
                totals.errors.fetch_add(1, Ordering::Relaxed);
                return;
            }
        }
        i += 1;
    }
}

/// Paced arrivals on an absolute schedule, pipelined on one connection;
/// latency from the *scheduled* send time (no coordinated omission).
fn open_loop(
    addr: &str,
    queries: &[Point],
    topk: usize,
    duration: Duration,
    interval: Duration,
    totals: &Totals,
    latencies: &Mutex<Vec<f64>>,
) {
    let Ok(client) = Client::connect_retry(addr, Duration::from_secs(5)) else {
        eprintln!("load_gen: cannot connect to {addr}");
        return;
    };
    let Ok((mut tx, mut rx)) = client.split() else {
        eprintln!("load_gen: cannot split connection");
        return;
    };
    // req_id → scheduled send time, shared with the receiver half.
    let in_flight: Arc<Mutex<std::collections::HashMap<u64, Instant>>> =
        Arc::new(Mutex::new(std::collections::HashMap::new()));
    let recv_flight = Arc::clone(&in_flight);
    std::thread::scope(|scope| {
        let receiver = scope.spawn(|| loop {
            match rx.recv() {
                Ok((id, reply)) => {
                    let sched = recv_flight.lock().unwrap().remove(&id);
                    let lat = sched.map_or(0.0, |s| s.elapsed().as_nanos() as f64);
                    record(totals, latencies, &reply, lat);
                }
                Err(WireError::Eof) => return,
                Err(_) => return,
            }
        });
        let start = Instant::now();
        let mut i = 0u64;
        loop {
            let sched = start + interval.mul_f64(i as f64);
            if sched.duration_since(start) >= duration {
                break;
            }
            let now = Instant::now();
            if sched > now {
                std::thread::sleep(sched - now);
            }
            let req = request(queries, i as usize, topk);
            totals.sent.fetch_add(1, Ordering::Relaxed);
            match tx.send(&req) {
                Ok(id) => {
                    in_flight.lock().unwrap().insert(id, sched.max(start));
                }
                Err(_) => break,
            }
            i += 1;
        }
        // Half-close: the server serves what was sent, then closes; the
        // receiver drains every outstanding reply and sees a clean EOF.
        tx.finish();
        let _ = receiver.join();
    });
}

// --- obs/v1 scraping ------------------------------------------------------

/// Prints the server-side view from the newest line of an `obs/v1`
/// JSON-lines stream (hand-rolled extraction, matching the repo's
/// hand-rolled writer — field order within a histogram object is fixed).
fn scrape_obs(path: &str) {
    let Ok(body) = std::fs::read_to_string(path) else {
        eprintln!("load_gen: cannot read obs stream {path}");
        return;
    };
    let Some(line) = body.lines().rfind(|l| !l.trim().is_empty()) else {
        eprintln!("load_gen: obs stream {path} is empty");
        return;
    };
    println!("   server view ({path}):");
    if let Some(h) = json_object(line, "server.request.wall") {
        let g = |k| json_number(h, k).unwrap_or(0.0);
        println!(
            "     server.request.wall: count {:.0}  p50 {}  p95 {}  p99 {}",
            g("count"),
            fmt_ms(g("p50")),
            fmt_ms(g("p95")),
            fmt_ms(g("p99")),
        );
    }
    for key in [
        "server.shed",
        "server.served",
        "server.queue.depth",
        "server.queue.peak",
    ] {
        if let Some(v) = json_number(line, key) {
            println!("     {key}: {v:.0}");
        }
    }
}

/// The `{…}` object value of `"name":` in a single-line JSON document.
fn json_object<'a>(line: &'a str, name: &str) -> Option<&'a str> {
    let pat = format!("\"{name}\":{{");
    let start = line.find(&pat)? + pat.len() - 1;
    let end = line[start..].find('}')? + start + 1;
    Some(&line[start..end])
}

/// The numeric value of `"name":` (first occurrence) in `text`.
fn json_number(text: &str, name: &str) -> Option<f64> {
    let pat = format!("\"{name}\":");
    let start = text.find(&pat)? + pat.len();
    let rest = &text[start..];
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == 'E'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn fmt_ms(ns: f64) -> String {
    uncertain_obs::fmt_ns(ns as u64)
}

fn parse<T: std::str::FromStr>(s: &str) -> T {
    s.parse()
        .unwrap_or_else(|_| die(&format!("cannot parse {s:?}")))
}

fn die(msg: &str) -> ! {
    eprintln!("load_gen: {msg}");
    eprintln!(
        "usage: load_gen --addr HOST:PORT [--mode closed|open] [--conns C] \
         [--duration SECS] [--requests N] [--rate QPS] [--topk K] \
         [--obs FILE.jsonl] [--assert-shed] [--assert-no-shed]"
    );
    std::process::exit(2);
}
