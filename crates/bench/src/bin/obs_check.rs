//! `obs_check <file.jsonl>`: validates a JSON-lines file of `obs/v1`
//! metric snapshots (what a run with `UNC_OBS_FLUSH=<file>` leaves
//! behind). Exit 0 with a line count on success, 1 with the first
//! violation otherwise — the CI `obs-smoke` job's schema gate.

fn main() {
    let Some(path) = std::env::args().nth(1) else {
        eprintln!("usage: obs_check <file.jsonl>");
        std::process::exit(2);
    };
    let body = match std::fs::read_to_string(&path) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("obs_check: cannot read {path}: {e}");
            std::process::exit(2);
        }
    };
    match uncertain_bench::obs_schema::check_lines(&body) {
        Ok(n) => println!("obs_check: {n} valid obs/v1 line(s) in {path}"),
        Err(e) => {
            eprintln!("obs_check: {path}: {e}");
            std::process::exit(1);
        }
    }
}
