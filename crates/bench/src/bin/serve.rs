//! `serve`: the standalone network front-end over a synthetic uncertain
//! set — the server half of the `load_gen` pair and the CI
//! `server-smoke` target.
//!
//! ```text
//! serve [--n N] [--k K] [--addr HOST:PORT] [--for SECS]
//!       [--queue-bound B] [--window-us U] [--max-batch M] [--seed S]
//! ```
//!
//! Prints `serve: listening on <addr> …` once the listener is bound (the
//! line scripts wait for), then serves until `--for` seconds elapse
//! (default: forever). Set `UNC_OBS_FLUSH=<file.jsonl>` (and optionally
//! `UNC_OBS_FLUSH_MS`) to stream `obs/v1` metric snapshots — including
//! `server.request.wall`, `server.queue.depth`, and `server.shed` — for
//! `load_gen --obs` / `obs_check` to consume.

use std::sync::Arc;
use std::time::Duration;

use uncertain_engine::server::{Server, ServerConfig};
use uncertain_engine::{Engine, EngineConfig};
use uncertain_nn::workload;

fn main() {
    let mut n = 5_000usize;
    let mut k = 3usize;
    let mut seed = 42u64;
    let mut secs: Option<u64> = None;
    let mut cfg = ServerConfig::default();

    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut val = |what: &str| {
            args.next()
                .unwrap_or_else(|| die(&format!("{what} needs a value")))
        };
        match a.as_str() {
            "--n" => n = parse(&val("--n")),
            "--k" => k = parse::<usize>(&val("--k")).max(1),
            "--seed" => seed = parse(&val("--seed")),
            "--addr" => cfg.addr = val("--addr"),
            "--for" => secs = Some(parse(&val("--for"))),
            "--queue-bound" => cfg.queue_bound = parse(&val("--queue-bound")),
            "--window-us" => cfg.batch_window = Duration::from_micros(parse(&val("--window-us"))),
            "--max-batch" => cfg.max_batch = parse::<usize>(&val("--max-batch")).max(1),
            other => die(&format!("unknown argument {other:?}")),
        }
    }

    let _flusher = uncertain_obs::Flusher::from_env();
    let set = workload::random_discrete_set(n, k, 5.0, seed);
    let engine = Arc::new(Engine::new(set, EngineConfig::default()));
    let handle = match Server::start(engine, cfg.clone()) {
        Ok(h) => h,
        Err(e) => die(&format!("cannot bind {}: {e}", cfg.addr)),
    };
    println!(
        "serve: listening on {} (n={n}, k={k}, queue bound {}, window {}µs, max batch {})",
        handle.local_addr(),
        cfg.queue_bound,
        cfg.batch_window.as_micros(),
        cfg.max_batch,
    );

    match secs {
        Some(s) => std::thread::sleep(Duration::from_secs(s)),
        None => loop {
            std::thread::sleep(Duration::from_secs(3600));
        },
    }
    handle.shutdown();
    println!("serve: done");
}

fn parse<T: std::str::FromStr>(s: &str) -> T {
    s.parse()
        .unwrap_or_else(|_| die(&format!("cannot parse {s:?}")))
}

fn die(msg: &str) -> ! {
    eprintln!("serve: {msg}");
    eprintln!(
        "usage: serve [--n N] [--k K] [--addr HOST:PORT] [--for SECS] \
         [--queue-bound B] [--window-us U] [--max-batch M] [--seed S]"
    );
    std::process::exit(2);
}
