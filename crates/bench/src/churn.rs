//! Churn workload generator: deterministic arrival / expiry / drift update
//! streams for the dynamic serving layer (experiments E27/E28).
//!
//! A [`ChurnStream`] tracks which site ids it believes are live and emits
//! [`Update`] batches sized as a fraction of the live population
//! ([`ChurnStream::tick`]); the caller feeds each [`ApplyReport`] back via
//! [`ChurnStream::observe`] so freshly-assigned insert ids join the pool.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use uncertain_engine::{ApplyReport, SiteId, Update};
use uncertain_geom::Point;
use uncertain_nn::model::DiscreteUncertainPoint;

/// Mix and shape of the generated updates.
#[derive(Clone, Copy, Debug)]
pub struct ChurnConfig {
    /// Locations per arriving site.
    pub k: usize,
    /// Diameter of each site's location cluster.
    pub cluster_diameter: f64,
    /// Side of the placement square (centers uniform in `[-span/2, span/2]²`).
    pub span: f64,
    /// Relative weights of the three update kinds.
    pub arrival_weight: f64,
    pub expiry_weight: f64,
    pub drift_weight: f64,
}

impl Default for ChurnConfig {
    fn default() -> Self {
        ChurnConfig {
            k: 3,
            cluster_diameter: 5.0,
            span: 50.0,
            arrival_weight: 1.0,
            expiry_weight: 1.0,
            drift_weight: 1.0,
        }
    }
}

/// Deterministic update-stream generator over a live-id pool.
pub struct ChurnStream {
    rng: StdRng,
    cfg: ChurnConfig,
    live: Vec<SiteId>,
}

impl ChurnStream {
    /// `initial` is the id pool before any updates (ids `0..n` for an
    /// engine built over an `n`-site set).
    pub fn new(seed: u64, cfg: ChurnConfig, initial: Vec<SiteId>) -> Self {
        ChurnStream {
            rng: StdRng::seed_from_u64(seed),
            cfg,
            live: initial,
        }
    }

    /// Ids the stream currently believes live.
    pub fn live(&self) -> &[SiteId] {
        &self.live
    }

    /// Emits `max(1, ⌈rate·live⌉)` updates mixing arrivals, expiries, and
    /// drift by the configured weights. Expired ids leave the pool
    /// immediately (no double removes within or across ticks); arrival ids
    /// enter it via [`observe`](Self::observe).
    pub fn tick(&mut self, rate: f64) -> Vec<Update> {
        let count = ((self.live.len() as f64 * rate).ceil() as usize).max(1);
        let total = self.cfg.arrival_weight + self.cfg.expiry_weight + self.cfg.drift_weight;
        let mut out = Vec::with_capacity(count);
        for _ in 0..count {
            let roll = self.rng.gen_range(0.0..total);
            if roll < self.cfg.arrival_weight || self.live.len() <= 1 {
                let site = self.new_site();
                out.push(Update::Insert(site));
            } else if roll < self.cfg.arrival_weight + self.cfg.expiry_weight {
                let i = self.rng.gen_range(0..self.live.len());
                out.push(Update::Remove(self.live.swap_remove(i)));
            } else {
                let i = self.rng.gen_range(0..self.live.len());
                let site = self.new_site();
                out.push(Update::Move {
                    id: self.live[i],
                    to: site,
                });
            }
        }
        out
    }

    /// Folds an engine's apply report back in: freshly-assigned insert ids
    /// join the live pool.
    pub fn observe(&mut self, report: &ApplyReport) {
        self.live.extend(&report.inserted);
    }

    fn new_site(&mut self) -> DiscreteUncertainPoint {
        let half = self.cfg.span / 2.0;
        let c = Point::new(
            self.rng.gen_range(-half..half),
            self.rng.gen_range(-half..half),
        );
        let r = self.cfg.cluster_diameter / 2.0;
        let locs: Vec<Point> = (0..self.cfg.k.max(1))
            .map(|_| {
                Point::new(
                    c.x + self.rng.gen_range(-r..r),
                    c.y + self.rng.gen_range(-r..r),
                )
            })
            .collect();
        DiscreteUncertainPoint::uniform(locs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uncertain_engine::{Engine, EngineConfig};
    use uncertain_nn::workload;

    #[test]
    fn stream_tracks_engine_live_set() {
        let set = workload::random_discrete_set(40, 3, 5.0, 5);
        let engine = Engine::new(set, EngineConfig::default());
        let mut stream = ChurnStream::new(9, ChurnConfig::default(), (0..40).collect());
        for _ in 0..6 {
            let updates = stream.tick(0.25);
            assert!(!updates.is_empty());
            let report = engine.apply(&updates);
            assert_eq!(report.missed, 0, "stream must never emit dead ids");
            stream.observe(&report);
            assert_eq!(stream.live().len(), report.live);
            let mut ids = stream.live().to_vec();
            ids.sort_unstable();
            assert_eq!(ids, engine.site_ids());
        }
    }

    #[test]
    fn stream_is_deterministic() {
        let mk = || {
            let mut s = ChurnStream::new(42, ChurnConfig::default(), (0..10).collect());
            format!("{:?}", s.tick(0.5))
        };
        assert_eq!(mk(), mk());
    }
}
