//! Clustered / zipf workload generator for the locality experiments
//! (experiment E33).
//!
//! Real tracking workloads are not uniform: sites arrive in geographic
//! hot spots and queries follow the same skew. A [`ClusterWorkload`] draws
//! a fixed palette of cluster centers, ranks them by a zipf popularity law,
//! and then emits sites, queries, and hot-cluster arrival waves all biased
//! toward the popular clusters — the workload shape under which spatial
//! partitioning's box pruning pays off (queries touch the one or two
//! shards owning their hot spot) and under which hash partitioning cannot
//! (every shard holds a slice of every cluster). Composes with
//! [`crate::churn::ChurnStream`]: run background churn for liveness, and
//! layer [`ClusterWorkload::arrivals`] waves on top to skew the spatial
//! balance and force rebalances.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use uncertain_engine::Update;
use uncertain_geom::Point;
use uncertain_nn::model::DiscreteUncertainPoint;

/// Shape of the clustered workload.
#[derive(Clone, Copy, Debug)]
pub struct ClusterConfig {
    /// Number of hot-spot clusters.
    pub clusters: usize,
    /// Side of the square the cluster centers are scattered over.
    pub span: f64,
    /// Radius of each cluster (site centers scatter within it).
    pub cluster_radius: f64,
    /// Radius of one site's own location scatter (its uncertainty support).
    pub site_radius: f64,
    /// Locations per site.
    pub k: usize,
    /// Zipf exponent for cluster popularity: cluster `i` (0-ranked) is
    /// drawn with weight `1/(i+1)^s`. `0` = uniform over clusters.
    pub zipf_s: f64,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            clusters: 12,
            span: 240.0,
            cluster_radius: 6.0,
            site_radius: 1.5,
            k: 3,
            zipf_s: 1.1,
        }
    }
}

/// Deterministic clustered site/query/arrival generator. All draws come
/// from one seeded [`StdRng`], so a given `(seed, config)` replays the
/// same workload bit-for-bit.
pub struct ClusterWorkload {
    rng: StdRng,
    cfg: ClusterConfig,
    centers: Vec<Point>,
    /// Cumulative zipf distribution over cluster ranks.
    cum: Vec<f64>,
}

impl ClusterWorkload {
    pub fn new(seed: u64, cfg: ClusterConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let half = cfg.span / 2.0;
        let m = cfg.clusters.max(1);
        let centers: Vec<Point> = (0..m)
            .map(|_| Point::new(rng.gen_range(-half..half), rng.gen_range(-half..half)))
            .collect();
        let weights: Vec<f64> = (0..m)
            .map(|i| 1.0 / ((i + 1) as f64).powf(cfg.zipf_s))
            .collect();
        let total: f64 = weights.iter().sum();
        let mut acc = 0.0;
        let cum = weights
            .iter()
            .map(|w| {
                acc += w / total;
                acc
            })
            .collect();
        ClusterWorkload {
            rng,
            cfg,
            centers,
            cum,
        }
    }

    /// The cluster centers, rank order (rank 0 = most popular).
    pub fn centers(&self) -> &[Point] {
        &self.centers
    }

    /// Draws a cluster rank by zipf popularity.
    fn pick(&mut self) -> usize {
        let r = self.rng.gen_range(0.0..1.0);
        self.cum
            .partition_point(|&c| c < r)
            .min(self.centers.len() - 1)
    }

    /// One site inside cluster `rank`: the site's own center scatters
    /// within the cluster radius, its `k` locations within the site radius.
    pub fn site_in(&mut self, rank: usize) -> DiscreteUncertainPoint {
        let c = self.centers[rank % self.centers.len()];
        let cr = self.cfg.cluster_radius;
        let sc = Point::new(
            c.x + self.rng.gen_range(-cr..cr),
            c.y + self.rng.gen_range(-cr..cr),
        );
        let sr = self.cfg.site_radius;
        let locs: Vec<Point> = (0..self.cfg.k.max(1))
            .map(|_| {
                Point::new(
                    sc.x + self.rng.gen_range(-sr..sr),
                    sc.y + self.rng.gen_range(-sr..sr),
                )
            })
            .collect();
        DiscreteUncertainPoint::uniform(locs)
    }

    /// One zipf-popular site.
    pub fn site(&mut self) -> DiscreteUncertainPoint {
        let rank = self.pick();
        self.site_in(rank)
    }

    /// `n` zipf-popular sites.
    pub fn sites(&mut self, n: usize) -> Vec<DiscreteUncertainPoint> {
        (0..n).map(|_| self.site()).collect()
    }

    /// One zipf-popular query point (inside a hot cluster).
    pub fn query(&mut self) -> Point {
        let rank = self.pick();
        let c = self.centers[rank];
        let cr = self.cfg.cluster_radius;
        Point::new(
            c.x + self.rng.gen_range(-cr..cr),
            c.y + self.rng.gen_range(-cr..cr),
        )
    }

    /// `n` zipf-popular query points.
    pub fn queries(&mut self, n: usize) -> Vec<Point> {
        (0..n).map(|_| self.query()).collect()
    }

    /// An arrival wave: `count` inserts all inside cluster `rank` — the
    /// skew hammer. Piling a wave into one cluster balloons the spatial
    /// shard(s) owning that region past any rebalance ratio; hash
    /// partitioning spreads the same wave evenly and never notices.
    pub fn arrivals(&mut self, count: usize, rank: usize) -> Vec<Update> {
        (0..count)
            .map(|_| Update::Insert(self.site_in(rank)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_is_deterministic() {
        let mk = || {
            let mut w = ClusterWorkload::new(7, ClusterConfig::default());
            format!("{:?} {:?}", w.sites(5), w.queries(5))
        };
        assert_eq!(mk(), mk());
    }

    #[test]
    fn sites_land_inside_their_cluster() {
        let cfg = ClusterConfig::default();
        let mut w = ClusterWorkload::new(11, cfg);
        let centers = w.centers().to_vec();
        let max_r = cfg.cluster_radius + cfg.site_radius;
        for site in w.sites(200) {
            let near = site.locations().iter().all(|p| {
                centers
                    .iter()
                    .any(|c| (p.x - c.x).abs() <= max_r && (p.y - c.y).abs() <= max_r)
            });
            assert!(near, "site location escaped every cluster box");
        }
    }

    #[test]
    fn zipf_skews_toward_the_hot_cluster() {
        let cfg = ClusterConfig::default();
        let mut w = ClusterWorkload::new(13, cfg);
        let hot = w.centers()[0];
        let cold = w.centers()[cfg.clusters - 1];
        let (mut near_hot, mut near_cold) = (0usize, 0usize);
        let r = cfg.cluster_radius;
        for q in w.queries(600) {
            if (q.x - hot.x).abs() <= r && (q.y - hot.y).abs() <= r {
                near_hot += 1;
            }
            if (q.x - cold.x).abs() <= r && (q.y - cold.y).abs() <= r {
                near_cold += 1;
            }
        }
        assert!(
            near_hot > 2 * near_cold.max(1),
            "rank 0 ({near_hot}) should dominate rank {} ({near_cold})",
            cfg.clusters - 1
        );
    }

    #[test]
    fn arrival_waves_pin_one_cluster() {
        let cfg = ClusterConfig::default();
        let mut w = ClusterWorkload::new(17, cfg);
        let c = w.centers()[2];
        let max_r = cfg.cluster_radius + cfg.site_radius;
        let wave = w.arrivals(50, 2);
        assert_eq!(wave.len(), 50);
        for u in &wave {
            let Update::Insert(site) = u else {
                panic!("arrival waves are inserts only");
            };
            for p in site.locations() {
                assert!((p.x - c.x).abs() <= max_r && (p.y - c.y).abs() <= max_r);
            }
        }
    }
}
