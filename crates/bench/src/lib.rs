//! Shared helpers for the experiment harness and Criterion benches.
//!
//! The paper is a theory paper: its "evaluation" is a set of theorems
//! (complexity bounds) plus explicit lower-bound constructions and one
//! illustrative figure. Each becomes an experiment (see `DESIGN.md` §5 and
//! `EXPERIMENTS.md`); this crate hosts the code that regenerates every one
//! of them.

pub mod churn;
pub mod cluster;
pub mod measure;
pub mod obs_schema;

// Let the lib's own test binary exercise the live/peak heap accounting in
// `measure` (release binaries opt in individually; see measure's docs).
#[cfg(test)]
#[global_allocator]
static TEST_ALLOC: measure::CountingAlloc = measure::CountingAlloc;

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Instant;

static SMOKE: AtomicBool = AtomicBool::new(false);

/// Turns smoke mode on or off for this process (see [`smoke`]).
pub fn set_smoke(on: bool) {
    SMOKE.store(on, Ordering::Relaxed);
}

/// True when experiments and benches should shrink to token workloads that
/// still exercise every code path: enabled by `--smoke` on the `experiments`
/// binary (via [`set_smoke`]) or by setting `UNC_BENCH_SMOKE=1` in the
/// environment (picked up by the Criterion benches too).
pub fn smoke() -> bool {
    SMOKE.load(Ordering::Relaxed)
        || std::env::var("UNC_BENCH_SMOKE").is_ok_and(|v| v != "0" && !v.is_empty())
}

/// Scales a workload size down (÷100, floor 8) in smoke mode.
pub fn scaled(n: usize) -> usize {
    if smoke() {
        (n / 100).max(8).min(n)
    } else {
        n
    }
}

/// Truncates a size sweep to its two smallest entries in smoke mode — two
/// rather than one so downstream [`loglog_slope`] fits still have the two
/// points they assert on.
pub fn sweep<T>(xs: &[T]) -> &[T] {
    if smoke() {
        &xs[..xs.len().min(2)]
    } else {
        xs
    }
}

/// Upper bound for a `lo..=hi` sweep: clamps to two iterations in smoke mode.
pub fn sweep_hi(lo: usize, hi: usize) -> usize {
    if smoke() {
        hi.min(lo + 1)
    } else {
        hi
    }
}

/// Least-squares slope of `log y` against `log x` — the measured growth
/// exponent for complexity sweeps (e.g. Theorem 2.5 predicts slope ≤ 3 for
/// `µ(n)`).
pub fn loglog_slope(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len());
    assert!(xs.len() >= 2);
    let pts: Vec<(f64, f64)> = xs
        .iter()
        .zip(ys)
        .filter(|&(&x, &y)| x > 0.0 && y > 0.0)
        .map(|(&x, &y)| (x.ln(), y.ln()))
        .collect();
    let n = pts.len() as f64;
    let sx: f64 = pts.iter().map(|p| p.0).sum();
    let sy: f64 = pts.iter().map(|p| p.1).sum();
    let sxx: f64 = pts.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = pts.iter().map(|p| p.0 * p.1).sum();
    (n * sxy - sx * sy) / (n * sxx - sx * sx)
}

/// Times a closure, returning `(result, seconds)`.
pub fn time<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let t0 = Instant::now();
    let out = f();
    (out, t0.elapsed().as_secs_f64())
}

/// Times a closure averaged over `reps` runs (for fast operations),
/// returning seconds per run.
pub fn time_avg(reps: usize, mut f: impl FnMut()) -> f64 {
    let t0 = Instant::now();
    for _ in 0..reps {
        f();
    }
    t0.elapsed().as_secs_f64() / reps as f64
}

/// A minimal fixed-width table printer for experiment output.
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    pub fn new(headers: &[&str]) -> Self {
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: vec![],
        }
    }

    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.headers.len());
        self.rows.push(cells.to_vec());
    }

    pub fn print(&self) {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, c) in widths.iter_mut().zip(row) {
                *w = (*w).max(c.len());
            }
        }
        let line = |cells: &[String]| {
            let body: Vec<String> = cells
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:>w$}", w = w))
                .collect();
            println!("| {} |", body.join(" | "));
        };
        line(&self.headers);
        let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        println!("|-{}-|", sep.join("-|-"));
        for row in &self.rows {
            line(row);
        }
    }
}

/// Formats a float compactly.
pub fn fmt(x: f64) -> String {
    if x == 0.0 {
        "0".into()
    } else if x.abs() >= 1000.0 || x.abs() < 0.001 {
        format!("{x:.2e}")
    } else {
        format!("{x:.4}")
    }
}

/// Formats seconds with a sensible unit.
pub fn fmt_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.0} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.1} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{secs:.2} s")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slope_of_cubic_is_three() {
        let xs: Vec<f64> = (1..=6).map(|k| (8 * k) as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|&x| 0.5 * x * x * x).collect();
        let s = loglog_slope(&xs, &ys);
        assert!((s - 3.0).abs() < 1e-9);
    }

    #[test]
    fn table_prints() {
        let mut t = Table::new(&["n", "value"]);
        t.row(&["1".into(), "2".into()]);
        t.print(); // visual smoke test
        assert_eq!(fmt(0.0), "0");
        assert!(fmt_time(2e-9).ends_with("ns"));
        assert!(fmt_time(2e-5).ends_with("µs"));
        assert!(fmt_time(2e-2).ends_with("ms"));
        assert!(fmt_time(2.0).ends_with("s"));
    }
}
