//! Per-run measurement layer for the kernel benches: wall clock, hardware
//! cycle counter, and heap counters, aggregated into nearest-rank summary
//! statistics and emitted as the std-only `bench-kernels/v1` JSON schema
//! that `BENCH_kernels.json` (the repo's committed perf baseline) uses.
//!
//! Heap accounting needs the *binary* to install [`CountingAlloc`] as its
//! global allocator:
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: uncertain_bench::measure::CountingAlloc =
//!     uncertain_bench::measure::CountingAlloc;
//! ```
//!
//! Without it the heap fields read 0 — wall/cycle measurement still works.
//! The cycle counter is `rdtsc` on x86_64 and absent elsewhere (`cycles`
//! becomes `null` in the JSON). Everything here is std-only: no serde, no
//! external counter crates.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::time::Instant;

/// Bytes requested from the global allocator since process start (counts
/// `alloc`/`alloc_zeroed` sizes plus `realloc` growth; frees don't subtract
/// — this is cumulative traffic, not live footprint).
static HEAP_BYTES: AtomicU64 = AtomicU64::new(0);
/// Allocation calls since process start (same convention).
static HEAP_ALLOCS: AtomicU64 = AtomicU64::new(0);
/// Live heap footprint: allocations add, frees subtract, reallocs add the
/// signed size change. Signed because relaxed concurrent updates may be
/// observed transiently out of order.
static LIVE_BYTES: AtomicI64 = AtomicI64::new(0);
/// High-water mark of [`LIVE_BYTES`] (`fetch_max` after every increase).
/// [`heap_scope`] resets it to the current live footprint, making it a
/// per-scope peak for single-threaded bench bodies.
static PEAK_BYTES: AtomicU64 = AtomicU64::new(0);

fn live_add(delta: i64) {
    let live = LIVE_BYTES.fetch_add(delta, Ordering::Relaxed) + delta;
    if delta > 0 {
        PEAK_BYTES.fetch_max(live.max(0) as u64, Ordering::Relaxed);
    }
}

/// A [`System`]-backed allocator that counts allocation traffic plus the
/// live/peak footprint. Install it with `#[global_allocator]` in the bench
/// binary (see module docs).
pub struct CountingAlloc;

// SAFETY: delegates every operation verbatim to `System`; the counters are
// relaxed atomics touched outside the allocation itself.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        HEAP_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        HEAP_ALLOCS.fetch_add(1, Ordering::Relaxed);
        live_add(layout.size() as i64);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        HEAP_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        HEAP_ALLOCS.fetch_add(1, Ordering::Relaxed);
        live_add(layout.size() as i64);
        System.alloc_zeroed(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        live_add(-(layout.size() as i64));
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        HEAP_BYTES.fetch_add(
            new_size.saturating_sub(layout.size()) as u64,
            Ordering::Relaxed,
        );
        HEAP_ALLOCS.fetch_add(1, Ordering::Relaxed);
        live_add(new_size as i64 - layout.size() as i64);
        System.realloc(ptr, layout, new_size)
    }
}

/// Current `(bytes, allocs)` heap-traffic counters (0 until the binary
/// installs [`CountingAlloc`]).
pub fn heap_counters() -> (u64, u64) {
    (
        HEAP_BYTES.load(Ordering::Relaxed),
        HEAP_ALLOCS.load(Ordering::Relaxed),
    )
}

/// Current live heap footprint in bytes (0 without [`CountingAlloc`]).
pub fn live_heap_bytes() -> i64 {
    LIVE_BYTES.load(Ordering::Relaxed)
}

/// High-water live footprint since process start or the last
/// [`heap_scope`] reset (0 without [`CountingAlloc`]).
pub fn peak_heap_bytes() -> u64 {
    PEAK_BYTES.load(Ordering::Relaxed)
}

/// An open heap-accounting scope from [`heap_scope`].
pub struct HeapScope {
    name: String,
    bytes0: u64,
    allocs0: u64,
    live0: i64,
}

/// Opens a named heap scope: on drop, the scope's allocation traffic lands
/// on the registry counters `<name>.heap_bytes` / `<name>.heap_allocs`,
/// and the gauges `<name>.heap_net_bytes` (live footprint change across
/// the scope) and `<name>.heap_peak_bytes` (high-water live footprint
/// inside the scope) are set — so experiment runs report allocation
/// behavior next to their timings.
///
/// Opening the scope resets the process-wide peak to the current live
/// footprint; concurrent or nested scopes therefore see a shared peak
/// (accurate for the single-threaded top level of bench runs, best-effort
/// otherwise). All values read 0 without [`CountingAlloc`] installed.
pub fn heap_scope(name: &str) -> HeapScope {
    let (bytes0, allocs0) = heap_counters();
    let live0 = live_heap_bytes();
    PEAK_BYTES.store(live0.max(0) as u64, Ordering::Relaxed);
    HeapScope {
        name: name.to_string(),
        bytes0,
        allocs0,
        live0,
    }
}

impl Drop for HeapScope {
    fn drop(&mut self) {
        let (bytes1, allocs1) = heap_counters();
        let reg = uncertain_obs::registry();
        reg.counter(&format!("{}.heap_bytes", self.name))
            .add(bytes1.saturating_sub(self.bytes0));
        reg.counter(&format!("{}.heap_allocs", self.name))
            .add(allocs1.saturating_sub(self.allocs0));
        reg.gauge(&format!("{}.heap_net_bytes", self.name))
            .set((live_heap_bytes() - self.live0) as f64);
        reg.gauge(&format!("{}.heap_peak_bytes", self.name))
            .set(peak_heap_bytes() as f64);
    }
}

/// Reads the CPU cycle counter, `None` where no cheap one exists. `rdtsc`
/// counts reference cycles (constant-rate on every CPU this repo targets);
/// it is *not* serializing, so treat single-run deltas as noisy and lean on
/// the aggregate statistics.
#[inline]
pub fn cycle_counter() -> Option<u64> {
    #[cfg(target_arch = "x86_64")]
    {
        // SAFETY: `rdtsc` has no preconditions; baseline x86_64 includes it.
        Some(unsafe { core::arch::x86_64::_rdtsc() })
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        None
    }
}

/// Counters for one timed run of a bench body.
#[derive(Clone, Copy, Debug)]
pub struct RunMeasure {
    pub wall_ns: u64,
    /// Elapsed reference cycles; `None` off x86_64.
    pub cycles: Option<u64>,
    /// Heap bytes the run allocated (0 without [`CountingAlloc`]).
    pub heap_bytes: u64,
    /// Heap allocation calls the run made.
    pub heap_allocs: u64,
}

/// Times one call of `f` under all three counters.
pub fn measure_once(f: &mut dyn FnMut()) -> RunMeasure {
    let (b0, a0) = heap_counters();
    let c0 = cycle_counter();
    let t0 = Instant::now();
    f();
    let wall_ns = t0.elapsed().as_nanos() as u64;
    let c1 = cycle_counter();
    let (b1, a1) = heap_counters();
    RunMeasure {
        wall_ns,
        cycles: c0.zip(c1).map(|(s, e)| e.saturating_sub(s)),
        heap_bytes: b1 - b0,
        heap_allocs: a1 - a0,
    }
}

/// Runs `f` once untimed (warm-up), then `reps` timed runs.
pub fn measure_reps(reps: usize, mut f: impl FnMut()) -> Vec<RunMeasure> {
    f();
    (0..reps).map(|_| measure_once(&mut f)).collect()
}

/// Nearest-rank summary of a sample set.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Summary {
    pub min: f64,
    pub mean: f64,
    pub median: f64,
    pub p95: f64,
}

fn pick_sorted(sorted: &[f64], p: f64) -> f64 {
    // Snap `p·n` to the integer it mathematically equals before `ceil`
    // (0.95 × 20 lands an ulp high in f64) — same nearest-rank
    // convention as the vendored criterion harness.
    let exact = p * sorted.len() as f64;
    let nearest = exact.round();
    let rank = if (exact - nearest).abs() <= 1e-9 * nearest.max(1.0) {
        nearest
    } else {
        exact.ceil()
    };
    sorted[(rank as usize).clamp(1, sorted.len()) - 1]
}

/// Nearest-rank percentile (`p ∈ (0, 1]`) of a nonempty sample set.
pub fn percentile(samples: &[f64], p: f64) -> f64 {
    assert!(!samples.is_empty());
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    pick_sorted(&sorted, p)
}

/// Summarizes a nonempty sample set (nearest-rank percentiles).
pub fn summarize(samples: &[f64]) -> Summary {
    assert!(!samples.is_empty());
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    Summary {
        min: sorted[0],
        mean: samples.iter().sum::<f64>() / samples.len() as f64,
        median: pick_sorted(&sorted, 0.50),
        p95: pick_sorted(&sorted, 0.95),
    }
}

/// One (kernel, variant, n) cell of the report.
#[derive(Clone, Debug)]
pub struct KernelReport {
    /// Kernel under test, e.g. `"disk_filter_masked"`.
    pub name: String,
    /// `"scalar"` or `"soa"`.
    pub variant: String,
    /// Elements one run processes.
    pub n: usize,
    pub reps: usize,
    /// Wall time per run, nanoseconds.
    pub wall_ns: Summary,
    /// Reference cycles per run; `None` off x86_64.
    pub cycles: Option<Summary>,
    /// Mean heap bytes allocated per run.
    pub heap_bytes_per_rep: f64,
    /// Mean heap allocation calls per run.
    pub heap_allocs_per_rep: f64,
}

impl KernelReport {
    /// Aggregates raw runs into a report cell.
    pub fn from_runs(name: &str, variant: &str, n: usize, runs: &[RunMeasure]) -> Self {
        let wall: Vec<f64> = runs.iter().map(|r| r.wall_ns as f64).collect();
        let cycles: Vec<f64> = runs
            .iter()
            .filter_map(|r| r.cycles)
            .map(|c| c as f64)
            .collect();
        let k = runs.len() as f64;
        KernelReport {
            name: name.into(),
            variant: variant.into(),
            n,
            reps: runs.len(),
            wall_ns: summarize(&wall),
            cycles: (cycles.len() == runs.len()).then(|| summarize(&cycles)),
            heap_bytes_per_rep: runs.iter().map(|r| r.heap_bytes as f64).sum::<f64>() / k,
            heap_allocs_per_rep: runs.iter().map(|r| r.heap_allocs as f64).sum::<f64>() / k,
        }
    }

    /// Elements per second at the median wall time.
    pub fn elements_per_sec(&self) -> f64 {
        if self.wall_ns.median <= 0.0 {
            0.0
        } else {
            self.n as f64 / (self.wall_ns.median * 1e-9)
        }
    }
}

/// One scalar-over-SoA speedup ratio (median wall over median wall; > 1
/// means the SoA kernel is faster).
#[derive(Clone, Debug, PartialEq)]
pub struct Speedup {
    pub kernel: String,
    pub n: usize,
    pub scalar_over_soa: f64,
}

/// The whole `bench-kernels/v1` document.
#[derive(Clone, Debug)]
pub struct BenchDoc {
    /// Unix seconds the run started.
    pub created_unix: u64,
    /// Whether the run was a smoke run (few reps; ratios noisy).
    pub smoke: bool,
    pub kernels: Vec<KernelReport>,
    pub speedups: Vec<Speedup>,
}

impl BenchDoc {
    /// Derives the speedup table from `kernels`: for every (name, n) with
    /// both variants present, median scalar wall / median SoA wall.
    pub fn compute_speedups(&mut self) {
        self.speedups.clear();
        for k in &self.kernels {
            if k.variant != "soa" {
                continue;
            }
            let scalar = self
                .kernels
                .iter()
                .find(|s| s.variant == "scalar" && s.name == k.name && s.n == k.n);
            if let Some(s) = scalar {
                if k.wall_ns.median > 0.0 {
                    self.speedups.push(Speedup {
                        kernel: k.name.clone(),
                        n: k.n,
                        scalar_over_soa: s.wall_ns.median / k.wall_ns.median,
                    });
                }
            }
        }
    }

    /// Serializes the document (hand-rolled std-only JSON; keep
    /// [`parse_speedups`] in sync with the exact `speedups` formatting).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n  \"schema\": \"bench-kernels/v1\",\n");
        out.push_str(&format!("  \"created_unix\": {},\n", self.created_unix));
        out.push_str(&format!(
            "  \"host\": {{\"arch\": \"{}\", \"os\": \"{}\", \"smoke\": {}}},\n",
            std::env::consts::ARCH,
            std::env::consts::OS,
            self.smoke
        ));
        out.push_str("  \"kernels\": [\n");
        for (i, k) in self.kernels.iter().enumerate() {
            let cycles = match &k.cycles {
                Some(c) => summary_json(c, 1),
                None => "null".into(),
            };
            out.push_str(&format!(
                "    {{\"name\": \"{}\", \"variant\": \"{}\", \"n\": {}, \"reps\": {}, \
                 \"wall_ns\": {}, \"cycles\": {}, \
                 \"heap\": {{\"bytes_per_rep\": {}, \"allocs_per_rep\": {}}}, \
                 \"elements_per_sec\": {}}}{}\n",
                k.name,
                k.variant,
                k.n,
                k.reps,
                summary_json(&k.wall_ns, 1),
                cycles,
                json_f64(k.heap_bytes_per_rep),
                json_f64(k.heap_allocs_per_rep),
                json_f64(k.elements_per_sec()),
                if i + 1 < self.kernels.len() { "," } else { "" }
            ));
        }
        out.push_str("  ],\n  \"speedups\": [\n");
        for (i, s) in self.speedups.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"kernel\": \"{}\", \"n\": {}, \"scalar_over_soa\": {}}}{}\n",
                s.kernel,
                s.n,
                json_f64(s.scalar_over_soa),
                if i + 1 < self.speedups.len() { "," } else { "" }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }
}

fn summary_json(s: &Summary, decimals: usize) -> String {
    format!(
        "{{\"min\": {:.d$}, \"mean\": {:.d$}, \"median\": {:.d$}, \"p95\": {:.d$}}}",
        s.min,
        s.mean,
        s.median,
        s.p95,
        d = decimals
    )
}

fn json_f64(x: f64) -> String {
    if x.is_finite() {
        format!("{x:.3}")
    } else {
        "null".into()
    }
}

/// Extracts the `speedups` entries from a `bench-kernels/v1` document.
/// Not a general JSON parser — it scans for the exact object layout
/// [`BenchDoc::to_json`] emits, which is all the `--check` baseline
/// comparison needs.
pub fn parse_speedups(json: &str) -> Vec<Speedup> {
    let mut out = vec![];
    for chunk in json.split("{\"kernel\": \"").skip(1) {
        let Some(kernel) = chunk.split('"').next() else {
            continue;
        };
        let field = |key: &str| -> Option<f64> {
            let rest = chunk.split(&format!("\"{key}\": ")).nth(1)?;
            let num: String = rest
                .chars()
                .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-' || *c == 'e')
                .collect();
            num.parse().ok()
        };
        if let (Some(n), Some(ratio)) = (field("n"), field("scalar_over_soa")) {
            out.push(Speedup {
                kernel: kernel.to_string(),
                n: n as usize,
                scalar_over_soa: ratio,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summarize_nearest_rank() {
        let s = summarize(&[5.0, 1.0, 3.0, 2.0, 4.0]);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.mean, 3.0);
        assert_eq!(s.median, 3.0);
        assert_eq!(s.p95, 5.0);
        // p95 ≥ median on tiny samples too.
        for n in 1..20usize {
            let xs: Vec<f64> = (1..=n).map(|i| i as f64).collect();
            let s = summarize(&xs);
            assert!(s.p95 >= s.median, "n = {n}");
        }
    }

    #[test]
    fn heap_scope_records_registry_metrics() {
        // The lib test binary installs CountingAlloc (see crate root), so
        // live/peak accounting is active here.
        let live0 = live_heap_bytes();
        {
            let _scope = heap_scope("test.measure.scope");
            let v: Vec<u64> = (0..4096).collect();
            std::hint::black_box(&v);
            assert!(peak_heap_bytes() >= live0.max(0) as u64 + 8 * 4096);
        }
        let reg = uncertain_obs::registry();
        let bytes = reg.counter("test.measure.scope.heap_bytes").get();
        assert!(bytes >= 8 * 4096, "scope traffic recorded (got {bytes})");
        assert!(reg.counter("test.measure.scope.heap_allocs").get() >= 1);
        let snap = uncertain_obs::MetricsSnapshot::capture();
        let peak = snap
            .gauges
            .iter()
            .find(|(n, _)| *n == "test.measure.scope.heap_peak_bytes")
            .map(|(_, v)| *v)
            .unwrap();
        assert!(peak >= 8.0 * 4096.0);
        // The vec was dropped inside the scope: net is (close to) zero,
        // far below the peak. Other test threads may allocate
        // concurrently, so only assert the net stayed below the peak.
        let net = snap
            .gauges
            .iter()
            .find(|(n, _)| *n == "test.measure.scope.heap_net_bytes")
            .map(|(_, v)| *v)
            .unwrap();
        assert!(net < peak);
    }

    #[test]
    fn live_and_peak_track_alloc_dealloc() {
        let before = live_heap_bytes();
        let v = vec![0u8; 1 << 16];
        let during = live_heap_bytes();
        assert!(during >= before + (1 << 16));
        assert!(peak_heap_bytes() >= during.max(0) as u64);
        drop(v);
        assert!(live_heap_bytes() < during);
    }

    #[test]
    fn measure_reps_counts_runs() {
        let mut hits = 0usize;
        let runs = measure_reps(5, || hits += 1);
        assert_eq!(runs.len(), 5);
        assert_eq!(hits, 6); // warm-up + 5 timed
        #[cfg(target_arch = "x86_64")]
        assert!(runs.iter().all(|r| r.cycles.is_some()));
    }

    #[test]
    fn doc_roundtrips_speedups_through_json() {
        let runs = measure_reps(3, || {
            std::hint::black_box((0..100).sum::<u64>());
        });
        let mut doc = BenchDoc {
            created_unix: 1_700_000_000,
            smoke: true,
            kernels: vec![
                KernelReport::from_runs("disk_filter_masked", "scalar", 4096, &runs),
                KernelReport::from_runs("disk_filter_masked", "soa", 4096, &runs),
            ],
            speedups: vec![],
        };
        doc.compute_speedups();
        assert_eq!(doc.speedups.len(), 1);
        let json = doc.to_json();
        assert!(json.contains("\"schema\": \"bench-kernels/v1\""));
        let parsed = parse_speedups(&json);
        assert_eq!(parsed.len(), 1);
        assert_eq!(parsed[0].kernel, "disk_filter_masked");
        assert_eq!(parsed[0].n, 4096);
        assert!((parsed[0].scalar_over_soa - doc.speedups[0].scalar_over_soa).abs() < 1e-3);
    }
}
