//! Per-run measurement layer for the kernel benches: wall clock, hardware
//! cycle counter, and heap counters, aggregated into nearest-rank summary
//! statistics and emitted as the std-only `bench-kernels/v1` JSON schema
//! that `BENCH_kernels.json` (the repo's committed perf baseline) uses.
//!
//! Heap accounting needs the *binary* to install [`CountingAlloc`] as its
//! global allocator:
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: uncertain_bench::measure::CountingAlloc =
//!     uncertain_bench::measure::CountingAlloc;
//! ```
//!
//! Without it the heap fields read 0 — wall/cycle measurement still works.
//! The cycle counter is `rdtsc` on x86_64 and absent elsewhere (`cycles`
//! becomes `null` in the JSON). Everything here is std-only: no serde, no
//! external counter crates.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Bytes requested from the global allocator since process start (counts
/// `alloc`/`alloc_zeroed` sizes plus `realloc` growth; frees don't subtract
/// — this is cumulative traffic, not live footprint).
static HEAP_BYTES: AtomicU64 = AtomicU64::new(0);
/// Allocation calls since process start (same convention).
static HEAP_ALLOCS: AtomicU64 = AtomicU64::new(0);

/// A [`System`]-backed allocator that counts allocation traffic. Install it
/// with `#[global_allocator]` in the bench binary (see module docs).
pub struct CountingAlloc;

// SAFETY: delegates every operation verbatim to `System`; the counters are
// relaxed atomics touched outside the allocation itself.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        HEAP_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        HEAP_ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        HEAP_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        HEAP_ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        HEAP_BYTES.fetch_add(
            new_size.saturating_sub(layout.size()) as u64,
            Ordering::Relaxed,
        );
        HEAP_ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

/// Current `(bytes, allocs)` heap-traffic counters (0 until the binary
/// installs [`CountingAlloc`]).
pub fn heap_counters() -> (u64, u64) {
    (
        HEAP_BYTES.load(Ordering::Relaxed),
        HEAP_ALLOCS.load(Ordering::Relaxed),
    )
}

/// Reads the CPU cycle counter, `None` where no cheap one exists. `rdtsc`
/// counts reference cycles (constant-rate on every CPU this repo targets);
/// it is *not* serializing, so treat single-run deltas as noisy and lean on
/// the aggregate statistics.
#[inline]
pub fn cycle_counter() -> Option<u64> {
    #[cfg(target_arch = "x86_64")]
    {
        // SAFETY: `rdtsc` has no preconditions; baseline x86_64 includes it.
        Some(unsafe { core::arch::x86_64::_rdtsc() })
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        None
    }
}

/// Counters for one timed run of a bench body.
#[derive(Clone, Copy, Debug)]
pub struct RunMeasure {
    pub wall_ns: u64,
    /// Elapsed reference cycles; `None` off x86_64.
    pub cycles: Option<u64>,
    /// Heap bytes the run allocated (0 without [`CountingAlloc`]).
    pub heap_bytes: u64,
    /// Heap allocation calls the run made.
    pub heap_allocs: u64,
}

/// Times one call of `f` under all three counters.
pub fn measure_once(f: &mut dyn FnMut()) -> RunMeasure {
    let (b0, a0) = heap_counters();
    let c0 = cycle_counter();
    let t0 = Instant::now();
    f();
    let wall_ns = t0.elapsed().as_nanos() as u64;
    let c1 = cycle_counter();
    let (b1, a1) = heap_counters();
    RunMeasure {
        wall_ns,
        cycles: c0.zip(c1).map(|(s, e)| e.saturating_sub(s)),
        heap_bytes: b1 - b0,
        heap_allocs: a1 - a0,
    }
}

/// Runs `f` once untimed (warm-up), then `reps` timed runs.
pub fn measure_reps(reps: usize, mut f: impl FnMut()) -> Vec<RunMeasure> {
    f();
    (0..reps).map(|_| measure_once(&mut f)).collect()
}

/// Nearest-rank summary of a sample set.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Summary {
    pub min: f64,
    pub mean: f64,
    pub median: f64,
    pub p95: f64,
}

/// Summarizes a nonempty sample set (nearest-rank percentiles).
pub fn summarize(samples: &[f64]) -> Summary {
    assert!(!samples.is_empty());
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let pick = |p: f64| {
        // Snap `p·n` to the integer it mathematically equals before `ceil`
        // (0.95 × 20 lands an ulp high in f64) — same nearest-rank
        // convention as the vendored criterion harness.
        let exact = p * sorted.len() as f64;
        let nearest = exact.round();
        let rank = if (exact - nearest).abs() <= 1e-9 * nearest.max(1.0) {
            nearest
        } else {
            exact.ceil()
        };
        sorted[(rank as usize).clamp(1, sorted.len()) - 1]
    };
    Summary {
        min: sorted[0],
        mean: samples.iter().sum::<f64>() / samples.len() as f64,
        median: pick(0.50),
        p95: pick(0.95),
    }
}

/// One (kernel, variant, n) cell of the report.
#[derive(Clone, Debug)]
pub struct KernelReport {
    /// Kernel under test, e.g. `"disk_filter_masked"`.
    pub name: String,
    /// `"scalar"` or `"soa"`.
    pub variant: String,
    /// Elements one run processes.
    pub n: usize,
    pub reps: usize,
    /// Wall time per run, nanoseconds.
    pub wall_ns: Summary,
    /// Reference cycles per run; `None` off x86_64.
    pub cycles: Option<Summary>,
    /// Mean heap bytes allocated per run.
    pub heap_bytes_per_rep: f64,
    /// Mean heap allocation calls per run.
    pub heap_allocs_per_rep: f64,
}

impl KernelReport {
    /// Aggregates raw runs into a report cell.
    pub fn from_runs(name: &str, variant: &str, n: usize, runs: &[RunMeasure]) -> Self {
        let wall: Vec<f64> = runs.iter().map(|r| r.wall_ns as f64).collect();
        let cycles: Vec<f64> = runs
            .iter()
            .filter_map(|r| r.cycles)
            .map(|c| c as f64)
            .collect();
        let k = runs.len() as f64;
        KernelReport {
            name: name.into(),
            variant: variant.into(),
            n,
            reps: runs.len(),
            wall_ns: summarize(&wall),
            cycles: (cycles.len() == runs.len()).then(|| summarize(&cycles)),
            heap_bytes_per_rep: runs.iter().map(|r| r.heap_bytes as f64).sum::<f64>() / k,
            heap_allocs_per_rep: runs.iter().map(|r| r.heap_allocs as f64).sum::<f64>() / k,
        }
    }

    /// Elements per second at the median wall time.
    pub fn elements_per_sec(&self) -> f64 {
        if self.wall_ns.median <= 0.0 {
            0.0
        } else {
            self.n as f64 / (self.wall_ns.median * 1e-9)
        }
    }
}

/// One scalar-over-SoA speedup ratio (median wall over median wall; > 1
/// means the SoA kernel is faster).
#[derive(Clone, Debug, PartialEq)]
pub struct Speedup {
    pub kernel: String,
    pub n: usize,
    pub scalar_over_soa: f64,
}

/// The whole `bench-kernels/v1` document.
#[derive(Clone, Debug)]
pub struct BenchDoc {
    /// Unix seconds the run started.
    pub created_unix: u64,
    /// Whether the run was a smoke run (few reps; ratios noisy).
    pub smoke: bool,
    pub kernels: Vec<KernelReport>,
    pub speedups: Vec<Speedup>,
}

impl BenchDoc {
    /// Derives the speedup table from `kernels`: for every (name, n) with
    /// both variants present, median scalar wall / median SoA wall.
    pub fn compute_speedups(&mut self) {
        self.speedups.clear();
        for k in &self.kernels {
            if k.variant != "soa" {
                continue;
            }
            let scalar = self
                .kernels
                .iter()
                .find(|s| s.variant == "scalar" && s.name == k.name && s.n == k.n);
            if let Some(s) = scalar {
                if k.wall_ns.median > 0.0 {
                    self.speedups.push(Speedup {
                        kernel: k.name.clone(),
                        n: k.n,
                        scalar_over_soa: s.wall_ns.median / k.wall_ns.median,
                    });
                }
            }
        }
    }

    /// Serializes the document (hand-rolled std-only JSON; keep
    /// [`parse_speedups`] in sync with the exact `speedups` formatting).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n  \"schema\": \"bench-kernels/v1\",\n");
        out.push_str(&format!("  \"created_unix\": {},\n", self.created_unix));
        out.push_str(&format!(
            "  \"host\": {{\"arch\": \"{}\", \"os\": \"{}\", \"smoke\": {}}},\n",
            std::env::consts::ARCH,
            std::env::consts::OS,
            self.smoke
        ));
        out.push_str("  \"kernels\": [\n");
        for (i, k) in self.kernels.iter().enumerate() {
            let cycles = match &k.cycles {
                Some(c) => summary_json(c, 1),
                None => "null".into(),
            };
            out.push_str(&format!(
                "    {{\"name\": \"{}\", \"variant\": \"{}\", \"n\": {}, \"reps\": {}, \
                 \"wall_ns\": {}, \"cycles\": {}, \
                 \"heap\": {{\"bytes_per_rep\": {}, \"allocs_per_rep\": {}}}, \
                 \"elements_per_sec\": {}}}{}\n",
                k.name,
                k.variant,
                k.n,
                k.reps,
                summary_json(&k.wall_ns, 1),
                cycles,
                json_f64(k.heap_bytes_per_rep),
                json_f64(k.heap_allocs_per_rep),
                json_f64(k.elements_per_sec()),
                if i + 1 < self.kernels.len() { "," } else { "" }
            ));
        }
        out.push_str("  ],\n  \"speedups\": [\n");
        for (i, s) in self.speedups.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"kernel\": \"{}\", \"n\": {}, \"scalar_over_soa\": {}}}{}\n",
                s.kernel,
                s.n,
                json_f64(s.scalar_over_soa),
                if i + 1 < self.speedups.len() { "," } else { "" }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }
}

fn summary_json(s: &Summary, decimals: usize) -> String {
    format!(
        "{{\"min\": {:.d$}, \"mean\": {:.d$}, \"median\": {:.d$}, \"p95\": {:.d$}}}",
        s.min,
        s.mean,
        s.median,
        s.p95,
        d = decimals
    )
}

fn json_f64(x: f64) -> String {
    if x.is_finite() {
        format!("{x:.3}")
    } else {
        "null".into()
    }
}

/// Extracts the `speedups` entries from a `bench-kernels/v1` document.
/// Not a general JSON parser — it scans for the exact object layout
/// [`BenchDoc::to_json`] emits, which is all the `--check` baseline
/// comparison needs.
pub fn parse_speedups(json: &str) -> Vec<Speedup> {
    let mut out = vec![];
    for chunk in json.split("{\"kernel\": \"").skip(1) {
        let Some(kernel) = chunk.split('"').next() else {
            continue;
        };
        let field = |key: &str| -> Option<f64> {
            let rest = chunk.split(&format!("\"{key}\": ")).nth(1)?;
            let num: String = rest
                .chars()
                .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-' || *c == 'e')
                .collect();
            num.parse().ok()
        };
        if let (Some(n), Some(ratio)) = (field("n"), field("scalar_over_soa")) {
            out.push(Speedup {
                kernel: kernel.to_string(),
                n: n as usize,
                scalar_over_soa: ratio,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summarize_nearest_rank() {
        let s = summarize(&[5.0, 1.0, 3.0, 2.0, 4.0]);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.mean, 3.0);
        assert_eq!(s.median, 3.0);
        assert_eq!(s.p95, 5.0);
        // p95 ≥ median on tiny samples too.
        for n in 1..20usize {
            let xs: Vec<f64> = (1..=n).map(|i| i as f64).collect();
            let s = summarize(&xs);
            assert!(s.p95 >= s.median, "n = {n}");
        }
    }

    #[test]
    fn measure_reps_counts_runs() {
        let mut hits = 0usize;
        let runs = measure_reps(5, || hits += 1);
        assert_eq!(runs.len(), 5);
        assert_eq!(hits, 6); // warm-up + 5 timed
        #[cfg(target_arch = "x86_64")]
        assert!(runs.iter().all(|r| r.cycles.is_some()));
    }

    #[test]
    fn doc_roundtrips_speedups_through_json() {
        let runs = measure_reps(3, || {
            std::hint::black_box((0..100).sum::<u64>());
        });
        let mut doc = BenchDoc {
            created_unix: 1_700_000_000,
            smoke: true,
            kernels: vec![
                KernelReport::from_runs("disk_filter_masked", "scalar", 4096, &runs),
                KernelReport::from_runs("disk_filter_masked", "soa", 4096, &runs),
            ],
            speedups: vec![],
        };
        doc.compute_speedups();
        assert_eq!(doc.speedups.len(), 1);
        let json = doc.to_json();
        assert!(json.contains("\"schema\": \"bench-kernels/v1\""));
        let parsed = parse_speedups(&json);
        assert_eq!(parsed.len(), 1);
        assert_eq!(parsed[0].kernel, "disk_filter_masked");
        assert_eq!(parsed[0].n, 4096);
        assert!((parsed[0].scalar_over_soa - doc.speedups[0].scalar_over_soa).abs() < 1e-3);
    }
}
