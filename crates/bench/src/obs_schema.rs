//! Minimal validator for `obs/v1` JSON lines — the format the
//! `UNC_OBS_FLUSH` flusher ([`uncertain_obs::Flusher`]) appends and the CI
//! `obs-smoke` job checks via the `obs_check` binary.
//!
//! Like [`crate::measure::parse_speedups`] this is *not* a general JSON
//! parser: it scans for the exact layout
//! [`uncertain_obs::MetricsSnapshot::to_json_line`] emits, which is all
//! schema validation needs. Checked per line: the `obs/v1` header, the
//! `ts_unix`/`counters`/`gauges`/`histograms` sections, and for every
//! histogram object that `p50 ≤ p95 ≤ p99 ≤ max` (quantiles must never be
//! torn, even when the snapshot raced concurrent updates).

fn field_u64(chunk: &str, key: &str) -> Option<u64> {
    let rest = chunk.split(&format!("\"{key}\":")).nth(1)?;
    let num: String = rest.chars().take_while(|c| c.is_ascii_digit()).collect();
    num.parse().ok()
}

/// Validates one `obs/v1` JSON line. `Err` carries a short reason.
pub fn check_line(line: &str) -> Result<(), String> {
    if !line.starts_with("{\"schema\":\"obs/v1\"") {
        return Err("missing obs/v1 schema header".into());
    }
    if !line.ends_with('}') {
        return Err("truncated line (no closing brace)".into());
    }
    for key in [
        "\"ts_unix\":",
        "\"counters\":{",
        "\"gauges\":{",
        "\"histograms\":{",
    ] {
        if !line.contains(key) {
            return Err(format!("missing section {key}"));
        }
    }
    let hists = line
        .split("\"histograms\":{")
        .nth(1)
        .expect("checked above");
    for chunk in hists.split("{\"count\":").skip(1) {
        let count: u64 = chunk
            .chars()
            .take_while(|c| c.is_ascii_digit())
            .collect::<String>()
            .parse()
            .map_err(|_| "histogram count not an integer".to_string())?;
        let get = |key: &str| {
            field_u64(chunk, key).ok_or_else(|| format!("histogram missing integer {key}"))
        };
        let (p50, p95, p99, max) = (get("p50")?, get("p95")?, get("p99")?, get("max")?);
        if !(p50 <= p95 && p95 <= p99) {
            return Err(format!("torn quantiles: p50={p50} p95={p95} p99={p99}"));
        }
        if count > 0 && p99 > max {
            return Err(format!("p99={p99} exceeds max={max}"));
        }
    }
    Ok(())
}

/// Validates a whole JSON-lines body (blank lines skipped); returns the
/// number of valid lines. At least one line is required.
pub fn check_lines(body: &str) -> Result<usize, String> {
    let mut valid = 0usize;
    for (i, line) in body.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        check_line(line).map_err(|e| format!("line {}: {e}", i + 1))?;
        valid += 1;
    }
    if valid == 0 {
        return Err("no obs/v1 lines found".into());
    }
    Ok(valid)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_a_real_snapshot_line() {
        uncertain_obs::registry()
            .counter("test.obs_schema.hits")
            .inc();
        uncertain_obs::registry()
            .histogram("test.obs_schema.lat")
            .record(1234);
        let line = uncertain_obs::MetricsSnapshot::capture().to_json_line();
        assert_eq!(check_line(&line), Ok(()));
        assert!(check_lines(&format!("{line}\n\n{line}\n")).unwrap() >= 2);
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(check_line("{}").is_err());
        assert!(check_line("{\"schema\":\"obs/v1\",\"ts_unix\":1}").is_err());
        let torn = "{\"schema\":\"obs/v1\",\"ts_unix\":1,\"counters\":{},\"gauges\":{},\
                    \"histograms\":{\"x\":{\"count\":3,\"sum\":9,\"mean\":3.000,\
                    \"p50\":7,\"p95\":3,\"p99\":7,\"max\":7}}}";
        let err = check_line(torn).unwrap_err();
        assert!(err.contains("torn"), "{err}");
        assert!(check_lines("\n\n").is_err());
    }
}
