//! One Bentley–Saxe bucket: an immutable batch of sites carrying its own
//! query structures.
//!
//! A bucket is built once (at a merge) and never mutated; deletions are
//! overlaid by the dynamic layer as tombstones, which every query receives
//! as a `live(local)` predicate over the bucket's local site indices. Per
//! the existing cost model (see [`crate::dynamic::DynamicConfig`]), large
//! buckets carry the Theorem 3.2 `NN≠0` structure; small buckets answer by
//! direct Lemma 2.1 evaluation, which is cheaper below the crossover. The
//! expected-distance index is built **lazily** on the first expected-NN
//! query (churn-heavy serving workloads that never ask for expected NNs
//! never pay for it). Site payloads are shared by `Arc` — a carry moves
//! pointers, not geometry.

use std::sync::Arc;
use std::sync::OnceLock;

use super::quant::QuantIndex;
use crate::expected::ExpectedNnIndex;
use crate::model::{DiscreteSet, DiscreteUncertainPoint};
use crate::nonzero::DiscreteNonzeroIndex;
use uncertain_geom::Point;
use uncertain_spatial::GroupIndex;

pub(crate) struct Bucket {
    /// Entry indices into the dynamic set's entry slab, parallel to
    /// `sites` (ascending public site id — deterministic local order).
    pub entry_idxs: Vec<u32>,
    /// Shared site payloads.
    sites: Vec<Arc<DiscreteUncertainPoint>>,
    /// Σ locations over `sites`.
    total_locations: usize,
    /// Theorem 3.2 structure; `None` = brute evaluation.
    nonzero: Option<DiscreteNonzeroIndex>,
    /// Expected-distance branch-and-bound index, built on first use (only
    /// for buckets over the index threshold; small buckets scan).
    expected: OnceLock<ExpectedNnIndex>,
    /// Mergeable quantification summary (kd over locations + flat weight
    /// tables), built on the first quantification touching this bucket.
    /// Lives inside the `Arc`-shared bucket, so it stays warm across epoch
    /// snapshots and is invalidated exactly when a carry or compaction
    /// replaces the bucket.
    quant: OnceLock<QuantIndex>,
}

impl Bucket {
    /// Builds a bucket over `sites` (parallel to `entry_idxs`), choosing
    /// indexed vs brute evaluation by total location count.
    pub fn build(
        entry_idxs: Vec<u32>,
        sites: Vec<Arc<DiscreteUncertainPoint>>,
        index_min_locations: usize,
    ) -> Self {
        debug_assert_eq!(entry_idxs.len(), sites.len());
        let total: usize = sites.iter().map(|s| s.k()).sum();
        let indexed = sites.len() >= 2 && total >= index_min_locations;
        let nonzero = indexed.then(|| DiscreteNonzeroIndex::build(&materialize(&sites)));
        Bucket {
            entry_idxs,
            sites,
            total_locations: total,
            nonzero,
            expected: OnceLock::new(),
            quant: OnceLock::new(),
        }
    }

    pub fn is_indexed(&self) -> bool {
        self.nonzero.is_some()
    }

    /// Σ locations stored in this bucket (live and tombstoned).
    pub fn total_locations(&self) -> usize {
        self.total_locations
    }

    /// Locations of local site `local`.
    pub fn site_k(&self, local: usize) -> usize {
        self.sites[local].k()
    }

    /// The stage-1 group index of an indexed bucket (site id = local index)
    /// — the dynamic layer overlays per-node live counters on it so stage 1
    /// can skip fully-dead subtrees.
    pub fn group_index(&self) -> Option<&GroupIndex> {
        self.nonzero.as_ref().map(|idx| idx.groups())
    }

    /// The mergeable quantification summary, built on first use.
    pub fn quant_index(&self) -> &QuantIndex {
        self.quant.get_or_init(|| QuantIndex::build(&self.sites))
    }

    /// Whether the quantification summary is already built (a warm bucket
    /// costs a query nothing but the stream draw).
    pub fn quant_warm(&self) -> bool {
        self.quant.get().is_some()
    }

    /// Stage 1 of the merged Lemma 2.1 query: the two smallest `Δ_i(q)`
    /// over live local sites, as `(Δ, local index, second Δ)`. `second` is
    /// `+∞` with exactly one live site; `None` with none. For indexed
    /// buckets, `group_live` (the slot's per-node live counters, maintained
    /// against [`group_index`](Self::group_index)) lets the traversal skip
    /// fully-dead subtrees instead of testing their groups one by one.
    pub fn two_min_max_where(
        &self,
        q: Point,
        live: &mut dyn FnMut(usize) -> bool,
        group_live: Option<&[u32]>,
    ) -> Option<(f64, usize, f64)> {
        if let Some(idx) = &self.nonzero {
            let groups = idx.groups();
            let found = match group_live {
                Some(counts) => groups.two_min_max_dist_pruned(q, |g| live(g as usize), counts),
                None => groups.two_min_max_dist_where(q, |g| live(g as usize)),
            };
            return found.map(|(d, g, s)| (d, g as usize, s));
        }
        let (mut best, mut best_i, mut second) = (f64::INFINITY, usize::MAX, f64::INFINITY);
        for (i, p) in self.sites.iter().enumerate() {
            if !live(i) {
                continue;
            }
            let d = p.max_dist(q);
            if d < best {
                second = best;
                best = d;
                best_i = i;
            } else if d < second {
                second = d;
            }
        }
        (best_i != usize::MAX).then_some((best, best_i, second))
    }

    /// Stage 2: report every live local site with `δ_i(q) < bound(i)`.
    /// `radius` must upper-bound every `bound(i)` this call can take (the
    /// range query only enumerates locations within the closed disk); a
    /// site is reported at most once.
    pub fn report_where(
        &self,
        q: Point,
        radius: f64,
        live: &mut dyn FnMut(usize) -> bool,
        bound: &mut dyn FnMut(usize) -> f64,
        out: &mut dyn FnMut(usize),
    ) {
        if let Some(idx) = &self.nonzero {
            // δ_i < bound(i) ≤ radius implies the minimizing location is in
            // the closed disk, so enumerating the disk loses no site. Hits
            // are few (the NN≠0 answer is small), so dedup by sorting the
            // hit list instead of allocating an O(bucket) seen-array.
            let mut hits: Vec<usize> = vec![];
            idx.locations().for_each_in_disk(q, radius, |p, local| {
                let i = local as usize;
                if live(i) && q.dist(p) < bound(i) {
                    hits.push(i);
                }
            });
            hits.sort_unstable();
            hits.dedup();
            for i in hits {
                out(i);
            }
        } else {
            for (i, p) in self.sites.iter().enumerate() {
                if live(i) && p.min_dist(q) < bound(i) {
                    out(i);
                }
            }
        }
    }

    /// Live-filtered expected-distance nearest neighbor: `(local, E)`.
    /// Indexed buckets build their branch-and-bound index on first call.
    pub fn expected_nn_where(
        &self,
        q: Point,
        live: &mut dyn FnMut(usize) -> bool,
    ) -> Option<(usize, f64)> {
        if self.is_indexed() {
            let idx = self
                .expected
                .get_or_init(|| ExpectedNnIndex::build_discrete(&materialize(&self.sites)));
            return idx.query_where(q, &mut *live);
        }
        let mut best: Option<(usize, f64)> = None;
        for (i, p) in self.sites.iter().enumerate() {
            if !live(i) {
                continue;
            }
            let e = crate::expected::expected_dist_discrete(p, q);
            if best.is_none_or(|(_, be)| e < be) {
                best = Some((i, e));
            }
        }
        best
    }
}

/// Flattens shared payloads into the owned `DiscreteSet` the static index
/// builders consume (transient for the nonzero index; retained inside the
/// expected index's payload).
fn materialize(sites: &[Arc<DiscreteUncertainPoint>]) -> DiscreteSet {
    DiscreteSet::new(sites.iter().map(|s| (**s).clone()).collect())
}
