//! One Bentley–Saxe bucket: an immutable batch of sites carrying its own
//! query structures.
//!
//! A bucket is built once (at a merge) and never mutated; deletions are
//! overlaid by the dynamic layer as tombstones, which every query receives
//! as a `live(local)` predicate over the bucket's local site indices. Per
//! the existing cost model (see [`crate::dynamic::DynamicConfig`]), large
//! buckets carry the Theorem 3.2 `NN≠0` structure; small buckets answer by
//! direct Lemma 2.1 evaluation, which is cheaper below the crossover. The
//! expected-distance index is built **lazily** on the first expected-NN
//! query (churn-heavy serving workloads that never ask for expected NNs
//! never pay for it). Site payloads are shared by `Arc` — a carry moves
//! pointers, not geometry.

use std::sync::Arc;
use std::sync::OnceLock;

use super::quant::QuantIndex;
use crate::expected::ExpectedNnIndex;
use crate::model::{DiscreteSet, DiscreteUncertainPoint};
use crate::nonzero::DiscreteNonzeroIndex;
use uncertain_geom::{Aabb, Point};
use uncertain_spatial::soa::bitmap_get;
use uncertain_spatial::GroupIndex;

/// Calls `f(i)` for every set bit `i < n` of the tombstone bitmap — word-at-
/// a-time `trailing_zeros` extraction instead of a per-entry branch, so the
/// brute query paths pay per *live* site, not per stored site. Bits at or
/// beyond `n` are masked off defensively.
fn for_each_live(n: usize, alive: &[u64], mut f: impl FnMut(usize)) {
    for (wi, &word) in alive.iter().enumerate() {
        let base = wi << 6;
        if base >= n {
            break;
        }
        let mut w = if n - base >= 64 {
            word
        } else {
            word & ((1u64 << (n - base)) - 1)
        };
        while w != 0 {
            let b = w.trailing_zeros() as usize;
            w &= w - 1;
            f(base + b);
        }
    }
}

pub(crate) struct Bucket {
    /// Entry indices into the dynamic set's entry slab, parallel to
    /// `sites` (ascending public site id — deterministic local order).
    pub entry_idxs: Vec<u32>,
    /// Shared site payloads.
    sites: Vec<Arc<DiscreteUncertainPoint>>,
    /// Σ locations over `sites`.
    total_locations: usize,
    /// Theorem 3.2 structure; `None` = brute evaluation.
    nonzero: Option<DiscreteNonzeroIndex>,
    /// Expected-distance branch-and-bound index, built on first use (only
    /// for buckets over the index threshold; small buckets scan).
    expected: OnceLock<ExpectedNnIndex>,
    /// Mergeable quantification summary (kd over locations + flat weight
    /// tables), built on the first quantification touching this bucket.
    /// Lives inside the `Arc`-shared bucket, so it stays warm across epoch
    /// snapshots and is invalidated exactly when a carry or compaction
    /// replaces the bucket.
    quant: OnceLock<QuantIndex>,
    /// Tight box over every location of every stored site (live and
    /// tombstoned alike — a conservative cover of the live supports that
    /// only tightens at the next carry/compaction). The sharded reader
    /// unions these into per-shard support boxes for query pruning.
    support_aabb: Aabb,
}

impl Bucket {
    /// Builds a bucket over `sites` (parallel to `entry_idxs`), choosing
    /// indexed vs brute evaluation by total location count.
    pub fn build(
        entry_idxs: Vec<u32>,
        sites: Vec<Arc<DiscreteUncertainPoint>>,
        index_min_locations: usize,
    ) -> Self {
        debug_assert_eq!(entry_idxs.len(), sites.len());
        let total: usize = sites.iter().map(|s| s.k()).sum();
        let indexed = sites.len() >= 2 && total >= index_min_locations;
        let nonzero = indexed.then(|| DiscreteNonzeroIndex::build(&materialize(&sites)));
        let support_aabb =
            Aabb::from_points(sites.iter().flat_map(|s| s.locations().iter().copied()));
        Bucket {
            entry_idxs,
            sites,
            total_locations: total,
            nonzero,
            expected: OnceLock::new(),
            quant: OnceLock::new(),
            support_aabb,
        }
    }

    pub fn is_indexed(&self) -> bool {
        self.nonzero.is_some()
    }

    /// Σ locations stored in this bucket (live and tombstoned).
    pub fn total_locations(&self) -> usize {
        self.total_locations
    }

    /// Tight box over every stored site's locations (a conservative cover
    /// of the live supports; see the field docs).
    pub fn support_aabb(&self) -> &Aabb {
        &self.support_aabb
    }

    /// Locations of local site `local`.
    pub fn site_k(&self, local: usize) -> usize {
        self.sites[local].k()
    }

    /// The stage-1 group index of an indexed bucket (site id = local index)
    /// — the dynamic layer overlays per-node live counters on it so stage 1
    /// can skip fully-dead subtrees.
    pub fn group_index(&self) -> Option<&GroupIndex> {
        self.nonzero.as_ref().map(|idx| idx.groups())
    }

    /// The mergeable quantification summary, built on first use.
    pub fn quant_index(&self) -> &QuantIndex {
        self.quant.get_or_init(|| QuantIndex::build(&self.sites))
    }

    /// Whether the quantification summary is already built (a warm bucket
    /// costs a query nothing but the stream draw).
    pub fn quant_warm(&self) -> bool {
        self.quant.get().is_some()
    }

    /// Stage 1 of the merged Lemma 2.1 query: the two smallest `Δ_i(q)`
    /// over live local sites, as `(Δ, local index, second Δ)`. `second` is
    /// `+∞` with exactly one live site; `None` with none. Liveness is the
    /// slot's tombstone bitmap (bit per local site). For indexed buckets,
    /// `group_live` (the slot's per-node live counters, maintained against
    /// [`group_index`](Self::group_index)) lets the traversal skip
    /// fully-dead subtrees instead of testing their groups one by one.
    pub fn two_min_max_where(
        &self,
        q: Point,
        alive: &[u64],
        group_live: Option<&[u32]>,
    ) -> Option<(f64, usize, f64)> {
        if let Some(idx) = &self.nonzero {
            let groups = idx.groups();
            let live = |g: u32| bitmap_get(alive, g as usize);
            let found = match group_live {
                Some(counts) => groups.two_min_max_dist_pruned(q, live, counts),
                None => groups.two_min_max_dist_where(q, live),
            };
            return found.map(|(d, g, s)| (d, g as usize, s));
        }
        let (mut best, mut best_i, mut second) = (f64::INFINITY, usize::MAX, f64::INFINITY);
        for_each_live(self.sites.len(), alive, |i| {
            let d = self.sites[i].max_dist(q);
            if d < best {
                second = best;
                best = d;
                best_i = i;
            } else if d < second {
                second = d;
            }
        });
        (best_i != usize::MAX).then_some((best, best_i, second))
    }

    /// Stage 2: report every live local site with `δ_i(q) < bound(i)`.
    /// `radius` must upper-bound every `bound(i)` this call can take (the
    /// range query only enumerates locations within the closed disk); a
    /// site is reported at most once.
    pub fn report_where(
        &self,
        q: Point,
        radius: f64,
        alive: &[u64],
        bound: &mut dyn FnMut(usize) -> f64,
        out: &mut dyn FnMut(usize),
    ) {
        if let Some(idx) = &self.nonzero {
            // δ_i < bound(i) ≤ radius implies the minimizing location is in
            // the closed disk, so enumerating the disk loses no site. Hits
            // are few (the NN≠0 answer is small), so dedup by sorting the
            // hit list instead of allocating an O(bucket) seen-array. The
            // kd leaf kernel hands each hit's distance through — no
            // recomputation.
            let mut hits: Vec<usize> = vec![];
            idx.locations()
                .for_each_in_disk_with_dist(q, radius, |_, local, d| {
                    let i = local as usize;
                    if bitmap_get(alive, i) && d < bound(i) {
                        hits.push(i);
                    }
                });
            hits.sort_unstable();
            hits.dedup();
            for i in hits {
                out(i);
            }
        } else {
            for_each_live(self.sites.len(), alive, |i| {
                if self.sites[i].min_dist(q) < bound(i) {
                    out(i);
                }
            });
        }
    }

    /// Live-filtered expected-distance nearest neighbor: `(local, E)`.
    /// Indexed buckets build their branch-and-bound index on first call.
    pub fn expected_nn_where(&self, q: Point, alive: &[u64]) -> Option<(usize, f64)> {
        if self.is_indexed() {
            let idx = self
                .expected
                .get_or_init(|| ExpectedNnIndex::build_discrete(&materialize(&self.sites)));
            let mut live = |i: usize| bitmap_get(alive, i);
            return idx.query_where(q, &mut live);
        }
        let mut best: Option<(usize, f64)> = None;
        for_each_live(self.sites.len(), alive, |i| {
            let e = crate::expected::expected_dist_discrete(&self.sites[i], q);
            if best.is_none_or(|(_, be)| e < be) {
                best = Some((i, e));
            }
        });
        best
    }
}

/// Flattens shared payloads into the owned `DiscreteSet` the static index
/// builders consume (transient for the nonzero index; retained inside the
/// expected index's payload).
fn materialize(sites: &[Arc<DiscreteUncertainPoint>]) -> DiscreteSet {
    DiscreteSet::new(sites.iter().map(|s| (**s).clone()).collect())
}
