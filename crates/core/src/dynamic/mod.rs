//! Dynamic uncertain-site updates via the Bentley–Saxe logarithmic method.
//!
//! The paper's structures are all built once over a frozen site set. This
//! module lifts them to a workload where uncertain sites arrive, expire,
//! and move (the setting of probabilistic *moving* NN queries): a
//! [`DynamicSet`] maintains the sites in geometrically-sized immutable
//! buckets, each carrying its own query structures ([Theorem 3.2
//! index](crate::nonzero::DiscreteNonzeroIndex) + expected-distance index
//! for large buckets, brute Lemma 2.1 evaluation for small ones, chosen by
//! the serving cost model's crossover).
//!
//! * **Insert** — the classic logarithmic-method carry: the new site plus
//!   every bucket in the occupied prefix of slots merges into the first
//!   empty slot, rebuilding one bucket. Each site takes part in at most one
//!   rebuild per slot it ascends through, so inserts cost `O(log n)`
//!   amortized bucket-rebuild participations (`O(log² n)`-ish work with the
//!   `O(m log m)` per-bucket build).
//! * **Remove** — a tombstone: the site's entry is marked dead and every
//!   query skips it through a `live` predicate threaded into the bucket
//!   structures. Tombstones are physically dropped whenever their bucket
//!   merges, and a **global rebuild** compacts everything once the dead
//!   fraction exceeds [`DynamicConfig::max_dead_fraction`] — amortized
//!   `O(1)` rebuilt sites per remove.
//! * **Move** ([`DynamicSet::update_location`]) — tombstone + reinsert
//!   under the same stable [`SiteId`].
//!
//! Queries answer over the union of buckets *exactly*:
//!
//! * `NN≠0(q)` merges the per-bucket two-smallest-`Δ` queries into the
//!   global Lemma 2.1 threshold, then range-reports candidates per bucket —
//!   the same two-stage shape as the static Theorem 3.2 query, summed over
//!   `O(log n)` buckets.
//! * Quantification recombines exactly because locations are independent
//!   across sites: the Eq. (2) survival factors multiply across buckets, so
//!   the sweep over the union of live locations *is* the per-bucket
//!   recombination. Two interchangeable implementations share one sweep
//!   core: the **fresh** path ([`DynamicSet::quantification`]) assembles
//!   and stable-sorts the live union's entries per query, and the
//!   **merged** path ([`DynamicSet::quantification_merged`]) k-way-merges
//!   per-bucket distance-ordered streams drawn from lazily-built,
//!   `Arc`-shared bucket summaries (tombstones filtered at draw time),
//!   letting the sweep's early exit skip almost all entries. Both produce
//!   the identical entry sequence through identical arithmetic, so both
//!   are **bit-identical** to a rebuild from scratch (enforced by
//!   `tests/dynamic_differential.rs`).
//! * Expected-distance NN takes the minimum of per-bucket branch-and-bound
//!   queries.
//!
//! ```
//! use uncertain_nn::dynamic::{DynamicConfig, DynamicSet};
//! use uncertain_nn::model::DiscreteUncertainPoint;
//! use uncertain_nn::workload;
//! use uncertain_geom::Point;
//!
//! let base = workload::random_discrete_set(16, 3, 5.0, 7);
//! let mut dynset = DynamicSet::from_set(&base, DynamicConfig::default());
//! let id = dynset.insert(DiscreteUncertainPoint::certain(Point::new(0.0, 0.0)));
//! dynset.remove(3);
//! let q = Point::new(1.0, -2.0);
//! // Answers equal a fresh static build over the surviving sites.
//! let fresh = dynset.live_set();
//! let from_dynamic: Vec<usize> = dynset.nonzero(q);
//! let from_fresh: Vec<usize> = {
//!     let ids = dynset.live_ids();
//!     let mut v: Vec<usize> = fresh.nonzero_nn(q).into_iter().map(|i| ids[i]).collect();
//!     v.sort_unstable();
//!     v
//! };
//! assert_eq!(from_dynamic, from_fresh);
//! assert!(from_dynamic.contains(&id) || !from_dynamic.is_empty());
//! ```

mod bucket;
mod quant;
pub mod shard;

use std::collections::HashMap;
use std::sync::{Arc, OnceLock};

use crate::model::{DiscreteSet, DiscreteUncertainPoint};
use crate::quantification::exact::quantification_sweep;
use crate::quantification::sweep::{sweep, KWayMerge};
use bucket::Bucket;
use quant::NO_DENSE;
use uncertain_geom::{Aabb, Point};

/// Stable handle of a site across updates. Ids are assigned by
/// [`DynamicSet::insert`] (or `0..n` by [`DynamicSet::from_set`]) and are
/// never reused; [`DynamicSet::update_location`] keeps the id.
pub type SiteId = usize;

/// One site mutation for [`DynamicSet::apply`] (and the serving engine's
/// epoch layer on top of it).
#[derive(Clone, Debug, PartialEq)]
pub enum Update {
    /// Add a new uncertain site; its fresh id is reported in
    /// [`UpdateOutcome::inserted`].
    Insert(DiscreteUncertainPoint),
    /// Tombstone a site. Unknown/already-removed ids are counted in
    /// [`UpdateOutcome::missed`] and otherwise ignored.
    Remove(SiteId),
    /// Replace a site's distribution, keeping its id (expiry + arrival of
    /// the same logical object — the "moving uncertain point" primitive).
    Move {
        id: SiteId,
        to: DiscreteUncertainPoint,
    },
}

/// What a batched [`DynamicSet::apply`] did.
#[derive(Clone, Debug, Default)]
pub struct UpdateOutcome {
    /// Ids assigned to the `Insert` updates, in update order.
    pub inserted: Vec<SiteId>,
    pub removed: usize,
    pub moved: usize,
    /// `Remove`/`Move` updates whose id was unknown or already removed.
    pub missed: usize,
}

/// Tuning knobs of the dynamic layer.
#[derive(Clone, Copy, Debug)]
pub struct DynamicConfig {
    /// A bucket builds the Theorem 3.2 index (and the expected-distance
    /// index) when it holds at least this many locations; below it, brute
    /// Lemma 2.1 evaluation is cheaper. The default is the serving cost
    /// model's crossover (`4N` per brute query vs `16(√N + k̄ + 24)` per
    /// indexed query, N ≈ 160 at k̄ ≈ 4).
    pub index_min_locations: usize,
    /// A global compacting rebuild runs when tombstones exceed this
    /// fraction of all stored entries… The classic choice is `0.5` (rebuild
    /// once half the entries are dead): each remove then amortizes to ~1
    /// rebuilt site, at the cost of queries skipping up to that fraction of
    /// tombstones. Lower values compact more eagerly.
    pub max_dead_fraction: f64,
    /// …and there are at least this many of them (tiny sets are cheaper to
    /// keep sweeping than to rebuild eagerly).
    pub min_dead_for_rebuild: usize,
}

impl Default for DynamicConfig {
    fn default() -> Self {
        DynamicConfig {
            index_min_locations: 160,
            max_dead_fraction: 0.5,
            min_dead_for_rebuild: 16,
        }
    }
}

/// Lifetime counters of the rebuild work the structure has performed — the
/// amortization currency (`sites_rebuilt` is the Σ of bucket sizes over all
/// bucket (re)builds triggered by updates).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RebuildStats {
    pub inserts: u64,
    pub removes: u64,
    pub moves: u64,
    /// Bucket merges (each rebuilds exactly one bucket).
    pub merges: u64,
    /// Global compacting rebuilds (tombstone purges).
    pub global_rebuilds: u64,
    /// Total sites that participated in a bucket (re)build.
    pub sites_rebuilt: u64,
}

impl RebuildStats {
    /// Mean rebuilt sites per update — `O(log n)` for insert-heavy streams
    /// by the logarithmic-method bound (experiment E28 charts it).
    pub fn amortized_rebuild_cost(&self) -> f64 {
        let updates = self.inserts + self.removes + self.moves;
        if updates == 0 {
            0.0
        } else {
            self.sites_rebuilt as f64 / updates as f64
        }
    }

    /// Counter deltas since an earlier snapshot.
    pub fn since(&self, earlier: &RebuildStats) -> RebuildStats {
        RebuildStats {
            inserts: self.inserts - earlier.inserts,
            removes: self.removes - earlier.removes,
            moves: self.moves - earlier.moves,
            merges: self.merges - earlier.merges,
            global_rebuilds: self.global_rebuilds - earlier.global_rebuilds,
            sites_rebuilt: self.sites_rebuilt - earlier.sites_rebuilt,
        }
    }
}

/// Reuse metrics of one merged quantification query
/// ([`DynamicSet::quantification_merged_with_stats`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct QuantMergeStats {
    /// Buckets whose stream joined the k-way merge (fully-dead buckets are
    /// skipped).
    pub buckets: usize,
    /// Of those, buckets whose summary was already warm at query time —
    /// `buckets − warm_buckets` is the churn-since-last-touch the query
    /// paid lazy builds for.
    pub warm_buckets: usize,
    /// Entries the merge actually drew before the sweep's early exit.
    pub entries_merged: usize,
    /// Live locations a fresh sweep would have assembled and sorted.
    pub live_locations: usize,
    /// Shards whose streams joined the merge (sharded reader only; a
    /// monolithic set leaves this 0). With spatial partitioning, shards
    /// whose support box lies strictly beyond the exact-zero cutoff are
    /// excluded before their buckets are even opened.
    pub shards_touched: usize,
}

/// A point-in-time report of the structure's shape.
#[derive(Clone, Copy, Debug)]
pub struct DynamicStats {
    pub live: usize,
    pub tombstones: usize,
    /// Total entries in the append-only slab (live + tombstoned + already
    /// purged-from-buckets garbage). Kept within a constant factor of
    /// `live` by the slab-growth rebuild trigger.
    pub slab_entries: usize,
    pub buckets: usize,
    /// Buckets large enough to carry the Theorem 3.2 index.
    pub indexed_buckets: usize,
    pub rebuild: RebuildStats,
}

#[derive(Clone)]
struct Entry {
    site: Arc<DiscreteUncertainPoint>,
    /// Public id of the site this entry is the current (or a tombstoned
    /// former) copy of.
    id: SiteId,
    alive: bool,
    /// `(bucket slot, local index)` of this entry's current bucket, `None`
    /// while pending (pushed but not yet carried). Lets a tombstone clear
    /// the slot's alive bitmap in O(1).
    place: Option<(u32, u32)>,
}

/// An occupied Bentley–Saxe slot: the immutable shared bucket plus this
/// snapshot's tombstone overlay as a bitmap (bit per local site). Queries
/// test liveness with one masked load instead of chasing the entry slab.
/// Indexed buckets additionally carry per-node live counters over the
/// bucket's stage-1 group tree, so `NN≠0` queries skip fully-dead subtrees
/// instead of paying for the build-batch size as tombstones accumulate
/// toward the compaction threshold.
#[derive(Clone)]
struct Slot {
    bucket: Arc<Bucket>,
    alive: Vec<u64>,
    /// Live-count overlay for the bucket's [`GroupIndex`]
    /// (uncertain_spatial::GroupIndex); `None` for brute buckets.
    group_live: Option<Vec<u32>>,
}

impl Slot {
    fn new(bucket: Arc<Bucket>) -> Self {
        Slot {
            // Trailing bits of the last word stay clear, so the bucket's
            // word-at-a-time live iteration needs no end-of-slab masking.
            alive: uncertain_spatial::soa::bitmap_filled(bucket.entry_idxs.len(), true),
            group_live: bucket.group_index().map(|g| g.live_counts()),
            bucket,
        }
    }

    #[inline]
    fn kill(&mut self, local: usize) {
        self.alive[local >> 6] &= !(1u64 << (local & 63));
        if let Some(counts) = &mut self.group_live {
            self.bucket
                .group_index()
                .expect("group_live exists only for indexed buckets")
                .kill(local as u32, counts);
        }
    }
}

/// A dynamic set of uncertain sites under the Bentley–Saxe transformation.
///
/// `Clone` is cheap-ish (`O(n)` `Arc` bumps, no geometry rebuilt): buckets
/// and site payloads are shared, tombstone state is copied — which is
/// exactly what the serving engine's epoch snapshots need (an `apply` on
/// the clone never disturbs readers of the original).
#[derive(Clone)]
pub struct DynamicSet {
    /// Append-only entry slab (compacted by global rebuilds).
    entries: Vec<Entry>,
    /// Public id → current entry index (absent once removed). A map, not a
    /// slab: ids are never reused, so a slab would grow with lifetime
    /// inserts instead of the live population.
    handles: HashMap<SiteId, u32>,
    /// Next id [`insert`](Self::insert) will hand out.
    next_id: SiteId,
    /// Live ids, sorted, possibly still containing up to 50% removed ids
    /// (removes just count [`stale_ids`](Self::stale_ids) up and readers
    /// filter by handle; compaction restores density once stale ids reach
    /// half the list). Fresh ids are strictly increasing, so inserts push.
    /// Keeps inserts and removes `O(1)` amortized while
    /// [`live_ids`](Self::live_ids) / [`quantification`](Self::quantification)
    /// stay `O(live)` instead of `O(lifetime inserts)`.
    live_ids: Vec<SiteId>,
    /// Removed ids still sitting in `live_ids`.
    stale_ids: usize,
    /// Bentley–Saxe slots: `buckets[i]` is the level-`i` bucket (plus its
    /// tombstone bitmap), if any.
    buckets: Vec<Option<Slot>>,
    live: usize,
    /// Tombstoned entries still referenced by some bucket.
    dead: usize,
    config: DynamicConfig,
    stats: RebuildStats,
    /// Query-invariant setup of the quantification paths (live-id list,
    /// per-slot local→dense maps for the merged path, the live union's SoA
    /// location slab for the fresh path), built once per mutation state and
    /// shared by every query until the next update invalidates it. Cloned
    /// snapshots inherit a warm cache.
    merged_maps: OnceLock<Arc<MergedQueryMaps>>,
}

/// See [`DynamicSet::merged_maps`].
struct MergedQueryMaps {
    /// Live ids, ascending — the dense order of the sweep output.
    ids: Vec<SiteId>,
    /// Per Bentley–Saxe slot: the bucket's local→dense map, `None` for
    /// unoccupied slots and for buckets with no live site left.
    dense: Vec<Option<Vec<u32>>>,
    /// Σ locations over live sites — what a fresh sweep would sort.
    live_locations: usize,
    /// The live union's locations flattened into SoA slabs (canonical
    /// ascending `(dense site, location)` order) — the fresh sweep's
    /// distance pass runs the chunked-lane kernel over it instead of
    /// chasing per-site `Arc`s through the handle map on every query.
    live_slab: crate::quantification::slab::LocationSlab,
}

impl DynamicSet {
    /// An empty dynamic set.
    pub fn new(config: DynamicConfig) -> Self {
        DynamicSet {
            entries: vec![],
            handles: HashMap::new(),
            next_id: 0,
            live_ids: vec![],
            stale_ids: 0,
            buckets: vec![],
            live: 0,
            dead: 0,
            config,
            stats: RebuildStats::default(),
            merged_maps: OnceLock::new(),
        }
    }

    /// Bulk-loads a static set into a single bucket; site `i` of `set`
    /// receives id `i`. (The bulk build is not counted in the update
    /// amortization stats.)
    pub fn from_set(set: &DiscreteSet, config: DynamicConfig) -> Self {
        let n = set.len();
        let mut s = DynamicSet {
            entries: set
                .points
                .iter()
                .enumerate()
                .map(|(i, p)| Entry {
                    site: Arc::new(p.clone()),
                    id: i,
                    alive: true,
                    place: None,
                })
                .collect(),
            handles: (0..n).map(|i| (i, i as u32)).collect(),
            next_id: n,
            live_ids: (0..n).collect(),
            stale_ids: 0,
            buckets: vec![],
            live: n,
            dead: 0,
            config,
            stats: RebuildStats::default(),
            merged_maps: OnceLock::new(),
        };
        s.bootstrap_buckets();
        s
    }

    /// Live site count.
    pub fn len(&self) -> usize {
        self.live
    }

    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Tombstoned entries still occupying bucket slots.
    pub fn tombstones(&self) -> usize {
        self.dead
    }

    pub fn contains(&self, id: SiteId) -> bool {
        self.handles.contains_key(&id)
    }

    /// The current site under `id`, if live.
    pub fn get(&self, id: SiteId) -> Option<&DiscreteUncertainPoint> {
        let e = *self.handles.get(&id)?;
        Some(&self.entries[e as usize].site)
    }

    /// Live ids, ascending. `O(live)` (a filtered copy of the maintained
    /// list, which holds at most 2× live entries).
    pub fn live_ids(&self) -> Vec<SiteId> {
        if self.stale_ids == 0 {
            self.live_ids.clone()
        } else {
            self.live_ids
                .iter()
                .copied()
                .filter(|id| self.handles.contains_key(id))
                .collect()
        }
    }

    /// Materializes the surviving sites as a fresh static set, in ascending
    /// id order — the "rebuild from scratch" the differential harness
    /// compares against (`live_set().points[dense]` is site
    /// `live_ids()[dense]`).
    pub fn live_set(&self) -> DiscreteSet {
        DiscreteSet::new(
            self.live_ids
                .iter()
                .filter_map(|id| self.handles.get(id))
                .map(|&e| (*self.entries[e as usize].site).clone())
                .collect(),
        )
    }

    /// Allocation-free shape summary of the live sites for cost models:
    /// `(total locations N, max per-site k, weight spread ρ)`. `O(n + N)`
    /// scan, no materialization.
    pub fn live_shape(&self) -> (usize, usize, f64) {
        let mut total = 0usize;
        let mut max_k = 0usize;
        let mut w_min = f64::INFINITY;
        let mut w_max = 0.0f64;
        for e in self.entries.iter().filter(|e| e.alive) {
            total += e.site.k();
            max_k = max_k.max(e.site.k());
            for &w in e.site.weights() {
                w_min = w_min.min(w);
                w_max = w_max.max(w);
            }
        }
        let spread = if w_min.is_finite() && w_min > 0.0 {
            w_max / w_min
        } else {
            1.0
        };
        (total, max_k, spread)
    }

    pub fn stats(&self) -> DynamicStats {
        DynamicStats {
            live: self.live,
            tombstones: self.dead,
            slab_entries: self.entries.len(),
            buckets: self.buckets.iter().flatten().count(),
            indexed_buckets: self
                .buckets
                .iter()
                .flatten()
                .filter(|s| s.bucket.is_indexed())
                .count(),
            rebuild: self.stats,
        }
    }

    /// Drops the cached merged-quantification query maps; every mutation
    /// that changes the live set or the bucket layout must call this.
    fn invalidate_query_maps(&mut self) {
        self.merged_maps = OnceLock::new();
    }

    /// Inserts a site, returning its fresh stable id.
    pub fn insert(&mut self, site: DiscreteUncertainPoint) -> SiteId {
        self.invalidate_query_maps();
        let id = self.alloc_id();
        self.stats.inserts += 1;
        let e = self.push_entry(id, site);
        self.carry(vec![e]);
        id
    }

    /// Hands out the next fresh id and appends it to the sorted live list
    /// (fresh ids are strictly increasing, so a push keeps it sorted).
    fn alloc_id(&mut self) -> SiteId {
        let id = self.next_id;
        self.next_id += 1;
        self.live_ids.push(id);
        id
    }

    /// Registers an externally-allocated fresh id (sharded serving assigns
    /// ids from one global counter so per-shard id spaces never collide).
    /// The id must not be live here; racing appliers can hand ids to a
    /// shard out of order, so insertion keeps the live list sorted instead
    /// of assuming a push suffices. Removes leave stale entries behind
    /// (see [`drop_live_id`](Self::drop_live_id)), and spatial rebalancing
    /// can migrate an id away and later back — a stale copy of the adopted
    /// id is revived in place rather than duplicated.
    fn adopt_id(&mut self, id: SiteId) {
        debug_assert!(
            !self.handles.contains_key(&id),
            "adopted id {id} is already live"
        );
        self.next_id = self.next_id.max(id + 1);
        match self.live_ids.last() {
            Some(&last) if last >= id => {
                let pos = self.live_ids.partition_point(|&x| x < id);
                if self.live_ids.get(pos) == Some(&id) {
                    // Stale copy from an earlier removal of the same id.
                    self.stale_ids = self.stale_ids.saturating_sub(1);
                } else {
                    self.live_ids.insert(pos, id);
                }
            }
            _ => self.live_ids.push(id),
        }
    }

    /// Marks `id`'s slot in the sorted live list stale; compacts once half
    /// the list is stale, so removes stay `O(1)` amortized. Must be called
    /// *after* `handles` drops the id (the filter is the handle map).
    fn drop_live_id(&mut self) {
        self.stale_ids += 1;
        if self.stale_ids * 2 > self.live_ids.len() {
            let handles = &self.handles;
            self.live_ids.retain(|id| handles.contains_key(id));
            self.stale_ids = 0;
        }
    }

    /// Applies a batch of updates **in order** (so a `Move` after a
    /// `Remove` of the same id misses, exactly as with the one-at-a-time
    /// calls), but merges every new entry into the bucket structure with a
    /// *single* carry at the end: one bucket rebuild per batch instead of
    /// one per insert. This is the engine's `apply` path — under sustained
    /// churn it is the difference between `O(batch + log n)` and
    /// `O(batch · log n)` rebuilt sites per update wave.
    pub fn apply(&mut self, updates: &[Update]) -> UpdateOutcome {
        self.apply_inner(updates, None)
    }

    /// [`apply`](Self::apply) with externally-allocated insert ids: the
    /// `k`-th `Insert` in `updates` receives `insert_ids[k]` instead of a
    /// locally-allocated one. Every id must be *not currently live* here —
    /// either globally fresh (the sharded engine's single global id
    /// counter) or previously removed from this set (a spatial rebalance
    /// migrating a site back). Semantics are otherwise identical to
    /// [`apply`](Self::apply), including the single end-of-batch carry.
    pub fn apply_with_insert_ids(
        &mut self,
        updates: &[Update],
        insert_ids: &[SiteId],
    ) -> UpdateOutcome {
        let inserts = updates
            .iter()
            .filter(|u| matches!(u, Update::Insert(_)))
            .count();
        assert_eq!(
            insert_ids.len(),
            inserts,
            "one pre-assigned id per Insert update"
        );
        self.apply_inner(updates, Some(insert_ids))
    }

    fn apply_inner(&mut self, updates: &[Update], insert_ids: Option<&[SiteId]>) -> UpdateOutcome {
        let _span = uncertain_obs::span!("dynamic.apply");
        let mut out = UpdateOutcome::default();
        let mut pending: Vec<u32> = vec![];
        for u in updates {
            match u {
                Update::Insert(site) => {
                    let id = match insert_ids {
                        Some(ids) => {
                            let id = ids[out.inserted.len()];
                            self.adopt_id(id);
                            id
                        }
                        None => self.alloc_id(),
                    };
                    self.stats.inserts += 1;
                    pending.push(self.push_entry(id, site.clone()));
                    out.inserted.push(id);
                }
                Update::Remove(id) => {
                    if self.tombstone(*id) {
                        self.handles.remove(id);
                        self.drop_live_id();
                        self.stats.removes += 1;
                        out.removed += 1;
                    } else {
                        out.missed += 1;
                    }
                }
                Update::Move { id, to } => {
                    if self.tombstone(*id) {
                        self.stats.moves += 1;
                        pending.push(self.push_entry(*id, to.clone()));
                        out.moved += 1;
                    } else {
                        out.missed += 1;
                    }
                }
            }
        }
        if !pending.is_empty() || out.removed > 0 {
            self.invalidate_query_maps();
        }
        if !pending.is_empty() {
            self.carry(pending);
        }
        self.maybe_rebuild_all();
        self.record_obs_gauges();
        out
    }

    /// Publishes the set's shape to the obs registry gauges — last-write
    /// wins, so with several live `DynamicSet`s the gauges track whichever
    /// instance mutated most recently (in the serving engine that is the
    /// published epoch).
    fn record_obs_gauges(&self) {
        let total = (self.live + self.dead) as f64;
        let ratio = if total == 0.0 {
            0.0
        } else {
            self.dead as f64 / total
        };
        uncertain_obs::gauge!("dynamic.tombstone_ratio").set(ratio);
        uncertain_obs::gauge!("dynamic.live_sites").set(self.live as f64);
        let (warm, cold) = self.quant_summary_state();
        uncertain_obs::gauge!("dynamic.quant.warm_locations").set(warm as f64);
        uncertain_obs::gauge!("dynamic.quant.cold_locations").set(cold as f64);
    }

    /// Tombstones `id`. Returns `false` when the id is unknown or already
    /// removed. Triggers a global compacting rebuild when the dead fraction
    /// exceeds the configured threshold.
    pub fn remove(&mut self, id: SiteId) -> bool {
        if !self.tombstone(id) {
            return false;
        }
        self.invalidate_query_maps();
        self.handles.remove(&id);
        self.drop_live_id();
        self.stats.removes += 1;
        self.maybe_rebuild_all();
        true
    }

    /// Replaces the distribution of site `id` (tombstone + reinsert under
    /// the same id). Returns `false` when the id is not live.
    pub fn update_location(&mut self, id: SiteId, site: DiscreteUncertainPoint) -> bool {
        if !self.tombstone(id) {
            return false;
        }
        self.invalidate_query_maps();
        self.stats.moves += 1;
        let e = self.push_entry(id, site);
        self.carry(vec![e]);
        self.maybe_rebuild_all();
        true
    }

    /// Marks the current entry of `id` dead (leaving `handles[id]` in
    /// place for the caller to overwrite or clear). `false` if not live.
    fn tombstone(&mut self, id: SiteId) -> bool {
        let Some(&e) = self.handles.get(&id) else {
            return false;
        };
        let entry = &mut self.entries[e as usize];
        entry.alive = false;
        if let Some((slot, local)) = entry.place {
            self.buckets[slot as usize]
                .as_mut()
                .expect("placed entry's slot is occupied")
                .kill(local as usize);
        }
        self.live -= 1;
        self.dead += 1;
        true
    }

    /// Rebuilds everything into one compact bucket, dropping tombstones and
    /// compacting the entry slab. Runs automatically past the dead-fraction
    /// threshold; exposed for explicit compaction.
    pub fn rebuild_all(&mut self) {
        let _span = uncertain_obs::span!("dynamic.rebuild");
        self.invalidate_query_maps();
        self.stats.global_rebuilds += 1;
        self.stats.sites_rebuilt += self.live as u64;
        uncertain_obs::counter!("dynamic.global_rebuilds").inc();
        uncertain_obs::counter!("dynamic.sites_rebuilt").add(self.live as u64);
        let mut survivors: Vec<(SiteId, Arc<DiscreteUncertainPoint>)> = self
            .entries
            .iter()
            .filter(|e| e.alive)
            .map(|e| (e.id, Arc::clone(&e.site)))
            .collect();
        survivors.sort_unstable_by_key(|&(id, _)| id);
        self.entries = survivors
            .into_iter()
            .map(|(id, site)| Entry {
                site,
                id,
                alive: true,
                place: None,
            })
            .collect();
        self.handles.clear();
        for (i, e) in self.entries.iter().enumerate() {
            self.handles.insert(e.id, i as u32);
        }
        self.dead = 0;
        self.live_ids = self.entries.iter().map(|e| e.id).collect();
        self.stale_ids = 0;
        self.bootstrap_buckets();
    }

    /// Lays the whole (all-live) entry slab out as a single bucket at the
    /// slot matching its size — the shared bootstrap of `from_set` and
    /// `rebuild_all`.
    fn bootstrap_buckets(&mut self) {
        self.buckets.clear();
        let n = self.entries.len();
        if n > 0 {
            let slot = (usize::BITS - 1 - n.leading_zeros()) as usize;
            self.buckets = vec![None; slot + 1];
            self.place_bucket(slot, (0..n as u32).collect());
        }
    }

    /// Appends a live entry for `id` (without placing it in a bucket yet)
    /// and points the handle at it.
    fn push_entry(&mut self, id: SiteId, site: DiscreteUncertainPoint) -> u32 {
        let e = self.entries.len() as u32;
        self.entries.push(Entry {
            site: Arc::new(site),
            id,
            alive: true,
            place: None,
        });
        self.handles.insert(id, e);
        self.live += 1;
        e
    }

    /// The logarithmic-method carry: merge the occupied prefix of slots
    /// plus `pool` into the first empty slot, dropping tombstones on the
    /// way (they are counted out of `dead` here). `pool` entries may
    /// themselves have died since being pushed (a `Move` later in the same
    /// batch); they are filtered identically.
    fn carry(&mut self, mut pool: Vec<u32>) {
        let _span = uncertain_obs::span!("dynamic.carry");
        let mut slot = 0;
        loop {
            if slot < self.buckets.len() && self.buckets[slot].is_some() {
                let b = self.buckets[slot].take().unwrap();
                pool.extend_from_slice(&b.bucket.entry_idxs);
                slot += 1;
                continue;
            }
            // The merged bucket must land at a level that fits its size
            // (slot k holds ≤ 2^k entries). Stopping at the first empty
            // slot regardless of size would drop a bulk batch at slot 0,
            // and every later carry would re-gather and rebuild it —
            // turning the amortized O(log n) per update into O(n) per
            // batch. Unit inserts are unaffected (their pools always fit).
            if pool.len() <= (1usize << slot.min(usize::BITS as usize - 1)) {
                break;
            }
            slot += 1;
        }
        let mut live_pool = Vec::with_capacity(pool.len());
        for e in pool {
            if self.entries[e as usize].alive {
                live_pool.push(e);
            } else {
                self.dead -= 1;
            }
        }
        if live_pool.is_empty() {
            // Everything gathered was dead: the merged slots stay empty.
            return;
        }
        while self.buckets.len() <= slot {
            self.buckets.push(None);
        }
        self.stats.merges += 1;
        self.stats.sites_rebuilt += live_pool.len() as u64;
        uncertain_obs::counter!("dynamic.merges").inc();
        uncertain_obs::counter!("dynamic.sites_rebuilt").add(live_pool.len() as u64);
        self.place_bucket(slot, live_pool);
    }

    /// Builds a bucket over `pool` (live entry indices), installs it at
    /// `slot` with a fresh all-alive bitmap, and points every entry's
    /// `place` at its new home. Pure mechanics — the caller does the
    /// amortization accounting (bulk loads are not counted).
    fn place_bucket(&mut self, slot: usize, mut pool: Vec<u32>) {
        pool.sort_unstable_by_key(|&e| self.entries[e as usize].id);
        for (local, &e) in pool.iter().enumerate() {
            self.entries[e as usize].place = Some((slot as u32, local as u32));
        }
        let sites = pool
            .iter()
            .map(|&e| Arc::clone(&self.entries[e as usize].site))
            .collect();
        let bucket = Arc::new(Bucket::build(pool, sites, self.config.index_min_locations));
        self.buckets[slot] = Some(Slot::new(bucket));
    }

    fn maybe_rebuild_all(&mut self) {
        // Trigger 1: tombstones still buried in buckets exceed the dead
        // fraction (query-speed pressure).
        let tombstone_pressure = self.dead >= self.config.min_dead_for_rebuild
            && (self.dead as f64)
                > self.config.max_dead_fraction * ((self.live + self.dead) as f64);
        // Trigger 2: the append-only entry slab has outgrown the live set
        // (memory/clone-cost pressure). Carries purge tombstones out of
        // buckets — which empties `dead` — but purged entries still occupy
        // the slab, so steady insert+remove churn would otherwise grow it
        // without bound.
        let slab_pressure = self.entries.len() >= 32.max(self.config.min_dead_for_rebuild)
            && self.entries.len() > 2 * self.live;
        if tombstone_pressure || slab_pressure {
            self.rebuild_all();
        }
    }

    /// `NN≠0(q)` over the live sites, as ascending public ids — equal to
    /// the Lemma 2.1 answer of a fresh static build over
    /// [`live_set`](Self::live_set) (mapped through
    /// [`live_ids`](Self::live_ids)).
    ///
    /// Stage 1 merges each bucket's two smallest live `Δ_i(q)` into the
    /// global best/second pair (each bucket's top-2 suffices: the global
    /// top-2 is contained in the union of per-bucket top-2s); stage 2
    /// range-reports candidates per bucket against the Lemma 2.1 threshold
    /// `min_{j≠i} Δ_j(q)`.
    pub fn nonzero(&self, q: Point) -> Vec<SiteId> {
        let Some((d1, id1, d2)) = self.nonzero_two_min(q) else {
            return vec![];
        };
        let mut out: Vec<SiteId> = vec![];
        self.nonzero_report_into(q, id1, d1, d2, &mut out);
        out.sort_unstable();
        out
    }

    /// Stage 1 of `NN≠0(q)` over this set alone: the two smallest live
    /// `Δ_i(q)` merged across buckets, as `(d1, best id, d2)` (`d2 = ∞`
    /// with a single live site, `None` when empty). The min and second-min
    /// over a union are independent of how the union is partitioned, so
    /// folding these triples across disjoint sets (shards) reproduces the
    /// monolithic pair bitwise — the sharded scatter phase.
    pub fn nonzero_two_min(&self, q: Point) -> Option<(f64, SiteId, f64)> {
        if self.live == 0 {
            return None;
        }
        let mut best = (f64::INFINITY, u32::MAX); // (Δ, entry index)
        let mut second = f64::INFINITY;
        for slot in self.buckets.iter().flatten() {
            let Some((d, local, s)) =
                slot.bucket
                    .two_min_max_where(q, &slot.alive, slot.group_live.as_deref())
            else {
                continue;
            };
            let e = slot.bucket.entry_idxs[local];
            if d < best.0 {
                second = best.0;
                best = (d, e);
            } else if d < second {
                second = d;
            }
            if s < second {
                second = s;
            }
        }
        Some((best.0, self.entries[best.1 as usize].id, second))
    }

    /// Stage 2 of `NN≠0(q)`: range-report this set's candidates against the
    /// *global* Lemma 2.1 threshold pair `(d1, d2)` with best witness
    /// `best_id` (which may live in another shard), appending public ids to
    /// `out` unsorted. A tie (`d2 == d1`) makes the bound
    /// witness-independent, so the per-site test only depends on globally
    /// identical floats — the sharded gather phase is bit-identical to the
    /// monolithic report.
    pub fn nonzero_report_into(
        &self,
        q: Point,
        best_id: SiteId,
        d1: f64,
        d2: f64,
        out: &mut Vec<SiteId>,
    ) {
        // d2 = ∞ only with a single live site, whose δ ≤ Δ = d1 keeps it
        // inside the closed range query; its bound stays +∞ (min over ∅).
        let radius = if d2.is_finite() { d2 } else { d1 };
        let entries = &self.entries;
        for slot in self.buckets.iter().flatten() {
            let b = &slot.bucket;
            let mut bound = |local: usize| {
                if entries[b.entry_idxs[local] as usize].id == best_id {
                    d2
                } else {
                    d1
                }
            };
            let mut push = |local: usize| out.push(entries[b.entry_idxs[local] as usize].id);
            b.report_where(q, radius, &slot.alive, &mut bound, &mut push);
        }
    }

    /// All quantification probabilities over the live sites, as ascending
    /// `(id, π)` pairs, by the **fresh sweep**: evaluate the live union's
    /// distances on the cached SoA location slab (chunked-lane kernel) and
    /// stable-sort the entry list — bit-identical to
    /// [`quantification_discrete`](crate::quantification::exact) on a fresh
    /// static build over the survivors, because both paths feed identical
    /// entries in identical order to the shared Eq. (2) sweep core.
    /// `O(N log N)` per query with no per-bucket reuse; the serving planner
    /// prefers [`quantification_merged`](Self::quantification_merged) once
    /// the structure is warm.
    pub fn quantification(&self, q: Point) -> Vec<(SiteId, f64)> {
        let maps = self
            .merged_maps
            .get_or_init(|| Arc::new(self.build_merged_maps()));
        let mut scratch = vec![];
        let mut entries: Vec<(f64, usize, f64)> = vec![];
        maps.live_slab.entries_into(q, &mut scratch, &mut entries);
        let pi = quantification_sweep(entries, maps.ids.len());
        maps.ids.iter().copied().zip(pi).collect()
    }

    /// All quantification probabilities over the live sites by the
    /// **merged** path: each bucket lazily builds (then keeps warm, shared
    /// across epoch snapshots) a query-free sorted summary over its
    /// locations, a query draws per-bucket distance-ordered streams with
    /// tombstones filtered at draw time, and a k-way merge across the
    /// `O(log n)` buckets feeds the shared Eq. (2) sweep core with its
    /// early exit. Answers are **bit-identical** to
    /// [`quantification`](Self::quantification) (and hence to a fresh
    /// static build): the merge reproduces the fresh path's exact entry
    /// order, and the recombination across buckets is exact because
    /// survival factors multiply independently across sites. Enforced by
    /// `tests/dynamic_differential.rs` under every op interleaving.
    pub fn quantification_merged(&self, q: Point) -> Vec<(SiteId, f64)> {
        self.quantification_merged_with_stats(q).0
    }

    /// [`quantification_merged`](Self::quantification_merged) plus the
    /// per-query reuse metrics the serving engine aggregates.
    pub fn quantification_merged_with_stats(
        &self,
        q: Point,
    ) -> (Vec<(SiteId, f64)>, QuantMergeStats) {
        let mut stats = QuantMergeStats::default();
        // Query-invariant setup (live-id list + per-slot local→dense maps)
        // is cached per mutation state: a serving batch pays its O(n)
        // construction once, every subsequent query just draws streams.
        let maps = self
            .merged_maps
            .get_or_init(|| Arc::new(self.build_merged_maps()));
        let n = maps.ids.len();
        if n == 0 {
            return (vec![], stats);
        }
        stats.live_locations = maps.live_locations;
        let mut streams = vec![];
        for (slot, dense_of_local) in self.buckets.iter().zip(&maps.dense) {
            let (Some(slot), Some(dense_of_local)) = (slot, dense_of_local) else {
                continue; // unoccupied slot, or a fully-dead bucket
            };
            stats.buckets += 1;
            if slot.bucket.quant_warm() {
                stats.warm_buckets += 1;
            }
            streams.push(
                slot.bucket
                    .quant_index()
                    .stream(q, dense_of_local, &slot.alive),
            );
        }
        let mut merge = KWayMerge::new(streams);
        let pi = sweep(&mut merge, n);
        stats.entries_merged = merge.consumed();
        (maps.ids.iter().copied().zip(pi).collect(), stats)
    }

    /// Builds the merged path's query-invariant maps (see
    /// [`MergedQueryMaps`]): `O(n log n)` once per mutation state.
    fn build_merged_maps(&self) -> MergedQueryMaps {
        let ids = self.live_ids();
        let (dense, live_locations) = self.dense_maps_for(&ids);
        let mut live_slab =
            crate::quantification::slab::LocationSlab::with_capacity(live_locations);
        for (dense_idx, &id) in ids.iter().enumerate() {
            let site = &self.entries[self.handles[&id] as usize].site;
            for (&loc, &w) in site.locations().iter().zip(site.weights()) {
                live_slab.push(dense_idx, loc, w);
            }
        }
        MergedQueryMaps {
            ids,
            dense,
            live_locations,
            live_slab,
        }
    }

    /// Per-slot local→dense maps against an externally-supplied dense id
    /// order, plus the Σ of live locations: the shared core of the
    /// monolithic merged maps (dense order = this set's own live ids) and
    /// the sharded gather maps (dense order = the *union* of all shards'
    /// live ids, so per-shard streams emit globally-dense indices and the
    /// cross-shard k-way merge reproduces the monolithic entry sequence).
    /// `ids` must be sorted ascending and contain every live id of `self`.
    fn dense_maps_for(&self, ids: &[SiteId]) -> (Vec<Option<Vec<u32>>>, usize) {
        let mut dense = Vec::with_capacity(self.buckets.len());
        let mut live_locations = 0;
        for slot in &self.buckets {
            let Some(slot) = slot else {
                dense.push(None);
                continue;
            };
            let b = &slot.bucket;
            // Dead locals keep NO_DENSE; the stream's alive-bitmap filter
            // never lets them through.
            let mut any_live = false;
            let map: Vec<u32> = b
                .entry_idxs
                .iter()
                .enumerate()
                .map(|(local, &e)| {
                    let entry = &self.entries[e as usize];
                    if entry.alive {
                        any_live = true;
                        live_locations += b.site_k(local);
                        ids.binary_search(&entry.id).map_or(NO_DENSE, |d| d as u32)
                    } else {
                        NO_DENSE
                    }
                })
                .collect();
            dense.push(any_live.then_some(map));
        }
        (dense, live_locations)
    }

    /// Warm/cold split of the per-bucket quantification summaries, in
    /// locations: `(warm, cold)`. Cold locations are exactly the buckets
    /// churn has replaced since quantification last touched them — the
    /// planner's signal for pricing the merged path's lazy build cost.
    pub fn quant_summary_state(&self) -> (usize, usize) {
        let mut warm = 0;
        let mut cold = 0;
        for slot in self.buckets.iter().flatten() {
            if slot.bucket.quant_warm() {
                warm += slot.bucket.total_locations();
            } else {
                cold += slot.bucket.total_locations();
            }
        }
        (warm, cold)
    }

    /// A conservative box over the supports of every live site: the union
    /// of per-bucket support boxes. Tombstoned sites still inflate it until
    /// their bucket next merges — the box only over-covers, never
    /// under-covers, which is the direction spatial query pruning needs.
    /// Empty (and hence safe to prune against any query) when no buckets
    /// are occupied.
    pub fn support_aabb(&self) -> Aabb {
        self.buckets
            .iter()
            .flatten()
            .fold(Aabb::empty(), |acc, slot| {
                acc.union(slot.bucket.support_aabb())
            })
    }

    /// The live site minimizing the expected distance to `q`, with that
    /// distance (minimum of the per-bucket branch-and-bound queries).
    /// Exact ties *across* buckets break to the smaller id; within an
    /// indexed bucket the branch-and-bound traversal order decides among
    /// bitwise-equal values — the returned *value* is always the exact
    /// minimum, the witness id among exact ties is unspecified.
    pub fn expected_nn(&self, q: Point) -> Option<(SiteId, f64)> {
        let entries = &self.entries;
        let mut best: Option<(SiteId, f64)> = None;
        for slot in self.buckets.iter().flatten() {
            if let Some((local, e)) = slot.bucket.expected_nn_where(q, &slot.alive) {
                let id = entries[slot.bucket.entry_idxs[local] as usize].id;
                let better = match best {
                    None => true,
                    Some((bid, be)) => e < be || (e == be && id < bid),
                };
                if better {
                    best = Some((id, e));
                }
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expected::ExpectedNnIndex;
    use crate::nonzero::{nonzero_nn_discrete, DiscreteNonzeroIndex};
    use crate::quantification::exact::quantification_discrete;
    use crate::workload;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Checks every query family of `d` against a fresh static build.
    fn assert_matches_fresh(d: &DynamicSet, queries: &[Point]) {
        let fresh = d.live_set();
        let ids = d.live_ids();
        assert_eq!(fresh.len(), d.len());
        for &q in queries {
            // NN≠0 vs brute Lemma 2.1 and vs a fresh Theorem 3.2 index.
            let got = d.nonzero(q);
            let want: Vec<SiteId> = nonzero_nn_discrete(&fresh, q)
                .into_iter()
                .map(|dense| ids[dense])
                .collect();
            assert_eq!(got, want, "NN≠0 at {q}");
            let idx = DiscreteNonzeroIndex::build(&fresh);
            let mut via_index = idx.query(q);
            via_index.sort_unstable();
            let want_dense: Vec<usize> = want
                .iter()
                .map(|id| ids.binary_search(id).unwrap())
                .collect();
            assert_eq!(via_index, want_dense);
            // Quantification: bit-identical — via the fresh sweep *and* the
            // k-way merged path (cold, then warm).
            let pi_fresh = quantification_discrete(&fresh, q);
            let pi_dyn = d.quantification(q);
            assert_eq!(pi_dyn.len(), pi_fresh.len());
            for ((id, got), (dense, want)) in pi_dyn.iter().zip(pi_fresh.iter().enumerate()) {
                assert_eq!(*id, ids[dense]);
                assert_eq!(got.to_bits(), want.to_bits(), "π at {q}");
            }
            let (pi_merged, mstats) = d.quantification_merged_with_stats(q);
            assert_eq!(pi_merged.len(), pi_fresh.len());
            for ((id, got), (dense, want)) in pi_merged.iter().zip(pi_fresh.iter().enumerate()) {
                assert_eq!(*id, ids[dense]);
                assert_eq!(got.to_bits(), want.to_bits(), "merged π at {q}");
            }
            assert!(mstats.entries_merged <= mstats.live_locations);
            let (pi_warm, wstats) = d.quantification_merged_with_stats(q);
            assert_eq!(pi_merged, pi_warm, "warm merged answer drifted at {q}");
            assert_eq!(
                wstats.warm_buckets, wstats.buckets,
                "every touched bucket must be warm on the second query"
            );
            // Expected NN: same minimal value (bitwise).
            let want_e = ExpectedNnIndex::build_discrete(&fresh).query(q);
            let got_e = d.expected_nn(q);
            match (got_e, want_e) {
                (None, None) => {}
                (Some((_, ge)), Some((_, we))) => {
                    assert_eq!(ge.to_bits(), we.to_bits(), "expected NN at {q}")
                }
                other => panic!("expected-NN existence mismatch: {other:?}"),
            }
        }
    }

    #[test]
    fn random_op_stream_matches_fresh_builds() {
        for (seed, config) in [
            (1u64, DynamicConfig::default()),
            // Tiny index threshold: every bucket exercises the indexed path.
            (
                2,
                DynamicConfig {
                    index_min_locations: 2,
                    ..DynamicConfig::default()
                },
            ),
            // Aggressive compaction.
            (
                3,
                DynamicConfig {
                    max_dead_fraction: 0.05,
                    min_dead_for_rebuild: 2,
                    ..DynamicConfig::default()
                },
            ),
        ] {
            let mut rng = StdRng::seed_from_u64(seed);
            let base = workload::random_discrete_set(12, 3, 5.0, seed);
            let mut d = DynamicSet::from_set(&base, config);
            let queries = workload::random_queries(4, 60.0, seed ^ 0x5a5a);
            for step in 0..60 {
                match rng.gen_range(0..4u32) {
                    0 | 1 => {
                        let k = rng.gen_range(1..4);
                        let c = Point::new(rng.gen_range(-25.0..25.0), rng.gen_range(-25.0..25.0));
                        let locs = (0..k)
                            .map(|_| {
                                Point::new(
                                    c.x + rng.gen_range(-3.0..3.0),
                                    c.y + rng.gen_range(-3.0..3.0),
                                )
                            })
                            .collect();
                        d.insert(DiscreteUncertainPoint::uniform(locs));
                    }
                    2 => {
                        let ids = d.live_ids();
                        if ids.len() > 1 {
                            let id = ids[rng.gen_range(0..ids.len())];
                            assert!(d.remove(id));
                            assert!(!d.contains(id));
                            assert!(!d.remove(id), "double remove must fail");
                        }
                    }
                    _ => {
                        let ids = d.live_ids();
                        if !ids.is_empty() {
                            let id = ids[rng.gen_range(0..ids.len())];
                            let p =
                                Point::new(rng.gen_range(-25.0..25.0), rng.gen_range(-25.0..25.0));
                            assert!(d.update_location(id, DiscreteUncertainPoint::certain(p)));
                            assert!(d.contains(id));
                        }
                    }
                }
                if step % 5 == 0 || step > 54 {
                    assert_matches_fresh(&d, &queries);
                }
            }
            let s = d.stats();
            assert_eq!(s.live, d.len());
            assert!(s.rebuild.merges > 0);
        }
    }

    #[test]
    fn batched_apply_matches_sequential_ops_with_fewer_rebuilds() {
        let base = workload::random_discrete_set(32, 3, 5.0, 15);
        let mut one_by_one = DynamicSet::from_set(&base, DynamicConfig::default());
        let mut batched = DynamicSet::from_set(&base, DynamicConfig::default());
        let updates: Vec<Update> = (0..24)
            .map(|i| match i % 4 {
                0 | 1 => Update::Insert(DiscreteUncertainPoint::certain(Point::new(
                    i as f64,
                    -(i as f64),
                ))),
                2 => Update::Remove(i / 2),
                _ => Update::Move {
                    id: i,
                    to: DiscreteUncertainPoint::certain(Point::new(0.5 * i as f64, 3.0)),
                },
            })
            .collect();
        // Sequential reference path.
        let mut expected_inserted = vec![];
        for u in &updates {
            match u {
                Update::Insert(s) => expected_inserted.push(one_by_one.insert(s.clone())),
                Update::Remove(id) => {
                    one_by_one.remove(*id);
                }
                Update::Move { id, to } => {
                    one_by_one.update_location(*id, to.clone());
                }
            }
        }
        let outcome = batched.apply(&updates);
        assert_eq!(outcome.inserted, expected_inserted);
        assert_eq!(outcome.removed + outcome.moved + outcome.missed, 12);
        // Same surviving sites and same ids…
        assert_eq!(batched.live_ids(), one_by_one.live_ids());
        for q in workload::random_queries(5, 60.0, 16) {
            assert_eq!(batched.nonzero(q), one_by_one.nonzero(q));
            assert_eq!(batched.quantification(q), one_by_one.quantification(q));
        }
        // …with strictly less rebuild work (one carry vs one per insert).
        let (b, s) = (
            batched.stats().rebuild.sites_rebuilt,
            one_by_one.stats().rebuild.sites_rebuilt,
        );
        assert!(b < s, "batched apply rebuilt {b} ≥ sequential {s}");
        // A same-batch insert→move→remove chain resolves in order.
        let mut d = DynamicSet::new(DynamicConfig::default());
        let out = d.apply(&[
            Update::Insert(DiscreteUncertainPoint::certain(Point::new(1.0, 1.0))),
            Update::Move {
                id: 0,
                to: DiscreteUncertainPoint::certain(Point::new(2.0, 2.0)),
            },
            Update::Remove(0),
            Update::Remove(0),
        ]);
        assert_eq!(out.inserted, vec![0]);
        assert_eq!((out.moved, out.removed, out.missed), (1, 1, 1));
        assert!(d.is_empty());
        assert!(d.nonzero(Point::new(0.0, 0.0)).is_empty());
    }

    #[test]
    fn clone_is_an_isolated_snapshot() {
        let base = workload::random_discrete_set(20, 3, 5.0, 9);
        let d0 = DynamicSet::from_set(&base, DynamicConfig::default());
        let q = Point::new(2.0, 3.0);
        let before = d0.nonzero(q);
        let mut d1 = d0.clone();
        for id in 0..10 {
            d1.remove(id);
        }
        d1.insert(DiscreteUncertainPoint::certain(q));
        // The original still answers as before the clone diverged.
        assert_eq!(d0.nonzero(q), before);
        assert_eq!(d0.len(), 20);
        assert_eq!(d1.len(), 11);
        assert_matches_fresh(&d1, &[q]);
    }

    #[test]
    fn amortized_rebuild_cost_is_logarithmic() {
        let mut d = DynamicSet::new(DynamicConfig::default());
        let mut rng = StdRng::seed_from_u64(4);
        let n = 2048;
        for _ in 0..n {
            let p = Point::new(rng.gen_range(-25.0..25.0), rng.gen_range(-25.0..25.0));
            d.insert(DiscreteUncertainPoint::certain(p));
        }
        let s = d.stats();
        assert_eq!(s.live, n);
        assert_eq!(s.tombstones, 0, "pure inserts leave no tombstones");
        assert!(s.buckets <= (n as f64).log2() as usize + 2);
        let amortized = s.rebuild.amortized_rebuild_cost();
        // Bentley–Saxe: each of the 2048 inserts participates in ≤ log2(n)+1
        // rebuilds on average; leave generous headroom.
        assert!(
            amortized <= (n as f64).log2() + 2.0,
            "amortized rebuild cost {amortized} not logarithmic"
        );
        assert!(amortized >= 1.0);
    }

    #[test]
    fn steady_churn_keeps_the_entry_slab_bounded() {
        // Insert+remove churn on a constant-size live set: carries purge
        // tombstones out of buckets (so the dead-fraction trigger alone
        // would never fire), but the slab-growth trigger must still bound
        // the append-only entry slab and the structure's clone cost.
        let base = workload::random_discrete_set(64, 2, 4.0, 17);
        let mut d = DynamicSet::from_set(&base, DynamicConfig::default());
        let mut rng = StdRng::seed_from_u64(18);
        for round in 0..2000 {
            let p = Point::new(rng.gen_range(-25.0..25.0), rng.gen_range(-25.0..25.0));
            let id = d.insert(DiscreteUncertainPoint::certain(p));
            let ids = d.live_ids();
            let victim = ids[rng.gen_range(0..ids.len() - 1)]; // keep the new id sometimes
            d.remove(if round % 3 == 0 { id } else { victim });
        }
        let s = d.stats();
        assert_eq!(s.live, 64);
        assert!(
            s.slab_entries <= 2 * s.live + 32,
            "entry slab grew without bound: {} entries for {} live sites",
            s.slab_entries,
            s.live
        );
        assert!(s.rebuild.global_rebuilds > 0, "slab trigger never fired");
        assert_matches_fresh(&d, &workload::random_queries(2, 60.0, 19));
    }

    #[test]
    fn tombstone_pressure_triggers_global_rebuild() {
        let base = workload::random_discrete_set(64, 2, 4.0, 11);
        let mut d = DynamicSet::from_set(
            &base,
            DynamicConfig {
                max_dead_fraction: 0.2,
                min_dead_for_rebuild: 4,
                ..DynamicConfig::default()
            },
        );
        for id in 0..40 {
            d.remove(id);
        }
        let s = d.stats();
        assert!(s.rebuild.global_rebuilds > 0, "no compaction: {s:?}");
        // Compaction keeps the dead fraction bounded.
        assert!(
            (s.tombstones as f64) <= 0.2 * ((s.live + s.tombstones) as f64) + 1.0,
            "{s:?}"
        );
        assert_matches_fresh(&d, &workload::random_queries(3, 60.0, 12));
    }

    #[test]
    fn empty_and_singleton() {
        let mut d = DynamicSet::new(DynamicConfig::default());
        let q = Point::new(0.0, 0.0);
        assert!(d.nonzero(q).is_empty());
        assert!(d.quantification(q).is_empty());
        assert!(d.expected_nn(q).is_none());
        let id = d.insert(DiscreteUncertainPoint::certain(Point::new(3.0, 4.0)));
        assert_eq!(d.nonzero(q), vec![id]);
        let pi = d.quantification(q);
        assert_eq!(pi, vec![(id, 1.0)]);
        let (eid, e) = d.expected_nn(q).unwrap();
        assert_eq!(eid, id);
        assert_eq!(e, 5.0);
        d.remove(id);
        assert!(d.nonzero(q).is_empty());
        assert!(d.is_empty());
    }

    #[test]
    fn update_location_keeps_ids_stable() {
        let base = workload::random_discrete_set(8, 2, 4.0, 13);
        let mut d = DynamicSet::from_set(&base, DynamicConfig::default());
        let target = Point::new(100.0, 100.0);
        assert!(d.update_location(5, DiscreteUncertainPoint::certain(target)));
        assert_eq!(d.get(5).unwrap().locations(), &[target]);
        assert_eq!(d.len(), 8);
        // The moved site is now the only possible NN near its new home.
        assert_eq!(d.nonzero(Point::new(99.0, 99.0)), vec![5]);
        assert!(!d.update_location(99, DiscreteUncertainPoint::certain(target)));
    }
}
