//! Per-bucket mergeable quantification summaries.
//!
//! A [`QuantIndex`] is a bucket's query-free sorted structure for the
//! Eq. (2) sweep: a kd-tree over all of the bucket's locations plus the
//! flat `location → (local site, location index, weight)` tables. Any query
//! can then draw the bucket's locations as a **distance-ordered stream**
//! ([`BucketQuantStream`]) via best-first traversal, without sorting
//! anything at query time. The dynamic layer k-way-merges these streams
//! across its `O(log n)` buckets and feeds the shared sweep core — with the
//! early exit, a query typically draws a handful of entries per bucket
//! instead of re-sorting the whole live union.
//!
//! The index is built **lazily** on the first quantification that touches
//! the bucket (workloads that never quantify never pay for it) and lives
//! inside the immutable, `Arc`-shared [`Bucket`](super::bucket::Bucket) —
//! so it is invalidated exactly when the bucket itself is replaced (a carry
//! or a global compaction) and stays warm across engine epoch snapshots
//! that share the bucket. Tombstones are *not* baked in: the stream filters
//! dead sites at draw time against the slot's alive bitmap, the same
//! overlay the `NN≠0` path uses.
//!
//! Ordering contract (what makes merged answers bit-identical to a fresh
//! sweep): the kd iterator yields exact `q.dist(loc)` values in
//! non-decreasing order, and the stream buffers each run of equal distances
//! and sorts it by `(site, location index)` — precisely the tie order a
//! stable distance sort of the canonical flat entry list produces.

use std::sync::Arc;

use crate::model::DiscreteUncertainPoint;
use crate::quantification::sweep::{SweepEntry, SweepSource};
use uncertain_geom::Point;
use uncertain_spatial::kdtree::NearestIter;
use uncertain_spatial::KdTree;

/// Marker for a local site with no live dense index (tombstoned, or a stale
/// entry whose id has since moved to another bucket).
pub(crate) const NO_DENSE: u32 = u32::MAX;

/// A bucket's query-free sorted summary: kd-tree over locations + flat
/// per-location tables.
pub(crate) struct QuantIndex {
    kd: KdTree,
    /// Flat location index → local site index.
    owner: Vec<u32>,
    /// Flat location index → location index within its site.
    loc_idx: Vec<u32>,
    /// Flat location index → location weight.
    weight: Vec<f64>,
}

impl QuantIndex {
    /// Builds the summary over a bucket's sites (local order). `O(m log m)`
    /// in the bucket's location count `m`.
    pub fn build(sites: &[Arc<DiscreteUncertainPoint>]) -> Self {
        let total: usize = sites.iter().map(|s| s.k()).sum();
        let mut items = Vec::with_capacity(total);
        let mut owner = Vec::with_capacity(total);
        let mut loc_idx = Vec::with_capacity(total);
        let mut weight = Vec::with_capacity(total);
        for (local, site) in sites.iter().enumerate() {
            for (li, (&loc, &w)) in site.locations().iter().zip(site.weights()).enumerate() {
                items.push((loc, items.len() as u32));
                owner.push(local as u32);
                loc_idx.push(li as u32);
                weight.push(w);
            }
        }
        QuantIndex {
            kd: KdTree::build(items),
            owner,
            loc_idx,
            weight,
        }
    }

    /// Opens a distance-ordered live entry stream for `q`.
    /// `dense_of_local[local]` maps the bucket's local sites to dense sweep
    /// indices ([`NO_DENSE`] for dead locals — consistent with `alive`, the
    /// slot's tombstone bitmap, which is what actually filters). The map is
    /// borrowed: it is query-invariant, so the dynamic layer builds it once
    /// per snapshot state and shares it across every query.
    pub fn stream<'a>(
        &'a self,
        q: Point,
        dense_of_local: &'a [u32],
        alive: &'a [u64],
    ) -> BucketQuantStream<'a> {
        BucketQuantStream {
            index: self,
            iter: self.kd.nearest_iter(q),
            dense_of_local,
            alive,
            lookahead: None,
            batch: vec![],
            batch_pos: 0,
            batch_d: 0.0,
        }
    }
}

/// One bucket's distance-ordered live entry stream (see module docs).
pub(crate) struct BucketQuantStream<'a> {
    index: &'a QuantIndex,
    iter: NearestIter<'a>,
    dense_of_local: &'a [u32],
    /// The slot's tombstone bitmap (bit per local site).
    alive: &'a [u64],
    /// The first drawn kd item beyond the current equal-distance run.
    lookahead: Option<(f64, u32)>,
    /// The current equal-distance run: `(dense, location index, weight)`,
    /// sorted ascending — the stable-sort tie order.
    batch: Vec<(u32, u32, f64)>,
    batch_pos: usize,
    batch_d: f64,
}

impl BucketQuantStream<'_> {
    #[inline]
    fn push_if_live(&mut self, flat: u32) {
        let local = self.index.owner[flat as usize] as usize;
        if self.alive[local >> 6] & (1u64 << (local & 63)) != 0 {
            self.batch.push((
                self.dense_of_local[local],
                self.index.loc_idx[flat as usize],
                self.index.weight[flat as usize],
            ));
        }
    }
}

impl SweepSource for BucketQuantStream<'_> {
    fn next_entry(&mut self) -> Option<SweepEntry> {
        loop {
            if self.batch_pos < self.batch.len() {
                let (dense, _, w) = self.batch[self.batch_pos];
                self.batch_pos += 1;
                debug_assert_ne!(dense, NO_DENSE, "live local without a dense index");
                return Some((self.batch_d, dense as usize, w));
            }
            // Refill: draw the next equal-distance run from the kd stream
            // (dead runs come out empty and the loop draws the next one).
            let (d, flat) = match self.lookahead.take() {
                Some(head) => head,
                None => {
                    let (_, flat, d) = self.iter.next()?;
                    (d, flat)
                }
            };
            self.batch.clear();
            self.batch_pos = 0;
            self.batch_d = d;
            self.push_if_live(flat);
            loop {
                match self.iter.next() {
                    Some((_, f2, d2)) if d2 == d => self.push_if_live(f2),
                    Some((_, f2, d2)) => {
                        self.lookahead = Some((d2, f2));
                        break;
                    }
                    None => break,
                }
            }
            self.batch
                .sort_unstable_by_key(|&(dense, li, _)| (dense, li));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quantification::sweep::sweep;
    use crate::workload;

    #[test]
    fn stream_replays_the_stable_sorted_entry_order() {
        let set = workload::random_discrete_set(12, 3, 5.0, 91);
        let sites: Vec<Arc<DiscreteUncertainPoint>> =
            set.points.iter().map(|p| Arc::new(p.clone())).collect();
        let qi = QuantIndex::build(&sites);
        let alive = vec![u64::MAX; 1];
        let dense: Vec<u32> = (0..sites.len() as u32).collect();
        for q in workload::random_queries(10, 50.0, 92) {
            let mut stream = qi.stream(q, &dense, &alive);
            let mut got = vec![];
            while let Some(e) = stream.next_entry() {
                got.push(e);
            }
            let want = {
                let mut slab = crate::quantification::sweep::SortedSlab::new(
                    crate::quantification::exact::sweep_entries(&set, q),
                );
                let mut v = vec![];
                while let Some(e) = slab.next_entry() {
                    v.push(e);
                }
                v
            };
            assert_eq!(got.len(), want.len());
            for (a, b) in got.iter().zip(&want) {
                assert_eq!(a.0.to_bits(), b.0.to_bits());
                assert_eq!(a.1, b.1);
                assert_eq!(a.2.to_bits(), b.2.to_bits());
            }
        }
    }

    #[test]
    fn dead_sites_are_filtered_at_draw_time() {
        let set = workload::random_discrete_set(8, 2, 4.0, 93);
        let sites: Vec<Arc<DiscreteUncertainPoint>> =
            set.points.iter().map(|p| Arc::new(p.clone())).collect();
        let qi = QuantIndex::build(&sites);
        // Kill locals 1, 4, 5; remap survivors to dense 0..5.
        let mut alive = vec![u64::MAX; 1];
        let mut dense = vec![NO_DENSE; 8];
        let mut next = 0u32;
        for (local, slot) in dense.iter_mut().enumerate() {
            if [1usize, 4, 5].contains(&local) {
                alive[0] &= !(1u64 << local);
            } else {
                *slot = next;
                next += 1;
            }
        }
        let q = Point::new(0.5, -0.5);
        let mut stream = qi.stream(q, &dense, &alive);
        let survivors = crate::model::DiscreteSet::new(
            set.points
                .iter()
                .enumerate()
                .filter(|&(i, _)| ![1usize, 4, 5].contains(&i))
                .map(|(_, p)| p.clone())
                .collect(),
        );
        let pi_stream = sweep(&mut stream, 5);
        let pi_fresh = crate::quantification::exact::quantification_discrete(&survivors, q);
        for (a, b) in pi_stream.iter().zip(&pi_fresh) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }
}
