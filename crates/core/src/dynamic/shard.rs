//! Scatter-gather query drivers over a partition of the site universe into
//! independent [`DynamicSet`] shards.
//!
//! The partition is by stable id ([`shard_of`]): each site lives in exactly
//! one shard, each shard is a full Bentley–Saxe structure (buckets,
//! tombstone bitmaps, warm quant summaries) that mutates independently.
//! Every query family recombines **bit-identically** to a single monolithic
//! set holding the union, because each already recombines across *buckets*
//! by an operation that is independent of how the union is partitioned:
//!
//! * `NN≠0` — the global Lemma 2.1 threshold pair `(d1, d2)` is the
//!   min/second-min of `Δ_i(q)` over the union; [`ShardedReader::nonzero`]
//!   folds per-shard [`DynamicSet::nonzero_two_min`] triples with the same
//!   fold the monolithic set applies per bucket, then gathers per-shard
//!   range reports against the (globally identical) threshold floats.
//! * Quantification — the k-way merge heap orders entries by
//!   `(distance, dense site)`, and each site is in exactly one shard, so a
//!   merge over *all shards'* bucket streams — with each stream mapping its
//!   locals to **globally dense** indices (position in the union's
//!   ascending live-id order, see [`DynamicSet::dense_maps_for`]) — draws
//!   the exact entry sequence the monolithic merge draws, into the same
//!   Eq. (2) sweep core.
//! * Expected-distance NN — the minimum of per-shard branch-and-bound
//!   minima, folded with the monolithic cross-bucket tie rule (exact ties
//!   break to the smaller id; the witness among bitwise-equal values is
//!   unspecified either way, the *value* is always the exact minimum).
//!
//! `tests/sharded_differential.rs` runs the three families after every op
//! of randomized interleavings against a monolithic oracle at S ∈ {1, 3, 8}.

use std::sync::{Arc, OnceLock};

use super::{DynamicSet, QuantMergeStats, SiteId};
use crate::model::DiscreteSet;
use crate::quantification::sweep::{sweep, KWayMerge};
use uncertain_geom::Point;

/// The shard owning `id` under hash partitioning into `shards` shards.
/// Fibonacci multiplicative hashing: cheap, deterministic, and spreads the
/// strictly-increasing id stream evenly instead of striping it.
#[inline]
pub fn shard_of(id: SiteId, shards: usize) -> usize {
    debug_assert!(shards > 0);
    (((id as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) % shards as u64) as usize
}

/// Query-invariant gather state, built once per shard-epoch vector and
/// shared by every query against that snapshot (the sharded analogue of the
/// monolithic set's cached merged maps).
struct GatherMaps {
    /// Union of all shards' live ids, ascending — the dense order of the
    /// merged sweep output, identical to the monolithic set's.
    ids: Vec<SiteId>,
    /// Per shard: per-slot local→*global*-dense maps.
    dense: Vec<Vec<Option<Vec<u32>>>>,
    /// Σ locations over the union's live sites.
    live_locations: usize,
}

/// A read-only scatter-gather view over one snapshot of every shard.
///
/// Holds `Arc` snapshots, so an in-flight reader is never disturbed by
/// appliers publishing new shard epochs. Construction is O(S); the gather
/// maps are built lazily on the first quantification and cached.
pub struct ShardedReader {
    shards: Vec<Arc<DynamicSet>>,
    maps: OnceLock<GatherMaps>,
}

impl ShardedReader {
    /// A reader over one consistent snapshot (one `Arc` per shard).
    pub fn new(shards: Vec<Arc<DynamicSet>>) -> Self {
        assert!(!shards.is_empty(), "at least one shard");
        ShardedReader {
            shards,
            maps: OnceLock::new(),
        }
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The per-shard snapshots, in shard order.
    pub fn shards(&self) -> &[Arc<DynamicSet>] {
        &self.shards
    }

    /// Live sites across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.len()).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.is_empty())
    }

    /// Tombstoned entries still occupying bucket slots, across all shards.
    pub fn tombstones(&self) -> usize {
        self.shards.iter().map(|s| s.tombstones()).sum()
    }

    /// Union of live ids, ascending — per-shard lists are each sorted and
    /// pairwise disjoint, so a merge of sorted runs suffices.
    pub fn live_ids(&self) -> Vec<SiteId> {
        if self.shards.len() == 1 {
            return self.shards[0].live_ids();
        }
        let mut ids: Vec<SiteId> = self.shards.iter().flat_map(|s| s.live_ids()).collect();
        ids.sort_unstable();
        ids
    }

    /// Materializes the union as a static set in ascending id order —
    /// identical to the monolithic [`DynamicSet::live_set`], so fresh-path
    /// evaluation (brute `NN≠0`, fresh/snapped quantification) over it is
    /// bit-identical too.
    pub fn live_set(&self) -> DiscreteSet {
        let maps = self.maps();
        DiscreteSet::new(
            maps.ids
                .iter()
                .map(|&id| {
                    let shard = &self.shards[shard_of(id, self.shards.len())];
                    shard.get(id).expect("gather map ids are live").clone()
                })
                .collect(),
        )
    }

    /// Exact global shape summary `(total locations N, max per-site k,
    /// weight spread ρ)` — the same scan [`DynamicSet::live_shape`] does,
    /// folded across shards (spread needs the global weight extremes, so
    /// per-shard spreads alone would not recombine exactly).
    pub fn live_shape(&self) -> (usize, usize, f64) {
        let mut total = 0usize;
        let mut max_k = 0usize;
        let mut w_min = f64::INFINITY;
        let mut w_max = 0.0f64;
        for shard in &self.shards {
            for e in shard.entries.iter().filter(|e| e.alive) {
                total += e.site.k();
                max_k = max_k.max(e.site.k());
                for &w in e.site.weights() {
                    w_min = w_min.min(w);
                    w_max = w_max.max(w);
                }
            }
        }
        let spread = if w_min.is_finite() && w_min > 0.0 {
            w_max / w_min
        } else {
            1.0
        };
        (total, max_k, spread)
    }

    /// Occupied buckets across all shards (the merged path's fan-in).
    pub fn bucket_count(&self) -> usize {
        self.shards.iter().map(|s| s.stats().buckets).sum::<usize>()
    }

    /// Warm/cold split of quant summaries across shards, in locations.
    pub fn quant_summary_state(&self) -> (usize, usize) {
        let mut warm = 0;
        let mut cold = 0;
        for s in &self.shards {
            let (w, c) = s.quant_summary_state();
            warm += w;
            cold += c;
        }
        (warm, cold)
    }

    /// `NN≠0(q)` over the union, ascending public ids — bit-identical to a
    /// monolithic [`DynamicSet::nonzero`] over the same live sites.
    pub fn nonzero(&self, q: Point) -> Vec<SiteId> {
        // Scatter: fold the per-shard two-min triples exactly as the
        // monolithic set folds per-bucket triples.
        let mut best: (f64, SiteId) = (f64::INFINITY, SiteId::MAX);
        let mut second = f64::INFINITY;
        let mut any = false;
        for shard in &self.shards {
            let Some((d, id, s)) = shard.nonzero_two_min(q) else {
                continue;
            };
            any = true;
            if d < best.0 {
                second = best.0;
                best = (d, id);
            } else if d < second {
                second = d;
            }
            if s < second {
                second = s;
            }
        }
        if !any {
            return vec![];
        }
        let (d1, id1) = best;
        let d2 = second;
        // Gather: every shard range-reports against the same global floats.
        let mut out: Vec<SiteId> = vec![];
        for shard in &self.shards {
            shard.nonzero_report_into(q, id1, d1, d2, &mut out);
        }
        out.sort_unstable();
        out
    }

    /// Merged quantification over the union: one k-way merge across *all*
    /// shards' bucket streams, each emitting globally-dense indices, into
    /// the shared sweep core. Bit-identical to the monolithic merged (and
    /// fresh) paths.
    pub fn quantification_merged(&self, q: Point) -> Vec<(SiteId, f64)> {
        self.quantification_merged_with_stats(q).0
    }

    /// [`quantification_merged`](Self::quantification_merged) plus the
    /// reuse metrics the serving engine aggregates (buckets and warm
    /// buckets count across every shard).
    pub fn quantification_merged_with_stats(
        &self,
        q: Point,
    ) -> (Vec<(SiteId, f64)>, QuantMergeStats) {
        let mut stats = QuantMergeStats::default();
        let maps = self.maps();
        let n = maps.ids.len();
        if n == 0 {
            return (vec![], stats);
        }
        stats.live_locations = maps.live_locations;
        let mut streams = vec![];
        for (shard, dense) in self.shards.iter().zip(&maps.dense) {
            for (slot, dense_of_local) in shard.buckets.iter().zip(dense) {
                let (Some(slot), Some(dense_of_local)) = (slot, dense_of_local) else {
                    continue; // unoccupied slot, or a fully-dead bucket
                };
                stats.buckets += 1;
                if slot.bucket.quant_warm() {
                    stats.warm_buckets += 1;
                }
                streams.push(
                    slot.bucket
                        .quant_index()
                        .stream(q, dense_of_local, &slot.alive),
                );
            }
        }
        let mut merge = KWayMerge::new(streams);
        let pi = sweep(&mut merge, n);
        stats.entries_merged = merge.consumed();
        (maps.ids.iter().copied().zip(pi).collect(), stats)
    }

    /// The live site minimizing expected distance to `q`, with that
    /// distance: the fold of per-shard branch-and-bound minima under the
    /// monolithic cross-bucket tie rule (exact ties to the smaller id).
    /// The value is bit-identical to the monolithic query; the witness
    /// among exact ties is unspecified there too.
    pub fn expected_nn(&self, q: Point) -> Option<(SiteId, f64)> {
        let mut best: Option<(SiteId, f64)> = None;
        for shard in &self.shards {
            if let Some((id, e)) = shard.expected_nn(q) {
                let better = match best {
                    None => true,
                    Some((bid, be)) => e < be || (e == be && id < bid),
                };
                if better {
                    best = Some((id, e));
                }
            }
        }
        best
    }

    fn maps(&self) -> &GatherMaps {
        self.maps.get_or_init(|| {
            let ids = self.live_ids();
            let mut dense = Vec::with_capacity(self.shards.len());
            let mut live_locations = 0;
            for shard in &self.shards {
                let (maps, locs) = shard.dense_maps_for(&ids);
                dense.push(maps);
                live_locations += locs;
            }
            GatherMaps {
                ids,
                dense,
                live_locations,
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dynamic::{DynamicConfig, Update};
    use crate::model::DiscreteUncertainPoint;
    use crate::workload;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn partitioned(n: usize, shards: usize, seed: u64) -> (DynamicSet, Vec<DynamicSet>) {
        let base = workload::random_discrete_set(n, 3, 8.0, seed);
        let mono = DynamicSet::from_set(&base, DynamicConfig::default());
        let mut parts = vec![DynamicSet::new(DynamicConfig::default()); shards];
        for (id, p) in base.points.iter().enumerate() {
            let s = shard_of(id, shards);
            parts[s].apply_with_insert_ids(&[Update::Insert(p.clone())], &[id]);
        }
        (mono, parts)
    }

    fn reader(parts: &[DynamicSet]) -> ShardedReader {
        ShardedReader::new(parts.iter().map(|p| Arc::new(p.clone())).collect())
    }

    fn assert_families_match(mono: &DynamicSet, r: &ShardedReader, queries: &[Point]) {
        assert_eq!(r.len(), mono.len());
        assert_eq!(r.live_ids(), mono.live_ids());
        for &q in queries {
            assert_eq!(r.nonzero(q), mono.nonzero(q), "NN≠0 at {q}");
            let merged = r.quantification_merged(q);
            let want = mono.quantification(q);
            assert_eq!(merged.len(), want.len());
            for ((id, got), (wid, w)) in merged.iter().zip(&want) {
                assert_eq!(id, wid);
                assert_eq!(got.to_bits(), w.to_bits(), "π at {q}");
            }
            match (r.expected_nn(q), mono.expected_nn(q)) {
                (None, None) => {}
                (Some((_, ge)), Some((_, we))) => {
                    assert_eq!(ge.to_bits(), we.to_bits(), "E[d] at {q}")
                }
                (got, want) => panic!("expected-NN mismatch: {got:?} vs {want:?}"),
            }
        }
    }

    #[test]
    fn shard_of_is_total_and_stable() {
        for id in 0..1000 {
            assert_eq!(shard_of(id, 1), 0);
            for s in [2, 3, 8] {
                assert!(shard_of(id, s) < s);
                assert_eq!(shard_of(id, s), shard_of(id, s));
            }
        }
        // The hash spreads a dense id range across every shard.
        let mut seen = [false; 8];
        for id in 0..64 {
            seen[shard_of(id, 8)] = true;
        }
        assert!(seen.iter().all(|&s| s), "{seen:?}");
    }

    #[test]
    fn static_partition_matches_monolithic_at_several_shard_counts() {
        let queries: Vec<Point> = workload::random_discrete_set(12, 1, 9.0, 42)
            .points
            .iter()
            .map(|p| p.locations()[0])
            .collect();
        for shards in [1, 3, 8] {
            let (mono, parts) = partitioned(60, shards, 7 + shards as u64);
            assert_families_match(&mono, &reader(&parts), &queries);
        }
    }

    #[test]
    fn churned_partition_stays_bit_identical() {
        let mut rng = StdRng::seed_from_u64(0xD15C);
        let shards = 3;
        let (mut mono, mut parts) = partitioned(40, shards, 11);
        let queries: Vec<Point> = (0..6)
            .map(|_| Point::new(rng.gen_range(-9.0..9.0), rng.gen_range(-9.0..9.0)))
            .collect();
        let mut next_id = 40usize;
        for round in 0..12 {
            let mut live = mono.live_ids();
            // Two removes, one move, two inserts per round — mirrors the
            // engine-epoch churn mix.
            let mut ops: Vec<Update> = vec![];
            for k in 0..2usize {
                if !live.is_empty() {
                    let id = live.remove((round * 7 + k * 3) % live.len());
                    ops.push(Update::Remove(id));
                }
            }
            if !live.is_empty() {
                let id = live[(round * 5) % live.len()];
                ops.push(Update::Move {
                    id,
                    to: DiscreteUncertainPoint::certain(Point::new(
                        round as f64 - 6.0,
                        -(round as f64) / 2.0,
                    )),
                });
            }
            for k in 0..2 {
                ops.push(Update::Insert(DiscreteUncertainPoint::uniform(vec![
                    Point::new(rng.gen_range(-8.0..8.0), rng.gen_range(-8.0..8.0)),
                    Point::new(round as f64, k as f64),
                ])));
            }
            // Monolithic gets the ids the sharded side will assign: the
            // monolithic set allocates next_id.. itself, so pre-assigning
            // the identical sequence keeps both id streams equal.
            let outcome = mono.apply(&ops);
            let mut insert_ids: Vec<SiteId> = (next_id..).take(outcome.inserted.len()).collect();
            assert_eq!(outcome.inserted, insert_ids);
            next_id += insert_ids.len();
            // Scatter the same ops to shards, preserving order.
            let mut per_shard: Vec<Vec<Update>> = vec![vec![]; shards];
            let mut per_shard_ids: Vec<Vec<SiteId>> = vec![vec![]; shards];
            for op in ops {
                let (target, insert_id) = match &op {
                    Update::Insert(_) => {
                        let id = insert_ids.remove(0);
                        (shard_of(id, shards), Some(id))
                    }
                    Update::Remove(id) => (shard_of(*id, shards), None),
                    Update::Move { id, .. } => (shard_of(*id, shards), None),
                };
                per_shard[target].push(op);
                if let Some(id) = insert_id {
                    per_shard_ids[target].push(id);
                }
            }
            for (s, part) in parts.iter_mut().enumerate() {
                part.apply_with_insert_ids(&per_shard[s], &per_shard_ids[s]);
            }
            assert_families_match(&mono, &reader(&parts), &queries);
        }
    }

    #[test]
    fn empty_reader_answers_empty() {
        let parts = vec![DynamicSet::new(DynamicConfig::default()); 4];
        let r = reader(&parts);
        assert!(r.is_empty());
        assert_eq!(r.len(), 0);
        let q = Point::new(0.5, -0.5);
        assert!(r.nonzero(q).is_empty());
        assert!(r.quantification_merged(q).is_empty());
        assert!(r.expected_nn(q).is_none());
        assert!(r.live_set().is_empty());
    }
}
