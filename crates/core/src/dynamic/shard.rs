//! Scatter-gather query drivers over a partition of the site universe into
//! independent [`DynamicSet`] shards.
//!
//! The reader is **partition-agnostic**: each site lives in exactly one
//! shard (by id hash, by spatial region — the reader never asks which),
//! each shard is a full Bentley–Saxe structure (buckets, tombstone bitmaps,
//! warm quant summaries) that mutates independently. Every query family
//! recombines **bit-identically** to a single monolithic set holding the
//! union, because each already recombines across *buckets* by an operation
//! that is independent of how the union is partitioned:
//!
//! * `NN≠0` — the global Lemma 2.1 threshold pair `(d1, d2)` is the
//!   min/second-min of `Δ_i(q)` over the union; [`ShardedReader::nonzero`]
//!   folds per-shard [`DynamicSet::nonzero_two_min`] triples with the same
//!   fold the monolithic set applies per bucket, then gathers per-shard
//!   range reports against the (globally identical) threshold floats.
//! * Quantification — the k-way merge heap orders entries by
//!   `(distance, dense site)`, and each site is in exactly one shard, so a
//!   merge over *all shards'* bucket streams — with each stream mapping its
//!   locals to **globally dense** indices (position in the union's
//!   ascending live-id order, see [`DynamicSet::dense_maps_for`]) — draws
//!   the exact entry sequence the monolithic merge draws, into the same
//!   Eq. (2) sweep core.
//! * Expected-distance NN — the minimum of per-shard branch-and-bound
//!   minima, folded with the monolithic cross-bucket tie rule (exact ties
//!   break to the smaller id; the witness among bitwise-equal values is
//!   unspecified either way, the *value* is always the exact minimum).
//!
//! # Spatial pruning
//!
//! Every read path additionally prunes whole shards against per-shard
//! **support boxes** ([`DynamicSet::support_aabb`]: a conservative cover of
//! every live site's locations). For each shard `s`, `dist(q, box_s)` lower
//! bounds both `δ_i(q)` and `Δ_i(q)` of every live site `i ∈ s` (every
//! location of `i` lies in `box_s`). Shards are visited in ascending
//! box-distance order so thresholds tighten before far shards are tested;
//! a shard is skipped exactly when the bound proves no site in it can
//! change any output bit (each skip rule carries its proof inline). Under
//! hash partitioning every shard's box covers essentially the whole cloud,
//! so the bounds are all ~0 and nothing is pruned — the pruned driver
//! degrades to the plain scatter-gather. Under a spatial partitioner the
//! boxes are near-disjoint and clustered queries touch `O(1)` shards.
//! The `*_touched` variants report how many shards a query actually
//! visited — the engine feeds this back into the planner's gather term.
//!
//! `tests/sharded_differential.rs` runs the three families after every op
//! of randomized interleavings against a monolithic oracle at S ∈ {1, 3, 8}
//! under both hash and spatial partitioners.

use std::sync::{Arc, OnceLock};

use super::{DynamicSet, QuantMergeStats, SiteId};
use crate::model::DiscreteSet;
use crate::quantification::sweep::{sweep, KWayMerge};
use uncertain_geom::{Aabb, Point};

/// Relative pruning slack for the expected-NN shard skip, mirroring the
/// in-bucket branch-and-bound's `PRUNE_MARGIN` (`crate::expected`): the
/// computed `Σ_j w_j·d(q, p_ij)` can round a few ulps below its true value,
/// whose magnitude scales with the distances — so the skip test needs
/// headroom relative to both the incumbent and the shard bound.
const PRUNE_MARGIN: f64 = 1e-9;

/// The shard owning `id` under hash partitioning into `shards` shards.
/// Fibonacci multiplicative hashing: cheap, deterministic, and spreads the
/// strictly-increasing id stream evenly instead of striping it.
#[inline]
pub fn shard_of(id: SiteId, shards: usize) -> usize {
    debug_assert!(shards > 0);
    (((id as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) % shards as u64) as usize
}

/// Query-invariant gather state, built once per shard-epoch vector and
/// shared by every query against that snapshot (the sharded analogue of the
/// monolithic set's cached merged maps).
struct GatherMaps {
    /// Union of all shards' live ids, ascending — the dense order of the
    /// merged sweep output, identical to the monolithic set's.
    ids: Vec<SiteId>,
    /// Per shard: per-slot local→*global*-dense maps.
    dense: Vec<Vec<Option<Vec<u32>>>>,
    /// Σ locations over the union's live sites.
    live_locations: usize,
}

/// A read-only scatter-gather view over one snapshot of every shard.
///
/// Holds `Arc` snapshots, so an in-flight reader is never disturbed by
/// appliers publishing new shard epochs. Construction is O(S); the gather
/// maps and per-shard support boxes are built lazily and cached.
pub struct ShardedReader {
    shards: Vec<Arc<DynamicSet>>,
    maps: OnceLock<GatherMaps>,
    /// Per-shard support boxes (see [`DynamicSet::support_aabb`]).
    aabbs: OnceLock<Vec<Aabb>>,
}

impl ShardedReader {
    /// A reader over one consistent snapshot (one `Arc` per shard).
    pub fn new(shards: Vec<Arc<DynamicSet>>) -> Self {
        assert!(!shards.is_empty(), "at least one shard");
        ShardedReader {
            shards,
            maps: OnceLock::new(),
            aabbs: OnceLock::new(),
        }
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The per-shard snapshots, in shard order.
    pub fn shards(&self) -> &[Arc<DynamicSet>] {
        &self.shards
    }

    /// Live sites across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.len()).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.is_empty())
    }

    /// Tombstoned entries still occupying bucket slots, across all shards.
    pub fn tombstones(&self) -> usize {
        self.shards.iter().map(|s| s.tombstones()).sum()
    }

    /// Union of live ids, ascending — per-shard lists are each sorted and
    /// pairwise disjoint, so a merge of sorted runs suffices.
    pub fn live_ids(&self) -> Vec<SiteId> {
        if self.shards.len() == 1 {
            return self.shards[0].live_ids();
        }
        let mut ids: Vec<SiteId> = self.shards.iter().flat_map(|s| s.live_ids()).collect();
        ids.sort_unstable();
        ids
    }

    /// Per-shard support boxes, built once per snapshot.
    pub fn support_aabbs(&self) -> &[Aabb] {
        self.aabbs
            .get_or_init(|| self.shards.iter().map(|s| s.support_aabb()).collect())
    }

    /// Per-shard lower bounds `dist(q, box_s)` (`∞` for shards with no live
    /// sites) plus the scatter visit order: non-empty shards ascending by
    /// `(bound, shard index)`.
    fn scatter_order(&self, q: Point) -> (Vec<f64>, Vec<usize>) {
        let boxes = self.support_aabbs();
        let mut dist = vec![f64::INFINITY; self.shards.len()];
        let mut order: Vec<usize> = Vec::with_capacity(self.shards.len());
        for (s, shard) in self.shards.iter().enumerate() {
            if shard.is_empty() {
                continue;
            }
            dist[s] = boxes[s].dist_to_point(q);
            order.push(s);
        }
        order.sort_unstable_by(|&a, &b| dist[a].total_cmp(&dist[b]).then(a.cmp(&b)));
        (dist, order)
    }

    /// Materializes the union as a static set in ascending id order —
    /// identical to the monolithic [`DynamicSet::live_set`], so fresh-path
    /// evaluation (brute `NN≠0`, fresh/snapped quantification) over it is
    /// bit-identical too. Gathers from whichever shard holds each site (no
    /// assumption about the partitioning scheme).
    pub fn live_set(&self) -> DiscreteSet {
        let mut sites: Vec<(SiteId, Arc<crate::model::DiscreteUncertainPoint>)> =
            Vec::with_capacity(self.len());
        for shard in &self.shards {
            sites.extend(
                shard
                    .entries
                    .iter()
                    .filter(|e| e.alive)
                    .map(|e| (e.id, e.site.clone())),
            );
        }
        sites.sort_unstable_by_key(|&(id, _)| id);
        DiscreteSet::new(sites.into_iter().map(|(_, s)| (*s).clone()).collect())
    }

    /// Exact global shape summary `(total locations N, max per-site k,
    /// weight spread ρ)` — the same scan [`DynamicSet::live_shape`] does,
    /// folded across shards (spread needs the global weight extremes, so
    /// per-shard spreads alone would not recombine exactly).
    pub fn live_shape(&self) -> (usize, usize, f64) {
        let mut total = 0usize;
        let mut max_k = 0usize;
        let mut w_min = f64::INFINITY;
        let mut w_max = 0.0f64;
        for shard in &self.shards {
            for e in shard.entries.iter().filter(|e| e.alive) {
                total += e.site.k();
                max_k = max_k.max(e.site.k());
                for &w in e.site.weights() {
                    w_min = w_min.min(w);
                    w_max = w_max.max(w);
                }
            }
        }
        let spread = if w_min.is_finite() && w_min > 0.0 {
            w_max / w_min
        } else {
            1.0
        };
        (total, max_k, spread)
    }

    /// Occupied buckets across all shards (the merged path's fan-in).
    pub fn bucket_count(&self) -> usize {
        self.shards.iter().map(|s| s.stats().buckets).sum::<usize>()
    }

    /// Warm/cold split of quant summaries across shards, in locations.
    pub fn quant_summary_state(&self) -> (usize, usize) {
        let mut warm = 0;
        let mut cold = 0;
        for s in &self.shards {
            let (w, c) = s.quant_summary_state();
            warm += w;
            cold += c;
        }
        (warm, cold)
    }

    /// `NN≠0(q)` over the union, ascending public ids — bit-identical to a
    /// monolithic [`DynamicSet::nonzero`] over the same live sites.
    pub fn nonzero(&self, q: Point) -> Vec<SiteId> {
        self.nonzero_touched(q).0
    }

    /// [`nonzero`](Self::nonzero) plus the number of shards the query
    /// actually visited (stage 1 ∪ stage 2) after box pruning.
    pub fn nonzero_touched(&self, q: Point) -> (Vec<SiteId>, usize) {
        let (dist, order) = self.scatter_order(q);
        let mut visited = vec![false; self.shards.len()];
        let Some((d1, id1, d2)) = self.pruned_two_min(q, &dist, &order, &mut visited) else {
            return (vec![], 0);
        };
        // Gather: every visited shard range-reports against the same global
        // floats. Skip proof: a site is reported iff `δ_i(q) < bound(i)`
        // with `bound(i) ≤ d2` when d2 is finite — so `radius = d2` there,
        // and `dist[s] > radius` gives `δ_i ≥ dist[s] > radius ≥ bound(i)`
        // for every live `i ∈ s`: nothing in `s` reports. With `d2 = ∞`
        // (single live site) `radius = d1 ≥ δ` of that site, so its shard's
        // bound is never exceeded and it is never skipped. Strictness
        // matters: a shard at exactly `dist[s] == radius` may still hold a
        // reportable site (`δ == dist[s] < bound` is possible only when
        // `bound > radius`, i.e. the ∞ case — but skipping only the strict
        // exterior is what the proof licenses, so that is what we do).
        let radius = if d2.is_finite() { d2 } else { d1 };
        let mut out: Vec<SiteId> = vec![];
        for &s in &order {
            if dist[s] > radius {
                break; // ascending order: every later shard is outside too
            }
            visited[s] = true;
            self.shards[s].nonzero_report_into(q, id1, d1, d2, &mut out);
        }
        out.sort_unstable();
        (out, visited.iter().filter(|&&v| v).count())
    }

    /// Stage 1 with pruning: fold per-shard two-min triples in ascending
    /// box-distance order into the global `(d1, best id, d2)`, skipping the
    /// tail of shards whose bound proves they cannot contribute. Marks
    /// every visited shard in `visited`.
    ///
    /// Skip proof: every live site `i ∈ s` has `Δ_i(q) ≥ dist[s]` (all its
    /// locations lie in `box_s`). The fold updates `best` only on
    /// `d < best.0` and `second` only on `d < second`, and
    /// `best.0 ≤ second` throughout — so once `dist[s] ≥ second`, no site
    /// of `s` can change either float or the witness, and (visiting in
    /// ascending bound order, with `second` only shrinking) neither can any
    /// later shard: `break`, not `continue`. The resulting `(d1, d2)` are
    /// the min/second-min of a multiset and hence identical to any other
    /// fold order; the witness can differ from the monolithic bucket-order
    /// fold only on an exact `Δ` tie at `d1`, where `d2 == d1` makes the
    /// stage-2 bound witness-independent (see
    /// [`DynamicSet::nonzero_report_into`]).
    fn pruned_two_min(
        &self,
        q: Point,
        dist: &[f64],
        order: &[usize],
        visited: &mut [bool],
    ) -> Option<(f64, SiteId, f64)> {
        let mut best: (f64, SiteId) = (f64::INFINITY, SiteId::MAX);
        let mut second = f64::INFINITY;
        let mut any = false;
        for &s in order {
            if dist[s] >= second {
                break;
            }
            visited[s] = true;
            let Some((d, id, sec)) = self.shards[s].nonzero_two_min(q) else {
                continue;
            };
            any = true;
            if d < best.0 {
                second = best.0;
                best = (d, id);
            } else if d < second {
                second = d;
            }
            if sec < second {
                second = sec;
            }
        }
        any.then_some((best.0, best.1, second))
    }

    /// Merged quantification over the union: one k-way merge across the
    /// surviving shards' bucket streams, each emitting globally-dense
    /// indices, into the shared sweep core. Bit-identical to the monolithic
    /// merged (and fresh) paths.
    pub fn quantification_merged(&self, q: Point) -> Vec<(SiteId, f64)> {
        self.quantification_merged_with_stats(q).0
    }

    /// [`quantification_merged`](Self::quantification_merged) plus the
    /// reuse metrics the serving engine aggregates (buckets and warm
    /// buckets count across the shards that joined the merge;
    /// `shards_touched` counts every shard the query read, including the
    /// threshold probe).
    ///
    /// Shard-exclusion proof: let `d2` be the global second-smallest
    /// `Δ_i(q)` over the live union (from the pruned stage-1 fold). Site
    /// weights are normalized at construction
    /// ([`crate::model::DiscreteUncertainPoint::new`]), so once all of a
    /// site's locations have entered the sweep its accumulated weight is 1
    /// up to a few ulps of summation error (`≪ ZERO_THRESH = 1e-12` for any
    /// realistic per-site location count) and its survival factor clamps to
    /// exactly 0 — the sweep's own early-exit contract. The sites attaining
    /// `d1` and `d2` have fully entered by the end of the equal-distance
    /// batch at `d2`, so the driver's `zeros >= 2` exit fires no later than
    /// that batch. Every live site of a shard with `dist[s] > d2` has *all*
    /// entries at distance `> d2`, i.e. strictly after the exit batch in
    /// the `(d, dense)` merge order — the sweep never processes them. (At
    /// most one such entry is drawn as the driver's batch-boundary
    /// lookahead and discarded; only [`KWayMerge::consumed`] — a statistic,
    /// not an answer — can differ.) Dropping those shards' streams
    /// therefore changes no output bit. When every shard's bound is equal
    /// (hash partitioning: all ~0) no exclusion is possible — `d2 ≥ d1 ≥`
    /// the best shard's bound `=` every bound — so the threshold probe is
    /// skipped entirely and the driver degrades to the plain all-shards
    /// merge.
    pub fn quantification_merged_with_stats(
        &self,
        q: Point,
    ) -> (Vec<(SiteId, f64)>, QuantMergeStats) {
        let mut stats = QuantMergeStats::default();
        let maps = self.maps();
        let n = maps.ids.len();
        if n == 0 {
            return (vec![], stats);
        }
        stats.live_locations = maps.live_locations;
        let (dist, order) = self.scatter_order(q);
        let mut visited = vec![false; self.shards.len()];
        let uniform_bounds = match (order.first(), order.last()) {
            (Some(&first), Some(&last)) => dist[first] == dist[last],
            _ => true,
        };
        let cutoff = if uniform_bounds {
            f64::INFINITY
        } else {
            match self.pruned_two_min(q, &dist, &order, &mut visited) {
                Some((_, _, d2)) => d2, // ∞ (single live site) excludes nothing
                None => f64::INFINITY,
            }
        };
        let mut streams = vec![];
        for &s in &order {
            if dist[s] > cutoff {
                break; // ascending order: every later shard is beyond too
            }
            visited[s] = true;
            let shard = &self.shards[s];
            for (slot, dense_of_local) in shard.buckets.iter().zip(&maps.dense[s]) {
                let (Some(slot), Some(dense_of_local)) = (slot, dense_of_local) else {
                    continue; // unoccupied slot, or a fully-dead bucket
                };
                stats.buckets += 1;
                if slot.bucket.quant_warm() {
                    stats.warm_buckets += 1;
                }
                streams.push(
                    slot.bucket
                        .quant_index()
                        .stream(q, dense_of_local, &slot.alive),
                );
            }
        }
        // Stream *indices* differ from the monolithic merge (and between
        // partitioners), but the heap's `(d, dense, stream)` tie-break
        // never reaches the stream field on distinct sites (ordered by
        // `dense`) and a single site's entries all share one stream — so
        // the drawn entry sequence is independent of stream numbering.
        let mut merge = KWayMerge::new(streams);
        let pi = sweep(&mut merge, n);
        stats.entries_merged = merge.consumed();
        stats.shards_touched = visited.iter().filter(|&&v| v).count();
        (maps.ids.iter().copied().zip(pi).collect(), stats)
    }

    /// The live site minimizing expected distance to `q`, with that
    /// distance: the fold of per-shard branch-and-bound minima under the
    /// monolithic cross-bucket tie rule (exact ties to the smaller id).
    /// The value is bit-identical to the monolithic query; the witness
    /// among exact ties is unspecified there too.
    pub fn expected_nn(&self, q: Point) -> Option<(SiteId, f64)> {
        self.expected_nn_touched(q).0
    }

    /// [`expected_nn`](Self::expected_nn) plus the number of shards the
    /// query visited after box pruning.
    ///
    /// Skip proof: for every live site `i ∈ s`, `E[d(q, P_i)] =
    /// Σ_j w_j·d(q, p_ij)` with every `d(q, p_ij) ≥ dist[s]` and normalized
    /// weights, so its true value is `≥ dist[s]`; the computed f64 value
    /// can round below that by an error scaling with `ulp` of the distance
    /// magnitude, which `PRUNE_MARGIN·(1 + be + dist[s])` dominates by ~7
    /// orders (the same slack the in-bucket branch-and-bound uses, see
    /// [`crate::expected::ExpectedNnIndex::query_where`]). When the skip
    /// test holds, every site of `s` therefore computes `e > be` strictly —
    /// it can neither win (`e < be`) nor tie (`e == be`) under the fold
    /// rule, so the fold's value *and witness* are unchanged. `be` only
    /// shrinks and bounds only grow along the visit order, so the condition
    /// is monotone: `break`, not `continue`.
    pub fn expected_nn_touched(&self, q: Point) -> (Option<(SiteId, f64)>, usize) {
        let (dist, order) = self.scatter_order(q);
        let mut touched = 0usize;
        let mut best: Option<(SiteId, f64)> = None;
        for &s in &order {
            if let Some((_, be)) = best {
                if dist[s] > be + PRUNE_MARGIN * (1.0 + be + dist[s]) {
                    break;
                }
            }
            touched += 1;
            if let Some((id, e)) = self.shards[s].expected_nn(q) {
                let better = match best {
                    None => true,
                    Some((bid, be)) => e < be || (e == be && id < bid),
                };
                if better {
                    best = Some((id, e));
                }
            }
        }
        (best, touched)
    }

    fn maps(&self) -> &GatherMaps {
        self.maps.get_or_init(|| {
            let ids = self.live_ids();
            let mut dense = Vec::with_capacity(self.shards.len());
            let mut live_locations = 0;
            for shard in &self.shards {
                let (maps, locs) = shard.dense_maps_for(&ids);
                dense.push(maps);
                live_locations += locs;
            }
            GatherMaps {
                ids,
                dense,
                live_locations,
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dynamic::{DynamicConfig, Update};
    use crate::model::DiscreteUncertainPoint;
    use crate::workload;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn partitioned(n: usize, shards: usize, seed: u64) -> (DynamicSet, Vec<DynamicSet>) {
        let base = workload::random_discrete_set(n, 3, 8.0, seed);
        let mono = DynamicSet::from_set(&base, DynamicConfig::default());
        let mut parts = vec![DynamicSet::new(DynamicConfig::default()); shards];
        for (id, p) in base.points.iter().enumerate() {
            let s = shard_of(id, shards);
            parts[s].apply_with_insert_ids(&[Update::Insert(p.clone())], &[id]);
        }
        (mono, parts)
    }

    fn reader(parts: &[DynamicSet]) -> ShardedReader {
        ShardedReader::new(parts.iter().map(|p| Arc::new(p.clone())).collect())
    }

    fn assert_families_match(mono: &DynamicSet, r: &ShardedReader, queries: &[Point]) {
        assert_eq!(r.len(), mono.len());
        assert_eq!(r.live_ids(), mono.live_ids());
        for &q in queries {
            assert_eq!(r.nonzero(q), mono.nonzero(q), "NN≠0 at {q}");
            let merged = r.quantification_merged(q);
            let want = mono.quantification(q);
            assert_eq!(merged.len(), want.len());
            for ((id, got), (wid, w)) in merged.iter().zip(&want) {
                assert_eq!(id, wid);
                assert_eq!(got.to_bits(), w.to_bits(), "π at {q}");
            }
            match (r.expected_nn(q), mono.expected_nn(q)) {
                (None, None) => {}
                (Some((_, ge)), Some((_, we))) => {
                    assert_eq!(ge.to_bits(), we.to_bits(), "E[d] at {q}")
                }
                (got, want) => panic!("expected-NN mismatch: {got:?} vs {want:?}"),
            }
        }
    }

    #[test]
    fn shard_of_is_total_and_stable() {
        for id in 0..1000 {
            assert_eq!(shard_of(id, 1), 0);
            for s in [2, 3, 8] {
                assert!(shard_of(id, s) < s);
                assert_eq!(shard_of(id, s), shard_of(id, s));
            }
        }
        // The hash spreads a dense id range across every shard.
        let mut seen = [false; 8];
        for id in 0..64 {
            seen[shard_of(id, 8)] = true;
        }
        assert!(seen.iter().all(|&s| s), "{seen:?}");
    }

    #[test]
    fn static_partition_matches_monolithic_at_several_shard_counts() {
        let queries: Vec<Point> = workload::random_discrete_set(12, 1, 9.0, 42)
            .points
            .iter()
            .map(|p| p.locations()[0])
            .collect();
        for shards in [1, 3, 8] {
            let (mono, parts) = partitioned(60, shards, 7 + shards as u64);
            assert_families_match(&mono, &reader(&parts), &queries);
        }
    }

    #[test]
    fn churned_partition_stays_bit_identical() {
        let mut rng = StdRng::seed_from_u64(0xD15C);
        let shards = 3;
        let (mut mono, mut parts) = partitioned(40, shards, 11);
        let queries: Vec<Point> = (0..6)
            .map(|_| Point::new(rng.gen_range(-9.0..9.0), rng.gen_range(-9.0..9.0)))
            .collect();
        let mut next_id = 40usize;
        for round in 0..12 {
            let mut live = mono.live_ids();
            // Two removes, one move, two inserts per round — mirrors the
            // engine-epoch churn mix.
            let mut ops: Vec<Update> = vec![];
            for k in 0..2usize {
                if !live.is_empty() {
                    let id = live.remove((round * 7 + k * 3) % live.len());
                    ops.push(Update::Remove(id));
                }
            }
            if !live.is_empty() {
                let id = live[(round * 5) % live.len()];
                ops.push(Update::Move {
                    id,
                    to: DiscreteUncertainPoint::certain(Point::new(
                        round as f64 - 6.0,
                        -(round as f64) / 2.0,
                    )),
                });
            }
            for k in 0..2 {
                ops.push(Update::Insert(DiscreteUncertainPoint::uniform(vec![
                    Point::new(rng.gen_range(-8.0..8.0), rng.gen_range(-8.0..8.0)),
                    Point::new(round as f64, k as f64),
                ])));
            }
            // Monolithic gets the ids the sharded side will assign: the
            // monolithic set allocates next_id.. itself, so pre-assigning
            // the identical sequence keeps both id streams equal.
            let outcome = mono.apply(&ops);
            let mut insert_ids: Vec<SiteId> = (next_id..).take(outcome.inserted.len()).collect();
            assert_eq!(outcome.inserted, insert_ids);
            next_id += insert_ids.len();
            // Scatter the same ops to shards, preserving order.
            let mut per_shard: Vec<Vec<Update>> = vec![vec![]; shards];
            let mut per_shard_ids: Vec<Vec<SiteId>> = vec![vec![]; shards];
            for op in ops {
                let (target, insert_id) = match &op {
                    Update::Insert(_) => {
                        let id = insert_ids.remove(0);
                        (shard_of(id, shards), Some(id))
                    }
                    Update::Remove(id) => (shard_of(*id, shards), None),
                    Update::Move { id, .. } => (shard_of(*id, shards), None),
                };
                per_shard[target].push(op);
                if let Some(id) = insert_id {
                    per_shard_ids[target].push(id);
                }
            }
            for (s, part) in parts.iter_mut().enumerate() {
                part.apply_with_insert_ids(&per_shard[s], &per_shard_ids[s]);
            }
            assert_families_match(&mono, &reader(&parts), &queries);
        }
    }

    #[test]
    fn empty_reader_answers_empty() {
        let parts = vec![DynamicSet::new(DynamicConfig::default()); 4];
        let r = reader(&parts);
        assert!(r.is_empty());
        assert_eq!(r.len(), 0);
        let q = Point::new(0.5, -0.5);
        assert!(r.nonzero(q).is_empty());
        assert_eq!(r.nonzero_touched(q).1, 0);
        assert!(r.quantification_merged(q).is_empty());
        assert!(r.expected_nn(q).is_none());
        assert_eq!(r.expected_nn_touched(q).1, 0);
        assert!(r.live_set().is_empty());
    }

    /// Four well-separated clusters, one shard each: a query inside one
    /// cluster must prune the other shards on every family, and still match
    /// the monolithic oracle bit-for-bit.
    #[test]
    fn region_disjoint_partition_prunes_far_shards() {
        let mut rng = StdRng::seed_from_u64(0xA2B);
        let centers = [
            Point::new(-120.0, -120.0),
            Point::new(120.0, -120.0),
            Point::new(-120.0, 120.0),
            Point::new(120.0, 120.0),
        ];
        let shards = centers.len();
        let mut mono = DynamicSet::new(DynamicConfig::default());
        let mut parts = vec![DynamicSet::new(DynamicConfig::default()); shards];
        let mut id = 0usize;
        for (s, c) in centers.iter().enumerate() {
            for _ in 0..20 {
                let p = DiscreteUncertainPoint::uniform(vec![
                    Point::new(
                        c.x + rng.gen_range(-3.0..3.0),
                        c.y + rng.gen_range(-3.0..3.0),
                    ),
                    Point::new(
                        c.x + rng.gen_range(-3.0..3.0),
                        c.y + rng.gen_range(-3.0..3.0),
                    ),
                ]);
                mono.apply_with_insert_ids(&[Update::Insert(p.clone())], &[id]);
                parts[s].apply_with_insert_ids(&[Update::Insert(p)], &[id]);
                id += 1;
            }
        }
        let r = reader(&parts);
        let queries: Vec<Point> = centers
            .iter()
            .map(|c| Point::new(c.x + 0.5, c.y - 0.5))
            .collect();
        assert_families_match(&mono, &r, &queries);
        for &q in &queries {
            let (_, nz_touched) = r.nonzero_touched(q);
            assert!(nz_touched < shards, "NN≠0 touched {nz_touched} at {q}");
            let (_, stats) = r.quantification_merged_with_stats(q);
            assert!(
                stats.shards_touched < shards,
                "quant touched {} at {q}",
                stats.shards_touched
            );
            let (_, e_touched) = r.expected_nn_touched(q);
            assert!(e_touched < shards, "E[d] touched {e_touched} at {q}");
        }
    }

    /// Hash partitioning makes every shard's box cover the cloud, so an
    /// interior query touches all shards — the pruning must degrade to the
    /// plain scatter-gather, not mis-prune.
    #[test]
    fn hash_partition_touches_every_shard_for_interior_queries() {
        let shards = 3;
        let (_, parts) = partitioned(60, shards, 5);
        let r = reader(&parts);
        let q = Point::new(0.0, 0.0);
        assert_eq!(r.nonzero_touched(q).1, shards);
        assert_eq!(
            r.quantification_merged_with_stats(q).1.shards_touched,
            shards
        );
        assert_eq!(r.expected_nn_touched(q).1, shards);
    }

    /// A spatial rebalance migrates an id out of a shard and (possibly)
    /// back later; the re-adoption must revive the stale live-list slot
    /// instead of duplicating it.
    #[test]
    fn readopting_a_migrated_id_revives_the_stale_slot() {
        let mut set = DynamicSet::new(DynamicConfig::default());
        let a = DiscreteUncertainPoint::certain(Point::new(1.0, 2.0));
        let b = DiscreteUncertainPoint::certain(Point::new(-3.0, 0.5));
        set.apply_with_insert_ids(&[Update::Insert(a.clone()), Update::Insert(b)], &[7, 9]);
        // Migrate id 7 away…
        set.apply(&[Update::Remove(7)]);
        assert_eq!(set.live_ids(), vec![9]);
        // …and back. The stale copy of 7 must be revived, not duplicated.
        set.apply_with_insert_ids(&[Update::Insert(a)], &[7]);
        assert_eq!(set.live_ids(), vec![7, 9]);
        assert_eq!(set.len(), 2);
        let hits = set.nonzero(Point::new(1.0, 2.0));
        assert!(hits.contains(&7), "{hits:?}");
    }
}
