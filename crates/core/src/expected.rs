//! Expected-distance nearest neighbors — the baseline definition of
//! [AESZ12] (*Nearest-Neighbor Searching Under Uncertainty I*), which the
//! paper contrasts with quantification probabilities in Section 1.2:
//!
//! > "This NN definition is easier since the expected distance to each
//! > uncertain point can be computed separately ... However, the expected
//! > nearest neighbor is not a good indicator under large uncertainty."
//!
//! [`ExpectedNnIndex`] returns `argmin_i E[d(q, P_i)]` with branch-and-bound
//! acceleration; [`expected_vs_probable_divergence`] constructs the classic
//! mean-vs-median instance where the expected NN and the most-probable NN
//! disagree — the quantitative justification for this paper's harder
//! problem.

use crate::model::{
    distance, ContinuousUncertainPoint, DiscreteSet, DiscreteUncertainPoint, DiskSet,
};
use uncertain_geom::Point;
use uncertain_spatial::KdTree;

/// Expected distance from `q` to a discrete uncertain point: the weighted
/// average `Σ_j w_j ‖q − p_j‖` (exact, `O(k)`).
pub fn expected_dist_discrete(p: &DiscreteUncertainPoint, q: Point) -> f64 {
    p.locations()
        .iter()
        .zip(p.weights())
        .map(|(&loc, &w)| w * q.dist(loc))
        .sum()
}

/// Expected distance from `q` to a continuous uncertain point via the tail
/// formula `E[D] = δ + ∫_δ^Δ (1 − G(r)) dr` with `panels` Simpson panels.
pub fn expected_dist_continuous(p: &ContinuousUncertainPoint, q: Point, panels: usize) -> f64 {
    let lo = p.min_dist(q);
    let hi = p.max_dist(q);
    if hi <= lo {
        return lo;
    }
    lo + distance::simpson(lo, hi, panels, |r| 1.0 - distance::cdf(p, q, r))
}

/// Kind of point set an [`ExpectedNnIndex`] was built over.
enum Payload {
    Discrete(DiscreteSet),
    Continuous(DiskSet),
}

/// Branch-and-bound index for expected-distance nearest-neighbor queries.
///
/// Uses the triangle-inequality sandwich
/// `‖q − c_i‖ − m_i ≤ E[d(q, P_i)] ≤ ‖q − c_i‖ + m_i` with
/// `m_i = E[d(P_i, c_i)]` precomputed per point (`c_i` = mean location /
/// disk center), pruning with a kd-tree over the `c_i`.
pub struct ExpectedNnIndex {
    centers: KdTree,
    /// `m_i` per point.
    slack: Vec<f64>,
    payload: Payload,
    /// Quadrature resolution for continuous points.
    panels: usize,
}

impl ExpectedNnIndex {
    /// Builds over a discrete set (exact expected distances).
    pub fn build_discrete(set: &DiscreteSet) -> Self {
        let centers: Vec<Point> = set
            .points
            .iter()
            .map(|p| {
                let mut c = Point::ORIGIN;
                for (&loc, &w) in p.locations().iter().zip(p.weights()) {
                    c.x += w * loc.x;
                    c.y += w * loc.y;
                }
                c
            })
            .collect();
        let slack: Vec<f64> = set
            .points
            .iter()
            .zip(&centers)
            .map(|(p, &c)| expected_dist_discrete(p, c))
            .collect();
        ExpectedNnIndex {
            centers: KdTree::from_points(&centers),
            slack,
            payload: Payload::Discrete(set.clone()),
            panels: 0,
        }
    }

    /// Builds over a continuous set (`panels`-panel quadrature per exact
    /// evaluation; 256 is plenty for query purposes).
    pub fn build_continuous(set: &DiskSet, panels: usize) -> Self {
        let centers: Vec<Point> = set.points.iter().map(|p| p.region.center).collect();
        let slack: Vec<f64> = set
            .points
            .iter()
            .map(|p| expected_dist_continuous(p, p.region.center, panels))
            .collect();
        ExpectedNnIndex {
            centers: KdTree::from_points(&centers),
            slack,
            payload: Payload::Continuous(set.clone()),
            panels,
        }
    }

    fn exact(&self, i: usize, q: Point) -> f64 {
        match &self.payload {
            Payload::Discrete(s) => expected_dist_discrete(&s.points[i], q),
            Payload::Continuous(s) => expected_dist_continuous(&s.points[i], q, self.panels),
        }
    }

    /// The point minimizing the expected distance, with that distance.
    /// Branch-and-bound: only candidates whose lower bound beats the best
    /// exact value so far are evaluated exactly.
    pub fn query(&self, q: Point) -> Option<(usize, f64)> {
        self.query_where(q, |_| true)
    }

    /// Like [`query`](Self::query), restricted to points for which
    /// `live(i)` holds — the primitive the dynamic (Bentley–Saxe) layer
    /// uses to overlay tombstones on a per-bucket index. `None` when no
    /// point is live.
    ///
    /// Pruning uses a small safety margin: a candidate is skipped only when
    /// its f64 lower bound exceeds the incumbent by more than
    /// `PRUNE_MARGIN·(1 + best + d)` — relative to the incumbent *and* the
    /// candidate's center distance `d`, because the rounding error of the
    /// computed bound scales with `ulp(d)`, not with the (possibly tiny)
    /// result. Rounding can therefore never prune the true minimizer, and
    /// the returned value is exactly (bit-for-bit) the minimum of
    /// `expected_dist_*` over the live points, the same value a brute-force
    /// scan computes.
    pub fn query_where(
        &self,
        q: Point,
        mut live: impl FnMut(usize) -> bool,
    ) -> Option<(usize, f64)> {
        /// Relative pruning slack covering f64 rounding in the lower bound
        /// (a few hundred ulps of headroom at every magnitude).
        const PRUNE_MARGIN: f64 = 1e-9;
        if self.slack.is_empty() {
            return None;
        }
        let mut best: Option<(usize, f64)> = None;
        // Candidates in order of increasing center distance; stop once the
        // lower bound d(q, c_i) − m_i exceeds the best exact value (sound
        // because slack is bounded: all later candidates have larger center
        // distance but arbitrary m_i — so use the global max slack).
        let max_slack = self.slack.iter().copied().fold(0.0f64, f64::max);
        for (_, id, d) in self.centers.nearest_iter(q) {
            if let Some((_, be)) = best {
                if d - max_slack > be + PRUNE_MARGIN * (1.0 + be + d) {
                    break;
                }
            }
            let i = id as usize;
            if !live(i) {
                continue;
            }
            if let Some((_, be)) = best {
                if d - self.slack[i] > be + PRUNE_MARGIN * (1.0 + be + d) {
                    continue; // per-item lower bound prunes the evaluation
                }
            }
            let e = self.exact(i, q);
            if best.is_none_or(|(_, be)| e < be) {
                best = Some((i, e));
            }
        }
        best
    }

    /// All expected distances (the brute-force reference).
    pub fn all_expected(&self, q: Point) -> Vec<f64> {
        (0..self.slack.len()).map(|i| self.exact(i, q)).collect()
    }
}

/// Builds the mean-vs-median divergence instance: returns `(set, q)` where
/// the *expected-distance* NN is `P_0` but the *most-probable* NN is `P_1`
/// (`π_1 > π_0`), demonstrating the paper's motivation for quantification
/// probabilities over expected distances.
pub fn expected_vs_probable_divergence() -> (DiscreteSet, Point) {
    let q = Point::new(0.0, 0.0);
    let set = DiscreteSet::new(vec![
        // P_0: certain at distance 5 → E = 5, beats P_1's mean.
        DiscreteUncertainPoint::certain(Point::new(5.0, 0.0)),
        // P_1: usually at distance 1, occasionally at distance 20:
        //   E = 0.51·1 + 0.49·20 = 10.31 > 5, but P(d < 5) = 0.51.
        DiscreteUncertainPoint::new(
            vec![Point::new(1.0, 0.0), Point::new(20.0, 0.0)],
            vec![0.51, 0.49],
        ),
    ]);
    (set, q)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quantification::exact::quantification_discrete;
    use crate::workload;

    #[test]
    fn discrete_expected_distance_is_weighted_average() {
        let p = DiscreteUncertainPoint::new(
            vec![Point::new(3.0, 0.0), Point::new(0.0, 4.0)],
            vec![0.25, 0.75],
        );
        let e = expected_dist_discrete(&p, Point::new(0.0, 0.0));
        assert!((e - (0.25 * 3.0 + 0.75 * 4.0)).abs() < 1e-12);
    }

    #[test]
    fn continuous_expected_distance_sanity() {
        // Uniform disk of radius R around c, q = c: E[D] = 2R/3.
        let p = ContinuousUncertainPoint::uniform(uncertain_geom::Circle::new(
            Point::new(0.0, 0.0),
            3.0,
        ));
        let e = expected_dist_continuous(&p, Point::new(0.0, 0.0), 2048);
        assert!((e - 2.0).abs() < 1e-3, "E = {e}");
        // Far away: E ≈ distance to center.
        let far = Point::new(1000.0, 0.0);
        let e = expected_dist_continuous(&p, far, 2048);
        assert!((e - 1000.0).abs() < 0.01, "E = {e}");
    }

    #[test]
    fn index_matches_brute_force_discrete() {
        let set = workload::random_discrete_set(60, 4, 6.0, 5);
        let idx = ExpectedNnIndex::build_discrete(&set);
        for q in workload::random_queries(80, 60.0, 6) {
            let (i, e) = idx.query(q).unwrap();
            let brute: Vec<f64> = set
                .points
                .iter()
                .map(|p| expected_dist_discrete(p, q))
                .collect();
            let best = brute.iter().cloned().fold(f64::INFINITY, f64::min);
            assert!((e - best).abs() < 1e-9, "at {q}");
            assert!((brute[i] - best).abs() < 1e-9);
        }
    }

    #[test]
    fn index_matches_brute_force_continuous() {
        let set = workload::random_disk_set(25, 0.5, 2.5, 11);
        let idx = ExpectedNnIndex::build_continuous(&set, 256);
        for q in workload::random_queries(30, 60.0, 12) {
            let (i, e) = idx.query(q).unwrap();
            let brute = idx.all_expected(q);
            let best = brute.iter().cloned().fold(f64::INFINITY, f64::min);
            assert!((e - best).abs() < 1e-9, "at {q}");
            assert!((brute[i] - best).abs() < 1e-9);
        }
    }

    #[test]
    fn filtered_query_matches_filtered_brute_bitwise() {
        let set = workload::random_discrete_set(50, 3, 5.0, 21);
        let idx = ExpectedNnIndex::build_discrete(&set);
        for (round, q) in workload::random_queries(40, 60.0, 22)
            .into_iter()
            .enumerate()
        {
            let mask: Vec<bool> = (0..set.len()).map(|i| (i + round) % 3 != 0).collect();
            let (i, e) = idx.query_where(q, |i| mask[i]).unwrap();
            assert!(mask[i], "reported a filtered-out point");
            let brute = set
                .points
                .iter()
                .enumerate()
                .filter(|&(j, _)| mask[j])
                .map(|(_, p)| expected_dist_discrete(p, q))
                .fold(f64::INFINITY, f64::min);
            // The safe pruning margin makes the b&b minimum bit-identical
            // to the brute scan minimum.
            assert_eq!(e.to_bits(), brute.to_bits(), "at {q}");
        }
        assert!(idx.query_where(Point::new(0.0, 0.0), |_| false).is_none());
    }

    #[test]
    fn divergence_instance_diverges() {
        let (set, q) = expected_vs_probable_divergence();
        // Expected-distance NN: P_0.
        let idx = ExpectedNnIndex::build_discrete(&set);
        let (expected_winner, _) = idx.query(q).unwrap();
        assert_eq!(expected_winner, 0);
        // Most-probable NN: P_1.
        let pi = quantification_discrete(&set, q);
        assert!(pi[1] > pi[0], "π = {pi:?}");
        assert!((pi[1] - 0.51).abs() < 1e-12);
    }

    #[test]
    fn empty_index() {
        let idx = ExpectedNnIndex::build_discrete(&DiscreteSet::default());
        assert!(idx.query(Point::new(0.0, 0.0)).is_none());
    }
}
