//! `uncertain-nn`: nearest-neighbor searching under (locational) uncertainty.
//!
//! A from-scratch Rust reproduction of
//! *Nearest-Neighbor Searching Under Uncertainty II* (Agarwal, Aronov,
//! Har-Peled, Phillips, Yi, Zhang — PODS 2013 / arXiv:1606.00112).
//!
//! Uncertain points are probability distributions over locations in the
//! plane — continuous pdfs on disk supports ([`model::DiskSet`]) or finite
//! weighted location sets ([`model::DiscreteSet`]). For a certain query
//! point `q` the library answers:
//!
//! * **Which points can be the nearest neighbor at all?** —
//!   `NN≠0(q) = {P_i : π_i(q) > 0}` via direct evaluation
//!   ([`nonzero::brute`]), near-linear-size query structures
//!   ([`nonzero::DiskNonzeroIndex`], [`nonzero::DiscreteNonzeroIndex`];
//!   Theorems 3.1–3.2), or the *nonzero Voronoi diagram* `V≠0(P)`
//!   ([`vnz`]; Theorems 2.5–2.14) whose `Θ(n³)` worst-case complexity is the
//!   paper's headline result.
//! * **With what probability?** — the quantification probabilities `π_i(q)`
//!   exactly ([`quantification::exact`], [`quantification::vpr`];
//!   Theorem 4.2) or within additive error `ε` by Monte Carlo
//!   ([`quantification::MonteCarloPnn`]; Theorems 4.3/4.5) or deterministic
//!   spiral search ([`quantification::SpiralSearch`]; Theorem 4.7).
//!
//! # Quickstart
//!
//! ```
//! use uncertain_nn::model::{DiskSet, DiscreteSet, DiscreteUncertainPoint};
//! use uncertain_nn::nonzero::DiskNonzeroIndex;
//! use uncertain_nn::quantification::exact::quantification_discrete;
//! use uncertain_geom::{Circle, Point};
//!
//! // Three imprecise sensors with disk-shaped uncertainty regions.
//! let set = DiskSet::uniform(vec![
//!     Circle::new(Point::new(0.0, 0.0), 1.0),
//!     Circle::new(Point::new(4.0, 0.0), 2.0),
//!     Circle::new(Point::new(50.0, 0.0), 1.0),
//! ]);
//! let index = DiskNonzeroIndex::build(&set);
//! let who = index.query(Point::new(2.0, 0.0));
//! assert_eq!(who, vec![0, 1]); // the far sensor can never be nearest
//!
//! // A discrete uncertain point with two possible locations.
//! let set = DiscreteSet::new(vec![
//!     DiscreteUncertainPoint::new(
//!         vec![Point::new(0.0, 0.0), Point::new(10.0, 0.0)],
//!         vec![0.5, 0.5],
//!     ),
//!     DiscreteUncertainPoint::certain(Point::new(3.0, 0.0)),
//! ]);
//! let pi = quantification_discrete(&set, Point::new(1.0, 0.0));
//! assert!((pi[0] - 0.5).abs() < 1e-12); // wins iff it materializes at 0
//! assert!((pi[1] - 0.5).abs() < 1e-12);
//! ```

pub mod dynamic;
pub mod expected;
pub mod model;
pub mod nonzero;
pub mod quantification;
pub mod queries;
pub mod svg;
pub mod vnz;
pub mod workload;

pub use model::{
    ContinuousUncertainPoint, DiscreteSet, DiscreteUncertainPoint, DiskDistribution, DiskSet,
};
