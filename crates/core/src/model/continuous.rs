//! Continuous uncertain points with disk supports.

use rand::Rng;
use std::f64::consts::{PI, TAU};
use uncertain_geom::{Circle, Point, Vector};

/// The pdf of an uncertain point on its disk support.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum DiskDistribution {
    /// Uniform density over the disk.
    Uniform,
    /// Gaussian centered at the disk center with standard deviation `sigma`,
    /// truncated to the disk (as in the paper's treatment of Gaussians,
    /// following [BSI08, CCMC08]).
    TruncatedGaussian { sigma: f64 },
    /// Uniform density over the annulus between `inner_frac · r` and `r`
    /// (models "known to be roughly at distance d" sensors).
    Ring { inner_frac: f64 },
}

/// A continuous uncertain point: a distribution supported on a disk.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ContinuousUncertainPoint {
    /// The uncertainty region `D_i` (support of the pdf).
    pub region: Circle,
    pub dist: DiskDistribution,
}

impl ContinuousUncertainPoint {
    pub fn uniform(region: Circle) -> Self {
        ContinuousUncertainPoint {
            region,
            dist: DiskDistribution::Uniform,
        }
    }

    pub fn gaussian(region: Circle, sigma: f64) -> Self {
        assert!(sigma > 0.0);
        ContinuousUncertainPoint {
            region,
            dist: DiskDistribution::TruncatedGaussian { sigma },
        }
    }

    pub fn ring(region: Circle, inner_frac: f64) -> Self {
        assert!((0.0..1.0).contains(&inner_frac));
        ContinuousUncertainPoint {
            region,
            dist: DiskDistribution::Ring { inner_frac },
        }
    }

    /// `δ_i(q)`: minimum possible distance from `q` to this point.
    #[inline]
    pub fn min_dist(&self, q: Point) -> f64 {
        self.region.min_dist(q)
    }

    /// `Δ_i(q)`: maximum possible distance from `q` to this point.
    #[inline]
    pub fn max_dist(&self, q: Point) -> f64 {
        self.region.max_dist(q)
    }

    /// Draws a location according to the pdf.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Point {
        let c = self.region.center;
        let rr = self.region.radius;
        let theta = rng.gen::<f64>() * TAU;
        let radius = match self.dist {
            DiskDistribution::Uniform => rr * rng.gen::<f64>().sqrt(),
            DiskDistribution::TruncatedGaussian { sigma } => {
                // Inverse-cdf sampling of the truncated radial density
                // ∝ s·exp(−s²/2σ²) on [0, R].
                let z = 1.0 - (-rr * rr / (2.0 * sigma * sigma)).exp();
                let u = rng.gen::<f64>();
                (-2.0 * sigma * sigma * (1.0 - u * z).ln()).sqrt().min(rr)
            }
            DiskDistribution::Ring { inner_frac } => {
                let r0 = inner_frac * rr;
                // Uniform over the annulus: radial density ∝ s.
                let u = rng.gen::<f64>();
                (r0 * r0 + u * (rr * rr - r0 * r0)).sqrt()
            }
        };
        c + Vector::from_angle(theta) * radius
    }
}

/// A set of continuous uncertain points — the input `P` of the paper's
/// continuous case.
#[derive(Clone, Debug, Default)]
pub struct DiskSet {
    pub points: Vec<ContinuousUncertainPoint>,
}

impl DiskSet {
    pub fn new(points: Vec<ContinuousUncertainPoint>) -> Self {
        DiskSet { points }
    }

    /// All points uniform on the given disks.
    pub fn uniform(disks: Vec<Circle>) -> Self {
        DiskSet {
            points: disks
                .into_iter()
                .map(ContinuousUncertainPoint::uniform)
                .collect(),
        }
    }

    pub fn len(&self) -> usize {
        self.points.len()
    }

    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The uncertainty regions (what `V≠0` depends on — it is independent of
    /// the actual pdfs, see Section 2.1).
    pub fn regions(&self) -> Vec<Circle> {
        self.points.iter().map(|p| p.region).collect()
    }

    /// One random instantiation of the whole set.
    pub fn sample_instance<R: Rng + ?Sized>(&self, rng: &mut R) -> Vec<Point> {
        self.points.iter().map(|p| p.sample(rng)).collect()
    }

    /// The ratio of the largest to the smallest support radius (the `λ` of
    /// Theorem 2.10); `None` when some radius is zero.
    pub fn radius_ratio(&self) -> Option<f64> {
        let min = self
            .points
            .iter()
            .map(|p| p.region.radius)
            .fold(f64::INFINITY, f64::min);
        let max = self
            .points
            .iter()
            .map(|p| p.region.radius)
            .fold(0.0f64, f64::max);
        if min > 0.0 {
            Some(max / min)
        } else {
            None
        }
    }

    /// `true` when the supports are pairwise disjoint (the assumption of
    /// Theorem 2.10).
    pub fn regions_disjoint(&self) -> bool {
        for i in 0..self.points.len() {
            for j in (i + 1)..self.points.len() {
                if self.points[i]
                    .region
                    .intersects_disk(&self.points[j].region)
                {
                    return false;
                }
            }
        }
        true
    }
}

/// Normalization constant of the truncated radial Gaussian.
pub(crate) fn gaussian_mass(r: f64, sigma: f64) -> f64 {
    1.0 - (-r * r / (2.0 * sigma * sigma)).exp()
}

/// Radial density of the location distance from the *center* for each model:
/// `f(s) ds` = probability the point falls at center-distance `[s, s+ds)`.
pub(crate) fn radial_density(p: &ContinuousUncertainPoint, s: f64) -> f64 {
    let r = p.region.radius;
    if s < 0.0 || s > r {
        return 0.0;
    }
    match p.dist {
        DiskDistribution::Uniform => 2.0 * s / (r * r),
        DiskDistribution::TruncatedGaussian { sigma } => {
            let z = gaussian_mass(r, sigma);
            (s / (sigma * sigma)) * (-s * s / (2.0 * sigma * sigma)).exp() / z
        }
        DiskDistribution::Ring { inner_frac } => {
            let r0 = inner_frac * r;
            if s < r0 {
                0.0
            } else {
                2.0 * s / (r * r - r0 * r0)
            }
        }
    }
}

/// Fraction of directions at center-distance `s` that land within distance
/// `t` of the external point at distance `l` from the center (`β(s)/π` in
/// the docs: the half-angle of the intersection of the two circles).
pub(crate) fn angular_fraction(l: f64, s: f64, t: f64) -> f64 {
    if s + l <= t {
        return 1.0; // circle of radius s entirely within distance t of q
    }
    if (l - s).abs() >= t {
        return 0.0;
    }
    let cosb = (l * l + s * s - t * t) / (2.0 * l * s);
    cosb.clamp(-1.0, 1.0).acos() / PI
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn disk(x: f64, y: f64, r: f64) -> Circle {
        Circle::new(Point::new(x, y), r)
    }

    #[test]
    fn samples_stay_in_support() {
        let mut rng = StdRng::seed_from_u64(1);
        let pts = [
            ContinuousUncertainPoint::uniform(disk(1.0, 2.0, 3.0)),
            ContinuousUncertainPoint::gaussian(disk(-4.0, 0.0, 2.0), 0.7),
            ContinuousUncertainPoint::ring(disk(0.0, 5.0, 1.5), 0.6),
        ];
        for p in &pts {
            for _ in 0..2000 {
                let x = p.sample(&mut rng);
                assert!(
                    p.region.center.dist(x) <= p.region.radius + 1e-12,
                    "sample escaped support"
                );
                if let DiskDistribution::Ring { inner_frac } = p.dist {
                    assert!(p.region.center.dist(x) >= inner_frac * p.region.radius - 1e-12);
                }
            }
        }
    }

    #[test]
    fn uniform_sampling_is_area_uniform() {
        // Halving the radius should capture ~1/4 of the mass.
        let p = ContinuousUncertainPoint::uniform(disk(0.0, 0.0, 2.0));
        let mut rng = StdRng::seed_from_u64(7);
        let n = 40_000;
        let inside = (0..n)
            .filter(|_| p.sample(&mut rng).dist(Point::new(0.0, 0.0)) <= 1.0)
            .count();
        let frac = inside as f64 / n as f64;
        assert!((frac - 0.25).abs() < 0.01, "got {frac}");
    }

    #[test]
    fn min_max_dist() {
        let p = ContinuousUncertainPoint::uniform(disk(0.0, 0.0, 5.0));
        let q = Point::new(6.0, 8.0);
        assert_eq!(p.min_dist(q), 5.0);
        assert_eq!(p.max_dist(q), 15.0);
    }

    #[test]
    fn set_helpers() {
        let set = DiskSet::uniform(vec![disk(0.0, 0.0, 1.0), disk(10.0, 0.0, 2.0)]);
        assert_eq!(set.len(), 2);
        assert_eq!(set.radius_ratio(), Some(2.0));
        assert!(set.regions_disjoint());
        let overlapping = DiskSet::uniform(vec![disk(0.0, 0.0, 1.0), disk(1.0, 0.0, 1.0)]);
        assert!(!overlapping.regions_disjoint());
        let with_point = DiskSet::uniform(vec![disk(0.0, 0.0, 0.0)]);
        assert_eq!(with_point.radius_ratio(), None);
    }

    #[test]
    fn angular_fraction_limits() {
        // Query far away, tiny capture radius: fraction 0.
        assert_eq!(angular_fraction(10.0, 1.0, 2.0), 0.0);
        // Capture radius beyond l+s: fraction 1.
        assert_eq!(angular_fraction(10.0, 1.0, 12.0), 1.0);
        // Symmetric half: t = l and s small → fraction ≈ 1/2.
        let f = angular_fraction(10.0, 0.001, 10.0);
        assert!((f - 0.5).abs() < 1e-3, "got {f}");
    }
}
