//! Discrete uncertain points: finitely many weighted locations.

use rand::Rng;
use uncertain_geom::Point;

/// A discrete uncertain point `P_i = {p_i1, …, p_ik}` with location
/// probabilities `w_ij ∈ (0, 1]`, `Σ_j w_ij = 1` (description complexity `k`).
#[derive(Clone, Debug, PartialEq)]
pub struct DiscreteUncertainPoint {
    locations: Vec<Point>,
    weights: Vec<f64>,
    /// Cumulative weights for O(log k) sampling.
    cumulative: Vec<f64>,
}

impl DiscreteUncertainPoint {
    /// Builds a discrete uncertain point; weights are normalized to sum to 1
    /// and must all be positive.
    ///
    /// # Panics
    /// If `locations` is empty, lengths mismatch, or any weight is ≤ 0.
    pub fn new(locations: Vec<Point>, weights: Vec<f64>) -> Self {
        assert!(!locations.is_empty(), "empty discrete uncertain point");
        assert_eq!(locations.len(), weights.len(), "length mismatch");
        assert!(
            weights.iter().all(|&w| w > 0.0),
            "weights must be positive (drop zero-probability locations)"
        );
        let total: f64 = weights.iter().sum();
        let weights: Vec<f64> = weights.iter().map(|w| w / total).collect();
        let mut cumulative = Vec::with_capacity(weights.len());
        let mut acc = 0.0;
        for &w in &weights {
            acc += w;
            cumulative.push(acc);
        }
        *cumulative.last_mut().unwrap() = 1.0;
        DiscreteUncertainPoint {
            locations,
            weights,
            cumulative,
        }
    }

    /// Uniform location probabilities.
    pub fn uniform(locations: Vec<Point>) -> Self {
        let k = locations.len();
        Self::new(locations, vec![1.0; k])
    }

    /// A certain (single-location) point.
    pub fn certain(p: Point) -> Self {
        Self::new(vec![p], vec![1.0])
    }

    pub fn k(&self) -> usize {
        self.locations.len()
    }

    pub fn locations(&self) -> &[Point] {
        &self.locations
    }

    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// `δ_i(q)`: distance to the nearest location.
    pub fn min_dist(&self, q: Point) -> f64 {
        self.locations
            .iter()
            .map(|&p| q.dist(p))
            .fold(f64::INFINITY, f64::min)
    }

    /// `Δ_i(q)`: distance to the farthest location.
    pub fn max_dist(&self, q: Point) -> f64 {
        self.locations
            .iter()
            .map(|&p| q.dist(p))
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Distance cdf `G_{q,i}(r) = Σ_{‖p_ij − q‖ ≤ r} w_ij` (Eq. (2)).
    pub fn cdf_dist(&self, q: Point, r: f64) -> f64 {
        self.locations
            .iter()
            .zip(&self.weights)
            .filter(|(&p, _)| q.dist(p) <= r)
            .map(|(_, &w)| w)
            .sum()
    }

    /// Draws a location.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Point {
        let u: f64 = rng.gen();
        let idx = self.cumulative.partition_point(|&c| c < u);
        self.locations[idx.min(self.locations.len() - 1)]
    }

    /// Ratio of the largest to the smallest location probability.
    pub fn spread(&self) -> f64 {
        let max = self.weights.iter().fold(0.0f64, |a, &b| a.max(b));
        let min = self.weights.iter().fold(f64::INFINITY, |a, &b| a.min(b));
        max / min
    }
}

/// A set of discrete uncertain points — the input `P` of the paper's
/// discrete case (`N = Σ k_i` total locations).
#[derive(Clone, Debug, Default)]
pub struct DiscreteSet {
    pub points: Vec<DiscreteUncertainPoint>,
}

impl DiscreteSet {
    pub fn new(points: Vec<DiscreteUncertainPoint>) -> Self {
        DiscreteSet { points }
    }

    pub fn len(&self) -> usize {
        self.points.len()
    }

    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Maximum description complexity `k = max_i k_i`.
    pub fn max_k(&self) -> usize {
        self.points.iter().map(|p| p.k()).max().unwrap_or(0)
    }

    /// Total number of locations `N`.
    pub fn total_locations(&self) -> usize {
        self.points.iter().map(|p| p.k()).sum()
    }

    /// The spread `ρ` of location probabilities over the whole set (Eq. (9)).
    pub fn spread(&self) -> f64 {
        let mut max = 0.0f64;
        let mut min = f64::INFINITY;
        for p in &self.points {
            for &w in p.weights() {
                max = max.max(w);
                min = min.min(w);
            }
        }
        if min.is_finite() && min > 0.0 {
            max / min
        } else {
            f64::INFINITY
        }
    }

    /// All `(point index, location index, location, weight)` tuples.
    pub fn all_locations(&self) -> impl Iterator<Item = (usize, usize, Point, f64)> + '_ {
        self.points.iter().enumerate().flat_map(|(i, p)| {
            p.locations()
                .iter()
                .zip(p.weights())
                .enumerate()
                .map(move |(j, (&loc, &w))| (i, j, loc, w))
        })
    }

    /// One random instantiation of the whole set.
    pub fn sample_instance<R: Rng + ?Sized>(&self, rng: &mut R) -> Vec<Point> {
        self.points.iter().map(|p| p.sample(rng)).collect()
    }

    /// Discretizes a continuous set by sampling `k` locations per point with
    /// uniform weights — the reduction behind Lemma 4.4 / Theorem 4.5: with
    /// `k = O((n/ε)² log(n/δ))` samples per point, every quantification
    /// probability of the discretized set is within `ε/2` of the continuous
    /// one (w.p. ≥ 1 − δ), so discrete machinery (spiral search, `V_Pr`)
    /// applies to continuous inputs.
    pub fn from_continuous<R: Rng + ?Sized>(
        set: &crate::model::DiskSet,
        k: usize,
        rng: &mut R,
    ) -> Self {
        assert!(k >= 1);
        DiscreteSet::new(
            set.points
                .iter()
                .map(|p| {
                    let locs: Vec<Point> = (0..k).map(|_| p.sample(rng)).collect();
                    DiscreteUncertainPoint::uniform(locs)
                })
                .collect(),
        )
    }

    /// The per-point sample count `k(α) = (c/α²)·ln(1/δ')` from Lemma 4.4
    /// (with the constant `c` = 1/2, the Dvoretzky–Kiefer–Wolfowitz value,
    /// and `α = ε/(2n)`, `δ' = δ/(2n)` as in the Theorem 4.5 proof).
    pub fn discretization_k(n: usize, eps: f64, delta: f64) -> usize {
        assert!(eps > 0.0 && delta > 0.0);
        let alpha = eps / (2.0 * n as f64);
        let dp = delta / (2.0 * n as f64);
        ((0.5 / (alpha * alpha)) * (1.0 / dp).ln()).ceil() as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn p(x: f64, y: f64) -> Point {
        Point::new(x, y)
    }

    #[test]
    fn normalization_and_spread() {
        let d = DiscreteUncertainPoint::new(vec![p(0.0, 0.0), p(1.0, 0.0)], vec![3.0, 1.0]);
        assert!((d.weights()[0] - 0.75).abs() < 1e-15);
        assert!((d.weights()[1] - 0.25).abs() < 1e-15);
        assert_eq!(d.spread(), 3.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_weight_rejected() {
        DiscreteUncertainPoint::new(vec![p(0.0, 0.0)], vec![0.0]);
    }

    #[test]
    fn distances_and_cdf() {
        let d = DiscreteUncertainPoint::new(
            vec![p(0.0, 0.0), p(4.0, 0.0), p(0.0, 3.0)],
            vec![0.5, 0.25, 0.25],
        );
        let q = p(0.0, 0.0);
        assert_eq!(d.min_dist(q), 0.0);
        assert_eq!(d.max_dist(q), 4.0);
        assert_eq!(d.cdf_dist(q, 0.0), 0.5);
        assert_eq!(d.cdf_dist(q, 3.0), 0.75); // ties at r included (≤)
        assert_eq!(d.cdf_dist(q, 10.0), 1.0);
    }

    #[test]
    fn sampling_matches_weights() {
        let d = DiscreteUncertainPoint::new(vec![p(0.0, 0.0), p(1.0, 0.0)], vec![0.8, 0.2]);
        let mut rng = StdRng::seed_from_u64(99);
        let n = 50_000;
        let heavy = (0..n).filter(|_| d.sample(&mut rng) == p(0.0, 0.0)).count();
        let frac = heavy as f64 / n as f64;
        assert!((frac - 0.8).abs() < 0.01, "got {frac}");
    }

    #[test]
    fn set_accounting() {
        let set = DiscreteSet::new(vec![
            DiscreteUncertainPoint::uniform(vec![p(0.0, 0.0), p(1.0, 0.0)]),
            DiscreteUncertainPoint::new(vec![p(5.0, 5.0)], vec![1.0]),
            DiscreteUncertainPoint::new(
                vec![p(2.0, 0.0), p(3.0, 0.0), p(4.0, 0.0)],
                vec![0.5, 0.25, 0.25],
            ),
        ]);
        assert_eq!(set.len(), 3);
        assert_eq!(set.max_k(), 3);
        assert_eq!(set.total_locations(), 6);
        assert_eq!(set.all_locations().count(), 6);
        assert_eq!(set.spread(), 4.0); // 1.0 / 0.25
    }
}

#[cfg(test)]
mod discretization_tests {
    use super::*;
    use crate::quantification::exact::{quantification_continuous, quantification_discrete};
    use crate::workload;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn discretized_quantification_approaches_continuous() {
        let set = workload::random_disk_set(5, 0.8, 2.0, 71);
        let mut rng = StdRng::seed_from_u64(72);
        // Modest k suffices empirically for a loose tolerance.
        let disc = DiscreteSet::from_continuous(&set, 600, &mut rng);
        assert_eq!(disc.len(), set.len());
        assert_eq!(disc.max_k(), 600);
        for q in workload::random_queries(5, 40.0, 73) {
            let cont = quantification_continuous(&set, q, 2048);
            let discr = quantification_discrete(&disc, q);
            for i in 0..set.len() {
                assert!(
                    (cont[i] - discr[i]).abs() < 0.08,
                    "π_{i} at {q}: continuous {} vs discretized {}",
                    cont[i],
                    discr[i]
                );
            }
        }
    }

    #[test]
    fn discretization_k_formula_scales() {
        let k1 = DiscreteSet::discretization_k(10, 0.1, 0.05);
        let k2 = DiscreteSet::discretization_k(10, 0.05, 0.05);
        assert!(k2 > 3 * k1, "halving ε must ~quadruple k: {k1} → {k2}");
        let k3 = DiscreteSet::discretization_k(20, 0.1, 0.05);
        assert!(k3 > 3 * k1, "doubling n must ~quadruple k: {k1} → {k3}");
    }
}
