//! Distance distributions between a query point and an uncertain point.
//!
//! For a query `q` and uncertain point `P_i`, `g_{q,i}` is the pdf of the
//! random variable `d(q, P_i)` and `G_{q,i}` its cdf (Section 1.1, Figure 1).
//! These are the ingredients of the quantification probability (Eq. (1)):
//!
//! ```text
//!   π_i(q) = ∫ g_{q,i}(r) · Π_{j≠i} (1 − G_{q,j}(r)) dr
//! ```
//!
//! For a *uniform* disk distribution both are closed-form (circle–circle lens
//! areas and arc lengths); for the truncated Gaussian and ring models the cdf
//! is a 1-D radial quadrature.

use super::continuous::{
    angular_fraction, radial_density, ContinuousUncertainPoint, DiskDistribution,
};
use std::f64::consts::PI;
use uncertain_geom::{Circle, Point};

/// Number of radial quadrature panels for non-uniform disk models.
const QUAD_PANELS: usize = 256;

/// `G_{q,i}(r)`: probability that the uncertain point lies within distance
/// `r` of `q`.
pub fn cdf(p: &ContinuousUncertainPoint, q: Point, r: f64) -> f64 {
    // Check the upper end first so a zero-radius point mass (min = max = d)
    // gets the right-continuous convention `G(d) = 1` — matching the `≤` in
    // the discrete Eq. (2).
    if r >= p.max_dist(q) {
        return 1.0;
    }
    if r <= p.min_dist(q) {
        return 0.0;
    }
    match p.dist {
        DiskDistribution::Uniform => {
            let capture = Circle::new(q, r);
            capture.lens_area(&p.region) / p.region.area()
        }
        _ => {
            // Radial quadrature: G(r) = ∫ f(s)·(angular fraction) ds over
            // the radial support (starting at the annulus inner radius for
            // rings — integrating across the density jump would cost an
            // order of accuracy).
            let l = q.dist(p.region.center);
            let rr = p.region.radius;
            let s_lo = match p.dist {
                DiskDistribution::Ring { inner_frac } => inner_frac * rr,
                _ => 0.0,
            };
            simpson(s_lo, rr, QUAD_PANELS, |s| {
                radial_density(p, s) * angular_fraction(l, s, r)
            })
        }
    }
}

/// `g_{q,i}(r)`: pdf of the distance. Closed-form for uniform disks; central
/// finite difference of [`cdf`] otherwise.
pub fn pdf(p: &ContinuousUncertainPoint, q: Point, r: f64) -> f64 {
    let lo = p.min_dist(q);
    let hi = p.max_dist(q);
    if r < lo || r > hi {
        return 0.0;
    }
    match p.dist {
        DiskDistribution::Uniform => {
            // g(r) = (arc length of ∂B(q,r) inside D) / area(D)
            //      = 2·r·β(r) / (π R²) with β the inside half-angle.
            let l = q.dist(p.region.center);
            let rr = p.region.radius;
            let beta = if l + r <= rr {
                PI // whole circle inside the disk (q inside, small r)
            } else if (l - rr).abs() >= r && l > rr {
                0.0
            } else {
                let cosb = (l * l + r * r - rr * rr) / (2.0 * l * r);
                cosb.clamp(-1.0, 1.0).acos()
            };
            2.0 * r * beta / (PI * rr * rr)
        }
        _ => {
            let h = 1e-5 * (hi - lo).max(1e-9);
            let a = cdf(p, q, (r - h).max(lo));
            let b = cdf(p, q, (r + h).min(hi));
            (b - a) / (((r + h).min(hi)) - ((r - h).max(lo)))
        }
    }
}

/// Composite Simpson quadrature with `panels` panels (must be even-friendly;
/// rounded up internally).
pub(crate) fn simpson<F: Fn(f64) -> f64>(a: f64, b: f64, panels: usize, f: F) -> f64 {
    if b <= a {
        return 0.0;
    }
    let n = (panels.max(2) + 1) & !1usize; // even
    let h = (b - a) / n as f64;
    let mut acc = f(a) + f(b);
    for i in 1..n {
        let x = a + i as f64 * h;
        acc += f(x) * if i % 2 == 1 { 4.0 } else { 2.0 };
    }
    acc * h / 3.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn uniform_disk(x: f64, y: f64, r: f64) -> ContinuousUncertainPoint {
        ContinuousUncertainPoint::uniform(Circle::new(Point::new(x, y), r))
    }

    /// The paper's Figure 1 configuration: uniform disk of radius 5 at the
    /// origin, query at (6, 8) (distance 10).
    #[test]
    fn figure_1_support_and_shape() {
        let p = uniform_disk(0.0, 0.0, 5.0);
        let q = Point::new(6.0, 8.0);
        // Support of g is [5, 15].
        assert_eq!(pdf(&p, q, 4.9), 0.0);
        assert_eq!(pdf(&p, q, 15.1), 0.0);
        assert!(pdf(&p, q, 10.0) > 0.0);
        // cdf is 0 / 1 outside, monotone inside.
        assert_eq!(cdf(&p, q, 5.0), 0.0);
        assert_eq!(cdf(&p, q, 15.0), 1.0);
        let mut last = 0.0;
        for k in 0..=100 {
            let r = 5.0 + 10.0 * k as f64 / 100.0;
            let c = cdf(&p, q, r);
            assert!(c + 1e-12 >= last, "cdf must be monotone");
            last = c;
        }
    }

    #[test]
    fn pdf_integrates_to_one() {
        for p in [
            uniform_disk(0.0, 0.0, 5.0),
            ContinuousUncertainPoint::gaussian(Circle::new(Point::new(0.0, 0.0), 5.0), 2.0),
            ContinuousUncertainPoint::ring(Circle::new(Point::new(0.0, 0.0), 5.0), 0.5),
        ] {
            for q in [Point::new(6.0, 8.0), Point::new(1.0, 0.0)] {
                let lo = p.min_dist(q);
                let hi = p.max_dist(q);
                let total = simpson(lo, hi, 2000, |r| pdf(&p, q, r));
                assert!(
                    (total - 1.0).abs() < 5e-3,
                    "pdf of {:?} at {q} integrates to {total}",
                    p.dist
                );
            }
        }
    }

    #[test]
    fn cdf_matches_sampling() {
        let mut rng = StdRng::seed_from_u64(5);
        let pts = [
            uniform_disk(1.0, -2.0, 3.0),
            ContinuousUncertainPoint::gaussian(Circle::new(Point::new(1.0, -2.0), 3.0), 1.0),
            ContinuousUncertainPoint::ring(Circle::new(Point::new(1.0, -2.0), 3.0), 0.4),
        ];
        let q = Point::new(4.0, 2.0);
        let n = 30_000;
        for p in &pts {
            for rfrac in [0.3, 0.5, 0.8] {
                let r = p.min_dist(q) + rfrac * (p.max_dist(q) - p.min_dist(q));
                let hits = (0..n).filter(|_| q.dist(p.sample(&mut rng)) <= r).count();
                let emp = hits as f64 / n as f64;
                let ana = cdf(p, q, r);
                assert!(
                    (emp - ana).abs() < 0.015,
                    "{:?} r={r}: empirical {emp} vs analytic {ana}",
                    p.dist
                );
            }
        }
    }

    #[test]
    fn pdf_query_inside_disk() {
        // q at the center: g(r) = 2r/R² on [0, R].
        let p = uniform_disk(0.0, 0.0, 2.0);
        let q = Point::new(0.0, 0.0);
        for r in [0.5, 1.0, 1.5] {
            assert!((pdf(&p, q, r) - 2.0 * r / 4.0).abs() < 1e-12);
        }
        // q strictly inside but off-center: support is [0, l+R].
        let q2 = Point::new(1.0, 0.0);
        assert_eq!(p.min_dist(q2), 0.0);
        assert!(pdf(&p, q2, 0.5) > 0.0);
        assert!(pdf(&p, q2, 2.9) > 0.0);
        assert_eq!(pdf(&p, q2, 3.1), 0.0);
    }

    #[test]
    fn simpson_sanity() {
        let v = simpson(0.0, 1.0, 100, |x| x * x);
        assert!((v - 1.0 / 3.0).abs() < 1e-9);
        assert_eq!(simpson(1.0, 0.0, 100, |x| x), 0.0);
    }

    #[test]
    fn gaussian_concentrates_near_center() {
        // With tiny σ the distance distribution concentrates near l = d(q,c).
        let p = ContinuousUncertainPoint::gaussian(Circle::new(Point::new(0.0, 0.0), 5.0), 0.05);
        let q = Point::new(10.0, 0.0);
        assert!(cdf(&p, q, 9.5) < 0.01);
        assert!(cdf(&p, q, 10.5) > 0.99);
        let _unused: f64 = StdRng::seed_from_u64(1).gen();
    }
}
