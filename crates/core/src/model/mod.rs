//! Uncertain-point models (Section 1.1 of the paper).
//!
//! An uncertain point is a probability distribution over locations in the
//! plane. Two families are supported, mirroring the paper:
//!
//! * [`continuous::ContinuousUncertainPoint`] — a pdf supported on a disk
//!   (uniform, truncated Gaussian, or ring);
//! * [`discrete::DiscreteUncertainPoint`] — finitely many weighted
//!   locations (description complexity `k`).
//!
//! [`distance`] provides the distance distribution `g_{q,i}` / `G_{q,i}`
//! between a fixed query point and an uncertain point — the quantity behind
//! Eq. (1) and Figure 1.

pub mod continuous;
pub mod discrete;
pub mod distance;

pub use continuous::{ContinuousUncertainPoint, DiskDistribution, DiskSet};
pub use discrete::{DiscreteSet, DiscreteUncertainPoint};
