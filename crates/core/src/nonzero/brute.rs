//! Brute-force `NN≠0` evaluation (the Lemma 2.1 oracle).

use crate::model::{DiscreteSet, DiskSet};
use uncertain_geom::{Circle, Point};

/// Tracks the two smallest values with the argmin of the smallest.
///
/// Lemma 2.1 tests `δ_i(q) < Δ_j(q)` for all `j ≠ i`, i.e. against
/// `min_{j≠i} Δ_j(q)` — which is the global minimum unless `i` itself
/// attains it (then it is the second-smallest). The distinction only
/// matters for *certain* points (`δ_i = Δ_i`): a zero-radius disk exactly
/// at the global minimum must still report itself.
pub(crate) fn two_smallest(values: impl Iterator<Item = f64>) -> (f64, usize, f64) {
    let (mut best, mut best_i, mut second) = (f64::INFINITY, usize::MAX, f64::INFINITY);
    for (i, v) in values.enumerate() {
        if v < best {
            second = best;
            best = v;
            best_i = i;
        } else if v < second {
            second = v;
        }
    }
    (best, best_i, second)
}

/// `NN≠0(q)` over disk supports by direct evaluation: `O(n)`.
pub fn nonzero_nn_disks(disks: &[Circle], q: Point) -> Vec<usize> {
    let (best, best_i, second) = two_smallest(disks.iter().map(|d| d.max_dist(q)));
    disks
        .iter()
        .enumerate()
        .filter(|&(i, d)| d.min_dist(q) < if i == best_i { second } else { best })
        .map(|(i, _)| i)
        .collect()
}

/// `NN≠0(q)` over discrete uncertain points by direct evaluation: `O(N)`.
pub fn nonzero_nn_discrete(set: &DiscreteSet, q: Point) -> Vec<usize> {
    let (best, best_i, second) = two_smallest(set.points.iter().map(|p| p.max_dist(q)));
    set.points
        .iter()
        .enumerate()
        .filter(|&(i, p)| p.min_dist(q) < if i == best_i { second } else { best })
        .map(|(i, _)| i)
        .collect()
}

impl DiskSet {
    /// `NN≠0(q)` by direct evaluation (Lemma 2.1). Prefer
    /// [`crate::nonzero::DiskNonzeroIndex`] for repeated queries.
    pub fn nonzero_nn(&self, q: Point) -> Vec<usize> {
        nonzero_nn_disks(&self.regions(), q)
    }
}

impl DiscreteSet {
    /// `NN≠0(q)` by direct evaluation (Lemma 2.1). Prefer
    /// [`crate::nonzero::DiscreteNonzeroIndex`] for repeated queries.
    pub fn nonzero_nn(&self, q: Point) -> Vec<usize> {
        nonzero_nn_discrete(self, q)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::DiscreteUncertainPoint;

    fn disk(x: f64, y: f64, r: f64) -> Circle {
        Circle::new(Point::new(x, y), r)
    }

    #[test]
    fn certain_points_reduce_to_classical_nn() {
        // Zero radii: exactly the unique nearest point has nonzero
        // probability (no ties here).
        let disks = vec![
            disk(0.0, 0.0, 0.0),
            disk(4.0, 0.0, 0.0),
            disk(0.0, 5.0, 0.0),
        ];
        assert_eq!(nonzero_nn_disks(&disks, Point::new(1.0, 0.0)), vec![0]);
        assert_eq!(nonzero_nn_disks(&disks, Point::new(3.5, 0.0)), vec![1]);
    }

    #[test]
    fn overlapping_regions_all_participate() {
        let disks = vec![
            disk(0.0, 0.0, 2.0),
            disk(1.0, 0.0, 2.0),
            disk(50.0, 0.0, 1.0),
        ];
        let nn = nonzero_nn_disks(&disks, Point::new(0.5, 0.0));
        assert_eq!(nn, vec![0, 1]); // far disk can never be nearest
    }

    #[test]
    fn guaranteed_nn_region() {
        // Far from everything except disk 0, only it participates — the
        // "guaranteed Voronoi" region of [SE08].
        let disks = vec![disk(0.0, 0.0, 1.0), disk(100.0, 0.0, 1.0)];
        let nn = nonzero_nn_disks(&disks, Point::new(-5.0, 0.0));
        assert_eq!(nn, vec![0]);
        // Between them both can be nearest.
        let nn_mid = nonzero_nn_disks(&disks, Point::new(50.0, 0.0));
        assert_eq!(nn_mid, vec![0, 1]);
    }

    #[test]
    fn discrete_matches_disk_for_singletons() {
        let set = DiscreteSet::new(vec![
            DiscreteUncertainPoint::certain(Point::new(0.0, 0.0)),
            DiscreteUncertainPoint::certain(Point::new(4.0, 0.0)),
        ]);
        assert_eq!(nonzero_nn_discrete(&set, Point::new(1.0, 0.0)), vec![0]);
    }

    #[test]
    fn discrete_spread_out_locations() {
        let set = DiscreteSet::new(vec![
            DiscreteUncertainPoint::uniform(vec![Point::new(0.0, 0.0), Point::new(10.0, 0.0)]),
            DiscreteUncertainPoint::certain(Point::new(5.0, 0.0)),
        ]);
        // At q = (5, 0): P_2 sits exactly at q, so it is certainly the
        // nearest (Lemma 2.1 compares δ_2 = 0 against Δ_1 = 5, j ≠ i);
        // P_1's locations are both at distance 5 > Δ_2 = 0, so P_1 is out.
        assert_eq!(nonzero_nn_discrete(&set, Point::new(5.0, 0.0)), vec![1]);
        // Slightly off: the certain point (distance 1) always beats P_1's
        // best possible location (distance 4) — only P_2 can be nearest.
        let nn = nonzero_nn_discrete(&set, Point::new(4.0, 0.0));
        assert_eq!(nn, vec![1]);
        // Far left: P_1's near location dominates but P_2 can still be
        // nearest when P_1 instantiates to (10, 0).
        let nn = nonzero_nn_discrete(&set, Point::new(-1.0, 0.0));
        assert_eq!(nn, vec![0, 1]);
    }
}
