//! The Theorem 3.1-style query structure for disk supports.
//!
//! Two stages, exactly as in the paper: (1) compute `Δ(q)` — the paper uses
//! point location in the additively-weighted Voronoi diagram, we use
//! branch-and-bound over a radius-augmented kd-tree; (2) report all disks
//! `D_i` intersecting the disk `B(q, Δ(q))` — the paper cites the dynamic
//! disk-reporting structure of [KMR+16], we use the same augmented tree with
//! a `δ_i(q) < Δ(q)` pruning bound. Both stages are output-sensitive and
//! logarithmic-ish in practice (measured in experiment E8).

use crate::model::DiskSet;
use uncertain_geom::{Circle, Point};
use uncertain_spatial::DiskIndex;

/// Query structure answering `NN≠0(q)` for disk supports.
#[derive(Clone, Debug)]
pub struct DiskNonzeroIndex {
    index: DiskIndex,
    n: usize,
}

impl DiskNonzeroIndex {
    /// Builds from uncertainty regions. `O(n log n)`.
    pub fn build(set: &DiskSet) -> Self {
        let disks = set.regions();
        DiskNonzeroIndex {
            index: DiskIndex::from_disks(&disks),
            n: disks.len(),
        }
    }

    /// Builds directly from disks.
    pub fn from_disks(disks: &[Circle]) -> Self {
        DiskNonzeroIndex {
            index: DiskIndex::from_disks(disks),
            n: disks.len(),
        }
    }

    pub fn len(&self) -> usize {
        self.n
    }

    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// The underlying spatial index (for the kNN extension).
    pub(crate) fn index(&self) -> &DiskIndex {
        &self.index
    }

    /// `Δ(q) = min_i Δ_i(q)` (stage 1).
    pub fn delta(&self, q: Point) -> Option<f64> {
        self.index.min_max_dist(q).map(|(d, _)| d)
    }

    /// `NN≠0(q)`: indices of all points with nonzero probability of being
    /// the nearest neighbor of `q`, in arbitrary order.
    pub fn query(&self, q: Point) -> Vec<usize> {
        self.index
            .nonzero_nn(q)
            .into_iter()
            .map(|i| i as usize)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nonzero::brute::nonzero_nn_disks;
    use crate::workload;

    #[test]
    fn matches_brute_force_on_random_sets() {
        for seed in [1u64, 2, 3] {
            let set = workload::random_disk_set(150, 0.1, 4.0, seed);
            let idx = DiskNonzeroIndex::build(&set);
            let disks = set.regions();
            for q in workload::random_queries(120, 60.0, seed ^ 0xffff) {
                let mut got = idx.query(q);
                let mut brute = nonzero_nn_disks(&disks, q);
                got.sort_unstable();
                brute.sort_unstable();
                assert_eq!(got, brute, "q = {q}");
            }
        }
    }

    #[test]
    fn empty_set() {
        let idx = DiskNonzeroIndex::build(&DiskSet::default());
        assert!(idx.is_empty());
        assert!(idx.query(Point::new(0.0, 0.0)).is_empty());
        assert!(idx.delta(Point::new(0.0, 0.0)).is_none());
    }

    #[test]
    fn heavily_overlapping_disks_report_everything() {
        // All disks concentric-ish: every one can be the NN.
        let disks: Vec<Circle> = (0..20)
            .map(|i| Circle::new(Point::new(0.01 * i as f64, 0.0), 5.0))
            .collect();
        let idx = DiskNonzeroIndex::from_disks(&disks);
        let got = idx.query(Point::new(0.0, 0.0));
        assert_eq!(got.len(), 20);
    }
}
