//! The Theorem 3.2-style query structure for discrete distributions.
//!
//! Stage 1 computes `Δ(q) = min_i max_j ‖q − p_ij‖` by branch-and-bound over
//! smallest-enclosing-circle summaries (the paper queries a partition tree
//! over the lifted upper-envelope triangles; same output). Stage 2 reports
//! every point `P_i` owning a location strictly within distance `Δ(q)` of
//! `q` — a circular range-reporting query over all `N` locations, `O(√N+t)`
//! worst case on the kd-tree exactly as the partition-tree bound the paper
//! states (measured in experiment E9).

use crate::model::DiscreteSet;
use uncertain_geom::Point;
use uncertain_spatial::{GroupIndex, KdTree};

/// Per-query scratch stamps for deduplication. Callers that query the same
/// index from several threads give each thread its own scratch (see
/// [`DiscreteNonzeroIndex::query_with`]); the plain
/// [`query`](DiscreteNonzeroIndex::query) API uses a shared one behind a
/// mutex.
#[derive(Clone, Debug, Default)]
pub struct QueryScratch {
    stamps: Vec<u32>,
    epoch: u32,
}

/// Query structure answering `NN≠0(q)` for discrete uncertain points.
#[derive(Debug)]
pub struct DiscreteNonzeroIndex {
    groups: GroupIndex,
    locations: KdTree,
    n: usize,
    /// Shared scratch for the `&self` convenience API. A `Mutex` (not
    /// `RefCell`) so the index is `Sync` and can serve concurrent readers;
    /// parallel callers should prefer [`query_with`](Self::query_with) with
    /// per-thread scratch to avoid contention.
    scratch: std::sync::Mutex<QueryScratch>,
}

impl Clone for DiscreteNonzeroIndex {
    fn clone(&self) -> Self {
        DiscreteNonzeroIndex {
            groups: self.groups.clone(),
            locations: self.locations.clone(),
            n: self.n,
            scratch: std::sync::Mutex::new(QueryScratch::default()),
        }
    }
}

impl DiscreteNonzeroIndex {
    /// Builds from a discrete set. `O(N log N)`.
    pub fn build(set: &DiscreteSet) -> Self {
        let group_pts: Vec<Vec<Point>> =
            set.points.iter().map(|p| p.locations().to_vec()).collect();
        let items: Vec<(Point, u32)> = set
            .all_locations()
            .map(|(i, _, loc, _)| (loc, i as u32))
            .collect();
        DiscreteNonzeroIndex {
            groups: GroupIndex::build(&group_pts),
            locations: KdTree::build(items),
            n: set.len(),
            scratch: std::sync::Mutex::new(QueryScratch::default()),
        }
    }

    pub fn len(&self) -> usize {
        self.n
    }

    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// The group index (for the kNN extension).
    pub(crate) fn groups(&self) -> &GroupIndex {
        &self.groups
    }

    /// The flat location tree (for the kNN extension).
    pub(crate) fn locations(&self) -> &KdTree {
        &self.locations
    }

    /// `Δ(q)` (stage 1).
    pub fn delta(&self, q: Point) -> Option<f64> {
        self.groups.min_max_dist(q).map(|(d, _)| d)
    }

    /// `NN≠0(q)`: all point indices with `δ_i(q) < min_{j≠i} Δ_j(q)`
    /// (Lemma 2.1).
    pub fn query(&self, q: Point) -> Vec<usize> {
        let mut scratch = self.scratch.lock().unwrap();
        self.query_with(q, &mut scratch)
    }

    /// Like [`query`](Self::query), with caller-provided scratch — the
    /// contention-free path for multi-threaded batch serving.
    pub fn query_with(&self, q: Point, scratch: &mut QueryScratch) -> Vec<usize> {
        let Some((best, best_id, second)) = self.groups.two_min_max_dist(q) else {
            return vec![];
        };
        if scratch.stamps.len() != self.n || scratch.epoch == u32::MAX {
            scratch.stamps = vec![0; self.n];
            scratch.epoch = 0;
        }
        scratch.epoch += 1;
        let (stamps, cur) = (&mut scratch.stamps, scratch.epoch);
        let mut out = vec![];
        let range = if second.is_finite() { second } else { best };
        // The kd leaf kernel evaluates the distances in chunked lanes and
        // hands each hit's distance through, so the Lemma 2.1 filter below
        // reuses it instead of recomputing `q.dist(p)` (same bits).
        self.locations
            .for_each_in_disk_with_dist(q, range, |_, i, d| {
                // Strict inequality against min_{j≠i} Δ_j; for the point that
                // attains Δ(q) the threshold is the second-smallest.
                let bound = if i == best_id { second } else { best };
                if d < bound && stamps[i as usize] != cur {
                    stamps[i as usize] = cur;
                    out.push(i as usize);
                }
            });
        // Single-point sets: the range query above cannot see past `best`
        // when `second = ∞`; handle explicitly.
        if self.n == 1 && out.is_empty() {
            out.push(best_id as usize);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nonzero::brute::nonzero_nn_discrete;
    use crate::workload;

    #[test]
    fn matches_brute_force_on_random_sets() {
        for seed in [11u64, 12, 13] {
            let set = workload::random_discrete_set(60, 5, 8.0, seed);
            let idx = DiscreteNonzeroIndex::build(&set);
            for q in workload::random_queries(150, 60.0, seed ^ 0xaaaa) {
                let mut got = idx.query(q);
                let mut brute = nonzero_nn_discrete(&set, q);
                got.sort_unstable();
                brute.sort_unstable();
                assert_eq!(got, brute, "q = {q}");
            }
        }
    }

    #[test]
    fn empty_and_singleton() {
        let idx = DiscreteNonzeroIndex::build(&DiscreteSet::default());
        assert!(idx.query(Point::new(0.0, 0.0)).is_empty());

        let set = DiscreteSet::new(vec![crate::model::DiscreteUncertainPoint::certain(
            Point::new(3.0, 3.0),
        )]);
        let idx = DiscreteNonzeroIndex::build(&set);
        assert_eq!(idx.query(Point::new(0.0, 0.0)), vec![0]);
    }

    #[test]
    fn repeated_queries_reuse_stamps() {
        let set = workload::random_discrete_set(30, 4, 4.0, 77);
        let idx = DiscreteNonzeroIndex::build(&set);
        let q = Point::new(0.0, 0.0);
        let first = idx.query(q);
        for _ in 0..10 {
            assert_eq!(idx.query(q), first);
        }
    }
}
