//! `kNN≠0` queries: uncertain points with nonzero probability of being among
//! the `k` nearest neighbors — the kNN variant the paper's Section 1.2
//! raises (ranking semantics are deferred to [JCLY11]; membership in the
//! possible-top-k set has a clean characterization generalizing Lemma 2.1):
//!
//! ```text
//!   P_i ∈ kNN≠0(q)   ⟺   #{ j ≠ i : Δ_j(q) ≤ δ_i(q) } ≤ k − 1,
//! ```
//!
//! i.e. fewer than `k` other points are *forced* to be at least as close as
//! `P_i`'s best case. For `k = 1` this is exactly Lemma 2.1. The index
//! engine retrieves the `k + 1` smallest `Δ_j` values and reports all disks
//! beating their respective per-`i` threshold (the `k`-th smallest among
//! `j ≠ i`), with the same strict-inequality convention as the paper.

use crate::model::{DiscreteSet, DiskSet};
use uncertain_geom::{Circle, Point};

/// Per-`i` threshold from the `k+1` smallest Δ values (`vals` ascending,
/// `ids` aligned): the `k`-th smallest Δ among `j ≠ i`.
fn threshold_for(i: u32, k: usize, smallest: &[(f64, u32)]) -> f64 {
    debug_assert!(k >= 1);
    // Position of i among the k smallest (if present).
    let in_top = smallest[..k.min(smallest.len())]
        .iter()
        .any(|&(_, id)| id == i);
    let idx = if in_top { k } else { k - 1 };
    smallest.get(idx).map_or(f64::INFINITY, |&(d, _)| d)
}

/// Brute-force `kNN≠0` over disks: `O(n log n)`.
pub fn nonzero_knn_disks(disks: &[Circle], q: Point, k: usize) -> Vec<usize> {
    assert!(k >= 1);
    let mut smallest: Vec<(f64, u32)> = disks
        .iter()
        .enumerate()
        .map(|(j, d)| (d.max_dist(q), j as u32))
        .collect();
    smallest.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
    smallest.truncate(k + 1);
    disks
        .iter()
        .enumerate()
        .filter(|&(i, d)| d.min_dist(q) < threshold_for(i as u32, k, &smallest))
        .map(|(i, _)| i)
        .collect()
}

/// Brute-force `kNN≠0` over discrete uncertain points: `O(N log N)`.
pub fn nonzero_knn_discrete(set: &DiscreteSet, q: Point, k: usize) -> Vec<usize> {
    assert!(k >= 1);
    let mut smallest: Vec<(f64, u32)> = set
        .points
        .iter()
        .enumerate()
        .map(|(j, p)| (p.max_dist(q), j as u32))
        .collect();
    smallest.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
    smallest.truncate(k + 1);
    set.points
        .iter()
        .enumerate()
        .filter(|&(i, p)| p.min_dist(q) < threshold_for(i as u32, k, &smallest))
        .map(|(i, _)| i)
        .collect()
}

impl super::delta_query::DiskNonzeroIndex {
    /// `kNN≠0(q)`: all points with nonzero probability of ranking among the
    /// `k` nearest. Output-sensitive: `O(log n + t)`-type behaviour like
    /// [`query`](Self::query) (which equals `query_k(q, 1)`).
    pub fn query_k(&self, q: Point, k: usize) -> Vec<usize> {
        assert!(k >= 1);
        let smallest = self.index().k_min_max_dist(q, k + 1);
        if smallest.is_empty() {
            return vec![];
        }
        let loosest = smallest.last().unwrap().0;
        let mut out = vec![];
        self.index()
            .for_each_with_min_dist_below(q, loosest, |c, id| {
                if c.min_dist(q) < threshold_for(id, k, &smallest) {
                    out.push(id as usize);
                }
            });
        // When k ≥ n every point qualifies but the traversal bound above is
        // finite; patch up by falling back to a full scan condition.
        if smallest.len() <= k {
            return (0..self.len()).collect();
        }
        out
    }
}

impl super::discrete_query::DiscreteNonzeroIndex {
    /// `kNN≠0(q)` for discrete uncertain points.
    pub fn query_k(&self, q: Point, k: usize) -> Vec<usize> {
        assert!(k >= 1);
        let smallest = self.groups().k_min_max_dist(q, k + 1);
        if smallest.is_empty() {
            return vec![];
        }
        if smallest.len() <= k {
            return (0..self.len()).collect();
        }
        let loosest = smallest.last().unwrap().0;
        let mut seen = vec![false; self.len()];
        let mut out = vec![];
        self.locations()
            .for_each_in_disk_with_dist(q, loosest, |_, i, d| {
                if !seen[i as usize] && d < threshold_for(i, k, &smallest) {
                    seen[i as usize] = true;
                    out.push(i as usize);
                }
            });
        out
    }
}

impl DiskSet {
    /// `kNN≠0(q)` by direct evaluation.
    pub fn nonzero_knn(&self, q: Point, k: usize) -> Vec<usize> {
        nonzero_knn_disks(&self.regions(), q, k)
    }
}

impl DiscreteSet {
    /// `kNN≠0(q)` by direct evaluation.
    pub fn nonzero_knn(&self, q: Point, k: usize) -> Vec<usize> {
        nonzero_knn_discrete(self, q, k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nonzero::{DiscreteNonzeroIndex, DiskNonzeroIndex};
    use crate::workload;

    #[test]
    fn k1_equals_lemma_2_1() {
        for seed in [1u64, 2] {
            let set = workload::random_disk_set(40, 0.2, 2.0, seed);
            let disks = set.regions();
            for q in workload::random_queries(60, 60.0, seed + 9) {
                let mut a = nonzero_knn_disks(&disks, q, 1);
                let mut b = crate::nonzero::brute::nonzero_nn_disks(&disks, q);
                a.sort_unstable();
                b.sort_unstable();
                assert_eq!(a, b);
            }
        }
    }

    #[test]
    fn knn_sets_are_monotone_in_k() {
        let set = workload::random_disk_set(30, 0.3, 2.0, 7);
        let disks = set.regions();
        for q in workload::random_queries(40, 60.0, 8) {
            let mut prev: Vec<usize> = vec![];
            for k in 1..=6 {
                let mut cur = nonzero_knn_disks(&disks, q, k);
                cur.sort_unstable();
                for i in &prev {
                    assert!(cur.contains(i), "kNN sets must be monotone in k");
                }
                prev = cur;
            }
            // k = n: everyone can be among the n nearest.
            let all = nonzero_knn_disks(&disks, q, disks.len());
            assert_eq!(all.len(), disks.len());
        }
    }

    #[test]
    fn index_matches_brute_force_disks() {
        let set = workload::random_disk_set(80, 0.2, 2.0, 5);
        let idx = DiskNonzeroIndex::build(&set);
        let disks = set.regions();
        for q in workload::random_queries(60, 60.0, 6) {
            for k in [1usize, 2, 3, 7] {
                let mut a = idx.query_k(q, k);
                let mut b = nonzero_knn_disks(&disks, q, k);
                a.sort_unstable();
                b.sort_unstable();
                assert_eq!(a, b, "k={k} at {q}");
            }
        }
    }

    #[test]
    fn index_matches_brute_force_discrete() {
        let set = workload::random_discrete_set(50, 4, 5.0, 13);
        let idx = DiscreteNonzeroIndex::build(&set);
        for q in workload::random_queries(60, 60.0, 14) {
            for k in [1usize, 2, 5] {
                let mut a = idx.query_k(q, k);
                let mut b = nonzero_knn_discrete(&set, q, k);
                a.sort_unstable();
                b.sort_unstable();
                assert_eq!(a, b, "k={k} at {q}");
            }
        }
    }

    #[test]
    fn knn_membership_matches_instantiation_ranks() {
        // Monte-Carlo cross-check: a point in kNN≠0 must achieve rank ≤ k in
        // some instantiation, and points outside must not (with enough
        // samples this is a sharp test on small instances).
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let set = workload::random_discrete_set(6, 2, 8.0, 3);
        let mut rng = StdRng::seed_from_u64(4);
        let q = uncertain_geom::Point::new(0.0, 0.0);
        let k = 2;
        let members = nonzero_knn_discrete(&set, q, k);
        let mut achieved = vec![false; set.len()];
        for _ in 0..20_000 {
            let inst = set.sample_instance(&mut rng);
            let mut order: Vec<usize> = (0..set.len()).collect();
            order.sort_by(|&a, &b| q.dist(inst[a]).partial_cmp(&q.dist(inst[b])).unwrap());
            for &i in order.iter().take(k) {
                achieved[i] = true;
            }
        }
        for (i, &hit) in achieved.iter().enumerate() {
            if hit {
                assert!(
                    members.contains(&i),
                    "point {i} achieved rank ≤ {k} but is not in kNN≠0"
                );
            }
        }
    }

    #[test]
    fn k_larger_than_n() {
        let set = workload::random_disk_set(5, 0.3, 1.0, 21);
        let idx = DiskNonzeroIndex::build(&set);
        let q = uncertain_geom::Point::new(0.0, 0.0);
        assert_eq!(idx.query_k(q, 10).len(), 5);
        assert_eq!(nonzero_knn_disks(&set.regions(), q, 10).len(), 5);
    }
}
