//! `NN≠0` under the L∞ metric with square uncertainty regions — the remark
//! after Theorem 3.1:
//!
//! > "If we use L1 or L∞ metric to compute the distance between points and
//! > use disks in L1 or L∞ metric (i.e., a diamond or a square), then an
//! > NN≠0(q) query can be answered in O(log² n + t) time using O(n log² n)
//! > space."
//!
//! Everything from Lemma 2.1 carries over verbatim because L∞ is a metric
//! and the uncertainty regions are L∞-balls: `δ_i(q) = max(‖q − c_i‖_∞ −
//! h_i, 0)` and `Δ_i(q) = ‖q − c_i‖_∞ + h_i`. The paper's range-tree
//! structure is substituted by the same augmented-kd-tree branch-and-bound
//! as the Euclidean engine, with Chebyshev box distances. (The L1/diamond
//! case is the same structure rotated by 45°: `‖x‖_1 = ‖R x‖_∞` for the
//! rotation-scaling `R(x, y) = ((x+y)/√2 · √2, …)` — use
//! [`SquareRegion::from_l1_diamond`].)

use uncertain_geom::{Aabb, Point};

/// An axis-aligned square uncertainty region: the L∞ ball of radius `half`
/// around `center`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SquareRegion {
    pub center: Point,
    pub half: f64,
}

/// Chebyshev (L∞) distance between points.
#[inline]
pub fn linf_dist(a: Point, b: Point) -> f64 {
    (a.x - b.x).abs().max((a.y - b.y).abs())
}

/// Chebyshev distance from a point to a box (0 inside).
#[inline]
fn linf_dist_to_box(b: &Aabb, p: Point) -> f64 {
    let dx = (b.lo.x - p.x).max(0.0).max(p.x - b.hi.x);
    let dy = (b.lo.y - p.y).max(0.0).max(p.y - b.hi.y);
    dx.max(dy)
}

impl SquareRegion {
    pub fn new(center: Point, half: f64) -> Self {
        assert!(half >= 0.0);
        SquareRegion { center, half }
    }

    /// Models an L1 diamond (center `c`, L1 radius `r`) as a square in the
    /// rotated frame `u = (x+y), v = (x−y)` (the isometry between L1 and
    /// L∞ in the plane). Queries must be rotated with [`to_rotated_frame`].
    pub fn from_l1_diamond(center: Point, r: f64) -> Self {
        SquareRegion {
            center: to_rotated_frame(center),
            half: r,
        }
    }

    /// `δ_i(q)` under L∞.
    #[inline]
    pub fn min_dist(&self, q: Point) -> f64 {
        (linf_dist(self.center, q) - self.half).max(0.0)
    }

    /// `Δ_i(q)` under L∞.
    #[inline]
    pub fn max_dist(&self, q: Point) -> f64 {
        linf_dist(self.center, q) + self.half
    }
}

/// The L1→L∞ change of coordinates: `(x, y) ↦ (x + y, x − y)` (a similarity
/// with factor √2; distances scale uniformly so NN comparisons transfer).
#[inline]
pub fn to_rotated_frame(p: Point) -> Point {
    Point::new(p.x + p.y, p.x - p.y)
}

/// Brute-force `NN≠0` under L∞ (the Lemma 2.1 oracle for this metric).
pub fn nonzero_nn_linf(squares: &[SquareRegion], q: Point) -> Vec<usize> {
    let (best, best_i, second) = super::brute::two_smallest(squares.iter().map(|s| s.max_dist(q)));
    squares
        .iter()
        .enumerate()
        .filter(|&(i, s)| s.min_dist(q) < if i == best_i { second } else { best })
        .map(|(i, _)| i)
        .collect()
}

const LEAF_SIZE: usize = 8;

#[derive(Clone, Debug)]
struct Node {
    bbox: Aabb,
    min_h: f64,
    max_h: f64,
    start: u32,
    end: u32,
    left: u32,
    right: u32,
}

impl Node {
    fn is_leaf(&self) -> bool {
        self.left == u32::MAX
    }
}

/// Branch-and-bound `NN≠0` index for square regions under L∞.
#[derive(Clone, Debug)]
pub struct LinfNonzeroIndex {
    items: Vec<(SquareRegion, u32)>,
    nodes: Vec<Node>,
}

impl LinfNonzeroIndex {
    pub fn build(squares: &[SquareRegion]) -> Self {
        let mut items: Vec<(SquareRegion, u32)> = squares
            .iter()
            .enumerate()
            .map(|(i, &s)| (s, i as u32))
            .collect();
        let mut nodes = vec![];
        if !items.is_empty() {
            let n = items.len();
            Self::build_rec(&mut items, 0, n, &mut nodes);
        }
        LinfNonzeroIndex { items, nodes }
    }

    fn build_rec(
        items: &mut [(SquareRegion, u32)],
        start: usize,
        end: usize,
        nodes: &mut Vec<Node>,
    ) -> u32 {
        let slice = &items[start..end];
        let bbox = Aabb::from_points(slice.iter().map(|&(s, _)| s.center));
        let min_h = slice
            .iter()
            .map(|&(s, _)| s.half)
            .fold(f64::INFINITY, f64::min);
        let max_h = slice
            .iter()
            .map(|&(s, _)| s.half)
            .fold(f64::NEG_INFINITY, f64::max);
        let id = nodes.len() as u32;
        nodes.push(Node {
            bbox,
            min_h,
            max_h,
            start: start as u32,
            end: end as u32,
            left: u32::MAX,
            right: u32::MAX,
        });
        if end - start > LEAF_SIZE {
            let mid = (start + end) / 2;
            if bbox.width() >= bbox.height() {
                items[start..end].select_nth_unstable_by(mid - start, |a, b| {
                    a.0.center.x.partial_cmp(&b.0.center.x).unwrap()
                });
            } else {
                items[start..end].select_nth_unstable_by(mid - start, |a, b| {
                    a.0.center.y.partial_cmp(&b.0.center.y).unwrap()
                });
            }
            let l = Self::build_rec(items, start, mid, nodes);
            let r = Self::build_rec(items, mid, end, nodes);
            nodes[id as usize].left = l;
            nodes[id as usize].right = r;
        }
        id
    }

    pub fn len(&self) -> usize {
        self.items.len()
    }

    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// The two smallest `Δ_i(q)` (L∞): `(best, best id, second)`.
    fn two_min(&self, q: Point) -> Option<(f64, u32, f64)> {
        if self.is_empty() {
            return None;
        }
        let mut best = (f64::INFINITY, 0u32);
        let mut second = f64::INFINITY;
        self.min_rec(0, q, &mut best, &mut second);
        Some((best.0, best.1, second))
    }

    fn min_rec(&self, node: u32, q: Point, best: &mut (f64, u32), second: &mut f64) {
        let n = &self.nodes[node as usize];
        if linf_dist_to_box(&n.bbox, q) + n.min_h >= *second {
            return;
        }
        if n.is_leaf() {
            for &(s, id) in &self.items[n.start as usize..n.end as usize] {
                let d = s.max_dist(q);
                if d < best.0 {
                    *second = best.0;
                    *best = (d, id);
                } else if d < *second {
                    *second = d;
                }
            }
            return;
        }
        self.min_rec(n.left, q, best, second);
        self.min_rec(n.right, q, best, second);
    }

    /// `NN≠0(q)` under L∞ (Lemma 2.1 with `j ≠ i`).
    pub fn query(&self, q: Point) -> Vec<usize> {
        let Some((best, best_id, second)) = self.two_min(q) else {
            return vec![];
        };
        let mut out = vec![];
        self.report_rec(0, q, best, best_id, second, &mut out);
        out
    }

    fn report_rec(
        &self,
        node: u32,
        q: Point,
        best: f64,
        best_id: u32,
        second: f64,
        out: &mut Vec<usize>,
    ) {
        let n = &self.nodes[node as usize];
        if linf_dist_to_box(&n.bbox, q) - n.max_h >= second {
            return;
        }
        if n.is_leaf() {
            for &(s, id) in &self.items[n.start as usize..n.end as usize] {
                let bound = if id == best_id { second } else { best };
                if s.min_dist(q) < bound {
                    out.push(id as usize);
                }
            }
            return;
        }
        self.report_rec(n.left, q, best, best_id, second, out);
        self.report_rec(n.right, q, best, best_id, second, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_squares(n: usize, seed: u64) -> Vec<SquareRegion> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                SquareRegion::new(
                    Point::new(rng.gen_range(-30.0..30.0), rng.gen_range(-30.0..30.0)),
                    rng.gen_range(0.0..3.0),
                )
            })
            .collect()
    }

    #[test]
    fn linf_distances() {
        let s = SquareRegion::new(Point::new(0.0, 0.0), 2.0);
        assert_eq!(s.min_dist(Point::new(5.0, 1.0)), 3.0);
        assert_eq!(s.max_dist(Point::new(5.0, 1.0)), 7.0);
        assert_eq!(s.min_dist(Point::new(1.0, 1.0)), 0.0); // inside
        assert_eq!(linf_dist(Point::new(0.0, 0.0), Point::new(3.0, -4.0)), 4.0);
    }

    #[test]
    fn index_matches_brute_force() {
        for seed in [1u64, 2, 3] {
            let squares = random_squares(120, seed);
            let idx = LinfNonzeroIndex::build(&squares);
            let mut rng = StdRng::seed_from_u64(seed + 50);
            for _ in 0..150 {
                let q = Point::new(rng.gen_range(-40.0..40.0), rng.gen_range(-40.0..40.0));
                let mut got = idx.query(q);
                let mut brute = nonzero_nn_linf(&squares, q);
                got.sort_unstable();
                brute.sort_unstable();
                assert_eq!(got, brute, "at {q}");
            }
        }
    }

    #[test]
    fn far_square_never_nearest() {
        let squares = vec![
            SquareRegion::new(Point::new(0.0, 0.0), 1.0),
            SquareRegion::new(Point::new(3.0, 0.0), 1.0),
            SquareRegion::new(Point::new(100.0, 0.0), 1.0),
        ];
        let idx = LinfNonzeroIndex::build(&squares);
        let mut got = idx.query(Point::new(1.5, 0.0));
        got.sort_unstable();
        assert_eq!(got, vec![0, 1]);
    }

    #[test]
    fn l1_diamond_roundtrip() {
        // Two diamonds on the x-axis; in the rotated frame the nearest
        // relations under L1 are preserved.
        let diamonds = [
            SquareRegion::from_l1_diamond(Point::new(0.0, 0.0), 1.0),
            SquareRegion::from_l1_diamond(Point::new(10.0, 0.0), 1.0),
        ];
        let idx = LinfNonzeroIndex::build(&diamonds);
        // Query near the first diamond (rotate the query too).
        let q = to_rotated_frame(Point::new(1.0, 0.5));
        assert_eq!(idx.query(q), vec![0]);
        let q_mid = to_rotated_frame(Point::new(5.0, 0.0));
        let mut both = idx.query(q_mid);
        both.sort_unstable();
        assert_eq!(both, vec![0, 1]);
    }

    #[test]
    fn certain_squares() {
        // Zero half-width: L∞ classical NN with the j ≠ i convention.
        let squares = vec![
            SquareRegion::new(Point::new(0.0, 0.0), 0.0),
            SquareRegion::new(Point::new(10.0, 0.0), 0.0),
        ];
        let idx = LinfNonzeroIndex::build(&squares);
        assert_eq!(idx.query(Point::new(1.0, 0.0)), vec![0]);
        assert_eq!(idx.query(Point::new(9.0, 3.0)), vec![1]);
    }
}
