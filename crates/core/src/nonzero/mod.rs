//! `NN≠0` queries: all uncertain points with nonzero probability of being
//! the nearest neighbor of a query point (Section 3 of the paper).
//!
//! By Lemma 2.1, `P_i ∈ NN≠0(q)` iff `δ_i(q) < Δ(q) = min_j Δ_j(q)`. Three
//! engines implement this:
//!
//! * [`brute`] — direct evaluation, `O(n)` (`O(N)` discrete); the oracle all
//!   other engines are tested against;
//! * [`delta_query::DiskNonzeroIndex`] — the Theorem 3.1-style two-stage
//!   structure for disk supports (near-linear space, logarithmic-ish query);
//! * [`discrete_query::DiscreteNonzeroIndex`] — the Theorem 3.2-style
//!   structure for discrete distributions (`O(√N + t)`-type query via
//!   kd-tree range reporting).

pub mod brute;
pub mod delta_query;
pub mod discrete_query;
pub mod knn;
pub mod linf;

pub use brute::{nonzero_nn_discrete, nonzero_nn_disks};
pub use delta_query::DiskNonzeroIndex;
pub use discrete_query::{DiscreteNonzeroIndex, QueryScratch};
pub use knn::{nonzero_knn_discrete, nonzero_knn_disks};
pub use linf::{LinfNonzeroIndex, SquareRegion};
