//! Exact quantification probabilities.
//!
//! **Discrete** (Eq. (2)): sort all `N` locations by distance from `q` and
//! sweep once, maintaining the running product `Π_j (1 − G_{q,j}(r))` with
//! careful handling of exhausted points (factors that reach zero) and of
//! distance ties — Eq. (2)'s cdf uses `≤ r`, so *all* locations at the same
//! distance count against each other.
//!
//! **Continuous** (Eq. (1)): composite-Simpson quadrature of
//! `∫ g_{q,i}(r) Π_{j≠i}(1 − G_{q,j}(r)) dr` with analytic `g`/`G` for
//! uniform disks (quadrature-backed for the other pdf models). This is the
//! reference oracle the approximation algorithms are tested against.

use crate::model::{distance, DiscreteSet, DiskSet};
use crate::quantification::sweep::{sweep, SortedSlab, SweepEntry};
use uncertain_geom::Point;

/// The canonical flat entry list of a set at a query: one
/// `(distance, site, weight)` entry per location, pushed in ascending
/// `(site, location)` order — the tie order every [`SweepSource`]
/// (crate::quantification::sweep::SweepSource) reproduces.
pub fn sweep_entries(set: &DiscreteSet, q: Point) -> Vec<SweepEntry> {
    set.all_locations()
        .map(|(i, _, loc, w)| (q.dist(loc), i, w))
        .collect()
}

/// All quantification probabilities `π_i(q)` for a discrete set, by the
/// Eq. (2) sweep. `O(N log N)` time, `O(N)` space.
///
/// The distance pass runs on the chunked-lane SoA kernel
/// ([`LocationSlab`](crate::quantification::slab::LocationSlab)); it is
/// bit-identical to sweeping [`sweep_entries`] directly (the slab's
/// differential tests pin this), so this stays the exact oracle.
pub fn quantification_discrete(set: &DiscreteSet, q: Point) -> Vec<f64> {
    let slab = crate::quantification::slab::LocationSlab::from_set(set);
    let mut scratch = vec![];
    let mut entries = vec![];
    slab.entries_into(q, &mut scratch, &mut entries);
    quantification_sweep(entries, set.len())
}

/// The Eq. (2) sweep over pre-assembled `(distance, point index, weight)`
/// entries (one per location; indices dense in `0..n`). This is the
/// single-slab entry to the shared [`sweep`] core behind every exact
/// discrete evaluation — the static path above, the `V_Pr` per-cell
/// labels, the spiral search's truncated estimate, and the dynamic
/// (Bentley–Saxe) layer's fresh path all go through it, and the dynamic
/// layer's *merged* path feeds the same core through a k-way merge of
/// per-bucket streams. Identical entry sequences go through identical
/// arithmetic, which is what makes dynamic answers **bit-identical** to a
/// fresh static build. The sort is stable, so ties between equal distances
/// keep the caller's entry order.
pub fn quantification_sweep(entries: Vec<SweepEntry>, n: usize) -> Vec<f64> {
    let mut slab = SortedSlab::new(entries);
    sweep(&mut slab, n)
}

/// Sparse variant of [`quantification_discrete`]: only `(i, π_i)` with
/// `π_i > threshold`, sorted by decreasing probability.
pub fn quantification_discrete_sparse(
    set: &DiscreteSet,
    q: Point,
    threshold: f64,
) -> Vec<(usize, f64)> {
    let pi = quantification_discrete(set, q);
    let mut out: Vec<(usize, f64)> = pi
        .into_iter()
        .enumerate()
        .filter(|&(_, p)| p > threshold)
        .collect();
    out.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    out
}

/// All `π_i(q)` for a continuous (disk-support) set by quadrature of
/// Eq. (1) with `panels` Simpson panels per point (2048 is a good default
/// for ~1e-4 accuracy). `O(n² · panels)` — this is the *reference oracle*,
/// not a production query path (the paper calls exact continuous evaluation
/// "often expensive"; its answer is the approximation algorithms of
/// Sections 4.2–4.3).
#[allow(clippy::needless_range_loop)] // `i` indexes both `pi` and `set.points`
pub fn quantification_continuous(set: &DiskSet, q: Point, panels: usize) -> Vec<f64> {
    let n = set.len();
    let mut pi = vec![0.0f64; n];
    if n == 0 {
        return pi;
    }
    if n == 1 {
        pi[0] = 1.0;
        return pi;
    }
    for i in 0..n {
        let pi_i = &set.points[i];
        // Point masses (zero-radius supports) have a Dirac distance
        // distribution: Eq. (1) degenerates to a plain product at r = d.
        if pi_i.region.radius == 0.0 {
            let r0 = q.dist(pi_i.region.center);
            let mut prod = 1.0;
            for j in 0..n {
                if j != i {
                    prod *= 1.0 - distance::cdf(&set.points[j], q, r0);
                }
            }
            pi[i] = prod;
            continue;
        }
        let lo = pi_i.min_dist(q);
        // The integrand vanishes once any other point is surely closer.
        let other_cap = (0..n)
            .filter(|&j| j != i)
            .map(|j| set.points[j].max_dist(q))
            .fold(f64::INFINITY, f64::min);
        let hi = pi_i.max_dist(q).min(other_cap);
        if hi <= lo {
            continue;
        }
        pi[i] = distance::simpson(lo, hi, panels, |r| {
            let g = distance::pdf(pi_i, q, r);
            if g == 0.0 {
                return 0.0;
            }
            let mut prod = g;
            for j in 0..n {
                if j == i {
                    continue;
                }
                prod *= 1.0 - distance::cdf(&set.points[j], q, r);
                if prod == 0.0 {
                    break;
                }
            }
            prod
        });
    }
    pi
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::DiscreteUncertainPoint;
    use crate::workload;
    use uncertain_geom::{Circle, Point};

    fn p(x: f64, y: f64) -> Point {
        Point::new(x, y)
    }

    #[test]
    fn two_point_coin_flip() {
        // P_1 at 0 or 10 (fair), P_2 certain at 3. From q = 1:
        // d(P_2) = 2; P_1 wins iff it is at 0 (dist 1 < 2).
        let set = DiscreteSet::new(vec![
            DiscreteUncertainPoint::new(vec![p(0.0, 0.0), p(10.0, 0.0)], vec![0.5, 0.5]),
            DiscreteUncertainPoint::certain(p(3.0, 0.0)),
        ]);
        let pi = quantification_discrete(&set, p(1.0, 0.0));
        assert!((pi[0] - 0.5).abs() < 1e-12);
        assert!((pi[1] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn probabilities_sum_to_one_discrete() {
        for seed in [3u64, 4, 5] {
            let set = workload::random_discrete_set(25, 4, 6.0, seed);
            for q in workload::random_queries(30, 60.0, seed) {
                let pi = quantification_discrete(&set, q);
                let total: f64 = pi.iter().sum();
                assert!(
                    (total - 1.0).abs() < 1e-9,
                    "Σπ = {total} at {q} (seed {seed})"
                );
                assert!(pi.iter().all(|&x| (-1e-12..=1.0 + 1e-12).contains(&x)));
            }
        }
    }

    #[test]
    fn ties_are_shared() {
        // Two certain points at the same distance from q: Eq. (2) gives each
        // a factor (1 − 1) for the other — ties annihilate both. This
        // mirrors the paper's convention (G uses ≤), where exact ties are a
        // measure-zero event that the sweep resolves to zero probability.
        let set = DiscreteSet::new(vec![
            DiscreteUncertainPoint::certain(p(1.0, 0.0)),
            DiscreteUncertainPoint::certain(p(-1.0, 0.0)),
        ]);
        let pi = quantification_discrete(&set, p(0.0, 0.0));
        assert_eq!(pi, vec![0.0, 0.0]);
    }

    #[test]
    fn brute_force_enumeration_cross_check() {
        // For tiny instances, enumerate all k^n instantiations and compare.
        let set = DiscreteSet::new(vec![
            DiscreteUncertainPoint::new(vec![p(0.0, 0.0), p(6.0, 0.0)], vec![0.3, 0.7]),
            DiscreteUncertainPoint::new(vec![p(2.0, 1.0), p(4.0, -1.0)], vec![0.6, 0.4]),
            DiscreteUncertainPoint::new(vec![p(1.0, -2.0), p(3.0, 2.0)], vec![0.5, 0.5]),
        ]);
        let queries = workload::random_queries(25, 12.0, 8);
        for q in queries {
            let pi = quantification_discrete(&set, q);
            // Enumerate 2^3 instantiations.
            let mut brute = [0.0f64; 3];
            for a in 0..2 {
                for b in 0..2 {
                    for c in 0..2 {
                        let locs = [
                            set.points[0].locations()[a],
                            set.points[1].locations()[b],
                            set.points[2].locations()[c],
                        ];
                        let w = set.points[0].weights()[a]
                            * set.points[1].weights()[b]
                            * set.points[2].weights()[c];
                        let (mut best, mut best_d) = (0usize, f64::INFINITY);
                        let mut tie = false;
                        for (i, &l) in locs.iter().enumerate() {
                            let d = q.dist(l);
                            if d < best_d {
                                best_d = d;
                                best = i;
                                tie = false;
                            } else if d == best_d {
                                tie = true;
                            }
                        }
                        if !tie {
                            brute[best] += w;
                        }
                    }
                }
            }
            for i in 0..3 {
                assert!(
                    (pi[i] - brute[i]).abs() < 1e-12,
                    "π_{i}: sweep {} vs enumeration {} at {q}",
                    pi[i],
                    brute[i]
                );
            }
        }
    }

    #[test]
    fn continuous_two_disjoint_disks_far_query() {
        // Disk A much closer than disk B but both reachable: π_A close to 1.
        let set = DiskSet::uniform(vec![
            Circle::new(p(0.0, 0.0), 1.0),
            Circle::new(p(10.0, 0.0), 1.0),
        ]);
        let pi = quantification_continuous(&set, p(2.0, 0.0), 512);
        assert!(pi[0] > 0.999, "{pi:?}");
        assert!((pi[0] + pi[1] - 1.0).abs() < 1e-3);
    }

    #[test]
    fn continuous_symmetric_disks_split_evenly() {
        let set = DiskSet::uniform(vec![
            Circle::new(p(-3.0, 0.0), 1.0),
            Circle::new(p(3.0, 0.0), 1.0),
        ]);
        let pi = quantification_continuous(&set, p(0.0, 0.0), 1024);
        assert!((pi[0] - 0.5).abs() < 1e-3, "{pi:?}");
        assert!((pi[1] - 0.5).abs() < 1e-3, "{pi:?}");
    }

    #[test]
    fn continuous_probabilities_sum_to_one() {
        let set = workload::random_disk_set(6, 0.5, 2.0, 17);
        for q in workload::random_queries(5, 40.0, 18) {
            let pi = quantification_continuous(&set, q, 2048);
            let total: f64 = pi.iter().sum();
            assert!((total - 1.0).abs() < 5e-3, "Σπ = {total} at {q}");
        }
    }

    #[test]
    fn sparse_view_is_sorted_and_filtered() {
        let set = workload::random_discrete_set(20, 3, 5.0, 6);
        let q = p(0.0, 0.0);
        let sparse = quantification_discrete_sparse(&set, q, 0.01);
        for w in sparse.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
        for &(_, v) in &sparse {
            assert!(v > 0.01);
        }
    }
}
