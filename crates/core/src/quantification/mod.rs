//! Quantification probabilities `π_i(q)` (Section 4 of the paper).
//!
//! `π_i(q)` is the probability that `P_i` is the nearest neighbor of `q`
//! (Eq. (1) continuous / Eq. (2) discrete). Four evaluation strategies:
//!
//! * [`exact`] — direct evaluation: the Eq. (2) distance-sweep for discrete
//!   sets (`O(N log N)` per query) and adaptive quadrature of Eq. (1) for
//!   disk sets (the reference oracle);
//! * [`vpr::ProbabilisticVoronoiDiagram`] — Theorem 4.2: precompute the
//!   `O(N⁴)`-size subdivision on which all `π_i` are constant; `O(log N + t)`
//!   queries;
//! * [`monte_carlo::MonteCarloPnn`] — Theorems 4.3/4.5: `s = O(ε⁻² log(N/δ))`
//!   sampled instantiations, additive error `ε` with probability `1 − δ`;
//! * [`spiral::SpiralSearch`] — Theorem 4.7: deterministic additive-`ε`
//!   approximation from the `m(ρ, ε) = ⌈ρk ln(1/ε)⌉ + k − 1` nearest
//!   locations.

pub mod exact;
pub mod monte_carlo;
pub mod slab;
pub mod spiral;
pub mod sweep;
pub mod vpr;

pub use monte_carlo::{MonteCarloPnn, SampleBackend};
pub use slab::LocationSlab;
pub use spiral::SpiralSearch;
pub use sweep::{KWayMerge, SortedSlab, SweepEntry, SweepSource};
pub use vpr::ProbabilisticVoronoiDiagram;
