//! The Monte-Carlo quantification structure (Section 4.2, Theorems 4.3/4.5).
//!
//! Preprocessing draws `s` random instantiations `R_1, …, R_s` of the whole
//! uncertain set and indexes each for nearest-neighbor queries. A query `q`
//! asks each instantiation "who is your nearest neighbor?" and returns vote
//! frequencies: `π̂_i(q) = c_i / s`. By Chernoff–Hoeffding + a union bound
//! over the cells of the probabilistic Voronoi diagram (Lemma 4.1 bounds
//! their number by `O(N⁴)`),
//!
//! ```text
//!   s = ⌈ ln(2n|Q|/δ) / (2ε²) ⌉
//! ```
//!
//! instantiations guarantee `|π̂_i(q) − π_i(q)| ≤ ε` for *all* `q` and `i`
//! simultaneously with probability ≥ 1 − δ. For a single (or polynomially
//! many) query points the same bound without the `|Q|` factor suffices;
//! [`samples_for_queries`] exposes both sizings.
//!
//! The per-instantiation index is pluggable (ablation A2): a kd-tree (used
//! by default) or the Delaunay-triangulation point location that the paper
//! describes (`Vor(R_j)` + point location).

use crate::model::{DiscreteSet, DiskSet};
use rand::Rng;
use uncertain_geom::Point;
use uncertain_spatial::KdTree;
use uncertain_voronoi::Delaunay;

/// Which nearest-neighbor index backs each instantiation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SampleBackend {
    /// kd-tree nearest-neighbor queries (default; fastest).
    KdTree,
    /// Delaunay triangulation + greedy point location — the structure the
    /// paper literally describes (`Vor(R_j)` + point location).
    Delaunay,
}

enum Index {
    Kd(KdTree),
    Del(Delaunay),
}

impl Index {
    fn nearest(&self, q: Point) -> Option<u32> {
        match self {
            Index::Kd(t) => t.nearest(q).map(|(_, id, _)| id),
            Index::Del(d) => d.nearest_site(q),
        }
    }
}

/// Monte-Carlo estimator of all quantification probabilities.
pub struct MonteCarloPnn {
    indexes: Vec<Index>,
    n: usize,
}

/// Number of instantiations for additive error `ε` with failure probability
/// `δ`, simultaneously for `query_cells` distinct queries (pass the
/// `O(N⁴)` bound of Lemma 4.1 — or use [`samples_for_all_queries`] — for a
/// guarantee over *all* of `R²`).
pub fn samples_for_queries(eps: f64, delta: f64, n: usize, query_cells: usize) -> usize {
    assert!(eps > 0.0 && eps < 1.0 && delta > 0.0 && delta < 1.0);
    let q = (query_cells.max(1)) as f64;
    ((2.0 * n as f64 * q / delta).ln() / (2.0 * eps * eps)).ceil() as usize
}

/// The Theorem 4.3 sizing: a guarantee for all query points simultaneously,
/// using the `|Q| = O((nk)⁴)` bound from Lemma 4.1.
pub fn samples_for_all_queries(eps: f64, delta: f64, n: usize, k: usize) -> usize {
    let nn = (n * k).max(2) as f64;
    let cells = nn.powi(4).min(1e300);
    ((2.0 * n as f64 * cells / delta).ln() / (2.0 * eps * eps)).ceil() as usize
}

impl MonteCarloPnn {
    /// Builds the estimator from any instantiation sampler. `sampler` must
    /// return one location per uncertain point, in index order.
    pub fn build_with<R: Rng + ?Sized>(
        n: usize,
        s: usize,
        backend: SampleBackend,
        rng: &mut R,
        mut sampler: impl FnMut(&mut R) -> Vec<Point>,
    ) -> Self {
        assert!(s > 0, "need at least one instantiation");
        let indexes = (0..s)
            .map(|_| {
                let locs = sampler(rng);
                debug_assert_eq!(locs.len(), n);
                match backend {
                    SampleBackend::KdTree => Index::Kd(KdTree::from_points(&locs)),
                    SampleBackend::Delaunay => Index::Del(Delaunay::build(&locs)),
                }
            })
            .collect();
        MonteCarloPnn { indexes, n }
    }

    /// Builds from a discrete set (Theorem 4.3).
    pub fn build_discrete<R: Rng + ?Sized>(
        set: &DiscreteSet,
        s: usize,
        backend: SampleBackend,
        rng: &mut R,
    ) -> Self {
        Self::build_with(set.len(), s, backend, rng, |r| set.sample_instance(r))
    }

    /// Builds from a continuous set (Theorem 4.5 — the continuous case
    /// reduces to sampling instantiations directly; the paper's
    /// per-point discretization argument, Lemma 4.4, is what justifies that
    /// a bounded number of instantiations suffices).
    pub fn build_continuous<R: Rng + ?Sized>(
        set: &DiskSet,
        s: usize,
        backend: SampleBackend,
        rng: &mut R,
    ) -> Self {
        Self::build_with(set.len(), s, backend, rng, |r| set.sample_instance(r))
    }

    /// Number of stored instantiations `s`.
    pub fn num_samples(&self) -> usize {
        self.indexes.len()
    }

    /// Estimates `π_i(q)` for every `i`: returns a dense vector of vote
    /// frequencies (at most `s` of them nonzero). `O(s log n)` per query.
    pub fn estimate_all(&self, q: Point) -> Vec<f64> {
        let mut votes = vec![0usize; self.n];
        for idx in &self.indexes {
            if let Some(i) = idx.nearest(q) {
                votes[i as usize] += 1;
            }
        }
        let s = self.indexes.len() as f64;
        votes.into_iter().map(|c| c as f64 / s).collect()
    }

    /// Sparse estimates `(i, π̂_i)` with `π̂_i > 0`, sorted by decreasing
    /// probability.
    pub fn estimate_sparse(&self, q: Point) -> Vec<(usize, f64)> {
        let mut out: Vec<(usize, f64)> = self
            .estimate_all(q)
            .into_iter()
            .enumerate()
            .filter(|&(_, v)| v > 0.0)
            .collect();
        out.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
        out
    }

    /// Estimate for a single point.
    pub fn estimate(&self, q: Point, i: usize) -> f64 {
        self.estimate_all(q)[i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quantification::exact::{quantification_continuous, quantification_discrete};
    use crate::workload;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn sizing_formula_matches_theorem() {
        // s grows like 1/ε²·log(N/δ).
        let s1 = samples_for_queries(0.1, 0.05, 10, 1);
        let s2 = samples_for_queries(0.05, 0.05, 10, 1);
        assert!(s2 > 3 * s1, "halving ε must ~quadruple s: {s1} -> {s2}");
        let all = samples_for_all_queries(0.1, 0.05, 10, 2);
        assert!(all > s1);
    }

    #[test]
    fn discrete_estimates_within_eps() {
        let set = workload::random_discrete_set(15, 3, 6.0, 21);
        let eps = 0.05;
        let s = samples_for_queries(eps, 0.01, set.len(), 50);
        let mut rng = StdRng::seed_from_u64(1);
        let mc = MonteCarloPnn::build_discrete(&set, s, SampleBackend::KdTree, &mut rng);
        for q in workload::random_queries(25, 60.0, 5) {
            let exact = quantification_discrete(&set, q);
            let est = mc.estimate_all(q);
            for i in 0..set.len() {
                assert!(
                    (est[i] - exact[i]).abs() <= eps,
                    "i={i} q={q}: est {} exact {}",
                    est[i],
                    exact[i]
                );
            }
        }
    }

    #[test]
    fn delaunay_backend_agrees_with_kdtree() {
        let set = workload::random_discrete_set(12, 3, 5.0, 33);
        let s = 400;
        // Same RNG seed → identical instantiations → identical votes except
        // for possible NN ties (none, generically).
        let mut rng1 = StdRng::seed_from_u64(9);
        let mut rng2 = StdRng::seed_from_u64(9);
        let kd = MonteCarloPnn::build_discrete(&set, s, SampleBackend::KdTree, &mut rng1);
        let del = MonteCarloPnn::build_discrete(&set, s, SampleBackend::Delaunay, &mut rng2);
        for q in workload::random_queries(10, 50.0, 2) {
            let a = kd.estimate_all(q);
            let b = del.estimate_all(q);
            for i in 0..set.len() {
                assert!(
                    (a[i] - b[i]).abs() < 1e-12,
                    "backend mismatch at {q}: {} vs {}",
                    a[i],
                    b[i]
                );
            }
        }
    }

    #[test]
    fn continuous_estimates_match_quadrature() {
        let set = workload::random_disk_set(8, 0.5, 2.0, 55);
        let mut rng = StdRng::seed_from_u64(3);
        let mc = MonteCarloPnn::build_continuous(&set, 4000, SampleBackend::KdTree, &mut rng);
        for q in workload::random_queries(8, 40.0, 4) {
            let exact = quantification_continuous(&set, q, 2048);
            let est = mc.estimate_all(q);
            for i in 0..set.len() {
                assert!(
                    (est[i] - exact[i]).abs() < 0.05,
                    "i={i} q={q}: est {} exact {}",
                    est[i],
                    exact[i]
                );
            }
        }
    }

    #[test]
    fn sparse_view() {
        let set = workload::random_discrete_set(10, 2, 4.0, 8);
        let mut rng = StdRng::seed_from_u64(2);
        let mc = MonteCarloPnn::build_discrete(&set, 200, SampleBackend::KdTree, &mut rng);
        let q = Point::new(0.0, 0.0);
        let sparse = mc.estimate_sparse(q);
        let total: f64 = sparse.iter().map(|&(_, v)| v).sum();
        assert!((total - 1.0).abs() < 1e-12);
        for w in sparse.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
    }
}
