//! Structure-of-arrays location storage for the Eq. (2) sweep's distance
//! pass.
//!
//! Assembling sweep entries is the other hot distance loop (next to the
//! Theorem 3.2 stage-2 scan): one `‖q − loc‖` per location of the set, per
//! query. The canonical scalar form walks `DiscreteSet::all_locations()` —
//! an iterator over nested structs — and pushes `(dist, site, weight)`
//! tuples one at a time. [`LocationSlab`] flattens the set once into
//! parallel `x[]`/`y[]`/`site[]`/`weight[]` arrays so the per-query distance
//! pass runs on the chunked-lane kernel
//! ([`PointSlab::dist_range_into`](uncertain_spatial::PointSlab)) over two
//! contiguous f64 streams.
//!
//! Exactness: the kernel evaluates the same per-element expression as
//! `Point::dist` and the slab preserves the canonical ascending
//! `(site, location)` push order, so the produced entry vector is
//! **bit-identical** (values *and* order) to
//! [`sweep_entries`](crate::quantification::exact::sweep_entries) — the
//! stable distance sort downstream then behaves identically too.

use crate::model::DiscreteSet;
use crate::quantification::sweep::SweepEntry;
use uncertain_geom::Point;
use uncertain_spatial::PointSlab;

/// Flat SoA mirror of a discrete set's locations, in canonical ascending
/// `(site, location)` order.
#[derive(Clone, Debug, Default)]
pub struct LocationSlab {
    pts: PointSlab,
    /// Dense site index of each location.
    site: Vec<u32>,
    /// Normalized weight of each location.
    weight: Vec<f64>,
    /// Number of distinct sites (`max(site) + 1` on non-empty slabs).
    n_sites: usize,
}

impl LocationSlab {
    pub fn new() -> Self {
        LocationSlab::default()
    }

    pub fn with_capacity(locations: usize) -> Self {
        LocationSlab {
            pts: PointSlab::with_capacity(locations),
            site: Vec::with_capacity(locations),
            weight: Vec::with_capacity(locations),
            n_sites: 0,
        }
    }

    /// Flattens `set` (all sites, all locations, canonical order).
    pub fn from_set(set: &DiscreteSet) -> Self {
        let mut slab = LocationSlab::with_capacity(set.total_locations());
        for (i, _, loc, w) in set.all_locations() {
            slab.push(i, loc, w);
        }
        slab.n_sites = set.len();
        slab
    }

    /// Appends one location. Sites must arrive in non-decreasing dense
    /// order to preserve the canonical tie order.
    #[inline]
    pub fn push(&mut self, site: usize, loc: Point, w: f64) {
        debug_assert!(
            self.site.last().is_none_or(|&s| s as usize <= site),
            "sites must be pushed in non-decreasing order"
        );
        self.pts.push(loc);
        self.site.push(site as u32);
        self.weight.push(w);
        self.n_sites = self.n_sites.max(site + 1);
    }

    /// Number of locations.
    #[inline]
    pub fn len(&self) -> usize {
        self.site.len()
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.site.is_empty()
    }

    /// Number of sites the slab spans (the `n` to pass to the sweep).
    pub fn n_sites(&self) -> usize {
        self.n_sites
    }

    /// The coordinate slab (for callers that need raw point access).
    pub fn points(&self) -> &PointSlab {
        &self.pts
    }

    /// Writes the canonical entry list for query `q` into `out`
    /// (`(distance, site, weight)` per location, canonical order), using the
    /// chunked-lane distance kernel. `dist_scratch` is a reusable buffer —
    /// pass the same `Vec` across queries to amortize the allocation.
    pub fn entries_into(&self, q: Point, dist_scratch: &mut Vec<f64>, out: &mut Vec<SweepEntry>) {
        self.pts.dist_all_into(q, dist_scratch);
        out.clear();
        out.reserve(self.len());
        for (i, &d) in dist_scratch.iter().enumerate() {
            out.push((d, self.site[i] as usize, self.weight[i]));
        }
    }

    /// Convenience wrapper over [`Self::entries_into`] with fresh buffers.
    pub fn entries(&self, q: Point) -> Vec<SweepEntry> {
        let mut scratch = vec![];
        let mut out = vec![];
        self.entries_into(q, &mut scratch, &mut out);
        out
    }

    /// Scalar reference: per-location `Point::dist` calls, same order. The
    /// differential tests pin [`Self::entries_into`] bit-identical to this.
    pub fn entries_scalar(&self, q: Point) -> Vec<SweepEntry> {
        (0..self.len())
            .map(|i| {
                (
                    q.dist(self.pts.get(i)),
                    self.site[i] as usize,
                    self.weight[i],
                )
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quantification::exact::{quantification_discrete, sweep_entries};
    use crate::quantification::sweep::{sweep, SortedSlab};
    use crate::workload;

    #[test]
    fn slab_entries_bit_identical_to_canonical() {
        for seed in [1u64, 9, 23] {
            let set = workload::random_discrete_set(30, 4, 5.0, seed);
            let slab = LocationSlab::from_set(&set);
            assert_eq!(slab.len(), set.total_locations());
            assert_eq!(slab.n_sites(), set.len());
            for q in workload::random_queries(20, 60.0, seed + 1) {
                let canonical = sweep_entries(&set, q);
                let kernel = slab.entries(q);
                let scalar = slab.entries_scalar(q);
                assert_eq!(kernel.len(), canonical.len());
                for k in 0..kernel.len() {
                    assert_eq!(kernel[k].0.to_bits(), canonical[k].0.to_bits());
                    assert_eq!(kernel[k].1, canonical[k].1);
                    assert_eq!(kernel[k].2.to_bits(), canonical[k].2.to_bits());
                    assert_eq!(scalar[k].0.to_bits(), canonical[k].0.to_bits());
                }
            }
        }
    }

    #[test]
    fn slab_path_quantification_matches_direct() {
        let set = workload::random_discrete_set(20, 3, 4.0, 7);
        let slab = LocationSlab::from_set(&set);
        let mut scratch = vec![];
        let mut entries = vec![];
        for q in workload::random_queries(15, 50.0, 8) {
            slab.entries_into(q, &mut scratch, &mut entries);
            let mut sorted = SortedSlab::new(std::mem::take(&mut entries));
            let via_slab = sweep(&mut sorted, slab.n_sites());
            let direct = quantification_discrete(&set, q);
            for (a, b) in via_slab.iter().zip(&direct) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    #[test]
    fn empty_slab() {
        let slab = LocationSlab::new();
        assert!(slab.is_empty());
        assert_eq!(slab.n_sites(), 0);
        assert!(slab
            .entries(uncertain_geom::Point::new(0.0, 0.0))
            .is_empty());
    }
}
