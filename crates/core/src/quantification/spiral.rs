//! Spiral search (Section 4.3, Lemma 4.6 / Theorem 4.7).
//!
//! For discrete uncertain points whose location-probability spread is
//! `ρ = max w / min w`, the `m(ρ, ε) = ⌈ρ·k·ln(1/ε)⌉ + k − 1` locations
//! nearest to the query already determine every `π_i(q)` up to additive
//! error `ε`: any location behind them is blocked by so much probability
//! mass that its contribution is below `ε` (Lemma 4.6). The estimate `π̂_i`
//! computed from the truncated set *underestimates*:
//! `π̂_i(q) ≤ π_i(q) ≤ π̂_i(q) + ε`.
//!
//! Retrieval uses a best-first incremental k-nearest-neighbor iterator over
//! a kd-tree (the paper's own Remark (ii) recommends exactly this kind of
//! practical substitute for the optimal but unimplementable structure of
//! [AC09]).
//!
//! The module also reproduces the Remark (i) counterexample showing that the
//! tempting alternative — simply ignoring locations with weight `< ε/k` —
//! can corrupt other points' probabilities by more than `2ε`.

use crate::model::{DiscreteSet, DiscreteUncertainPoint};
use crate::quantification::sweep::{self, SortedSlab, SweepEntry};
use uncertain_geom::Point;
use uncertain_spatial::KdTree;

/// Deterministic additive-ε quantification structure (Theorem 4.7).
///
/// ```
/// use uncertain_geom::Point;
/// use uncertain_nn::model::{DiscreteSet, DiscreteUncertainPoint};
/// use uncertain_nn::quantification::SpiralSearch;
///
/// let set = DiscreteSet::new(vec![
///     DiscreteUncertainPoint::uniform(vec![Point::new(0.0, 0.0), Point::new(8.0, 0.0)]),
///     DiscreteUncertainPoint::certain(Point::new(3.0, 0.0)),
/// ]);
/// let spiral = SpiralSearch::build(&set);
/// let pi = spiral.estimate_all(Point::new(1.0, 0.0), 0.01);
/// assert!((pi[0] - 0.5).abs() <= 0.01); // P_0 wins iff it sits at the origin
/// ```
pub struct SpiralSearch {
    kd: KdTree,
    /// Flattened weights; payloads in `kd` index into this and `owner`.
    weights: Vec<f64>,
    owner: Vec<u32>,
    n: usize,
    k_max: usize,
    rho: f64,
}

impl SpiralSearch {
    /// Builds the structure. `O(N log N)`.
    pub fn build(set: &DiscreteSet) -> Self {
        let mut weights = vec![];
        let mut owner = vec![];
        let mut items = vec![];
        for (i, _, loc, w) in set.all_locations() {
            items.push((loc, weights.len() as u32));
            weights.push(w);
            owner.push(i as u32);
        }
        SpiralSearch {
            kd: KdTree::build(items),
            weights,
            owner,
            n: set.len(),
            k_max: set.max_k(),
            rho: set.spread(),
        }
    }

    /// The retrieval budget `m(ρ, ε) = ⌈ρ k ln(1/ε)⌉ + k − 1` (Section 4.3).
    pub fn retrieval_budget(&self, eps: f64) -> usize {
        assert!(eps > 0.0 && eps < 1.0);
        let m = (self.rho * self.k_max as f64 * (1.0 / eps).ln()).ceil() as usize;
        (m + self.k_max.saturating_sub(1)).min(self.weights.len())
    }

    /// The probability spread `ρ` of the indexed set.
    pub fn spread(&self) -> f64 {
        self.rho
    }

    /// Estimates all `π_i(q)` within additive error `ε`: dense vector, with
    /// unretrieved points implicitly 0. `O(m log N)` per query with
    /// `m = m(ρ, ε)`.
    pub fn estimate_all(&self, q: Point, eps: f64) -> Vec<f64> {
        let m = self.retrieval_budget(eps);
        self.estimate_with_budget(q, m)
    }

    /// Like [`estimate_all`](Self::estimate_all) but with an explicit
    /// retrieval budget (used by the experiments to chart error vs. m).
    pub fn estimate_with_budget(&self, q: Point, m: usize) -> Vec<f64> {
        if self.weights.is_empty() {
            return vec![0.0f64; self.n];
        }
        // Retrieve the m nearest locations — plus all ties at the cutoff
        // distance, so the sweep's `≤` semantics stay exact.
        let mut retrieved: Vec<(f64, u32)> = Vec::with_capacity(m + 4);
        let mut iter = self.kd.nearest_iter(q);
        for (_, id, d) in iter.by_ref() {
            if retrieved.len() >= m && d > retrieved.last().map_or(0.0, |&(dd, _)| dd) {
                break;
            }
            retrieved.push((d, id));
        }
        // Same sweep core as the exact Eq. (2) evaluator, over the
        // truncated entry stream. The kd iterator yields non-decreasing
        // distances, so the slab's stable sort keeps the retrieval order
        // within ties — the entry sequence (and hence every output bit) is
        // unchanged from an inline sweep over `retrieved`.
        let entries: Vec<SweepEntry> = retrieved
            .iter()
            .map(|&(d, rid)| {
                (
                    d,
                    self.owner[rid as usize] as usize,
                    self.weights[rid as usize],
                )
            })
            .collect();
        let mut slab = SortedSlab::new(entries);
        sweep::sweep(&mut slab, self.n)
    }

    /// Sparse estimates `(i, π̂_i)` with `π̂_i > 0`, sorted descending.
    pub fn estimate_sparse(&self, q: Point, eps: f64) -> Vec<(usize, f64)> {
        let mut out: Vec<(usize, f64)> = self
            .estimate_all(q, eps)
            .into_iter()
            .enumerate()
            .filter(|&(_, v)| v > 0.0)
            .collect();
        out.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
        out
    }
}

/// The Remark (i) counterexample: an instance where dropping all locations
/// of weight `< ε/k` flips the ranking of the two most-probable nearest
/// neighbors by more than `2ε`. Returns `(set, query)`; `P_0` is the point
/// that truly has the higher probability.
pub fn low_weight_counterexample(n: usize, eps: f64) -> (DiscreteSet, Point) {
    assert!(n >= 6 && eps > 0.0 && eps < 0.1);
    // The swarm weight 2/n must fall below the naive threshold ε/k = ε/2.
    assert!(
        n as f64 > 4.0 / eps,
        "need n > 4/ε for the swarm to be truncated"
    );
    let q = Point::new(0.0, 0.0);
    let far = Point::new(1000.0, 0.0); // "elsewhere" for the residual mass
    let mut points = vec![];
    // P_0: nearest location p1 at distance 1, weight 3ε.
    points.push(DiscreteUncertainPoint::new(
        vec![Point::new(1.0, 0.0), far],
        vec![3.0 * eps, 1.0 - 3.0 * eps],
    ));
    // P_1: location p2 just behind the swarm, weight 5ε.
    points.push(DiscreteUncertainPoint::new(
        vec![Point::new(3.0, 0.0), far],
        vec![5.0 * eps, 1.0 - 5.0 * eps],
    ));
    // n/2 "swarm" points between them, each with weight 2/n ≪ ε at
    // distance 2.
    let swarm = n / 2;
    for s in 0..swarm {
        let angle = std::f64::consts::TAU * (s as f64) / (swarm as f64);
        let loc = Point::new(2.0 * angle.cos(), 2.0 * angle.sin());
        let w = 2.0 / n as f64;
        points.push(DiscreteUncertainPoint::new(
            vec![loc, far],
            vec![w, 1.0 - w],
        ));
    }
    (DiscreteSet::new(points), q)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quantification::exact::quantification_discrete;
    use crate::workload;

    #[test]
    fn estimates_within_eps_of_exact() {
        for seed in [1u64, 2] {
            let set = workload::random_discrete_set(30, 4, 6.0, seed);
            let ss = SpiralSearch::build(&set);
            for eps in [0.2, 0.05, 0.01] {
                for q in workload::random_queries(40, 60.0, seed ^ 7) {
                    let exact = quantification_discrete(&set, q);
                    let est = ss.estimate_all(q, eps);
                    for i in 0..set.len() {
                        let diff = exact[i] - est[i];
                        // One-sided: truncation only *under*estimates.
                        assert!(
                            (-1e-9..=eps + 1e-9).contains(&diff),
                            "i={i} eps={eps} q={q}: est {} exact {}",
                            est[i],
                            exact[i]
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn high_spread_needs_larger_budget() {
        // Large sets so the budget is not clipped by the total location
        // count.
        let lo = workload::spread_discrete_set(200, 3, 1.0, 5);
        let hi = workload::spread_discrete_set(200, 3, 32.0, 5);
        let ss_lo = SpiralSearch::build(&lo);
        let ss_hi = SpiralSearch::build(&hi);
        assert!(ss_hi.retrieval_budget(0.05) > 4 * ss_lo.retrieval_budget(0.05));
    }

    #[test]
    fn full_budget_reproduces_exact() {
        let set = workload::random_discrete_set(12, 3, 5.0, 9);
        let ss = SpiralSearch::build(&set);
        let m = set.total_locations();
        for q in workload::random_queries(20, 50.0, 10) {
            let exact = quantification_discrete(&set, q);
            let est = ss.estimate_with_budget(q, m);
            for i in 0..set.len() {
                assert!((exact[i] - est[i]).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn counterexample_flips_ranking_under_naive_truncation() {
        let eps = 0.01;
        let (set, q) = low_weight_counterexample(2000, eps);
        let exact = quantification_discrete(&set, q);
        // Ground truth (paper's Remark): π_0 ≈ 3ε beats π_1 < 2ε... more
        // precisely π_1 = 5ε(1−3ε)(1−2/n)^{n/2} < 5ε/e^{1·...} — just assert
        // the ordering and the naive flip.
        assert!(
            exact[0] > exact[1],
            "exact: π_0 {} must beat π_1 {}",
            exact[0],
            exact[1]
        );
        // Naive truncation: drop all locations with weight < ε/k (the swarm)
        // and recompute — P_1 now *appears* more probable.
        let k = set.max_k();
        let naive = DiscreteSet::new(
            set.points
                .iter()
                .map(|p| {
                    let kept: Vec<(Point, f64)> = p
                        .locations()
                        .iter()
                        .zip(p.weights())
                        .filter(|&(_, &w)| w >= eps / k as f64)
                        .map(|(&l, &w)| (l, w))
                        .collect();
                    let (locs, ws): (Vec<Point>, Vec<f64>) = kept.into_iter().unzip();
                    DiscreteUncertainPoint::new(locs, ws)
                })
                .collect(),
        );
        let broken = quantification_discrete(&naive, q);
        assert!(
            broken[1] > broken[0],
            "naive truncation should flip the ranking: {} vs {}",
            broken[0],
            broken[1]
        );
        // The spiral search at the same ε keeps the correct ranking.
        let ss = SpiralSearch::build(&set);
        let est = ss.estimate_all(q, eps);
        assert!(
            est[0] > est[1],
            "spiral search must preserve the ranking: {} vs {}",
            est[0],
            est[1]
        );
    }

    #[test]
    fn budget_formula() {
        // Large enough that the budget is not clipped at `total_locations()`
        // (the weight spread ρ can reach 5 with uniform weights in 0.2..1.0,
        // giving m(ρ, 0.01) up to ⌈5·4·ln 100⌉ + 3 = 96 locations).
        let set = workload::random_discrete_set(100, 4, 5.0, 3);
        let ss = SpiralSearch::build(&set);
        let m1 = ss.retrieval_budget(0.1);
        let m2 = ss.retrieval_budget(0.01);
        assert!(m2 > m1);
        assert!(m2 <= set.total_locations());
    }
}
