//! The shared Eq. (2) sweep core and its entry sources.
//!
//! Every exact discrete quantification in the workspace — the static
//! [`quantification_discrete`](crate::quantification::exact::quantification_discrete)
//! evaluator, the `V_Pr` fallback, the spiral search's truncated estimate,
//! and the dynamic layer's per-bucket merged path — is the *same* monotone
//! sweep over `(distance, site, weight)` entries in ascending distance
//! order, maintaining running survival products. What differs is only where
//! the ordered entry stream comes from. This module makes that explicit:
//!
//! * [`SweepSource`] — an ordered entry stream (ascending `(distance, site)`
//!   with per-site location ties in the site's own location order);
//! * [`SortedSlab`] — the single-slab source: one flat entry vector, stably
//!   sorted by distance (the classic `O(N log N)` fresh-sweep path);
//! * [`KWayMerge`] — the mergeable source: a heap-based k-way merge over
//!   per-partition streams that are each already ordered. Because survival
//!   factors multiply independently across sites, a sweep over the merged
//!   stream recombines a partition of the site set **exactly** — the
//!   decomposition the dynamic (Bentley–Saxe) layer exploits to reuse
//!   warm per-bucket summaries across updates;
//! * [`sweep`] — the driver. One piece of arithmetic for every caller, so
//!   two sources that emit the same entry sequence produce **bit-identical**
//!   probability vectors.
//!
//! The driver stops early once two sites have fully entered their cdfs
//! (`zeros ≥ 2`): from that point every η-contribution of Eq. (2) is
//! *exactly* `0.0` (the `zeros ≥ 2` branch returns the constant), so
//! truncating the stream changes no output bit while letting lazily-ordered
//! sources (the k-way merge over kd-tree streams) skip almost all of their
//! entries.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// One sweep entry: `(distance to the query, dense site index, weight)`.
pub type SweepEntry = (f64, usize, f64);

/// Factors below this are treated as exactly zero (weights are normalized,
/// so a fully-dominated point's factor is 0 up to rounding).
pub(crate) const ZERO_THRESH: f64 = 1e-12;

/// An ordered entry stream feeding the Eq. (2) sweep.
///
/// Contract: entries come out in non-decreasing distance, and entries at
/// *equal* distance come out in ascending `(site index, location index)`
/// order — the order a stable distance sort of the canonical flat entry
/// list produces. Two sources honoring the contract over the same entry
/// multiset are interchangeable bit-for-bit under [`sweep`].
pub trait SweepSource {
    /// The next entry, or `None` when the stream is exhausted.
    fn next_entry(&mut self) -> Option<SweepEntry>;
}

/// The single-slab source: a flat entry vector, stably sorted by distance.
///
/// This is the fresh-sweep path — entries pushed in ascending
/// `(site, location)` order keep exactly that order within distance ties.
pub struct SortedSlab {
    entries: std::vec::IntoIter<SweepEntry>,
}

impl SortedSlab {
    /// Sorts `entries` by distance (stable — ties keep push order).
    ///
    /// Uses `f64::total_cmp`, so a corrupt (NaN) distance cannot panic the
    /// sort — NaNs order after every finite distance and the sweep's
    /// arithmetic degrades instead of aborting. Well-formed inputs never
    /// contain one (distances are norms of finite coordinates), which the
    /// debug assertion checks.
    pub fn new(mut entries: Vec<SweepEntry>) -> Self {
        debug_assert!(
            entries.iter().all(|e| e.0.is_finite()),
            "non-finite distance in sweep slab"
        );
        entries.sort_by(|a, b| a.0.total_cmp(&b.0));
        SortedSlab {
            entries: entries.into_iter(),
        }
    }
}

impl SweepSource for SortedSlab {
    #[inline]
    fn next_entry(&mut self) -> Option<SweepEntry> {
        self.entries.next()
    }
}

/// A stream head waiting in the merge heap. Ordered by `(distance, site,
/// stream)`; entries of one site always live in one stream, so the stream
/// index only tie-breaks distinct sites at equal distance — and site order
/// is exactly what the single-slab tie order prescribes.
struct Head {
    d: f64,
    dense: usize,
    w: f64,
    stream: u32,
}

impl Head {
    fn order(&self, other: &Self) -> Ordering {
        // total_cmp: a NaN distance (corrupt input) sorts last instead of
        // panicking the merge heap.
        self.d
            .total_cmp(&other.d)
            .then(self.dense.cmp(&other.dense))
            .then(self.stream.cmp(&other.stream))
    }
}

impl PartialEq for Head {
    fn eq(&self, other: &Self) -> bool {
        self.order(other) == Ordering::Equal
    }
}
impl Eq for Head {}
impl PartialOrd for Head {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Head {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: BinaryHeap is a max-heap, the merge wants the minimum.
        other.order(self)
    }
}

/// K-way merge over per-partition [`SweepSource`]s.
///
/// Each input stream must honor the [`SweepSource`] contract on its own
/// slice of the site set (streams own disjoint sites). The merge then
/// honors it globally: the heap orders heads by `(distance, site)`, which
/// reproduces the stable-sort tie order of the equivalent single slab.
pub struct KWayMerge<S> {
    streams: Vec<S>,
    heap: BinaryHeap<Head>,
    consumed: usize,
}

impl<S: SweepSource> KWayMerge<S> {
    pub fn new(mut streams: Vec<S>) -> Self {
        let mut heap = BinaryHeap::with_capacity(streams.len());
        for (si, s) in streams.iter_mut().enumerate() {
            if let Some((d, dense, w)) = s.next_entry() {
                heap.push(Head {
                    d,
                    dense,
                    w,
                    stream: si as u32,
                });
            }
        }
        KWayMerge {
            streams,
            heap,
            consumed: 0,
        }
    }

    /// Entries drawn from the merge so far — the early-exit effectiveness
    /// metric (compare against the live location total a full sort pays).
    pub fn consumed(&self) -> usize {
        self.consumed
    }

    /// Number of input streams.
    pub fn num_streams(&self) -> usize {
        self.streams.len()
    }
}

impl<S: SweepSource> SweepSource for KWayMerge<S> {
    fn next_entry(&mut self) -> Option<SweepEntry> {
        let head = self.heap.pop()?;
        if let Some((d, dense, w)) = self.streams[head.stream as usize].next_entry() {
            self.heap.push(Head {
                d,
                dense,
                w,
                stream: head.stream,
            });
        }
        self.consumed += 1;
        Some((head.d, head.dense, head.w))
    }
}

/// The Eq. (2) sweep driver over any ordered entry source: returns all
/// `π_i` for dense site indices `0..n`.
///
/// Distance ties are processed in batches — Eq. (2)'s cdf uses `≤ r`, so
/// all locations at the same distance enter their cdfs (phase 1) before any
/// of them contributes its η (phase 2). The driver takes `&mut` so callers
/// keep the source and can read its statistics afterwards.
pub fn sweep<S: SweepSource + ?Sized>(source: &mut S, n: usize) -> Vec<f64> {
    let mut pi = vec![0.0f64; n];
    let mut w_acc = vec![0.0f64; n]; // G_{q,i}(r) so far
    let mut factors = vec![1.0f64; n]; // (1 − G_{q,i}(r)), clamped at 0
    let mut product = 1.0f64; // Π over i with factors[i] > 0
    let mut zeros = 0usize; // #{i : factors[i] == 0}

    let mut batch: Vec<(usize, f64)> = vec![];
    let mut pending = source.next_entry();
    while let Some((d, i0, w0)) = pending {
        batch.clear();
        batch.push((i0, w0));
        loop {
            pending = source.next_entry();
            match pending {
                Some((d2, i2, w2)) if d2 == d => batch.push((i2, w2)),
                _ => break,
            }
        }
        // Phase 1: all locations at distance exactly d enter their cdfs
        // (ties count against each other — `≤` in Eq. (2)).
        for &(i, w) in &batch {
            let old = factors[i];
            w_acc[i] += w;
            let mut newf = 1.0 - w_acc[i];
            if newf < ZERO_THRESH {
                newf = 0.0;
            }
            factors[i] = newf;
            if old > 0.0 {
                if newf > 0.0 {
                    product *= newf / old;
                } else {
                    zeros += 1;
                    product /= old;
                }
            }
        }
        // Phase 2: each batch member contributes
        // η(p; q) = w · Π_{j≠i} (1 − G_{q,j}(d)).
        for &(i, w) in &batch {
            let fi = factors[i];
            let eta = if zeros == 0 {
                w * product / fi
            } else if zeros == 1 && fi == 0.0 {
                w * product
            } else {
                0.0
            };
            pi[i] += eta;
        }
        // Two sites fully entered: every remaining η is exactly 0.0, so the
        // rest of the stream cannot change any output bit. Stop drawing.
        if zeros >= 2 {
            break;
        }
    }
    pi
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The pre-early-exit reference: the full sweep with no termination.
    fn sweep_full(entries: Vec<SweepEntry>, n: usize) -> Vec<f64> {
        let entries = {
            let mut e = entries;
            e.sort_by(|a, b| a.0.total_cmp(&b.0));
            e
        };
        let mut pi = vec![0.0f64; n];
        let mut w_acc = vec![0.0f64; n];
        let mut factors = vec![1.0f64; n];
        let mut product = 1.0f64;
        let mut zeros = 0usize;
        let mut idx = 0;
        while idx < entries.len() {
            let d = entries[idx].0;
            let mut end = idx;
            while end < entries.len() && entries[end].0 == d {
                end += 1;
            }
            for e in &entries[idx..end] {
                let (_, i, w) = *e;
                let old = factors[i];
                w_acc[i] += w;
                let mut newf = 1.0 - w_acc[i];
                if newf < ZERO_THRESH {
                    newf = 0.0;
                }
                factors[i] = newf;
                if old > 0.0 {
                    if newf > 0.0 {
                        product *= newf / old;
                    } else {
                        zeros += 1;
                        product /= old;
                    }
                }
            }
            for e in &entries[idx..end] {
                let (_, i, w) = *e;
                let fi = factors[i];
                let eta = if zeros == 0 {
                    w * product / fi
                } else if zeros == 1 && fi == 0.0 {
                    w * product
                } else {
                    0.0
                };
                pi[i] += eta;
            }
            idx = end;
        }
        pi
    }

    fn pseudo(state: &mut u64) -> f64 {
        *state ^= *state << 13;
        *state ^= *state >> 7;
        *state ^= *state << 17;
        (*state >> 11) as f64 / (1u64 << 53) as f64
    }

    fn random_entries(n: usize, k: usize, seed: u64, ties: bool) -> Vec<SweepEntry> {
        let mut state = seed.max(1);
        let mut entries = vec![];
        for i in 0..n {
            let mut ws = vec![];
            for _ in 0..k {
                ws.push(pseudo(&mut state) + 0.05);
            }
            let total: f64 = ws.iter().sum();
            for w in ws {
                // With `ties`, distances collide across sites frequently.
                let d = if ties {
                    (pseudo(&mut state) * 8.0).floor()
                } else {
                    pseudo(&mut state) * 50.0
                };
                entries.push((d, i, w / total));
            }
        }
        entries
    }

    #[test]
    fn early_exit_is_bit_identical_to_the_full_sweep() {
        for seed in 1u64..20 {
            for ties in [false, true] {
                let entries = random_entries(30, 3, seed, ties);
                let full = sweep_full(entries.clone(), 30);
                let mut slab = SortedSlab::new(entries);
                let early = sweep(&mut slab, 30);
                for (a, b) in early.iter().zip(&full) {
                    assert_eq!(a.to_bits(), b.to_bits(), "seed {seed} ties {ties}");
                }
            }
        }
    }

    #[test]
    fn kway_merge_over_a_partition_matches_the_single_slab() {
        for seed in 1u64..16 {
            for parts in [1usize, 2, 5] {
                for ties in [false, true] {
                    let entries = random_entries(24, 3, seed, ties);
                    let mut slab = SortedSlab::new(entries.clone());
                    let want = sweep(&mut slab, 24);
                    // Partition entries by site, then shard sites round-robin
                    // into `parts` streams, each a SortedSlab of its own.
                    let mut shards: Vec<Vec<SweepEntry>> = vec![vec![]; parts];
                    for e in entries {
                        shards[e.1 % parts].push(e);
                    }
                    let streams: Vec<SortedSlab> =
                        shards.into_iter().map(SortedSlab::new).collect();
                    let mut merge = KWayMerge::new(streams);
                    let got = sweep(&mut merge, 24);
                    assert!(merge.consumed() > 0);
                    for (a, b) in got.iter().zip(&want) {
                        assert_eq!(
                            a.to_bits(),
                            b.to_bits(),
                            "seed {seed} parts {parts} ties {ties}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn early_exit_truncates_the_merge_stream() {
        // Two certain sites right next to the query block everything else:
        // the sweep must stop after a handful of entries, not the full 2002.
        let mut entries: Vec<SweepEntry> = vec![(0.5, 0, 1.0), (0.75, 1, 1.0)];
        for i in 0..2000 {
            entries.push((2.0 + i as f64, 2 + i, 1.0));
        }
        let streams = vec![
            SortedSlab::new(entries[..2].to_vec()),
            SortedSlab::new(entries[2..].to_vec()),
        ];
        let mut merge = KWayMerge::new(streams);
        let pi = sweep(&mut merge, 2002);
        assert_eq!(pi[0], 1.0);
        assert!(merge.consumed() <= 4, "consumed {}", merge.consumed());
        // The single-slab path still produces the identical vector.
        let mut slab = SortedSlab::new(entries);
        let want = sweep(&mut slab, 2002);
        assert_eq!(pi, want);
    }

    #[test]
    fn empty_and_single_sources() {
        let mut slab = SortedSlab::new(vec![]);
        assert!(sweep(&mut slab, 0).is_empty());
        let mut merge: KWayMerge<SortedSlab> = KWayMerge::new(vec![]);
        assert_eq!(sweep(&mut merge, 3), vec![0.0; 3]);
        let mut one = SortedSlab::new(vec![(1.0, 0, 1.0)]);
        assert_eq!(sweep(&mut one, 1), vec![1.0]);
    }
}
