//! The probabilistic Voronoi diagram `V_Pr(P)` (Section 4.1, Theorem 4.2).
//!
//! For discrete uncertain points, all quantification probabilities are
//! constant on every face of the arrangement of the `O(N²)` perpendicular
//! bisectors of location pairs (the distance *order* to all `N` locations is
//! fixed within a face — Lemma 4.1). Preprocessing therefore:
//!
//! 1. collects all distinct bisector lines;
//! 2. builds a slab point-location structure over them (`O(log N)` query);
//! 3. evaluates the exact Eq. (2) sweep once per cell and deduplicates the
//!    resulting probability vectors.
//!
//! The structure size is `O(N⁴)` — matching the tight bound of Lemma 4.1 —
//! which is why the paper (and this crate) treats `V_Pr` as a small-input
//! exact structure and provides Monte Carlo / spiral search for scale.

use crate::model::DiscreteSet;
use crate::quantification::exact::quantification_discrete;
use std::collections::HashMap;
use uncertain_arrangement::lines::{dedup_lines, Line2};
use uncertain_arrangement::SlabLocator;
use uncertain_geom::{Aabb, Point};

/// Exact quantification queries by point location (Theorem 4.2).
///
/// ```
/// use uncertain_geom::{Aabb, Point};
/// use uncertain_nn::model::{DiscreteSet, DiscreteUncertainPoint};
/// use uncertain_nn::quantification::ProbabilisticVoronoiDiagram;
///
/// let set = DiscreteSet::new(vec![
///     DiscreteUncertainPoint::uniform(vec![Point::new(0.0, 0.0), Point::new(2.0, 0.0)]),
///     DiscreteUncertainPoint::certain(Point::new(5.0, 0.0)),
/// ]);
/// let bbox = Aabb::from_corners(Point::new(-10.0, -10.0), Point::new(10.0, 10.0));
/// let vpr = ProbabilisticVoronoiDiagram::build(&set, &bbox);
/// let pi = vpr.query(Point::new(0.5, 0.0)); // sparse (index, π) pairs
/// let total: f64 = pi.iter().map(|&(_, p)| p).sum();
/// assert!((total - 1.0).abs() < 1e-9);
/// ```
pub struct ProbabilisticVoronoiDiagram {
    locator: SlabLocator,
    /// Per cell: index into `vectors` (deduplicated probability vectors).
    cell_vector: Vec<u32>,
    /// Sparse probability vectors `(i, π_i)`, sorted by point index.
    vectors: Vec<Vec<(usize, f64)>>,
    /// Fallback for out-of-box queries.
    set: DiscreteSet,
    bbox: Aabb,
    num_bisectors: usize,
}

impl ProbabilisticVoronoiDiagram {
    /// Builds the diagram, valid for queries inside `bbox` (outside queries
    /// fall back to the exact sweep). `O(N⁴)` space and time — keep `N = nk`
    /// modest (the Lemma 4.1 lower bound shows this is inherent).
    pub fn build(set: &DiscreteSet, bbox: &Aabb) -> Self {
        let locs: Vec<Point> = set.all_locations().map(|(_, _, p, _)| p).collect();
        let mut lines = vec![];
        for i in 0..locs.len() {
            for j in (i + 1)..locs.len() {
                if locs[i].dist(locs[j]) > 0.0 {
                    lines.push(Line2::bisector(locs[i], locs[j]));
                }
            }
        }
        let (lines, _) = dedup_lines(&lines, 1e-9);
        let locator = SlabLocator::build(&lines, bbox);

        let mut vectors: Vec<Vec<(usize, f64)>> = vec![];
        let mut vec_ids: HashMap<Vec<(usize, u64)>, u32> = HashMap::new();
        let mut cell_vector = vec![0u32; locator.num_cells()];
        for cell in locator.cell_ids() {
            let Some(sample) = locator.cell_sample(cell) else {
                cell_vector[cell] = u32::MAX;
                continue;
            };
            let pi = quantification_discrete(set, sample);
            let sparse: Vec<(usize, f64)> = pi
                .into_iter()
                .enumerate()
                .filter(|&(_, v)| v > 0.0)
                .collect();
            // Quantized key for deduplication (probabilities are identical
            // across cells with the same distance order, up to fp noise).
            let key: Vec<(usize, u64)> = sparse
                .iter()
                .map(|&(i, v)| (i, (v * 1e12).round() as u64))
                .collect();
            let id = *vec_ids.entry(key).or_insert_with(|| {
                vectors.push(sparse);
                (vectors.len() - 1) as u32
            });
            cell_vector[cell] = id;
        }
        ProbabilisticVoronoiDiagram {
            locator,
            cell_vector,
            vectors,
            set: set.clone(),
            bbox: *bbox,
            num_bisectors: lines.len(),
        }
    }

    /// All positive quantification probabilities of `q`, sorted by point
    /// index. `O(log N + t)` inside the box; exact-sweep fallback outside
    /// the box, for queries exactly on a bisector line, and inside the
    /// locator's slab-boundary guard band (the locator's exact predicates
    /// refuse rather than guess there — see
    /// [`uncertain_arrangement::SlabLocator::locate`]), so every answer is
    /// either a located cell's vector or the exact sweep itself.
    pub fn query(&self, q: Point) -> Vec<(usize, f64)> {
        if let Some(cell) = self.locator.locate(q) {
            let vid = self.cell_vector[cell];
            if vid != u32::MAX {
                return self.vectors[vid as usize].clone();
            }
        }
        // Exact-sweep fallback: `quantification_discrete` is the shared
        // single-slab `SweepSource` path (`SortedSlab` + the sweep core) —
        // the same machinery the dynamic merged path feeds through a k-way
        // merge.
        quantification_discrete(&self.set, q)
            .into_iter()
            .enumerate()
            .filter(|&(_, v)| v > 0.0)
            .collect()
    }

    /// Number of point-location cells (the measured structure size; the
    /// `O(N⁴)` of Theorem 4.2).
    pub fn num_cells(&self) -> usize {
        self.cell_vector.len()
    }

    /// Number of *distinct* probability vectors — a lower bound on the true
    /// complexity of `V_Pr` (Lemma 4.1's Ω(n⁴) construction makes these all
    /// differ).
    pub fn num_distinct_vectors(&self) -> usize {
        self.vectors.len()
    }

    /// Number of deduplicated bisector lines.
    pub fn num_bisectors(&self) -> usize {
        self.num_bisectors
    }

    pub fn bbox(&self) -> &Aabb {
        &self.bbox
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload;

    fn bbox() -> Aabb {
        Aabb::from_corners(Point::new(-40.0, -40.0), Point::new(40.0, 40.0))
    }

    #[test]
    fn queries_match_exact_sweep() {
        let set = workload::random_discrete_set(5, 2, 8.0, 44);
        let vpr = ProbabilisticVoronoiDiagram::build(&set, &bbox());
        for q in workload::random_queries(100, 70.0, 9) {
            let got = vpr.query(q);
            let exact = quantification_discrete(&set, q);
            let dense = {
                let mut v = vec![0.0; set.len()];
                for (i, p) in got {
                    v[i] = p;
                }
                v
            };
            for i in 0..set.len() {
                assert!(
                    (dense[i] - exact[i]).abs() < 1e-6,
                    "π_{i} at {q}: vpr {} exact {}",
                    dense[i],
                    exact[i]
                );
            }
        }
    }

    #[test]
    fn out_of_box_falls_back() {
        let set = workload::random_discrete_set(4, 2, 5.0, 3);
        let vpr = ProbabilisticVoronoiDiagram::build(&set, &bbox());
        let far = Point::new(500.0, 500.0);
        let got = vpr.query(far);
        let exact = quantification_discrete(&set, far);
        for (i, p) in got {
            assert!((p - exact[i]).abs() < 1e-12);
        }
    }

    #[test]
    fn duplicate_locations_handled() {
        // Two points sharing a location: zero-length bisectors are skipped.
        let set = DiscreteSet::new(vec![
            crate::model::DiscreteUncertainPoint::uniform(vec![
                Point::new(0.0, 0.0),
                Point::new(2.0, 0.0),
            ]),
            crate::model::DiscreteUncertainPoint::uniform(vec![
                Point::new(0.0, 0.0),
                Point::new(-2.0, 0.0),
            ]),
        ]);
        let vpr = ProbabilisticVoronoiDiagram::build(&set, &bbox());
        assert!(vpr.num_cells() > 0);
        let _ = vpr.query(Point::new(0.5, 0.5));
    }

    #[test]
    fn cell_counts_grow_with_n() {
        let small = workload::random_discrete_set(3, 2, 6.0, 1);
        let large = workload::random_discrete_set(6, 2, 6.0, 1);
        let v1 = ProbabilisticVoronoiDiagram::build(&small, &bbox());
        let v2 = ProbabilisticVoronoiDiagram::build(&large, &bbox());
        assert!(v2.num_cells() > v1.num_cells());
        assert!(v2.num_bisectors() > v1.num_bisectors());
        assert!(v1.num_distinct_vectors() <= v1.num_cells());
    }
}
