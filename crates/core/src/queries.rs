//! High-level probabilistic-NN query API.
//!
//! The paper's related work answers several query shapes on top of the
//! quantification probabilities:
//!
//! * **threshold queries** ([DYM+05]): report every `P_i` with
//!   `π_i(q) ≥ τ`;
//! * **top-k probable NNs** ([BSI08]): the `k` points of largest `π_i(q)`;
//! * **most-probable NN**: the `k = 1` special case.
//!
//! [`Quantifier`] abstracts over the four engines of Section 4 (exact sweep,
//! `V_Pr`, Monte Carlo, spiral search) so the query layer is engine-agnostic
//! and carries each engine's error guarantee explicitly — a threshold query
//! on an additive-ε engine returns every point with `π̂_i ≥ τ − ε`
//! (no false negatives at threshold `τ`).

use crate::model::DiscreteSet;
use crate::quantification::exact::quantification_discrete;
use crate::quantification::monte_carlo::MonteCarloPnn;
use crate::quantification::spiral::SpiralSearch;
use crate::quantification::vpr::ProbabilisticVoronoiDiagram;
use uncertain_geom::Point;

/// What an engine promises about its estimates.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Guarantee {
    /// Estimates are exact (up to f64 rounding).
    Exact,
    /// `|π̂ − π| ≤ ε` deterministically (possibly one-sided: `π̂ ≤ π`).
    Additive(f64),
    /// `|π̂ − π| ≤ ε` with probability ≥ 1 − δ.
    Probabilistic { eps: f64, delta: f64 },
}

impl Guarantee {
    /// The additive slack callers must allow for (0 for exact engines).
    pub fn slack(&self) -> f64 {
        match *self {
            Guarantee::Exact => 0.0,
            Guarantee::Additive(e) => e,
            Guarantee::Probabilistic { eps, .. } => eps,
        }
    }
}

/// A quantification engine: estimates all `π_i(q)`.
pub trait Quantifier {
    /// Dense estimates, one per uncertain point.
    fn estimate_all(&self, q: Point) -> Vec<f64>;

    /// The engine's error guarantee.
    fn guarantee(&self) -> Guarantee;
}

/// The exact Eq. (2) sweep as an engine.
pub struct ExactQuantifier<'a>(pub &'a DiscreteSet);

impl Quantifier for ExactQuantifier<'_> {
    fn estimate_all(&self, q: Point) -> Vec<f64> {
        quantification_discrete(self.0, q)
    }
    fn guarantee(&self) -> Guarantee {
        Guarantee::Exact
    }
}

impl Quantifier for ProbabilisticVoronoiDiagram {
    fn estimate_all(&self, q: Point) -> Vec<f64> {
        let sparse = self.query(q);
        let n = sparse.iter().map(|&(i, _)| i + 1).max().unwrap_or(0);
        // The diagram knows its set size only implicitly; grow as needed.
        let mut dense = vec![0.0; n];
        for (i, p) in sparse {
            if i >= dense.len() {
                dense.resize(i + 1, 0.0);
            }
            dense[i] = p;
        }
        dense
    }
    fn guarantee(&self) -> Guarantee {
        Guarantee::Exact
    }
}

impl Quantifier for MonteCarloPnn {
    fn estimate_all(&self, q: Point) -> Vec<f64> {
        MonteCarloPnn::estimate_all(self, q)
    }
    fn guarantee(&self) -> Guarantee {
        // The caller sized `s`; report the per-query Chernoff bound at the
        // conventional δ = 0.05 for the stored sample count.
        let s = self.num_samples() as f64;
        let eps = ((2.0f64 / 0.05).ln() / (2.0 * s)).sqrt();
        Guarantee::Probabilistic { eps, delta: 0.05 }
    }
}

/// Spiral search bound to a fixed tolerance.
pub struct SpiralQuantifier<'a> {
    pub engine: &'a SpiralSearch,
    pub eps: f64,
}

impl Quantifier for SpiralQuantifier<'_> {
    fn estimate_all(&self, q: Point) -> Vec<f64> {
        self.engine.estimate_all(q, self.eps)
    }
    fn guarantee(&self) -> Guarantee {
        Guarantee::Additive(self.eps)
    }
}

/// The most probable nearest neighbor: `(index, π̂)`.
pub fn most_probable_nn<Q: Quantifier + ?Sized>(engine: &Q, q: Point) -> Option<(usize, f64)> {
    engine
        .estimate_all(q)
        .into_iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
        .filter(|&(_, p)| p > 0.0)
}

/// Threshold query ([DYM+05]): every point that *may* satisfy `π_i ≥ τ`
/// given the engine's guarantee (i.e. `π̂_i ≥ τ − slack`). Sorted by
/// decreasing estimate. No false negatives at threshold `τ`; false
/// positives are at most `2·slack` below the threshold.
pub fn threshold_nn<Q: Quantifier + ?Sized>(engine: &Q, q: Point, tau: f64) -> Vec<(usize, f64)> {
    let slack = engine.guarantee().slack();
    let mut out: Vec<(usize, f64)> = engine
        .estimate_all(q)
        .into_iter()
        .enumerate()
        .filter(|&(_, p)| p >= tau - slack)
        .collect();
    out.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    out
}

/// Top-k probable NNs ([BSI08]): the `k` largest estimates (ties broken by
/// index), sorted by decreasing probability.
pub fn top_k_probable<Q: Quantifier + ?Sized>(engine: &Q, q: Point, k: usize) -> Vec<(usize, f64)> {
    let mut all: Vec<(usize, f64)> = engine
        .estimate_all(q)
        .into_iter()
        .enumerate()
        .filter(|&(_, p)| p > 0.0)
        .collect();
    all.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
    all.truncate(k);
    all
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use uncertain_geom::Aabb;

    #[test]
    fn engines_agree_on_most_probable() {
        let set = workload::random_discrete_set(10, 3, 8.0, 3);
        let exact = ExactQuantifier(&set);
        let mut rng = StdRng::seed_from_u64(1);
        let mc = crate::quantification::MonteCarloPnn::build_discrete(
            &set,
            4000,
            crate::quantification::SampleBackend::KdTree,
            &mut rng,
        );
        let ss = SpiralSearch::build(&set);
        let spiral = SpiralQuantifier {
            engine: &ss,
            eps: 0.01,
        };
        for q in workload::random_queries(30, 60.0, 2) {
            let (i0, p0) = most_probable_nn(&exact, q).unwrap();
            // Other engines pick a winner whose exact probability is within
            // their slack of the optimum.
            let pi = exact.estimate_all(q);
            for (winner, _) in [
                most_probable_nn(&mc, q).unwrap(),
                most_probable_nn(&spiral, q).unwrap(),
            ] {
                assert!(
                    pi[winner] >= p0 - 0.06,
                    "winner {winner} has π = {} vs best {} (= point {i0})",
                    pi[winner],
                    p0
                );
            }
        }
    }

    #[test]
    fn threshold_has_no_false_negatives() {
        let set = workload::random_discrete_set(15, 3, 6.0, 7);
        let exact = ExactQuantifier(&set);
        let ss = SpiralSearch::build(&set);
        let spiral = SpiralQuantifier {
            engine: &ss,
            eps: 0.05,
        };
        let tau = 0.2;
        for q in workload::random_queries(40, 60.0, 8) {
            let truth: Vec<usize> = exact
                .estimate_all(q)
                .into_iter()
                .enumerate()
                .filter(|&(_, p)| p >= tau)
                .map(|(i, _)| i)
                .collect();
            let reported: Vec<usize> = threshold_nn(&spiral, q, tau)
                .into_iter()
                .map(|(i, _)| i)
                .collect();
            for i in truth {
                assert!(reported.contains(&i), "π_{i} ≥ τ missing at {q}");
            }
        }
    }

    #[test]
    fn top_k_is_sorted_prefix() {
        let set = workload::random_discrete_set(12, 3, 5.0, 9);
        let exact = ExactQuantifier(&set);
        let q = Point::new(0.0, 0.0);
        let top3 = top_k_probable(&exact, q, 3);
        let top5 = top_k_probable(&exact, q, 5);
        assert!(top3.len() <= 3);
        assert_eq!(&top5[..top3.len()], &top3[..]);
        for w in top5.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
    }

    #[test]
    fn vpr_engine_is_exact() {
        let set = workload::random_discrete_set(5, 2, 6.0, 4);
        let bbox = Aabb::from_corners(Point::new(-40.0, -40.0), Point::new(40.0, 40.0));
        let vpr = ProbabilisticVoronoiDiagram::build(&set, &bbox);
        assert_eq!(vpr.guarantee(), Guarantee::Exact);
        let exact = ExactQuantifier(&set);
        for q in workload::random_queries(40, 60.0, 5) {
            let a = most_probable_nn(&vpr, q);
            let b = most_probable_nn(&exact, q);
            match (a, b) {
                (Some((ia, pa)), Some((ib, pb))) => {
                    assert!((pa - pb).abs() < 1e-6);
                    // Ties may resolve differently; probabilities must match.
                    let pi = exact.estimate_all(q);
                    assert!((pi[ia] - pi[ib]).abs() < 1e-6);
                }
                (None, None) => {}
                other => panic!("engines disagree on existence: {other:?}"),
            }
        }
    }

    #[test]
    fn guarantee_slacks() {
        assert_eq!(Guarantee::Exact.slack(), 0.0);
        assert_eq!(Guarantee::Additive(0.1).slack(), 0.1);
        assert!(
            (Guarantee::Probabilistic {
                eps: 0.2,
                delta: 0.1
            }
            .slack()
                - 0.2)
                .abs()
                < 1e-15
        );
    }
}
