//! Minimal SVG rendering for diagrams and examples.

use crate::vnz::NonzeroVoronoiDiagram;
use uncertain_geom::{Aabb, Circle, Point};

/// A tiny SVG canvas with world-to-screen mapping.
pub struct SvgCanvas {
    world: Aabb,
    width: f64,
    height: f64,
    body: String,
}

impl SvgCanvas {
    /// Canvas mapping the world box to `width × height` pixels.
    pub fn new(world: Aabb, width: f64) -> Self {
        let aspect = world.height() / world.width().max(1e-12);
        SvgCanvas {
            world,
            width,
            height: width * aspect,
            body: String::new(),
        }
    }

    fn tx(&self, p: Point) -> (f64, f64) {
        let x = (p.x - self.world.lo.x) / self.world.width() * self.width;
        let y = self.height - (p.y - self.world.lo.y) / self.world.height() * self.height;
        (x, y)
    }

    fn scale(&self) -> f64 {
        self.width / self.world.width()
    }

    /// Draws a circle outline (world units).
    pub fn circle(&mut self, c: &Circle, stroke: &str, fill: &str) {
        let (x, y) = self.tx(c.center);
        let r = c.radius * self.scale();
        self.body.push_str(&format!(
            "<circle cx=\"{x:.2}\" cy=\"{y:.2}\" r=\"{r:.2}\" stroke=\"{stroke}\" \
             fill=\"{fill}\" fill-opacity=\"0.15\" stroke-width=\"1\"/>\n"
        ));
    }

    /// Draws a polyline through world points.
    pub fn polyline(&mut self, pts: &[Point], stroke: &str) {
        if pts.len() < 2 {
            return;
        }
        let coords: Vec<String> = pts
            .iter()
            .map(|&p| {
                let (x, y) = self.tx(p);
                format!("{x:.2},{y:.2}")
            })
            .collect();
        self.body.push_str(&format!(
            "<polyline points=\"{}\" stroke=\"{stroke}\" fill=\"none\" stroke-width=\"1.2\"/>\n",
            coords.join(" ")
        ));
    }

    /// Draws a dot.
    pub fn dot(&mut self, p: Point, radius_px: f64, fill: &str) {
        let (x, y) = self.tx(p);
        self.body.push_str(&format!(
            "<circle cx=\"{x:.2}\" cy=\"{y:.2}\" r=\"{radius_px:.2}\" fill=\"{fill}\"/>\n"
        ));
    }

    /// Places a text label.
    pub fn text(&mut self, p: Point, s: &str, size_px: f64) {
        let (x, y) = self.tx(p);
        self.body.push_str(&format!(
            "<text x=\"{x:.2}\" y=\"{y:.2}\" font-size=\"{size_px:.1}\" \
             font-family=\"sans-serif\">{s}</text>\n"
        ));
    }

    /// Finishes the document.
    pub fn render(&self) -> String {
        format!(
            "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{:.0}\" height=\"{:.0}\" \
             viewBox=\"0 0 {:.0} {:.0}\">\n<rect width=\"100%\" height=\"100%\" fill=\"white\"/>\n{}</svg>\n",
            self.width, self.height, self.width, self.height, self.body
        )
    }
}

/// Color palette for curves.
const PALETTE: [&str; 8] = [
    "#d62728", "#1f77b4", "#2ca02c", "#9467bd", "#ff7f0e", "#8c564b", "#e377c2", "#17becf",
];

/// Renders a nonzero Voronoi diagram: disks, γ curves (sampled), vertices.
pub fn render_vnz(diagram: &NonzeroVoronoiDiagram, samples_per_arc: usize) -> String {
    let disks = diagram.disks();
    let mut world = Aabb::empty();
    for d in disks {
        world.extend(Point::new(d.center.x - d.radius, d.center.y - d.radius));
        world.extend(Point::new(d.center.x + d.radius, d.center.y + d.radius));
    }
    for v in &diagram.vertices {
        world.extend(v.point);
    }
    if world.is_empty() {
        world = Aabb::from_corners(Point::new(-1.0, -1.0), Point::new(1.0, 1.0));
    }
    let world = world.inflated(0.1 * world.radius().max(1.0));
    let mut canvas = SvgCanvas::new(world, 900.0);

    for (i, d) in disks.iter().enumerate() {
        canvas.circle(d, PALETTE[i % PALETTE.len()], PALETTE[i % PALETTE.len()]);
    }
    let clip = world.radius() * 4.0;
    for c in &diagram.curves {
        let color = PALETTE[c.i % PALETTE.len()];
        for arc in &c.arcs {
            let mut pts = vec![];
            let m = samples_per_arc.max(4);
            for s in 0..=m {
                let t = arc.theta_lo + arc.width() * (s as f64 / m as f64);
                if let Some(p) = c.point_at(t.clamp(arc.theta_lo, arc.theta_hi)) {
                    if p.is_finite() && disks[c.i].center.dist(p) < clip {
                        pts.push(p);
                        continue;
                    }
                }
                // Break the polyline across invalid samples.
                if pts.len() >= 2 {
                    canvas.polyline(&pts, color);
                }
                pts.clear();
            }
            if pts.len() >= 2 {
                canvas.polyline(&pts, color);
            }
        }
    }
    for v in &diagram.vertices {
        canvas.dot(v.point, 2.5, "#000000");
    }
    canvas.render()
}

/// Renders the guaranteed Voronoi diagram ([SE08]) on top of the disks:
/// each nonempty region's boundary is drawn as a sampled closed/open curve.
pub fn render_guaranteed(
    disks: &[Circle],
    gv: &crate::vnz::GuaranteedVoronoi,
    samples_per_arc: usize,
) -> String {
    let mut world = Aabb::empty();
    for d in disks {
        world.extend(Point::new(
            d.center.x - 3.0 * d.radius,
            d.center.y - 3.0 * d.radius,
        ));
        world.extend(Point::new(
            d.center.x + 3.0 * d.radius,
            d.center.y + 3.0 * d.radius,
        ));
    }
    if world.is_empty() {
        world = Aabb::from_corners(Point::new(-1.0, -1.0), Point::new(1.0, 1.0));
    }
    let world = world.inflated(0.05 * world.radius().max(1.0));
    let mut canvas = SvgCanvas::new(world, 900.0);
    for (i, d) in disks.iter().enumerate() {
        canvas.circle(d, PALETTE[i % PALETTE.len()], PALETTE[i % PALETTE.len()]);
    }
    let clip = world.radius() * 3.0;
    for region in &gv.regions {
        if region.is_void() {
            continue;
        }
        let color = PALETTE[region.i % PALETTE.len()];
        let center = disks[region.i].center;
        for &(lo, hi, _) in &region.arcs {
            let mut pts = vec![];
            let m = samples_per_arc.max(4);
            for s in 0..=m {
                let t = lo + (hi - lo) * (s as f64 / m as f64);
                let r = region.radial_bound(t);
                if r.is_finite() && r < clip {
                    pts.push(center + uncertain_geom::Vector::from_angle(t) * r);
                } else {
                    if pts.len() >= 2 {
                        canvas.polyline(&pts, color);
                    }
                    pts.clear();
                }
            }
            if pts.len() >= 2 {
                canvas.polyline(&pts, color);
            }
        }
    }
    canvas.render()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vnz::NonzeroVoronoiDiagram;

    #[test]
    fn renders_valid_svg() {
        let disks = vec![
            Circle::new(Point::new(0.0, 0.0), 1.0),
            Circle::new(Point::new(8.0, 0.0), 1.5),
            Circle::new(Point::new(4.0, 7.0), 0.8),
        ];
        let d = NonzeroVoronoiDiagram::build(disks);
        let svg = render_vnz(&d, 32);
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>\n"));
        assert!(svg.contains("<circle"));
        assert!(svg.contains("<polyline"));
    }

    #[test]
    fn renders_guaranteed_svg() {
        let disks = vec![
            Circle::new(Point::new(0.0, 0.0), 1.0),
            Circle::new(Point::new(10.0, 0.0), 1.0),
            Circle::new(Point::new(5.0, 9.0), 1.0),
        ];
        let gv = crate::vnz::GuaranteedVoronoi::build(&disks);
        let svg = render_guaranteed(&disks, &gv, 48);
        assert!(svg.starts_with("<svg"));
        assert!(svg.contains("<polyline"));
    }

    #[test]
    fn canvas_primitives() {
        let world = Aabb::from_corners(Point::new(0.0, 0.0), Point::new(10.0, 5.0));
        let mut c = SvgCanvas::new(world, 500.0);
        c.dot(Point::new(5.0, 2.5), 3.0, "red");
        c.text(Point::new(1.0, 1.0), "hello", 12.0);
        c.polyline(&[Point::new(0.0, 0.0), Point::new(10.0, 5.0)], "blue");
        let svg = c.render();
        assert!(svg.contains("hello"));
        assert!(svg.contains("polyline"));
        // Aspect ratio preserved: 500 x 250.
        assert!(svg.contains("height=\"250\""));
    }
}
