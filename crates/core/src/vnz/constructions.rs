//! The paper's explicit lower-bound constructions, as executable generators.
//!
//! * [`theorem_2_7`] — `Ω(n³)` vertices with two radius classes (Fig. 5);
//! * [`theorem_2_8`] — `Ω(n³)` vertices with *equal* radii (Fig. 6);
//! * [`theorem_2_10_lower`] — `Ω(n²)` vertices with disjoint equal disks on
//!   a line (Fig. 8);
//! * [`lemma_4_1`] — the `Ω(n⁴)`-size probabilistic Voronoi diagram family
//!   (`k = 2`, Fig. 9).
//!
//! Each generator returns the instance together with the paper's *predicted*
//! lower bound on the vertex count, so experiments (E3–E5, E10) can assert
//! `measured ≥ predicted`.

use crate::model::{DiscreteSet, DiscreteUncertainPoint};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::f64::consts::{PI, TAU};
use uncertain_geom::{Circle, Point};

/// Theorem 2.7: `n = 4m` disks — two families of `m` huge disks flanking
/// `2m` unit disks on the y-axis. Every triple `(i, j, k)` contributes two
/// crossing vertices: predicted `≥ 4m³`.
pub fn theorem_2_7(m: usize) -> (Vec<Circle>, usize) {
    assert!(m >= 1);
    let n = 4 * m;
    let big_r = 8.0 * (n * n) as f64;
    let omega = 1.0 / (n * n) as f64;
    let mut disks = Vec::with_capacity(n);
    for i in 1..=m {
        disks.push(Circle::new(
            Point::new(-big_r - 1.5 - (i as f64 - 1.0) * omega, 0.0),
            big_r,
        ));
    }
    for j in 1..=m {
        disks.push(Circle::new(
            Point::new(big_r + 1.5 + (j as f64 - 1.0) * omega, 0.0),
            big_r,
        ));
    }
    for k in 1..=2 * m {
        disks.push(Circle::new(
            Point::new(0.0, 4.0 * (k as f64 - m as f64) - 2.0),
            1.0,
        ));
    }
    // Two vertices per (i, j, k) triple: 2·m·m·2m.
    (disks, 4 * m * m * m)
}

/// Theorem 2.8: `n = 3m` *unit* disks — two perturbed families on the
/// x-axis plus `m` disks on a circular arc, all of radius 1. One vertex per
/// triple: predicted `≥ m³`.
pub fn theorem_2_8(m: usize) -> (Vec<Circle>, usize) {
    assert!(m >= 1);
    let theta = (PI / 2.0) / (m as f64 + 1.0);
    // "Sufficiently small" ω: small relative to the arc spacing so the
    // perturbation argument of the proof holds, large relative to f64
    // resolution at coordinate scale ~2.
    let omega = theta / (200.0 * m as f64);
    let mut disks = Vec::with_capacity(3 * m);
    for i in 1..=m {
        disks.push(Circle::new(
            Point::new(-2.0 - (i as f64 - 1.0) * omega, 0.0),
            1.0,
        ));
    }
    for j in 1..=m {
        disks.push(Circle::new(
            Point::new(2.0 + (j as f64 - 1.0) * omega, 0.0),
            1.0,
        ));
    }
    for k in 1..=m {
        let a = k as f64 * theta;
        disks.push(Circle::new(
            Point::new(2.0 - 2.0 * a.cos(), 2.0 * a.sin()),
            1.0,
        ));
    }
    (disks, m * m * m)
}

/// Theorem 2.10 (lower bound): `n = 2m` disjoint unit disks with centers
/// `(4(i − m) − 2, 0)`. Every pair `(i, j)` with `j − i ≥ 2` determines two
/// vertices: predicted `≥ (n − 1)(n − 2)`.
pub fn theorem_2_10_lower(m: usize) -> (Vec<Circle>, usize) {
    assert!(m >= 2);
    let n = 2 * m;
    let disks: Vec<Circle> = (1..=n)
        .map(|i| Circle::new(Point::new(4.0 * (i as f64 - m as f64) - 2.0, 0.0), 1.0))
        .collect();
    (disks, (n - 1) * (n - 2))
}

/// Lemma 4.1: `n` uncertain points with `k = 2` for which `V_Pr` has
/// `Ω(n⁴)` complexity: first locations generically placed in the unit disk
/// (all pairwise bisectors crossing pairwise inside it), second locations
/// all far away at `(100, 0)` (perturbed infinitesimally to keep locations
/// distinct), each with probability 1/2.
pub fn lemma_4_1(n: usize, seed: u64) -> DiscreteSet {
    assert!(n >= 2);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut points = Vec::with_capacity(n);
    for i in 0..n {
        // Generic placement near (but not on) a circle of radius 1/2 keeps
        // bisector intersections inside the unit disk and avoids the
        // degenerate all-bisectors-through-center configuration.
        let ang = TAU * (i as f64 + 0.3 * rng.gen::<f64>()) / n as f64;
        let rad = 0.35 + 0.3 * rng.gen::<f64>();
        let near = Point::new(rad * ang.cos(), rad * ang.sin());
        let far = Point::new(100.0 + 1e-6 * i as f64, 1e-6 * (i * i % 17) as f64);
        points.push(DiscreteUncertainPoint::new(vec![near, far], vec![0.5, 0.5]));
    }
    DiscreteSet::new(points)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vnz::diagram::NonzeroVoronoiDiagram;
    use crate::vnz::vertices::{vertex_residual, WitnessKind};

    #[test]
    fn theorem_2_10_construction_reaches_quadratic_count() {
        let (disks, predicted) = theorem_2_10_lower(3); // n = 6 → 20 vertices
        let d = NonzeroVoronoiDiagram::build(disks.clone());
        assert!(
            d.num_vertices() >= predicted,
            "got {} expected ≥ {predicted}",
            d.num_vertices()
        );
        for v in &d.vertices {
            assert!(vertex_residual(&disks, v) < 1e-5);
        }
        // The instance is disjoint equal-radius (λ = 1).
        let set = crate::model::DiskSet::uniform(disks);
        assert!(set.regions_disjoint());
        assert_eq!(set.radius_ratio(), Some(1.0));
    }

    #[test]
    fn theorem_2_7_construction_reaches_cubic_count() {
        let (disks, predicted) = theorem_2_7(2); // n = 8 → ≥ 32 vertices
        let d = NonzeroVoronoiDiagram::build(disks.clone());
        let crossings = d
            .vertices
            .iter()
            .filter(|v| matches!(v.kind, WitnessKind::Crossing { .. }))
            .count();
        assert!(
            crossings >= predicted,
            "got {crossings} crossings, expected ≥ {predicted}"
        );
    }

    #[test]
    fn theorem_2_8_construction_reaches_cubic_count() {
        let (disks, predicted) = theorem_2_8(3); // n = 9 → ≥ 27
        let d = NonzeroVoronoiDiagram::build(disks.clone());
        let crossings = d
            .vertices
            .iter()
            .filter(|v| matches!(v.kind, WitnessKind::Crossing { .. }))
            .count();
        assert!(
            crossings >= predicted,
            "got {crossings} crossings, expected ≥ {predicted}"
        );
        // All radii equal 1.
        assert!(disks.iter().all(|d| d.radius == 1.0));
    }

    #[test]
    fn lemma_4_1_all_locations_distinct() {
        let set = lemma_4_1(8, 3);
        let locs: Vec<Point> = set.all_locations().map(|(_, _, p, _)| p).collect();
        for i in 0..locs.len() {
            for j in (i + 1)..locs.len() {
                assert!(locs[i].dist(locs[j]) > 0.0, "duplicate locations {i},{j}");
            }
        }
        assert_eq!(set.max_k(), 2);
    }
}
