//! The assembled nonzero Voronoi diagram `V≠0(P)` for disk supports
//! (Theorems 2.5 / 2.11).
//!
//! Combinatorics: vertices come from [`super::vertices`]; edges are the
//! curve segments between consecutive vertices along each `γ_i` (ordered by
//! polar angle — each `γ_i` is a polar graph around `c_i`); faces follow
//! from Euler's formula on the one-point compactification (all unbounded
//! curve ends meet a single vertex at infinity, vertex-free closed loops get
//! a phantom degree-2 vertex, exactly as in the standard planar-graph
//! accounting).
//!
//! Queries: `NN≠0(q)` is answered through the Lemma 2.1 evaluation backed by
//! the Theorem 3.1-style index — the paper's `O(log n + t)` point-location
//! structure over the curved subdivision is subsumed by this (see DESIGN.md,
//! substitutions table).

use super::gamma::GammaCurve;
use super::vertices::{enumerate_vertices, DiagramVertex, WitnessKind};
use crate::nonzero::DiskNonzeroIndex;
use uncertain_geom::{angle, Circle, Point};

/// Combinatorial complexity summary of a diagram.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DiagramComplexity {
    pub vertices: usize,
    pub edges: usize,
    pub faces: usize,
}

impl DiagramComplexity {
    /// Total complexity `|V| + |E| + |F|` — the measure bounded by
    /// Theorem 2.5 (`O(n³)`) and Theorem 2.10 (`O(λn²)`).
    pub fn total(&self) -> usize {
        self.vertices + self.edges + self.faces
    }
}

/// The nonzero Voronoi diagram of a set of uncertainty disks.
///
/// ```
/// use uncertain_geom::{Circle, Point};
/// use uncertain_nn::vnz::NonzeroVoronoiDiagram;
///
/// let diagram = NonzeroVoronoiDiagram::build(vec![
///     Circle::new(Point::new(0.0, 0.0), 1.0),
///     Circle::new(Point::new(10.0, 0.0), 1.0),
/// ]);
/// // Two disjoint disks: three faces ({0}, {0,1}, {1}), no vertices.
/// assert_eq!(diagram.complexity().faces, 3);
/// assert_eq!(diagram.query(Point::new(5.0, 0.0)), vec![0, 1]);
/// ```
pub struct NonzeroVoronoiDiagram {
    disks: Vec<Circle>,
    pub curves: Vec<GammaCurve>,
    pub vertices: Vec<DiagramVertex>,
    complexity: DiagramComplexity,
    index: DiskNonzeroIndex,
}

impl NonzeroVoronoiDiagram {
    /// Builds the diagram: envelopes (`O(n² log n)`), vertex enumeration
    /// (proportional to the number of candidate tangencies — the quantity
    /// Theorem 2.5 bounds), and combinatorial assembly.
    pub fn build(disks: Vec<Circle>) -> Self {
        let curves: Vec<GammaCurve> = (0..disks.len())
            .map(|i| GammaCurve::compute(&disks, i))
            .collect();
        let vertices = enumerate_vertices(&disks, &curves);
        let complexity = assemble_complexity(&disks, &curves, &vertices);
        let index = DiskNonzeroIndex::from_disks(&disks);
        NonzeroVoronoiDiagram {
            disks,
            curves,
            vertices,
            complexity,
            index,
        }
    }

    pub fn disks(&self) -> &[Circle] {
        &self.disks
    }

    /// Combinatorial complexity (V, E, F).
    pub fn complexity(&self) -> DiagramComplexity {
        self.complexity
    }

    /// `NN≠0(q)` — the cell label of the face containing `q`.
    pub fn query(&self, q: Point) -> Vec<usize> {
        self.index.query(q)
    }

    /// Number of diagram vertices (the paper's primary complexity measure).
    pub fn num_vertices(&self) -> usize {
        self.vertices.len()
    }
}

/// Computes edge and face counts from curves + vertices.
fn assemble_complexity(
    disks: &[Circle],
    curves: &[GammaCurve],
    vertices: &[DiagramVertex],
) -> DiagramComplexity {
    let _ = disks;
    // Vertices incident to each curve, as polar angles.
    let mut on_curve: Vec<Vec<f64>> = vec![vec![]; curves.len()];
    // For the connectivity union-find we also remember (curve, θ) pairs per
    // crossing vertex.
    let mut crossing_pairs: Vec<((usize, f64), (usize, f64))> = vec![];
    for v in vertices {
        match v.kind {
            WitnessKind::Breakpoint { i, .. } => {
                on_curve[i].push(curves[i].theta_of(v.point));
            }
            WitnessKind::Crossing { i, j, .. } => {
                let ti = curves[i].theta_of(v.point);
                let tj = curves[j].theta_of(v.point);
                on_curve[i].push(ti);
                on_curve[j].push(tj);
                crossing_pairs.push(((i, ti), (j, tj)));
            }
        }
    }

    // Component nodes: (curve, component index) → union-find id.
    let mut node_of: Vec<Vec<usize>> = vec![vec![]; curves.len()]; // per curve, per component
    let mut parent: Vec<usize> = vec![];
    let new_node = |parent: &mut Vec<usize>| {
        parent.push(parent.len());
        parent.len() - 1
    };
    fn find(parent: &mut [usize], mut x: usize) -> usize {
        while parent[x] != x {
            parent[x] = parent[parent[x]];
            x = parent[x];
        }
        x
    }
    fn union(parent: &mut [usize], a: usize, b: usize) {
        let (ra, rb) = (find(parent, a), find(parent, b));
        if ra != rb {
            parent[ra] = rb;
        }
    }

    let mut edges = 0usize;
    let mut phantom_vertices = 0usize;
    let mut has_unbounded = false;
    let mut components_per_curve: Vec<Vec<(Vec<usize>, bool)>> = vec![];
    for (ci, c) in curves.iter().enumerate() {
        let comps = c.components();
        for (comp_idx, (arc_ids, closed)) in comps.iter().enumerate() {
            let node = new_node(&mut parent);
            node_of[ci].push(node);
            debug_assert_eq!(node_of[ci].len() - 1, comp_idx);
            // Count vertices whose θ lies in this component's arcs.
            let count = on_curve[ci]
                .iter()
                .filter(|&&t| {
                    arc_ids.iter().any(|&ai| {
                        let a = &c.arcs[ai];
                        angle::AngleInterval::new(a.theta_lo, a.theta_hi).contains_with_tol(t, 1e-7)
                    })
                })
                .count();
            if *closed {
                if count == 0 {
                    edges += 1;
                    phantom_vertices += 1;
                } else {
                    edges += count;
                }
            } else {
                edges += count + 1;
                has_unbounded = true;
            }
        }
        components_per_curve.push(comps);
    }

    // Infinity node: all unbounded components meet there.
    let infinity = if has_unbounded {
        let node = new_node(&mut parent);
        for (ci, comps) in components_per_curve.iter().enumerate() {
            for (k, (_, closed)) in comps.iter().enumerate() {
                if !closed {
                    union(&mut parent, node_of[ci][k], node);
                }
            }
        }
        Some(node)
    } else {
        None
    };

    // Crossings merge the two curve components they lie on.
    let comp_containing = |ci: usize, t: f64| -> Option<usize> {
        let comps = &components_per_curve[ci];
        for (k, (arc_ids, _)) in comps.iter().enumerate() {
            for &ai in arc_ids {
                let a = &curves[ci].arcs[ai];
                if angle::AngleInterval::new(a.theta_lo, a.theta_hi).contains_with_tol(t, 1e-7) {
                    return Some(k);
                }
            }
        }
        None
    };
    for ((ci, ti), (cj, tj)) in crossing_pairs {
        if let (Some(ka), Some(kb)) = (comp_containing(ci, ti), comp_containing(cj, tj)) {
            union(&mut parent, node_of[ci][ka], node_of[cj][kb]);
        }
    }

    // Count distinct connected components among the nodes.
    let mut roots: Vec<usize> = (0..parent.len()).map(|x| find(&mut parent, x)).collect();
    roots.sort_unstable();
    roots.dedup();
    let c = roots.len();
    let _ = infinity;

    let v_total = vertices.len() + phantom_vertices + usize::from(has_unbounded);
    // Euler: V − E + F = 1 + C  (empty arrangements: F = 1).
    let faces = if parent.is_empty() {
        1
    } else {
        (edges + 1 + c).saturating_sub(v_total)
    };
    DiagramComplexity {
        vertices: vertices.len(),
        edges,
        faces,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload;
    use std::collections::BTreeSet;

    fn disk(x: f64, y: f64, r: f64) -> Circle {
        Circle::new(Point::new(x, y), r)
    }

    #[test]
    fn empty_and_single() {
        let d = NonzeroVoronoiDiagram::build(vec![]);
        assert_eq!(d.complexity().faces, 1);
        let d = NonzeroVoronoiDiagram::build(vec![disk(0.0, 0.0, 1.0)]);
        assert_eq!(
            d.complexity(),
            DiagramComplexity {
                vertices: 0,
                edges: 0,
                faces: 1
            }
        );
        assert_eq!(d.query(Point::new(5.0, 5.0)), vec![0]);
    }

    #[test]
    fn two_disjoint_disks_three_faces() {
        // Two open curves → three faces: {0}, {0,1}, {1}.
        let d = NonzeroVoronoiDiagram::build(vec![disk(0.0, 0.0, 1.0), disk(10.0, 0.0, 1.0)]);
        let c = d.complexity();
        assert_eq!(c.vertices, 0);
        assert_eq!(c.edges, 2);
        assert_eq!(c.faces, 3);
        assert_eq!(d.query(Point::new(-5.0, 0.0)), vec![0]);
        assert_eq!(d.query(Point::new(5.0, 0.0)), vec![0, 1]);
        assert_eq!(d.query(Point::new(15.0, 0.0)), vec![1]);
    }

    #[test]
    fn face_count_dominates_observed_cell_sets() {
        // Each face carries one NN≠0 set, so the number of *distinct* sets
        // seen by random queries is ≤ F.
        for seed in [4u64, 5, 6] {
            let set = workload::random_disk_set(8, 0.3, 2.0, seed);
            let d = NonzeroVoronoiDiagram::build(set.regions());
            let mut seen: BTreeSet<Vec<usize>> = BTreeSet::new();
            for q in workload::random_queries(400, 80.0, seed ^ 1) {
                let mut s = d.query(q);
                s.sort_unstable();
                seen.insert(s);
            }
            let f = d.complexity().faces;
            assert!(
                seen.len() <= f,
                "seed {seed}: {} distinct sets > {} faces",
                seen.len(),
                f
            );
        }
    }

    #[test]
    fn euler_consistency_on_random_instances() {
        for seed in [21u64, 22] {
            let set = workload::random_disk_set(10, 0.2, 2.0, seed);
            let d = NonzeroVoronoiDiagram::build(set.regions());
            let c = d.complexity();
            // Faces ≥ number of points whose cell is nonempty... at minimum
            // the diagram has ≥ 1 face and E ≥ V (each vertex has degree ≥ 3
            // in generic position... along each curve every vertex has two
            // incident edge-ends, so E ≥ V).
            assert!(c.faces >= 1);
            assert!(
                c.edges + 2 >= c.vertices,
                "suspicious counts {c:?} (seed {seed})"
            );
        }
    }

    #[test]
    fn queries_match_brute_force() {
        let set = workload::random_disk_set(20, 0.3, 2.0, 77);
        let d = NonzeroVoronoiDiagram::build(set.regions());
        for q in workload::random_queries(100, 70.0, 3) {
            let mut got = d.query(q);
            let mut brute = crate::nonzero::brute::nonzero_nn_disks(&set.regions(), q);
            got.sort_unstable();
            brute.sort_unstable();
            assert_eq!(got, brute);
        }
    }
}
