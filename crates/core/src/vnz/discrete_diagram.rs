//! The discrete nonzero Voronoi diagram (Section 2.2, Theorem 2.14).
//!
//! For discrete uncertain points the curves `γ_i` are *polygonal*: with the
//! lifting `f(x, p) = ‖p‖² − 2⟨x, p⟩`, the region where `P_j` surely beats
//! `P_i` is the convex polygon
//!
//! ```text
//!   K_ij = { x : Φ_j(x) ≤ φ_i(x) } = ∩_{a,b} { f(x, p_jb) ≤ f(x, p_ia) }
//! ```
//!
//! (Lemma 2.13: an intersection of `≤ k²` halfplanes), and
//! `γ_i = ∂( ∪_{j≠i} K_ij )`. The diagram is the planar subdivision induced
//! by all the `γ_i` — a segment arrangement, with complexity `O(kn³)`
//! (Theorem 2.14), measured in experiment E6.
//!
//! Everything is computed inside a caller-provided working box (the paper's
//! subdivision is of all of `R²`; the box plays the role of the "frame at
//! infinity" and its edges are excluded from complexity counts).

use crate::model::DiscreteSet;
use crate::nonzero::brute::nonzero_nn_discrete;
use uncertain_arrangement::segment::{segment_intersections, Segment};
use uncertain_arrangement::subdivision::{Subdivision, TaggedSegment};
use uncertain_geom::halfplane::{intersect_halfplanes, Halfplane};
use uncertain_geom::predicates::orient2d;
use uncertain_geom::{Aabb, Point};

/// A labeled bounded face of the discrete diagram.
#[derive(Clone, Debug)]
pub struct LabeledFace {
    /// A point strictly inside the face.
    pub sample: Point,
    /// `NN≠0` on this face (sorted).
    pub label: Vec<usize>,
    pub area: f64,
    /// `true` when the sample point is certified to lie in the face's guard
    /// interior (clear of the construction snap tolerance), so the label is
    /// provably valid for every certified-interior query of the face. Faces
    /// too thin to certify are never served from the location fast path.
    pub certified: bool,
}

/// The discrete nonzero Voronoi diagram within a working box.
pub struct DiscreteNonzeroDiagram {
    pub subdivision: Subdivision,
    pub faces: Vec<LabeledFace>,
    /// Delta-encoded label storage over the face-adjacency graph — the
    /// practical stand-in for the persistent sets of [DSST89] the paper
    /// cites: crossing an edge of curve `γ_i` toggles `P_i`'s membership,
    /// so storing one root label per adjacency component plus one toggle
    /// per tree edge reconstructs every face label.
    pub label_store: DeltaLabelStore,
    /// Slab point-location over the subdivision edges (Theorem 2.14's
    /// `O(log µ + t)` query structure).
    locator: uncertain_arrangement::SegmentSlabLocator,
    /// Face id per half-edge (from tracing), for the locator.
    face_of_he: Vec<u32>,
    set: DiscreteSet,
    bbox: Aabb,
    /// Number of γ boundary segments before splitting (curve complexity).
    gamma_segments: usize,
    /// Clearance required of a certified location: a multiple of the
    /// subdivision snap tolerance, chosen so that anything farther than
    /// `guard` from every stored edge is provably on the same side of every
    /// un-snapped γ curve (snapping moves geometry by at most the snap
    /// tolerance; the 8× factor leaves generous slack).
    guard: f64,
}

/// Delta-encoded per-face label storage (the [DSST89] idea the paper cites:
/// storing `P_φ` for all cells costs only `O(µ)` because adjacent cells
/// differ in one element).
#[derive(Clone, Debug, Default)]
pub struct DeltaLabelStore {
    /// Per face: `(parent face, toggled points)` — `parent = u32::MAX`
    /// marks a root, whose full label is stored in `roots`.
    parents: Vec<(u32, Vec<u32>)>,
    /// Root labels, keyed by face id.
    roots: std::collections::HashMap<u32, Vec<usize>>,
}

impl DeltaLabelStore {
    /// Builds the store from the adjacency graph: BFS forest; each tree edge
    /// stores the set of toggled points (several when γ curves coincide
    /// geometrically). Curve ids ≥ `n_points` (the working-box frame) are
    /// dropped. Every encoded label is verified against the explicitly
    /// computed one; on mismatch (conservatively possible under extreme
    /// snapping degeneracies) the face becomes its own root, preserving
    /// exactness.
    fn build(
        n_faces: usize,
        n_points: usize,
        adjacencies: &[uncertain_arrangement::subdivision::FaceAdjacency],
        full: &[Vec<usize>],
    ) -> Self {
        let mut adj: Vec<Vec<(u32, Vec<u32>)>> = vec![vec![]; n_faces];
        for fa in adjacencies {
            let curves: Vec<u32> = fa
                .curves
                .iter()
                .copied()
                .filter(|&c| (c as usize) < n_points)
                .collect();
            if curves.is_empty() {
                continue;
            }
            adj[fa.a as usize].push((fa.b, curves.clone()));
            adj[fa.b as usize].push((fa.a, curves));
        }
        let mut parents: Vec<(u32, Vec<u32>)> = vec![(u32::MAX, vec![]); n_faces];
        let mut roots = std::collections::HashMap::new();
        let mut seen = vec![false; n_faces];
        for start in 0..n_faces {
            if seen[start] {
                continue;
            }
            seen[start] = true;
            roots.insert(start as u32, full[start].clone());
            let mut queue = std::collections::VecDeque::from([start as u32]);
            while let Some(f) = queue.pop_front() {
                for (g, curves) in adj[f as usize].clone() {
                    if seen[g as usize] {
                        continue;
                    }
                    // Verify the toggle actually transforms f's label into
                    // g's (guards against snapping artifacts).
                    let mut expect: std::collections::BTreeSet<usize> =
                        full[f as usize].iter().copied().collect();
                    for &c in &curves {
                        let c = c as usize;
                        if !expect.remove(&c) {
                            expect.insert(c);
                        }
                    }
                    let matches =
                        expect.iter().copied().collect::<Vec<usize>>() == full[g as usize];
                    seen[g as usize] = true;
                    if matches {
                        parents[g as usize] = (f, curves);
                    } else {
                        roots.insert(g, full[g as usize].clone());
                    }
                    queue.push_back(g);
                }
            }
        }
        DeltaLabelStore { parents, roots }
    }

    /// Reconstructs the label of `face` by walking to its root and applying
    /// the toggles along the way.
    pub fn label(&self, face: usize) -> Vec<usize> {
        let mut toggles: Vec<u32> = vec![];
        let mut cur = face as u32;
        loop {
            if let Some(root) = self.roots.get(&cur) {
                let mut set: std::collections::BTreeSet<usize> = root.iter().copied().collect();
                for &t in &toggles {
                    let t = t as usize;
                    if !set.remove(&t) {
                        set.insert(t);
                    }
                }
                return set.into_iter().collect();
            }
            let (parent, curves) = &self.parents[cur as usize];
            toggles.extend(curves.iter().copied());
            cur = *parent;
        }
    }

    /// Storage cost in stored indices: Σ|root labels| + Σ|toggle sets|
    /// (vs Σ|labels| for explicit storage).
    pub fn storage_cost(&self) -> usize {
        let root_cost: usize = self.roots.values().map(|v| v.len()).sum();
        let delta_cost: usize = self
            .parents
            .iter()
            .filter(|(par, _)| *par != u32::MAX)
            .map(|(_, c)| c.len())
            .sum();
        root_cost + delta_cost
    }

    /// Number of roots (1 per adjacency component plus fallbacks).
    pub fn num_roots(&self) -> usize {
        self.roots.len()
    }
}

impl DiscreteNonzeroDiagram {
    /// Builds the diagram of `set` clipped to `bbox`.
    pub fn build(set: &DiscreteSet, bbox: &Aabb) -> Self {
        let n = set.len();
        let scale = bbox.radius().max(1.0);
        // 1. The convex "loss polygons" K_ij for every ordered pair.
        let mut loss: Vec<Vec<Vec<Point>>> = vec![vec![]; n]; // loss[i] = list of K_ij
        #[allow(clippy::needless_range_loop)] // `i` and `j` index `set` and `loss` symmetrically
        for i in 0..n {
            for j in 0..n {
                if i == j {
                    continue;
                }
                let poly = loss_polygon(set, i, j, bbox);
                if !poly.is_empty() {
                    loss[i].push(poly);
                }
            }
        }
        // 2. γ_i = boundary of the union of loss[i], as segments.
        let mut segments: Vec<TaggedSegment> = vec![];
        let mut gamma_segments = 0usize;
        #[allow(clippy::needless_range_loop)] // `i` is also the curve tag
        for i in 0..n {
            let boundary = union_boundary(&loss[i], bbox, scale);
            gamma_segments += boundary.len();
            segments.extend(boundary.into_iter().map(|seg| TaggedSegment {
                seg,
                curve: i as u32,
            }));
        }
        // 3. The arrangement of all curves, framed by the working box so
        // the "faces at infinity" become bounded and labelable.
        let corners = bbox.corners();
        for w in 0..4 {
            segments.push(TaggedSegment {
                seg: Segment::new(corners[w], corners[(w + 1) % 4]),
                curve: (n + w) as u32,
            });
        }
        let subdivision = Subdivision::build(&segments, 1e-9 * scale);
        // 4. Label bounded faces by evaluating NN≠0 at the face samples.
        let traced = subdivision.traced_faces();
        let mut faces: Vec<LabeledFace> = traced
            .faces
            .iter()
            .map(|f| {
                let mut label = nonzero_nn_discrete(set, f.sample);
                label.sort_unstable();
                LabeledFace {
                    sample: f.sample,
                    label,
                    area: f.area,
                    certified: false,
                }
            })
            .collect();
        // 5. Delta-encode the labels over the adjacency forest ([DSST89]).
        let full: Vec<Vec<usize>> = faces.iter().map(|f| f.label.clone()).collect();
        let label_store = DeltaLabelStore::build(faces.len(), n, &traced.adjacencies, &full);
        // 6. Point-location structure (Theorem 2.14's query companion).
        let locator = uncertain_arrangement::SegmentSlabLocator::build(
            &subdivision.vertices,
            &subdivision.edges,
        );
        // 7. Certify face samples: a face's label may be served from the
        // location fast path only when its sample provably sits clear of
        // the snap-tolerance shell around the face boundary (otherwise the
        // brute label computed at the sample could belong to a neighboring
        // un-snapped region).
        let guard = 8.0 * subdivision.snap_tol();
        for (fid, face) in faces.iter_mut().enumerate() {
            if let uncertain_arrangement::CertifiedLocation::Interior { edge } =
                locator.locate_certified(face.sample, guard)
            {
                face.certified =
                    face_above_edge(&subdivision, &traced.face_of_halfedge, edge) == Some(fid);
            }
        }
        DiscreteNonzeroDiagram {
            subdivision,
            faces,
            label_store,
            locator,
            face_of_he: traced.face_of_halfedge,
            set: set.clone(),
            bbox: *bbox,
            gamma_segments,
            guard,
        }
    }

    /// `NN≠0(q)` (Lemma 2.1 evaluation — see DESIGN.md substitutions).
    pub fn query(&self, q: Point) -> Vec<usize> {
        nonzero_nn_discrete(&self.set, q)
    }

    /// The bounded face containing `q`, by certified slab point location
    /// (`O(log µ)`).
    ///
    /// Returns `Some` only when the answer is *certified*: `q` keeps a
    /// guard-band clearance (a small multiple of the construction snap
    /// tolerance) from every stored edge and slab boundary, and the face's
    /// own sample is certified the same way — so the served label provably
    /// equals the Lemma 2.1 evaluation at `q`. Returns `None` when `q` is
    /// outside the working box, exactly on an edge or vertex, inside the
    /// guard band, above a hole boundary, or in an uncertified (too-thin)
    /// face — callers fall back to [`query`](Self::query), which is exact,
    /// so the combined query path is exact for **every** `q`.
    pub fn locate_face(&self, q: Point) -> Option<usize> {
        let uncertain_arrangement::CertifiedLocation::Interior { edge } =
            self.locator.locate_certified(q, self.guard)
        else {
            return None;
        };
        let f = face_above_edge(&self.subdivision, &self.face_of_he, edge)?;
        self.faces[f].certified.then_some(f)
    }

    /// `NN≠0(q)` through the point-location structure — the Theorem 2.14
    /// query path: `O(log µ + t)` when certified location succeeds, exact
    /// Lemma 2.1 fallback otherwise. Unconditionally agrees with
    /// [`query`](Self::query).
    pub fn query_located(&self, q: Point) -> Vec<usize> {
        match self.locate_face(q) {
            Some(f) => self.faces[f].label.clone(),
            None => self.query(q),
        }
    }

    /// The guard-band clearance certified locations must keep (a small
    /// multiple of the subdivision snap tolerance).
    pub fn location_guard(&self) -> f64 {
        self.guard
    }

    /// Number of faces whose samples certify for fast-path serving.
    pub fn certified_faces(&self) -> usize {
        self.faces.iter().filter(|f| f.certified).count()
    }

    /// Size of the point-location structure (slab–edge incidences).
    pub fn locator_size(&self) -> usize {
        self.locator.size()
    }

    /// Combinatorial complexity `V + E + F` of the subdivision (the measure
    /// bounded by Theorem 2.14; includes the working-box frame).
    pub fn complexity(&self) -> usize {
        self.subdivision.complexity()
    }

    /// Number of γ boundary segments before arrangement splitting.
    pub fn gamma_segment_count(&self) -> usize {
        self.gamma_segments
    }

    pub fn bbox(&self) -> &Aabb {
        &self.bbox
    }

    /// Number of distinct face labels among bounded faces.
    pub fn distinct_labels(&self) -> usize {
        let mut labels: Vec<&[usize]> = self.faces.iter().map(|f| f.label.as_slice()).collect();
        labels.sort();
        labels.dedup();
        labels.len()
    }
}

/// The bounded face lying *above* subdivision edge `eid`: the face of the
/// rightward-pointing half-edge (its left side is "up"). `None` for hole
/// and outer boundaries.
fn face_above_edge(subdivision: &Subdivision, face_of_he: &[u32], eid: u32) -> Option<usize> {
    let (a, b) = subdivision.edges[eid as usize];
    let pa = subdivision.vertices[a as usize];
    let pb = subdivision.vertices[b as usize];
    let he = if pa.x < pb.x { 2 * eid } else { 2 * eid + 1 };
    let f = face_of_he[he as usize];
    (f != u32::MAX).then_some(f as usize)
}

/// `K_ij` clipped to the box: the convex region where every location of `j`
/// is at least as close as every location of `i`.
fn loss_polygon(set: &DiscreteSet, i: usize, j: usize, bbox: &Aabb) -> Vec<Point> {
    let pi = &set.points[i];
    let pj = &set.points[j];
    let mut planes = Vec::with_capacity(pi.k() * pj.k());
    for &pa in pi.locations() {
        for &pb in pj.locations() {
            // f(x, p_jb) ≤ f(x, p_ia)  ⇔  2(p_ia − p_jb)·x ≤ ‖p_ia‖² − ‖p_jb‖²
            let nvec = (pa - pb) * 2.0;
            let c = pa.to_vector().norm2() - pb.to_vector().norm2();
            planes.push(Halfplane::new(nvec, c));
        }
    }
    intersect_halfplanes(&planes, bbox)
}

/// Boundary of the union of convex polygons, excluding pieces on the box
/// frame: split every polygon edge at its intersections with all other
/// polygons' edges; keep subsegments whose midpoint is not strictly inside
/// any *other* polygon.
fn union_boundary(polys: &[Vec<Point>], bbox: &Aabb, scale: f64) -> Vec<Segment> {
    let mut edges: Vec<(Segment, usize)> = vec![]; // (edge, polygon id)
    for (pid, poly) in polys.iter().enumerate() {
        for e in 0..poly.len() {
            let a = poly[e];
            let b = poly[(e + 1) % poly.len()];
            if a.dist(b) > 1e-12 * scale {
                edges.push((Segment::new(a, b), pid));
            }
        }
    }
    let mut out = vec![];
    for (ei, &(seg, pid)) in edges.iter().enumerate() {
        // Skip edges lying on the box frame (artifacts of clipping).
        if on_box_frame(&seg, bbox, scale) {
            continue;
        }
        let mut params = vec![0.0, 1.0];
        for (ej, &(other, _)) in edges.iter().enumerate() {
            if ei == ej {
                continue;
            }
            for (t, _) in segment_intersections(&seg, &other) {
                params.push(t);
            }
        }
        params.sort_by(|a, b| a.partial_cmp(b).unwrap());
        params.dedup_by(|a, b| (*a - *b).abs() < 1e-12);
        for w in params.windows(2) {
            let mid = seg.at(0.5 * (w[0] + w[1]));
            let covered = polys
                .iter()
                .enumerate()
                .any(|(qid, poly)| qid != pid && strictly_inside_convex(poly, mid, scale));
            if !covered {
                out.push(Segment::new(seg.at(w[0]), seg.at(w[1])));
            }
        }
    }
    out
}

fn on_box_frame(seg: &Segment, bbox: &Aabb, scale: f64) -> bool {
    let tol = 1e-9 * scale;
    let on_wall = |p: Point| {
        (p.x - bbox.lo.x).abs() <= tol
            || (p.x - bbox.hi.x).abs() <= tol
            || (p.y - bbox.lo.y).abs() <= tol
            || (p.y - bbox.hi.y).abs() <= tol
    };
    on_wall(seg.a) && on_wall(seg.b) && {
        // Same wall: both endpoints share an x- or y-wall coordinate.
        ((seg.a.x - seg.b.x).abs() <= tol
            && ((seg.a.x - bbox.lo.x).abs() <= tol || (seg.a.x - bbox.hi.x).abs() <= tol))
            || ((seg.a.y - seg.b.y).abs() <= tol
                && ((seg.a.y - bbox.lo.y).abs() <= tol || (seg.a.y - bbox.hi.y).abs() <= tol))
    }
}

fn strictly_inside_convex(poly: &[Point], q: Point, scale: f64) -> bool {
    if poly.len() < 3 {
        return false;
    }
    let tol = 1e-9 * scale;
    for e in 0..poly.len() {
        let a = poly[e];
        let b = poly[(e + 1) % poly.len()];
        let o = orient2d(a, b, q);
        // Positive (ccw) orientation means inside-left; require a margin.
        if o <= tol * a.dist(b) {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::DiscreteUncertainPoint;
    use crate::workload;

    fn bbox() -> Aabb {
        Aabb::from_corners(Point::new(-60.0, -60.0), Point::new(60.0, 60.0))
    }

    fn p(x: f64, y: f64) -> Point {
        Point::new(x, y)
    }

    #[test]
    fn two_certain_points_bisector() {
        let set = DiscreteSet::new(vec![
            DiscreteUncertainPoint::certain(p(-5.0, 0.0)),
            DiscreteUncertainPoint::certain(p(5.0, 0.0)),
        ]);
        let d = DiscreteNonzeroDiagram::build(&set, &bbox());
        // The only curve is the bisector x = 0: two bounded faces with
        // labels {0} and {1}.
        assert_eq!(d.faces.len(), 2);
        let mut labels: Vec<Vec<usize>> = d.faces.iter().map(|f| f.label.clone()).collect();
        labels.sort();
        assert_eq!(labels, vec![vec![0], vec![1]]);
    }

    #[test]
    fn k2_pair_has_middle_region() {
        // Two 2-location points with separated clusters: in the middle both
        // can be NN, near each cluster only that point can.
        let set = DiscreteSet::new(vec![
            DiscreteUncertainPoint::uniform(vec![p(-10.0, 0.0), p(-8.0, 1.0)]),
            DiscreteUncertainPoint::uniform(vec![p(10.0, 0.0), p(8.0, -1.0)]),
        ]);
        let d = DiscreteNonzeroDiagram::build(&set, &bbox());
        let labels: std::collections::BTreeSet<Vec<usize>> =
            d.faces.iter().map(|f| f.label.clone()).collect();
        assert!(labels.contains(&vec![0]), "labels: {labels:?}");
        assert!(labels.contains(&vec![1]), "labels: {labels:?}");
        assert!(labels.contains(&vec![0, 1]), "labels: {labels:?}");
    }

    #[test]
    fn face_labels_match_brute_force_at_samples() {
        let set = workload::random_discrete_set(6, 3, 6.0, 12);
        let d = DiscreteNonzeroDiagram::build(&set, &bbox());
        assert!(!d.faces.is_empty());
        for f in &d.faces {
            let mut brute = nonzero_nn_discrete(&set, f.sample);
            brute.sort_unstable();
            assert_eq!(f.label, brute);
        }
    }

    #[test]
    fn every_nonzero_set_appears_as_a_face_label() {
        // Random queries inside the box must produce labels that exist among
        // the face labels (queries on edges are measure-zero).
        let set = workload::random_discrete_set(5, 2, 5.0, 31);
        let d = DiscreteNonzeroDiagram::build(&set, &bbox());
        let labels: std::collections::BTreeSet<Vec<usize>> =
            d.faces.iter().map(|f| f.label.clone()).collect();
        for q in workload::random_queries(200, 80.0, 7) {
            let mut s = nonzero_nn_discrete(&set, q);
            s.sort_unstable();
            assert!(
                labels.contains(&s),
                "set {s:?} at {q} not among {} face labels",
                labels.len()
            );
        }
    }

    #[test]
    fn delta_store_reconstructs_all_labels() {
        for seed in [12u64, 31] {
            let set = workload::random_discrete_set(6, 3, 6.0, seed);
            let d = DiscreteNonzeroDiagram::build(&set, &bbox());
            for (fid, f) in d.faces.iter().enumerate() {
                assert_eq!(
                    d.label_store.label(fid),
                    f.label,
                    "face {fid} label mismatch (seed {seed})"
                );
            }
            // The encoding should genuinely compress: cost below explicit
            // storage for non-trivial diagrams.
            let explicit: usize = d.faces.iter().map(|f| f.label.len()).sum();
            if d.faces.len() > 10 {
                assert!(
                    d.label_store.storage_cost() < explicit,
                    "delta {} ≥ explicit {explicit}",
                    d.label_store.storage_cost()
                );
            }
        }
    }

    #[test]
    fn delta_store_handles_coinciding_curves() {
        // Two certain points: γ_0 and γ_1 coincide on the bisector, so the
        // single separating edge must toggle both points.
        let set = DiscreteSet::new(vec![
            DiscreteUncertainPoint::certain(p(-5.0, 0.0)),
            DiscreteUncertainPoint::certain(p(5.0, 0.0)),
        ]);
        let d = DiscreteNonzeroDiagram::build(&set, &bbox());
        assert_eq!(d.faces.len(), 2);
        for (fid, f) in d.faces.iter().enumerate() {
            assert_eq!(d.label_store.label(fid), f.label);
        }
    }

    #[test]
    fn point_location_agrees_with_direct_evaluation() {
        for seed in [3u64, 14] {
            let set = workload::random_discrete_set(6, 3, 7.0, seed);
            let d = DiscreteNonzeroDiagram::build(&set, &bbox());
            let mut located = 0usize;
            for q in workload::random_queries(300, 80.0, seed + 77) {
                let via_location = d.query_located(q);
                let mut brute = nonzero_nn_discrete(&set, q);
                brute.sort_unstable();
                assert_eq!(via_location, brute, "at {q} (seed {seed})");
                if d.locate_face(q).is_some() {
                    located += 1;
                }
            }
            assert!(located > 200, "point location should succeed usually");
        }
    }

    #[test]
    fn located_face_sample_shares_label() {
        let set = workload::random_discrete_set(5, 2, 6.0, 8);
        let d = DiscreteNonzeroDiagram::build(&set, &bbox());
        for (fid, f) in d.faces.iter().enumerate() {
            // Locating the face's own sample must find the face itself (or
            // at least one with an identical label).
            if let Some(g) = d.locate_face(f.sample) {
                assert_eq!(d.faces[g].label, f.label, "face {fid} vs located {g}");
            }
        }
    }

    #[test]
    fn complexity_grows_with_k() {
        let small = workload::random_discrete_set(5, 2, 6.0, 9);
        let large = workload::random_discrete_set(5, 5, 6.0, 9);
        let d1 = DiscreteNonzeroDiagram::build(&small, &bbox());
        let d2 = DiscreteNonzeroDiagram::build(&large, &bbox());
        // Not a theorem for single instances, but overwhelmingly true and a
        // good smoke test for the k-dependence of Theorem 2.14.
        assert!(d2.complexity() + 8 >= d1.complexity());
    }
}
