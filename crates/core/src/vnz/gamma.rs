//! The curves `γ_i = {x : δ_i(x) = Δ(x)}` via polar lower envelopes
//! (Lemma 2.2).
//!
//! Around the center `c_i`, each pairwise curve `γ_ij` is a polar function
//! (a hyperbola branch, [`uncertain_geom::hyperbola::PolarBranch`]) and
//! `γ_i(θ) = min_{j≠i} γ_ij(θ)`. The envelope's pieces ("arcs") each carry
//! an *owner* `j` — the point whose `Δ_j` realizes `Δ` along that arc. Arc
//! boundaries between two finite arcs are the curve's *breakpoints*; gaps
//! are directions in which `P_i`'s cell is unbounded (the curve escapes to
//! infinity).

use std::collections::HashMap;
use std::f64::consts::TAU;
use uncertain_envelope::polar::{lower_envelope_circle, EnvelopeOracle};
use uncertain_geom::hyperbola::PolarBranch;
use uncertain_geom::{angle, Circle, Point};

/// One maximal arc of `γ_i` with a fixed envelope owner.
#[derive(Clone, Copy, Debug)]
pub struct GammaArc {
    pub theta_lo: f64,
    pub theta_hi: f64,
    /// Index `j` of the disk whose `Δ_j` realizes `Δ` on this arc.
    pub owner: usize,
}

impl GammaArc {
    pub fn width(&self) -> f64 {
        self.theta_hi - self.theta_lo
    }

    pub fn contains(&self, theta: f64, tol: f64) -> bool {
        theta >= self.theta_lo - tol && theta <= self.theta_hi + tol
    }
}

/// The full curve `γ_i` in polar form around `c_i`.
#[derive(Clone, Debug)]
pub struct GammaCurve {
    /// The index `i` of the disk this curve belongs to.
    pub i: usize,
    /// Envelope arcs, sorted by `theta_lo`, over `[0, 2π]`.
    pub arcs: Vec<GammaArc>,
    /// The supporting branch per owner.
    branches: HashMap<usize, PolarBranch>,
    center: Point,
}

struct BranchOracle<'a> {
    branches: &'a [(usize, PolarBranch)],
}

impl EnvelopeOracle for BranchOracle<'_> {
    fn eval(&self, id: usize, t: f64) -> f64 {
        self.branches[id].1.eval(t)
    }
    fn domains(&self, id: usize) -> Vec<(f64, f64)> {
        self.branches[id].1.domain().split_unwrapped()
    }
    fn crossings(&self, a: usize, b: usize) -> Vec<f64> {
        self.branches[a].1.crossings(&self.branches[b].1)
    }
}

impl GammaCurve {
    /// Computes `γ_i` for disk `i` of `disks`. `O(n log n)` envelope merge
    /// (Lemma 2.2: the envelope has `O(n)` breakpoints).
    pub fn compute(disks: &[Circle], i: usize) -> Self {
        let mut branches: Vec<(usize, PolarBranch)> = vec![];
        for (j, dj) in disks.iter().enumerate() {
            if j == i {
                continue;
            }
            if let Some(b) = PolarBranch::new(&disks[i], dj) {
                branches.push((j, b));
            }
        }
        let oracle = BranchOracle {
            branches: &branches,
        };
        let ids: Vec<usize> = (0..branches.len()).collect();
        let env = lower_envelope_circle(&ids, &oracle);
        let arcs: Vec<GammaArc> = env
            .pieces
            .iter()
            .map(|p| GammaArc {
                theta_lo: p.lo,
                theta_hi: p.hi,
                owner: branches[p.id].0,
            })
            .collect();
        let branch_map = branches.into_iter().collect();
        GammaCurve {
            i,
            arcs,
            branches: branch_map,
            center: disks[i].center,
        }
    }

    /// `γ_i(θ)` (`+∞` in escape directions).
    pub fn eval(&self, theta: f64) -> f64 {
        let t = angle::normalize(theta);
        match self.arc_at(t) {
            Some(a) => self.branches[&a.owner].eval(t),
            None => f64::INFINITY,
        }
    }

    /// The point of the curve in direction `θ`, if any.
    pub fn point_at(&self, theta: f64) -> Option<Point> {
        let t = angle::normalize(theta);
        let arc = self.arc_at(t)?;
        let p = self.branches[&arc.owner].point_at(t);
        p.is_finite().then_some(p)
    }

    /// The arc covering direction `θ`.
    pub fn arc_at(&self, theta: f64) -> Option<&GammaArc> {
        let t = angle::normalize(theta);
        let idx = self.arcs.partition_point(|a| a.theta_hi < t);
        self.arcs.get(idx).filter(|a| a.contains(t, 0.0))
    }

    /// Polar angle of `p` around this curve's focus `c_i`.
    pub fn theta_of(&self, p: Point) -> f64 {
        angle::normalize((p - self.center).angle())
    }

    /// The supporting branch for owner `j` (if `γ_ij` is non-empty).
    pub fn branch(&self, owner: usize) -> Option<&PolarBranch> {
        self.branches.get(&owner)
    }

    /// `true` when the curve is a closed loop around `c_i` (no escape
    /// directions).
    pub fn is_closed(&self) -> bool {
        (self.covered_width() - TAU).abs() < 1e-9
    }

    /// Total angular width covered by arcs.
    pub fn covered_width(&self) -> f64 {
        self.arcs.iter().map(GammaArc::width).sum()
    }

    /// `true` when `γ_i` is empty (the point is *never* excluded — e.g. its
    /// disk intersects every other disk's "reach", so its cell is all of the
    /// plane; also the `n = 1` case).
    pub fn is_empty(&self) -> bool {
        self.arcs.is_empty()
    }

    /// Breakpoints of the envelope: boundaries between two *contiguous*
    /// finite arcs with different owners. Returns `(θ, owner_before,
    /// owner_after)`.
    pub fn breakpoints(&self) -> Vec<(f64, usize, usize)> {
        let mut out = vec![];
        if self.arcs.len() < 2 {
            // A single full-circle arc can still meet itself at the 0/2π
            // seam only with the same owner — no breakpoint.
            return out;
        }
        let tol = 1e-9;
        for w in self.arcs.windows(2) {
            if (w[0].theta_hi - w[1].theta_lo).abs() <= tol && w[0].owner != w[1].owner {
                out.push((w[1].theta_lo, w[0].owner, w[1].owner));
            }
        }
        // Wrap-around seam 2π → 0.
        let first = self.arcs.first().unwrap();
        let last = self.arcs.last().unwrap();
        let seam = (last.theta_hi - TAU).abs() <= tol && first.theta_lo.abs() <= tol;
        if seam && first.owner != last.owner {
            out.push((0.0, last.owner, first.owner));
        }
        out
    }

    /// Maximal runs of contiguous arcs: each is a connected component of the
    /// curve. Returns, per component, the arc indices (in angular order,
    /// possibly wrapping through the 0/2π seam) and whether the component is
    /// a closed loop (covers the full circle).
    pub fn components(&self) -> Vec<(Vec<usize>, bool)> {
        if self.arcs.is_empty() {
            return vec![];
        }
        let tol = 1e-9;
        let mut runs: Vec<Vec<usize>> = vec![vec![0]];
        for k in 1..self.arcs.len() {
            if (self.arcs[k - 1].theta_hi - self.arcs[k].theta_lo).abs() > tol {
                runs.push(vec![k]);
            } else {
                runs.last_mut().unwrap().push(k);
            }
        }
        let seam = (self.arcs.last().unwrap().theta_hi - TAU).abs() <= tol
            && self.arcs[0].theta_lo.abs() <= tol;
        if seam && runs.len() > 1 {
            // The last run continues into the first across the seam.
            let first = runs.remove(0);
            runs.last_mut().unwrap().extend(first);
            return runs.into_iter().map(|r| (r, false)).collect();
        }
        let single_closed = runs.len() == 1 && seam;
        runs.into_iter().map(|r| (r, single_closed)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nonzero::brute::nonzero_nn_disks;
    use crate::workload;

    fn disk(x: f64, y: f64, r: f64) -> Circle {
        Circle::new(Point::new(x, y), r)
    }

    /// Points on γ_i satisfy δ_i = Δ; points just inside/outside flip the
    /// membership of P_i in NN≠0 (Lemma 2.1 + Eq. (4)).
    #[test]
    fn curve_points_are_on_the_boundary() {
        let disks = vec![
            disk(0.0, 0.0, 1.0),
            disk(8.0, 0.0, 1.5),
            disk(0.0, 9.0, 0.5),
            disk(-7.0, -3.0, 2.0),
        ];
        for i in 0..disks.len() {
            let c = GammaCurve::compute(&disks, i);
            for arc in &c.arcs {
                for f in [0.25, 0.5, 0.75] {
                    let t = arc.theta_lo + arc.width() * f;
                    let Some(p) = c.point_at(t) else { continue };
                    let delta_i = disks[i].min_dist(p);
                    let big_delta = disks
                        .iter()
                        .map(|d| d.max_dist(p))
                        .fold(f64::INFINITY, f64::min);
                    assert!(
                        (delta_i - big_delta).abs() < 1e-7 * (1.0 + big_delta),
                        "γ_{i} point at θ={t} is not on the boundary"
                    );
                    // Just inside (towards c_i): P_i is a nonzero NN; just
                    // outside: it is not.
                    let r = disks[i].center.dist(p);
                    let dir = (p - disks[i].center) * (1.0 / r);
                    let inside = disks[i].center + dir * (r * 0.999);
                    let outside = disks[i].center + dir * (r * 1.001);
                    assert!(nonzero_nn_disks(&disks, inside).contains(&i));
                    assert!(!nonzero_nn_disks(&disks, outside).contains(&i));
                }
            }
        }
    }

    #[test]
    fn single_disk_has_empty_curve() {
        let disks = vec![disk(0.0, 0.0, 1.0)];
        let c = GammaCurve::compute(&disks, 0);
        assert!(c.is_empty());
        assert_eq!(c.eval(1.0), f64::INFINITY);
    }

    #[test]
    fn two_disks_open_curves() {
        let disks = vec![disk(0.0, 0.0, 1.0), disk(10.0, 0.0, 1.0)];
        let c0 = GammaCurve::compute(&disks, 0);
        // One open arc towards the other disk; cell unbounded away from it.
        assert!(!c0.is_empty());
        assert!(!c0.is_closed());
        assert_eq!(c0.components().len(), 1);
        assert!(c0.breakpoints().is_empty());
        // The curve in direction of disk 1 sits where d(x,c0) − 1 = d(x,c1)+1.
        let r = c0.eval(0.0);
        assert!(((r - 1.0) - ((10.0 - r) + 1.0)).abs() < 1e-9, "r = {r}");
    }

    #[test]
    fn surrounded_disk_has_closed_curve() {
        // A small disk surrounded by a distant ring of disks: γ is closed.
        let mut disks = vec![disk(0.0, 0.0, 0.5)];
        for k in 0..8 {
            let ang = TAU * k as f64 / 8.0;
            disks.push(disk(12.0 * ang.cos(), 12.0 * ang.sin(), 0.5));
        }
        let c = GammaCurve::compute(&disks, 0);
        assert!(c.is_closed(), "covered {}", c.covered_width());
        assert!(!c.breakpoints().is_empty());
        // All breakpoints satisfy the three-way equality δ_0 = Δ_k1 = Δ_k2.
        for (t, k1, k2) in c.breakpoints() {
            let p = c.point_at(t + 1e-12).or_else(|| c.point_at(t)).unwrap();
            let d0 = disks[0].min_dist(p);
            let dk1 = disks[k1].max_dist(p);
            let dk2 = disks[k2].max_dist(p);
            assert!((d0 - dk1).abs() < 1e-6, "δ0={d0} Δk1={dk1}");
            assert!((d0 - dk2).abs() < 1e-6, "δ0={d0} Δk2={dk2}");
        }
    }

    #[test]
    fn envelope_matches_brute_force_minimum() {
        let set = workload::random_disk_set(12, 0.2, 2.0, 99);
        let disks = set.regions();
        for i in 0..disks.len() {
            let c = GammaCurve::compute(&disks, i);
            for s in 0..360 {
                let t = TAU * (s as f64 + 0.5) / 360.0;
                let env = c.eval(t);
                // Brute force: min over all branches.
                let mut brute = f64::INFINITY;
                for (j, dj) in disks.iter().enumerate() {
                    if j == i {
                        continue;
                    }
                    if let Some(b) = PolarBranch::new(&disks[i], dj) {
                        brute = brute.min(b.eval(t));
                    }
                }
                if env.is_infinite() && brute.is_infinite() {
                    continue;
                }
                assert!(
                    (env - brute).abs() < 1e-7 * (1.0 + brute.abs()),
                    "γ_{i}({t}): env {env} brute {brute}"
                );
            }
        }
    }

    #[test]
    fn overlapping_disks_no_curve() {
        // Two heavily overlapping disks never exclude each other; with only
        // two points both curves are empty (cells = whole plane).
        let disks = vec![disk(0.0, 0.0, 2.0), disk(1.0, 0.0, 2.0)];
        assert!(GammaCurve::compute(&disks, 0).is_empty());
        assert!(GammaCurve::compute(&disks, 1).is_empty());
    }
}
