//! The guaranteed Voronoi diagram ([SE08], discussed in Sections 1.2 and 2
//! of the paper).
//!
//! The *guaranteed region* of `P_i` is the set of queries whose nearest
//! neighbor is **surely** `P_i`:
//!
//! ```text
//!   G_i = { q : Δ_i(q) ≤ δ_j(q)  for all j ≠ i }   ⇒   π_i(q) = 1.
//! ```
//!
//! Exactly like the nonzero cells, `G_i` is radially convex around `c_i`
//! and its boundary is the polar lower envelope of closed-form hyperbola
//! branches (`σ_ij = {x : Δ_i(x) = δ_j(x)}`,
//! [`uncertain_geom::hyperbola::SureBranch`]) — the same machinery as
//! Lemma 2.2 with the roles of `δ` and `Δ` swapped. [SE08] show the
//! guaranteed cells have `O(n)` *total* complexity (in contrast to the
//! `Θ(n³)` of the full nonzero diagram) — measured in experiment E15.

use std::f64::consts::TAU;
use uncertain_envelope::polar::{lower_envelope_circle, EnvelopeOracle};
use uncertain_geom::hyperbola::SureBranch;
use uncertain_geom::{angle, Circle, Point};

/// The guaranteed region `G_i` of one uncertain disk.
#[derive(Clone, Debug)]
pub struct GuaranteedRegion {
    pub i: usize,
    /// Envelope arcs `(θ_lo, θ_hi, owner j)`; directions not covered by any
    /// arc are unconstrained (the region is unbounded there).
    pub arcs: Vec<(f64, f64, usize)>,
    branches: std::collections::HashMap<usize, SureBranch>,
    center: Point,
}

struct SureOracle<'a> {
    branches: &'a [(usize, SureBranch)],
}

impl EnvelopeOracle for SureOracle<'_> {
    fn eval(&self, id: usize, t: f64) -> f64 {
        self.branches[id].1.eval(t)
    }
    fn domains(&self, id: usize) -> Vec<(f64, f64)> {
        self.branches[id].1.domain().split_unwrapped()
    }
    fn crossings(&self, a: usize, b: usize) -> Vec<f64> {
        self.branches[a].1.crossings(&self.branches[b].1)
    }
}

impl GuaranteedRegion {
    /// Computes `G_i` for disk `i`. Returns a region with empty arcs when
    /// no constraint ever binds (`n = 1`); [`is_empty`](Self::is_empty)
    /// detects the opposite extreme where the region is void.
    pub fn compute(disks: &[Circle], i: usize) -> Self {
        let mut branches: Vec<(usize, SureBranch)> = vec![];
        let mut void = false;
        for (j, dj) in disks.iter().enumerate() {
            if j == i {
                continue;
            }
            match SureBranch::new(&disks[i], dj) {
                Some(b) => branches.push((j, b)),
                // ‖c_j − c_i‖ ≤ r_i + r_j: P_i can never be surely closer
                // than P_j anywhere — the whole region is empty.
                None => void = true,
            }
        }
        if void {
            return GuaranteedRegion {
                i,
                arcs: vec![(0.0, TAU, usize::MAX)], // sentinel: empty region
                branches: std::collections::HashMap::new(),
                center: disks[i].center,
            };
        }
        let oracle = SureOracle {
            branches: &branches,
        };
        let ids: Vec<usize> = (0..branches.len()).collect();
        let env = lower_envelope_circle(&ids, &oracle);
        let arcs = env
            .pieces
            .iter()
            .map(|p| (p.lo, p.hi, branches[p.id].0))
            .collect();
        GuaranteedRegion {
            i,
            arcs,
            branches: branches.into_iter().collect(),
            center: disks[i].center,
        }
    }

    /// `true` when the region is provably empty (some disk is too close).
    pub fn is_void(&self) -> bool {
        self.arcs.first().is_some_and(|&(_, _, o)| o == usize::MAX)
    }

    /// Radial bound of the region in direction `θ` (`+∞` when unbounded).
    pub fn radial_bound(&self, theta: f64) -> f64 {
        if self.is_void() {
            return f64::NEG_INFINITY;
        }
        let t = angle::normalize(theta);
        for &(lo, hi, owner) in &self.arcs {
            if t >= lo && t <= hi {
                return self.branches[&owner].eval(t);
            }
        }
        f64::INFINITY
    }

    /// `true` iff `q` lies in the (closed) guaranteed region.
    pub fn contains(&self, q: Point) -> bool {
        if self.is_void() {
            return false;
        }
        let v = q - self.center;
        let r = v.norm();
        if r == 0.0 {
            return true;
        }
        r <= self.radial_bound(v.angle())
    }

    /// Number of boundary arcs (0 for void or fully-unbounded regions).
    pub fn boundary_complexity(&self) -> usize {
        if self.is_void() {
            0
        } else {
            self.arcs.len()
        }
    }
}

/// The full guaranteed Voronoi diagram.
///
/// ```
/// use uncertain_geom::{Circle, Point};
/// use uncertain_nn::vnz::GuaranteedVoronoi;
///
/// let gv = GuaranteedVoronoi::build(&[
///     Circle::new(Point::new(0.0, 0.0), 1.0),
///     Circle::new(Point::new(10.0, 0.0), 1.0),
/// ]);
/// assert_eq!(gv.locate(Point::new(0.0, 0.0)), Some(0)); // surely nearest
/// assert_eq!(gv.locate(Point::new(5.0, 0.0)), None);    // contested
/// ```
#[derive(Clone, Debug)]
pub struct GuaranteedVoronoi {
    pub regions: Vec<GuaranteedRegion>,
}

impl GuaranteedVoronoi {
    pub fn build(disks: &[Circle]) -> Self {
        GuaranteedVoronoi {
            regions: (0..disks.len())
                .map(|i| GuaranteedRegion::compute(disks, i))
                .collect(),
        }
    }

    /// The point whose guaranteed region contains `q`, if any (regions are
    /// pairwise disjoint up to shared boundaries, so the answer is unique
    /// in the interior).
    pub fn locate(&self, q: Point) -> Option<usize> {
        self.regions.iter().find(|r| r.contains(q)).map(|r| r.i)
    }

    /// Total boundary complexity across all regions — [SE08] prove this is
    /// `O(n)` (experiment E15).
    pub fn total_complexity(&self) -> usize {
        self.regions.iter().map(|r| r.boundary_complexity()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nonzero::brute::nonzero_nn_disks;
    use crate::workload;

    fn disk(x: f64, y: f64, r: f64) -> Circle {
        Circle::new(Point::new(x, y), r)
    }

    #[test]
    fn two_far_disks_have_guaranteed_halves() {
        let disks = vec![disk(0.0, 0.0, 1.0), disk(10.0, 0.0, 1.0)];
        let gv = GuaranteedVoronoi::build(&disks);
        assert_eq!(gv.locate(Point::new(0.0, 0.0)), Some(0));
        assert_eq!(gv.locate(Point::new(10.0, 0.0)), Some(1));
        // Near the middle, neither is guaranteed.
        assert_eq!(gv.locate(Point::new(5.0, 0.0)), None);
        // The boundary lies where Δ_0 = δ_1: at x with (x+1) = (10−x−1):
        // x = 4.
        let r0 = &gv.regions[0];
        assert!((r0.radial_bound(0.0) - 4.0).abs() < 1e-9);
    }

    #[test]
    fn close_disks_have_void_regions() {
        let disks = vec![disk(0.0, 0.0, 2.0), disk(1.0, 0.0, 2.0)];
        let gv = GuaranteedVoronoi::build(&disks);
        assert!(gv.regions[0].is_void());
        assert!(gv.regions[1].is_void());
        assert_eq!(gv.locate(Point::new(0.0, 0.0)), None);
        assert_eq!(gv.total_complexity(), 0);
    }

    #[test]
    fn membership_matches_nonzero_singleton() {
        // q ∈ G_i ⟺ NN≠0(q) = {i} (up to measure-zero boundaries).
        for seed in [3u64, 4, 5] {
            let set = workload::random_disk_set(15, 0.3, 2.0, seed);
            let disks = set.regions();
            let gv = GuaranteedVoronoi::build(&disks);
            for q in workload::random_queries(300, 70.0, seed + 50) {
                let nn = nonzero_nn_disks(&disks, q);
                let located = gv.locate(q);
                // Skip near-boundary queries (strict vs closed conventions).
                let margin = disks
                    .iter()
                    .enumerate()
                    .map(|(j, d)| {
                        if Some(j) == located {
                            f64::INFINITY
                        } else {
                            (d.min_dist(q) - located.map_or(f64::NAN, |i| disks[i].max_dist(q)))
                                .abs()
                        }
                    })
                    .fold(f64::INFINITY, f64::min);
                if nn.len() == 1 {
                    assert_eq!(
                        located,
                        Some(nn[0]),
                        "NN≠0 = {{{}}} but guaranteed locate = {:?} at {q}",
                        nn[0],
                        located
                    );
                } else if margin > 1e-9 {
                    assert_eq!(
                        located,
                        None,
                        "|NN≠0| = {} but {q} in a guaranteed region",
                        nn.len()
                    );
                }
            }
        }
    }

    #[test]
    fn guaranteed_implies_probability_one() {
        let set = workload::random_disk_set(8, 0.5, 2.0, 9);
        let disks = set.regions();
        let gv = GuaranteedVoronoi::build(&disks);
        for q in workload::random_queries(200, 70.0, 10) {
            if let Some(i) = gv.locate(q) {
                let pi = crate::quantification::exact::quantification_continuous(&set, q, 256);
                assert!(
                    pi[i] > 0.999,
                    "π_{i}({q}) = {} inside the guaranteed region",
                    pi[i]
                );
            }
        }
    }

    #[test]
    fn total_complexity_is_near_linear() {
        // [SE08]: O(n) total complexity of the guaranteed diagram.
        let mut last = 0usize;
        for &n in &[20usize, 40, 80] {
            let set = workload::random_disk_set(n, 0.2, 1.0, n as u64);
            let gv = GuaranteedVoronoi::build(&set.regions());
            let c = gv.total_complexity();
            assert!(c <= 12 * n, "complexity {c} too large for n = {n}");
            assert!(c >= last / 8, "complexity should grow roughly linearly");
            last = c;
        }
    }

    #[test]
    fn single_disk_is_guaranteed_everywhere() {
        let gv = GuaranteedVoronoi::build(&[disk(3.0, 3.0, 1.0)]);
        assert_eq!(gv.locate(Point::new(100.0, -50.0)), Some(0));
        assert_eq!(gv.total_complexity(), 0);
    }
}
