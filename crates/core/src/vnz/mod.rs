//! The nonzero Voronoi diagram `V≠0(P)` (Section 2 of the paper).
//!
//! `V≠0(P)` subdivides the plane into maximal regions on which the set
//! `NN≠0(q)` is constant. Its structure is governed by the curves
//! `γ_i = {x : δ_i(x) = Δ(x)}`, computed as polar lower envelopes
//! (Lemma 2.2, [`gamma`]); its vertices are witness-disk tangency points
//! enumerated algebraically ([`vertices`]) — the executable version of the
//! counting argument in Theorem 2.5. [`diagram`] assembles curves, vertices,
//! edge/face counts and queries; [`discrete_diagram`] builds the discrete
//! counterpart of Theorem 2.14 from halfplane intersections and a segment
//! arrangement; [`constructions`] generates the paper's explicit
//! lower-bound families (Theorems 2.7, 2.8, 2.10 and Lemma 4.1).

pub mod constructions;
pub mod diagram;
pub mod discrete_diagram;
pub mod gamma;
pub mod guaranteed;
pub mod vertices;

pub use diagram::{DiagramComplexity, NonzeroVoronoiDiagram};
pub use discrete_diagram::DiscreteNonzeroDiagram;
pub use gamma::{GammaArc, GammaCurve};
pub use guaranteed::{GuaranteedRegion, GuaranteedVoronoi};
pub use vertices::{enumerate_vertices, vertices_brute, DiagramVertex, WitnessKind};
