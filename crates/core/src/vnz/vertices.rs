//! Vertex enumeration for `V≠0(P)` — the executable Theorem 2.5 argument.
//!
//! Every vertex of the arrangement `A(Γ)` is the center of a *witness disk*
//! `W = B(v, Δ(v))` tangent to three input disks:
//!
//! * **breakpoints** of a curve `γ_i`: `W` touches `D_i` from the outside
//!   and two disks `D_k, D_k'` from the inside (`v` lies on an edge of the
//!   additively-weighted Voronoi diagram `M`);
//! * **crossings** `γ_i ∩ γ_j`: `W` touches `D_i` and `D_j` from the
//!   outside and the Δ-witness `D_k` from the inside.
//!
//! [`enumerate_vertices`] finds them *from the envelopes*: breakpoints fall
//! out of the envelope structure directly, and crossings are found by
//! grouping envelope arcs by their Δ-owner `k` and solving the
//! `(i+, j+, k−)` Apollonius system per arc pair — at most two solutions
//! each, accepted iff they land inside both arcs' angular domains. This
//! mirrors the proof's charging scheme, so the enumeration is complete.
//!
//! [`vertices_brute`] independently enumerates all `O(n³)` triples and
//! validates candidates globally (`Δ(v) = R`) — the `O(n⁴)` baseline used
//! for cross-validation (ablation A1).

use super::gamma::GammaCurve;
use uncertain_geom::apollonius::{tangent_circles, Tangency, WitnessDisk};
use uncertain_geom::{angle, Circle, Point};

/// What kind of tangency certifies a vertex.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WitnessKind {
    /// `δ_i = Δ_k1 = Δ_k2 = Δ` — a breakpoint of `γ_i`.
    Breakpoint { i: usize, k1: usize, k2: usize },
    /// `δ_i = δ_j = Δ_k = Δ` — a crossing of `γ_i` and `γ_j`.
    Crossing { i: usize, j: usize, k: usize },
}

/// A vertex of `V≠0(P)` with its witness-disk radius (`Δ` at the vertex).
#[derive(Clone, Copy, Debug)]
pub struct DiagramVertex {
    pub point: Point,
    pub radius: f64,
    pub kind: WitnessKind,
}

/// Angular tolerance for arc-membership tests (radians).
const THETA_TOL: f64 = 1e-7;

/// Enumerates the vertices of `A(Γ)` from the computed envelopes.
pub fn enumerate_vertices(disks: &[Circle], curves: &[GammaCurve]) -> Vec<DiagramVertex> {
    let mut out: Vec<DiagramVertex> = vec![];

    // 1. Breakpoints: straight from the envelope structure.
    for c in curves {
        for (theta, k1, k2) in c.breakpoints() {
            if let Some(p) = c
                .point_at(theta)
                .or_else(|| c.point_at(theta + 1e-12))
                .or_else(|| c.point_at(theta - 1e-12))
            {
                out.push(DiagramVertex {
                    point: p,
                    radius: disks[c.i].min_dist(p),
                    kind: WitnessKind::Breakpoint {
                        i: c.i,
                        k1: k1.min(k2),
                        k2: k1.max(k2),
                    },
                });
            }
        }
    }

    // 2. Crossings: group arcs by Δ-owner, solve per arc pair.
    let mut by_owner: std::collections::HashMap<usize, Vec<(usize, usize)>> =
        std::collections::HashMap::new();
    for (ci, c) in curves.iter().enumerate() {
        for (ai, arc) in c.arcs.iter().enumerate() {
            by_owner.entry(arc.owner).or_default().push((ci, ai));
        }
    }
    for (&k, arcs) in &by_owner {
        for a in 0..arcs.len() {
            for b in (a + 1)..arcs.len() {
                let (ci_a, ai_a) = arcs[a];
                let (ci_b, ai_b) = arcs[b];
                let (i, j) = (curves[ci_a].i, curves[ci_b].i);
                if i == j {
                    continue; // same curve: handled as breakpoints
                }
                let arc_a = curves[ci_a].arcs[ai_a];
                let arc_b = curves[ci_b].arcs[ai_b];
                let witnesses = tangent_circles(
                    [disks[i], disks[j], disks[k]],
                    [Tangency::External, Tangency::External, Tangency::Internal],
                );
                for w in witnesses {
                    if !accept_on_arc(&curves[ci_a], arc_a.theta_lo, arc_a.theta_hi, w.center)
                        || !accept_on_arc(&curves[ci_b], arc_b.theta_lo, arc_b.theta_hi, w.center)
                    {
                        continue;
                    }
                    out.push(DiagramVertex {
                        point: w.center,
                        radius: w.radius,
                        kind: WitnessKind::Crossing {
                            i: i.min(j),
                            j: i.max(j),
                            k,
                        },
                    });
                }
            }
        }
    }

    dedup_vertices(out, vertex_tolerance(disks))
}

fn accept_on_arc(curve: &GammaCurve, lo: f64, hi: f64, p: Point) -> bool {
    let t = curve.theta_of(p);
    let iv = angle::AngleInterval::new(lo, hi);
    iv.contains_with_tol(t, THETA_TOL)
}

/// Brute-force enumeration over all triples with global validation —
/// independent of the envelope machinery. `O(n⁴)`.
pub fn vertices_brute(disks: &[Circle]) -> Vec<DiagramVertex> {
    let n = disks.len();
    let mut out = vec![];
    let tol = vertex_tolerance(disks);
    let delta = |p: Point| -> f64 {
        disks
            .iter()
            .map(|d| d.max_dist(p))
            .fold(f64::INFINITY, f64::min)
    };
    // Crossings: (i+, j+, k−).
    for i in 0..n {
        for j in (i + 1)..n {
            for k in 0..n {
                if k == i || k == j {
                    continue;
                }
                for w in tangent_circles(
                    [disks[i], disks[j], disks[k]],
                    [Tangency::External, Tangency::External, Tangency::Internal],
                ) {
                    if valid_witness(&w, delta(w.center), tol) {
                        out.push(DiagramVertex {
                            point: w.center,
                            radius: w.radius,
                            kind: WitnessKind::Crossing { i, j, k },
                        });
                    }
                }
            }
        }
    }
    // Breakpoints: (k1−, k2−, i+).
    for i in 0..n {
        for k1 in 0..n {
            if k1 == i {
                continue;
            }
            for k2 in (k1 + 1)..n {
                if k2 == i {
                    continue;
                }
                for w in tangent_circles(
                    [disks[k1], disks[k2], disks[i]],
                    [Tangency::Internal, Tangency::Internal, Tangency::External],
                ) {
                    if valid_witness(&w, delta(w.center), tol) {
                        out.push(DiagramVertex {
                            point: w.center,
                            radius: w.radius,
                            kind: WitnessKind::Breakpoint { i, k1, k2 },
                        });
                    }
                }
            }
        }
    }
    dedup_vertices(out, tol)
}

/// A witness is a real vertex iff its radius equals `Δ` at its center, i.e.
/// no disk is strictly "max-closer" than the internally-touched one.
fn valid_witness(w: &WitnessDisk, delta: f64, tol: f64) -> bool {
    delta >= w.radius - tol
}

fn vertex_tolerance(disks: &[Circle]) -> f64 {
    let scale = disks
        .iter()
        .map(|d| d.center.to_vector().norm() + d.radius)
        .fold(1.0f64, f64::max);
    1e-6 * scale
}

/// Deduplicates vertices by location (different witness triples may certify
/// the same degenerate point).
fn dedup_vertices(mut vs: Vec<DiagramVertex>, tol: f64) -> Vec<DiagramVertex> {
    vs.sort_by(|a, b| {
        a.point
            .x
            .partial_cmp(&b.point.x)
            .unwrap()
            .then(a.point.y.partial_cmp(&b.point.y).unwrap())
    });
    let mut out: Vec<DiagramVertex> = vec![];
    'next: for v in vs {
        // Only nearby-in-x candidates can collide; scan back.
        for u in out.iter().rev() {
            if v.point.x - u.point.x > tol {
                break;
            }
            if u.point.dist(v.point) <= tol && u.kind == v.kind {
                continue 'next;
            }
        }
        out.push(v);
    }
    out
}

/// Verifies a vertex against the defining equations; returns the max
/// residual (distance units). Used by tests and the experiment harness.
pub fn vertex_residual(disks: &[Circle], v: &DiagramVertex) -> f64 {
    let delta = disks
        .iter()
        .map(|d| d.max_dist(v.point))
        .fold(f64::INFINITY, f64::min);
    match v.kind {
        WitnessKind::Breakpoint { i, k1, k2 } => {
            let r1 = (disks[i].min_dist(v.point) - delta).abs();
            let r2 = (disks[k1].max_dist(v.point) - delta).abs();
            let r3 = (disks[k2].max_dist(v.point) - delta).abs();
            r1.max(r2).max(r3)
        }
        WitnessKind::Crossing { i, j, k } => {
            let r1 = (disks[i].min_dist(v.point) - delta).abs();
            let r2 = (disks[j].min_dist(v.point) - delta).abs();
            let r3 = (disks[k].max_dist(v.point) - delta).abs();
            r1.max(r2).max(r3)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload;

    fn curves_for(disks: &[Circle]) -> Vec<GammaCurve> {
        (0..disks.len())
            .map(|i| GammaCurve::compute(disks, i))
            .collect()
    }

    fn disk(x: f64, y: f64, r: f64) -> Circle {
        Circle::new(Point::new(x, y), r)
    }

    #[test]
    fn no_vertices_for_two_disks() {
        let disks = vec![disk(0.0, 0.0, 1.0), disk(10.0, 0.0, 1.0)];
        let vs = enumerate_vertices(&disks, &curves_for(&disks));
        assert!(vs.is_empty());
        assert!(vertices_brute(&disks).is_empty());
    }

    #[test]
    fn three_symmetric_disks() {
        // Three unit disks far apart in an equilateral triangle: each pair
        // of curves crosses, and breakpoints appear where Δ-ownership flips.
        let h = 3.0f64.sqrt() * 10.0 / 2.0;
        let disks = vec![
            disk(-10.0, 0.0, 1.0),
            disk(10.0, 0.0, 1.0),
            disk(0.0, 2.0 * h - h, 1.0),
        ];
        let vs = enumerate_vertices(&disks, &curves_for(&disks));
        assert!(!vs.is_empty());
        for v in &vs {
            let resid = vertex_residual(&disks, v);
            assert!(resid < 1e-6, "residual {resid} for {v:?}");
        }
        // Independent enumeration agrees on the count.
        let brute = vertices_brute(&disks);
        assert_eq!(vs.len(), brute.len());
    }

    #[test]
    fn envelope_and_brute_agree_on_random_instances() {
        for seed in [7u64, 8, 9, 10] {
            let set = workload::random_disk_set(9, 0.2, 1.5, seed);
            let disks = set.regions();
            let vs = enumerate_vertices(&disks, &curves_for(&disks));
            let brute = vertices_brute(&disks);
            // Same vertex sets (match by location).
            assert_eq!(
                vs.len(),
                brute.len(),
                "seed {seed}: envelope {} vs brute {}",
                vs.len(),
                brute.len()
            );
            let tol = 1e-5;
            for v in &vs {
                assert!(
                    brute.iter().any(|u| u.point.dist(v.point) < tol),
                    "seed {seed}: envelope vertex {v:?} missing from brute"
                );
                assert!(vertex_residual(&disks, v) < 1e-5);
            }
        }
    }

    #[test]
    fn vertex_count_respects_cubic_bound() {
        // Soft sanity check of Theorem 2.5: count ≤ c·n³ with a small c.
        for seed in [1u64, 2] {
            let set = workload::random_disk_set(12, 0.3, 2.5, seed);
            let disks = set.regions();
            let vs = enumerate_vertices(&disks, &curves_for(&disks));
            let n = disks.len();
            assert!(vs.len() <= 4 * n * n * n, "count {} for n={n}", vs.len());
        }
    }

    #[test]
    fn dedup_removes_duplicates() {
        let v = DiagramVertex {
            point: Point::new(1.0, 1.0),
            radius: 2.0,
            kind: WitnessKind::Crossing { i: 0, j: 1, k: 2 },
        };
        let out = dedup_vertices(vec![v, v, v], 1e-6);
        assert_eq!(out.len(), 1);
    }
}
