//! Deterministic workload generators shared by tests, benches, and examples.

use crate::model::{ContinuousUncertainPoint, DiscreteSet, DiscreteUncertainPoint, DiskSet};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use uncertain_geom::{Circle, Point};

/// `n` uncertain disks with centers uniform in `[-25, 25]²` and radii
/// uniform in `[r_min, r_max]`, all with uniform pdfs.
pub fn random_disk_set(n: usize, r_min: f64, r_max: f64, seed: u64) -> DiskSet {
    let mut rng = StdRng::seed_from_u64(seed);
    let disks: Vec<Circle> = (0..n)
        .map(|_| {
            Circle::new(
                Point::new(rng.gen_range(-25.0..25.0), rng.gen_range(-25.0..25.0)),
                rng.gen_range(r_min..=r_max),
            )
        })
        .collect();
    DiskSet::uniform(disks)
}

/// `n` *pairwise-disjoint* uncertain disks with radius ratio ≤ `lambda`
/// (the Theorem 2.10 regime): disks are laid on a jittered grid with
/// spacing large enough to guarantee disjointness.
pub fn disjoint_disk_set(n: usize, lambda: f64, seed: u64) -> DiskSet {
    assert!(lambda >= 1.0);
    let mut rng = StdRng::seed_from_u64(seed);
    let r_min = 1.0;
    let r_max = lambda;
    let side = (n as f64).sqrt().ceil() as usize;
    // Adjacent centers can jitter towards each other by 2·jitter, so
    // disjointness needs spacing − 2·jitter > 2·r_max.
    let spacing = 2.5 * (2.0 * r_max) + 1.0;
    let mut disks = Vec::with_capacity(n);
    for idx in 0..n {
        let gx = (idx % side) as f64;
        let gy = (idx / side) as f64;
        let jitter = 0.1 * spacing;
        let c = Point::new(
            gx * spacing + rng.gen_range(-jitter..jitter),
            gy * spacing + rng.gen_range(-jitter..jitter),
        );
        disks.push(Circle::new(c, rng.gen_range(r_min..=r_max)));
    }
    let set = DiskSet::uniform(disks);
    debug_assert!(set.regions_disjoint());
    set
}

/// `n` discrete uncertain points, each with `k` locations in a cluster of
/// diameter ≈ `cluster_diameter`, centers uniform in `[-25, 25]²`, weights
/// uniform-random (normalized).
pub fn random_discrete_set(n: usize, k: usize, cluster_diameter: f64, seed: u64) -> DiscreteSet {
    let mut rng = StdRng::seed_from_u64(seed);
    let points = (0..n)
        .map(|_| {
            let c = Point::new(rng.gen_range(-25.0..25.0), rng.gen_range(-25.0..25.0));
            let r = cluster_diameter / 2.0;
            let locs: Vec<Point> = (0..k)
                .map(|_| Point::new(c.x + rng.gen_range(-r..r), c.y + rng.gen_range(-r..r)))
                .collect();
            let weights: Vec<f64> = (0..k).map(|_| rng.gen_range(0.2..1.0)).collect();
            DiscreteUncertainPoint::new(locs, weights)
        })
        .collect();
    DiscreteSet::new(points)
}

/// A discrete set with a prescribed probability spread `ρ`: each point has
/// one "heavy" location and `k − 1` light ones (`w_heavy / w_light = ρ`).
pub fn spread_discrete_set(n: usize, k: usize, rho: f64, seed: u64) -> DiscreteSet {
    assert!(k >= 2 && rho >= 1.0);
    let mut rng = StdRng::seed_from_u64(seed);
    let points = (0..n)
        .map(|_| {
            let c = Point::new(rng.gen_range(-25.0..25.0), rng.gen_range(-25.0..25.0));
            let locs: Vec<Point> = (0..k)
                .map(|_| {
                    Point::new(
                        c.x + rng.gen_range(-2.0..2.0),
                        c.y + rng.gen_range(-2.0..2.0),
                    )
                })
                .collect();
            let mut weights = vec![1.0; k];
            weights[0] = rho;
            DiscreteUncertainPoint::new(locs, weights)
        })
        .collect();
    DiscreteSet::new(points)
}

/// `m` query points uniform in `[-span/2, span/2]²`.
pub fn random_queries(m: usize, span: f64, seed: u64) -> Vec<Point> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..m)
        .map(|_| {
            Point::new(
                rng.gen_range(-span / 2.0..span / 2.0),
                rng.gen_range(-span / 2.0..span / 2.0),
            )
        })
        .collect()
}

/// A mixed continuous set exercising all pdf models.
pub fn mixed_continuous_set(n: usize, seed: u64) -> DiskSet {
    let mut rng = StdRng::seed_from_u64(seed);
    let points = (0..n)
        .map(|i| {
            let region = Circle::new(
                Point::new(rng.gen_range(-25.0..25.0), rng.gen_range(-25.0..25.0)),
                rng.gen_range(0.5..3.0),
            );
            match i % 3 {
                0 => ContinuousUncertainPoint::uniform(region),
                1 => ContinuousUncertainPoint::gaussian(region, region.radius / 2.0),
                _ => ContinuousUncertainPoint::ring(region, 0.5),
            }
        })
        .collect();
    DiskSet::new(points)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generators_are_deterministic() {
        let a = random_disk_set(10, 0.5, 2.0, 42);
        let b = random_disk_set(10, 0.5, 2.0, 42);
        assert_eq!(a.regions(), b.regions());
        let c = random_discrete_set(5, 3, 2.0, 42);
        let d = random_discrete_set(5, 3, 2.0, 42);
        assert_eq!(c.points[0].locations(), d.points[0].locations());
    }

    #[test]
    fn disjoint_generator_is_disjoint() {
        for lambda in [1.0, 2.0, 8.0] {
            let set = disjoint_disk_set(64, lambda, 7);
            assert!(set.regions_disjoint());
            let ratio = set.radius_ratio().unwrap();
            assert!(ratio <= lambda + 1e-12);
        }
    }

    #[test]
    fn spread_generator_hits_target_rho() {
        let set = spread_discrete_set(10, 4, 16.0, 3);
        assert!((set.spread() - 16.0).abs() < 1e-9);
    }
}
