//! Quantization-keyed LRU result cache.
//!
//! Keys are query points snapped to a configurable grid (cell side
//! [`EngineConfig::cache_grid`](crate::EngineConfig); `0` disables snapping
//! and keys on the exact f64 bits, which still de-duplicates repeated
//! identical queries). Snapped entries are **evaluated at the cell center**
//! with a certified interval (see [`crate::snap`]), so every query in the
//! cell receives the identical answer together with a `Guarantee` whose
//! slack is widened by the certified snap error — correctness is preserved
//! by construction, and answers do not depend on cache state.
//!
//! Snapping applies to the quantification paths. `NN≠0` answers are sets
//! with no slack vocabulary to absorb a perturbation, so nonzero entries
//! always use exact-bits keys.

use std::collections::HashMap;
use std::hash::Hash;
use std::sync::{Arc, Mutex, MutexGuard};
use uncertain_geom::Point;
use uncertain_nn::queries::Guarantee;

/// Snaps a point to grid cell indices (cell side `grid`). The cell center
/// is `(kx·grid, ky·grid)`; every point of the cell is within
/// [`snap_radius`] of it.
pub fn quantize_point(q: Point, grid: f64) -> (i64, i64) {
    assert!(grid > 0.0);
    ((q.x / grid).round() as i64, (q.y / grid).round() as i64)
}

/// The cell center of the cell containing `q`.
pub fn snap_center(q: Point, grid: f64) -> Point {
    let (kx, ky) = quantize_point(q, grid);
    Point::new(kx as f64 * grid, ky as f64 * grid)
}

/// Max distance from any point of a cell to its center: `grid·√2/2`.
pub fn snap_radius(grid: f64) -> f64 {
    grid * std::f64::consts::FRAC_1_SQRT_2
}

/// Which quantification engine produced a cached probability vector — part
/// of the key, so engines with different guarantees never alias.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum QuantTag {
    Exact,
    Spiral { eps_bits: u64 },
    MonteCarlo { samples: usize },
}

/// Cache key: exact query bits for nonzero sets, snapped cell or exact bits
/// for probability vectors.
///
/// Every variant carries the engine **epoch** the answer was computed
/// under. Applying updates ([`crate::Engine::apply`]) bumps the epoch, so
/// entries from superseded site sets can never be looked up again — stale
/// epochs are invalidated "for free" and their entries age out of the LRU
/// under normal traffic, with no flush or scan.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CacheKey {
    /// All four `NN≠0` plans (brute, index, `V≠0` point location, dynamic
    /// buckets) are exact — the diagram path serves certified locations and
    /// falls back to Lemma 2.1 otherwise — so their answers share one key
    /// and warm each other's entries (within an epoch).
    Nonzero { epoch: u64, qx: u64, qy: u64 },
    QuantCell {
        epoch: u64,
        kx: i64,
        ky: i64,
        tag: QuantTag,
    },
    QuantExact {
        epoch: u64,
        qx: u64,
        qy: u64,
        tag: QuantTag,
    },
}

impl CacheKey {
    pub fn nonzero(epoch: u64, q: Point) -> Self {
        CacheKey::Nonzero {
            epoch,
            qx: q.x.to_bits(),
            qy: q.y.to_bits(),
        }
    }

    /// Quantification key: snapped when `grid > 0`, exact bits otherwise.
    pub fn quant(epoch: u64, q: Point, grid: f64, tag: QuantTag) -> Self {
        if grid > 0.0 {
            let (kx, ky) = quantize_point(q, grid);
            CacheKey::QuantCell { epoch, kx, ky, tag }
        } else {
            CacheKey::QuantExact {
                epoch,
                qx: q.x.to_bits(),
                qy: q.y.to_bits(),
                tag,
            }
        }
    }
}

/// A cached answer. `Arc`s keep hits allocation-free across worker threads.
#[derive(Clone, Debug)]
pub enum CachedValue {
    Nonzero(Arc<Vec<usize>>),
    Quant {
        pi: Arc<Vec<f64>>,
        guarantee: Guarantee,
    },
}

/// A classic O(1) LRU: hash map into a slab of doubly-linked nodes.
pub struct LruCache<K, V> {
    map: HashMap<K, usize>,
    nodes: Vec<Node<K, V>>,
    head: usize, // most recent
    tail: usize, // least recent
    capacity: usize,
}

struct Node<K, V> {
    key: K,
    value: V,
    prev: usize,
    next: usize,
}

const NIL: usize = usize::MAX;

impl<K: Eq + Hash + Clone, V: Clone> LruCache<K, V> {
    pub fn new(capacity: usize) -> Self {
        LruCache {
            map: HashMap::new(),
            nodes: Vec::new(),
            head: NIL,
            tail: NIL,
            capacity: capacity.max(1),
        }
    }

    pub fn len(&self) -> usize {
        self.map.len()
    }

    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Looks `key` up, promoting it to most-recently-used on a hit.
    pub fn get(&mut self, key: &K) -> Option<V> {
        let &i = self.map.get(key)?;
        self.unlink(i);
        self.push_front(i);
        Some(self.nodes[i].value.clone())
    }

    /// Inserts (or refreshes) `key`, evicting the least-recently-used entry
    /// when over capacity.
    pub fn insert(&mut self, key: K, value: V) {
        if let Some(&i) = self.map.get(&key) {
            self.nodes[i].value = value;
            self.unlink(i);
            self.push_front(i);
            return;
        }
        let i = if self.map.len() >= self.capacity {
            // Recycle the tail node in place.
            let i = self.tail;
            self.unlink(i);
            self.map.remove(&self.nodes[i].key);
            self.nodes[i].key = key.clone();
            self.nodes[i].value = value;
            i
        } else {
            self.nodes.push(Node {
                key: key.clone(),
                value,
                prev: NIL,
                next: NIL,
            });
            self.nodes.len() - 1
        };
        self.map.insert(key, i);
        self.push_front(i);
    }

    fn unlink(&mut self, i: usize) {
        let (prev, next) = (self.nodes[i].prev, self.nodes[i].next);
        if prev != NIL {
            self.nodes[prev].next = next;
        } else if self.head == i {
            self.head = next;
        }
        if next != NIL {
            self.nodes[next].prev = prev;
        } else if self.tail == i {
            self.tail = prev;
        }
        self.nodes[i].prev = NIL;
        self.nodes[i].next = NIL;
    }

    fn push_front(&mut self, i: usize) {
        self.nodes[i].prev = NIL;
        self.nodes[i].next = self.head;
        if self.head != NIL {
            self.nodes[self.head].prev = i;
        }
        self.head = i;
        if self.tail == NIL {
            self.tail = i;
        }
    }
}

/// The engine's shared, thread-safe result cache. `capacity == 0` disables
/// it entirely — no lookups, no inserts, no lock traffic — the knob for
/// measuring raw execution (benches, E24's thread-scaling sweep). The lock
/// is a single global mutex; if profiles ever show it hot on many-core
/// serving, shard it by key hash.
pub struct ResultCache {
    inner: Option<Mutex<LruCache<CacheKey, CachedValue>>>,
    grid: f64,
}

impl ResultCache {
    pub fn new(capacity: usize, grid: f64) -> Self {
        assert!(grid >= 0.0, "cache grid must be non-negative");
        ResultCache {
            inner: (capacity > 0).then(|| Mutex::new(LruCache::new(capacity))),
            grid,
        }
    }

    /// Grid cell side (`0` = exact-bits keying).
    pub fn grid(&self) -> f64 {
        self.grid
    }

    /// `false` when built with capacity 0.
    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    pub fn len(&self) -> usize {
        self.lock().map_or(0, |g| g.len())
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Locks the LRU, recovering from poison by **clearing** it. A thread
    /// that panics while holding this lock (a pathological query dying
    /// mid-insert) may leave the LRU's intrusive links torn, so the
    /// valid-on-panic recovery other engine locks use is not sound here —
    /// but the cache is only an accelerator, so the cheap safe recovery is
    /// to drop every entry and keep serving. Without this, one bad query
    /// turns every later `get`/`insert` into a panic and takes the whole
    /// serving process down with it (the mutex-poison cascade).
    fn lock(&self) -> Option<MutexGuard<'_, LruCache<CacheKey, CachedValue>>> {
        let m = self.inner.as_ref()?;
        Some(match m.lock() {
            Ok(g) => g,
            Err(poisoned) => {
                m.clear_poison();
                let mut g = poisoned.into_inner();
                *g = LruCache::new(g.capacity());
                uncertain_obs::counter!("engine.cache.poison_clears").inc();
                g
            }
        })
    }

    pub fn get(&self, key: &CacheKey) -> Option<CachedValue> {
        let hit = self.lock()?.get(key);
        // Process-global registry twins of the per-batch counters in
        // `ExecStats` — a disabled cache (capacity 0) records nothing.
        match &hit {
            Some(_) => uncertain_obs::counter!("engine.cache.hits").inc(),
            None => uncertain_obs::counter!("engine.cache.misses").inc(),
        }
        hit
    }

    pub fn insert(&self, key: CacheKey, value: CachedValue) {
        if let Some(mut g) = self.lock() {
            uncertain_obs::counter!("engine.cache.inserts").inc();
            g.insert(key, value);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lru_evicts_least_recent() {
        let mut lru: LruCache<u32, u32> = LruCache::new(2);
        lru.insert(1, 10);
        lru.insert(2, 20);
        assert_eq!(lru.get(&1), Some(10)); // 1 now most recent
        lru.insert(3, 30); // evicts 2
        assert_eq!(lru.get(&2), None);
        assert_eq!(lru.get(&1), Some(10));
        assert_eq!(lru.get(&3), Some(30));
        assert_eq!(lru.len(), 2);
    }

    #[test]
    fn lru_refresh_updates_value_without_growth() {
        let mut lru: LruCache<u32, u32> = LruCache::new(3);
        lru.insert(1, 10);
        lru.insert(1, 11);
        assert_eq!(lru.len(), 1);
        assert_eq!(lru.get(&1), Some(11));
    }

    #[test]
    fn lru_heavy_churn_stays_consistent() {
        let mut lru: LruCache<u64, u64> = LruCache::new(16);
        for i in 0..1000u64 {
            lru.insert(i % 40, i);
            assert!(lru.len() <= 16);
        }
        // The most recent insert must be present.
        assert_eq!(lru.get(&(999 % 40)), Some(999));
    }

    #[test]
    fn poisoned_cache_clears_and_keeps_serving() {
        let cache = ResultCache::new(8, 0.0);
        let key = CacheKey::nonzero(0, Point::new(1.0, 2.0));
        cache.insert(key, CachedValue::Nonzero(Arc::new(vec![3])));
        assert_eq!(cache.len(), 1);
        // Poison the inner mutex: panic while holding the guard, exactly
        // what a panicking query inside the locked region would do.
        let poison = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _g = cache.inner.as_ref().unwrap().lock().unwrap();
            panic!("query died while holding the cache lock");
        }));
        assert!(poison.is_err());
        assert!(cache.inner.as_ref().unwrap().is_poisoned());
        // Clear-on-poison: the next access recovers (entries dropped, no
        // panic), and the cache serves reads and writes again.
        assert!(cache.get(&key).is_none(), "poisoned cache must clear");
        assert_eq!(cache.len(), 0);
        cache.insert(key, CachedValue::Nonzero(Arc::new(vec![4])));
        match cache.get(&key) {
            Some(CachedValue::Nonzero(ids)) => assert_eq!(*ids, vec![4]),
            other => panic!("expected a hit after recovery, got {other:?}"),
        }
        assert!(!cache.inner.as_ref().unwrap().is_poisoned());
    }

    #[test]
    fn quantize_is_stable_within_cell() {
        let g = 0.5;
        let q = Point::new(3.1, -2.2);
        let c = snap_center(q, g);
        assert!(q.dist(c) <= snap_radius(g) + 1e-12);
        // Points well inside the same cell share the key.
        let k0 = quantize_point(c, g);
        for (dx, dy) in [(0.2, 0.1), (-0.24, 0.24), (0.0, -0.2)] {
            let p = Point::new(c.x + dx * g / 0.5, c.y + dy * g / 0.5);
            // stay strictly inside ±g/2 of the center
            let p = Point::new(
                c.x + (p.x - c.x).clamp(-0.49 * g, 0.49 * g),
                c.y + (p.y - c.y).clamp(-0.49 * g, 0.49 * g),
            );
            assert_eq!(quantize_point(p, g), k0);
        }
    }

    #[test]
    fn keys_do_not_alias_across_tags() {
        let q = Point::new(1.0, 2.0);
        let a = CacheKey::quant(0, q, 0.0, QuantTag::Exact);
        let b = CacheKey::quant(
            0,
            q,
            0.0,
            QuantTag::Spiral {
                eps_bits: 0.01f64.to_bits(),
            },
        );
        assert_ne!(a, b);
        assert_ne!(CacheKey::nonzero(0, q), a);
        // Identical queries share the nonzero key: every nonzero plan is
        // exact, so entries are interchangeable across plans.
        assert_eq!(
            CacheKey::nonzero(0, q),
            CacheKey::nonzero(0, Point::new(1.0, 2.0))
        );
    }

    #[test]
    fn keys_do_not_alias_across_epochs() {
        // The same query under different epochs never shares an entry —
        // this is the whole stale-epoch invalidation mechanism.
        let q = Point::new(1.0, 2.0);
        assert_ne!(CacheKey::nonzero(0, q), CacheKey::nonzero(1, q));
        assert_ne!(
            CacheKey::quant(0, q, 0.0, QuantTag::Exact),
            CacheKey::quant(1, q, 0.0, QuantTag::Exact)
        );
        assert_ne!(
            CacheKey::quant(3, q, 0.5, QuantTag::Exact),
            CacheKey::quant(4, q, 0.5, QuantTag::Exact)
        );
    }
}
