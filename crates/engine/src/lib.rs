//! `uncertain_engine`: the concurrent, batched query-serving layer above
//! [`uncertain_nn`].
//!
//! The core library answers one query at a time through explicit structure
//! choices; this crate serves query *batches* at volume and decides **how**
//! to answer them:
//!
//! * a std-only [thread pool](pool) (`std::thread` + channels) shards each
//!   batch across workers — `UNC_ENGINE_THREADS` pins the worker count for
//!   deterministic CI runs;
//! * a [cost-based planner](planner) picks, per batch, among brute force,
//!   the Theorem 3.2 kd-tree/group-index structure, `V≠0` point location,
//!   and (once updates have been applied) the warm Bentley–Saxe bucket
//!   structure for `NN≠0` requests, and among the exact fresh sweep, the
//!   bit-identical `quant:merged` k-way merge over warm per-bucket
//!   summaries, spiral search, and Monte Carlo for probability requests —
//!   amortizing index construction over the batch and recording its choice
//!   (plus merge-vs-sweep counters and the per-bucket reuse rate in
//!   [`ExecStats`]);
//! * a [quantization-keyed LRU result cache](cache) snaps query points to a
//!   configurable grid; snapped answers carry a *certified* widened
//!   [`Guarantee`] (see [`snap`]), so caching never silently degrades
//!   correctness;
//! * a typed request/response API: [`Engine`], [`QueryRequest`],
//!   [`BatchResponse`] with per-request [`QueryResult`]s plus [`ExecStats`]
//!   (plan taken, wall time, cache hit rate, worker utilization, epoch and
//!   live/tombstone site counts);
//! * an **epoch/snapshot update layer**: [`Engine::apply`] takes a batch of
//!   [`Update`]s (insert / remove / move uncertain sites), advances the
//!   Bentley–Saxe structure ([`uncertain_nn::dynamic`]), and publishes a new
//!   immutable snapshot behind an `Arc` swap — in-flight batches on worker
//!   threads keep serving the epoch they started on, and epoch-stamped
//!   cache keys make stale entries unreachable with no flush.
//!
//! # Quickstart
//!
//! ```
//! use uncertain_engine::{Engine, EngineConfig, QueryRequest, QueryResult, Update};
//! use uncertain_nn::model::DiscreteUncertainPoint;
//! use uncertain_nn::workload;
//! use uncertain_geom::Point;
//!
//! let set = workload::random_discrete_set(40, 3, 6.0, 7);
//! let engine = Engine::new(set.clone(), EngineConfig::default());
//! let batch: Vec<QueryRequest> = workload::random_queries(16, 60.0, 8)
//!     .into_iter()
//!     .map(|q| QueryRequest::Nonzero { q })
//!     .collect();
//! let resp = engine.run_batch(&batch);
//! assert_eq!(resp.results.len(), 16);
//! assert_eq!(resp.stats.epoch, 0);
//! // Engine answers match the direct library call. Result indices are
//! // stable site ids: at epoch 0 they are `0..n` in input order, and they
//! // survive updates unchanged.
//! if let QueryResult::Nonzero(ids) = &resp.results[0] {
//!     let QueryRequest::Nonzero { q } = batch[0] else { unreachable!() };
//!     let mut direct = set.nonzero_nn(q);
//!     direct.sort_unstable();
//!     assert_eq!(ids, &direct);
//! }
//! println!("plan: {}", resp.stats.plan.summary());
//!
//! // Mutate the served set: every apply() publishes a new epoch snapshot.
//! let report = engine.apply(&[
//!     Update::Insert(DiscreteUncertainPoint::certain(Point::new(1.0, 2.0))),
//!     Update::Remove(3),
//! ]);
//! assert_eq!(report.epoch, 1);
//! assert_eq!(report.inserted, vec![40]); // fresh ids continue after 0..n
//! let resp = engine.run_batch(&batch);
//! assert_eq!(resp.stats.epoch, 1);
//! // Answers now reflect the surviving sites, by stable id.
//! if let QueryResult::Nonzero(ids) = &resp.results[0] {
//!     let QueryRequest::Nonzero { q } = batch[0] else { unreachable!() };
//!     let fresh = engine.live_set();
//!     let site_ids = engine.site_ids();
//!     let mut direct: Vec<usize> =
//!         fresh.nonzero_nn(q).into_iter().map(|dense| site_ids[dense]).collect();
//!     direct.sort_unstable();
//!     assert_eq!(ids, &direct);
//! }
//! ```

pub mod cache;
pub mod planner;
pub mod pool;
pub mod server;
pub mod shard;
pub mod snap;

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock, RwLock};
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::SeedableRng;
use uncertain_geom::predicates::predicate_stats;
use uncertain_geom::{Aabb, Point};
use uncertain_nn::dynamic::DynamicSet;
use uncertain_nn::model::DiscreteSet;
use uncertain_nn::nonzero::{nonzero_nn_discrete, DiscreteNonzeroIndex, QueryScratch};
use uncertain_nn::quantification::exact::quantification_discrete;
use uncertain_nn::quantification::monte_carlo::{MonteCarloPnn, SampleBackend};
use uncertain_nn::quantification::spiral::SpiralSearch;
use uncertain_nn::queries::Guarantee;
use uncertain_nn::vnz::DiscreteNonzeroDiagram;
use uncertain_spatial::soa::kernel_stats;

pub use cache::{quantize_point, snap_center, snap_radius};
use cache::{CacheKey, CachedValue, QuantTag, ResultCache};
pub use planner::{BatchPlan, NonzeroPlan, PlanEstimate, PlannerInputs, QuantPlan};
pub use pool::{resolve_threads, ThreadPool, THREADS_ENV};
pub use uncertain_nn::dynamic::{DynamicConfig, DynamicStats, SiteId, Update};

/// One query in a batch.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum QueryRequest {
    /// `NN≠0(q)`: which points have nonzero probability of being nearest.
    Nonzero { q: Point },
    /// Every point that may satisfy `π_i(q) ≥ tau` given the engine's
    /// guarantee ([DYM+05] threshold semantics: no false negatives).
    Threshold { q: Point, tau: f64 },
    /// The `k` most probable nearest neighbors ([BSI08]).
    TopK { q: Point, k: usize },
}

impl QueryRequest {
    /// The query location.
    pub fn point(&self) -> Point {
        match *self {
            QueryRequest::Nonzero { q }
            | QueryRequest::Threshold { q, .. }
            | QueryRequest::TopK { q, .. } => q,
        }
    }

    fn is_nonzero(&self) -> bool {
        matches!(self, QueryRequest::Nonzero { .. })
    }
}

/// One answer. Probability answers carry the guarantee they were served
/// under — widened when the answer came from a snapped cache cell.
#[derive(Clone, Debug, PartialEq)]
pub enum QueryResult {
    /// Sorted point indices with `π_i(q) > 0`.
    Nonzero(Vec<usize>),
    /// `(index, π̂)` pairs, sorted by decreasing estimate (ties by index).
    Ranked {
        items: Vec<(usize, f64)>,
        guarantee: Guarantee,
    },
    /// The request's evaluation panicked (e.g. a NaN query coordinate hit
    /// an internal total-order assumption). The panic is caught **inside**
    /// the request — before it can poison shared locks or strand the
    /// batch — so the other requests of the batch, and every later batch,
    /// are unaffected. Never cached. The serving front-end maps this to a
    /// typed error reply instead of dying.
    Failed { reason: String },
}

/// What one [`Engine::apply`] call did: the epoch it published plus the
/// amortized-rebuild accounting for exactly this batch of updates.
#[derive(Clone, Debug)]
pub struct ApplyReport {
    /// The epoch the new snapshot serves under.
    pub epoch: u64,
    /// Ids assigned to the `Insert` updates, in update order.
    pub inserted: Vec<SiteId>,
    pub removed: usize,
    pub moved: usize,
    /// `Remove`/`Move` updates whose id was unknown or already removed.
    pub missed: usize,
    /// Live sites after this apply.
    pub live: usize,
    /// Tombstones still buried in buckets after this apply.
    pub tombstones: usize,
    /// Bucket merges this apply triggered.
    pub merges: u64,
    /// Global compacting rebuilds this apply triggered.
    pub global_rebuilds: u64,
    /// Σ bucket sizes rebuilt during this apply — the amortized update cost
    /// in sites (`O(log n)` per insert by the logarithmic-method bound).
    pub sites_rebuilt: u64,
}

/// Per-shard serving-state summary reported by [`shard::ShardedEngine`]
/// batches (empty on monolithic batches). One row per shard, in shard-index
/// order, describing the snapshot the batch was served from.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ShardStat {
    /// Shard index in `0..shards`.
    pub shard: usize,
    /// The shard's own epoch (bumped only when an apply touches it).
    pub epoch: u64,
    /// Live sites owned by this shard.
    pub live: usize,
    /// Tombstones still buried in this shard's buckets.
    pub tombstones: usize,
    /// Fraction of this shard's stored locations whose bucket quant
    /// summaries are warm (already built — a merged quantification touching
    /// them pays only the stream draw), in `[0, 1]`; `0.0` when the shard
    /// stores nothing.
    pub quant_warm_rate: f64,
}

/// Execution report for one batch.
#[derive(Clone, Debug)]
pub struct ExecStats {
    /// The planner's decision (with its full cost table).
    pub plan: BatchPlan,
    /// Structures built during this batch (empty on warm batches).
    pub built: Vec<&'static str>,
    /// End-to-end wall time for the batch.
    pub wall: Duration,
    pub batch_len: usize,
    pub cache_hits: usize,
    pub cache_misses: usize,
    /// Worker count used for this batch.
    pub workers: usize,
    /// The snapshot epoch this batch was served from (0 until the first
    /// [`Engine::apply`]). Every answer of the batch reflects exactly this
    /// epoch's site set.
    pub epoch: u64,
    /// Live sites in the serving snapshot.
    pub live_sites: usize,
    /// Tombstoned sites still buried in the snapshot's buckets (0 until
    /// updates have been applied). Summed across shards on sharded batches.
    pub tombstones: usize,
    /// Per-shard `(epoch, live, tombstones)` rows when the batch was served
    /// by a [`shard::ShardedEngine`]; empty on monolithic batches. For
    /// sharded batches [`ExecStats::epoch`] holds the publish *generation*
    /// (the monotone counter stamped on every atomically-published
    /// shard-epoch vector), and these rows hold the per-shard epochs.
    pub shard_stats: Vec<ShardStat>,
    /// Busy (execution) time of each shard of this batch, measured inside
    /// the shard's job. At most one shard per worker.
    pub worker_busy: Vec<Duration>,
    /// The guarantee `NN≠0` answers of this batch were served under —
    /// always [`Guarantee::Exact`] (every plan, including `nonzero:diagram`,
    /// is exact); `None` when the batch had no nonzero requests.
    pub nonzero_guarantee: Option<Guarantee>,
    /// Adaptive-predicate filter outcomes during this batch (builds +
    /// queries): geometric sign tests answered by the fast f64 filter vs
    /// exact expansion fallbacks. Counters are process-global, so
    /// concurrent batches on *other* engines fold into each other's deltas.
    pub predicate_filter_hits: u64,
    /// Exact-arithmetic fallbacks during this batch (see
    /// [`ExecStats::predicate_filter_hits`]).
    pub predicate_exact_fallbacks: u64,
    /// Distances the SoA kernels (`uncertain_spatial::soa`) evaluated in
    /// full-width chunked lanes during this batch. Like the predicate
    /// counters these are process-global deltas, so concurrent batches on
    /// *other* engines fold into each other's numbers.
    pub kernel_lane_dists: u64,
    /// Distances the same kernels evaluated one at a time (chunk remainders
    /// and scalar fallback paths; see
    /// [`ExecStats::kernel_lane_dists`]).
    pub kernel_scalar_dists: u64,
    /// Quantification evaluations served by the k-way merged path this
    /// batch (cache hits execute neither evaluator and count in neither).
    pub quant_merged_evals: usize,
    /// Quantification evaluations served by the fresh `O(N log N)` sweep.
    pub quant_fresh_evals: usize,
    /// Bucket streams the merged evaluations drew…
    pub quant_bucket_touches: usize,
    /// …of which the per-bucket summary was already warm (no lazy build).
    pub quant_bucket_warm: usize,
    /// Σ shards visited by this batch's scatter-gather reads (each
    /// cache-missed `NN≠0:dynamic` or `quant:merged` evaluation counts the
    /// shards its box pruning actually touched). 0 on monolithic batches.
    pub shards_touched: usize,
    /// Scatter-gather reads behind [`ExecStats::shards_touched`] —
    /// `shards_touched / shard_reads` is the mean fan-out per query, the
    /// number the planner's gather term is fed back.
    pub shard_reads: usize,
    /// Registry span totals (`uncertain_obs` wall-clock histograms across
    /// the engine, planner, cache, dynamic, and kernel layers) that
    /// advanced during this batch, merged by span name. Like the predicate
    /// and kernel counters these are process-global deltas, so concurrent
    /// batches on *other* engines fold into each other's numbers. The
    /// `.cycles` twins are dropped.
    pub spans: Vec<uncertain_obs::SpanStat>,
}

impl ExecStats {
    /// Hits / lookups, 0.0 when the batch did no cache lookups.
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }

    /// Σ busy / (workers · wall), in `[0, 1]` up to timer noise.
    pub fn worker_utilization(&self) -> f64 {
        if self.workers == 0 || self.wall.is_zero() {
            return 0.0;
        }
        let busy: Duration = self.worker_busy.iter().sum();
        (busy.as_secs_f64() / (self.workers as f64 * self.wall.as_secs_f64())).min(1.0)
    }

    /// Requests per second over the batch wall time.
    pub fn throughput_qps(&self) -> f64 {
        if self.wall.is_zero() {
            return 0.0;
        }
        self.batch_len as f64 / self.wall.as_secs_f64()
    }

    /// Fraction of adaptive geometric predicates the f64 filter answered
    /// during this batch; `0.0` when none ran (an idle batch reports no
    /// hits, not a perfect rate — every ratio helper here shares that
    /// convention). ≥ 0.99 on random inputs with work done — the exact
    /// fallback only fires within an ulp-scale shell of a degeneracy.
    pub fn predicate_filter_hit_rate(&self) -> f64 {
        let total = self.predicate_filter_hits + self.predicate_exact_fallbacks;
        if total == 0 {
            0.0
        } else {
            self.predicate_filter_hits as f64 / total as f64
        }
    }

    /// Fraction of the batch's kernel distance evaluations that ran in
    /// chunked lanes; `0.0` when the batch evaluated none. Low values mean
    /// the workload evaluated nothing, lives in tiny kd leaves, or took
    /// scalar fallback paths.
    pub fn kernel_lane_fraction(&self) -> f64 {
        let total = self.kernel_lane_dists + self.kernel_scalar_dists;
        if total == 0 {
            0.0
        } else {
            self.kernel_lane_dists as f64 / total as f64
        }
    }

    /// Fraction of bucket streams the merged quantification path drew from
    /// already-warm summaries; `0.0` when the batch drew none (e.g. every
    /// answer came from the cache). Low values mean churn replaced most
    /// buckets since quantification last ran — or that no merged
    /// evaluation executed at all.
    pub fn quant_bucket_reuse_rate(&self) -> f64 {
        if self.quant_bucket_touches == 0 {
            0.0
        } else {
            self.quant_bucket_warm as f64 / self.quant_bucket_touches as f64
        }
    }

    /// Mean shards visited per scatter-gather read; `0.0` when the batch
    /// did none (monolithic engine, or every answer from the cache). Equal
    /// to the shard count under hash partitioning; `< shards` measures how
    /// much the spatial partitioner's box pruning cut the fan-out.
    pub fn avg_shards_touched(&self) -> f64 {
        if self.shard_reads == 0 {
            0.0
        } else {
            self.shards_touched as f64 / self.shard_reads as f64
        }
    }
}

/// Largest shard count whose per-shard `Display` tokens stay readable on
/// one log line; above it the tokens aggregate to min/median/max unless
/// [`STATS_VERBOSE_ENV`] is set.
const DISPLAY_SHARD_TOKENS_MAX: usize = 8;

/// Set (to anything) to force per-shard `ExecStats` `Display` tokens at
/// every shard count instead of the min/median/max aggregation past
/// S = 8.
pub const STATS_VERBOSE_ENV: &str = "UNC_STATS_VERBOSE";

impl std::fmt::Display for ExecStats {
    /// Compact one-line batch summary for logs and examples:
    /// `plan=[nonzero:index] reqs=64 wall=1.2ms qps=53388 cache=75% util=88% epoch=3 live=4096 tomb=0 stouch=0.0`.
    ///
    /// Every field is printed unconditionally (even when zero). Sharded
    /// batches append one fixed-shape `shardK=epoch/live/tomb/warm%` token
    /// per shard up to S = 8; past that the line would be unreadable, so
    /// the tokens aggregate to one `shards=S lo=… med=… hi=…` summary
    /// (min/median/max of each column) unless the `UNC_STATS_VERBOSE` env
    /// var is set — log scrapers see the same columns at every epoch and a
    /// bounded line length at every shard count.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "plan=[{}] reqs={} wall={} qps={:.0} cache={:.0}% util={:.0}% epoch={} live={} tomb={} stouch={:.1}",
            self.plan.summary(),
            self.batch_len,
            uncertain_obs::fmt_ns(self.wall.as_nanos() as u64),
            self.throughput_qps(),
            100.0 * self.cache_hit_rate(),
            100.0 * self.worker_utilization(),
            self.epoch,
            self.live_sites,
            self.tombstones,
            self.avg_shards_touched(),
        )?;
        let verbose = std::env::var_os(STATS_VERBOSE_ENV).is_some();
        if self.shard_stats.len() <= DISPLAY_SHARD_TOKENS_MAX || verbose {
            for s in &self.shard_stats {
                write!(
                    f,
                    " shard{}={}/{}/{}/{:.0}%",
                    s.shard,
                    s.epoch,
                    s.live,
                    s.tombstones,
                    100.0 * s.quant_warm_rate
                )?;
            }
        } else {
            // min/median/max per column, each rendered in the same
            // epoch/live/tomb/warm% shape as the per-shard tokens.
            fn col<T: Copy + Ord>(mut v: Vec<T>) -> (T, T, T) {
                v.sort_unstable();
                (v[0], v[v.len() / 2], v[v.len() - 1])
            }
            let (e_lo, e_med, e_hi) = col(self.shard_stats.iter().map(|s| s.epoch).collect());
            let (l_lo, l_med, l_hi) = col(self.shard_stats.iter().map(|s| s.live).collect());
            let (t_lo, t_med, t_hi) = col(self.shard_stats.iter().map(|s| s.tombstones).collect());
            let (w_lo, w_med, w_hi) = col(self
                .shard_stats
                .iter()
                .map(|s| (100.0 * s.quant_warm_rate).round() as u64)
                .collect());
            write!(
                f,
                " shards={} lo={e_lo}/{l_lo}/{t_lo}/{w_lo}% med={e_med}/{l_med}/{t_med}/{w_med}% hi={e_hi}/{l_hi}/{t_hi}/{w_hi}%",
                self.shard_stats.len()
            )?;
        }
        Ok(())
    }
}

/// A batch's answers (in request order) plus its execution report.
#[derive(Clone, Debug)]
pub struct BatchResponse {
    pub results: Vec<QueryResult>,
    pub stats: ExecStats,
}

/// Engine configuration. `Default` is a sensible serving setup: exact
/// answers, exact-bits caching (no snapping), auto-detected parallelism.
#[derive(Clone, Copy, Debug)]
pub struct EngineConfig {
    /// Worker count. Resolution: `UNC_ENGINE_THREADS` env > this field >
    /// detected parallelism.
    pub threads: Option<usize>,
    /// The guarantee requested of probability answers; gates which
    /// quantifiers the planner may pick.
    pub guarantee: Guarantee,
    /// Result-cache capacity in entries; `0` disables the cache entirely
    /// (no lookups or lock traffic — for measuring raw execution).
    pub cache_capacity: usize,
    /// Cache grid cell side; `0.0` keys on exact query bits. When positive,
    /// probability answers are evaluated at cell centers and served with a
    /// certified widened guarantee.
    pub cache_grid: f64,
    /// Largest `n` for which the planner may price the `V≠0` diagram.
    pub diagram_cap: usize,
    /// Seed for Monte-Carlo instantiation sampling (deterministic builds).
    pub mc_seed: u64,
    /// Tuning of the Bentley–Saxe structure [`apply`](Engine::apply)
    /// maintains (bucket-index crossover, compaction thresholds).
    pub dynamic: DynamicConfig,
    /// Shard count for [`shard::ShardedEngine`]. Resolution:
    /// `UNC_ENGINE_SHARDS` env > this field > detected parallelism, min 1.
    /// Ignored by the monolithic [`Engine`].
    pub shards: Option<usize>,
    /// How [`shard::ShardedEngine`] assigns sites to shards: `Hash`
    /// (default — stable-id hash, write-parallel, every query fans out to
    /// all shards) or `Spatial` (kd-split of the site cloud — clustered
    /// queries touch few shards, applies serialize). Overridable via the
    /// `UNC_ENGINE_PARTITIONER` env var (`hash` / `spatial`). Ignored by
    /// the monolithic [`Engine`].
    pub partitioner: shard::PartitionerKind,
    /// Live-count imbalance ratio (max/min across shards) past which a
    /// spatial apply schedules an incremental rebalance; `0.0` disables
    /// rebalancing. Overridable via `UNC_ENGINE_REBALANCE`. Ignored under
    /// `Hash` partitioning and by the monolithic [`Engine`].
    pub rebalance_ratio: f64,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            threads: None,
            guarantee: Guarantee::Exact,
            cache_capacity: 4096,
            cache_grid: 0.0,
            diagram_cap: 40,
            mc_seed: 0xC0FFEE,
            dynamic: DynamicConfig::default(),
            shards: None,
            partitioner: shard::PartitionerKind::Hash,
            rebalance_ratio: 4.0,
        }
    }
}

/// Lazily-built shared structures. Build cost is paid once (on the batch
/// that first needs the structure) and sunk for all later batches — the
/// planner is told what already exists.
#[derive(Default)]
struct Structures {
    index: Mutex<Option<Arc<DiscreteNonzeroIndex>>>,
    diagram: Mutex<Option<Arc<DiscreteNonzeroDiagram>>>,
    spiral: Mutex<Option<Arc<SpiralSearch>>>,
    mc: Mutex<Option<(usize, Arc<MonteCarloPnn>)>>,
}

/// One immutable epoch snapshot: the live site set, the dynamic structure
/// it came from (absent at epoch 0), and the epoch's lazily-built static
/// query structures. Batches pin the snapshot they started on via `Arc`, so
/// a concurrent [`Engine::apply`] never changes answers mid-batch.
struct EngineCore {
    epoch: u64,
    /// Live sites, densely indexed in ascending-id order — materialized
    /// **lazily** from the dynamic structure at epochs > 0, because apply()
    /// must stay cheap and batches served by the dynamic plans (`NN≠0`
    /// buckets, merged quantification) never need the flat set. Epoch 0
    /// fills it eagerly at construction.
    set: OnceLock<DiscreteSet>,
    /// Live-site count (cheap shape summary, valid without materializing).
    n: usize,
    /// Dense index → stable site id; inner `None` = identity (epoch 0).
    /// Lazy for the same reason as `set`: an apply that nothing downstream
    /// observes should cost nothing downstream — the O(live) id list is
    /// built by the first batch that maps dense results, not by `apply`.
    ids: OnceLock<Option<Arc<Vec<SiteId>>>>,
    /// `(Σ k, max k, weight spread)` over live sites — the planner's shape
    /// summary, computed by the first batch of the epoch (an O(n + N) scan
    /// `apply` no longer pays).
    shape: OnceLock<(usize, usize, f64)>,
    /// The Bentley–Saxe structure this snapshot serves from; `None` until
    /// the first apply (a fresh engine serves the static paths only).
    dynamic: Option<Arc<DynamicSet>>,
    config: EngineConfig,
    /// Shared across epochs; epoch-stamped keys keep entries from ever
    /// crossing snapshots.
    cache: Arc<ResultCache>,
    structures: Structures,
}

impl EngineCore {
    /// The flat live set, materializing it from the dynamic structure on
    /// first use (no-op at epoch 0, where construction filled it).
    fn set(&self) -> &DiscreteSet {
        self.set.get_or_init(|| {
            self.dynamic
                .as_ref()
                .expect("epoch 0 cores are built with the set filled")
                .live_set()
        })
    }

    /// The dense → stable-id map, materialized on first use; `None` means
    /// identity (epoch 0).
    fn ids(&self) -> Option<&Arc<Vec<SiteId>>> {
        self.ids
            .get_or_init(|| {
                let d = self
                    .dynamic
                    .as_ref()
                    .expect("epoch 0 cores are built with identity ids filled");
                Some(Arc::new(d.live_ids()))
            })
            .as_ref()
    }

    /// `(total locations, max k, weight spread)` of the live sites.
    fn shape(&self) -> (usize, usize, f64) {
        *self.shape.get_or_init(|| {
            self.dynamic
                .as_ref()
                .expect("epoch 0 cores are built with the shape filled")
                .live_shape()
        })
    }

    fn public_id(&self, dense: usize) -> SiteId {
        match self.ids() {
            Some(ids) => ids[dense],
            None => dense,
        }
    }

    /// Maps a dense-index result vector to stable site ids (identity at
    /// epoch 0). The map is monotone, so ascending stays ascending.
    fn map_dense(&self, mut v: Vec<usize>) -> Vec<usize> {
        if let Some(ids) = self.ids() {
            for i in v.iter_mut() {
                *i = ids[*i];
            }
        }
        v
    }
}

/// Locks a mutex, recovering the guard if a previous holder panicked.
/// Sound only where the guarded state is **valid-on-panic** — true for
/// every engine lock: `Arc` snapshot pointers are swapped atomically, the
/// apply lock guards nothing, and the lazily-built structure slots are
/// `Option<Arc<_>>`s that a panicking build simply leaves `None`. The one
/// lock whose state *can* tear mid-panic is the result cache's LRU, which
/// clears itself on poison instead (see [`cache`]). Without these, one
/// panicking query poisons a lock and every later `.lock().unwrap()`
/// panics too — the cascade that turns a bad request into a dead process.
pub(crate) fn lock_ok<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// [`lock_ok`] for read guards.
pub(crate) fn read_ok<T>(l: &RwLock<T>) -> std::sync::RwLockReadGuard<'_, T> {
    l.read().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// [`lock_ok`] for write guards.
pub(crate) fn write_ok<T>(l: &RwLock<T>) -> std::sync::RwLockWriteGuard<'_, T> {
    l.write().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Renders a caught panic payload for [`QueryResult::Failed`].
pub(crate) fn panic_reason(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// The serving engine: owns the uncertain-point set, its worker pool, its
/// cache, and every lazily-built query structure. [`Engine::apply`] swaps
/// in a new epoch snapshot; queries always serve a consistent epoch.
pub struct Engine {
    /// The current snapshot. Readers take the read lock only long enough to
    /// clone the `Arc` (no lock is held while serving), writers only to
    /// store a new one.
    core: RwLock<Arc<EngineCore>>,
    /// Serializes appliers (readers are never blocked by it).
    apply_lock: Mutex<()>,
    pool: ThreadPool,
}

/// The per-batch execution context handed to workers.
#[derive(Clone)]
struct Prepared {
    nonzero: Option<PreparedNonzero>,
    quant: Option<PreparedQuant>,
}

#[derive(Clone)]
enum PreparedNonzero {
    Brute,
    Index(Arc<DiscreteNonzeroIndex>),
    Diagram(Arc<DiscreteNonzeroDiagram>),
    Dynamic(Arc<DynamicSet>),
}

#[derive(Clone)]
enum PreparedQuant {
    Exact,
    /// The k-way merged exact path over the warm Bentley–Saxe buckets.
    Merged(Arc<DynamicSet>),
    Spiral(Arc<SpiralSearch>, f64),
    MonteCarlo(Arc<MonteCarloPnn>, Guarantee),
}

#[derive(Default)]
struct BatchCounters {
    hits: AtomicUsize,
    misses: AtomicUsize,
    /// Quantification evaluations by the merged path vs the fresh sweep
    /// (cache hits execute neither).
    quant_merged: AtomicUsize,
    quant_fresh: AtomicUsize,
    /// Bucket streams drawn by merged evaluations, and how many of them
    /// were already warm — the per-bucket reuse rate.
    bucket_touches: AtomicUsize,
    bucket_warm: AtomicUsize,
    /// Σ shards visited by scatter-gather reads, and the number of such
    /// reads (sharded engine only; monolithic batches leave both 0).
    shards_touched: AtomicUsize,
    shard_reads: AtomicUsize,
}

impl Engine {
    /// Builds an engine over `set`. Spawns the worker pool immediately;
    /// query structures are built lazily by the planner. Sites receive the
    /// stable ids `0..set.len()` in input order.
    pub fn new(set: DiscreteSet, config: EngineConfig) -> Self {
        let threads = resolve_threads(config.threads);
        let spread = if set.is_empty() { 1.0 } else { set.spread() };
        let core = Arc::new(EngineCore {
            epoch: 0,
            n: set.len(),
            ids: OnceLock::from(None),
            shape: OnceLock::from((set.total_locations(), set.max_k(), spread)),
            dynamic: None,
            cache: Arc::new(ResultCache::new(config.cache_capacity, config.cache_grid)),
            structures: Structures::default(),
            config,
            set: OnceLock::from(set),
        });
        Engine {
            core: RwLock::new(core),
            apply_lock: Mutex::new(()),
            pool: ThreadPool::new(threads),
        }
    }

    /// The current snapshot (a cheap `Arc` clone; the read lock is released
    /// before returning).
    fn snapshot(&self) -> Arc<EngineCore> {
        read_ok(&self.core).clone()
    }

    /// The epoch the engine currently serves (0 until the first
    /// [`apply`](Self::apply)).
    pub fn epoch(&self) -> u64 {
        self.snapshot().epoch
    }

    /// The surviving sites of the current epoch, densely in ascending-id
    /// order (index `dense` is site [`site_ids`](Self::site_ids)`[dense]`).
    pub fn live_set(&self) -> DiscreteSet {
        self.snapshot().set().clone()
    }

    /// Stable ids of the current epoch's live sites, ascending.
    pub fn site_ids(&self) -> Vec<SiteId> {
        let core = self.snapshot();
        match core.ids() {
            Some(ids) => ids.as_ref().clone(),
            None => (0..core.n).collect(),
        }
    }

    /// Whether the current epoch's flat live set has been materialized.
    /// `apply` never materializes it — only consumers that genuinely need
    /// the flat view (static-structure builds, the fresh quant path,
    /// [`live_set`](Self::live_set)) do, so batches served entirely by the
    /// dynamic plans (`nonzero:dynamic`, `quant:merged`) leave it untouched.
    /// Exposed for tests and capacity planning.
    pub fn flat_set_materialized(&self) -> bool {
        self.snapshot().set.get().is_some()
    }

    /// Shape of the dynamic structure, once updates have been applied.
    pub fn dynamic_stats(&self) -> Option<DynamicStats> {
        self.snapshot().dynamic.as_ref().map(|d| d.stats())
    }

    /// Applies a batch of site updates and publishes a new epoch snapshot.
    ///
    /// Concurrent `apply` calls serialize against each other; concurrent
    /// [`run_batch`](Self::run_batch) calls are never blocked — a batch
    /// already in flight keeps serving the epoch it started on (its
    /// [`ExecStats::epoch`] says which), and the next batch picks up the
    /// new snapshot. The update cost is the Bentley–Saxe amortized bound
    /// (buckets merged by the carry rule), **not** a full rebuild; the
    /// first `apply` on a fresh engine additionally bulk-loads the initial
    /// set into one bucket.
    /// An apply that changes nothing — an empty batch, or one whose every
    /// update missed — returns the *current* epoch and does not publish a
    /// new snapshot, so warm cache entries survive no-op ticks.
    pub fn apply(&self, updates: &[Update]) -> ApplyReport {
        let _span = uncertain_obs::span!("engine.apply");
        uncertain_obs::counter!("engine.apply.updates").add(updates.len() as u64);
        let _writer = lock_ok(&self.apply_lock);
        let old = self.snapshot();
        let noop_report = |missed: usize| ApplyReport {
            epoch: old.epoch,
            inserted: vec![],
            removed: 0,
            moved: 0,
            missed,
            live: old.n,
            tombstones: old.dynamic.as_ref().map_or(0, |d| d.tombstones()),
            merges: 0,
            global_rebuilds: 0,
            sites_rebuilt: 0,
        };
        // Effectiveness pre-check: inserts always change the set; removes
        // and moves only if the id is currently live. Bailing out *before*
        // touching the dynamic structure matters most at epoch 0, where the
        // first effective apply pays the one-time Bentley–Saxe bulk load —
        // a stream of no-op batches (e.g. replays of stale ids) must not
        // pay it repeatedly.
        let is_live = |id: SiteId| match &old.dynamic {
            Some(d) => d.contains(id),
            None => id < old.n,
        };
        let effective = updates.iter().any(|u| match u {
            Update::Insert(_) => true,
            Update::Remove(id) | Update::Move { id, .. } => is_live(*id),
        });
        if !effective {
            return noop_report(updates.len());
        }
        let mut dynamic = match &old.dynamic {
            Some(d) => (**d).clone(),
            None => DynamicSet::from_set(old.set(), old.config.dynamic),
        };
        let before = dynamic.stats().rebuild;
        // Batched core apply: mutations land in order, all new entries
        // merge with a single Bentley–Saxe carry.
        let outcome = dynamic.apply(updates);
        if outcome.inserted.is_empty() && outcome.removed == 0 && outcome.moved == 0 {
            // Every update missed: nothing changed, keep the epoch.
            return noop_report(outcome.missed);
        }
        let delta = dynamic.stats().rebuild.since(&before);
        let report = ApplyReport {
            epoch: old.epoch + 1,
            inserted: outcome.inserted,
            removed: outcome.removed,
            moved: outcome.moved,
            missed: outcome.missed,
            live: dynamic.len(),
            tombstones: dynamic.tombstones(),
            merges: delta.merges,
            global_rebuilds: delta.global_rebuilds,
            sites_rebuilt: delta.sites_rebuilt,
        };

        // No materialization here: the flat set, the live-id list, and the
        // planner's shape summary are all produced lazily by the first
        // consumer that observes them. An apply that only touches buckets
        // nothing downstream has looked at is O(batch + carry) — there is
        // no per-epoch O(n) invalidation work for state nobody built.
        let core = Arc::new(EngineCore {
            epoch: report.epoch,
            n: dynamic.len(),
            ids: OnceLock::new(),
            shape: OnceLock::new(),
            dynamic: Some(Arc::new(dynamic)),
            cache: Arc::clone(&old.cache),
            structures: Structures::default(),
            config: old.config,
            set: OnceLock::new(),
        });
        *write_ok(&self.core) = core;
        uncertain_obs::counter!("engine.apply.effective").inc();
        uncertain_obs::gauge!("engine.epoch").set(report.epoch as f64);
        uncertain_obs::gauge!("engine.live_sites").set(report.live as f64);
        uncertain_obs::gauge!("engine.tombstones").set(report.tombstones as f64);
        report
    }

    /// Resolved worker count.
    pub fn threads(&self) -> usize {
        self.pool.len()
    }

    /// Current number of cached entries.
    pub fn cache_len(&self) -> usize {
        self.snapshot().cache.len()
    }

    /// Plans and executes one batch: answers are returned in request order,
    /// alongside the plan taken and the execution stats. The whole batch is
    /// served from one epoch snapshot ([`ExecStats::epoch`]).
    pub fn run_batch(&self, requests: &[QueryRequest]) -> BatchResponse {
        let t0 = Instant::now();
        let spans_before = uncertain_obs::registry().span_totals();
        let core = self.snapshot();
        let predicates_before = predicate_stats();
        let kernels_before = kernel_stats();
        let nonzero_count = requests.iter().filter(|r| r.is_nonzero()).count();
        let plan = {
            let _s = uncertain_obs::span!("engine.batch.plan");
            plan_for(&core, nonzero_count, requests.len() - nonzero_count)
        };
        let (prepared, built) = {
            let _s = uncertain_obs::span!("engine.batch.prepare");
            prepare(&core, &plan)
        };
        let counters = Arc::new(BatchCounters::default());

        let (results, worker_busy) = if requests.is_empty() {
            (vec![], vec![])
        } else if self.pool.len() == 1 || requests.len() == 1 {
            // Single worker: run inline, skipping the channel round-trip.
            let mut scratch = QueryScratch::default();
            let e0 = Instant::now();
            let results = requests
                .iter()
                .map(|r| exec_one(&core, &prepared, *r, &counters, &mut scratch))
                .collect();
            (results, vec![e0.elapsed()])
        } else {
            let shard = requests.len().div_ceil(self.pool.len());
            let (rtx, rrx) = std::sync::mpsc::channel();
            let mut shards = 0usize;
            for (si, chunk) in requests.chunks(shard).enumerate() {
                let core = Arc::clone(&core);
                let prepared = prepared.clone();
                let counters = Arc::clone(&counters);
                let chunk: Vec<QueryRequest> = chunk.to_vec();
                let rtx = rtx.clone();
                self.pool.execute(move || {
                    let e0 = Instant::now();
                    let mut scratch = QueryScratch::default();
                    let out: Vec<QueryResult> = chunk
                        .iter()
                        .map(|r| exec_one(&core, &prepared, *r, &counters, &mut scratch))
                        .collect();
                    let _ = rtx.send((si, out, e0.elapsed()));
                });
                shards += 1;
            }
            drop(rtx);
            let mut buf: Vec<Option<Vec<QueryResult>>> = (0..shards).map(|_| None).collect();
            let mut busy = vec![Duration::ZERO; shards];
            for (si, out, dt) in rrx {
                buf[si] = Some(out);
                busy[si] = dt;
            }
            // Panics are caught per-request inside `exec_one`, so shard
            // jobs normally always report. If a job is ever lost anyway
            // (a panic outside the per-request guard), degrade to typed
            // failures for exactly that shard instead of unwinding the
            // caller — under the network server the caller is the batcher
            // thread, and its death would kill the whole serving process.
            let results = buf
                .into_iter()
                .enumerate()
                .flat_map(|(si, s)| {
                    s.unwrap_or_else(|| {
                        uncertain_obs::counter!("engine.exec.lost_jobs").inc();
                        let lo = si * shard;
                        let len = shard.min(requests.len() - lo);
                        (0..len)
                            .map(|_| QueryResult::Failed {
                                reason: "worker job lost to a panic outside the request guard"
                                    .into(),
                            })
                            .collect()
                    })
                })
                .collect();
            (results, busy)
        };

        let wall = t0.elapsed();
        uncertain_obs::histogram!("engine.batch.wall").record(wall.as_nanos() as u64);
        uncertain_obs::counter!("engine.batch.requests").add(requests.len() as u64);
        record_planner_observation(&plan, requests.len(), worker_busy.iter().sum());
        let spans =
            uncertain_obs::span_delta(&spans_before, &uncertain_obs::registry().span_totals());
        let predicates = predicate_stats().since(&predicates_before);
        let kernels = kernel_stats().since(&kernels_before);
        BatchResponse {
            results,
            stats: ExecStats {
                nonzero_guarantee: (nonzero_count > 0).then_some(Guarantee::Exact),
                plan,
                built,
                wall,
                batch_len: requests.len(),
                cache_hits: counters.hits.load(Ordering::Relaxed),
                cache_misses: counters.misses.load(Ordering::Relaxed),
                workers: self.pool.len(),
                epoch: core.epoch,
                live_sites: core.n,
                tombstones: core.dynamic.as_ref().map_or(0, |d| d.tombstones()),
                shard_stats: vec![],
                worker_busy,
                predicate_filter_hits: predicates.filter_hits,
                predicate_exact_fallbacks: predicates.exact_fallbacks,
                kernel_lane_dists: kernels.lane_dists,
                kernel_scalar_dists: kernels.scalar_dists,
                quant_merged_evals: counters.quant_merged.load(Ordering::Relaxed),
                quant_fresh_evals: counters.quant_fresh.load(Ordering::Relaxed),
                quant_bucket_touches: counters.bucket_touches.load(Ordering::Relaxed),
                quant_bucket_warm: counters.bucket_warm.load(Ordering::Relaxed),
                shards_touched: 0,
                shard_reads: 0,
                spans,
            },
        }
    }

    /// Probability estimates for a single query through the planner + cache
    /// (the path Threshold/TopK answers are derived from), with the
    /// guarantee they are served under. Dense over the current epoch's live
    /// sites in [`site_ids`](Self::site_ids) order. Exposed for tests and
    /// calibration.
    pub fn estimates(&self, q: Point) -> (Vec<f64>, Guarantee) {
        let core = self.snapshot();
        let plan = plan_for(&core, 0, 1);
        let (prepared, _) = prepare(&core, &plan);
        let counters = BatchCounters::default();
        let quant = prepared.quant.as_ref().expect("quant plan for 1 request");
        let (pi, g) = quant_vector(&core, quant, q, &counters);
        (pi.as_ref().clone(), g)
    }
}

fn plan_for(core: &EngineCore, nonzero_count: usize, quant_count: usize) -> BatchPlan {
    let (total_locations, max_k, spread) = core.shape();
    let (_, quant_cold) = core
        .dynamic
        .as_ref()
        .map_or((0, 0), |d| d.quant_summary_state());
    planner::plan(&PlannerInputs {
        n: core.n,
        total_locations,
        max_k,
        spread,
        nonzero_count,
        quant_count,
        guarantee: core.config.guarantee,
        diagram_cap: core.config.diagram_cap,
        index_built: lock_ok(&core.structures.index).is_some(),
        diagram_built: lock_ok(&core.structures.diagram).is_some(),
        spiral_built: lock_ok(&core.structures.spiral).is_some(),
        mc_built_samples: lock_ok(&core.structures.mc).as_ref().map(|(s, _)| *s),
        dynamic_ready: core.dynamic.is_some(),
        dynamic_buckets: core.dynamic.as_ref().map_or(0, |d| d.stats().buckets),
        dynamic_quant_cold_locations: quant_cold,
        quant_snapped: core.cache.grid() > 0.0,
        shards: 0,
        expected_shards_touched: 0.0,
    })
}

/// Feeds the planner's predicted cost (the chosen rows' abstract "location
/// visit" units) and the batch's observed busy time into the registry, so
/// dumps can compare what the cost model promised against what execution
/// delivered. A batch whose ns-per-unit ratio deviates by more than 4× in
/// either direction from the cumulative mean ratio counts as a
/// misprediction — a deliberately coarse heuristic: unit costs drift with
/// cache warmth and data shape, so only order-of-magnitude surprises are
/// flagged.
fn record_planner_observation(plan: &BatchPlan, batch_len: usize, busy: Duration) {
    if batch_len == 0 {
        return;
    }
    let predicted: f64 = plan
        .estimates
        .iter()
        .filter(|e| e.chosen)
        .map(|e| e.total)
        .sum();
    let observed_ns = busy.as_nanos() as u64;
    if predicted <= 0.0 || observed_ns == 0 {
        return;
    }
    let predicted_units = predicted.round().max(1.0) as u64;
    let predicted_c = uncertain_obs::counter!("engine.planner.predicted_units");
    let observed_c = uncertain_obs::counter!("engine.planner.observed_ns");
    // Read the cumulative totals *before* folding this batch in, so the
    // batch is judged against history, not against itself.
    let (cum_units, cum_ns) = (predicted_c.get(), observed_c.get());
    let batch_ratio = observed_ns as f64 / predicted_units as f64;
    uncertain_obs::histogram!("engine.planner.ns_per_unit").record(batch_ratio.round() as u64);
    if cum_units > 0 && cum_ns > 0 {
        let mean_ratio = cum_ns as f64 / cum_units as f64;
        if batch_ratio > 4.0 * mean_ratio || batch_ratio < 0.25 * mean_ratio {
            uncertain_obs::counter!("engine.planner.mispredictions").inc();
        }
    }
    predicted_c.add(predicted_units);
    observed_c.add(observed_ns);
}

/// Builds (or fetches) the structures the plan needs, on the calling
/// thread, so workers only ever read shared `Arc`s.
fn prepare(core: &EngineCore, plan: &BatchPlan) -> (Prepared, Vec<&'static str>) {
    let mut built = vec![];
    let nonzero = plan.nonzero.map(|np| match np {
        NonzeroPlan::Brute => PreparedNonzero::Brute,
        NonzeroPlan::Index => {
            let mut slot = lock_ok(&core.structures.index);
            let arc = slot
                .get_or_insert_with(|| {
                    built.push("nonzero-index");
                    Arc::new(DiscreteNonzeroIndex::build(core.set()))
                })
                .clone();
            PreparedNonzero::Index(arc)
        }
        NonzeroPlan::Diagram => {
            let mut slot = lock_ok(&core.structures.diagram);
            let arc = slot
                .get_or_insert_with(|| {
                    built.push("vnz-diagram");
                    Arc::new(DiscreteNonzeroDiagram::build(
                        core.set(),
                        &working_bbox(core.set()),
                    ))
                })
                .clone();
            PreparedNonzero::Diagram(arc)
        }
        NonzeroPlan::Dynamic => PreparedNonzero::Dynamic(Arc::clone(
            core.dynamic
                .as_ref()
                .expect("dynamic plan is only priced when the structure exists"),
        )),
    });
    let quant = plan.quant.map(|qp| match qp {
        QuantPlan::Exact => PreparedQuant::Exact,
        QuantPlan::Merged => PreparedQuant::Merged(Arc::clone(
            core.dynamic
                .as_ref()
                .expect("merged plan is only priced when the structure exists"),
        )),
        QuantPlan::Spiral { eps } => {
            let mut slot = lock_ok(&core.structures.spiral);
            let arc = slot
                .get_or_insert_with(|| {
                    built.push("spiral");
                    Arc::new(SpiralSearch::build(core.set()))
                })
                .clone();
            PreparedQuant::Spiral(arc, eps)
        }
        QuantPlan::MonteCarlo { samples } => {
            let mut slot = lock_ok(&core.structures.mc);
            let rebuild = slot.as_ref().is_none_or(|(have, _)| *have < samples);
            if rebuild {
                built.push("monte-carlo");
                let mut rng = StdRng::seed_from_u64(core.config.mc_seed);
                let mc = MonteCarloPnn::build_discrete(
                    core.set(),
                    samples,
                    SampleBackend::KdTree,
                    &mut rng,
                );
                *slot = Some((samples, Arc::new(mc)));
            }
            let (_, arc) = slot.as_ref().unwrap();
            PreparedQuant::MonteCarlo(Arc::clone(arc), core.config.guarantee)
        }
    });
    (Prepared { nonzero, quant }, built)
}

/// Working box for the `V≠0` diagram: the set's bounding box, moderately
/// inflated. Queries outside it fall back to the Lemma 2.1 evaluation.
/// The margin is a performance knob only — it sizes the subdivision (and
/// hence its snap tolerance and guard band), but certified location plus
/// the exact fallback keeps answers exact at any margin; `0.15·diag`
/// probes cleanly across workloads.
fn working_bbox(set: &DiscreteSet) -> Aabb {
    let bbox = Aabb::from_points(set.all_locations().map(|(_, _, loc, _)| loc));
    if bbox.is_empty() {
        return Aabb::from_corners(Point::new(-1.0, -1.0), Point::new(1.0, 1.0));
    }
    let diag = bbox.lo.dist(bbox.hi);
    bbox.inflated(0.15 * diag + 4.0)
}

/// Executes one request with per-request panic isolation: a panicking
/// evaluation (NaN coordinates violating a total-order assumption, a
/// pathological input tripping an internal assertion) yields a typed
/// [`QueryResult::Failed`] instead of unwinding through the worker. The
/// panic is contained *before* it can reach any shared lock, so nothing is
/// poisoned and the rest of the batch — and every later batch — answers
/// normally. The scratch buffer is re-defaulted on panic (its contents are
/// per-query transient state of unknown consistency after an unwind).
fn exec_one(
    core: &EngineCore,
    prepared: &Prepared,
    req: QueryRequest,
    counters: &BatchCounters,
    scratch: &mut QueryScratch,
) -> QueryResult {
    let out = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        exec_one_inner(core, prepared, req, counters, scratch)
    }));
    out.unwrap_or_else(|payload| {
        *scratch = QueryScratch::default();
        uncertain_obs::counter!("engine.exec.panics").inc();
        QueryResult::Failed {
            reason: panic_reason(payload.as_ref()),
        }
    })
}

fn exec_one_inner(
    core: &EngineCore,
    prepared: &Prepared,
    req: QueryRequest,
    counters: &BatchCounters,
    scratch: &mut QueryScratch,
) -> QueryResult {
    // Non-finite inputs violate the total-order assumptions every plan
    // shares (and would poison cache keys); fail them deterministically
    // here — in every build profile — so `exec_one` turns the panic into
    // a typed `Failed` instead of the answer depending on NaN comparison
    // accidents. The wire protocol rejects them earlier; this guards
    // direct `run_batch` callers.
    let (q, tau) = match req {
        QueryRequest::Nonzero { q } | QueryRequest::TopK { q, .. } => (q, 0.0),
        QueryRequest::Threshold { q, tau } => (q, tau),
    };
    assert!(
        q.x.is_finite() && q.y.is_finite() && tau.is_finite(),
        "non-finite query input: q=({}, {}), tau={tau}",
        q.x,
        q.y
    );
    match req {
        QueryRequest::Nonzero { q } => {
            let _trace = uncertain_obs::trace::start("nonzero");
            let plan = prepared.nonzero.as_ref().expect("nonzero plan");
            // All four plans are exact (Guarantee::Exact), so their
            // answers share one (epoch-stamped) cache key and warm each
            // other's entries. Cached vectors hold stable site ids.
            let key = CacheKey::nonzero(core.epoch, q);
            if core.cache.enabled() {
                if let Some(CachedValue::Nonzero(ids)) = core.cache.get(&key) {
                    counters.hits.fetch_add(1, Ordering::Relaxed);
                    return QueryResult::Nonzero(ids.as_ref().clone());
                }
                counters.misses.fetch_add(1, Ordering::Relaxed);
            }
            // Opened after the cache lookup, so the per-plan execution
            // histograms time actual evaluations only.
            let _exec = match plan {
                PreparedNonzero::Brute => uncertain_obs::span!("engine.exec.nonzero.brute"),
                PreparedNonzero::Index(_) => uncertain_obs::span!("engine.exec.nonzero.index"),
                PreparedNonzero::Diagram(_) => uncertain_obs::span!("engine.exec.nonzero.diagram"),
                PreparedNonzero::Dynamic(_) => uncertain_obs::span!("engine.exec.nonzero.dynamic"),
            };
            let mut ids = match plan {
                PreparedNonzero::Brute => core.map_dense(nonzero_nn_discrete(core.set(), q)),
                PreparedNonzero::Index(idx) => core.map_dense(idx.query_with(q, scratch)),
                // Exact per Theorem 2.14: certified point location over the
                // exact-predicate slab structure, with the Lemma 2.1
                // fallback for boundary/guard-band queries — never inherits
                // coordinate-snapping error.
                PreparedNonzero::Diagram(diag) => core.map_dense(diag.query_located(q)),
                // Already in stable site ids.
                PreparedNonzero::Dynamic(d) => d.nonzero(q),
            };
            ids.sort_unstable();
            core.cache
                .insert(key, CachedValue::Nonzero(Arc::new(ids.clone())));
            QueryResult::Nonzero(ids)
        }
        QueryRequest::Threshold { q, tau } => {
            let _trace = uncertain_obs::trace::start("threshold");
            let quant = prepared.quant.as_ref().expect("quant plan");
            let (pi, guarantee) = quant_vector(core, quant, q, counters);
            let slack = guarantee.slack();
            let mut items: Vec<(usize, f64)> = pi
                .iter()
                .copied()
                .enumerate()
                .filter(|&(_, p)| p >= tau - slack)
                .collect();
            sort_ranked(&mut items);
            map_ranked(core, &mut items);
            QueryResult::Ranked { items, guarantee }
        }
        QueryRequest::TopK { q, k } => {
            let _trace = uncertain_obs::trace::start("topk");
            let quant = prepared.quant.as_ref().expect("quant plan");
            let (pi, guarantee) = quant_vector(core, quant, q, counters);
            let mut items: Vec<(usize, f64)> = pi
                .iter()
                .copied()
                .enumerate()
                .filter(|&(_, p)| p > 0.0)
                .collect();
            sort_ranked(&mut items);
            items.truncate(k);
            map_ranked(core, &mut items);
            QueryResult::Ranked { items, guarantee }
        }
    }
}

/// Rewrites dense indices of ranked items to stable site ids. Done *after*
/// sorting: the dense→id map is monotone, so the tie order (by ascending
/// index) is unchanged.
fn map_ranked(core: &EngineCore, items: &mut [(usize, f64)]) {
    for (i, _) in items.iter_mut() {
        *i = core.public_id(*i);
    }
}

/// Decreasing estimate, ties by increasing index — the same order the
/// single-threaded `uncertain_nn::queries` helpers produce.
fn sort_ranked(items: &mut [(usize, f64)]) {
    items.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
}

/// The cached quantification path: returns the dense `π̂` vector and the
/// guarantee it is served under. With a positive cache grid the vector is
/// evaluated at the *cell center* with a certified interval — identical for
/// every query in the cell, independent of cache state.
fn quant_vector(
    core: &EngineCore,
    quant: &PreparedQuant,
    q: Point,
    counters: &BatchCounters,
) -> (Arc<Vec<f64>>, Guarantee) {
    let grid = core.cache.grid();
    let (tag, base_guarantee) = match quant {
        // Merged and fresh are bit-identical exact evaluators, so they
        // share the Exact tag and warm each other's cache entries.
        PreparedQuant::Exact | PreparedQuant::Merged(_) => (QuantTag::Exact, Guarantee::Exact),
        PreparedQuant::Spiral(_, eps) => (
            QuantTag::Spiral {
                eps_bits: eps.to_bits(),
            },
            Guarantee::Additive(*eps),
        ),
        PreparedQuant::MonteCarlo(mc, g) => (
            QuantTag::MonteCarlo {
                samples: mc.num_samples(),
            },
            *g,
        ),
    };
    // Snapping is only certified for the exact evaluators (the interval
    // certificate needs exact cdfs); approximate engines key exactly.
    // Snapped evaluation happens whenever a grid is set — with or without a
    // live cache — so answers never depend on cache state. The planner
    // never picks Merged with a snap grid configured (the snapped branch
    // evaluates over the flat set), but keep it certified here regardless.
    let snapped = grid > 0.0 && matches!(quant, PreparedQuant::Exact | PreparedQuant::Merged(_));
    let key = CacheKey::quant(core.epoch, q, if snapped { grid } else { 0.0 }, tag);
    if core.cache.enabled() {
        if let Some(CachedValue::Quant { pi, guarantee }) = core.cache.get(&key) {
            counters.hits.fetch_add(1, Ordering::Relaxed);
            return (pi, guarantee);
        }
        counters.misses.fetch_add(1, Ordering::Relaxed);
    }
    let (pi, guarantee) = if snapped {
        let _exec = uncertain_obs::span!("engine.exec.quant.snapped");
        let center = snap_center(q, grid);
        let (mid, halfwidth) = snap::interval_quantification(core.set(), center, snap_radius(grid));
        let g = if halfwidth > 0.0 {
            Guarantee::Additive(halfwidth)
        } else {
            Guarantee::Exact
        };
        (mid, g)
    } else {
        // Same convention as the nonzero spans: opened after the cache
        // lookup, so the histograms time evaluations, not hits.
        let _exec = match quant {
            PreparedQuant::Exact => uncertain_obs::span!("engine.exec.quant.fresh"),
            PreparedQuant::Merged(_) => uncertain_obs::span!("engine.exec.quant.merged"),
            PreparedQuant::Spiral(..) => uncertain_obs::span!("engine.exec.quant.spiral"),
            PreparedQuant::MonteCarlo(..) => uncertain_obs::span!("engine.exec.quant.mc"),
        };
        let pi = match quant {
            PreparedQuant::Exact => {
                counters.quant_fresh.fetch_add(1, Ordering::Relaxed);
                quantification_discrete(core.set(), q)
            }
            PreparedQuant::Merged(d) => {
                let (pairs, st) = d.quantification_merged_with_stats(q);
                counters.quant_merged.fetch_add(1, Ordering::Relaxed);
                counters
                    .bucket_touches
                    .fetch_add(st.buckets, Ordering::Relaxed);
                counters
                    .bucket_warm
                    .fetch_add(st.warm_buckets, Ordering::Relaxed);
                // Pairs are ascending by stable id — exactly the dense
                // order of this epoch's live sites.
                pairs.into_iter().map(|(_, p)| p).collect()
            }
            PreparedQuant::Spiral(s, eps) => s.estimate_all(q, *eps),
            PreparedQuant::MonteCarlo(mc, _) => mc.estimate_all(q),
        };
        (pi, base_guarantee)
    };
    let pi = Arc::new(pi);
    core.cache.insert(
        key,
        CachedValue::Quant {
            pi: Arc::clone(&pi),
            guarantee,
        },
    );
    (pi, guarantee)
}

#[cfg(test)]
mod tests {
    use super::*;
    use uncertain_nn::model::DiscreteUncertainPoint;
    use uncertain_nn::queries::{threshold_nn, top_k_probable, ExactQuantifier};
    use uncertain_nn::workload;

    fn assert_send_sync<T: Send + Sync>() {}

    #[test]
    fn engine_is_send_sync() {
        assert_send_sync::<Engine>();
        assert_send_sync::<EngineCore>();
    }

    fn engine(n: usize, config: EngineConfig) -> (DiscreteSet, Engine) {
        let set = workload::random_discrete_set(n, 3, 6.0, 42);
        (set.clone(), Engine::new(set, config))
    }

    #[test]
    fn batch_answers_match_direct_calls() {
        let (set, eng) = engine(30, EngineConfig::default());
        let queries = workload::random_queries(24, 60.0, 9);
        let mut batch = vec![];
        for &q in &queries {
            batch.push(QueryRequest::Nonzero { q });
            batch.push(QueryRequest::Threshold { q, tau: 0.25 });
            batch.push(QueryRequest::TopK { q, k: 3 });
        }
        let resp = eng.run_batch(&batch);
        assert_eq!(resp.results.len(), batch.len());
        let exact = ExactQuantifier(&set);
        for (req, res) in batch.iter().zip(&resp.results) {
            match (req, res) {
                (QueryRequest::Nonzero { q }, QueryResult::Nonzero(ids)) => {
                    let mut direct = set.nonzero_nn(*q);
                    direct.sort_unstable();
                    assert_eq!(ids, &direct);
                }
                (QueryRequest::Threshold { q, tau }, QueryResult::Ranked { items, .. }) => {
                    assert_eq!(items, &threshold_nn(&exact, *q, *tau));
                }
                (QueryRequest::TopK { q, k }, QueryResult::Ranked { items, .. }) => {
                    assert_eq!(items, &top_k_probable(&exact, *q, *k));
                }
                other => panic!("shape mismatch: {other:?}"),
            }
        }
    }

    #[test]
    fn apply_publishes_new_epoch_with_stable_ids_and_fresh_answers() {
        let (set, eng) = engine(25, EngineConfig::default());
        let q = Point::new(0.0, 0.0);
        let batch = [QueryRequest::Nonzero { q }, QueryRequest::TopK { q, k: 4 }];
        let r0 = eng.run_batch(&batch);
        assert_eq!(r0.stats.epoch, 0);
        assert_eq!(r0.stats.tombstones, 0);
        assert_eq!(r0.stats.live_sites, set.len());

        // Remove every currently-possible NN and insert a certain site at q.
        let QueryResult::Nonzero(old_ids) = r0.results[0].clone() else {
            panic!("shape");
        };
        let mut updates: Vec<Update> = old_ids.iter().map(|&i| Update::Remove(i)).collect();
        updates.push(Update::Insert(DiscreteUncertainPoint::certain(q)));
        let report = eng.apply(&updates);
        assert_eq!(report.epoch, 1);
        assert_eq!(report.removed, old_ids.len());
        assert_eq!(report.inserted, vec![set.len()]);
        assert_eq!(report.live, set.len() - old_ids.len() + 1);
        assert_eq!(eng.epoch(), 1);

        let r1 = eng.run_batch(&batch);
        assert_eq!(r1.stats.epoch, 1);
        // The inserted certain site at q is now the unique possible NN, and
        // the epoch-stamped cache never replays the dead epoch's answer.
        assert_eq!(r1.results[0], QueryResult::Nonzero(vec![set.len()]));
        let QueryResult::Ranked { items, .. } = &r1.results[1] else {
            panic!("shape");
        };
        assert_eq!(items[0], (set.len(), 1.0));
        // Full consistency with a fresh static build over the survivors.
        let fresh = eng.live_set();
        let ids = eng.site_ids();
        assert_eq!(fresh.len(), report.live);
        let mut direct: Vec<usize> = fresh.nonzero_nn(q).into_iter().map(|d| ids[d]).collect();
        direct.sort_unstable();
        assert_eq!(r1.results[0], QueryResult::Nonzero(direct));
        // Dead ids stay dead; unknown ids are reported as missed — and an
        // apply that changes nothing keeps the epoch (and its warm cache).
        let report2 = eng.apply(&[Update::Remove(old_ids[0]), Update::Remove(10_000)]);
        assert_eq!(report2.epoch, 1, "all-missed apply must not bump the epoch");
        assert_eq!(report2.missed, 2);
        assert_eq!(report2.live, report.live);
        let report3 = eng.apply(&[]);
        assert_eq!(report3.epoch, 1, "empty apply must not bump the epoch");
        let warm = eng.run_batch(&batch);
        assert_eq!(warm.stats.epoch, 1);
        assert_eq!(
            warm.stats.cache_hits,
            batch.len(),
            "no-op applies keep the cache warm"
        );
        assert_eq!(warm.results, r1.results);
    }

    #[test]
    fn dynamic_plan_serves_after_updates_and_matches_brute() {
        // Large enough that brute loses; warm buckets beat a fresh index.
        let set = workload::random_discrete_set(3000, 3, 4.0, 77);
        let eng = Engine::new(set, EngineConfig::default());
        let mut updates: Vec<Update> = (0..60).map(Update::Remove).collect();
        for q in workload::random_queries(20, 50.0, 78) {
            updates.push(Update::Insert(DiscreteUncertainPoint::certain(q)));
        }
        let report = eng.apply(&updates);
        assert!(report.merges > 0);
        assert_eq!(
            report.tombstones as usize + report.live,
            3000 - 60 + 20 + 60
        );
        let batch: Vec<QueryRequest> = workload::random_queries(128, 60.0, 79)
            .into_iter()
            .map(|q| QueryRequest::Nonzero { q })
            .collect();
        let resp = eng.run_batch(&batch);
        assert_eq!(resp.stats.plan.nonzero, Some(NonzeroPlan::Dynamic));
        assert!(resp.stats.built.is_empty(), "dynamic plan builds nothing");
        let fresh = eng.live_set();
        let ids = eng.site_ids();
        for (req, res) in batch.iter().zip(&resp.results) {
            let (QueryRequest::Nonzero { q }, QueryResult::Nonzero(got)) = (req, res) else {
                panic!("shape");
            };
            let mut want: Vec<usize> = fresh.nonzero_nn(*q).into_iter().map(|d| ids[d]).collect();
            want.sort_unstable();
            assert_eq!(got, &want, "q = {q}");
        }
        assert!(eng.dynamic_stats().unwrap().buckets >= 1);
    }

    #[test]
    fn merged_quant_plan_serves_after_updates_and_matches_fresh_bitwise() {
        // Large enough that the merged path's sublinear queries clearly win
        // the cost model once the dynamic structure exists.
        let set = workload::random_discrete_set(3000, 3, 4.0, 99);
        let eng = Engine::new(set, EngineConfig::default());
        let mut updates: Vec<Update> = (0..40).map(Update::Remove).collect();
        for q in workload::random_queries(10, 50.0, 98) {
            updates.push(Update::Insert(DiscreteUncertainPoint::certain(q)));
        }
        eng.apply(&updates);
        let batch: Vec<QueryRequest> = workload::random_queries(48, 60.0, 97)
            .into_iter()
            .map(|q| QueryRequest::TopK { q, k: 5 })
            .collect();
        let resp = eng.run_batch(&batch);
        assert_eq!(resp.stats.plan.quant, Some(QuantPlan::Merged));
        assert_eq!(resp.stats.quant_merged_evals, batch.len());
        assert_eq!(resp.stats.quant_fresh_evals, 0);
        assert!(resp.stats.quant_bucket_touches >= batch.len());
        // First batch: summaries start cold, later queries reuse them.
        assert!(resp.stats.quant_bucket_warm > 0);

        // Bit-identical to the exact sweep over the surviving sites.
        let fresh = eng.live_set();
        let ids = eng.site_ids();
        for (req, res) in batch.iter().zip(&resp.results) {
            let (QueryRequest::TopK { q, .. }, QueryResult::Ranked { items, guarantee }) =
                (req, res)
            else {
                panic!("shape");
            };
            assert_eq!(*guarantee, Guarantee::Exact);
            let pi = quantification_discrete(&fresh, *q);
            for &(id, p) in items {
                let dense = ids.binary_search(&id).unwrap();
                assert_eq!(p.to_bits(), pi[dense].to_bits(), "π for site {id} at {q}");
            }
        }

        // A second identical batch is all cache hits — and therefore
        // executes neither evaluator.
        let warm = eng.run_batch(&batch);
        assert_eq!(warm.stats.cache_hits, batch.len());
        assert_eq!(warm.stats.quant_merged_evals, 0);
        assert_eq!(warm.results, resp.results);
        // No bucket streams drawn → the reuse rate reports 0.0, not a
        // vacuous perfect score.
        assert_eq!(warm.stats.quant_bucket_reuse_rate(), 0.0);
    }

    #[test]
    fn snap_grid_disables_the_merged_plan_and_stays_certified() {
        // With a snap grid, quant answers are certified interval evaluations
        // over the flat live set — the planner must not advertise
        // quant:merged (whose cost model the snapped branch would bypass).
        let set = workload::random_discrete_set(3000, 3, 4.0, 55);
        let eng = Engine::new(
            set,
            EngineConfig {
                cache_grid: 0.5,
                ..EngineConfig::default()
            },
        );
        eng.apply(&(0..30).map(Update::Remove).collect::<Vec<_>>());
        let batch: Vec<QueryRequest> = workload::random_queries(8, 60.0, 56)
            .into_iter()
            .map(|q| QueryRequest::TopK { q, k: 3 })
            .collect();
        let resp = eng.run_batch(&batch);
        assert_eq!(resp.stats.plan.quant, Some(QuantPlan::Exact));
        assert_eq!(resp.stats.quant_merged_evals, 0);
        // Snapped answers stay certified against the exact sweep.
        let fresh = eng.live_set();
        let ids = eng.site_ids();
        for (req, res) in batch.iter().zip(&resp.results) {
            let (QueryRequest::TopK { q, .. }, QueryResult::Ranked { items, guarantee }) =
                (req, res)
            else {
                panic!("shape");
            };
            let pi = quantification_discrete(&fresh, *q);
            for &(id, p) in items {
                let dense = ids.binary_search(&id).unwrap();
                assert!(
                    (p - pi[dense]).abs() <= guarantee.slack() + 1e-9,
                    "site {id} at {q}: {p} vs {} (slack {})",
                    pi[dense],
                    guarantee.slack()
                );
            }
        }
    }

    #[test]
    fn apply_and_dynamic_plans_never_materialize_the_flat_set() {
        let set = workload::random_discrete_set(3000, 3, 4.0, 101);
        let eng = Engine::new(set, EngineConfig::default());
        // Epoch 0 owns the input set by construction.
        assert!(eng.flat_set_materialized());
        let updates: Vec<Update> = (0..30).map(Update::Remove).collect();
        eng.apply(&updates);
        // The new epoch defers everything: apply itself built nothing.
        assert!(!eng.flat_set_materialized());
        // Nonzero batches (dynamic buckets) and quant batches (merged
        // k-way path) both answer in stable ids without the flat view.
        let mut batch: Vec<QueryRequest> = vec![];
        for q in workload::random_queries(32, 60.0, 102) {
            batch.push(QueryRequest::Nonzero { q });
            batch.push(QueryRequest::Threshold { q, tau: 0.2 });
        }
        let resp = eng.run_batch(&batch);
        assert_eq!(resp.stats.plan.nonzero, Some(NonzeroPlan::Dynamic));
        assert_eq!(resp.stats.plan.quant, Some(QuantPlan::Merged));
        assert!(
            !eng.flat_set_materialized(),
            "dynamic plans must not re-materialize the flat live set"
        );
        // Only a consumer that genuinely needs the flat view pays for it.
        let _ = eng.live_set();
        assert!(eng.flat_set_materialized());
    }

    #[test]
    fn repeated_batch_hits_cache_and_reuses_structures() {
        let (_, eng) = engine(25, EngineConfig::default());
        let batch: Vec<QueryRequest> = workload::random_queries(16, 50.0, 3)
            .into_iter()
            .map(|q| QueryRequest::Threshold { q, tau: 0.2 })
            .collect();
        let first = eng.run_batch(&batch);
        assert_eq!(first.stats.cache_hits, 0);
        assert_eq!(first.stats.cache_misses, batch.len());
        let second = eng.run_batch(&batch);
        assert_eq!(second.stats.cache_hits, batch.len());
        assert!(second.stats.built.is_empty());
        assert_eq!(first.results, second.results);
        assert!((second.stats.cache_hit_rate() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn results_identical_across_thread_counts() {
        let set = workload::random_discrete_set(40, 3, 6.0, 11);
        let mk = |threads| {
            Engine::new(
                set.clone(),
                EngineConfig {
                    threads: Some(threads),
                    ..EngineConfig::default()
                },
            )
        };
        let (e1, e4) = (mk(1), mk(4));
        let mut batch = vec![];
        for q in workload::random_queries(40, 60.0, 12) {
            batch.push(QueryRequest::Nonzero { q });
            batch.push(QueryRequest::TopK { q, k: 2 });
        }
        let (r1, r4) = (e1.run_batch(&batch), e4.run_batch(&batch));
        assert_eq!(r1.results, r4.results);
        // Under UNC_ENGINE_THREADS the pool sizes collapse to the env value;
        // without it they reflect the explicit overrides.
        if std::env::var(THREADS_ENV).is_err() {
            assert_eq!(e1.threads(), 1);
            assert_eq!(e4.threads(), 4);
        }
    }

    #[test]
    fn snapped_cache_serves_whole_cell_with_certified_guarantee() {
        let config = EngineConfig {
            cache_grid: 0.5,
            ..EngineConfig::default()
        };
        let (set, eng) = engine(12, config);
        let q = Point::new(3.21, -4.37);
        let (pi, g) = eng.estimates(q);
        // The same cell, a different query point: identical answer, one hit.
        let q2 = Point::new(3.19, -4.41);
        assert_eq!(quantize_point(q, 0.5), quantize_point(q2, 0.5));
        let (pi2, g2) = eng.estimates(q2);
        assert_eq!(pi, pi2);
        assert_eq!(g, g2);
        // Certified: the widened slack bounds the error vs the exact value.
        let exact = quantification_discrete(&set, q);
        for (i, (est, ex)) in pi.iter().zip(&exact).enumerate() {
            assert!(
                (est - ex).abs() <= g.slack() + 1e-9,
                "π_{i}: {est} vs {ex}, slack {}",
                g.slack()
            );
        }
    }

    #[test]
    fn planner_switches_plans_with_scale() {
        let small = engine(12, EngineConfig::default()).1;
        let tiny_batch: Vec<QueryRequest> = workload::random_queries(4, 50.0, 5)
            .into_iter()
            .map(|q| QueryRequest::Nonzero { q })
            .collect();
        let plan_small = small.run_batch(&tiny_batch).stats.plan;
        assert_eq!(plan_small.nonzero, Some(NonzeroPlan::Brute));

        let large = Engine::new(
            workload::random_discrete_set(3000, 3, 4.0, 1),
            EngineConfig::default(),
        );
        let big_batch: Vec<QueryRequest> = workload::random_queries(256, 60.0, 6)
            .into_iter()
            .map(|q| QueryRequest::Nonzero { q })
            .collect();
        let plan_large = large.run_batch(&big_batch).stats.plan;
        assert_eq!(plan_large.nonzero, Some(NonzeroPlan::Index));
    }

    #[test]
    fn diagram_plan_answers_correctly() {
        // Tiny set + enormous nonzero batch → V≠0 point location.
        let set = workload::random_discrete_set(6, 2, 3.0, 42);
        let eng = Engine::new(
            set.clone(),
            EngineConfig {
                threads: Some(2),
                ..EngineConfig::default()
            },
        );
        // Force the plan via planner inputs: a batch large enough that the
        // diagram build amortizes.
        let batch: Vec<QueryRequest> = workload::random_queries(64, 40.0, 78)
            .iter()
            .cycle()
            .take(200_000 / 64 * 64)
            .map(|&q| QueryRequest::Nonzero { q })
            .collect();
        let resp = eng.run_batch(&batch);
        assert_eq!(resp.stats.plan.nonzero, Some(NonzeroPlan::Diagram));
        for (req, res) in batch.iter().zip(&resp.results).take(512) {
            let (QueryRequest::Nonzero { q }, QueryResult::Nonzero(ids)) = (req, res) else {
                panic!("shape");
            };
            let mut direct = set.nonzero_nn(*q);
            direct.sort_unstable();
            assert_eq!(ids, &direct, "q = {q}");
        }
    }

    #[test]
    fn empty_batch_and_empty_set() {
        let (_, eng) = engine(10, EngineConfig::default());
        let resp = eng.run_batch(&[]);
        assert!(resp.results.is_empty());
        assert_eq!(resp.stats.plan.summary(), "idle");

        let empty = Engine::new(DiscreteSet::default(), EngineConfig::default());
        let resp = empty.run_batch(&[
            QueryRequest::Nonzero {
                q: Point::new(0.0, 0.0),
            },
            QueryRequest::TopK {
                q: Point::new(0.0, 0.0),
                k: 3,
            },
        ]);
        assert_eq!(
            resp.results[0],
            QueryResult::Nonzero(vec![]),
            "empty set has no nonzero NNs"
        );
        let QueryResult::Ranked { items, .. } = &resp.results[1] else {
            panic!("shape");
        };
        assert!(items.is_empty());
    }

    #[test]
    fn stats_are_populated() {
        let (_, eng) = engine(50, EngineConfig::default());
        let batch: Vec<QueryRequest> = workload::random_queries(64, 60.0, 13)
            .into_iter()
            .map(|q| QueryRequest::Nonzero { q })
            .collect();
        let resp = eng.run_batch(&batch);
        let s = &resp.stats;
        assert_eq!(s.batch_len, 64);
        assert_eq!(s.workers, eng.threads());
        assert!(!s.worker_busy.is_empty() && s.worker_busy.len() <= s.workers.max(1));
        assert!(s.worker_busy.iter().any(|d| *d > Duration::ZERO));
        assert!(s.wall > Duration::ZERO);
        assert!(s.throughput_qps() > 0.0);
        assert!((0.0..=1.0).contains(&s.worker_utilization()));
        assert_eq!(s.nonzero_guarantee, Some(Guarantee::Exact));
        assert!((0.0..=1.0).contains(&s.predicate_filter_hit_rate()));
    }

    #[test]
    fn diagram_batches_report_predicate_stats() {
        // A diagram build runs thousands of adaptive predicates; on random
        // inputs virtually all of them resolve in the f64 filter.
        let set = workload::random_discrete_set(6, 2, 3.0, 7);
        let eng = Engine::new(set, EngineConfig::default());
        let batch: Vec<QueryRequest> = workload::random_queries(64, 40.0, 8)
            .iter()
            .cycle()
            .take(8192)
            .map(|&q| QueryRequest::Nonzero { q })
            .collect();
        let resp = eng.run_batch(&batch);
        assert_eq!(resp.stats.plan.nonzero, Some(NonzeroPlan::Diagram));
        let s = &resp.stats;
        assert!(
            s.predicate_filter_hits > 1000,
            "diagram build should exercise the predicate filter (hits: {})",
            s.predicate_filter_hits
        );
        assert!(
            s.predicate_filter_hit_rate() > 0.9,
            "fast path should dominate on random inputs (rate: {})",
            s.predicate_filter_hit_rate()
        );
    }

    #[test]
    fn batches_report_kernel_stats() {
        // Quantification evaluates every site-location distance through the
        // SoA slab kernels, so a quant batch must account nonzero kernel
        // distances (mostly in chunked lanes at this location count).
        let set = workload::random_discrete_set(64, 4, 8.0, 9);
        let eng = Engine::new(set, EngineConfig::default());
        let batch: Vec<QueryRequest> = workload::random_queries(32, 60.0, 10)
            .iter()
            .map(|&q| QueryRequest::TopK { q, k: 1 })
            .collect();
        let s = eng.run_batch(&batch).stats;
        assert!(
            s.kernel_lane_dists + s.kernel_scalar_dists > 0,
            "quant batches should evaluate distances through the SoA kernels"
        );
        assert!((0.0..=1.0).contains(&s.kernel_lane_fraction()));
    }

    #[test]
    fn probabilistic_guarantee_uses_monte_carlo_deterministically() {
        // A huge probability spread blows up the spiral retrieval budget,
        // and a large repeated batch amortizes the Monte-Carlo build — the
        // regime where the planner should pick MC.
        let set = workload::spread_discrete_set(400, 3, 1e5, 19);
        let config = EngineConfig {
            guarantee: Guarantee::Probabilistic {
                eps: 0.1,
                delta: 0.05,
            },
            ..EngineConfig::default()
        };
        let (e1, e2) = (
            Engine::new(set.clone(), config),
            Engine::new(set.clone(), config),
        );
        let batch: Vec<QueryRequest> = workload::random_queries(32, 60.0, 20)
            .iter()
            .cycle()
            .take(1024)
            .map(|&q| QueryRequest::TopK { q, k: 1 })
            .collect();
        let (r1, r2) = (e1.run_batch(&batch), e2.run_batch(&batch));
        assert!(
            matches!(r1.stats.plan.quant, Some(QuantPlan::MonteCarlo { .. })),
            "plan: {}",
            r1.stats.plan.summary()
        );
        assert!(r1.stats.cache_hits > 0, "repeated queries must hit cache");
        // Same seed → identical estimates across engine instances.
        assert_eq!(r1.results, r2.results);
        // The MC winner's exact probability is within slack of the optimum.
        let exact = ExactQuantifier(&set);
        for (req, res) in batch.iter().zip(&r1.results).take(32) {
            let (QueryRequest::TopK { q, .. }, QueryResult::Ranked { items, guarantee }) =
                (req, res)
            else {
                panic!("shape");
            };
            if let (Some(&(winner, _)), Some((_, best))) =
                (items.first(), top_k_probable(&exact, *q, 1).first())
            {
                let pi = quantification_discrete(&set, *q);
                assert!(pi[winner] >= best - 2.0 * guarantee.slack() - 1e-9);
            }
        }
    }
}
