//! `uncertain_engine`: the concurrent, batched query-serving layer above
//! [`uncertain_nn`].
//!
//! The core library answers one query at a time through explicit structure
//! choices; this crate serves query *batches* at volume and decides **how**
//! to answer them:
//!
//! * a std-only [thread pool](pool) (`std::thread` + channels) shards each
//!   batch across workers — `UNC_ENGINE_THREADS` pins the worker count for
//!   deterministic CI runs;
//! * a [cost-based planner](planner) picks, per batch, among brute force,
//!   the Theorem 3.2 kd-tree/group-index structure, and `V≠0` point
//!   location for `NN≠0` requests, and among the exact sweep, spiral
//!   search, and Monte Carlo for probability requests — amortizing index
//!   construction over the batch and recording its choice;
//! * a [quantization-keyed LRU result cache](cache) snaps query points to a
//!   configurable grid; snapped answers carry a *certified* widened
//!   [`Guarantee`] (see [`snap`]), so caching never silently degrades
//!   correctness;
//! * a typed request/response API: [`Engine`], [`QueryRequest`],
//!   [`BatchResponse`] with per-request [`QueryResult`]s plus [`ExecStats`]
//!   (plan taken, wall time, cache hit rate, worker utilization).
//!
//! # Quickstart
//!
//! ```
//! use uncertain_engine::{Engine, EngineConfig, QueryRequest, QueryResult};
//! use uncertain_nn::workload;
//! use uncertain_geom::Point;
//!
//! let set = workload::random_discrete_set(40, 3, 6.0, 7);
//! let engine = Engine::new(set.clone(), EngineConfig::default());
//! let batch: Vec<QueryRequest> = workload::random_queries(16, 60.0, 8)
//!     .into_iter()
//!     .map(|q| QueryRequest::Nonzero { q })
//!     .collect();
//! let resp = engine.run_batch(&batch);
//! assert_eq!(resp.results.len(), 16);
//! // Engine answers match the direct library call.
//! if let QueryResult::Nonzero(ids) = &resp.results[0] {
//!     let QueryRequest::Nonzero { q } = batch[0] else { unreachable!() };
//!     let mut direct = set.nonzero_nn(q);
//!     direct.sort_unstable();
//!     assert_eq!(ids, &direct);
//! }
//! println!("plan: {}", resp.stats.plan.summary());
//! ```

pub mod cache;
pub mod planner;
pub mod pool;
pub mod snap;

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::SeedableRng;
use uncertain_geom::predicates::predicate_stats;
use uncertain_geom::{Aabb, Point};
use uncertain_nn::model::DiscreteSet;
use uncertain_nn::nonzero::{nonzero_nn_discrete, DiscreteNonzeroIndex, QueryScratch};
use uncertain_nn::quantification::exact::quantification_discrete;
use uncertain_nn::quantification::monte_carlo::{MonteCarloPnn, SampleBackend};
use uncertain_nn::quantification::spiral::SpiralSearch;
use uncertain_nn::queries::Guarantee;
use uncertain_nn::vnz::DiscreteNonzeroDiagram;

pub use cache::{quantize_point, snap_center, snap_radius};
use cache::{CacheKey, CachedValue, QuantTag, ResultCache};
pub use planner::{BatchPlan, NonzeroPlan, PlanEstimate, PlannerInputs, QuantPlan};
pub use pool::{resolve_threads, ThreadPool, THREADS_ENV};

/// One query in a batch.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum QueryRequest {
    /// `NN≠0(q)`: which points have nonzero probability of being nearest.
    Nonzero { q: Point },
    /// Every point that may satisfy `π_i(q) ≥ tau` given the engine's
    /// guarantee ([DYM+05] threshold semantics: no false negatives).
    Threshold { q: Point, tau: f64 },
    /// The `k` most probable nearest neighbors ([BSI08]).
    TopK { q: Point, k: usize },
}

impl QueryRequest {
    /// The query location.
    pub fn point(&self) -> Point {
        match *self {
            QueryRequest::Nonzero { q }
            | QueryRequest::Threshold { q, .. }
            | QueryRequest::TopK { q, .. } => q,
        }
    }

    fn is_nonzero(&self) -> bool {
        matches!(self, QueryRequest::Nonzero { .. })
    }
}

/// One answer. Probability answers carry the guarantee they were served
/// under — widened when the answer came from a snapped cache cell.
#[derive(Clone, Debug, PartialEq)]
pub enum QueryResult {
    /// Sorted point indices with `π_i(q) > 0`.
    Nonzero(Vec<usize>),
    /// `(index, π̂)` pairs, sorted by decreasing estimate (ties by index).
    Ranked {
        items: Vec<(usize, f64)>,
        guarantee: Guarantee,
    },
}

/// Execution report for one batch.
#[derive(Clone, Debug)]
pub struct ExecStats {
    /// The planner's decision (with its full cost table).
    pub plan: BatchPlan,
    /// Structures built during this batch (empty on warm batches).
    pub built: Vec<&'static str>,
    /// End-to-end wall time for the batch.
    pub wall: Duration,
    pub batch_len: usize,
    pub cache_hits: usize,
    pub cache_misses: usize,
    /// Worker count used for this batch.
    pub workers: usize,
    /// Busy (execution) time of each shard of this batch, measured inside
    /// the shard's job. At most one shard per worker.
    pub worker_busy: Vec<Duration>,
    /// The guarantee `NN≠0` answers of this batch were served under —
    /// always [`Guarantee::Exact`] (every plan, including `nonzero:diagram`,
    /// is exact); `None` when the batch had no nonzero requests.
    pub nonzero_guarantee: Option<Guarantee>,
    /// Adaptive-predicate filter outcomes during this batch (builds +
    /// queries): geometric sign tests answered by the fast f64 filter vs
    /// exact expansion fallbacks. Counters are process-global, so
    /// concurrent batches on *other* engines fold into each other's deltas.
    pub predicate_filter_hits: u64,
    /// Exact-arithmetic fallbacks during this batch (see
    /// [`ExecStats::predicate_filter_hits`]).
    pub predicate_exact_fallbacks: u64,
}

impl ExecStats {
    /// Hits / lookups, 0.0 when the batch did no cache lookups.
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }

    /// Σ busy / (workers · wall), in `[0, 1]` up to timer noise.
    pub fn worker_utilization(&self) -> f64 {
        if self.workers == 0 || self.wall.is_zero() {
            return 0.0;
        }
        let busy: Duration = self.worker_busy.iter().sum();
        (busy.as_secs_f64() / (self.workers as f64 * self.wall.as_secs_f64())).min(1.0)
    }

    /// Requests per second over the batch wall time.
    pub fn throughput_qps(&self) -> f64 {
        if self.wall.is_zero() {
            return 0.0;
        }
        self.batch_len as f64 / self.wall.as_secs_f64()
    }

    /// Fraction of adaptive geometric predicates the f64 filter answered
    /// during this batch; `1.0` when none ran. ≥ 0.99 on random inputs —
    /// the exact fallback only fires within an ulp-scale shell of a
    /// degeneracy.
    pub fn predicate_filter_hit_rate(&self) -> f64 {
        let total = self.predicate_filter_hits + self.predicate_exact_fallbacks;
        if total == 0 {
            1.0
        } else {
            self.predicate_filter_hits as f64 / total as f64
        }
    }
}

/// A batch's answers (in request order) plus its execution report.
#[derive(Clone, Debug)]
pub struct BatchResponse {
    pub results: Vec<QueryResult>,
    pub stats: ExecStats,
}

/// Engine configuration. `Default` is a sensible serving setup: exact
/// answers, exact-bits caching (no snapping), auto-detected parallelism.
#[derive(Clone, Copy, Debug)]
pub struct EngineConfig {
    /// Worker count. Resolution: `UNC_ENGINE_THREADS` env > this field >
    /// detected parallelism.
    pub threads: Option<usize>,
    /// The guarantee requested of probability answers; gates which
    /// quantifiers the planner may pick.
    pub guarantee: Guarantee,
    /// Result-cache capacity in entries; `0` disables the cache entirely
    /// (no lookups or lock traffic — for measuring raw execution).
    pub cache_capacity: usize,
    /// Cache grid cell side; `0.0` keys on exact query bits. When positive,
    /// probability answers are evaluated at cell centers and served with a
    /// certified widened guarantee.
    pub cache_grid: f64,
    /// Largest `n` for which the planner may price the `V≠0` diagram.
    pub diagram_cap: usize,
    /// Seed for Monte-Carlo instantiation sampling (deterministic builds).
    pub mc_seed: u64,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            threads: None,
            guarantee: Guarantee::Exact,
            cache_capacity: 4096,
            cache_grid: 0.0,
            diagram_cap: 40,
            mc_seed: 0xC0FFEE,
        }
    }
}

/// Lazily-built shared structures. Build cost is paid once (on the batch
/// that first needs the structure) and sunk for all later batches — the
/// planner is told what already exists.
#[derive(Default)]
struct Structures {
    index: Mutex<Option<Arc<DiscreteNonzeroIndex>>>,
    diagram: Mutex<Option<Arc<DiscreteNonzeroDiagram>>>,
    spiral: Mutex<Option<Arc<SpiralSearch>>>,
    mc: Mutex<Option<(usize, Arc<MonteCarloPnn>)>>,
}

struct EngineCore {
    set: DiscreteSet,
    spread: f64,
    config: EngineConfig,
    cache: ResultCache,
    structures: Structures,
}

/// The serving engine: owns the uncertain-point set, its worker pool, its
/// cache, and every lazily-built query structure.
pub struct Engine {
    core: Arc<EngineCore>,
    pool: ThreadPool,
}

/// The per-batch execution context handed to workers.
#[derive(Clone)]
struct Prepared {
    nonzero: Option<PreparedNonzero>,
    quant: Option<PreparedQuant>,
}

#[derive(Clone)]
enum PreparedNonzero {
    Brute,
    Index(Arc<DiscreteNonzeroIndex>),
    Diagram(Arc<DiscreteNonzeroDiagram>),
}

#[derive(Clone)]
enum PreparedQuant {
    Exact,
    Spiral(Arc<SpiralSearch>, f64),
    MonteCarlo(Arc<MonteCarloPnn>, Guarantee),
}

#[derive(Default)]
struct BatchCounters {
    hits: AtomicUsize,
    misses: AtomicUsize,
}

impl Engine {
    /// Builds an engine over `set`. Spawns the worker pool immediately;
    /// query structures are built lazily by the planner.
    pub fn new(set: DiscreteSet, config: EngineConfig) -> Self {
        let threads = resolve_threads(config.threads);
        let spread = if set.is_empty() { 1.0 } else { set.spread() };
        let core = Arc::new(EngineCore {
            spread,
            cache: ResultCache::new(config.cache_capacity, config.cache_grid),
            structures: Structures::default(),
            config,
            set,
        });
        Engine {
            core,
            pool: ThreadPool::new(threads),
        }
    }

    /// The served set.
    pub fn set(&self) -> &DiscreteSet {
        &self.core.set
    }

    /// Resolved worker count.
    pub fn threads(&self) -> usize {
        self.pool.len()
    }

    /// Current number of cached entries.
    pub fn cache_len(&self) -> usize {
        self.core.cache.len()
    }

    /// Plans and executes one batch: answers are returned in request order,
    /// alongside the plan taken and the execution stats.
    pub fn run_batch(&self, requests: &[QueryRequest]) -> BatchResponse {
        let t0 = Instant::now();
        let predicates_before = predicate_stats();
        let nonzero_count = requests.iter().filter(|r| r.is_nonzero()).count();
        let plan = self.plan_for(nonzero_count, requests.len() - nonzero_count);
        let (prepared, built) = self.prepare(&plan);
        let counters = Arc::new(BatchCounters::default());

        let (results, worker_busy) = if requests.is_empty() {
            (vec![], vec![])
        } else if self.pool.len() == 1 || requests.len() == 1 {
            // Single worker: run inline, skipping the channel round-trip.
            let mut scratch = QueryScratch::default();
            let e0 = Instant::now();
            let results = requests
                .iter()
                .map(|r| exec_one(&self.core, &prepared, *r, &counters, &mut scratch))
                .collect();
            (results, vec![e0.elapsed()])
        } else {
            let shard = requests.len().div_ceil(self.pool.len());
            let (rtx, rrx) = std::sync::mpsc::channel();
            let mut shards = 0usize;
            for (si, chunk) in requests.chunks(shard).enumerate() {
                let core = Arc::clone(&self.core);
                let prepared = prepared.clone();
                let counters = Arc::clone(&counters);
                let chunk: Vec<QueryRequest> = chunk.to_vec();
                let rtx = rtx.clone();
                self.pool.execute(move || {
                    let e0 = Instant::now();
                    let mut scratch = QueryScratch::default();
                    let out: Vec<QueryResult> = chunk
                        .iter()
                        .map(|r| exec_one(&core, &prepared, *r, &counters, &mut scratch))
                        .collect();
                    let _ = rtx.send((si, out, e0.elapsed()));
                });
                shards += 1;
            }
            drop(rtx);
            let mut buf: Vec<Option<Vec<QueryResult>>> = (0..shards).map(|_| None).collect();
            let mut busy = vec![Duration::ZERO; shards];
            for (si, out, dt) in rrx {
                buf[si] = Some(out);
                busy[si] = dt;
            }
            let results = buf
                .into_iter()
                .flat_map(|s| s.expect("a shard job panicked (e.g. a NaN query coordinate)"))
                .collect();
            (results, busy)
        };

        let wall = t0.elapsed();
        let predicates = predicate_stats().since(&predicates_before);
        BatchResponse {
            results,
            stats: ExecStats {
                nonzero_guarantee: (nonzero_count > 0).then_some(Guarantee::Exact),
                plan,
                built,
                wall,
                batch_len: requests.len(),
                cache_hits: counters.hits.load(Ordering::Relaxed),
                cache_misses: counters.misses.load(Ordering::Relaxed),
                workers: self.pool.len(),
                worker_busy,
                predicate_filter_hits: predicates.filter_hits,
                predicate_exact_fallbacks: predicates.exact_fallbacks,
            },
        }
    }

    /// Probability estimates for a single query through the planner + cache
    /// (the path Threshold/TopK answers are derived from), with the
    /// guarantee they are served under. Exposed for tests and calibration.
    pub fn estimates(&self, q: Point) -> (Vec<f64>, Guarantee) {
        let plan = self.plan_for(0, 1);
        let (prepared, _) = self.prepare(&plan);
        let counters = BatchCounters::default();
        let quant = prepared.quant.as_ref().expect("quant plan for 1 request");
        let (pi, g) = quant_vector(&self.core, quant, q, &counters);
        (pi.as_ref().clone(), g)
    }

    fn plan_for(&self, nonzero_count: usize, quant_count: usize) -> BatchPlan {
        let core = &self.core;
        planner::plan(&PlannerInputs {
            n: core.set.len(),
            total_locations: core.set.total_locations(),
            max_k: core.set.max_k(),
            spread: core.spread,
            nonzero_count,
            quant_count,
            guarantee: core.config.guarantee,
            diagram_cap: core.config.diagram_cap,
            index_built: core.structures.index.lock().unwrap().is_some(),
            diagram_built: core.structures.diagram.lock().unwrap().is_some(),
            spiral_built: core.structures.spiral.lock().unwrap().is_some(),
            mc_built_samples: core.structures.mc.lock().unwrap().as_ref().map(|(s, _)| *s),
        })
    }

    /// Builds (or fetches) the structures the plan needs, on the calling
    /// thread, so workers only ever read shared `Arc`s.
    fn prepare(&self, plan: &BatchPlan) -> (Prepared, Vec<&'static str>) {
        let core = &self.core;
        let mut built = vec![];
        let nonzero = plan.nonzero.map(|np| match np {
            NonzeroPlan::Brute => PreparedNonzero::Brute,
            NonzeroPlan::Index => {
                let mut slot = core.structures.index.lock().unwrap();
                let arc = slot
                    .get_or_insert_with(|| {
                        built.push("nonzero-index");
                        Arc::new(DiscreteNonzeroIndex::build(&core.set))
                    })
                    .clone();
                PreparedNonzero::Index(arc)
            }
            NonzeroPlan::Diagram => {
                let mut slot = core.structures.diagram.lock().unwrap();
                let arc = slot
                    .get_or_insert_with(|| {
                        built.push("vnz-diagram");
                        Arc::new(DiscreteNonzeroDiagram::build(
                            &core.set,
                            &working_bbox(&core.set),
                        ))
                    })
                    .clone();
                PreparedNonzero::Diagram(arc)
            }
        });
        let quant = plan.quant.map(|qp| match qp {
            QuantPlan::Exact => PreparedQuant::Exact,
            QuantPlan::Spiral { eps } => {
                let mut slot = core.structures.spiral.lock().unwrap();
                let arc = slot
                    .get_or_insert_with(|| {
                        built.push("spiral");
                        Arc::new(SpiralSearch::build(&core.set))
                    })
                    .clone();
                PreparedQuant::Spiral(arc, eps)
            }
            QuantPlan::MonteCarlo { samples } => {
                let mut slot = core.structures.mc.lock().unwrap();
                let rebuild = slot.as_ref().is_none_or(|(have, _)| *have < samples);
                if rebuild {
                    built.push("monte-carlo");
                    let mut rng = StdRng::seed_from_u64(core.config.mc_seed);
                    let mc = MonteCarloPnn::build_discrete(
                        &core.set,
                        samples,
                        SampleBackend::KdTree,
                        &mut rng,
                    );
                    *slot = Some((samples, Arc::new(mc)));
                }
                let (_, arc) = slot.as_ref().unwrap();
                PreparedQuant::MonteCarlo(Arc::clone(arc), core.config.guarantee)
            }
        });
        (Prepared { nonzero, quant }, built)
    }
}

/// Working box for the `V≠0` diagram: the set's bounding box, moderately
/// inflated. Queries outside it fall back to the Lemma 2.1 evaluation.
/// The margin is a performance knob only — it sizes the subdivision (and
/// hence its snap tolerance and guard band), but certified location plus
/// the exact fallback keeps answers exact at any margin; `0.15·diag`
/// probes cleanly across workloads.
fn working_bbox(set: &DiscreteSet) -> Aabb {
    let bbox = Aabb::from_points(set.all_locations().map(|(_, _, loc, _)| loc));
    if bbox.is_empty() {
        return Aabb::from_corners(Point::new(-1.0, -1.0), Point::new(1.0, 1.0));
    }
    let diag = bbox.lo.dist(bbox.hi);
    bbox.inflated(0.15 * diag + 4.0)
}

fn exec_one(
    core: &EngineCore,
    prepared: &Prepared,
    req: QueryRequest,
    counters: &BatchCounters,
    scratch: &mut QueryScratch,
) -> QueryResult {
    match req {
        QueryRequest::Nonzero { q } => {
            let plan = prepared.nonzero.as_ref().expect("nonzero plan");
            // All three plans are exact (Guarantee::Exact), so their
            // answers share one cache key and warm each other's entries.
            let key = CacheKey::nonzero(q);
            if core.cache.enabled() {
                if let Some(CachedValue::Nonzero(ids)) = core.cache.get(&key) {
                    counters.hits.fetch_add(1, Ordering::Relaxed);
                    return QueryResult::Nonzero(ids.as_ref().clone());
                }
                counters.misses.fetch_add(1, Ordering::Relaxed);
            }
            let mut ids = match plan {
                PreparedNonzero::Brute => nonzero_nn_discrete(&core.set, q),
                PreparedNonzero::Index(idx) => idx.query_with(q, scratch),
                // Exact per Theorem 2.14: certified point location over the
                // exact-predicate slab structure, with the Lemma 2.1
                // fallback for boundary/guard-band queries — never inherits
                // coordinate-snapping error.
                PreparedNonzero::Diagram(diag) => diag.query_located(q),
            };
            ids.sort_unstable();
            core.cache
                .insert(key, CachedValue::Nonzero(Arc::new(ids.clone())));
            QueryResult::Nonzero(ids)
        }
        QueryRequest::Threshold { q, tau } => {
            let quant = prepared.quant.as_ref().expect("quant plan");
            let (pi, guarantee) = quant_vector(core, quant, q, counters);
            let slack = guarantee.slack();
            let mut items: Vec<(usize, f64)> = pi
                .iter()
                .copied()
                .enumerate()
                .filter(|&(_, p)| p >= tau - slack)
                .collect();
            sort_ranked(&mut items);
            QueryResult::Ranked { items, guarantee }
        }
        QueryRequest::TopK { q, k } => {
            let quant = prepared.quant.as_ref().expect("quant plan");
            let (pi, guarantee) = quant_vector(core, quant, q, counters);
            let mut items: Vec<(usize, f64)> = pi
                .iter()
                .copied()
                .enumerate()
                .filter(|&(_, p)| p > 0.0)
                .collect();
            sort_ranked(&mut items);
            items.truncate(k);
            QueryResult::Ranked { items, guarantee }
        }
    }
}

/// Decreasing estimate, ties by increasing index — the same order the
/// single-threaded `uncertain_nn::queries` helpers produce.
fn sort_ranked(items: &mut [(usize, f64)]) {
    items.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
}

/// The cached quantification path: returns the dense `π̂` vector and the
/// guarantee it is served under. With a positive cache grid the vector is
/// evaluated at the *cell center* with a certified interval — identical for
/// every query in the cell, independent of cache state.
fn quant_vector(
    core: &EngineCore,
    quant: &PreparedQuant,
    q: Point,
    counters: &BatchCounters,
) -> (Arc<Vec<f64>>, Guarantee) {
    let grid = core.cache.grid();
    let (tag, base_guarantee) = match quant {
        PreparedQuant::Exact => (QuantTag::Exact, Guarantee::Exact),
        PreparedQuant::Spiral(_, eps) => (
            QuantTag::Spiral {
                eps_bits: eps.to_bits(),
            },
            Guarantee::Additive(*eps),
        ),
        PreparedQuant::MonteCarlo(mc, g) => (
            QuantTag::MonteCarlo {
                samples: mc.num_samples(),
            },
            *g,
        ),
    };
    // Snapping is only certified for the exact evaluator (the interval
    // certificate needs exact cdfs); approximate engines key exactly.
    // Snapped evaluation happens whenever a grid is set — with or without a
    // live cache — so answers never depend on cache state.
    let snapped = grid > 0.0 && matches!(quant, PreparedQuant::Exact);
    let key = CacheKey::quant(q, if snapped { grid } else { 0.0 }, tag);
    if core.cache.enabled() {
        if let Some(CachedValue::Quant { pi, guarantee }) = core.cache.get(&key) {
            counters.hits.fetch_add(1, Ordering::Relaxed);
            return (pi, guarantee);
        }
        counters.misses.fetch_add(1, Ordering::Relaxed);
    }
    let (pi, guarantee) = if snapped {
        let center = snap_center(q, grid);
        let (mid, halfwidth) = snap::interval_quantification(&core.set, center, snap_radius(grid));
        let g = if halfwidth > 0.0 {
            Guarantee::Additive(halfwidth)
        } else {
            Guarantee::Exact
        };
        (mid, g)
    } else {
        let pi = match quant {
            PreparedQuant::Exact => quantification_discrete(&core.set, q),
            PreparedQuant::Spiral(s, eps) => s.estimate_all(q, *eps),
            PreparedQuant::MonteCarlo(mc, _) => mc.estimate_all(q),
        };
        (pi, base_guarantee)
    };
    let pi = Arc::new(pi);
    core.cache.insert(
        key,
        CachedValue::Quant {
            pi: Arc::clone(&pi),
            guarantee,
        },
    );
    (pi, guarantee)
}

#[cfg(test)]
mod tests {
    use super::*;
    use uncertain_nn::queries::{threshold_nn, top_k_probable, ExactQuantifier};
    use uncertain_nn::workload;

    fn assert_send_sync<T: Send + Sync>() {}

    #[test]
    fn engine_is_send_sync() {
        assert_send_sync::<Engine>();
        assert_send_sync::<EngineCore>();
    }

    fn engine(n: usize, config: EngineConfig) -> (DiscreteSet, Engine) {
        let set = workload::random_discrete_set(n, 3, 6.0, 42);
        (set.clone(), Engine::new(set, config))
    }

    #[test]
    fn batch_answers_match_direct_calls() {
        let (set, eng) = engine(30, EngineConfig::default());
        let queries = workload::random_queries(24, 60.0, 9);
        let mut batch = vec![];
        for &q in &queries {
            batch.push(QueryRequest::Nonzero { q });
            batch.push(QueryRequest::Threshold { q, tau: 0.25 });
            batch.push(QueryRequest::TopK { q, k: 3 });
        }
        let resp = eng.run_batch(&batch);
        assert_eq!(resp.results.len(), batch.len());
        let exact = ExactQuantifier(&set);
        for (req, res) in batch.iter().zip(&resp.results) {
            match (req, res) {
                (QueryRequest::Nonzero { q }, QueryResult::Nonzero(ids)) => {
                    let mut direct = set.nonzero_nn(*q);
                    direct.sort_unstable();
                    assert_eq!(ids, &direct);
                }
                (QueryRequest::Threshold { q, tau }, QueryResult::Ranked { items, .. }) => {
                    assert_eq!(items, &threshold_nn(&exact, *q, *tau));
                }
                (QueryRequest::TopK { q, k }, QueryResult::Ranked { items, .. }) => {
                    assert_eq!(items, &top_k_probable(&exact, *q, *k));
                }
                other => panic!("shape mismatch: {other:?}"),
            }
        }
    }

    #[test]
    fn repeated_batch_hits_cache_and_reuses_structures() {
        let (_, eng) = engine(25, EngineConfig::default());
        let batch: Vec<QueryRequest> = workload::random_queries(16, 50.0, 3)
            .into_iter()
            .map(|q| QueryRequest::Threshold { q, tau: 0.2 })
            .collect();
        let first = eng.run_batch(&batch);
        assert_eq!(first.stats.cache_hits, 0);
        assert_eq!(first.stats.cache_misses, batch.len());
        let second = eng.run_batch(&batch);
        assert_eq!(second.stats.cache_hits, batch.len());
        assert!(second.stats.built.is_empty());
        assert_eq!(first.results, second.results);
        assert!((second.stats.cache_hit_rate() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn results_identical_across_thread_counts() {
        let set = workload::random_discrete_set(40, 3, 6.0, 11);
        let mk = |threads| {
            Engine::new(
                set.clone(),
                EngineConfig {
                    threads: Some(threads),
                    ..EngineConfig::default()
                },
            )
        };
        let (e1, e4) = (mk(1), mk(4));
        let mut batch = vec![];
        for q in workload::random_queries(40, 60.0, 12) {
            batch.push(QueryRequest::Nonzero { q });
            batch.push(QueryRequest::TopK { q, k: 2 });
        }
        let (r1, r4) = (e1.run_batch(&batch), e4.run_batch(&batch));
        assert_eq!(r1.results, r4.results);
        // Under UNC_ENGINE_THREADS the pool sizes collapse to the env value;
        // without it they reflect the explicit overrides.
        if std::env::var(THREADS_ENV).is_err() {
            assert_eq!(e1.threads(), 1);
            assert_eq!(e4.threads(), 4);
        }
    }

    #[test]
    fn snapped_cache_serves_whole_cell_with_certified_guarantee() {
        let config = EngineConfig {
            cache_grid: 0.5,
            ..EngineConfig::default()
        };
        let (set, eng) = engine(12, config);
        let q = Point::new(3.21, -4.37);
        let (pi, g) = eng.estimates(q);
        // The same cell, a different query point: identical answer, one hit.
        let q2 = Point::new(3.19, -4.41);
        assert_eq!(quantize_point(q, 0.5), quantize_point(q2, 0.5));
        let (pi2, g2) = eng.estimates(q2);
        assert_eq!(pi, pi2);
        assert_eq!(g, g2);
        // Certified: the widened slack bounds the error vs the exact value.
        let exact = quantification_discrete(&set, q);
        for (i, (est, ex)) in pi.iter().zip(&exact).enumerate() {
            assert!(
                (est - ex).abs() <= g.slack() + 1e-9,
                "π_{i}: {est} vs {ex}, slack {}",
                g.slack()
            );
        }
    }

    #[test]
    fn planner_switches_plans_with_scale() {
        let small = engine(12, EngineConfig::default()).1;
        let tiny_batch: Vec<QueryRequest> = workload::random_queries(4, 50.0, 5)
            .into_iter()
            .map(|q| QueryRequest::Nonzero { q })
            .collect();
        let plan_small = small.run_batch(&tiny_batch).stats.plan;
        assert_eq!(plan_small.nonzero, Some(NonzeroPlan::Brute));

        let large = Engine::new(
            workload::random_discrete_set(3000, 3, 4.0, 1),
            EngineConfig::default(),
        );
        let big_batch: Vec<QueryRequest> = workload::random_queries(256, 60.0, 6)
            .into_iter()
            .map(|q| QueryRequest::Nonzero { q })
            .collect();
        let plan_large = large.run_batch(&big_batch).stats.plan;
        assert_eq!(plan_large.nonzero, Some(NonzeroPlan::Index));
    }

    #[test]
    fn diagram_plan_answers_correctly() {
        // Tiny set + enormous nonzero batch → V≠0 point location.
        let set = workload::random_discrete_set(6, 2, 3.0, 42);
        let eng = Engine::new(
            set.clone(),
            EngineConfig {
                threads: Some(2),
                ..EngineConfig::default()
            },
        );
        // Force the plan via planner inputs: a batch large enough that the
        // diagram build amortizes.
        let batch: Vec<QueryRequest> = workload::random_queries(64, 40.0, 78)
            .iter()
            .cycle()
            .take(200_000 / 64 * 64)
            .map(|&q| QueryRequest::Nonzero { q })
            .collect();
        let resp = eng.run_batch(&batch);
        assert_eq!(resp.stats.plan.nonzero, Some(NonzeroPlan::Diagram));
        for (req, res) in batch.iter().zip(&resp.results).take(512) {
            let (QueryRequest::Nonzero { q }, QueryResult::Nonzero(ids)) = (req, res) else {
                panic!("shape");
            };
            let mut direct = set.nonzero_nn(*q);
            direct.sort_unstable();
            assert_eq!(ids, &direct, "q = {q}");
        }
    }

    #[test]
    fn empty_batch_and_empty_set() {
        let (_, eng) = engine(10, EngineConfig::default());
        let resp = eng.run_batch(&[]);
        assert!(resp.results.is_empty());
        assert_eq!(resp.stats.plan.summary(), "idle");

        let empty = Engine::new(DiscreteSet::default(), EngineConfig::default());
        let resp = empty.run_batch(&[
            QueryRequest::Nonzero {
                q: Point::new(0.0, 0.0),
            },
            QueryRequest::TopK {
                q: Point::new(0.0, 0.0),
                k: 3,
            },
        ]);
        assert_eq!(
            resp.results[0],
            QueryResult::Nonzero(vec![]),
            "empty set has no nonzero NNs"
        );
        let QueryResult::Ranked { items, .. } = &resp.results[1] else {
            panic!("shape");
        };
        assert!(items.is_empty());
    }

    #[test]
    fn stats_are_populated() {
        let (_, eng) = engine(50, EngineConfig::default());
        let batch: Vec<QueryRequest> = workload::random_queries(64, 60.0, 13)
            .into_iter()
            .map(|q| QueryRequest::Nonzero { q })
            .collect();
        let resp = eng.run_batch(&batch);
        let s = &resp.stats;
        assert_eq!(s.batch_len, 64);
        assert_eq!(s.workers, eng.threads());
        assert!(!s.worker_busy.is_empty() && s.worker_busy.len() <= s.workers.max(1));
        assert!(s.worker_busy.iter().any(|d| *d > Duration::ZERO));
        assert!(s.wall > Duration::ZERO);
        assert!(s.throughput_qps() > 0.0);
        assert!((0.0..=1.0).contains(&s.worker_utilization()));
        assert_eq!(s.nonzero_guarantee, Some(Guarantee::Exact));
        assert!((0.0..=1.0).contains(&s.predicate_filter_hit_rate()));
    }

    #[test]
    fn diagram_batches_report_predicate_stats() {
        // A diagram build runs thousands of adaptive predicates; on random
        // inputs virtually all of them resolve in the f64 filter.
        let set = workload::random_discrete_set(6, 2, 3.0, 7);
        let eng = Engine::new(set, EngineConfig::default());
        let batch: Vec<QueryRequest> = workload::random_queries(64, 40.0, 8)
            .iter()
            .cycle()
            .take(8192)
            .map(|&q| QueryRequest::Nonzero { q })
            .collect();
        let resp = eng.run_batch(&batch);
        assert_eq!(resp.stats.plan.nonzero, Some(NonzeroPlan::Diagram));
        let s = &resp.stats;
        assert!(
            s.predicate_filter_hits > 1000,
            "diagram build should exercise the predicate filter (hits: {})",
            s.predicate_filter_hits
        );
        assert!(
            s.predicate_filter_hit_rate() > 0.9,
            "fast path should dominate on random inputs (rate: {})",
            s.predicate_filter_hit_rate()
        );
    }

    #[test]
    fn probabilistic_guarantee_uses_monte_carlo_deterministically() {
        // A huge probability spread blows up the spiral retrieval budget,
        // and a large repeated batch amortizes the Monte-Carlo build — the
        // regime where the planner should pick MC.
        let set = workload::spread_discrete_set(400, 3, 1e5, 19);
        let config = EngineConfig {
            guarantee: Guarantee::Probabilistic {
                eps: 0.1,
                delta: 0.05,
            },
            ..EngineConfig::default()
        };
        let (e1, e2) = (
            Engine::new(set.clone(), config),
            Engine::new(set.clone(), config),
        );
        let batch: Vec<QueryRequest> = workload::random_queries(32, 60.0, 20)
            .iter()
            .cycle()
            .take(1024)
            .map(|&q| QueryRequest::TopK { q, k: 1 })
            .collect();
        let (r1, r2) = (e1.run_batch(&batch), e2.run_batch(&batch));
        assert!(
            matches!(r1.stats.plan.quant, Some(QuantPlan::MonteCarlo { .. })),
            "plan: {}",
            r1.stats.plan.summary()
        );
        assert!(r1.stats.cache_hits > 0, "repeated queries must hit cache");
        // Same seed → identical estimates across engine instances.
        assert_eq!(r1.results, r2.results);
        // The MC winner's exact probability is within slack of the optimum.
        let exact = ExactQuantifier(&set);
        for (req, res) in batch.iter().zip(&r1.results).take(32) {
            let (QueryRequest::TopK { q, .. }, QueryResult::Ranked { items, guarantee }) =
                (req, res)
            else {
                panic!("shape");
            };
            if let (Some(&(winner, _)), Some((_, best))) =
                (items.first(), top_k_probable(&exact, *q, 1).first())
            {
                let pi = quantification_discrete(&set, *q);
                assert!(pi[winner] >= best - 2.0 * guarantee.slack() - 1e-9);
            }
        }
    }
}
