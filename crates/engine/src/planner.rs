//! The cost-based batch planner.
//!
//! Given the point-set shape (`n`, `N = Σ k_i`, spread `ρ`), the batch
//! composition, and the requested [`Guarantee`], the planner prices every
//! eligible execution strategy as `build + batch · per_query` (in abstract
//! "location visit" units) and picks the cheapest — amortizing index
//! construction over the batch, and charging nothing for structures the
//! engine has already built. The full cost table is recorded in the
//! [`BatchPlan`] so `ExecStats` can report *why* a plan was taken
//! (experiment E25 charts the crossovers).
//!
//! Candidate strategies:
//!
//! * `NN≠0` requests — brute force (Lemma 2.1, `O(N)`/query), the
//!   kd-tree/group-index structure (Theorem 3.2, `O(√N + t)`/query after an
//!   `O(N log N)` build), or `V≠0` point location (Theorem 2.14,
//!   logarithmic queries after a very expensive arrangement build — only
//!   eligible for small `n`).
//! * quantification requests — the exact Eq. (2) fresh sweep
//!   (`O(N log N)`/query, no build), the exact `quant:merged` k-way merge
//!   over the Bentley–Saxe buckets' warm sorted summaries (available once
//!   updates have been applied; priced by live-bucket count and the churn
//!   since quantification last touched the structure), spiral search
//!   (Theorem 4.7; needs an additive budget), or Monte Carlo (Theorem 4.3;
//!   needs a probabilistic budget).

use uncertain_nn::quantification::monte_carlo::samples_for_queries;
use uncertain_nn::queries::Guarantee;

/// Execution strategy for the `NN≠0` requests of a batch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NonzeroPlan {
    /// Direct Lemma 2.1 evaluation per query.
    Brute,
    /// The Theorem 3.2 kd-tree/group-index structure.
    Index,
    /// `V≠0(P)` + slab point location (Theorem 2.14).
    Diagram,
    /// The Bentley–Saxe bucket structure maintained across updates — zero
    /// build cost (its per-bucket indexes are kept warm incrementally by
    /// `apply`), queries pay the Theorem 3.2 shape once per bucket. Only
    /// available after the engine has applied updates.
    Dynamic,
}

/// Execution strategy for the probability (Threshold/TopK) requests.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum QuantPlan {
    /// The exact Eq. (2) sweep over the flat live set (the "fresh" path:
    /// assemble + stable-sort all `N` entries per query).
    Exact,
    /// The exact k-way merge over the Bentley–Saxe buckets' warm sorted
    /// summaries, with the sweep's early exit — bit-identical to `Exact`,
    /// priced by live-bucket count and the churn since quantification last
    /// touched the structure (cold buckets pay a lazy summary build). Only
    /// available after the engine has applied updates, and not offered
    /// when a snap grid is configured: snapped answers are certified
    /// interval evaluations over the flat live set, which would silently
    /// bypass the merge and its cost model.
    Merged,
    /// Spiral search truncated retrieval with additive error `eps`.
    Spiral { eps: f64 },
    /// Monte-Carlo vote frequencies over `samples` instantiations.
    MonteCarlo { samples: usize },
}

impl std::fmt::Display for NonzeroPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NonzeroPlan::Brute => write!(f, "nonzero:brute"),
            NonzeroPlan::Index => write!(f, "nonzero:index"),
            NonzeroPlan::Diagram => write!(f, "nonzero:diagram"),
            NonzeroPlan::Dynamic => write!(f, "nonzero:dynamic"),
        }
    }
}

impl std::fmt::Display for QuantPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QuantPlan::Exact => write!(f, "quant:fresh"),
            QuantPlan::Merged => write!(f, "quant:merged"),
            QuantPlan::Spiral { eps } => write!(f, "quant:spiral(ε={eps})"),
            QuantPlan::MonteCarlo { samples } => write!(f, "quant:mc(s={samples})"),
        }
    }
}

/// One row of the planner's cost table.
#[derive(Clone, Debug)]
pub struct PlanEstimate {
    pub name: String,
    /// Estimated one-time build cost (0 when the structure already exists).
    pub build: f64,
    /// Estimated per-query cost.
    pub per_query: f64,
    /// `build + batch · per_query`.
    pub total: f64,
    pub chosen: bool,
}

/// Everything the planner needs to know about the engine and the batch.
#[derive(Clone, Copy, Debug)]
pub struct PlannerInputs {
    /// Number of uncertain points `n`.
    pub n: usize,
    /// Total locations `N = Σ k_i`.
    pub total_locations: usize,
    /// Max locations per point `k`.
    pub max_k: usize,
    /// Probability spread `ρ` (for the spiral budget).
    pub spread: f64,
    /// `NN≠0` requests in the batch.
    pub nonzero_count: usize,
    /// Threshold/TopK requests in the batch.
    pub quant_count: usize,
    /// The engine's requested guarantee.
    pub guarantee: Guarantee,
    /// Largest `n` for which the `V≠0` diagram may be considered.
    pub diagram_cap: usize,
    /// Structures already built (their build cost is sunk).
    pub index_built: bool,
    pub diagram_built: bool,
    pub spiral_built: bool,
    /// Sample count of an already-built Monte-Carlo structure, if any.
    pub mc_built_samples: Option<usize>,
    /// The engine has a warm Bentley–Saxe structure (epoch > 0): the
    /// `nonzero:dynamic` and `quant:merged` candidates become available
    /// (their bucket structure is maintained incrementally by `apply`).
    pub dynamic_ready: bool,
    /// Occupied buckets of that structure (its per-query fan-out).
    pub dynamic_buckets: usize,
    /// Locations in buckets whose quantification summary is **cold** — the
    /// churn since quantification last touched the structure. `quant:merged`
    /// is charged a one-time lazy build over exactly these.
    pub dynamic_quant_cold_locations: usize,
    /// Quantification answers are snapped to a cache grid (certified
    /// interval evaluation over the flat live set) — the merged candidate
    /// is not offered, because the snapped evaluator would bypass it.
    pub quant_snapped: bool,
    /// Number of shards when planning for a `ShardedEngine` (0 = the
    /// monolithic engine). Sharded serving scatter-gathers every read, so
    /// only the partition-independent exact strategies are priced: the
    /// static index/diagram/spiral/MC structures are built over one flat
    /// set and are not maintained per shard. Each query also pays a small
    /// per-shard gather constant.
    pub shards: usize,
    /// Observed mean scatter-gather fan-out per read (shards actually
    /// visited), fed back by the sharded engine from prior batches. Under
    /// hash partitioning this equals `shards`; under spatial partitioning
    /// the support-box pruning can make it much smaller, which cheapens
    /// exactly the candidates that scatter per shard (`nonzero:dynamic`,
    /// `quant:merged`) — their gather constant and bucket fan-out scale
    /// with the *expected* touched shards, not the worst case. Ignored
    /// when `shards == 0`; clamped to `[1, shards]` otherwise (pass
    /// `shards as f64` when no observations exist yet).
    pub expected_shards_touched: f64,
}

/// The planner's decision for one batch, with the full cost table.
#[derive(Clone, Debug, Default)]
pub struct BatchPlan {
    pub nonzero: Option<NonzeroPlan>,
    pub quant: Option<QuantPlan>,
    pub estimates: Vec<PlanEstimate>,
}

impl BatchPlan {
    /// Short human-readable summary, e.g. `"nonzero:index + quant:fresh"`.
    pub fn summary(&self) -> String {
        match (&self.nonzero, &self.quant) {
            (Some(nz), Some(qp)) => format!("{nz} + {qp}"),
            (Some(nz), None) => nz.to_string(),
            (None, Some(qp)) => qp.to_string(),
            (None, None) => "idle".to_string(),
        }
    }
}

fn lg(x: f64) -> f64 {
    x.max(2.0).log2()
}

/// Registry counter names for each choosable plan, so dumps show how often
/// the planner picked each strategy over the process lifetime.
fn count_nonzero_choice(p: NonzeroPlan) {
    match p {
        NonzeroPlan::Brute => uncertain_obs::counter!("engine.planner.chosen.nonzero.brute"),
        NonzeroPlan::Index => uncertain_obs::counter!("engine.planner.chosen.nonzero.index"),
        NonzeroPlan::Diagram => uncertain_obs::counter!("engine.planner.chosen.nonzero.diagram"),
        NonzeroPlan::Dynamic => uncertain_obs::counter!("engine.planner.chosen.nonzero.dynamic"),
    }
    .inc();
}

fn count_quant_choice(p: QuantPlan) {
    match p {
        QuantPlan::Exact => uncertain_obs::counter!("engine.planner.chosen.quant.fresh"),
        QuantPlan::Merged => uncertain_obs::counter!("engine.planner.chosen.quant.merged"),
        QuantPlan::Spiral { .. } => uncertain_obs::counter!("engine.planner.chosen.quant.spiral"),
        QuantPlan::MonteCarlo { .. } => uncertain_obs::counter!("engine.planner.chosen.quant.mc"),
    }
    .inc();
}

/// Prices every eligible strategy and returns the cheapest plan per request
/// class. Deterministic: ties break toward the earlier candidate.
pub fn plan(inp: &PlannerInputs) -> BatchPlan {
    uncertain_obs::counter!("engine.planner.plans").inc();
    let n = inp.n as f64;
    let nn = (inp.total_locations as f64).max(1.0);
    let kbar = (nn / n.max(1.0)).max(1.0);
    let mut out = BatchPlan::default();

    // Per-query scatter-gather constants for sharded serving. Strategies
    // over the *flat union* (brute, fresh sweep) pay one fold per shard
    // unconditionally — assembling the union visits every shard. The
    // bucket-structure strategies (dynamic, merged) scatter per shard and
    // benefit from support-box pruning, so they pay only the *observed*
    // expected fan-out, and their per-bucket fan-out shrinks by the same
    // fraction (untouched shards' buckets are never visited).
    let gather = 4.0 * inp.shards as f64;
    let expected = if inp.shards == 0 {
        0.0
    } else {
        inp.expected_shards_touched.clamp(1.0, inp.shards as f64)
    };
    let gather_pruned = 4.0 * expected;
    let touched_frac = if inp.shards == 0 {
        1.0
    } else {
        expected / inp.shards as f64
    };

    if inp.nonzero_count > 0 {
        let b = inp.nonzero_count as f64;
        let mut cands: Vec<(NonzeroPlan, f64, f64)> = vec![
            // A distance evaluation (sqrt + compare) is ~4 units.
            (NonzeroPlan::Brute, 0.0, 4.0 * nn + gather),
        ];
        if inp.shards == 0 {
            cands.push((
                NonzeroPlan::Index,
                if inp.index_built {
                    0.0
                } else {
                    3.0 * nn * lg(nn)
                },
                // Two stages: group min-max branch-and-bound + kd range
                // reporting — O(√N + t) with a healthy constant (two tree
                // descents with distance evaluations at every node).
                16.0 * (nn.sqrt() + kbar + 24.0),
            ));
        }
        if inp.dynamic_ready {
            // Same two-stage query shape as the Theorem 3.2 index, fanned
            // out over the occupied buckets (summed across shards when
            // sharded, then scaled down to the fraction of shards a read is
            // expected to actually visit); the build is already paid for
            // incrementally by `apply`, so it is never charged here.
            let buckets = (inp.dynamic_buckets.max(1) as f64 * touched_frac).max(1.0);
            cands.push((
                NonzeroPlan::Dynamic,
                0.0,
                16.0 * (nn.sqrt() + kbar + 24.0) + 8.0 * buckets * lg(nn) + gather_pruned,
            ));
        }
        if inp.shards == 0 && inp.n >= 2 && inp.n <= inp.diagram_cap {
            // Theorem 2.14: the arrangement has O(k n³) pieces; building it
            // dominates by far, queries are a logarithmic slab search that
            // returns a precomputed label.
            let mu = (kbar * n * n * n).max(2.0);
            cands.push((
                NonzeroPlan::Diagram,
                if inp.diagram_built {
                    0.0
                } else {
                    24.0 * mu * lg(mu)
                },
                2.0 * lg(mu) + 8.0,
            ));
        }
        let chosen = pick(&cands, b);
        for (i, &(p, build, per)) in cands.iter().enumerate() {
            out.estimates.push(PlanEstimate {
                name: p.to_string(),
                build,
                per_query: per,
                total: build + b * per,
                chosen: i == chosen,
            });
        }
        count_nonzero_choice(cands[chosen].0);
        out.nonzero = Some(cands[chosen].0);
    }

    if inp.quant_count > 0 {
        let b = inp.quant_count as f64;
        let mut cands: Vec<(QuantPlan, f64, f64)> =
            vec![(QuantPlan::Exact, 0.0, 6.0 * nn * lg(nn) + gather)];
        if inp.dynamic_ready && !inp.quant_snapped {
            // Exact k-way merge over warm per-bucket summaries: cold buckets
            // (churned since the last quantification) pay one lazy kd-build,
            // then a query pays the O(live) answer assembly, the early-exit
            // stream draws (a few multiples of k̄), and the per-bucket heap
            // fan-out — sublinear in N, which is the whole point.
            let buckets = (inp.dynamic_buckets.max(1) as f64 * touched_frac).max(1.0);
            let cold = inp.dynamic_quant_cold_locations as f64;
            cands.push((
                QuantPlan::Merged,
                if cold > 0.0 {
                    3.0 * cold * lg(cold)
                } else {
                    0.0
                },
                2.0 * n + 16.0 * (kbar + 2.0) * lg(nn) + 8.0 * buckets * lg(nn) + gather_pruned,
            ));
        }
        let eps_budget = inp.guarantee.slack();
        if inp.shards == 0
            && inp.n > 0
            && eps_budget > 0.0
            && eps_budget < 1.0
            && inp.spread.is_finite()
        {
            // Spiral retrieval budget m(ρ, ε) = ⌈ρ k ln(1/ε)⌉ + k − 1.
            let m = (inp.spread * inp.max_k as f64 * (1.0 / eps_budget).ln()).ceil()
                + inp.max_k as f64
                - 1.0;
            let m = m.min(nn).max(1.0);
            cands.push((
                QuantPlan::Spiral { eps: eps_budget },
                if inp.spiral_built {
                    0.0
                } else {
                    3.0 * nn * lg(nn)
                },
                8.0 * m * lg(nn) + n,
            ));
        }
        if inp.shards == 0 && inp.n > 0 {
            if let Guarantee::Probabilistic { eps, delta } = inp.guarantee {
                if eps > 0.0 && eps < 1.0 && delta > 0.0 && delta < 1.0 {
                    let s = samples_for_queries(eps, delta, inp.n, inp.quant_count.max(1));
                    let build = if inp.mc_built_samples.is_some_and(|have| have >= s) {
                        0.0
                    } else {
                        // One instantiation = n samples + an n-point kd-tree.
                        s as f64 * (kbar * n + 4.0 * n * lg(n))
                    };
                    cands.push((
                        QuantPlan::MonteCarlo { samples: s },
                        build,
                        s as f64 * (2.0 * lg(n) + 8.0),
                    ));
                }
            }
        }
        let chosen = pick(&cands, b);
        for (i, &(p, build, per)) in cands.iter().enumerate() {
            out.estimates.push(PlanEstimate {
                name: p.to_string(),
                build,
                per_query: per,
                total: build + b * per,
                chosen: i == chosen,
            });
        }
        count_quant_choice(cands[chosen].0);
        out.quant = Some(cands[chosen].0);
    }

    out
}

fn pick<P: Copy>(cands: &[(P, f64, f64)], batch: f64) -> usize {
    let mut best = 0;
    let mut best_cost = f64::INFINITY;
    for (i, &(_, build, per)) in cands.iter().enumerate() {
        let total = build + batch * per;
        if total < best_cost {
            best_cost = total;
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base(n: usize, k: usize, nonzero: usize, quant: usize, g: Guarantee) -> PlannerInputs {
        PlannerInputs {
            n,
            total_locations: n * k,
            max_k: k,
            spread: 4.0,
            nonzero_count: nonzero,
            quant_count: quant,
            guarantee: g,
            diagram_cap: 40,
            index_built: false,
            diagram_built: false,
            spiral_built: false,
            mc_built_samples: None,
            dynamic_ready: false,
            dynamic_buckets: 0,
            dynamic_quant_cold_locations: 0,
            quant_snapped: false,
            shards: 0,
            expected_shards_touched: 0.0,
        }
    }

    #[test]
    fn sharded_serving_prices_only_exact_scatter_gather_candidates() {
        // A sharded engine always has warm buckets, never a static index,
        // diagram, spiral, or MC structure — those are monolithic-only.
        let mut inp = base(
            4000,
            3,
            64,
            64,
            Guarantee::Probabilistic {
                eps: 0.05,
                delta: 0.05,
            },
        );
        inp.dynamic_ready = true;
        inp.dynamic_buckets = 12;
        inp.shards = 4;
        inp.expected_shards_touched = 4.0;
        let p = plan(&inp);
        for e in &p.estimates {
            assert!(
                matches!(
                    e.name.as_str(),
                    "nonzero:brute" | "nonzero:dynamic" | "quant:fresh" | "quant:merged"
                ),
                "unexpected sharded candidate {}",
                e.name
            );
        }
        assert!(matches!(
            p.nonzero,
            Some(NonzeroPlan::Brute | NonzeroPlan::Dynamic)
        ));
        assert!(matches!(
            p.quant,
            Some(QuantPlan::Exact | QuantPlan::Merged)
        ));
    }

    #[test]
    fn observed_fanout_shifts_the_sharded_crossover() {
        // Same engine shape, same batch — the only input that changes is
        // the observed scatter-gather fan-out. At the worst case (every
        // read touches all 8 shards) the heavy per-bucket fan-out makes
        // brute the cheaper NN≠0 strategy; once pruning is observed to
        // touch ~1 shard per read, the dynamic structure wins.
        let mut inp = base(667, 3, 64, 0, Guarantee::Exact);
        inp.dynamic_ready = true;
        inp.dynamic_buckets = 96; // summed across 8 shards
        inp.shards = 8;

        inp.expected_shards_touched = 8.0;
        let worst = plan(&inp);
        assert_eq!(worst.nonzero, Some(NonzeroPlan::Brute));

        inp.expected_shards_touched = 1.0;
        let pruned = plan(&inp);
        assert_eq!(pruned.nonzero, Some(NonzeroPlan::Dynamic));

        // The brute row is priced identically in both plans — the feedback
        // only cheapens the strategies that actually scatter per shard.
        let cost = |p: &BatchPlan, name: &str| {
            p.estimates
                .iter()
                .find(|e| e.name == name)
                .map(|e| e.total)
                .unwrap()
        };
        assert_eq!(
            cost(&worst, "nonzero:brute"),
            cost(&pruned, "nonzero:brute")
        );
        assert!(cost(&pruned, "nonzero:dynamic") < cost(&worst, "nonzero:dynamic"));
    }

    #[test]
    fn dynamic_candidate_appears_only_when_ready_and_beats_cold_index() {
        let cold = plan(&base(5000, 3, 64, 0, Guarantee::Exact));
        assert!(cold.estimates.iter().all(|e| e.name != "nonzero:dynamic"));

        let mut inp = base(5000, 3, 64, 0, Guarantee::Exact);
        inp.dynamic_ready = true;
        inp.dynamic_buckets = 6;
        let p = plan(&inp);
        // For a moderate batch the warm bucket structure wins over paying a
        // fresh O(N log N) index build.
        assert_eq!(p.nonzero, Some(NonzeroPlan::Dynamic));
        // Once the static index exists too (sunk), huge batches may prefer
        // its lower per-query constant; the dynamic row is still priced.
        inp.nonzero_count = 10_000_000;
        inp.index_built = true;
        let p = plan(&inp);
        assert!(p.estimates.iter().any(|e| e.name == "nonzero:dynamic"));
        assert_eq!(p.nonzero, Some(NonzeroPlan::Index));
    }

    #[test]
    fn small_sets_use_brute_large_sets_use_index() {
        let small = plan(&base(16, 3, 64, 0, Guarantee::Exact));
        assert_eq!(small.nonzero, Some(NonzeroPlan::Brute));
        let large = plan(&base(20_000, 3, 512, 0, Guarantee::Exact));
        assert_eq!(large.nonzero, Some(NonzeroPlan::Index));
    }

    #[test]
    fn sunk_build_cost_tips_toward_index() {
        let mut inp = base(600, 3, 2, 0, Guarantee::Exact);
        let cold = plan(&inp);
        inp.index_built = true;
        let warm = plan(&inp);
        // With the build sunk, the index is at least as attractive.
        let cost = |p: &BatchPlan, name: &str| {
            p.estimates
                .iter()
                .find(|e| e.name == name)
                .map(|e| e.total)
                .unwrap()
        };
        assert!(cost(&warm, "nonzero:index") <= cost(&cold, "nonzero:index"));
        assert_eq!(warm.nonzero, Some(NonzeroPlan::Index));
    }

    #[test]
    fn diagram_needs_tiny_n_and_huge_batch() {
        let inp = base(8, 2, 2_000_000, 0, Guarantee::Exact);
        let p = plan(&inp);
        assert_eq!(p.nonzero, Some(NonzeroPlan::Diagram));
        // Above the cap the diagram is not even priced.
        let capped = plan(&base(200, 2, 2_000_000, 0, Guarantee::Exact));
        assert!(capped.estimates.iter().all(|e| e.name != "nonzero:diagram"));
    }

    #[test]
    fn merged_quant_appears_only_when_dynamic_ready_and_wins_when_warm() {
        // Static engine: no merged candidate at all.
        let cold = plan(&base(4096, 3, 0, 64, Guarantee::Exact));
        assert!(cold.estimates.iter().all(|e| e.name != "quant:merged"));
        assert_eq!(cold.quant, Some(QuantPlan::Exact));

        // Warm dynamic structure: the merged path's sublinear per-query
        // cost beats the fresh O(N log N) sweep.
        let mut inp = base(4096, 3, 0, 64, Guarantee::Exact);
        inp.dynamic_ready = true;
        inp.dynamic_buckets = 6;
        let warm = plan(&inp);
        assert_eq!(warm.quant, Some(QuantPlan::Merged));
        // Both variants are always priced side by side.
        assert!(warm.estimates.iter().any(|e| e.name == "quant:fresh"));

        // Churn since the last touch shows up as a build charge on exactly
        // the cold locations; a warm structure is charged nothing.
        let merged_build = |p: &BatchPlan| {
            p.estimates
                .iter()
                .find(|e| e.name == "quant:merged")
                .map(|e| e.build)
                .unwrap()
        };
        assert_eq!(merged_build(&warm), 0.0);
        inp.dynamic_quant_cold_locations = 3 * 4096;
        let churned = plan(&inp);
        assert!(merged_build(&churned) > 0.0);
        // The lazy rebuild is still cheaper than even a handful of fresh
        // O(N log N) sweeps, so merged keeps winning under churn…
        assert_eq!(churned.quant, Some(QuantPlan::Merged));
        // …and with the build sunk the total only drops.
        assert!(merged_build(&churned) + 64.0 > merged_build(&warm));

        // A snap grid routes quantification through the flat-set interval
        // evaluator, so the merged candidate is not even priced.
        inp.quant_snapped = true;
        let snapped = plan(&inp);
        assert!(snapped.estimates.iter().all(|e| e.name != "quant:merged"));
        assert_eq!(snapped.quant, Some(QuantPlan::Exact));
    }

    #[test]
    fn guarantee_gates_quant_candidates() {
        let exact = plan(&base(100, 3, 0, 32, Guarantee::Exact));
        assert_eq!(exact.quant, Some(QuantPlan::Exact));
        assert_eq!(exact.estimates.len(), 1);

        let additive = plan(&base(4000, 3, 0, 256, Guarantee::Additive(0.05)));
        assert!(matches!(additive.quant, Some(QuantPlan::Spiral { .. })));

        let prob = plan(&base(
            4000,
            3,
            0,
            256,
            Guarantee::Probabilistic {
                eps: 0.05,
                delta: 0.05,
            },
        ));
        // All three candidates priced; the chosen one is recorded.
        assert_eq!(prob.estimates.len(), 3);
        assert_eq!(prob.estimates.iter().filter(|e| e.chosen).count(), 1);
        assert!(prob.quant.is_some());
    }

    #[test]
    fn empty_batch_is_idle() {
        let p = plan(&base(100, 3, 0, 0, Guarantee::Exact));
        assert!(p.nonzero.is_none() && p.quant.is_none());
        assert_eq!(p.summary(), "idle");
    }
}
