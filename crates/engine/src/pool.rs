//! A std-only thread pool (`std::thread` + `mpsc` channels; no rayon — the
//! build is offline) with panic-isolated workers.
//!
//! Worker count resolution, in priority order:
//! 1. the `UNC_ENGINE_THREADS` environment variable (deterministic CI runs
//!    pin it to 1),
//! 2. an explicit [`EngineConfig::threads`](crate::EngineConfig) override,
//! 3. [`std::thread::available_parallelism`].

use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// Environment variable overriding the worker count (highest priority).
pub const THREADS_ENV: &str = "UNC_ENGINE_THREADS";

/// Resolves the worker count: `UNC_ENGINE_THREADS` > `requested` > detected
/// parallelism. Always at least 1.
pub fn resolve_threads(requested: Option<usize>) -> usize {
    // An invalid value warns once on stderr (naming the variable and the
    // fallback) instead of silently misconfiguring the deployment.
    if let Some(n) =
        uncertain_obs::env_parse::<usize>(THREADS_ENV, "the config/detected worker count")
    {
        return n.max(1);
    }
    if let Some(n) = requested {
        return n.max(1);
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// A fixed-size pool of worker threads pulling jobs off a shared channel.
///
/// Workers are panic-isolated: a panicking job is caught and swallowed (the
/// job's effects, e.g. an unsent result channel, are the caller's signal),
/// and the worker stays alive for subsequent jobs. Callers that need timing
/// measure inside their jobs (see `ExecStats::worker_busy`).
pub struct ThreadPool {
    tx: Option<Sender<Job>>,
    handles: Vec<JoinHandle<()>>,
}

impl ThreadPool {
    /// Spawns `threads` workers (at least 1).
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let (tx, rx) = channel::<Job>();
        let rx = Arc::new(Mutex::new(rx));
        let handles = (0..threads)
            .map(|w| {
                let rx = Arc::clone(&rx);
                std::thread::Builder::new()
                    .name(format!("unc-engine-{w}"))
                    .spawn(move || worker_loop(&rx))
                    .expect("spawn engine worker")
            })
            .collect();
        ThreadPool {
            tx: Some(tx),
            handles,
        }
    }

    /// Number of workers.
    pub fn len(&self) -> usize {
        self.handles.len()
    }

    /// `true` when the pool has no workers (never: the pool holds ≥ 1).
    pub fn is_empty(&self) -> bool {
        self.handles.is_empty()
    }

    /// Enqueues a job. Jobs are executed in FIFO order by whichever worker
    /// frees up first.
    pub fn execute(&self, job: impl FnOnce() + Send + 'static) {
        self.tx
            .as_ref()
            .expect("pool not shut down")
            .send(Box::new(job))
            .expect("engine workers alive");
    }
}

fn worker_loop(rx: &Mutex<Receiver<Job>>) {
    // Busy/idle accounting: idle is the wait for a job (lock + recv), busy
    // is the job itself. Totals aggregate across all workers; the per-job
    // histogram gives the shard-size distribution in wall time.
    let busy = uncertain_obs::counter!("engine.pool.busy_ns");
    let idle = uncertain_obs::counter!("engine.pool.idle_ns");
    let jobs = uncertain_obs::histogram!("engine.pool.jobs");
    loop {
        let w0 = std::time::Instant::now();
        // Hold the lock only while *receiving*, never while running a job.
        // Poison recovery: jobs run *outside* this lock, so a panicking job
        // can never leave the receiver in a bad state — but if any worker
        // ever panics between lock and recv, the channel itself is still
        // valid, and dying here would strand every queued job.
        let job = match rx
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .recv()
        {
            Ok(job) => job,
            Err(_) => return, // all senders dropped: shut down
        };
        idle.add(w0.elapsed().as_nanos() as u64);
        let j0 = std::time::Instant::now();
        // Panic isolation: a poisoned query must not take the worker (and
        // with it, every future batch) down. The panic payload is dropped;
        // the job's unsent result is the caller's signal.
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(job));
        let ns = j0.elapsed().as_nanos() as u64;
        busy.add(ns);
        jobs.record(ns);
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        drop(self.tx.take()); // disconnect: workers drain and exit
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn executes_all_jobs() {
        let pool = ThreadPool::new(3);
        assert_eq!(pool.len(), 3);
        let counter = Arc::new(AtomicUsize::new(0));
        let (tx, rx) = channel();
        for _ in 0..64 {
            let c = Arc::clone(&counter);
            let tx = tx.clone();
            pool.execute(move || {
                c.fetch_add(1, Ordering::Relaxed);
                let _ = tx.send(());
            });
        }
        drop(tx);
        assert_eq!(rx.iter().count(), 64);
        assert_eq!(counter.load(Ordering::Relaxed), 64);
    }

    #[test]
    fn panicking_job_does_not_kill_the_worker() {
        let pool = ThreadPool::new(1);
        pool.execute(|| panic!("poisoned query"));
        // The same (sole) worker must still process subsequent jobs.
        let (tx, rx) = channel();
        pool.execute(move || {
            let _ = tx.send(42);
        });
        assert_eq!(rx.recv().unwrap(), 42);
    }

    #[test]
    fn resolve_prefers_explicit_request_without_env() {
        // The env var may legitimately be set in CI; only assert the
        // fallback chain when it is absent.
        if std::env::var(THREADS_ENV).is_err() {
            assert_eq!(resolve_threads(Some(5)), 5);
            assert!(resolve_threads(None) >= 1);
        }
        assert!(resolve_threads(Some(0)) >= 1);
    }

    #[test]
    fn drop_joins_workers() {
        let pool = ThreadPool::new(2);
        pool.execute(|| {});
        drop(pool); // must not hang
    }
}
