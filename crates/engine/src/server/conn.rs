//! Per-connection state machine: a reader thread (this module's entry
//! point, run on the thread the accept loop spawned) that parses frames
//! and dispatches them, plus a writer thread draining encoded reply
//! frames so slow batches and inline replies never interleave bytes.
//!
//! Error policy (the hostile-input contract):
//!
//! | condition                    | reply                 | connection |
//! |------------------------------|-----------------------|------------|
//! | clean EOF between frames     | —                     | close      |
//! | disconnect / EOF mid-frame   | —                     | close      |
//! | length prefix over cap       | `TooLarge`            | close      |
//! | length prefix below header   | —                     | close      |
//! | unknown opcode               | `BadOpcode`           | close      |
//! | body fails validation        | `Malformed` + detail  | **stays**  |
//! | queue at bound               | `Shed` + detail       | **stays**  |
//! | evaluation panicked          | `Failed` + reason     | **stays**  |
//!
//! Framing-level failures close the connection because the byte stream
//! cannot be resynchronized; body-level failures keep it open because the
//! framing is still intact. Nothing in this path panics, blocks a worker,
//! or leaks a queue slot — admission happens *after* full validation, so
//! a request either never enters the queue or is answered by the batcher.

use std::io::Write as _;
use std::net::TcpStream;
use std::sync::atomic::Ordering;
use std::sync::mpsc::{channel, Receiver};
use std::sync::Arc;
use std::time::{Duration, Instant};

use super::protocol::{
    self, decode_request, encode_reply, read_frame, ErrorCode, Reply, Request, WireError,
};
use super::{Pending, Shared};
use crate::ApplyReport;

/// How often a blocked reader wakes to poll the shutdown flag.
const SHUTDOWN_POLL: Duration = Duration::from_millis(100);

pub(super) fn serve_conn(shared: &Arc<Shared>, stream: TcpStream) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(SHUTDOWN_POLL));
    let (tx, rx) = channel::<Vec<u8>>();
    // The writer owns its own dup of the socket; it exits once every
    // sender (reader + any Pending still in the batcher) is gone and the
    // channel is drained, so late batch replies still flush.
    if let Ok(wstream) = stream.try_clone() {
        let _ = std::thread::Builder::new()
            .name("unc-conn-write".into())
            .spawn(move || writer_loop(wstream, &rx));
    } else {
        let n = shared.conns.fetch_sub(1, Ordering::Relaxed) - 1;
        uncertain_obs::gauge!("server.connections").set(n as f64);
        return;
    }

    let mut stream = stream;
    loop {
        let raw = match read_frame(&mut stream, protocol::REQUEST_FRAME_MAX) {
            Ok(raw) => raw,
            Err(WireError::Eof) => break,
            Err(WireError::Io(e))
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if shared.shutdown.load(Ordering::Relaxed) {
                    break;
                }
                continue;
            }
            Err(WireError::Io(_)) | Err(WireError::Truncated) => {
                uncertain_obs::counter!("server.reject.truncated").inc();
                break;
            }
            Err(WireError::TooLarge(len)) => {
                uncertain_obs::counter!("server.reject.too_large").inc();
                let _ = tx.send(encode_reply(
                    0,
                    &Reply::Error {
                        code: ErrorCode::TooLarge,
                        detail: format!("frame length {len} over cap"),
                    },
                ));
                break;
            }
            Err(WireError::Malformed(_)) => {
                // Length below the fixed header: the stream is desynced.
                uncertain_obs::counter!("server.reject.malformed").inc();
                break;
            }
            Err(WireError::BadOpcode(_)) => unreachable!("read_frame does not decode opcodes"),
        };
        uncertain_obs::counter!("server.requests").inc();

        match decode_request(raw.opcode, &raw.body) {
            Ok(Request::Ping) => {
                let _ = tx.send(encode_reply(raw.req_id, &Reply::Pong));
            }
            Ok(Request::Apply(updates)) => {
                // Inline, not batched: `Engine::apply` publishes a new
                // epoch without blocking readers, so an apply storm on
                // this connection never stalls queries in the batcher.
                let t0 = Instant::now();
                let report = shared.engine.apply(&updates);
                uncertain_obs::histogram!("server.apply.wall")
                    .record(t0.elapsed().as_nanos() as u64);
                let _ = tx.send(encode_reply(raw.req_id, &apply_reply(&report)));
            }
            Ok(Request::Query(req)) => {
                let pending = Pending {
                    req,
                    req_id: raw.req_id,
                    arrived: Instant::now(),
                    tx: tx.clone(),
                };
                if let Some(shed_frame) = shared.admit(pending) {
                    let _ = tx.send(shed_frame);
                }
            }
            Err(WireError::BadOpcode(op)) => {
                uncertain_obs::counter!("server.reject.bad_opcode").inc();
                let _ = tx.send(encode_reply(
                    raw.req_id,
                    &Reply::Error {
                        code: ErrorCode::BadOpcode,
                        detail: format!("unknown opcode {op:#04x}"),
                    },
                ));
                break;
            }
            Err(e) => {
                uncertain_obs::counter!("server.reject.malformed").inc();
                let _ = tx.send(encode_reply(
                    raw.req_id,
                    &Reply::Error {
                        code: ErrorCode::Malformed,
                        detail: e.to_string(),
                    },
                ));
            }
        }
    }
    drop(tx);
    let n = shared.conns.fetch_sub(1, Ordering::Relaxed) - 1;
    uncertain_obs::gauge!("server.connections").set(n as f64);
}

fn apply_reply(r: &ApplyReport) -> Reply {
    Reply::Apply {
        epoch: r.epoch,
        live: r.live as u64,
        tombstones: r.tombstones as u64,
        removed: r.removed as u32,
        moved: r.moved as u32,
        missed: r.missed as u32,
        inserted: r.inserted.iter().map(|&id| id as u64).collect(),
    }
}

/// Drains encoded frames onto the socket. After a write error the loop
/// keeps *consuming* (senders never learn, and must never block on a dead
/// peer) but stops writing.
fn writer_loop(mut stream: TcpStream, rx: &Receiver<Vec<u8>>) {
    let mut broken = false;
    while let Ok(frame) = rx.recv() {
        if !broken && stream.write_all(&frame).is_err() {
            broken = true;
        }
    }
    let _ = stream.flush();
}
