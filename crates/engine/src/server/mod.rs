//! The network serving front-end: a std-only TCP server speaking the
//! length-prefixed binary protocol of [`protocol`], feeding the engine's
//! batch API.
//!
//! # Architecture
//!
//! ```text
//! accept loops (one per core, shared listener)
//!    └─ connection threads (reader + writer per connection)
//!         ├─ Ping / Apply      → handled inline on the connection thread
//!         └─ point queries     → admission check → shared batch queue
//!                                   └─ batcher thread: batching window,
//!                                      Engine::run_batch, replies routed
//!                                      back per connection
//! ```
//!
//! **Batching window.** Point queries arriving within
//! [`ServerConfig::batch_window`] of each other are coalesced into one
//! [`Engine::run_batch`] call (closed early at
//! [`ServerConfig::max_batch`]). The engine shards the batch across its
//! worker pool, so the window converts concurrent client load into the
//! engine's natural parallelism instead of lock-stepping one query per
//! wakeup.
//!
//! **Admission control.** The batch queue is bounded by
//! [`ServerConfig::queue_bound`]. A query arriving at a full queue is shed
//! *immediately* with a typed [`protocol::ErrorCode::Shed`] reply (and a
//! `server.shed` counter increment) rather than queued — under overload
//! the tail latency of *admitted* requests stays bounded by
//! `queue_bound / throughput`, and clients get instant backpressure they
//! can retry against. Setting `queue_bound = 0` disables shedding (the
//! unbounded baseline experiment E32 measures against).
//!
//! **Epoch handoff.** `Apply` frames run inline on their connection
//! thread through [`Engine::apply`], which publishes a new snapshot
//! epoch without ever blocking readers — queries already in the batcher
//! keep serving from the snapshot they started with, so an apply storm
//! cannot stall in-flight reads.
//!
//! **Shutdown.** [`ServerHandle::shutdown`] stops accepting, wakes every
//! blocked thread, serves what was already admitted, and joins the accept
//! and batcher threads. Connection readers poll the shutdown flag via a
//! read timeout and exit within ~100 ms.

pub mod protocol;

mod conn;

use std::collections::VecDeque;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::Sender;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::{lock_ok, Engine, QueryRequest, QueryResult};
use protocol::{encode_reply, ErrorCode, Reply};

/// Environment variable overriding [`ServerConfig::accept_threads`].
pub const ACCEPT_THREADS_ENV: &str = "UNC_SERVER_ACCEPT_THREADS";
/// Environment variable overriding [`ServerConfig::batch_window`] (µs).
pub const WINDOW_US_ENV: &str = "UNC_SERVER_WINDOW_US";
/// Environment variable overriding [`ServerConfig::max_batch`].
pub const MAX_BATCH_ENV: &str = "UNC_SERVER_MAX_BATCH";
/// Environment variable overriding [`ServerConfig::queue_bound`].
pub const QUEUE_BOUND_ENV: &str = "UNC_SERVER_QUEUE_BOUND";

/// Front-end configuration. `Default` binds an ephemeral loopback port
/// with a 1 ms batching window and a 1024-deep admission bound.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Bind address, e.g. `"127.0.0.1:0"` (ephemeral) or `"0.0.0.0:7401"`.
    pub addr: String,
    /// Accept-loop threads sharing the listener ("thread per core", capped
    /// at 4 — accepts are cheap). Env: `UNC_SERVER_ACCEPT_THREADS`.
    pub accept_threads: usize,
    /// How long the batcher waits for more queries after the first one
    /// arrives. Env: `UNC_SERVER_WINDOW_US` (microseconds).
    pub batch_window: Duration,
    /// Hard cap on queries per engine batch (closes the window early).
    /// Env: `UNC_SERVER_MAX_BATCH`.
    pub max_batch: usize,
    /// Admission bound on the batch queue; arrivals beyond it are shed
    /// with a typed error. `0` = unbounded (no shedding — the overload
    /// baseline). Env: `UNC_SERVER_QUEUE_BOUND`.
    pub queue_bound: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            accept_threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
                .min(4),
            batch_window: Duration::from_micros(1000),
            max_batch: 256,
            queue_bound: 1024,
        }
    }
}

impl ServerConfig {
    /// Applies environment overrides (each warns once on stderr when set
    /// to an unparsable value, then keeps the configured fallback).
    fn resolved(mut self) -> ServerConfig {
        if let Some(n) =
            uncertain_obs::env_parse::<usize>(ACCEPT_THREADS_ENV, "the configured accept threads")
        {
            self.accept_threads = n.max(1);
        }
        if let Some(us) =
            uncertain_obs::env_parse::<u64>(WINDOW_US_ENV, "the configured batch window")
        {
            self.batch_window = Duration::from_micros(us);
        }
        if let Some(n) =
            uncertain_obs::env_parse::<usize>(MAX_BATCH_ENV, "the configured max batch")
        {
            self.max_batch = n.max(1);
        }
        if let Some(n) =
            uncertain_obs::env_parse::<usize>(QUEUE_BOUND_ENV, "the configured queue bound")
        {
            self.queue_bound = n;
        }
        self.accept_threads = self.accept_threads.max(1);
        self.max_batch = self.max_batch.max(1);
        self
    }
}

/// One admitted query waiting for (or riding in) a batch.
pub(crate) struct Pending {
    pub(crate) req: QueryRequest,
    pub(crate) req_id: u64,
    pub(crate) arrived: Instant,
    /// The owning connection's writer channel (encoded reply frames).
    pub(crate) tx: Sender<Vec<u8>>,
}

/// State shared by accept loops, connection threads, and the batcher.
pub(crate) struct Shared {
    pub(crate) engine: Arc<Engine>,
    pub(crate) cfg: ServerConfig,
    pub(crate) shutdown: AtomicBool,
    pub(crate) queue: Mutex<VecDeque<Pending>>,
    pub(crate) queue_cv: Condvar,
    pub(crate) conns: AtomicUsize,
}

impl Shared {
    /// Admits or sheds one query. Returns the shed reply to send (already
    /// encoded) when admission control rejects it, `None` when admitted.
    pub(crate) fn admit(&self, p: Pending) -> Option<Vec<u8>> {
        if self.shutdown.load(Ordering::Relaxed) {
            return Some(encode_reply(
                p.req_id,
                &Reply::Error {
                    code: ErrorCode::Shutdown,
                    detail: "server shutting down".into(),
                },
            ));
        }
        let mut q = lock_ok(&self.queue);
        if self.cfg.queue_bound > 0 && q.len() >= self.cfg.queue_bound {
            drop(q);
            uncertain_obs::counter!("server.shed").inc();
            return Some(encode_reply(
                p.req_id,
                &Reply::Error {
                    code: ErrorCode::Shed,
                    detail: "admission control: batch queue at bound".into(),
                },
            ));
        }
        q.push_back(p);
        let depth = q.len() as f64;
        drop(q);
        uncertain_obs::gauge!("server.queue.depth").set(depth);
        uncertain_obs::gauge!("server.queue.peak").set_max(depth);
        self.queue_cv.notify_one();
        None
    }
}

/// A running server. Dropping the handle shuts the server down.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accepts: Vec<JoinHandle<()>>,
    batcher: Option<JoinHandle<()>>,
}

/// The serving front-end. See the module docs for the architecture.
pub struct Server;

impl Server {
    /// Binds, spawns the accept loops and the batcher, and returns a
    /// handle. The engine is shared — in-process callers may keep issuing
    /// `run_batch`/`apply` directly alongside the network path.
    pub fn start(engine: Arc<Engine>, config: ServerConfig) -> io::Result<ServerHandle> {
        let cfg = config.resolved();
        let listener = TcpListener::bind(&cfg.addr)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            engine,
            cfg,
            shutdown: AtomicBool::new(false),
            queue: Mutex::new(VecDeque::new()),
            queue_cv: Condvar::new(),
            conns: AtomicUsize::new(0),
        });
        let accepts = (0..shared.cfg.accept_threads)
            .map(|i| {
                let listener = listener.try_clone()?;
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("unc-accept-{i}"))
                    .spawn(move || accept_loop(&shared, &listener))
            })
            .collect::<io::Result<Vec<_>>>()?;
        let batcher = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("unc-server-batch".into())
                .spawn(move || batcher_loop(&shared))?
        };
        Ok(ServerHandle {
            addr,
            shared,
            accepts,
            batcher: Some(batcher),
        })
    }
}

impl ServerHandle {
    /// The bound address (resolves the ephemeral port of `"…:0"` binds).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Current batch-queue depth (the admission-control variable).
    pub fn queue_depth(&self) -> usize {
        lock_ok(&self.shared.queue).len()
    }

    /// Stops accepting, serves everything already admitted, and joins the
    /// server's threads. Idempotent via `Drop`.
    pub fn shutdown(mut self) {
        self.shutdown_impl();
    }

    fn shutdown_impl(&mut self) {
        self.shared.shutdown.store(true, Ordering::Relaxed);
        self.shared.queue_cv.notify_all();
        // Each accept loop sits in a blocking `accept`; a throwaway
        // connection per loop wakes it to observe the flag.
        for _ in 0..self.accepts.len() {
            let _ = TcpStream::connect_timeout(&self.addr, Duration::from_millis(250));
        }
        for h in self.accepts.drain(..) {
            let _ = h.join();
        }
        if let Some(h) = self.batcher.take() {
            let _ = h.join();
        }
        // Connection readers poll the flag on a 100 ms read timeout; wait
        // (bounded) for them to drain so their replies flush.
        let deadline = Instant::now() + Duration::from_secs(2);
        while self.shared.conns.load(Ordering::Relaxed) > 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(10));
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        if !self.shared.shutdown.load(Ordering::Relaxed) {
            self.shutdown_impl();
        }
    }
}

fn accept_loop(shared: &Arc<Shared>, listener: &TcpListener) {
    loop {
        match listener.accept() {
            Ok((stream, _peer)) => {
                if shared.shutdown.load(Ordering::Relaxed) {
                    return; // the wake-up connection itself lands here
                }
                uncertain_obs::counter!("server.conns_total").inc();
                let n = shared.conns.fetch_add(1, Ordering::Relaxed) + 1;
                uncertain_obs::gauge!("server.connections").set(n as f64);
                let conn_shared = Arc::clone(shared);
                let spawned = std::thread::Builder::new()
                    .name("unc-conn".into())
                    .spawn(move || conn::serve_conn(&conn_shared, stream));
                if spawned.is_err() {
                    // Thread exhaustion: count the connection back out and
                    // drop the socket (the peer sees a close, not a hang).
                    let n = shared.conns.fetch_sub(1, Ordering::Relaxed) - 1;
                    uncertain_obs::gauge!("server.connections").set(n as f64);
                }
            }
            Err(_) => {
                if shared.shutdown.load(Ordering::Relaxed) {
                    return;
                }
                // Transient accept errors (EMFILE, ECONNABORTED): back off
                // briefly instead of spinning.
                std::thread::sleep(Duration::from_millis(10));
            }
        }
    }
}

/// The batcher: wait for the first query, hold the window open for
/// stragglers, run the batch, route replies. On shutdown it keeps going
/// until the queue is empty (everything admitted gets served).
fn batcher_loop(shared: &Shared) {
    let poll = Duration::from_millis(100);
    loop {
        let mut q = lock_ok(&shared.queue);
        while q.is_empty() {
            if shared.shutdown.load(Ordering::Relaxed) {
                return;
            }
            q = shared
                .queue_cv
                .wait_timeout(q, poll)
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .0;
        }
        // The window: coalesce stragglers until the deadline or the batch
        // cap, whichever first. Under shutdown the window is skipped so
        // draining finishes promptly.
        if !shared.shutdown.load(Ordering::Relaxed) {
            let deadline = Instant::now() + shared.cfg.batch_window;
            while q.len() < shared.cfg.max_batch {
                let now = Instant::now();
                if now >= deadline || shared.shutdown.load(Ordering::Relaxed) {
                    break;
                }
                q = shared
                    .queue_cv
                    .wait_timeout(q, deadline - now)
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .0;
            }
        }
        let take = q.len().min(shared.cfg.max_batch);
        let batch: Vec<Pending> = q.drain(..take).collect();
        uncertain_obs::gauge!("server.queue.depth").set(q.len() as f64);
        drop(q);

        let requests: Vec<QueryRequest> = batch.iter().map(|p| p.req).collect();
        uncertain_obs::histogram!("server.batch.size").record(batch.len() as u64);
        uncertain_obs::counter!("server.batches").inc();
        let t0 = Instant::now();
        let response = shared.engine.run_batch(&requests);
        uncertain_obs::histogram!("server.batch.wall").record(t0.elapsed().as_nanos() as u64);

        let wall = uncertain_obs::histogram!("server.request.wall");
        let served = uncertain_obs::counter!("server.served");
        for (p, res) in batch.into_iter().zip(response.results) {
            let reply = match res {
                QueryResult::Nonzero(ids) => {
                    Reply::Nonzero(ids.into_iter().map(|i| i as u64).collect())
                }
                QueryResult::Ranked { items, guarantee } => Reply::Ranked {
                    items: items.into_iter().map(|(i, pr)| (i as u64, pr)).collect(),
                    guarantee,
                },
                QueryResult::Failed { reason } => {
                    uncertain_obs::counter!("server.failed").inc();
                    Reply::Error {
                        code: ErrorCode::Failed,
                        detail: reason,
                    }
                }
            };
            let frame = encode_reply(p.req_id, &reply);
            wall.record(p.arrived.elapsed().as_nanos() as u64);
            served.inc();
            // A send error means the connection's writer is gone (client
            // hung up mid-flight) — the answer is simply dropped.
            let _ = p.tx.send(frame);
        }
    }
}
