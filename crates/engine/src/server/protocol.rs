//! The length-prefixed binary wire protocol (`unc/1`), std-only.
//!
//! # Frame format
//!
//! Every message — request or reply — is one frame:
//!
//! ```text
//! [ len: u32 LE ][ req_id: u64 LE ][ opcode: u8 ][ body: len-9 bytes ]
//! ```
//!
//! `len` counts everything after the length field (so `len ≥ 9`), all
//! integers and floats are little-endian fixed width, and `req_id` is an
//! opaque client-chosen correlation id echoed verbatim on the reply —
//! clients may pipeline requests and match replies out of order.
//!
//! Request opcodes: [`op::REQ_NONZERO`] `(qx f64, qy f64)`,
//! [`op::REQ_THRESHOLD`] `(qx, qy, tau f64)`, [`op::REQ_TOPK`]
//! `(qx, qy, k u32)`, [`op::REQ_APPLY`] `(count u32, count × update)`
//! where an update is `kind u8` then `Insert = 0: k u32, k × (x, y, w)`,
//! `Remove = 1: id u64`, `Move = 2: id u64, k u32, k × (x, y, w)`, and
//! [`op::REQ_PING`] (empty body).
//!
//! Reply opcodes: [`op::REP_NONZERO`] `(count u32, count × id u64)`,
//! [`op::REP_RANKED`] `(gtag u8, g0 f64, g1 f64, count u32, count ×
//! (id u64, p f64))` with the guarantee encoded as `Exact = 0`,
//! `Additive(g0) = 1`, `Probabilistic{eps: g0, delta: g1} = 2`,
//! [`op::REP_APPLY`] `(epoch u64, live u64, tombstones u64, removed u32,
//! moved u32, missed u32, count u32, count × inserted-id u64)`,
//! [`op::REP_PONG`] (empty), and [`op::REP_ERROR`] `(code u8, len u32,
//! len × utf-8 detail)` with codes in [`ErrorCode`].
//!
//! # Hostile-input contract
//!
//! Decoding never panics and never allocates more than the declared frame
//! length (itself capped): a length prefix over the cap is
//! [`WireError::TooLarge`], a stream ending mid-frame is
//! [`WireError::Truncated`], an unknown opcode is
//! [`WireError::BadOpcode`], and any body that is too short, too long,
//! non-finite where a coordinate/weight is required, or over a count cap
//! is [`WireError::Malformed`]. A clean close *between* frames is
//! [`WireError::Eof`]. The server maps these to typed
//! [`ErrorCode`] replies or a clean close — see [`super`] for which.

use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use uncertain_geom::Point;
use uncertain_nn::model::DiscreteUncertainPoint;
use uncertain_nn::queries::Guarantee;

use crate::{QueryRequest, Update};

/// Cap on *request* frames the server will read (length field, bytes
/// after the `u32`). Requests are small; anything larger is hostile or a
/// framing desync.
pub const REQUEST_FRAME_MAX: u32 = 1 << 20;
/// Cap on *reply* frames the client will read. Replies carry result sets
/// (up to one id + probability per live site), so the cap is generous.
pub const REPLY_FRAME_MAX: u32 = 1 << 26;
/// Cap on updates per `APPLY` frame.
pub const MAX_APPLY_UPDATES: u32 = 65_536;
/// Cap on locations per uncertain point on the wire.
pub const MAX_WIRE_LOCATIONS: u32 = 4_096;
/// Minimum frame length: `req_id` + `opcode`.
pub const FRAME_HEADER: u32 = 9;

/// Opcode bytes. Requests have the high bit clear, replies set.
pub mod op {
    pub const REQ_NONZERO: u8 = 0x01;
    pub const REQ_THRESHOLD: u8 = 0x02;
    pub const REQ_TOPK: u8 = 0x03;
    pub const REQ_APPLY: u8 = 0x04;
    pub const REQ_PING: u8 = 0x05;

    pub const REP_NONZERO: u8 = 0x81;
    pub const REP_RANKED: u8 = 0x82;
    pub const REP_APPLY: u8 = 0x84;
    pub const REP_PONG: u8 = 0x85;
    pub const REP_ERROR: u8 = 0xEE;
}

/// Typed error codes carried by [`op::REP_ERROR`] replies.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ErrorCode {
    /// Admission control shed the request: the batch queue is at its
    /// depth bound. Retry with backoff; the connection stays open.
    Shed = 1,
    /// The frame's body did not decode for its opcode (wrong length,
    /// non-finite coordinate, count over cap). The connection stays open
    /// (framing is intact).
    Malformed = 2,
    /// The length prefix exceeded [`REQUEST_FRAME_MAX`]. The connection
    /// is closed after this reply (the stream cannot be resynced).
    TooLarge = 3,
    /// Unknown opcode — protocol mismatch. Connection closed after the
    /// reply.
    BadOpcode = 4,
    /// The request's evaluation failed server-side (panic-isolated; see
    /// `QueryResult::Failed`). The connection stays open.
    Failed = 5,
    /// The server is shutting down and will not serve this request.
    Shutdown = 6,
}

impl ErrorCode {
    pub fn from_u8(b: u8) -> Option<ErrorCode> {
        Some(match b {
            1 => ErrorCode::Shed,
            2 => ErrorCode::Malformed,
            3 => ErrorCode::TooLarge,
            4 => ErrorCode::BadOpcode,
            5 => ErrorCode::Failed,
            6 => ErrorCode::Shutdown,
            _ => return None,
        })
    }
}

/// One client→server message.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    Query(QueryRequest),
    Apply(Vec<Update>),
    Ping,
}

/// One server→client message.
#[derive(Clone, Debug, PartialEq)]
pub enum Reply {
    Nonzero(Vec<u64>),
    Ranked {
        items: Vec<(u64, f64)>,
        guarantee: Guarantee,
    },
    Apply {
        epoch: u64,
        live: u64,
        tombstones: u64,
        removed: u32,
        moved: u32,
        missed: u32,
        inserted: Vec<u64>,
    },
    Pong,
    Error {
        code: ErrorCode,
        detail: String,
    },
}

/// Decode-side failures. `Eof` is the one non-error: a clean close
/// between frames.
#[derive(Debug)]
pub enum WireError {
    /// Clean close between frames.
    Eof,
    Io(io::Error),
    /// Length prefix over the reader's cap (the offending length).
    TooLarge(u32),
    /// Stream ended mid-frame.
    Truncated,
    /// Unknown opcode.
    BadOpcode(u8),
    /// Body failed validation for its opcode.
    Malformed(&'static str),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Eof => write!(f, "clean close"),
            WireError::Io(e) => write!(f, "i/o error: {e}"),
            WireError::TooLarge(n) => write!(f, "frame length {n} over cap"),
            WireError::Truncated => write!(f, "stream ended mid-frame"),
            WireError::BadOpcode(b) => write!(f, "unknown opcode {b:#04x}"),
            WireError::Malformed(why) => write!(f, "malformed body: {why}"),
        }
    }
}

impl From<io::Error> for WireError {
    fn from(e: io::Error) -> Self {
        WireError::Io(e)
    }
}

// --- encoding -------------------------------------------------------------

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(buf: &mut Vec<u8>, v: f64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_point_weights(buf: &mut Vec<u8>, p: &DiscreteUncertainPoint) {
    put_u32(buf, p.k() as u32);
    for (loc, w) in p.locations().iter().zip(p.weights()) {
        put_f64(buf, loc.x);
        put_f64(buf, loc.y);
        put_f64(buf, *w);
    }
}

/// Assembles one complete frame: length prefix, id, opcode, body.
pub fn frame(req_id: u64, opcode: u8, body: &[u8]) -> Vec<u8> {
    let len = FRAME_HEADER + body.len() as u32;
    let mut out = Vec::with_capacity(4 + len as usize);
    put_u32(&mut out, len);
    put_u64(&mut out, req_id);
    out.push(opcode);
    out.extend_from_slice(body);
    out
}

/// Encodes a request frame.
pub fn encode_request(req_id: u64, req: &Request) -> Vec<u8> {
    let mut body = Vec::new();
    let opcode = match req {
        Request::Query(QueryRequest::Nonzero { q }) => {
            put_f64(&mut body, q.x);
            put_f64(&mut body, q.y);
            op::REQ_NONZERO
        }
        Request::Query(QueryRequest::Threshold { q, tau }) => {
            put_f64(&mut body, q.x);
            put_f64(&mut body, q.y);
            put_f64(&mut body, *tau);
            op::REQ_THRESHOLD
        }
        Request::Query(QueryRequest::TopK { q, k }) => {
            put_f64(&mut body, q.x);
            put_f64(&mut body, q.y);
            put_u32(&mut body, *k as u32);
            op::REQ_TOPK
        }
        Request::Apply(updates) => {
            put_u32(&mut body, updates.len() as u32);
            for u in updates {
                match u {
                    Update::Insert(p) => {
                        body.push(0);
                        put_point_weights(&mut body, p);
                    }
                    Update::Remove(id) => {
                        body.push(1);
                        put_u64(&mut body, *id as u64);
                    }
                    Update::Move { id, to } => {
                        body.push(2);
                        put_u64(&mut body, *id as u64);
                        put_point_weights(&mut body, to);
                    }
                }
            }
            op::REQ_APPLY
        }
        Request::Ping => op::REQ_PING,
    };
    frame(req_id, opcode, &body)
}

/// Encodes a reply frame.
pub fn encode_reply(req_id: u64, rep: &Reply) -> Vec<u8> {
    let mut body = Vec::new();
    let opcode = match rep {
        Reply::Nonzero(ids) => {
            put_u32(&mut body, ids.len() as u32);
            for id in ids {
                put_u64(&mut body, *id);
            }
            op::REP_NONZERO
        }
        Reply::Ranked { items, guarantee } => {
            let (tag, g0, g1) = match *guarantee {
                Guarantee::Exact => (0u8, 0.0, 0.0),
                Guarantee::Additive(e) => (1, e, 0.0),
                Guarantee::Probabilistic { eps, delta } => (2, eps, delta),
            };
            body.push(tag);
            put_f64(&mut body, g0);
            put_f64(&mut body, g1);
            put_u32(&mut body, items.len() as u32);
            for (id, p) in items {
                put_u64(&mut body, *id);
                put_f64(&mut body, *p);
            }
            op::REP_RANKED
        }
        Reply::Apply {
            epoch,
            live,
            tombstones,
            removed,
            moved,
            missed,
            inserted,
        } => {
            put_u64(&mut body, *epoch);
            put_u64(&mut body, *live);
            put_u64(&mut body, *tombstones);
            put_u32(&mut body, *removed);
            put_u32(&mut body, *moved);
            put_u32(&mut body, *missed);
            put_u32(&mut body, inserted.len() as u32);
            for id in inserted {
                put_u64(&mut body, *id);
            }
            op::REP_APPLY
        }
        Reply::Pong => op::REP_PONG,
        Reply::Error { code, detail } => {
            body.push(*code as u8);
            let bytes = detail.as_bytes();
            put_u32(&mut body, bytes.len() as u32);
            body.extend_from_slice(bytes);
            op::REP_ERROR
        }
    };
    frame(req_id, opcode, &body)
}

// --- decoding -------------------------------------------------------------

/// Bounds-checked little-endian cursor over a frame body.
struct Cur<'a> {
    b: &'a [u8],
    pos: usize,
}

impl<'a> Cur<'a> {
    fn new(b: &'a [u8]) -> Self {
        Cur { b, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.b.len())
            .ok_or(WireError::Malformed("body shorter than declared fields"))?;
        let s = &self.b[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// A coordinate/weight/threshold: any bit pattern decodes, but only
    /// finite values are admitted — NaN/∞ here would otherwise ride into
    /// kernels whose comparisons assume a total order.
    fn finite(&mut self, what: &'static str) -> Result<f64, WireError> {
        let v = self.f64()?;
        if v.is_finite() {
            Ok(v)
        } else {
            Err(WireError::Malformed(what))
        }
    }

    fn done(&self) -> Result<(), WireError> {
        if self.pos == self.b.len() {
            Ok(())
        } else {
            Err(WireError::Malformed("trailing bytes after body"))
        }
    }
}

fn read_point(c: &mut Cur) -> Result<Point, WireError> {
    let x = c.finite("x coordinate")?;
    let y = c.finite("y coordinate")?;
    Ok(Point::new(x, y))
}

fn read_uncertain_point(c: &mut Cur) -> Result<DiscreteUncertainPoint, WireError> {
    let k = c.u32()?;
    if k == 0 || k > MAX_WIRE_LOCATIONS {
        return Err(WireError::Malformed("location count out of range"));
    }
    let mut locations = Vec::with_capacity(k as usize);
    let mut weights = Vec::with_capacity(k as usize);
    for _ in 0..k {
        locations.push(read_point(c)?);
        let w = c.finite("weight")?;
        if w <= 0.0 {
            return Err(WireError::Malformed("non-positive weight"));
        }
        weights.push(w);
    }
    Ok(DiscreteUncertainPoint::new(locations, weights))
}

/// Decodes a request body for `opcode`.
pub fn decode_request(opcode: u8, body: &[u8]) -> Result<Request, WireError> {
    let mut c = Cur::new(body);
    let req = match opcode {
        op::REQ_NONZERO => Request::Query(QueryRequest::Nonzero {
            q: read_point(&mut c)?,
        }),
        op::REQ_THRESHOLD => {
            let q = read_point(&mut c)?;
            let tau = c.finite("tau")?;
            Request::Query(QueryRequest::Threshold { q, tau })
        }
        op::REQ_TOPK => {
            let q = read_point(&mut c)?;
            let k = c.u32()? as usize;
            Request::Query(QueryRequest::TopK { q, k })
        }
        op::REQ_APPLY => {
            let count = c.u32()?;
            if count > MAX_APPLY_UPDATES {
                return Err(WireError::Malformed("update count over cap"));
            }
            let mut updates = Vec::with_capacity(count.min(1024) as usize);
            for _ in 0..count {
                let u = match c.u8()? {
                    0 => Update::Insert(read_uncertain_point(&mut c)?),
                    1 => Update::Remove(c.u64()? as usize),
                    2 => {
                        let id = c.u64()? as usize;
                        Update::Move {
                            id,
                            to: read_uncertain_point(&mut c)?,
                        }
                    }
                    _ => return Err(WireError::Malformed("unknown update kind")),
                };
                updates.push(u);
            }
            Request::Apply(updates)
        }
        op::REQ_PING => Request::Ping,
        other => return Err(WireError::BadOpcode(other)),
    };
    c.done()?;
    Ok(req)
}

/// Decodes a reply body for `opcode` (the client side of the codec).
pub fn decode_reply(opcode: u8, body: &[u8]) -> Result<Reply, WireError> {
    let mut c = Cur::new(body);
    let rep = match opcode {
        op::REP_NONZERO => {
            let count = c.u32()? as usize;
            let mut ids = Vec::with_capacity(count.min(1 << 16));
            for _ in 0..count {
                ids.push(c.u64()?);
            }
            Reply::Nonzero(ids)
        }
        op::REP_RANKED => {
            let tag = c.u8()?;
            let g0 = c.f64()?;
            let g1 = c.f64()?;
            let guarantee = match tag {
                0 => Guarantee::Exact,
                1 => Guarantee::Additive(g0),
                2 => Guarantee::Probabilistic { eps: g0, delta: g1 },
                _ => return Err(WireError::Malformed("unknown guarantee tag")),
            };
            let count = c.u32()? as usize;
            let mut items = Vec::with_capacity(count.min(1 << 16));
            for _ in 0..count {
                let id = c.u64()?;
                let p = c.f64()?;
                items.push((id, p));
            }
            Reply::Ranked { items, guarantee }
        }
        op::REP_APPLY => {
            let epoch = c.u64()?;
            let live = c.u64()?;
            let tombstones = c.u64()?;
            let removed = c.u32()?;
            let moved = c.u32()?;
            let missed = c.u32()?;
            let count = c.u32()? as usize;
            let mut inserted = Vec::with_capacity(count.min(1 << 16));
            for _ in 0..count {
                inserted.push(c.u64()?);
            }
            Reply::Apply {
                epoch,
                live,
                tombstones,
                removed,
                moved,
                missed,
                inserted,
            }
        }
        op::REP_PONG => Reply::Pong,
        op::REP_ERROR => {
            let code =
                ErrorCode::from_u8(c.u8()?).ok_or(WireError::Malformed("unknown error code"))?;
            let len = c.u32()? as usize;
            let bytes = c.take(len)?;
            let detail = String::from_utf8_lossy(bytes).into_owned();
            Reply::Error { code, detail }
        }
        other => return Err(WireError::BadOpcode(other)),
    };
    c.done()?;
    Ok(rep)
}

// --- framed reading -------------------------------------------------------

/// One decoded frame header + raw body.
pub struct RawFrame {
    pub req_id: u64,
    pub opcode: u8,
    pub body: Vec<u8>,
}

/// Reads exactly `buf.len()` bytes. `eof_is_clean` says whether an EOF on
/// the *first* byte is a clean close ([`WireError::Eof`]) or a truncation.
/// `io::ErrorKind::WouldBlock`/`TimedOut` (from a read timeout used to
/// poll shutdown flags) are surfaced as `Io` for the caller to retry.
fn read_full(r: &mut impl Read, buf: &mut [u8], eof_is_clean: bool) -> Result<(), WireError> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => {
                return Err(if eof_is_clean && filled == 0 {
                    WireError::Eof
                } else {
                    WireError::Truncated
                });
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e)
                if filled == 0
                    && eof_is_clean
                    && (e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut) =>
            {
                return Err(WireError::Io(e));
            }
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                // Mid-frame timeout: keep waiting for the rest of the
                // frame (the caller's shutdown poll only applies between
                // frames; a mid-frame stall is resolved by the peer
                // sending, closing, or the OS tearing the socket down).
                continue;
            }
            Err(e) => return Err(WireError::Io(e)),
        }
    }
    Ok(())
}

/// Reads one frame, enforcing `max_len` on the length prefix. On
/// `TooLarge` the stream is desynced — callers must close after replying.
pub fn read_frame(r: &mut impl Read, max_len: u32) -> Result<RawFrame, WireError> {
    let mut len4 = [0u8; 4];
    read_full(r, &mut len4, true)?;
    let len = u32::from_le_bytes(len4);
    if len < FRAME_HEADER {
        return Err(WireError::Malformed("frame length below header size"));
    }
    if len > max_len {
        return Err(WireError::TooLarge(len));
    }
    let mut head = [0u8; FRAME_HEADER as usize];
    read_full(r, &mut head, false)?;
    let req_id = u64::from_le_bytes(head[..8].try_into().unwrap());
    let opcode = head[8];
    let mut body = vec![0u8; (len - FRAME_HEADER) as usize];
    read_full(r, &mut body, false)?;
    Ok(RawFrame {
        req_id,
        opcode,
        body,
    })
}

// --- client ---------------------------------------------------------------

/// A minimal synchronous client for the protocol. Also the building block
/// of the load generator's pipelined open-loop mode ([`Client::send`] +
/// [`Client::recv`] on the same connection from two threads via
/// [`Client::split`]).
pub struct Client {
    stream: TcpStream,
    next_id: u64,
}

impl Client {
    /// Connects to `addr` (e.g. `"127.0.0.1:7401"`) with `TCP_NODELAY`
    /// (point queries are latency-bound, not bandwidth-bound).
    pub fn connect(addr: &str) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Client { stream, next_id: 1 })
    }

    /// [`Client::connect`] with retry until `deadline` — the standard way
    /// to wait for a server that is still binding its listener.
    pub fn connect_retry(addr: &str, wait: Duration) -> io::Result<Client> {
        let deadline = Instant::now() + wait;
        loop {
            match Client::connect(addr) {
                Ok(c) => return Ok(c),
                Err(e) if Instant::now() >= deadline => return Err(e),
                Err(_) => std::thread::sleep(Duration::from_millis(20)),
            }
        }
    }

    /// Splits into independently-owned reader and writer halves sharing
    /// the one connection (both are `try_clone`s of the socket).
    pub fn split(self) -> io::Result<(ClientSender, ClientReceiver)> {
        let w = self.stream.try_clone()?;
        Ok((
            ClientSender {
                stream: w,
                next_id: self.next_id,
            },
            ClientReceiver {
                stream: self.stream,
            },
        ))
    }

    /// Sends `req`, returning the request id to match the reply with.
    pub fn send(&mut self, req: &Request) -> io::Result<u64> {
        let id = self.next_id;
        self.next_id += 1;
        self.stream.write_all(&encode_request(id, req))?;
        Ok(id)
    }

    /// Receives the next reply frame, whatever its id.
    pub fn recv(&mut self) -> Result<(u64, Reply), WireError> {
        let f = read_frame(&mut self.stream, REPLY_FRAME_MAX)?;
        Ok((f.req_id, decode_reply(f.opcode, &f.body)?))
    }

    /// Send + receive-until-matching-id (out-of-order replies to *other*
    /// ids are discarded; with one outstanding call there are none).
    pub fn call(&mut self, req: &Request) -> Result<Reply, WireError> {
        let id = self.send(req)?;
        loop {
            let (rid, rep) = self.recv()?;
            if rid == id {
                return Ok(rep);
            }
        }
    }
}

/// Write half of a split [`Client`].
pub struct ClientSender {
    stream: TcpStream,
    next_id: u64,
}

impl ClientSender {
    pub fn send(&mut self, req: &Request) -> io::Result<u64> {
        let id = self.next_id;
        self.next_id += 1;
        self.stream.write_all(&encode_request(id, req))?;
        Ok(id)
    }

    /// Half-closes the write direction (the server sees a clean EOF after
    /// serving what was sent).
    pub fn finish(&mut self) {
        let _ = self.stream.shutdown(std::net::Shutdown::Write);
    }
}

/// Read half of a split [`Client`].
pub struct ClientReceiver {
    stream: TcpStream,
}

impl ClientReceiver {
    pub fn recv(&mut self) -> Result<(u64, Reply), WireError> {
        let f = read_frame(&mut self.stream, REPLY_FRAME_MAX)?;
        Ok((f.req_id, decode_reply(f.opcode, &f.body)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_request(req: Request) {
        let bytes = encode_request(7, &req);
        let f = read_frame(&mut &bytes[..], REQUEST_FRAME_MAX).unwrap();
        assert_eq!(f.req_id, 7);
        assert_eq!(decode_request(f.opcode, &f.body).unwrap(), req);
    }

    fn roundtrip_reply(rep: Reply) {
        let bytes = encode_reply(9, &rep);
        let f = read_frame(&mut &bytes[..], REPLY_FRAME_MAX).unwrap();
        assert_eq!(f.req_id, 9);
        assert_eq!(decode_reply(f.opcode, &f.body).unwrap(), rep);
    }

    #[test]
    fn requests_roundtrip() {
        roundtrip_request(Request::Query(QueryRequest::Nonzero {
            q: Point::new(1.5, -2.25),
        }));
        roundtrip_request(Request::Query(QueryRequest::Threshold {
            q: Point::new(0.0, 4.0),
            tau: 0.25,
        }));
        roundtrip_request(Request::Query(QueryRequest::TopK {
            q: Point::new(-3.0, 8.0),
            k: 5,
        }));
        roundtrip_request(Request::Ping);
        roundtrip_request(Request::Apply(vec![
            Update::Insert(DiscreteUncertainPoint::uniform(vec![
                Point::new(0.0, 1.0),
                Point::new(2.0, 3.0),
            ])),
            Update::Remove(17),
            Update::Move {
                id: 4,
                to: DiscreteUncertainPoint::certain(Point::new(9.0, 9.0)),
            },
        ]));
    }

    #[test]
    fn replies_roundtrip() {
        roundtrip_reply(Reply::Nonzero(vec![1, 5, 9]));
        roundtrip_reply(Reply::Ranked {
            items: vec![(3, 0.5), (1, 0.25)],
            guarantee: Guarantee::Exact,
        });
        roundtrip_reply(Reply::Ranked {
            items: vec![],
            guarantee: Guarantee::Probabilistic {
                eps: 0.01,
                delta: 0.001,
            },
        });
        roundtrip_reply(Reply::Apply {
            epoch: 3,
            live: 100,
            tombstones: 7,
            removed: 2,
            moved: 1,
            missed: 0,
            inserted: vec![40, 41],
        });
        roundtrip_reply(Reply::Pong);
        roundtrip_reply(Reply::Error {
            code: ErrorCode::Shed,
            detail: "queue full".into(),
        });
    }

    #[test]
    fn hostile_bodies_are_typed_errors_not_panics() {
        // Truncated body for the opcode.
        assert!(matches!(
            decode_request(op::REQ_NONZERO, &[0u8; 3]),
            Err(WireError::Malformed(_))
        ));
        // Trailing garbage after a valid body.
        let mut body = Vec::new();
        put_f64(&mut body, 1.0);
        put_f64(&mut body, 2.0);
        body.push(0xAA);
        assert!(matches!(
            decode_request(op::REQ_NONZERO, &body),
            Err(WireError::Malformed(_))
        ));
        // NaN coordinate.
        let mut body = Vec::new();
        put_f64(&mut body, f64::NAN);
        put_f64(&mut body, 2.0);
        assert!(matches!(
            decode_request(op::REQ_NONZERO, &body),
            Err(WireError::Malformed(_))
        ));
        // Unknown opcode.
        assert!(matches!(
            decode_request(0x7F, &[]),
            Err(WireError::BadOpcode(0x7F))
        ));
        // Update count over cap: declares u32::MAX updates with an empty
        // tail — must fail fast, not try to allocate.
        let mut body = Vec::new();
        put_u32(&mut body, u32::MAX);
        assert!(matches!(
            decode_request(op::REQ_APPLY, &body),
            Err(WireError::Malformed(_))
        ));
        // Non-positive weight in an insert.
        let mut body = Vec::new();
        put_u32(&mut body, 1); // one update
        body.push(0); // insert
        put_u32(&mut body, 1); // one location
        put_f64(&mut body, 0.0);
        put_f64(&mut body, 0.0);
        put_f64(&mut body, -1.0); // weight
        assert!(matches!(
            decode_request(op::REQ_APPLY, &body),
            Err(WireError::Malformed(_))
        ));
    }

    #[test]
    fn framing_errors_are_classified() {
        // Oversized length prefix.
        let mut bytes = Vec::new();
        put_u32(&mut bytes, REQUEST_FRAME_MAX + 1);
        assert!(matches!(
            read_frame(&mut &bytes[..], REQUEST_FRAME_MAX),
            Err(WireError::TooLarge(_))
        ));
        // Length below the fixed header.
        let mut bytes = Vec::new();
        put_u32(&mut bytes, 3);
        assert!(matches!(
            read_frame(&mut &bytes[..], REQUEST_FRAME_MAX),
            Err(WireError::Malformed(_))
        ));
        // Clean EOF between frames vs truncation mid-frame.
        assert!(matches!(
            read_frame(&mut &[][..], REQUEST_FRAME_MAX),
            Err(WireError::Eof)
        ));
        let mut bytes = Vec::new();
        put_u32(&mut bytes, 100);
        bytes.extend_from_slice(&[1, 2, 3]);
        assert!(matches!(
            read_frame(&mut &bytes[..], REQUEST_FRAME_MAX),
            Err(WireError::Truncated)
        ));
    }
}
