//! [`ShardedEngine`]: the multi-writer serving engine.
//!
//! The monolithic [`Engine`](crate::Engine) funnels every mutation through
//! one `DynamicSet` writer: concurrent `apply` calls serialize, and each
//! effective apply clones the whole structure (O(live) entries + handle
//! map) before publishing. This module partitions the site universe across
//! `S` independent shards, each shard owning its own Bentley–Saxe
//! [`DynamicSet`] behind its own writer mutex:
//!
//! * **applies to disjoint shards commit concurrently** — sub-batches run
//!   in parallel on the worker pool, each under only its shard's writer
//!   lock, and an apply clones only the shards it touched (O(live/S) per
//!   touched shard instead of O(live) for the whole set);
//! * **reads scatter-gather, bit-identically**: `NN≠0` folds per-shard
//!   two-min-Δ triples into the global Lemma 2.1 threshold exactly as
//!   per-bucket merging does within one set, quantification k-way-merges
//!   per-shard `SweepSource` streams into one Eq. (2) sweep, and
//!   expected-NN folds per-shard branch-and-bound minima (see
//!   [`ShardedReader`] for the proofs). Answers are **bit-identical** to
//!   the monolithic engine at every shard count — the differential suite
//!   in `tests/sharded_differential.rs` enforces this at S ∈ {1, 3, 8};
//! * **epoch vectors publish atomically**: each shard keeps its own epoch
//!   (bumped only when an apply touches it), and every apply publishes one
//!   immutable [`ShardedCore`] snapshot carrying the whole epoch vector
//!   plus a monotone publish *generation* — in-flight readers keep the
//!   snapshot they started on, and a reader can never observe some of a
//!   straddling batch's shards updated and others not
//!   (`tests/engine_epochs.rs` races this).
//!
//! # Partitioning
//!
//! *Which* shard owns a site is the [`Partitioner`]'s decision:
//!
//! * [`PartitionerKind::Hash`] (the default) assigns by a multiplicative
//!   hash of the stable [`SiteId`] ([`shard_of`]). Routing is stateless, so
//!   concurrent applies overlap fully — but sites land without regard to
//!   geometry, every shard's support box covers the whole cloud, and every
//!   query fans out to all `S` shards.
//! * [`PartitionerKind::Spatial`] kd-splits the live site cloud into `S`
//!   region-disjoint shards (median cuts on the wider axis, leaf counts
//!   proportional to `S`). Each shard's [`DynamicSet::support_aabb`] then
//!   covers only its own region, and the [`ShardedReader`]'s box pruning
//!   skips shards whose box lies outside the query's certified disk —
//!   clustered queries touch `≪ S` shards (experiment E33 measures the
//!   fan-out). The price: routing is stateful (a directory of live ids),
//!   so spatial applies serialize on the partitioner lock. When churn
//!   skews the per-shard live counts past
//!   [`EngineConfig::rebalance_ratio`], the apply that crossed the
//!   threshold re-splits the cloud and migrates the straddling sites as a
//!   normal remove+insert round — published **atomically in the same
//!   generation** as the user's batch, so no reader ever observes a site
//!   in zero or two shards (`tests/engine_epochs.rs` races a census over
//!   this).
//!
//! Cache keys are stamped with the generation (which advances exactly when
//! the shard-epoch vector changes), so stale entries become unreachable
//! without a flush — the same trick the monolithic engine plays with its
//! scalar epoch.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock, RwLock};
use std::time::{Duration, Instant};

use uncertain_geom::predicates::predicate_stats;
use uncertain_geom::Point;
pub use uncertain_nn::dynamic::shard::shard_of;
use uncertain_nn::dynamic::shard::ShardedReader;
use uncertain_nn::dynamic::{DynamicSet, RebuildStats, SiteId, Update, UpdateOutcome};
use uncertain_nn::model::{DiscreteSet, DiscreteUncertainPoint};
use uncertain_nn::nonzero::nonzero_nn_discrete;
use uncertain_nn::quantification::exact::quantification_discrete;
use uncertain_nn::queries::Guarantee;
use uncertain_spatial::soa::kernel_stats;

use crate::cache::{CacheKey, CachedValue, QuantTag, ResultCache};
use crate::planner::{self, NonzeroPlan, PlannerInputs, QuantPlan};
use crate::pool::{resolve_threads, ThreadPool};
use crate::{
    snap, snap_center, snap_radius, BatchCounters, BatchPlan, BatchResponse, EngineConfig,
    ExecStats, QueryRequest, QueryResult, ShardStat,
};

/// Environment override for the shard count (mirrors
/// [`THREADS_ENV`](crate::THREADS_ENV) for workers).
pub const SHARDS_ENV: &str = "UNC_ENGINE_SHARDS";

/// Environment override for [`EngineConfig::partitioner`]: `hash` or
/// `spatial` (case-insensitive). Invalid values warn on stderr and fall
/// back to the config value.
pub const PARTITIONER_ENV: &str = "UNC_ENGINE_PARTITIONER";

/// Environment override for [`EngineConfig::rebalance_ratio`] (`0` turns
/// rebalancing off).
pub const REBALANCE_ENV: &str = "UNC_ENGINE_REBALANCE";

/// Resolved shard count: `UNC_ENGINE_SHARDS` env > `requested` > detected
/// parallelism; always at least 1.
pub fn resolve_shards(requested: Option<usize>) -> usize {
    // An invalid value warns once on stderr (naming the variable and the
    // fallback) instead of silently misconfiguring the deployment.
    if let Some(n) =
        uncertain_obs::env_parse::<usize>(SHARDS_ENV, "the config/detected shard count")
    {
        return n.max(1);
    }
    requested
        .or_else(|| std::thread::available_parallelism().ok().map(|n| n.get()))
        .unwrap_or(1)
        .max(1)
}

/// Resolved partitioner: `UNC_ENGINE_PARTITIONER` env > `requested`.
pub fn resolve_partitioner(requested: PartitionerKind) -> PartitionerKind {
    match std::env::var(PARTITIONER_ENV) {
        Ok(v) => match v.to_ascii_lowercase().as_str() {
            "hash" => PartitionerKind::Hash,
            "spatial" => PartitionerKind::Spatial,
            _ => {
                eprintln!(
                    "warning: invalid {PARTITIONER_ENV}={v:?} (expected \"hash\" or \
                     \"spatial\"); using the configured partitioner"
                );
                requested
            }
        },
        Err(_) => requested,
    }
}

/// Resolved rebalance ratio: `UNC_ENGINE_REBALANCE` env > `requested`.
pub fn resolve_rebalance(requested: f64) -> f64 {
    uncertain_obs::env_parse::<f64>(REBALANCE_ENV, "the config rebalance ratio")
        .unwrap_or(requested)
}

/// How a [`ShardedEngine`] assigns sites to shards.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum PartitionerKind {
    /// Stable-id multiplicative hash ([`shard_of`]). Stateless routing,
    /// fully concurrent applies, no read-side pruning (every shard's
    /// support box covers the whole cloud).
    #[default]
    Hash,
    /// kd-split of the live site cloud into region-disjoint shards.
    /// Clustered queries touch few shards; applies serialize and may
    /// trigger rebalancing migrations under skew.
    Spatial,
}

/// One site the rebalancer decided to move between shards.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Migration {
    pub id: SiteId,
    pub from: usize,
    pub to: usize,
}

/// The shard-assignment policy. `route_*` is consulted once per update
/// *before* dispatch; a stateful implementation (spatial) mirrors site
/// liveness in its own directory, which stays exact because such
/// implementations also demand whole-apply serialization
/// ([`Partitioner::serialize_applies`]).
pub trait Partitioner: Send {
    fn kind(&self) -> PartitionerKind;
    fn num_shards(&self) -> usize;
    /// Shard for a new site `id` whose representative location is `rep`.
    fn route_insert(&mut self, id: SiteId, rep: Point) -> usize;
    /// Shard holding `id`, or `None` when the router already knows the id
    /// is dead (counted as a miss without touching any shard). A stateless
    /// router returns `Some` unconditionally and lets the shard decide.
    fn route_remove(&mut self, id: SiteId) -> Option<usize>;
    /// `(old shard, new shard)` for a move of `id` to `rep`; `None` = miss.
    /// When the two differ the caller rewrites the move as a remove on the
    /// old shard plus an insert (with the same id) on the new one.
    fn route_move(&mut self, id: SiteId, rep: Point) -> Option<(usize, usize)>;
    /// Whether `apply` must hold the partitioner lock end-to-end (routing
    /// through publication). Stateful routers require it so the directory,
    /// the shard masters, and the published snapshot can never disagree.
    fn serialize_applies(&self) -> bool;
    /// Whether the live-count imbalance warrants a rebalance now.
    fn needs_rebalance(&self) -> bool;
    /// Recomputes the partition over the full live cloud and returns the
    /// sites whose shard changed. The router's directory is updated to the
    /// *new* assignment before returning — the caller must then execute
    /// every returned migration (remove at `from`, insert at `to`).
    fn plan_rebalance(&mut self, live: &[(SiteId, Point)]) -> Vec<Migration>;
}

/// The stateless id-hash policy (PR 8 behavior, bit-compatible).
struct HashPartitioner {
    shards: usize,
}

impl Partitioner for HashPartitioner {
    fn kind(&self) -> PartitionerKind {
        PartitionerKind::Hash
    }
    fn num_shards(&self) -> usize {
        self.shards
    }
    fn route_insert(&mut self, id: SiteId, _rep: Point) -> usize {
        shard_of(id, self.shards)
    }
    fn route_remove(&mut self, id: SiteId) -> Option<usize> {
        Some(shard_of(id, self.shards))
    }
    fn route_move(&mut self, id: SiteId, _rep: Point) -> Option<(usize, usize)> {
        let s = shard_of(id, self.shards);
        Some((s, s))
    }
    fn serialize_applies(&self) -> bool {
        false
    }
    fn needs_rebalance(&self) -> bool {
        false
    }
    fn plan_rebalance(&mut self, _live: &[(SiteId, Point)]) -> Vec<Migration> {
        vec![]
    }
}

/// One node of the spatial partitioner's kd-split. Interior nodes cut the
/// wider axis at a stored `(coordinate, site id)` pair; routing is strict
/// lexicographic comparison on `(key, id)`, so sites stacked on the cut
/// line still partition deterministically and every point routes to
/// exactly one leaf.
enum SplitNode {
    /// Shard index.
    Leaf(usize),
    Split {
        /// Cut on `x` (true) or `y` (false).
        vertical: bool,
        coord: f64,
        /// Tie-breaking id: a site goes low iff
        /// `key < coord || (key == coord && id <= this)`.
        id: SiteId,
        lo: Box<SplitNode>,
        hi: Box<SplitNode>,
    },
}

impl SplitNode {
    fn route(&self, id: SiteId, p: Point) -> usize {
        match self {
            SplitNode::Leaf(s) => *s,
            SplitNode::Split {
                vertical,
                coord,
                id: sid,
                lo,
                hi,
            } => {
                let key = if *vertical { p.x } else { p.y };
                if key < *coord || (key == *coord && id <= *sid) {
                    lo.route(id, p)
                } else {
                    hi.route(id, p)
                }
            }
        }
    }

    /// Builds a `leaves`-leaf split over `sites`, cutting the wider axis so
    /// the low side receives `⌊leaves/2⌋ / leaves` of the sites — leaf
    /// populations come out proportional, which is what clears the
    /// imbalance trigger after a rebalance. Leaves take shard indices in
    /// in-order position (`next_leaf`). An empty slice still produces the
    /// full leaf structure; its cuts route everything high (the sentinel
    /// `(−∞, 0)` compares below every real point).
    fn build(sites: &mut [(SiteId, Point)], leaves: usize, next_leaf: &mut usize) -> SplitNode {
        if leaves == 1 {
            let s = *next_leaf;
            *next_leaf += 1;
            return SplitNode::Leaf(s);
        }
        let lo_leaves = leaves / 2;
        let (mut xlo, mut xhi) = (f64::INFINITY, f64::NEG_INFINITY);
        let (mut ylo, mut yhi) = (f64::INFINITY, f64::NEG_INFINITY);
        for &(_, p) in sites.iter() {
            xlo = xlo.min(p.x);
            xhi = xhi.max(p.x);
            ylo = ylo.min(p.y);
            yhi = yhi.max(p.y);
        }
        let vertical = sites.is_empty() || (xhi - xlo) >= (yhi - ylo);
        let key = |p: Point| if vertical { p.x } else { p.y };
        sites.sort_unstable_by(|a, b| key(a.1).total_cmp(&key(b.1)).then(a.0.cmp(&b.0)));
        let cut = sites.len() * lo_leaves / leaves;
        let (coord, id) = if cut >= 1 {
            (key(sites[cut - 1].1), sites[cut - 1].0)
        } else {
            (f64::NEG_INFINITY, 0)
        };
        let (lo_sites, hi_sites) = sites.split_at_mut(cut);
        SplitNode::Split {
            vertical,
            coord,
            id,
            lo: Box::new(SplitNode::build(lo_sites, lo_leaves, next_leaf)),
            hi: Box::new(SplitNode::build(hi_sites, leaves - lo_leaves, next_leaf)),
        }
    }
}

/// The region-disjoint kd-split policy. Keeps an authoritative directory
/// of every live site's shard (exact because spatial applies serialize on
/// the partitioner lock) plus per-shard live counts for the imbalance
/// trigger.
struct SpatialPartitioner {
    shards: usize,
    /// Max/min live-count ratio past which [`needs_rebalance`] fires;
    /// `≤ 0` disables.
    ratio: f64,
    /// Below this many total live sites the trigger stays quiet — tiny
    /// clouds are trivially imbalanced and migrations would thrash.
    min_live: usize,
    tree: SplitNode,
    dir: HashMap<SiteId, usize>,
    counts: Vec<usize>,
}

impl SpatialPartitioner {
    /// Builds the split over the initial cloud. The caller routes each
    /// initial site through [`route_insert`](Partitioner::route_insert) to
    /// fill the directory (the same code path live inserts take).
    fn new(shards: usize, ratio: f64, cloud: &[(SiteId, Point)]) -> Self {
        let mut sites = cloud.to_vec();
        let mut next_leaf = 0;
        let tree = SplitNode::build(&mut sites, shards, &mut next_leaf);
        SpatialPartitioner {
            shards,
            ratio,
            min_live: 16.max(4 * shards),
            tree,
            dir: HashMap::new(),
            counts: vec![0; shards],
        }
    }
}

impl Partitioner for SpatialPartitioner {
    fn kind(&self) -> PartitionerKind {
        PartitionerKind::Spatial
    }
    fn num_shards(&self) -> usize {
        self.shards
    }
    fn route_insert(&mut self, id: SiteId, rep: Point) -> usize {
        let s = self.tree.route(id, rep);
        self.dir.insert(id, s);
        self.counts[s] += 1;
        s
    }
    fn route_remove(&mut self, id: SiteId) -> Option<usize> {
        let s = self.dir.remove(&id)?;
        self.counts[s] -= 1;
        Some(s)
    }
    fn route_move(&mut self, id: SiteId, rep: Point) -> Option<(usize, usize)> {
        let from = *self.dir.get(&id)?;
        let to = self.tree.route(id, rep);
        if to != from {
            self.dir.insert(id, to);
            self.counts[from] -= 1;
            self.counts[to] += 1;
        }
        Some((from, to))
    }
    fn serialize_applies(&self) -> bool {
        true
    }
    fn needs_rebalance(&self) -> bool {
        if self.shards <= 1 || self.ratio <= 0.0 {
            return false;
        }
        let total: usize = self.counts.iter().sum();
        if total < self.min_live {
            return false;
        }
        let max = *self.counts.iter().max().expect("counts nonempty");
        let min = *self.counts.iter().min().expect("counts nonempty");
        max as f64 >= self.ratio * min.max(1) as f64
    }
    fn plan_rebalance(&mut self, live: &[(SiteId, Point)]) -> Vec<Migration> {
        // Full re-split rather than an incremental boundary nudge: the
        // proportional cuts rebuild every leaf to ±1 of its fair share, so
        // the trigger clears in one round and cannot oscillate; the cost
        // is one O(n log n) sort tree plus only the *straddling* sites as
        // migrations (sites that stayed inside their region keep their
        // leaf because the in-order leaf numbering is stable).
        let mut sites = live.to_vec();
        let mut next_leaf = 0;
        let tree = SplitNode::build(&mut sites, self.shards, &mut next_leaf);
        let mut migs = vec![];
        let mut dir = HashMap::with_capacity(live.len());
        let mut counts = vec![0; self.shards];
        for &(id, p) in live {
            let to = tree.route(id, p);
            counts[to] += 1;
            dir.insert(id, to);
            let from = self.dir.get(&id).copied().unwrap_or(to);
            if from != to {
                migs.push(Migration { id, from, to });
            }
        }
        self.tree = tree;
        self.dir = dir;
        self.counts = counts;
        migs
    }
}

/// The location the partitioner files a site under: its first support
/// location. Any deterministic representative works — partition geometry
/// affects only *where* a site lives (and hence pruning efficiency), never
/// answers, which the differential suite certifies bitwise.
fn rep_point(p: &DiscreteUncertainPoint) -> Point {
    p.locations()[0]
}

/// What one [`ShardedEngine::apply`] call did.
#[derive(Clone, Debug)]
pub struct ShardedApplyReport {
    /// The publish generation the new snapshot serves under (unchanged on
    /// a no-op apply). Monotone across applies; the cache-key "epoch".
    pub generation: u64,
    /// The full per-shard epoch vector after this apply — published
    /// atomically: a concurrent reader sees either all of this apply's
    /// shard epochs or none of them.
    pub shard_epochs: Vec<u64>,
    /// Shards whose epoch this apply bumped (including by a rebalance
    /// round it triggered), ascending.
    pub touched: Vec<usize>,
    /// Ids assigned to the `Insert` updates, in update order.
    pub inserted: Vec<SiteId>,
    pub removed: usize,
    pub moved: usize,
    /// `Remove`/`Move` updates whose id was unknown or already removed.
    pub missed: usize,
    /// Sites this apply's rebalance round migrated between shards (0 when
    /// no rebalance triggered).
    pub migrated: usize,
    /// Live sites across all shards after this apply.
    pub live: usize,
    /// Tombstones still buried across all shards after this apply.
    pub tombstones: usize,
    /// Bucket merges this apply triggered (summed over touched shards,
    /// including rebalance migrations).
    pub merges: u64,
    /// Global compacting rebuilds this apply triggered.
    pub global_rebuilds: u64,
    /// Σ bucket sizes rebuilt during this apply.
    pub sites_rebuilt: u64,
}

/// One shard's mutable master copy. Only `apply` touches it, under the
/// shard's own mutex; readers serve from the immutable snapshots in the
/// current [`ShardedCore`].
struct ShardWriter {
    set: DynamicSet,
    /// Bumped on every effective apply to this shard.
    epoch: u64,
}

/// One immutable snapshot: per-shard set snapshots (shared with in-flight
/// batches via `Arc`), the atomically-published epoch vector, and the
/// usual lazily-materialized flat views.
struct ShardedCore {
    /// Monotone publish counter — advances exactly when the shard-epoch
    /// vector changes, so it is a collision-free cache stamp for the whole
    /// vector.
    generation: u64,
    /// Per-shard epochs, index = shard. Readers observe this vector
    /// atomically (it is immutable within one core).
    epochs: Arc<Vec<u64>>,
    reader: ShardedReader,
    /// Live-site count across shards (cheap shape summary).
    n: usize,
    /// Flat union set / id map / planner shape, materialized lazily by the
    /// first consumer (applies must stay O(batch + carry), exactly like
    /// the monolithic core).
    set: OnceLock<DiscreteSet>,
    ids: OnceLock<Arc<Vec<SiteId>>>,
    shape: OnceLock<(usize, usize, f64)>,
    config: EngineConfig,
    /// Shared across generations; generation-stamped keys keep entries
    /// from crossing snapshots.
    cache: Arc<ResultCache>,
}

impl ShardedCore {
    /// The flat union set, densely indexed in ascending-id order.
    fn set(&self) -> &DiscreteSet {
        self.set.get_or_init(|| self.reader.live_set())
    }

    /// Dense index → stable site id, ascending.
    fn ids(&self) -> &Arc<Vec<SiteId>> {
        self.ids.get_or_init(|| Arc::new(self.reader.live_ids()))
    }

    /// `(total locations, max k, weight spread)` of the live union.
    fn shape(&self) -> (usize, usize, f64) {
        *self.shape.get_or_init(|| self.reader.live_shape())
    }

    /// Per-shard `(epoch, live, tombstones, warm rate)` rows for
    /// [`ExecStats`].
    fn shard_stats(&self) -> Vec<ShardStat> {
        self.reader
            .shards()
            .iter()
            .enumerate()
            .map(|(s, d)| {
                let (warm, cold) = d.quant_summary_state();
                ShardStat {
                    shard: s,
                    epoch: self.epochs[s],
                    live: d.len(),
                    tombstones: d.tombstones(),
                    quant_warm_rate: if warm + cold == 0 {
                        0.0
                    } else {
                        warm as f64 / (warm + cold) as f64
                    },
                }
            })
            .collect()
    }
}

/// The per-batch execution context. Sharded serving only ever runs the
/// partition-independent exact strategies (the planner gates the rest), so
/// there is nothing to lazily build and no `Arc`s to pin: workers read the
/// shared core.
#[derive(Clone, Copy)]
struct SPrepared {
    nonzero: Option<NonzeroPlan>,
    quant: Option<QuantPlan>,
}

/// The sharded serving engine. See the [module docs](self) for the
/// concurrency model, the partitioners, and the bit-identity guarantee.
pub struct ShardedEngine {
    /// Per-shard mutable masters. `Arc` so parallel sub-batch jobs on the
    /// pool can borrow them `'static`-ly.
    writers: Arc<Vec<Mutex<ShardWriter>>>,
    /// The current snapshot; readers clone the `Arc` and drop the lock.
    core: RwLock<Arc<ShardedCore>>,
    /// Serializes snapshot publication (not shard mutation): concurrent
    /// applies run their sub-batches in parallel and only queue here for
    /// the final read-modify-write of the core pointer.
    publish_lock: Mutex<()>,
    /// The shard-assignment policy. Hash routing takes this only for the
    /// routing loop; spatial routing holds it across the whole apply
    /// (dispatch + rebalance + publish) so its directory can never drift
    /// from the masters.
    partitioner: Mutex<Box<dyn Partitioner>>,
    pool: ThreadPool,
    /// Global id allocator: inserts claim ids here *before* partitioning,
    /// so concurrent applies never collide and every id maps to exactly
    /// one shard for its lifetime (between rebalances).
    next_id: AtomicUsize,
    /// Rebalance rounds executed since construction.
    rebalances: AtomicU64,
    /// Scatter-gather feedback for the planner: Σ shards actually visited
    /// and the number of such reads, across all batches. Their ratio is
    /// the expected per-query fan-out the gather cost term uses instead of
    /// the worst-case `S`.
    touched_sum: AtomicU64,
    touched_reads: AtomicU64,
}

/// What one shard's sub-batch did (sent back from pool workers).
struct ShardOutcome {
    shard: usize,
    outcome: UpdateOutcome,
    /// The shard's epoch after the sub-batch (bumped only if effective).
    epoch: u64,
    effective: bool,
    /// Immutable snapshot of the shard taken right after mutation — only
    /// present when effective (ineffective sub-batches change nothing, so
    /// the published snapshot stays valid).
    snap: Option<Arc<DynamicSet>>,
    live: usize,
    tombstones: usize,
    delta: RebuildStats,
}

/// Applies one shard's sub-batch under that shard's writer lock, inside a
/// shard-suffixed span (`engine.apply.shard3`).
fn apply_shard(
    writers: &[Mutex<ShardWriter>],
    shard: usize,
    updates: &[Update],
    insert_ids: &[SiteId],
) -> ShardOutcome {
    let _span = uncertain_obs::span_dyn(&format!("engine.apply.shard{shard}"));
    let mut w = crate::lock_ok(&writers[shard]);
    let before = w.set.stats().rebuild;
    // A fully-missed sub-batch leaves the structure untouched (missed
    // removes/moves mutate nothing, and there are no inserts), so running
    // it directly on the master is safe and needs no pre-check.
    let outcome = w.set.apply_with_insert_ids(updates, insert_ids);
    let effective = !(outcome.inserted.is_empty() && outcome.removed == 0 && outcome.moved == 0);
    let snap = if effective {
        w.epoch += 1;
        Some(Arc::new(w.set.clone()))
    } else {
        None
    };
    ShardOutcome {
        shard,
        epoch: w.epoch,
        effective,
        live: w.set.len(),
        tombstones: w.set.tombstones(),
        delta: w.set.stats().rebuild.since(&before),
        snap,
        outcome,
    }
}

impl ShardedEngine {
    /// Builds a sharded engine over `set`. Sites receive the stable ids
    /// `0..set.len()` in input order (identical to the monolithic engine)
    /// and land in the shard the resolved [`Partitioner`] routes them to;
    /// the shard count resolves via [`resolve_shards`] from
    /// `config.shards`, the partitioner via [`resolve_partitioner`] from
    /// `config.partitioner`.
    pub fn new(set: DiscreteSet, config: EngineConfig) -> Self {
        let shards = resolve_shards(config.shards);
        let threads = resolve_threads(config.threads);
        let n = set.len();
        let mut partitioner: Box<dyn Partitioner> = match resolve_partitioner(config.partitioner) {
            PartitionerKind::Hash => Box::new(HashPartitioner { shards }),
            PartitionerKind::Spatial => {
                let cloud: Vec<(SiteId, Point)> = set
                    .points
                    .iter()
                    .enumerate()
                    .map(|(id, p)| (id, rep_point(p)))
                    .collect();
                Box::new(SpatialPartitioner::new(
                    shards,
                    resolve_rebalance(config.rebalance_ratio),
                    &cloud,
                ))
            }
        };
        // Partition the initial sites through the same routing path live
        // inserts take (filling a spatial partitioner's directory); each
        // shard bulk-loads its slice in one batch (a single Bentley–Saxe
        // carry per shard).
        let mut parts: Vec<(Vec<Update>, Vec<SiteId>)> =
            (0..shards).map(|_| default_part()).collect();
        for (id, p) in set.points.iter().enumerate() {
            let (ups, ids) = &mut parts[partitioner.route_insert(id, rep_point(p))];
            ups.push(Update::Insert(p.clone()));
            ids.push(id);
        }
        let writers: Vec<Mutex<ShardWriter>> = parts
            .into_iter()
            .map(|(ups, ids)| {
                let mut d = DynamicSet::new(config.dynamic);
                d.apply_with_insert_ids(&ups, &ids);
                Mutex::new(ShardWriter { set: d, epoch: 0 })
            })
            .collect();
        let snaps: Vec<Arc<DynamicSet>> = writers
            .iter()
            .map(|w| Arc::new(crate::lock_ok(w).set.clone()))
            .collect();
        let spread = if set.is_empty() { 1.0 } else { set.spread() };
        let core = Arc::new(ShardedCore {
            generation: 0,
            epochs: Arc::new(vec![0; shards]),
            reader: ShardedReader::new(snaps),
            n,
            ids: OnceLock::from(Arc::new((0..n).collect())),
            shape: OnceLock::from((set.total_locations(), set.max_k(), spread)),
            cache: Arc::new(ResultCache::new(config.cache_capacity, config.cache_grid)),
            config,
            set: OnceLock::from(set),
        });
        ShardedEngine {
            writers: Arc::new(writers),
            core: RwLock::new(core),
            publish_lock: Mutex::new(()),
            partitioner: Mutex::new(partitioner),
            pool: ThreadPool::new(threads),
            next_id: AtomicUsize::new(n),
            rebalances: AtomicU64::new(0),
            touched_sum: AtomicU64::new(0),
            touched_reads: AtomicU64::new(0),
        }
    }

    fn snapshot(&self) -> Arc<ShardedCore> {
        crate::read_ok(&self.core).clone()
    }

    /// Resolved shard count.
    pub fn num_shards(&self) -> usize {
        self.writers.len()
    }

    /// Resolved partitioner kind.
    pub fn partitioner_kind(&self) -> PartitionerKind {
        crate::lock_ok(&self.partitioner).kind()
    }

    /// Rebalance rounds executed since construction.
    pub fn rebalances(&self) -> u64 {
        self.rebalances.load(Ordering::Relaxed)
    }

    /// Resolved worker count.
    pub fn threads(&self) -> usize {
        self.pool.len()
    }

    /// The current publish generation (the sharded analog of
    /// [`Engine::epoch`](crate::Engine::epoch); 0 until the first
    /// effective apply).
    pub fn generation(&self) -> u64 {
        self.snapshot().generation
    }

    /// One atomic observation of `(generation, per-shard epoch vector)` —
    /// both read from the same immutable snapshot, never torn across a
    /// concurrent apply's publication.
    pub fn shard_epochs(&self) -> (u64, Vec<u64>) {
        let core = self.snapshot();
        (core.generation, core.epochs.as_ref().clone())
    }

    /// Per-shard `(epoch, live, tombstones, warm rate)` rows of the
    /// current snapshot.
    pub fn shard_stats(&self) -> Vec<ShardStat> {
        self.snapshot().shard_stats()
    }

    /// Per-shard live-id lists, all read from **one** published snapshot —
    /// the observable for the single-ownership invariant: every live site
    /// id appears in exactly one shard's list, in every snapshot, even
    /// while rebalance migrations race (`tests/engine_epochs.rs` asserts
    /// this from racing reader threads).
    pub fn shard_census(&self) -> Vec<Vec<SiteId>> {
        let core = self.snapshot();
        core.reader.shards().iter().map(|d| d.live_ids()).collect()
    }

    /// Live sites across all shards.
    pub fn len(&self) -> usize {
        self.snapshot().n
    }

    /// Whether no sites are live.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The surviving sites, densely in ascending-id order (the same view
    /// the monolithic engine serves).
    pub fn live_set(&self) -> DiscreteSet {
        self.snapshot().set().clone()
    }

    /// Stable ids of the live sites, ascending.
    pub fn site_ids(&self) -> Vec<SiteId> {
        self.snapshot().ids().as_ref().clone()
    }

    /// Current number of cached entries.
    pub fn cache_len(&self) -> usize {
        self.snapshot().cache.len()
    }

    /// Applies a batch of site updates and atomically publishes a new
    /// snapshot carrying the updated shard-epoch vector.
    ///
    /// The batch is partitioned by the configured [`Partitioner`] (inserts
    /// claim their id from the global allocator first, in update order); a
    /// move the router sends across shards is rewritten as a remove on the
    /// old shard plus an insert (same id) on the new one. Sub-batches for
    /// distinct shards run **concurrently** on the worker pool, each under
    /// only its shard's writer lock, and each effective sub-batch clones
    /// only its own shard (O(live/S)). Under `Hash`, concurrent `apply`
    /// calls proceed in parallel when they touch disjoint shards; under
    /// `Spatial` they serialize on the partitioner lock (the directory
    /// must mirror the masters exactly). Publication is a short
    /// read-modify-write of the core pointer with per-shard
    /// monotonic-epoch guards, so racing publications can interleave in
    /// any order without losing or reverting a shard.
    ///
    /// A spatial apply that pushes the live-count imbalance past the
    /// rebalance ratio additionally runs a migration round (remove+insert
    /// batches over the straddling sites) *before* publishing — the user's
    /// updates and the migrations land in **one** generation, so no
    /// reader-visible snapshot ever holds a site in zero or two shards.
    ///
    /// A no-op apply (empty batch, or every update missed, and no
    /// rebalance) returns the current generation and publishes nothing —
    /// warm cache entries survive, exactly like the monolithic engine.
    pub fn apply(&self, updates: &[Update]) -> ShardedApplyReport {
        let _span = uncertain_obs::span!("engine.apply");
        uncertain_obs::counter!("engine.apply.updates").add(updates.len() as u64);
        let shards = self.writers.len();
        let num_inserts = updates
            .iter()
            .filter(|u| matches!(u, Update::Insert(_)))
            .count();
        let base = self.next_id.fetch_add(num_inserts, Ordering::Relaxed);
        let mut parts: Vec<(Vec<Update>, Vec<SiteId>)> =
            (0..shards).map(|_| default_part()).collect();
        let mut routed_missed = 0usize;
        let mut cross_moved = 0usize;

        let mut router = crate::lock_ok(&self.partitioner);
        let mut next = base;
        for u in updates {
            match u {
                Update::Insert(p) => {
                    let id = next;
                    next += 1;
                    let (ups, ids) = &mut parts[router.route_insert(id, rep_point(p))];
                    ups.push(u.clone());
                    ids.push(id);
                }
                Update::Remove(id) => match router.route_remove(*id) {
                    Some(s) => parts[s].0.push(u.clone()),
                    // The router's directory already knows the id is dead:
                    // count the miss here without waking any shard.
                    None => routed_missed += 1,
                },
                Update::Move { id, to } => match router.route_move(*id, rep_point(to)) {
                    Some((from, dest)) if from == dest => parts[from].0.push(u.clone()),
                    Some((from, dest)) => {
                        // Cross-shard move: remove at the old home, insert
                        // (keeping the same stable id) at the new one. The
                        // shard masters see a remove + an insert; the
                        // user-visible report re-folds them into one move.
                        cross_moved += 1;
                        parts[from].0.push(Update::Remove(*id));
                        let (ups, ids) = &mut parts[dest];
                        ups.push(Update::Insert(to.clone()));
                        ids.push(*id);
                    }
                    None => routed_missed += 1,
                },
            }
        }
        // Hash routing is stateless — release the lock so disjoint applies
        // overlap (PR 8 behavior). A stateful router keeps the guard
        // through dispatch, rebalance, and publication.
        let mut router: Option<MutexGuard<'_, Box<dyn Partitioner>>> = if router.serialize_applies()
        {
            Some(router)
        } else {
            None
        };

        let touched: Vec<usize> = (0..shards).filter(|&s| !parts[s].0.is_empty()).collect();
        let results: Vec<ShardOutcome> = if touched.len() > 1 && self.pool.len() > 1 {
            let (tx, rx) = std::sync::mpsc::channel();
            for &s in &touched {
                let writers = Arc::clone(&self.writers);
                let (ups, ids) = std::mem::take(&mut parts[s]);
                let tx = tx.clone();
                self.pool.execute(move || {
                    let _ = tx.send(apply_shard(&writers, s, &ups, &ids));
                });
            }
            drop(tx);
            rx.iter().collect()
        } else {
            touched
                .iter()
                .map(|&s| {
                    let (ups, ids) = std::mem::take(&mut parts[s]);
                    apply_shard(&self.writers, s, &ups, &ids)
                })
                .collect()
        };

        let mut report = ShardedApplyReport {
            generation: 0,
            shard_epochs: vec![],
            touched: vec![],
            inserted: (base..next).collect(),
            removed: 0,
            moved: 0,
            missed: routed_missed,
            migrated: 0,
            live: 0,
            tombstones: 0,
            merges: 0,
            global_rebuilds: 0,
            sites_rebuilt: 0,
        };
        for r in &results {
            report.removed += r.outcome.removed;
            report.moved += r.outcome.moved;
            report.missed += r.outcome.missed;
            report.merges += r.delta.merges;
            report.global_rebuilds += r.delta.global_rebuilds;
            report.sites_rebuilt += r.delta.sites_rebuilt;
            if r.effective {
                report.touched.push(r.shard);
            }
        }
        // Re-fold cross-shard moves: each produced one remove (old shard)
        // and one same-id insert (new shard) at the masters, but to the
        // caller it is exactly one move.
        report.removed -= cross_moved;
        report.moved += cross_moved;

        // Rebalance round: if this apply pushed the live-count imbalance
        // past the ratio, re-split the cloud and migrate the straddling
        // sites now, while still holding the partitioner lock — the
        // migrations publish in the same generation as the user's batch.
        let mut rebalance_results: Vec<ShardOutcome> = vec![];
        if let Some(router) = router.as_deref_mut() {
            if router.needs_rebalance() {
                let _span = uncertain_obs::span!("shard.rebalance");
                // The masters are quiescent (spatial applies serialize),
                // so this is a consistent view of the whole live cloud.
                let mut live: Vec<(SiteId, Point)> = vec![];
                for w in self.writers.iter() {
                    let w = crate::lock_ok(w);
                    for id in w.set.live_ids() {
                        let p = w.set.get(id).expect("live id resolves");
                        live.push((id, rep_point(p)));
                    }
                }
                live.sort_unstable_by_key(|&(id, _)| id);
                let migs = router.plan_rebalance(&live);
                if !migs.is_empty() {
                    self.rebalances.fetch_add(1, Ordering::Relaxed);
                    uncertain_obs::counter!("shard.rebalance.count").inc();
                    uncertain_obs::counter!("shard.rebalance.migrated").add(migs.len() as u64);
                    report.migrated = migs.len();
                    // Snapshot every migrating payload *before* any
                    // migration batch runs (a remove tombstones the site at
                    // its old home).
                    let payloads: Vec<DiscreteUncertainPoint> = migs
                        .iter()
                        .map(|m| {
                            crate::lock_ok(&self.writers[m.from])
                                .set
                                .get(m.id)
                                .expect("migrating site is live at its old shard")
                                .clone()
                        })
                        .collect();
                    let mut mparts: Vec<(Vec<Update>, Vec<SiteId>)> =
                        (0..shards).map(|_| default_part()).collect();
                    for (m, p) in migs.iter().zip(payloads) {
                        mparts[m.from].0.push(Update::Remove(m.id));
                        let (ups, ids) = &mut mparts[m.to];
                        ups.push(Update::Insert(p));
                        ids.push(m.id);
                    }
                    for (s, part) in mparts.iter_mut().enumerate() {
                        if !part.0.is_empty() {
                            let (ups, ids) = std::mem::take(part);
                            rebalance_results.push(apply_shard(&self.writers, s, &ups, &ids));
                        }
                    }
                    for r in &rebalance_results {
                        report.merges += r.delta.merges;
                        report.global_rebuilds += r.delta.global_rebuilds;
                        report.sites_rebuilt += r.delta.sites_rebuilt;
                        if r.effective {
                            report.touched.push(r.shard);
                        }
                    }
                }
            }
        }
        report.touched.sort_unstable();
        report.touched.dedup();

        if report.touched.is_empty() {
            // Nothing changed anywhere: keep the published snapshot (and
            // every warm cache entry keyed to its generation).
            let core = self.snapshot();
            report.generation = core.generation;
            report.shard_epochs = core.epochs.as_ref().clone();
            report.live = core.n;
            report.tombstones = core.reader.tombstones();
            return report;
        }

        // Publish: replace exactly the touched shards' snapshots, guarded
        // per shard by epoch monotonicity (a racing apply that already
        // published a later epoch for a shard must not be reverted by our
        // older snapshot arriving late). User sub-batches and the
        // rebalance round fold into ONE new core — a shard both mutated by
        // the user and migrated takes its later (rebalance) epoch — so the
        // single pointer swap is what makes the migration atomic for
        // readers.
        {
            let _publish = crate::lock_ok(&self.publish_lock);
            let old = crate::read_ok(&self.core).clone();
            let mut sets: Vec<Arc<DynamicSet>> = old.reader.shards().to_vec();
            let mut epochs = (*old.epochs).clone();
            let mut changed = false;
            for r in results
                .iter()
                .chain(&rebalance_results)
                .filter(|r| r.effective)
            {
                if r.epoch > epochs[r.shard] {
                    epochs[r.shard] = r.epoch;
                    sets[r.shard] = r.snap.clone().expect("effective outcomes carry a snapshot");
                    changed = true;
                }
            }
            let core = if changed {
                let reader = ShardedReader::new(sets);
                let core = Arc::new(ShardedCore {
                    generation: old.generation + 1,
                    epochs: Arc::new(epochs),
                    n: reader.len(),
                    reader,
                    set: OnceLock::new(),
                    ids: OnceLock::new(),
                    shape: OnceLock::new(),
                    config: old.config,
                    cache: Arc::clone(&old.cache),
                });
                *crate::write_ok(&self.core) = Arc::clone(&core);
                core
            } else {
                // Every effective sub-batch was superseded by a racing
                // apply's later publication; the current snapshot already
                // reflects newer state for all our shards.
                old
            };
            report.generation = core.generation;
            report.shard_epochs = core.epochs.as_ref().clone();
            report.live = core.n;
            report.tombstones = core.reader.tombstones();
        }

        uncertain_obs::counter!("engine.apply.effective").inc();
        uncertain_obs::gauge!("engine.epoch").set(report.generation as f64);
        uncertain_obs::gauge!("engine.live_sites").set(report.live as f64);
        uncertain_obs::gauge!("engine.tombstones").set(report.tombstones as f64);
        let registry = uncertain_obs::registry();
        // Chain order matters for the gauges: rebalance outcomes ran after
        // the user sub-batches, so their values overwrite on shards both
        // touched.
        for r in results
            .iter()
            .chain(&rebalance_results)
            .filter(|r| r.effective)
        {
            let s = r.shard;
            registry
                .gauge(&format!("engine.epoch.shard{s}"))
                .set(r.epoch as f64);
            registry
                .gauge(&format!("engine.live_sites.shard{s}"))
                .set(r.live as f64);
            registry
                .gauge(&format!("engine.tombstones.shard{s}"))
                .set(r.tombstones as f64);
            if let Some(snap) = &r.snap {
                let b = snap.support_aabb();
                if !b.is_empty() {
                    registry
                        .gauge(&format!("shard.aabb.width.shard{s}"))
                        .set(b.width());
                    registry
                        .gauge(&format!("shard.aabb.height.shard{s}"))
                        .set(b.height());
                }
            }
        }
        report
    }

    /// Plans and executes one batch. Identical request/response semantics
    /// to [`Engine::run_batch`](crate::Engine::run_batch) — and identical
    /// answer bits — with [`ExecStats::shard_stats`] filled in and
    /// [`ExecStats::epoch`] carrying the publish generation.
    pub fn run_batch(&self, requests: &[QueryRequest]) -> BatchResponse {
        let t0 = Instant::now();
        let spans_before = uncertain_obs::registry().span_totals();
        let core = self.snapshot();
        let predicates_before = predicate_stats();
        let kernels_before = kernel_stats();
        let nonzero_count = requests.iter().filter(|r| r.is_nonzero()).count();
        // Expected per-query fan-out, fed back from every prior batch's
        // observed shards-touched counts; before any observation, assume
        // the worst case (every shard — exact for hash partitioning).
        let expected_touched = {
            let reads = self.touched_reads.load(Ordering::Relaxed);
            if reads == 0 {
                core.reader.num_shards() as f64
            } else {
                self.touched_sum.load(Ordering::Relaxed) as f64 / reads as f64
            }
        };
        let plan = {
            let _s = uncertain_obs::span!("engine.batch.plan");
            plan_for_sharded(
                &core,
                nonzero_count,
                requests.len() - nonzero_count,
                expected_touched,
            )
        };
        let prepared = SPrepared {
            nonzero: plan.nonzero,
            quant: plan.quant,
        };
        let counters = Arc::new(BatchCounters::default());

        let (results, worker_busy) = if requests.is_empty() {
            (vec![], vec![])
        } else if self.pool.len() == 1 || requests.len() == 1 {
            let e0 = Instant::now();
            let results = requests
                .iter()
                .map(|r| exec_one(&core, prepared, *r, &counters))
                .collect();
            (results, vec![e0.elapsed()])
        } else {
            let chunk_len = requests.len().div_ceil(self.pool.len());
            let (rtx, rrx) = std::sync::mpsc::channel();
            let mut jobs = 0usize;
            for (ji, chunk) in requests.chunks(chunk_len).enumerate() {
                let core = Arc::clone(&core);
                let counters = Arc::clone(&counters);
                let chunk: Vec<QueryRequest> = chunk.to_vec();
                let rtx = rtx.clone();
                self.pool.execute(move || {
                    let e0 = Instant::now();
                    let out: Vec<QueryResult> = chunk
                        .iter()
                        .map(|r| exec_one(&core, prepared, *r, &counters))
                        .collect();
                    let _ = rtx.send((ji, out, e0.elapsed()));
                });
                jobs += 1;
            }
            drop(rtx);
            let mut buf: Vec<Option<Vec<QueryResult>>> = (0..jobs).map(|_| None).collect();
            let mut busy = vec![Duration::ZERO; jobs];
            for (ji, out, dt) in rrx {
                buf[ji] = Some(out);
                busy[ji] = dt;
            }
            // Mirrors the monolithic engine: a lost job (panic outside
            // the per-request guard) degrades to typed failures for its
            // chunk instead of unwinding the batch caller.
            let results = buf
                .into_iter()
                .enumerate()
                .flat_map(|(ji, s)| {
                    s.unwrap_or_else(|| {
                        uncertain_obs::counter!("engine.exec.lost_jobs").inc();
                        let lo = ji * chunk_len;
                        let len = chunk_len.min(requests.len() - lo);
                        (0..len)
                            .map(|_| QueryResult::Failed {
                                reason: "worker job lost to a panic outside the request guard"
                                    .into(),
                            })
                            .collect()
                    })
                })
                .collect();
            (results, busy)
        };

        let wall = t0.elapsed();
        uncertain_obs::histogram!("engine.batch.wall").record(wall.as_nanos() as u64);
        uncertain_obs::counter!("engine.batch.requests").add(requests.len() as u64);
        crate::record_planner_observation(&plan, requests.len(), worker_busy.iter().sum());

        // Feed this batch's observed fan-out back to the planner's gather
        // term, and refresh the per-shard warm-rate gauges (the batch's
        // merged evaluations are what warms the summaries).
        let batch_touched = counters.shards_touched.load(Ordering::Relaxed);
        let batch_reads = counters.shard_reads.load(Ordering::Relaxed);
        if batch_reads > 0 {
            self.touched_sum
                .fetch_add(batch_touched as u64, Ordering::Relaxed);
            self.touched_reads
                .fetch_add(batch_reads as u64, Ordering::Relaxed);
        }
        let registry = uncertain_obs::registry();
        for (s, d) in core.reader.shards().iter().enumerate() {
            let (warm, cold) = d.quant_summary_state();
            let rate = if warm + cold == 0 {
                0.0
            } else {
                warm as f64 / (warm + cold) as f64
            };
            registry
                .gauge(&format!("shard.quant.warm_rate.shard{s}"))
                .set(rate);
        }

        let spans =
            uncertain_obs::span_delta(&spans_before, &uncertain_obs::registry().span_totals());
        let predicates = predicate_stats().since(&predicates_before);
        let kernels = kernel_stats().since(&kernels_before);
        BatchResponse {
            results,
            stats: ExecStats {
                nonzero_guarantee: (nonzero_count > 0).then_some(Guarantee::Exact),
                plan,
                built: vec![],
                wall,
                batch_len: requests.len(),
                cache_hits: counters.hits.load(Ordering::Relaxed),
                cache_misses: counters.misses.load(Ordering::Relaxed),
                workers: self.pool.len(),
                epoch: core.generation,
                live_sites: core.n,
                tombstones: core.reader.tombstones(),
                shard_stats: core.shard_stats(),
                worker_busy,
                predicate_filter_hits: predicates.filter_hits,
                predicate_exact_fallbacks: predicates.exact_fallbacks,
                kernel_lane_dists: kernels.lane_dists,
                kernel_scalar_dists: kernels.scalar_dists,
                quant_merged_evals: counters.quant_merged.load(Ordering::Relaxed),
                quant_fresh_evals: counters.quant_fresh.load(Ordering::Relaxed),
                quant_bucket_touches: counters.bucket_touches.load(Ordering::Relaxed),
                quant_bucket_warm: counters.bucket_warm.load(Ordering::Relaxed),
                shards_touched: batch_touched,
                shard_reads: batch_reads,
                spans,
            },
        }
    }
}

fn default_part() -> (Vec<Update>, Vec<SiteId>) {
    (vec![], vec![])
}

/// Sharded planner inputs: always dynamic-ready (every shard is a warm
/// Bentley–Saxe structure from construction), bucket fan-out summed across
/// shards, `shards ≥ 1` so only the partition-independent exact candidates
/// are priced. `expected_touched` is the observed mean scatter-gather
/// fan-out (== `S` under hash; `< S` once spatial pruning bites), which
/// prices the gather term and scales the bucket fan-out the dynamic
/// candidates actually visit.
fn plan_for_sharded(
    core: &ShardedCore,
    nonzero_count: usize,
    quant_count: usize,
    expected_touched: f64,
) -> BatchPlan {
    let (total_locations, max_k, spread) = core.shape();
    let (_, quant_cold) = core.reader.quant_summary_state();
    planner::plan(&PlannerInputs {
        n: core.n,
        total_locations,
        max_k,
        spread,
        nonzero_count,
        quant_count,
        guarantee: core.config.guarantee,
        diagram_cap: 0,
        index_built: false,
        diagram_built: false,
        spiral_built: false,
        mc_built_samples: None,
        dynamic_ready: true,
        dynamic_buckets: core.reader.bucket_count(),
        dynamic_quant_cold_locations: quant_cold,
        quant_snapped: core.cache.grid() > 0.0,
        shards: core.reader.num_shards(),
        expected_shards_touched: expected_touched,
    })
}

/// Executes one request with per-request panic isolation (the sharded twin
/// of the monolithic engine's guard): a panicking evaluation yields a
/// typed [`QueryResult::Failed`] before it can poison any shared lock.
fn exec_one(
    core: &ShardedCore,
    prepared: SPrepared,
    req: QueryRequest,
    counters: &BatchCounters,
) -> QueryResult {
    let out = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        exec_one_inner(core, prepared, req, counters)
    }));
    out.unwrap_or_else(|payload| {
        uncertain_obs::counter!("engine.exec.panics").inc();
        QueryResult::Failed {
            reason: crate::panic_reason(payload.as_ref()),
        }
    })
}

/// Records one scatter-gather read that visited `touched` shards.
fn record_touched(counters: &BatchCounters, touched: usize) {
    uncertain_obs::histogram!("engine.query.shards_touched").record(touched as u64);
    counters
        .shards_touched
        .fetch_add(touched, Ordering::Relaxed);
    counters.shard_reads.fetch_add(1, Ordering::Relaxed);
}

fn exec_one_inner(
    core: &ShardedCore,
    prepared: SPrepared,
    req: QueryRequest,
    counters: &BatchCounters,
) -> QueryResult {
    match req {
        QueryRequest::Nonzero { q } => {
            let _trace = uncertain_obs::trace::start("nonzero");
            let plan = prepared.nonzero.expect("nonzero plan");
            let key = CacheKey::nonzero(core.generation, q);
            if core.cache.enabled() {
                if let Some(CachedValue::Nonzero(ids)) = core.cache.get(&key) {
                    counters.hits.fetch_add(1, Ordering::Relaxed);
                    return QueryResult::Nonzero(ids.as_ref().clone());
                }
                counters.misses.fetch_add(1, Ordering::Relaxed);
            }
            let _exec = match plan {
                NonzeroPlan::Dynamic => uncertain_obs::span!("engine.exec.nonzero.dynamic"),
                _ => uncertain_obs::span!("engine.exec.nonzero.brute"),
            };
            let mut ids = match plan {
                // Scatter-gather over the per-shard bucket structures —
                // already in stable site ids. The box pruning decides how
                // many shards the fold actually visits.
                NonzeroPlan::Dynamic => {
                    let (ids, touched) = core.reader.nonzero_touched(q);
                    record_touched(counters, touched);
                    ids
                }
                // Brute over the flat union (the planner never picks the
                // monolithic-only static plans when shards ≥ 1).
                _ => {
                    let ids = core.ids();
                    nonzero_nn_discrete(core.set(), q)
                        .into_iter()
                        .map(|dense| ids[dense])
                        .collect()
                }
            };
            ids.sort_unstable();
            core.cache
                .insert(key, CachedValue::Nonzero(Arc::new(ids.clone())));
            QueryResult::Nonzero(ids)
        }
        QueryRequest::Threshold { q, tau } => {
            let _trace = uncertain_obs::trace::start("threshold");
            let (pi, guarantee) = quant_vector(core, prepared, q, counters);
            let slack = guarantee.slack();
            let mut items: Vec<(usize, f64)> = pi
                .iter()
                .copied()
                .enumerate()
                .filter(|&(_, p)| p >= tau - slack)
                .collect();
            crate::sort_ranked(&mut items);
            map_ranked(core, &mut items);
            QueryResult::Ranked { items, guarantee }
        }
        QueryRequest::TopK { q, k } => {
            let _trace = uncertain_obs::trace::start("topk");
            let (pi, guarantee) = quant_vector(core, prepared, q, counters);
            let mut items: Vec<(usize, f64)> = pi
                .iter()
                .copied()
                .enumerate()
                .filter(|&(_, p)| p > 0.0)
                .collect();
            crate::sort_ranked(&mut items);
            items.truncate(k);
            map_ranked(core, &mut items);
            QueryResult::Ranked { items, guarantee }
        }
    }
}

/// Rewrites dense indices to stable site ids, after sorting (the map is
/// monotone, so the tie order is unchanged).
fn map_ranked(core: &ShardedCore, items: &mut [(usize, f64)]) {
    let ids = core.ids();
    for (i, _) in items.iter_mut() {
        *i = ids[*i];
    }
}

/// The cached sharded quantification path. Both candidates are exact and
/// bit-identical (the k-way merge reproduces the fresh sweep's entry
/// sequence — see [`ShardedReader::quantification_merged`]), so they share
/// the `Exact` cache tag; with a snap grid the answer is the certified
/// interval evaluation over the flat union at the cell center, exactly as
/// in the monolithic engine.
fn quant_vector(
    core: &ShardedCore,
    prepared: SPrepared,
    q: Point,
    counters: &BatchCounters,
) -> (Arc<Vec<f64>>, Guarantee) {
    let plan = prepared.quant.expect("quant plan");
    let grid = core.cache.grid();
    let snapped = grid > 0.0;
    let key = CacheKey::quant(
        core.generation,
        q,
        if snapped { grid } else { 0.0 },
        QuantTag::Exact,
    );
    if core.cache.enabled() {
        if let Some(CachedValue::Quant { pi, guarantee }) = core.cache.get(&key) {
            counters.hits.fetch_add(1, Ordering::Relaxed);
            return (pi, guarantee);
        }
        counters.misses.fetch_add(1, Ordering::Relaxed);
    }
    let (pi, guarantee) = if snapped {
        let _exec = uncertain_obs::span!("engine.exec.quant.snapped");
        let center = snap_center(q, grid);
        let (mid, halfwidth) = snap::interval_quantification(core.set(), center, snap_radius(grid));
        let g = if halfwidth > 0.0 {
            Guarantee::Additive(halfwidth)
        } else {
            Guarantee::Exact
        };
        (mid, g)
    } else {
        let _exec = match plan {
            QuantPlan::Merged => uncertain_obs::span!("engine.exec.quant.merged"),
            _ => uncertain_obs::span!("engine.exec.quant.fresh"),
        };
        let pi = match plan {
            QuantPlan::Merged => {
                let (pairs, st) = core.reader.quantification_merged_with_stats(q);
                counters.quant_merged.fetch_add(1, Ordering::Relaxed);
                counters
                    .bucket_touches
                    .fetch_add(st.buckets, Ordering::Relaxed);
                counters
                    .bucket_warm
                    .fetch_add(st.warm_buckets, Ordering::Relaxed);
                record_touched(counters, st.shards_touched);
                pairs.into_iter().map(|(_, p)| p).collect()
            }
            _ => {
                counters.quant_fresh.fetch_add(1, Ordering::Relaxed);
                quantification_discrete(core.set(), q)
            }
        };
        (pi, Guarantee::Exact)
    };
    let pi = Arc::new(pi);
    core.cache.insert(
        key,
        CachedValue::Quant {
            pi: Arc::clone(&pi),
            guarantee,
        },
    );
    (pi, guarantee)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Engine;
    use uncertain_nn::model::DiscreteUncertainPoint;
    use uncertain_nn::workload;

    fn assert_send_sync<T: Send + Sync>() {}

    #[test]
    fn sharded_engine_is_send_sync() {
        assert_send_sync::<ShardedEngine>();
    }

    fn config(shards: usize) -> EngineConfig {
        EngineConfig {
            shards: Some(shards),
            ..EngineConfig::default()
        }
    }

    fn spatial_config(shards: usize, ratio: f64) -> EngineConfig {
        EngineConfig {
            shards: Some(shards),
            partitioner: PartitionerKind::Spatial,
            rebalance_ratio: ratio,
            ..EngineConfig::default()
        }
    }

    fn mixed_batch(queries: &[Point]) -> Vec<QueryRequest> {
        let mut batch = vec![];
        for &q in queries {
            batch.push(QueryRequest::Nonzero { q });
            batch.push(QueryRequest::Threshold { q, tau: 0.2 });
            batch.push(QueryRequest::TopK { q, k: 4 });
        }
        batch
    }

    /// The headline guarantee, in-crate: identical answer bits to the
    /// monolithic engine at several shard counts, before and after
    /// shard-straddling updates. (`tests/sharded_differential.rs` runs the
    /// randomized-op-sequence version of this.)
    #[test]
    fn sharded_answers_are_bit_identical_to_monolithic() {
        let set = workload::random_discrete_set(80, 3, 6.0, 11);
        let queries = workload::random_queries(12, 60.0, 13);
        let batch = mixed_batch(&queries);
        let updates = vec![
            Update::Remove(3),
            Update::Insert(DiscreteUncertainPoint::certain(Point::new(0.5, -0.25))),
            Update::Remove(41),
            Update::Move {
                id: 17,
                to: DiscreteUncertainPoint::certain(Point::new(-4.0, 2.0)),
            },
            Update::Insert(DiscreteUncertainPoint::certain(Point::new(9.0, 9.0))),
        ];

        let mono = Engine::new(set.clone(), EngineConfig::default());
        let mono_before = mono.run_batch(&batch);
        let mono_report = mono.apply(&updates);
        let mono_after = mono.run_batch(&batch);

        for shards in [1, 4] {
            let sharded = ShardedEngine::new(set.clone(), config(shards));
            assert_eq!(sharded.num_shards(), shards);
            assert_eq!(sharded.run_batch(&batch).results, mono_before.results);
            let report = sharded.apply(&updates);
            assert_eq!(report.inserted, mono_report.inserted);
            assert_eq!(report.removed, mono_report.removed);
            assert_eq!(report.moved, mono_report.moved);
            assert_eq!(report.live, mono_report.live);
            let resp = sharded.run_batch(&batch);
            assert_eq!(resp.results, mono_after.results);
            // Per-shard serving state is reported for every shard.
            assert_eq!(resp.stats.shard_stats.len(), shards);
            assert_eq!(
                resp.stats.shard_stats.iter().map(|s| s.live).sum::<usize>(),
                mono_report.live
            );
        }
    }

    /// The same bit-identity under the spatial partitioner — including the
    /// cross-shard move rewrite and the user-visible report re-fold.
    #[test]
    fn spatial_answers_are_bit_identical_to_monolithic() {
        let set = workload::random_discrete_set(80, 3, 6.0, 11);
        let queries = workload::random_queries(12, 60.0, 13);
        let batch = mixed_batch(&queries);
        let updates = vec![
            Update::Remove(3),
            Update::Insert(DiscreteUncertainPoint::certain(Point::new(0.5, -0.25))),
            Update::Remove(41),
            // A long-haul move — almost certainly cross-region, exercising
            // the remove+insert rewrite.
            Update::Move {
                id: 17,
                to: DiscreteUncertainPoint::certain(Point::new(-40.0, 35.0)),
            },
            Update::Remove(999), // miss, counted by the router's directory
            Update::Insert(DiscreteUncertainPoint::certain(Point::new(9.0, 9.0))),
        ];

        let mono = Engine::new(set.clone(), EngineConfig::default());
        let mono_before = mono.run_batch(&batch);
        let mono_report = mono.apply(&updates);
        let mono_after = mono.run_batch(&batch);

        for shards in [1, 4] {
            let sharded = ShardedEngine::new(set.clone(), spatial_config(shards, 0.0));
            assert_eq!(sharded.partitioner_kind(), PartitionerKind::Spatial);
            assert_eq!(sharded.run_batch(&batch).results, mono_before.results);
            let report = sharded.apply(&updates);
            assert_eq!(report.inserted, mono_report.inserted);
            assert_eq!(report.removed, mono_report.removed);
            assert_eq!(report.moved, mono_report.moved);
            assert_eq!(report.missed, mono_report.missed);
            assert_eq!(report.live, mono_report.live);
            let resp = sharded.run_batch(&batch);
            assert_eq!(resp.results, mono_after.results);
        }
    }

    /// Skewed churn under spatial partitioning triggers a rebalance whose
    /// migrations (a) restore the balance, (b) keep every site in exactly
    /// one shard, and (c) leave answers bit-identical to monolithic.
    #[test]
    fn spatial_rebalance_triggers_and_stays_bit_identical() {
        let set = workload::random_discrete_set(60, 3, 6.0, 21);
        let mono = Engine::new(set.clone(), EngineConfig::default());
        let eng = ShardedEngine::new(set, spatial_config(4, 2.0));

        // Pile new sites into one far corner: the corner shard's count
        // balloons past 2× the min.
        let skew: Vec<Update> = (0..120)
            .map(|i| {
                let t = i as f64 * 0.37;
                Update::Insert(DiscreteUncertainPoint::certain(Point::new(
                    200.0 + t.cos(),
                    200.0 + t.sin(),
                )))
            })
            .collect();
        mono.apply(&skew);
        let report = eng.apply(&skew);
        assert!(
            eng.rebalances() >= 1,
            "skewed churn must trigger a rebalance"
        );
        assert!(report.migrated > 0);

        // Single ownership: every live id in exactly one shard's census.
        let census = eng.shard_census();
        let mut seen = std::collections::HashMap::new();
        for (s, ids) in census.iter().enumerate() {
            for &id in ids {
                assert!(
                    seen.insert(id, s).is_none(),
                    "site {id} owned by two shards"
                );
            }
        }
        assert_eq!(seen.len(), eng.len());

        // Balance restored: the trigger is quiet again.
        let counts: Vec<usize> = census.iter().map(|v| v.len()).collect();
        let max = *counts.iter().max().unwrap();
        let min = *counts.iter().min().unwrap();
        assert!(
            (max as f64) < 2.0 * (min.max(1) as f64),
            "rebalance left counts {counts:?}"
        );

        // And the answers still match monolithic bitwise.
        let queries = workload::random_queries(10, 220.0, 23);
        let batch = mixed_batch(&queries);
        assert_eq!(
            eng.run_batch(&batch).results,
            mono.run_batch(&batch).results
        );
    }

    /// Clustered queries against region-disjoint shards touch fewer than
    /// all shards; the batch stats expose the observed fan-out.
    #[test]
    fn spatial_partitioning_prunes_the_scatter_gather() {
        // Four well-separated clusters of 15 sites each.
        let mut pts = vec![];
        for (cx, cy) in [
            (-120.0, -120.0),
            (120.0, -120.0),
            (-120.0, 120.0),
            (120.0, 120.0),
        ] {
            for i in 0..15 {
                let t = i as f64 * 0.7;
                pts.push(DiscreteUncertainPoint::uniform(vec![
                    Point::new(cx + t.cos(), cy + t.sin()),
                    Point::new(cx + 2.0 * t.sin(), cy - t.cos()),
                ]));
            }
        }
        let set = DiscreteSet::new(pts);
        // cache off so every read executes (and is counted).
        let mut cfg = spatial_config(4, 0.0);
        cfg.cache_capacity = 0;
        let eng = ShardedEngine::new(set, cfg);

        // All-quantification batch: at this scale the planner serves NN≠0
        // by brute over the flat union (which never scatters), so only the
        // merged-quant reads exercise — and count — the box pruning.
        let batch: Vec<QueryRequest> = [(-120.0, -120.0), (120.0, 120.0)]
            .iter()
            .flat_map(|&(x, y)| {
                let q = Point::new(x, y);
                [
                    QueryRequest::Threshold { q, tau: 0.2 },
                    QueryRequest::TopK { q, k: 3 },
                ]
            })
            .collect();
        let stats = eng.run_batch(&batch).stats;
        assert_eq!(stats.shard_reads, 4, "cache-off reads are all counted");
        let avg = stats.avg_shards_touched();
        assert!(
            (1.0..4.0).contains(&avg),
            "cluster-center queries must touch fewer than all 4 shards, got {avg}"
        );

        // Hash partitioning of the same workload touches every shard.
        let mut cfg = config(4);
        cfg.cache_capacity = 0;
        let eng = ShardedEngine::new(eng.live_set(), cfg);
        let stats = eng.run_batch(&batch).stats;
        assert_eq!(stats.avg_shards_touched(), 4.0);
    }

    #[test]
    fn straddling_apply_bumps_only_touched_shards_and_one_generation() {
        let set = workload::random_discrete_set(60, 3, 6.0, 7);
        let eng = ShardedEngine::new(set, config(4));
        let (g0, e0) = eng.shard_epochs();
        assert_eq!((g0, e0.as_slice()), (0, &[0u64; 4][..]));

        // Remove two sites in (generally) different shards.
        let report = eng.apply(&[Update::Remove(0), Update::Remove(1)]);
        assert_eq!(report.generation, 1);
        assert_eq!(
            report.touched,
            vec![shard_of(0, 4), shard_of(1, 4)]
                .into_iter()
                .collect::<std::collections::BTreeSet<_>>()
                .into_iter()
                .collect::<Vec<_>>()
        );
        let (g1, e1) = eng.shard_epochs();
        assert_eq!(g1, 1);
        for (s, &epoch) in e1.iter().enumerate() {
            let expect = if report.touched.contains(&s) { 1 } else { 0 };
            assert_eq!(epoch, expect, "shard {s}");
        }
    }

    #[test]
    fn noop_apply_keeps_generation_and_cache() {
        let set = workload::random_discrete_set(40, 3, 6.0, 5);
        let eng = ShardedEngine::new(set, config(3));
        let q = Point::new(1.0, 1.0);
        let batch = [QueryRequest::Nonzero { q }];
        eng.run_batch(&batch);
        let cached = eng.cache_len();
        assert!(cached > 0);
        // Every update misses: dead/unknown ids only.
        let report = eng.apply(&[Update::Remove(999), Update::Remove(777)]);
        assert_eq!(report.generation, 0);
        assert_eq!(report.missed, 2);
        assert!(report.touched.is_empty());
        let resp = eng.run_batch(&batch);
        assert_eq!(resp.stats.cache_hits, 1);
        assert_eq!(eng.cache_len(), cached);
    }

    #[test]
    fn display_prints_fixed_columns_and_per_shard_summaries() {
        let set = workload::random_discrete_set(30, 3, 6.0, 3);
        let eng = ShardedEngine::new(set, config(3));
        let q = Point::new(0.0, 0.0);
        let stats = eng.run_batch(&[QueryRequest::Nonzero { q }]).stats;
        let line = stats.to_string();
        // All columns present even when zero, plus one token per shard.
        for needle in ["epoch=0", "tomb=0", "shard0=0/", "shard1=0/", "shard2=0/"] {
            assert!(line.contains(needle), "missing {needle:?} in {line:?}");
        }
        // Monolithic batches print the same fixed columns, no shard tokens.
        let mono = Engine::new(
            workload::random_discrete_set(10, 2, 4.0, 1),
            EngineConfig::default(),
        );
        let line = mono
            .run_batch(&[QueryRequest::Nonzero { q }])
            .stats
            .to_string();
        assert!(
            line.contains("tomb=0") && !line.contains("shard0="),
            "{line:?}"
        );
    }

    #[test]
    fn display_aggregates_per_shard_tokens_past_eight_shards() {
        if std::env::var_os(crate::STATS_VERBOSE_ENV).is_some() {
            return; // escape hatch active in this environment
        }
        let set = workload::random_discrete_set(40, 2, 6.0, 9);
        let eng = ShardedEngine::new(set, config(9));
        let stats = eng
            .run_batch(&[QueryRequest::Nonzero {
                q: Point::new(0.0, 0.0),
            }])
            .stats;
        let line = stats.to_string();
        assert!(
            line.contains(" shards=9 lo=") && line.contains(" med=") && line.contains(" hi="),
            "{line:?}"
        );
        assert!(!line.contains("shard0="), "{line:?}");
    }

    #[test]
    fn resolve_shards_prefers_requested_and_floors_at_one() {
        // Can't touch the env var here (tests run concurrently), but the
        // non-env precedence is deterministic.
        if std::env::var(SHARDS_ENV).is_err() {
            assert_eq!(resolve_shards(Some(7)), 7);
            assert_eq!(resolve_shards(Some(0)), 1);
            assert!(resolve_shards(None) >= 1);
        }
    }

    #[test]
    fn resolve_partitioner_and_rebalance_prefer_config() {
        if std::env::var(PARTITIONER_ENV).is_err() {
            assert_eq!(
                resolve_partitioner(PartitionerKind::Spatial),
                PartitionerKind::Spatial
            );
            assert_eq!(
                resolve_partitioner(PartitionerKind::Hash),
                PartitionerKind::Hash
            );
        }
        if std::env::var(REBALANCE_ENV).is_err() {
            assert_eq!(resolve_rebalance(3.5), 3.5);
        }
    }

    #[test]
    fn empty_engine_serves_and_grows() {
        let eng = ShardedEngine::new(DiscreteSet::new(vec![]), config(3));
        assert!(eng.is_empty());
        let q = Point::new(0.0, 0.0);
        let resp = eng.run_batch(&mixed_batch(&[q]));
        assert_eq!(resp.results[0], QueryResult::Nonzero(vec![]));
        let report = eng.apply(&[Update::Insert(DiscreteUncertainPoint::certain(q))]);
        assert_eq!(report.inserted, vec![0]);
        assert_eq!(report.live, 1);
        let resp = eng.run_batch(&mixed_batch(&[q]));
        assert_eq!(resp.results[0], QueryResult::Nonzero(vec![0]));
    }

    #[test]
    fn empty_spatial_engine_serves_and_grows() {
        let eng = ShardedEngine::new(DiscreteSet::new(vec![]), spatial_config(3, 2.0));
        assert!(eng.is_empty());
        let q = Point::new(0.0, 0.0);
        let resp = eng.run_batch(&mixed_batch(&[q]));
        assert_eq!(resp.results[0], QueryResult::Nonzero(vec![]));
        let report = eng.apply(&[Update::Insert(DiscreteUncertainPoint::certain(q))]);
        assert_eq!(report.inserted, vec![0]);
        assert_eq!(report.live, 1);
        let resp = eng.run_batch(&mixed_batch(&[q]));
        assert_eq!(resp.results[0], QueryResult::Nonzero(vec![0]));
    }
}
