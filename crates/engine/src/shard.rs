//! [`ShardedEngine`]: the multi-writer serving engine.
//!
//! The monolithic [`Engine`](crate::Engine) funnels every mutation through
//! one `DynamicSet` writer: concurrent `apply` calls serialize, and each
//! effective apply clones the whole structure (O(live) entries + handle
//! map) before publishing. This module partitions the site universe across
//! `S` independent shards by a multiplicative hash of the stable
//! [`SiteId`] ([`shard_of`]), each shard owning its own Bentley–Saxe
//! [`DynamicSet`] behind its own writer mutex:
//!
//! * **applies to disjoint shards commit concurrently** — sub-batches run
//!   in parallel on the worker pool, each under only its shard's writer
//!   lock, and an apply clones only the shards it touched (O(live/S) per
//!   touched shard instead of O(live) for the whole set);
//! * **reads scatter-gather, bit-identically**: `NN≠0` folds per-shard
//!   two-min-Δ triples into the global Lemma 2.1 threshold exactly as
//!   per-bucket merging does within one set, quantification k-way-merges
//!   per-shard `SweepSource` streams into one Eq. (2) sweep, and
//!   expected-NN folds per-shard branch-and-bound minima (see
//!   [`ShardedReader`] for the proofs). Answers are **bit-identical** to
//!   the monolithic engine at every shard count — the differential suite
//!   in `tests/sharded_differential.rs` enforces this at S ∈ {1, 3, 8};
//! * **epoch vectors publish atomically**: each shard keeps its own epoch
//!   (bumped only when an apply touches it), and every apply publishes one
//!   immutable [`ShardedCore`] snapshot carrying the whole epoch vector
//!   plus a monotone publish *generation* — in-flight readers keep the
//!   snapshot they started on, and a reader can never observe some of a
//!   straddling batch's shards updated and others not
//!   (`tests/engine_epochs.rs` races this).
//!
//! Cache keys are stamped with the generation (which advances exactly when
//! the shard-epoch vector changes), so stale entries become unreachable
//! without a flush — the same trick the monolithic engine plays with its
//! scalar epoch.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock, RwLock};
use std::time::{Duration, Instant};

use uncertain_geom::predicates::predicate_stats;
use uncertain_geom::Point;
pub use uncertain_nn::dynamic::shard::shard_of;
use uncertain_nn::dynamic::shard::ShardedReader;
use uncertain_nn::dynamic::{DynamicSet, RebuildStats, SiteId, Update, UpdateOutcome};
use uncertain_nn::model::DiscreteSet;
use uncertain_nn::nonzero::nonzero_nn_discrete;
use uncertain_nn::quantification::exact::quantification_discrete;
use uncertain_nn::queries::Guarantee;
use uncertain_spatial::soa::kernel_stats;

use crate::cache::{CacheKey, CachedValue, QuantTag, ResultCache};
use crate::planner::{self, NonzeroPlan, PlannerInputs, QuantPlan};
use crate::pool::{resolve_threads, ThreadPool};
use crate::{
    snap, snap_center, snap_radius, BatchCounters, BatchPlan, BatchResponse, EngineConfig,
    ExecStats, QueryRequest, QueryResult, ShardStat,
};

/// Environment override for the shard count (mirrors
/// [`THREADS_ENV`](crate::THREADS_ENV) for workers).
pub const SHARDS_ENV: &str = "UNC_ENGINE_SHARDS";

/// Resolved shard count: `UNC_ENGINE_SHARDS` env > `requested` > detected
/// parallelism; always at least 1.
pub fn resolve_shards(requested: Option<usize>) -> usize {
    // An invalid value warns once on stderr (naming the variable and the
    // fallback) instead of silently misconfiguring the deployment.
    if let Some(n) =
        uncertain_obs::env_parse::<usize>(SHARDS_ENV, "the config/detected shard count")
    {
        return n.max(1);
    }
    requested
        .or_else(|| std::thread::available_parallelism().ok().map(|n| n.get()))
        .unwrap_or(1)
        .max(1)
}

/// What one [`ShardedEngine::apply`] call did.
#[derive(Clone, Debug)]
pub struct ShardedApplyReport {
    /// The publish generation the new snapshot serves under (unchanged on
    /// a no-op apply). Monotone across applies; the cache-key "epoch".
    pub generation: u64,
    /// The full per-shard epoch vector after this apply — published
    /// atomically: a concurrent reader sees either all of this apply's
    /// shard epochs or none of them.
    pub shard_epochs: Vec<u64>,
    /// Shards whose epoch this apply bumped, ascending.
    pub touched: Vec<usize>,
    /// Ids assigned to the `Insert` updates, in update order.
    pub inserted: Vec<SiteId>,
    pub removed: usize,
    pub moved: usize,
    /// `Remove`/`Move` updates whose id was unknown or already removed.
    pub missed: usize,
    /// Live sites across all shards after this apply.
    pub live: usize,
    /// Tombstones still buried across all shards after this apply.
    pub tombstones: usize,
    /// Bucket merges this apply triggered (summed over touched shards).
    pub merges: u64,
    /// Global compacting rebuilds this apply triggered.
    pub global_rebuilds: u64,
    /// Σ bucket sizes rebuilt during this apply.
    pub sites_rebuilt: u64,
}

/// One shard's mutable master copy. Only `apply` touches it, under the
/// shard's own mutex; readers serve from the immutable snapshots in the
/// current [`ShardedCore`].
struct ShardWriter {
    set: DynamicSet,
    /// Bumped on every effective apply to this shard.
    epoch: u64,
}

/// One immutable snapshot: per-shard set snapshots (shared with in-flight
/// batches via `Arc`), the atomically-published epoch vector, and the
/// usual lazily-materialized flat views.
struct ShardedCore {
    /// Monotone publish counter — advances exactly when the shard-epoch
    /// vector changes, so it is a collision-free cache stamp for the whole
    /// vector.
    generation: u64,
    /// Per-shard epochs, index = shard. Readers observe this vector
    /// atomically (it is immutable within one core).
    epochs: Arc<Vec<u64>>,
    reader: ShardedReader,
    /// Live-site count across shards (cheap shape summary).
    n: usize,
    /// Flat union set / id map / planner shape, materialized lazily by the
    /// first consumer (applies must stay O(batch + carry), exactly like
    /// the monolithic core).
    set: OnceLock<DiscreteSet>,
    ids: OnceLock<Arc<Vec<SiteId>>>,
    shape: OnceLock<(usize, usize, f64)>,
    config: EngineConfig,
    /// Shared across generations; generation-stamped keys keep entries
    /// from crossing snapshots.
    cache: Arc<ResultCache>,
}

impl ShardedCore {
    /// The flat union set, densely indexed in ascending-id order.
    fn set(&self) -> &DiscreteSet {
        self.set.get_or_init(|| self.reader.live_set())
    }

    /// Dense index → stable site id, ascending.
    fn ids(&self) -> &Arc<Vec<SiteId>> {
        self.ids.get_or_init(|| Arc::new(self.reader.live_ids()))
    }

    /// `(total locations, max k, weight spread)` of the live union.
    fn shape(&self) -> (usize, usize, f64) {
        *self.shape.get_or_init(|| self.reader.live_shape())
    }

    /// Per-shard `(epoch, live, tombstones)` rows for [`ExecStats`].
    fn shard_stats(&self) -> Vec<ShardStat> {
        self.reader
            .shards()
            .iter()
            .enumerate()
            .map(|(s, d)| ShardStat {
                shard: s,
                epoch: self.epochs[s],
                live: d.len(),
                tombstones: d.tombstones(),
            })
            .collect()
    }
}

/// The per-batch execution context. Sharded serving only ever runs the
/// partition-independent exact strategies (the planner gates the rest), so
/// there is nothing to lazily build and no `Arc`s to pin: workers read the
/// shared core.
#[derive(Clone, Copy)]
struct SPrepared {
    nonzero: Option<NonzeroPlan>,
    quant: Option<QuantPlan>,
}

/// The sharded serving engine. See the [module docs](self) for the
/// concurrency model and the bit-identity guarantee.
pub struct ShardedEngine {
    /// Per-shard mutable masters. `Arc` so parallel sub-batch jobs on the
    /// pool can borrow them `'static`-ly.
    writers: Arc<Vec<Mutex<ShardWriter>>>,
    /// The current snapshot; readers clone the `Arc` and drop the lock.
    core: RwLock<Arc<ShardedCore>>,
    /// Serializes snapshot publication (not shard mutation): concurrent
    /// applies run their sub-batches in parallel and only queue here for
    /// the final read-modify-write of the core pointer.
    publish_lock: Mutex<()>,
    pool: ThreadPool,
    /// Global id allocator: inserts claim ids here *before* partitioning,
    /// so concurrent applies never collide and every id maps to exactly
    /// one shard for its lifetime.
    next_id: AtomicUsize,
}

/// What one shard's sub-batch did (sent back from pool workers).
struct ShardOutcome {
    shard: usize,
    outcome: UpdateOutcome,
    /// The shard's epoch after the sub-batch (bumped only if effective).
    epoch: u64,
    effective: bool,
    /// Immutable snapshot of the shard taken right after mutation — only
    /// present when effective (ineffective sub-batches change nothing, so
    /// the published snapshot stays valid).
    snap: Option<Arc<DynamicSet>>,
    live: usize,
    tombstones: usize,
    delta: RebuildStats,
}

/// Applies one shard's sub-batch under that shard's writer lock, inside a
/// shard-suffixed span (`engine.apply.shard3`).
fn apply_shard(
    writers: &[Mutex<ShardWriter>],
    shard: usize,
    updates: &[Update],
    insert_ids: &[SiteId],
) -> ShardOutcome {
    let _span = uncertain_obs::span_dyn(&format!("engine.apply.shard{shard}"));
    let mut w = crate::lock_ok(&writers[shard]);
    let before = w.set.stats().rebuild;
    // A fully-missed sub-batch leaves the structure untouched (missed
    // removes/moves mutate nothing, and there are no inserts), so running
    // it directly on the master is safe and needs no pre-check.
    let outcome = w.set.apply_with_insert_ids(updates, insert_ids);
    let effective = !(outcome.inserted.is_empty() && outcome.removed == 0 && outcome.moved == 0);
    let snap = if effective {
        w.epoch += 1;
        Some(Arc::new(w.set.clone()))
    } else {
        None
    };
    ShardOutcome {
        shard,
        epoch: w.epoch,
        effective,
        live: w.set.len(),
        tombstones: w.set.tombstones(),
        delta: w.set.stats().rebuild.since(&before),
        snap,
        outcome,
    }
}

impl ShardedEngine {
    /// Builds a sharded engine over `set`. Sites receive the stable ids
    /// `0..set.len()` in input order (identical to the monolithic engine)
    /// and land in shard [`shard_of`]`(id, S)`; the shard count resolves
    /// via [`resolve_shards`] from `config.shards`.
    pub fn new(set: DiscreteSet, config: EngineConfig) -> Self {
        let shards = resolve_shards(config.shards);
        let threads = resolve_threads(config.threads);
        let n = set.len();
        // Partition the initial sites; each shard bulk-loads its slice in
        // one batch (a single Bentley–Saxe carry per shard).
        let mut parts: Vec<(Vec<Update>, Vec<SiteId>)> =
            (0..shards).map(|_| default_part()).collect();
        for (id, p) in set.points.iter().enumerate() {
            let (ups, ids) = &mut parts[shard_of(id, shards)];
            ups.push(Update::Insert(p.clone()));
            ids.push(id);
        }
        let writers: Vec<Mutex<ShardWriter>> = parts
            .into_iter()
            .map(|(ups, ids)| {
                let mut d = DynamicSet::new(config.dynamic);
                d.apply_with_insert_ids(&ups, &ids);
                Mutex::new(ShardWriter { set: d, epoch: 0 })
            })
            .collect();
        let snaps: Vec<Arc<DynamicSet>> = writers
            .iter()
            .map(|w| Arc::new(crate::lock_ok(w).set.clone()))
            .collect();
        let spread = if set.is_empty() { 1.0 } else { set.spread() };
        let core = Arc::new(ShardedCore {
            generation: 0,
            epochs: Arc::new(vec![0; shards]),
            reader: ShardedReader::new(snaps),
            n,
            ids: OnceLock::from(Arc::new((0..n).collect())),
            shape: OnceLock::from((set.total_locations(), set.max_k(), spread)),
            cache: Arc::new(ResultCache::new(config.cache_capacity, config.cache_grid)),
            config,
            set: OnceLock::from(set),
        });
        ShardedEngine {
            writers: Arc::new(writers),
            core: RwLock::new(core),
            publish_lock: Mutex::new(()),
            pool: ThreadPool::new(threads),
            next_id: AtomicUsize::new(n),
        }
    }

    fn snapshot(&self) -> Arc<ShardedCore> {
        crate::read_ok(&self.core).clone()
    }

    /// Resolved shard count.
    pub fn num_shards(&self) -> usize {
        self.writers.len()
    }

    /// Resolved worker count.
    pub fn threads(&self) -> usize {
        self.pool.len()
    }

    /// The current publish generation (the sharded analog of
    /// [`Engine::epoch`](crate::Engine::epoch); 0 until the first
    /// effective apply).
    pub fn generation(&self) -> u64 {
        self.snapshot().generation
    }

    /// One atomic observation of `(generation, per-shard epoch vector)` —
    /// both read from the same immutable snapshot, never torn across a
    /// concurrent apply's publication.
    pub fn shard_epochs(&self) -> (u64, Vec<u64>) {
        let core = self.snapshot();
        (core.generation, core.epochs.as_ref().clone())
    }

    /// Per-shard `(epoch, live, tombstones)` rows of the current snapshot.
    pub fn shard_stats(&self) -> Vec<ShardStat> {
        self.snapshot().shard_stats()
    }

    /// Live sites across all shards.
    pub fn len(&self) -> usize {
        self.snapshot().n
    }

    /// Whether no sites are live.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The surviving sites, densely in ascending-id order (the same view
    /// the monolithic engine serves).
    pub fn live_set(&self) -> DiscreteSet {
        self.snapshot().set().clone()
    }

    /// Stable ids of the live sites, ascending.
    pub fn site_ids(&self) -> Vec<SiteId> {
        self.snapshot().ids().as_ref().clone()
    }

    /// Current number of cached entries.
    pub fn cache_len(&self) -> usize {
        self.snapshot().cache.len()
    }

    /// Applies a batch of site updates and atomically publishes a new
    /// snapshot carrying the updated shard-epoch vector.
    ///
    /// The batch is partitioned by [`shard_of`] (inserts claim their id
    /// from the global allocator first, in update order); sub-batches for
    /// distinct shards run **concurrently** on the worker pool, each under
    /// only its shard's writer lock, and each effective sub-batch clones
    /// only its own shard (O(live/S)). Concurrent `apply` calls therefore
    /// proceed in parallel when they touch disjoint shards and serialize
    /// per shard otherwise; publication is a short read-modify-write of
    /// the core pointer with per-shard monotonic-epoch guards, so racing
    /// publications can interleave in any order without losing or
    /// reverting a shard.
    ///
    /// A no-op apply (empty batch, or every update missed) returns the
    /// current generation and publishes nothing — warm cache entries
    /// survive, exactly like the monolithic engine.
    pub fn apply(&self, updates: &[Update]) -> ShardedApplyReport {
        let _span = uncertain_obs::span!("engine.apply");
        uncertain_obs::counter!("engine.apply.updates").add(updates.len() as u64);
        let shards = self.writers.len();
        let num_inserts = updates
            .iter()
            .filter(|u| matches!(u, Update::Insert(_)))
            .count();
        let base = self.next_id.fetch_add(num_inserts, Ordering::Relaxed);
        let mut parts: Vec<(Vec<Update>, Vec<SiteId>)> =
            (0..shards).map(|_| default_part()).collect();
        let mut next = base;
        for u in updates {
            let id = match u {
                Update::Insert(_) => {
                    let id = next;
                    next += 1;
                    let (ups, ids) = &mut parts[shard_of(id, shards)];
                    ups.push(u.clone());
                    ids.push(id);
                    continue;
                }
                Update::Remove(id) | Update::Move { id, .. } => *id,
            };
            parts[shard_of(id, shards)].0.push(u.clone());
        }

        let touched: Vec<usize> = (0..shards).filter(|&s| !parts[s].0.is_empty()).collect();
        let results: Vec<ShardOutcome> = if touched.len() > 1 && self.pool.len() > 1 {
            let (tx, rx) = std::sync::mpsc::channel();
            for &s in &touched {
                let writers = Arc::clone(&self.writers);
                let (ups, ids) = std::mem::take(&mut parts[s]);
                let tx = tx.clone();
                self.pool.execute(move || {
                    let _ = tx.send(apply_shard(&writers, s, &ups, &ids));
                });
            }
            drop(tx);
            rx.iter().collect()
        } else {
            touched
                .iter()
                .map(|&s| {
                    let (ups, ids) = std::mem::take(&mut parts[s]);
                    apply_shard(&self.writers, s, &ups, &ids)
                })
                .collect()
        };

        let mut report = ShardedApplyReport {
            generation: 0,
            shard_epochs: vec![],
            touched: vec![],
            inserted: (base..next).collect(),
            removed: 0,
            moved: 0,
            missed: 0,
            live: 0,
            tombstones: 0,
            merges: 0,
            global_rebuilds: 0,
            sites_rebuilt: 0,
        };
        for r in &results {
            report.removed += r.outcome.removed;
            report.moved += r.outcome.moved;
            report.missed += r.outcome.missed;
            report.merges += r.delta.merges;
            report.global_rebuilds += r.delta.global_rebuilds;
            report.sites_rebuilt += r.delta.sites_rebuilt;
            if r.effective {
                report.touched.push(r.shard);
            }
        }
        report.touched.sort_unstable();

        if report.touched.is_empty() {
            // Nothing changed anywhere: keep the published snapshot (and
            // every warm cache entry keyed to its generation).
            let core = self.snapshot();
            report.generation = core.generation;
            report.shard_epochs = core.epochs.as_ref().clone();
            report.live = core.n;
            report.tombstones = core.reader.tombstones();
            return report;
        }

        // Publish: replace exactly the touched shards' snapshots, guarded
        // per shard by epoch monotonicity (a racing apply that already
        // published a later epoch for a shard must not be reverted by our
        // older snapshot arriving late).
        {
            let _publish = crate::lock_ok(&self.publish_lock);
            let old = crate::read_ok(&self.core).clone();
            let mut sets: Vec<Arc<DynamicSet>> = old.reader.shards().to_vec();
            let mut epochs = (*old.epochs).clone();
            let mut changed = false;
            for r in results.iter().filter(|r| r.effective) {
                if r.epoch > epochs[r.shard] {
                    epochs[r.shard] = r.epoch;
                    sets[r.shard] = r.snap.clone().expect("effective outcomes carry a snapshot");
                    changed = true;
                }
            }
            let core = if changed {
                let reader = ShardedReader::new(sets);
                let core = Arc::new(ShardedCore {
                    generation: old.generation + 1,
                    epochs: Arc::new(epochs),
                    n: reader.len(),
                    reader,
                    set: OnceLock::new(),
                    ids: OnceLock::new(),
                    shape: OnceLock::new(),
                    config: old.config,
                    cache: Arc::clone(&old.cache),
                });
                *crate::write_ok(&self.core) = Arc::clone(&core);
                core
            } else {
                // Every effective sub-batch was superseded by a racing
                // apply's later publication; the current snapshot already
                // reflects newer state for all our shards.
                old
            };
            report.generation = core.generation;
            report.shard_epochs = core.epochs.as_ref().clone();
            report.live = core.n;
            report.tombstones = core.reader.tombstones();
        }

        uncertain_obs::counter!("engine.apply.effective").inc();
        uncertain_obs::gauge!("engine.epoch").set(report.generation as f64);
        uncertain_obs::gauge!("engine.live_sites").set(report.live as f64);
        uncertain_obs::gauge!("engine.tombstones").set(report.tombstones as f64);
        let registry = uncertain_obs::registry();
        for r in results.iter().filter(|r| r.effective) {
            let s = r.shard;
            registry
                .gauge(&format!("engine.epoch.shard{s}"))
                .set(r.epoch as f64);
            registry
                .gauge(&format!("engine.live_sites.shard{s}"))
                .set(r.live as f64);
            registry
                .gauge(&format!("engine.tombstones.shard{s}"))
                .set(r.tombstones as f64);
        }
        report
    }

    /// Plans and executes one batch. Identical request/response semantics
    /// to [`Engine::run_batch`](crate::Engine::run_batch) — and identical
    /// answer bits — with [`ExecStats::shard_stats`] filled in and
    /// [`ExecStats::epoch`] carrying the publish generation.
    pub fn run_batch(&self, requests: &[QueryRequest]) -> BatchResponse {
        let t0 = Instant::now();
        let spans_before = uncertain_obs::registry().span_totals();
        let core = self.snapshot();
        let predicates_before = predicate_stats();
        let kernels_before = kernel_stats();
        let nonzero_count = requests.iter().filter(|r| r.is_nonzero()).count();
        let plan = {
            let _s = uncertain_obs::span!("engine.batch.plan");
            plan_for_sharded(&core, nonzero_count, requests.len() - nonzero_count)
        };
        let prepared = SPrepared {
            nonzero: plan.nonzero,
            quant: plan.quant,
        };
        let counters = Arc::new(BatchCounters::default());

        let (results, worker_busy) = if requests.is_empty() {
            (vec![], vec![])
        } else if self.pool.len() == 1 || requests.len() == 1 {
            let e0 = Instant::now();
            let results = requests
                .iter()
                .map(|r| exec_one(&core, prepared, *r, &counters))
                .collect();
            (results, vec![e0.elapsed()])
        } else {
            let chunk_len = requests.len().div_ceil(self.pool.len());
            let (rtx, rrx) = std::sync::mpsc::channel();
            let mut jobs = 0usize;
            for (ji, chunk) in requests.chunks(chunk_len).enumerate() {
                let core = Arc::clone(&core);
                let counters = Arc::clone(&counters);
                let chunk: Vec<QueryRequest> = chunk.to_vec();
                let rtx = rtx.clone();
                self.pool.execute(move || {
                    let e0 = Instant::now();
                    let out: Vec<QueryResult> = chunk
                        .iter()
                        .map(|r| exec_one(&core, prepared, *r, &counters))
                        .collect();
                    let _ = rtx.send((ji, out, e0.elapsed()));
                });
                jobs += 1;
            }
            drop(rtx);
            let mut buf: Vec<Option<Vec<QueryResult>>> = (0..jobs).map(|_| None).collect();
            let mut busy = vec![Duration::ZERO; jobs];
            for (ji, out, dt) in rrx {
                buf[ji] = Some(out);
                busy[ji] = dt;
            }
            // Mirrors the monolithic engine: a lost job (panic outside
            // the per-request guard) degrades to typed failures for its
            // chunk instead of unwinding the batch caller.
            let results = buf
                .into_iter()
                .enumerate()
                .flat_map(|(ji, s)| {
                    s.unwrap_or_else(|| {
                        uncertain_obs::counter!("engine.exec.lost_jobs").inc();
                        let lo = ji * chunk_len;
                        let len = chunk_len.min(requests.len() - lo);
                        (0..len)
                            .map(|_| QueryResult::Failed {
                                reason: "worker job lost to a panic outside the request guard"
                                    .into(),
                            })
                            .collect()
                    })
                })
                .collect();
            (results, busy)
        };

        let wall = t0.elapsed();
        uncertain_obs::histogram!("engine.batch.wall").record(wall.as_nanos() as u64);
        uncertain_obs::counter!("engine.batch.requests").add(requests.len() as u64);
        crate::record_planner_observation(&plan, requests.len(), worker_busy.iter().sum());
        let spans =
            uncertain_obs::span_delta(&spans_before, &uncertain_obs::registry().span_totals());
        let predicates = predicate_stats().since(&predicates_before);
        let kernels = kernel_stats().since(&kernels_before);
        BatchResponse {
            results,
            stats: ExecStats {
                nonzero_guarantee: (nonzero_count > 0).then_some(Guarantee::Exact),
                plan,
                built: vec![],
                wall,
                batch_len: requests.len(),
                cache_hits: counters.hits.load(Ordering::Relaxed),
                cache_misses: counters.misses.load(Ordering::Relaxed),
                workers: self.pool.len(),
                epoch: core.generation,
                live_sites: core.n,
                tombstones: core.reader.tombstones(),
                shard_stats: core.shard_stats(),
                worker_busy,
                predicate_filter_hits: predicates.filter_hits,
                predicate_exact_fallbacks: predicates.exact_fallbacks,
                kernel_lane_dists: kernels.lane_dists,
                kernel_scalar_dists: kernels.scalar_dists,
                quant_merged_evals: counters.quant_merged.load(Ordering::Relaxed),
                quant_fresh_evals: counters.quant_fresh.load(Ordering::Relaxed),
                quant_bucket_touches: counters.bucket_touches.load(Ordering::Relaxed),
                quant_bucket_warm: counters.bucket_warm.load(Ordering::Relaxed),
                spans,
            },
        }
    }
}

fn default_part() -> (Vec<Update>, Vec<SiteId>) {
    (vec![], vec![])
}

/// Sharded planner inputs: always dynamic-ready (every shard is a warm
/// Bentley–Saxe structure from construction), bucket fan-out summed across
/// shards, `shards ≥ 1` so only the partition-independent exact candidates
/// are priced.
fn plan_for_sharded(core: &ShardedCore, nonzero_count: usize, quant_count: usize) -> BatchPlan {
    let (total_locations, max_k, spread) = core.shape();
    let (_, quant_cold) = core.reader.quant_summary_state();
    planner::plan(&PlannerInputs {
        n: core.n,
        total_locations,
        max_k,
        spread,
        nonzero_count,
        quant_count,
        guarantee: core.config.guarantee,
        diagram_cap: 0,
        index_built: false,
        diagram_built: false,
        spiral_built: false,
        mc_built_samples: None,
        dynamic_ready: true,
        dynamic_buckets: core.reader.bucket_count(),
        dynamic_quant_cold_locations: quant_cold,
        quant_snapped: core.cache.grid() > 0.0,
        shards: core.reader.num_shards(),
    })
}

/// Executes one request with per-request panic isolation (the sharded twin
/// of the monolithic engine's guard): a panicking evaluation yields a
/// typed [`QueryResult::Failed`] before it can poison any shared lock.
fn exec_one(
    core: &ShardedCore,
    prepared: SPrepared,
    req: QueryRequest,
    counters: &BatchCounters,
) -> QueryResult {
    let out = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        exec_one_inner(core, prepared, req, counters)
    }));
    out.unwrap_or_else(|payload| {
        uncertain_obs::counter!("engine.exec.panics").inc();
        QueryResult::Failed {
            reason: crate::panic_reason(payload.as_ref()),
        }
    })
}

fn exec_one_inner(
    core: &ShardedCore,
    prepared: SPrepared,
    req: QueryRequest,
    counters: &BatchCounters,
) -> QueryResult {
    match req {
        QueryRequest::Nonzero { q } => {
            let _trace = uncertain_obs::trace::start("nonzero");
            let plan = prepared.nonzero.expect("nonzero plan");
            let key = CacheKey::nonzero(core.generation, q);
            if core.cache.enabled() {
                if let Some(CachedValue::Nonzero(ids)) = core.cache.get(&key) {
                    counters.hits.fetch_add(1, Ordering::Relaxed);
                    return QueryResult::Nonzero(ids.as_ref().clone());
                }
                counters.misses.fetch_add(1, Ordering::Relaxed);
            }
            let _exec = match plan {
                NonzeroPlan::Dynamic => uncertain_obs::span!("engine.exec.nonzero.dynamic"),
                _ => uncertain_obs::span!("engine.exec.nonzero.brute"),
            };
            let mut ids = match plan {
                // Scatter-gather over the per-shard bucket structures —
                // already in stable site ids.
                NonzeroPlan::Dynamic => core.reader.nonzero(q),
                // Brute over the flat union (the planner never picks the
                // monolithic-only static plans when shards ≥ 1).
                _ => {
                    let ids = core.ids();
                    nonzero_nn_discrete(core.set(), q)
                        .into_iter()
                        .map(|dense| ids[dense])
                        .collect()
                }
            };
            ids.sort_unstable();
            core.cache
                .insert(key, CachedValue::Nonzero(Arc::new(ids.clone())));
            QueryResult::Nonzero(ids)
        }
        QueryRequest::Threshold { q, tau } => {
            let _trace = uncertain_obs::trace::start("threshold");
            let (pi, guarantee) = quant_vector(core, prepared, q, counters);
            let slack = guarantee.slack();
            let mut items: Vec<(usize, f64)> = pi
                .iter()
                .copied()
                .enumerate()
                .filter(|&(_, p)| p >= tau - slack)
                .collect();
            crate::sort_ranked(&mut items);
            map_ranked(core, &mut items);
            QueryResult::Ranked { items, guarantee }
        }
        QueryRequest::TopK { q, k } => {
            let _trace = uncertain_obs::trace::start("topk");
            let (pi, guarantee) = quant_vector(core, prepared, q, counters);
            let mut items: Vec<(usize, f64)> = pi
                .iter()
                .copied()
                .enumerate()
                .filter(|&(_, p)| p > 0.0)
                .collect();
            crate::sort_ranked(&mut items);
            items.truncate(k);
            map_ranked(core, &mut items);
            QueryResult::Ranked { items, guarantee }
        }
    }
}

/// Rewrites dense indices to stable site ids, after sorting (the map is
/// monotone, so the tie order is unchanged).
fn map_ranked(core: &ShardedCore, items: &mut [(usize, f64)]) {
    let ids = core.ids();
    for (i, _) in items.iter_mut() {
        *i = ids[*i];
    }
}

/// The cached sharded quantification path. Both candidates are exact and
/// bit-identical (the k-way merge reproduces the fresh sweep's entry
/// sequence — see [`ShardedReader::quantification_merged`]), so they share
/// the `Exact` cache tag; with a snap grid the answer is the certified
/// interval evaluation over the flat union at the cell center, exactly as
/// in the monolithic engine.
fn quant_vector(
    core: &ShardedCore,
    prepared: SPrepared,
    q: Point,
    counters: &BatchCounters,
) -> (Arc<Vec<f64>>, Guarantee) {
    let plan = prepared.quant.expect("quant plan");
    let grid = core.cache.grid();
    let snapped = grid > 0.0;
    let key = CacheKey::quant(
        core.generation,
        q,
        if snapped { grid } else { 0.0 },
        QuantTag::Exact,
    );
    if core.cache.enabled() {
        if let Some(CachedValue::Quant { pi, guarantee }) = core.cache.get(&key) {
            counters.hits.fetch_add(1, Ordering::Relaxed);
            return (pi, guarantee);
        }
        counters.misses.fetch_add(1, Ordering::Relaxed);
    }
    let (pi, guarantee) = if snapped {
        let _exec = uncertain_obs::span!("engine.exec.quant.snapped");
        let center = snap_center(q, grid);
        let (mid, halfwidth) = snap::interval_quantification(core.set(), center, snap_radius(grid));
        let g = if halfwidth > 0.0 {
            Guarantee::Additive(halfwidth)
        } else {
            Guarantee::Exact
        };
        (mid, g)
    } else {
        let _exec = match plan {
            QuantPlan::Merged => uncertain_obs::span!("engine.exec.quant.merged"),
            _ => uncertain_obs::span!("engine.exec.quant.fresh"),
        };
        let pi = match plan {
            QuantPlan::Merged => {
                let (pairs, st) = core.reader.quantification_merged_with_stats(q);
                counters.quant_merged.fetch_add(1, Ordering::Relaxed);
                counters
                    .bucket_touches
                    .fetch_add(st.buckets, Ordering::Relaxed);
                counters
                    .bucket_warm
                    .fetch_add(st.warm_buckets, Ordering::Relaxed);
                pairs.into_iter().map(|(_, p)| p).collect()
            }
            _ => {
                counters.quant_fresh.fetch_add(1, Ordering::Relaxed);
                quantification_discrete(core.set(), q)
            }
        };
        (pi, Guarantee::Exact)
    };
    let pi = Arc::new(pi);
    core.cache.insert(
        key,
        CachedValue::Quant {
            pi: Arc::clone(&pi),
            guarantee,
        },
    );
    (pi, guarantee)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Engine;
    use uncertain_nn::model::DiscreteUncertainPoint;
    use uncertain_nn::workload;

    fn assert_send_sync<T: Send + Sync>() {}

    #[test]
    fn sharded_engine_is_send_sync() {
        assert_send_sync::<ShardedEngine>();
    }

    fn config(shards: usize) -> EngineConfig {
        EngineConfig {
            shards: Some(shards),
            ..EngineConfig::default()
        }
    }

    fn mixed_batch(queries: &[Point]) -> Vec<QueryRequest> {
        let mut batch = vec![];
        for &q in queries {
            batch.push(QueryRequest::Nonzero { q });
            batch.push(QueryRequest::Threshold { q, tau: 0.2 });
            batch.push(QueryRequest::TopK { q, k: 4 });
        }
        batch
    }

    /// The headline guarantee, in-crate: identical answer bits to the
    /// monolithic engine at several shard counts, before and after
    /// shard-straddling updates. (`tests/sharded_differential.rs` runs the
    /// randomized-op-sequence version of this.)
    #[test]
    fn sharded_answers_are_bit_identical_to_monolithic() {
        let set = workload::random_discrete_set(80, 3, 6.0, 11);
        let queries = workload::random_queries(12, 60.0, 13);
        let batch = mixed_batch(&queries);
        let updates = vec![
            Update::Remove(3),
            Update::Insert(DiscreteUncertainPoint::certain(Point::new(0.5, -0.25))),
            Update::Remove(41),
            Update::Move {
                id: 17,
                to: DiscreteUncertainPoint::certain(Point::new(-4.0, 2.0)),
            },
            Update::Insert(DiscreteUncertainPoint::certain(Point::new(9.0, 9.0))),
        ];

        let mono = Engine::new(set.clone(), EngineConfig::default());
        let mono_before = mono.run_batch(&batch);
        let mono_report = mono.apply(&updates);
        let mono_after = mono.run_batch(&batch);

        for shards in [1, 4] {
            let sharded = ShardedEngine::new(set.clone(), config(shards));
            assert_eq!(sharded.num_shards(), shards);
            assert_eq!(sharded.run_batch(&batch).results, mono_before.results);
            let report = sharded.apply(&updates);
            assert_eq!(report.inserted, mono_report.inserted);
            assert_eq!(report.removed, mono_report.removed);
            assert_eq!(report.moved, mono_report.moved);
            assert_eq!(report.live, mono_report.live);
            let resp = sharded.run_batch(&batch);
            assert_eq!(resp.results, mono_after.results);
            // Per-shard serving state is reported for every shard.
            assert_eq!(resp.stats.shard_stats.len(), shards);
            assert_eq!(
                resp.stats.shard_stats.iter().map(|s| s.live).sum::<usize>(),
                mono_report.live
            );
        }
    }

    #[test]
    fn straddling_apply_bumps_only_touched_shards_and_one_generation() {
        let set = workload::random_discrete_set(60, 3, 6.0, 7);
        let eng = ShardedEngine::new(set, config(4));
        let (g0, e0) = eng.shard_epochs();
        assert_eq!((g0, e0.as_slice()), (0, &[0u64; 4][..]));

        // Remove two sites in (generally) different shards.
        let report = eng.apply(&[Update::Remove(0), Update::Remove(1)]);
        assert_eq!(report.generation, 1);
        assert_eq!(
            report.touched,
            vec![shard_of(0, 4), shard_of(1, 4)]
                .into_iter()
                .collect::<std::collections::BTreeSet<_>>()
                .into_iter()
                .collect::<Vec<_>>()
        );
        let (g1, e1) = eng.shard_epochs();
        assert_eq!(g1, 1);
        for (s, &epoch) in e1.iter().enumerate() {
            let expect = if report.touched.contains(&s) { 1 } else { 0 };
            assert_eq!(epoch, expect, "shard {s}");
        }
    }

    #[test]
    fn noop_apply_keeps_generation_and_cache() {
        let set = workload::random_discrete_set(40, 3, 6.0, 5);
        let eng = ShardedEngine::new(set, config(3));
        let q = Point::new(1.0, 1.0);
        let batch = [QueryRequest::Nonzero { q }];
        eng.run_batch(&batch);
        let cached = eng.cache_len();
        assert!(cached > 0);
        // Every update misses: dead/unknown ids only.
        let report = eng.apply(&[Update::Remove(999), Update::Remove(777)]);
        assert_eq!(report.generation, 0);
        assert_eq!(report.missed, 2);
        assert!(report.touched.is_empty());
        let resp = eng.run_batch(&batch);
        assert_eq!(resp.stats.cache_hits, 1);
        assert_eq!(eng.cache_len(), cached);
    }

    #[test]
    fn display_prints_fixed_columns_and_per_shard_summaries() {
        let set = workload::random_discrete_set(30, 3, 6.0, 3);
        let eng = ShardedEngine::new(set, config(3));
        let q = Point::new(0.0, 0.0);
        let stats = eng.run_batch(&[QueryRequest::Nonzero { q }]).stats;
        let line = stats.to_string();
        // All columns present even when zero, plus one token per shard.
        for needle in ["epoch=0", "tomb=0", "shard0=0/", "shard1=0/", "shard2=0/"] {
            assert!(line.contains(needle), "missing {needle:?} in {line:?}");
        }
        // Monolithic batches print the same fixed columns, no shard tokens.
        let mono = Engine::new(
            workload::random_discrete_set(10, 2, 4.0, 1),
            EngineConfig::default(),
        );
        let line = mono
            .run_batch(&[QueryRequest::Nonzero { q }])
            .stats
            .to_string();
        assert!(
            line.contains("tomb=0") && !line.contains("shard0="),
            "{line:?}"
        );
    }

    #[test]
    fn resolve_shards_prefers_requested_and_floors_at_one() {
        // Can't touch the env var here (tests run concurrently), but the
        // non-env precedence is deterministic.
        if std::env::var(SHARDS_ENV).is_err() {
            assert_eq!(resolve_shards(Some(7)), 7);
            assert_eq!(resolve_shards(Some(0)), 1);
            assert!(resolve_shards(None) >= 1);
        }
    }

    #[test]
    fn empty_engine_serves_and_grows() {
        let eng = ShardedEngine::new(DiscreteSet::new(vec![]), config(3));
        assert!(eng.is_empty());
        let q = Point::new(0.0, 0.0);
        let resp = eng.run_batch(&mixed_batch(&[q]));
        assert_eq!(resp.results[0], QueryResult::Nonzero(vec![]));
        let report = eng.apply(&[Update::Insert(DiscreteUncertainPoint::certain(q))]);
        assert_eq!(report.inserted, vec![0]);
        assert_eq!(report.live, 1);
        let resp = eng.run_batch(&mixed_batch(&[q]));
        assert_eq!(resp.results[0], QueryResult::Nonzero(vec![0]));
    }
}
