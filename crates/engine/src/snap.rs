//! Certified interval quantification for snapped (grid-quantized) queries.
//!
//! The result cache snaps query points to a grid cell and serves every query
//! in the cell from one stored answer. That is only sound with a certified
//! error bound: `π_i(·)` is piecewise constant in `q` and *not* Lipschitz,
//! so "widen the slack by the snap radius" must be computed, not assumed.
//!
//! For any `q` with `‖q − q̃‖ ≤ r` and any location `p` of point `i` at
//! distance `d = ‖q̃ − p‖`, the cdf factors of Eq. (2) are sandwiched:
//!
//! ```text
//!   1 − G_j(q̃, d + 2r)  ≤  1 − G_j(q, ‖q − p‖)  ≤  1 − G_j⁻(q̃, d − 2r)
//! ```
//!
//! (`G⁻` the strictly-less cdf), because moving the query by ≤ r shifts
//! every pairwise distance by ≤ r, hence every *compared* pair by ≤ 2r.
//! Summing the per-location contributions with these factor bounds gives
//! sound per-point bounds `lo_i ≤ π_i(q) ≤ hi_i` valid across the whole
//! cell — computed by the same `O(N log N)` sweep as the exact evaluator,
//! run once with contributions shifted by `+2r` (ties counting) and once by
//! `−2r` (ties excluded).

use uncertain_geom::Point;
use uncertain_nn::model::DiscreteSet;

/// Factors below this are treated as exactly zero (mirrors the exact
/// evaluator's clamp).
const ZERO_THRESH: f64 = 1e-12;

/// The Eq. (2) sweep with every contribution evaluated against the cdfs at
/// its own distance **plus `shift`**. `ties_count` selects `≤` (`true`, the
/// exact Eq. (2) semantics) or `<` cdf accumulation at the contribution key.
///
/// `shift = 0, ties_count = true` reproduces
/// [`uncertain_nn::quantification::exact::quantification_discrete`] exactly.
pub fn quantification_shifted(
    set: &DiscreteSet,
    q: Point,
    shift: f64,
    ties_count: bool,
) -> Vec<f64> {
    let n = set.len();
    // Cdf events: every location enters its point's cdf at its distance.
    let mut events: Vec<(f64, usize, f64)> = set
        .all_locations()
        .map(|(i, _, loc, w)| (q.dist(loc), i, w))
        .collect();
    events.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
    // Contribution events: the same locations, keyed at distance + shift.
    let mut contribs: Vec<(f64, usize, f64)> =
        events.iter().map(|&(d, i, w)| (d + shift, i, w)).collect();
    contribs.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());

    let mut pi = vec![0.0f64; n];
    let mut w_acc = vec![0.0f64; n];
    let mut factors = vec![1.0f64; n];
    let mut product = 1.0f64;
    let mut zeros = 0usize;

    let mut e = 0;
    for &(key, i, w) in &contribs {
        // Apply cdf events with d ≤ key (ties count) or d < key.
        while e < events.len() && (events[e].0 < key || (ties_count && events[e].0 == key)) {
            let (_, j, wj) = events[e];
            let old = factors[j];
            w_acc[j] += wj;
            let mut newf = 1.0 - w_acc[j];
            if newf < ZERO_THRESH {
                newf = 0.0;
            }
            factors[j] = newf;
            if old > 0.0 {
                if newf > 0.0 {
                    product *= newf / old;
                } else {
                    zeros += 1;
                    product /= old;
                }
            }
            e += 1;
        }
        // η(p; q) = w · Π_{j≠i} (1 − G_j(key)): divide point i's own factor
        // out of the running product (same zero bookkeeping as the exact
        // sweep).
        let fi = factors[i];
        let eta = if zeros == 0 {
            w * product / fi
        } else if zeros == 1 && fi == 0.0 {
            w * product
        } else {
            0.0
        };
        pi[i] += eta;
    }
    pi
}

/// Sound per-point bounds on `π_i(q)` for every `q` within distance `r` of
/// `center`: returns `(midpoints, max halfwidth)`, with
/// `|mid_i − π_i(q)| ≤ halfwidth` for all such `q`.
pub fn interval_quantification(set: &DiscreteSet, center: Point, r: f64) -> (Vec<f64>, f64) {
    assert!(r >= 0.0);
    let _span = uncertain_obs::span!("engine.snap.quant");
    let lo = quantification_shifted(set, center, 2.0 * r, true);
    let hi = quantification_shifted(set, center, -2.0 * r, false);
    let mut mid = Vec::with_capacity(lo.len());
    let mut halfwidth = 0.0f64;
    for (&l, &h) in lo.iter().zip(&hi) {
        let l = l.clamp(0.0, 1.0);
        let h = h.clamp(0.0, 1.0).max(l);
        mid.push(0.5 * (l + h));
        halfwidth = halfwidth.max(0.5 * (h - l));
    }
    (mid, halfwidth)
}

#[cfg(test)]
mod tests {
    use super::*;
    use uncertain_nn::quantification::exact::quantification_discrete;
    use uncertain_nn::workload;

    #[test]
    fn zero_shift_matches_exact_sweep() {
        let set = workload::random_discrete_set(14, 3, 6.0, 21);
        for q in workload::random_queries(25, 60.0, 22) {
            let a = quantification_shifted(&set, q, 0.0, true);
            let b = quantification_discrete(&set, q);
            for (x, y) in a.iter().zip(&b) {
                assert!((x - y).abs() < 1e-12, "{x} vs {y} at {q}");
            }
        }
    }

    #[test]
    fn interval_contains_exact_value_across_cell() {
        let set = workload::random_discrete_set(10, 3, 5.0, 33);
        let r = 0.35;
        for center in workload::random_queries(12, 50.0, 34) {
            let (mid, hw) = interval_quantification(&set, center, r);
            // Probe several points inside the disk of radius r.
            for (dx, dy) in [
                (0.0, 0.0),
                (r * 0.7, 0.0),
                (-r * 0.7, 0.0),
                (0.0, r * 0.99),
                (-r * 0.6, -r * 0.6),
            ] {
                let q = Point::new(center.x + dx, center.y + dy);
                let exact = quantification_discrete(&set, q);
                for (i, (&m, &e)) in mid.iter().zip(&exact).enumerate() {
                    assert!(
                        (m - e).abs() <= hw + 1e-9,
                        "π_{i}: mid {m} vs exact {e}, halfwidth {hw}"
                    );
                }
            }
        }
    }

    #[test]
    fn zero_radius_interval_is_tight() {
        let set = workload::random_discrete_set(8, 2, 4.0, 5);
        let q = Point::new(1.0, -2.0);
        let (mid, hw) = interval_quantification(&set, q, 0.0);
        let exact = quantification_discrete(&set, q);
        assert!(hw < 1e-12);
        for (m, e) in mid.iter().zip(&exact) {
            assert!((m - e).abs() < 1e-12);
        }
    }
}
