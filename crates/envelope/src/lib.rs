//! `uncertain-envelope`: lower/upper envelope algorithms.
//!
//! The nonzero Voronoi diagram construction of the paper (Lemma 2.2) computes
//! each curve `γ_i` as the *lower envelope* of `n − 1` partial functions in
//! polar coordinates around the disk center `c_i`. This crate provides:
//!
//! * [`piecewise`] — interval/piece containers shared by all envelopes;
//! * [`polar`] — the divide-and-conquer lower envelope of partial functions
//!   on the circle `[0, 2π)`, parameterized by evaluation and pairwise
//!   crossing oracles (the geometry crate supplies closed-form crossings);
//! * [`linear`] — envelopes of straight lines over an interval (the classic
//!   convex-hull trick), used for piecewise-linear utilities and as an
//!   independently-checkable reference implementation.

pub mod linear;
pub mod piecewise;
pub mod polar;

pub use piecewise::{Piece, Piecewise};
pub use polar::{lower_envelope_circle, EnvelopeOracle};
